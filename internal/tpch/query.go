package tpch

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"sort"
)

// Query is one of the 22 TPC-H queries as a two-phase distributed plan:
// Fragment runs on each worker's partition and returns a partial result;
// Merge combines the partials at the coordinator into the final rows.
type Query interface {
	// Num is the TPC-H query number (1-22).
	Num() int
	// Fragment evaluates the worker-local phase. It returns the partial
	// result and the number of rows scanned (charged as worker CPU).
	Fragment(db *DB) (any, int)
	// Merge combines partials (one per worker, in worker order) into the
	// final result rows, using coord for replicated dimension lookups.
	Merge(coord *DB, partials []any) [][]string
	// Large reports whether partials are bulky (row sets / wide maps);
	// the HatRPC-Function coordinator routes these through the
	// throughput-hinted RPC.
	Large() bool
}

// Queries lists all 22 queries in order.
var Queries = []Query{
	q1{}, q2{}, q3{}, q4{}, q5{}, q6{}, q7{}, q8{}, q9{}, q10{}, q11{},
	q12{}, q13{}, q14{}, q15{}, q16{}, q17{}, q18{}, q19{}, q20{}, q21{}, q22{},
}

// EncodePartial gob-encodes a fragment result for shipping.
func EncodePartial(v any) []byte {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(&v); err != nil {
		panic(fmt.Sprintf("tpch: encode partial: %v", err))
	}
	return buf.Bytes()
}

// DecodePartial reverses EncodePartial.
func DecodePartial(b []byte) any {
	var v any
	if err := gob.NewDecoder(bytes.NewReader(b)).Decode(&v); err != nil {
		panic(fmt.Sprintf("tpch: decode partial: %v", err))
	}
	return v
}

// sortedKeys returns map keys in sorted order for deterministic merges.
func sortedKeys[K interface {
	~int | ~int32 | ~int64 | ~string
}, V any](m map[K]V) []K {
	ks := make([]K, 0, len(m))
	for k := range m {
		ks = append(ks, k)
	}
	sort.Slice(ks, func(i, j int) bool { return ks[i] < ks[j] })
	return ks
}

func f2(v float64) string   { return fmt.Sprintf("%.2f", v) }
func f4(v float64) string   { return fmt.Sprintf("%.4f", v) }
func itoa(v int64) string   { return fmt.Sprintf("%d", v) }
func i32toa(v int32) string { return fmt.Sprintf("%d", v) }
