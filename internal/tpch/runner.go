package tpch

import (
	"fmt"

	"hatrpc/internal/engine"
	"hatrpc/internal/hints"
	"hatrpc/internal/sim"
	"hatrpc/internal/simnet"
	tpchgen "hatrpc/internal/tpch/gen"
	"hatrpc/internal/trdma"
)

// Stack names one line of Figure 17.
type Stack int

// The three compared RPC stacks (§5.5).
const (
	StackIPoIB Stack = iota
	StackHatService
	StackHatFunction
)

func (s Stack) String() string {
	switch s {
	case StackIPoIB:
		return "Thrift/IPoIB"
	case StackHatService:
		return "HatRPC-Service"
	case StackHatFunction:
		return "HatRPC-Function"
	}
	return fmt.Sprintf("Stack(%d)", int(s))
}

// AllStacks lists the comparison set in reporting order.
var AllStacks = []Stack{StackIPoIB, StackHatService, StackHatFunction}

// RowScanNs is the per-row CPU charge for worker table scans.
const RowScanNs = 14.0

// workerHandler serves fragments over one partition.
type workerHandler struct {
	node *simnet.Node
	db   *DB
}

var _ tpchgen.TPCHWorkerHandler = (*workerHandler)(nil)

func (w *workerHandler) run(p *sim.Proc, query int32) ([]byte, error) {
	if query < 1 || int(query) > len(Queries) {
		return nil, fmt.Errorf("tpch: bad query number %d", query)
	}
	partial, rows := Queries[query-1].Fragment(w.db)
	w.node.CPU.Compute(p, sim.Duration(float64(rows)*RowScanNs))
	return EncodePartial(partial), nil
}

// RunSmall implements the latency-hinted fragment RPC.
func (w *workerHandler) RunSmall(p *sim.Proc, query int32) ([]byte, error) {
	return w.run(p, query)
}

// RunLarge implements the throughput-hinted fragment RPC.
func (w *workerHandler) RunLarge(p *sim.Proc, query int32) ([]byte, error) {
	return w.run(p, query)
}

// Ping implements the TCP control probe.
func (w *workerHandler) Ping(p *sim.Proc) (string, error) { return "ok", nil }

// serviceOnlyWorkerHints strips function hints for the HatRPC-Service
// variant: one balanced service-level profile (no concurrency, payload,
// NUMA or transport hints).
func serviceOnlyWorkerHints() *trdma.ServiceHints {
	full := tpchgen.TPCHWorkerHints
	fns := make(map[string]*hints.Set, len(full.Functions))
	for name := range full.Functions {
		fns[name] = hints.NewSet()
	}
	return &trdma.ServiceHints{
		ServiceName: full.ServiceName,
		Service:     hints.MakeSet(map[hints.Key]string{hints.KeyPerfGoal: "throughput"}, nil, nil),
		Functions:   fns,
		FnIDs:       full.FnIDs,
		Oneway:      full.Oneway,
	}
}

// QueryResult is one (query, stack) execution.
type QueryResult struct {
	Query  int
	Stack  Stack
	TimeNs int64
	Rows   int // result rows
}

// BenchConfig parameterizes the Figure 17 run.
type BenchConfig struct {
	SF      float64 // scale factor (paper: 1000; simulated default: 0.02)
	Workers int     // worker nodes (paper: 9 + coordinator)
	Stacks  []Stack
	Queries []int // 1-22; nil = all
	Seed    int64
}

// DefaultBenchConfig returns the simulated Fig. 17 setup.
func DefaultBenchConfig() BenchConfig {
	return BenchConfig{SF: 0.02, Workers: 9, Stacks: AllStacks, Seed: 2021}
}

// RunBench executes the configured queries on each stack, returning
// per-query times. Results rows are also returned for the first stack so
// callers can sanity-check plans (all stacks produce identical rows).
func RunBench(cfg BenchConfig) []QueryResult {
	if cfg.Workers < 1 {
		cfg.Workers = 9
	}
	qs := cfg.Queries
	if len(qs) == 0 {
		for i := 1; i <= 22; i++ {
			qs = append(qs, i)
		}
	}
	dbs := Generate(cfg.SF, cfg.Workers, sim.NewRand(cfg.Seed))
	var out []QueryResult
	for _, stack := range cfg.Stacks {
		out = append(out, runStack(cfg, stack, qs, dbs)...)
	}
	return out
}

// ExecuteQueries runs the given queries on one stack and returns both
// timings and result rows (for correctness checks).
func ExecuteQueries(cfg BenchConfig, stack Stack, qs []int, dbs []*DB) ([]QueryResult, map[int][][]string) {
	return runStackFull(cfg, stack, qs, dbs)
}

func runStack(cfg BenchConfig, stack Stack, qs []int, dbs []*DB) []QueryResult {
	res, _ := runStackFull(cfg, stack, qs, dbs)
	return res
}

func runStackFull(cfg BenchConfig, stack Stack, qs []int, dbs []*DB) ([]QueryResult, map[int][][]string) {
	env := sim.NewEnv(cfg.Seed)
	ncfg := simnet.DefaultConfig()
	ncfg.Nodes = cfg.Workers + 1
	cl := simnet.NewCluster(env, ncfg)
	coordNode := cl.Node(0)
	// The coordinator holds a dimensions-only replica for merge lookups.
	coordDB := dbs[0]

	var sh *trdma.ServiceHints
	switch stack {
	case StackHatService:
		sh = serviceOnlyWorkerHints()
	case StackHatFunction:
		sh = tpchgen.TPCHWorkerHints
	}

	// Workers.
	for w := 0; w < cfg.Workers; w++ {
		node := cl.Node(w + 1)
		h := &workerHandler{node: node, db: dbs[w]}
		proc := tpchgen.NewTPCHWorkerProcessor(h)
		if stack == StackIPoIB {
			trdma.ServeTCP(node, "TPCHWorker", proc)
		} else {
			eng := engine.New(node, engine.DefaultConfig())
			trdma.NewServer(eng, sh, proc)
		}
	}

	results := make([]QueryResult, 0, len(qs))
	rowsByQuery := make(map[int][][]string, len(qs))
	env.Spawn("coordinator", func(p *sim.Proc) {
		var coordEng *engine.Engine
		if stack != StackIPoIB {
			coordEng = engine.New(coordNode, engine.DefaultConfig())
		}
		clients := make([]*tpchgen.TPCHWorkerClient, cfg.Workers)
		for w := 0; w < cfg.Workers; w++ {
			var tr trdma.Transport
			if stack == StackIPoIB {
				tr = trdma.DialTCP(p, coordNode, cl.Node(w+1), "TPCHWorker")
			} else {
				tr = trdma.Dial(p, coordEng, cl.Node(w+1), sh, nil)
			}
			clients[w] = tpchgen.NewTPCHWorkerClient(tr)
		}
		for _, qn := range qs {
			q := Queries[qn-1]
			start := p.Now()
			partials := make([]any, cfg.Workers)
			done := sim.NewSignal(env)
			for w := 0; w < cfg.Workers; w++ {
				w := w
				env.Spawn(fmt.Sprintf("q%d-w%d", qn, w), func(wp *sim.Proc) {
					var raw []byte
					var err error
					if q.Large() {
						raw, err = clients[w].RunLarge(wp, int32(qn))
					} else {
						raw, err = clients[w].RunSmall(wp, int32(qn))
					}
					if err != nil {
						panic(fmt.Sprintf("tpch: q%d worker %d: %v", qn, w, err))
					}
					partials[w] = DecodePartial(raw)
					done.Fire()
				})
			}
			for w := 0; w < cfg.Workers; w++ {
				done.Wait(p)
			}
			rows := q.Merge(coordDB, partials)
			// Coordinator merge cost: proportional to shipped volume.
			var vol int
			for _, pa := range partials {
				if pa != nil {
					vol += 64 // bookkeeping floor per partial
				}
			}
			coordNode.CPU.Compute(p, sim.Duration(float64(vol)*4))
			results = append(results, QueryResult{
				Query: qn, Stack: stack,
				TimeNs: int64(p.Now() - start),
				Rows:   len(rows),
			})
			rowsByQuery[qn] = rows
		}
		env.Stop()
	})
	env.Run()
	env.Shutdown()
	return results, rowsByQuery
}
