package tpch

import (
	"fmt"
	"math"
	"strconv"
	"strings"
	"testing"

	"hatrpc/internal/sim"
)

func TestDateArithmetic(t *testing.T) {
	if MkDate(1992, 1, 1) != 0 {
		t.Fatal("epoch")
	}
	if MkDate(1992, 2, 1) != 31 {
		t.Fatal("feb")
	}
	if MkDate(1993, 1, 1) != 365 {
		t.Fatal("year")
	}
	d := MkDate(1995, 9, 15)
	if d.Year() != 1995 || d.Month() != 9 {
		t.Fatalf("Year/Month = %d/%d", d.Year(), d.Month())
	}
	if MkDate(1998, 12, 1)-90 <= MkDate(1998, 8, 1) {
		t.Fatal("cutoff ordering")
	}
}

func TestGenerateCardinalities(t *testing.T) {
	dbs := Generate(0.01, 3, sim.NewRand(1))
	if len(dbs) != 3 {
		t.Fatalf("partitions = %d", len(dbs))
	}
	sc := ScaleFor(0.01)
	var orders, lineitems, partsupp int
	for _, db := range dbs {
		orders += len(db.Orders)
		lineitems += len(db.Lineitem)
		partsupp += len(db.PartSupp)
		// Dimensions replicated everywhere.
		if len(db.Customer) != sc.Customers || len(db.Part) != sc.Parts ||
			len(db.Supplier) != sc.Suppliers || len(db.Nation) != 25 || len(db.Region) != 5 {
			t.Fatal("dimension tables not replicated")
		}
	}
	if orders != sc.Orders {
		t.Fatalf("orders = %d, want %d", orders, sc.Orders)
	}
	if partsupp != sc.Parts*4 {
		t.Fatalf("partsupp = %d, want %d", partsupp, sc.Parts*4)
	}
	if lineitems < orders || lineitems > orders*7 {
		t.Fatalf("lineitems = %d for %d orders", lineitems, orders)
	}
}

func TestOrdersColocatedWithLineitems(t *testing.T) {
	dbs := Generate(0.005, 4, sim.NewRand(2))
	for i, db := range dbs {
		okeys := map[int32]bool{}
		for _, o := range db.Orders {
			okeys[o.Key] = true
			if int(o.Key)%4 != i {
				t.Fatalf("order %d on partition %d", o.Key, i)
			}
		}
		for _, l := range db.Lineitem {
			if !okeys[l.OrderKey] {
				t.Fatalf("lineitem for order %d not co-located", l.OrderKey)
			}
		}
	}
}

func TestPartialEncodingRoundTrip(t *testing.T) {
	dbs := Generate(0.004, 2, sim.NewRand(3))
	for _, q := range Queries {
		partial, rows := q.Fragment(dbs[0])
		if rows <= 0 {
			t.Errorf("Q%d scanned %d rows", q.Num(), rows)
		}
		got := DecodePartial(EncodePartial(partial))
		if fmt.Sprintf("%T", got) != fmt.Sprintf("%T", partial) {
			t.Errorf("Q%d partial type changed: %T → %T", q.Num(), partial, got)
		}
	}
}

// numsClose compares two rendered result tables with float tolerance
// (distributed float accumulation order differs from single-node).
func numsClose(t *testing.T, qn int, a, b [][]string) {
	t.Helper()
	if len(a) != len(b) {
		t.Fatalf("Q%d: %d rows vs %d rows", qn, len(a), len(b))
	}
	for i := range a {
		if len(a[i]) != len(b[i]) {
			t.Fatalf("Q%d row %d: width mismatch", qn, i)
		}
		for j := range a[i] {
			x, errX := strconv.ParseFloat(a[i][j], 64)
			y, errY := strconv.ParseFloat(b[i][j], 64)
			if errX == nil && errY == nil {
				if math.Abs(x-y) > 1e-6*(1+math.Abs(x)) {
					t.Fatalf("Q%d row %d col %d: %v vs %v", qn, i, j, x, y)
				}
				continue
			}
			if a[i][j] != b[i][j] {
				t.Fatalf("Q%d row %d col %d: %q vs %q", qn, i, j, a[i][j], b[i][j])
			}
		}
	}
}

// TestDistributedMatchesSingleNode executes every query both on one
// partition holding all data and on 5 partitions, comparing results.
func TestDistributedMatchesSingleNode(t *testing.T) {
	single := Generate(0.01, 1, sim.NewRand(7))
	multi := Generate(0.01, 5, sim.NewRand(7))
	for _, q := range Queries {
		q := q
		t.Run(fmt.Sprintf("Q%d", q.Num()), func(t *testing.T) {
			sp, _ := q.Fragment(single[0])
			want := q.Merge(single[0], []any{sp})
			var partials []any
			for _, db := range multi {
				p, _ := q.Fragment(db)
				// Round-trip through the wire encoding, as the runner does.
				partials = append(partials, DecodePartial(EncodePartial(p)))
			}
			got := q.Merge(multi[0], partials)
			numsClose(t, q.Num(), got, want)
		})
	}
}

func TestQueriesProduceResults(t *testing.T) {
	dbs := Generate(0.01, 2, sim.NewRand(11))
	nonEmpty := 0
	for _, q := range Queries {
		var partials []any
		for _, db := range dbs {
			p, _ := q.Fragment(db)
			partials = append(partials, p)
		}
		rows := q.Merge(dbs[0], partials)
		if len(rows) > 0 {
			nonEmpty++
		}
	}
	// At this scale nearly every query should return rows; allow a couple
	// of selective ones to come up empty.
	if nonEmpty < 19 {
		t.Fatalf("only %d/22 queries returned rows", nonEmpty)
	}
}

func TestQ1AggregatesConsistent(t *testing.T) {
	dbs := Generate(0.005, 1, sim.NewRand(13))
	p, _ := q1{}.Fragment(dbs[0])
	rows := q1{}.Merge(dbs[0], []any{p})
	if len(rows) == 0 {
		t.Fatal("no Q1 groups")
	}
	for _, r := range rows {
		count, _ := strconv.ParseInt(r[9], 10, 64)
		sumQty, _ := strconv.ParseFloat(r[2], 64)
		avgQty, _ := strconv.ParseFloat(r[6], 64)
		if count <= 0 {
			t.Fatalf("group %v has no rows", r[:2])
		}
		if math.Abs(sumQty/float64(count)-avgQty) > 0.01 {
			t.Fatalf("avg inconsistent: %v", r)
		}
	}
}

func TestRunBenchSmall(t *testing.T) {
	if testing.Short() {
		t.Skip("cluster run")
	}
	cfg := BenchConfig{
		SF: 0.004, Workers: 4,
		Stacks:  AllStacks,
		Queries: []int{1, 6, 13, 19},
		Seed:    17,
	}
	res := RunBench(cfg)
	if len(res) != 12 {
		t.Fatalf("%d results", len(res))
	}
	times := map[Stack]map[int]int64{}
	for _, r := range res {
		if times[r.Stack] == nil {
			times[r.Stack] = map[int]int64{}
		}
		if r.TimeNs <= 0 {
			t.Fatalf("Q%d on %v took %d", r.Query, r.Stack, r.TimeNs)
		}
		times[r.Stack][r.Query] = r.TimeNs
	}
	var totIP, totSvc, totFn int64
	for _, qn := range []int{1, 6, 13, 19} {
		totIP += times[StackIPoIB][qn]
		totSvc += times[StackHatService][qn]
		totFn += times[StackHatFunction][qn]
	}
	if totSvc >= totIP {
		t.Errorf("HatRPC-Service total (%d) not below IPoIB (%d)", totSvc, totIP)
	}
	if totFn >= totSvc {
		t.Errorf("HatRPC-Function total (%d) not below Service (%d)", totFn, totSvc)
	}
}

func TestStacksAgreeOnResults(t *testing.T) {
	if testing.Short() {
		t.Skip("cluster run")
	}
	cfg := BenchConfig{SF: 0.004, Workers: 3, Seed: 19}
	dbs := Generate(cfg.SF, cfg.Workers, sim.NewRand(cfg.Seed))
	qs := []int{3, 10, 18}
	_, rowsIP := ExecuteQueries(cfg, StackIPoIB, qs, dbs)
	_, rowsFn := ExecuteQueries(cfg, StackHatFunction, qs, dbs)
	for _, qn := range qs {
		numsClose(t, qn, rowsFn[qn], rowsIP[qn])
	}
}

func TestScaleFor(t *testing.T) {
	s := ScaleFor(1)
	if s.Orders != 1_500_000 || s.Parts != 200_000 {
		t.Fatalf("SF1 = %+v", s)
	}
	tiny := ScaleFor(0.0000001)
	if tiny.Orders < 1 || tiny.Suppliers < 1 {
		t.Fatal("tiny SF must keep at least one row per table")
	}
}

func TestCommentKeywordsPresent(t *testing.T) {
	dbs := Generate(0.01, 1, sim.NewRand(23))
	special := 0
	for _, o := range dbs[0].Orders {
		if strings.Contains(o.Comment, "special requests") {
			special++
		}
	}
	if special == 0 {
		t.Fatal("no 'special requests' orders generated (Q13 needs them)")
	}
	complaints := 0
	for _, s := range dbs[0].Supplier {
		if strings.HasPrefix(s.Comment, "Customer Complaints") {
			complaints++
		}
	}
	if complaints == 0 {
		t.Fatal("no complaint suppliers generated (Q16 needs them)")
	}
}
