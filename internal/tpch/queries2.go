package tpch

import (
	"encoding/gob"
	"sort"
	"strings"
)

func init() {
	gob.Register(map[string]*Q12Agg{})
	gob.Register(map[int32]int64{})
	gob.Register(Q14Partial{})
	gob.Register(map[int32]*Q17Agg{})
	gob.Register([]Q18Row{})
	gob.Register(Q20Partial{})
	gob.Register([]int32{})
	gob.Register(map[string][]int32{})
}

// ---------------------------------------------------------------------------
// Q12: shipping modes and order priority (MAIL/SHIP, 1994).

// Q12Agg counts high/low priority lines per ship mode.
type Q12Agg struct{ High, Low int64 }

type q12 struct{}

func (q12) Num() int    { return 12 }
func (q12) Large() bool { return false }

func (q12) Fragment(db *DB) (any, int) {
	lo, hi := MkDate(1994, 1, 1), MkDate(1995, 1, 1)
	prio := map[int32]string{}
	for i := range db.Orders {
		prio[db.Orders[i].Key] = db.Orders[i].Priority
	}
	out := map[string]*Q12Agg{}
	for i := range db.Lineitem {
		l := &db.Lineitem[i]
		if l.ShipMode != "MAIL" && l.ShipMode != "SHIP" {
			continue
		}
		if !(l.CommitDate < l.ReceiptDate && l.ShipDate < l.CommitDate &&
			l.ReceiptDate >= lo && l.ReceiptDate < hi) {
			continue
		}
		a := out[l.ShipMode]
		if a == nil {
			a = &Q12Agg{}
			out[l.ShipMode] = a
		}
		p := prio[l.OrderKey]
		if p == "1-URGENT" || p == "2-HIGH" {
			a.High++
		} else {
			a.Low++
		}
	}
	return out, len(db.Orders) + len(db.Lineitem)
}

func (q12) Merge(coord *DB, partials []any) [][]string {
	total := map[string]*Q12Agg{}
	for _, p := range partials {
		for k, a := range p.(map[string]*Q12Agg) {
			t := total[k]
			if t == nil {
				t = &Q12Agg{}
				total[k] = t
			}
			t.High += a.High
			t.Low += a.Low
		}
	}
	var rows [][]string
	for _, k := range sortedKeys(total) {
		rows = append(rows, []string{k, itoa(total[k].High), itoa(total[k].Low)})
	}
	return rows
}

// ---------------------------------------------------------------------------
// Q13: customer distribution (excluding "special requests" orders).

type q13 struct{}

func (q13) Num() int    { return 13 }
func (q13) Large() bool { return true }

func (q13) Fragment(db *DB) (any, int) {
	out := map[int32]int64{}
	for i := range db.Orders {
		o := &db.Orders[i]
		if strings.Contains(o.Comment, "special requests") {
			continue
		}
		out[o.CustKey]++
	}
	return out, len(db.Orders)
}

func (q13) Merge(coord *DB, partials []any) [][]string {
	perCust := map[int32]int64{}
	for _, p := range partials {
		for ck, n := range p.(map[int32]int64) {
			perCust[ck] += n
		}
	}
	dist := map[int64]int64{} // order count → customer count
	for i := range coord.Customer {
		dist[perCust[coord.Customer[i].Key]]++
	}
	counts := sortedKeys(dist)
	sort.SliceStable(counts, func(i, j int) bool {
		if dist[counts[i]] != dist[counts[j]] {
			return dist[counts[i]] > dist[counts[j]]
		}
		return counts[i] > counts[j]
	})
	var rows [][]string
	for _, c := range counts {
		rows = append(rows, []string{itoa(c), itoa(dist[c])})
	}
	return rows
}

// ---------------------------------------------------------------------------
// Q14: promotion effect (1995-09).

// Q14Partial carries promo and total revenue.
type Q14Partial struct{ Promo, Total float64 }

type q14 struct{}

func (q14) Num() int    { return 14 }
func (q14) Large() bool { return false }

func (q14) Fragment(db *DB) (any, int) {
	lo, hi := MkDate(1995, 9, 1), MkDate(1995, 10, 1)
	out := Q14Partial{}
	for i := range db.Lineitem {
		l := &db.Lineitem[i]
		if l.ShipDate < lo || l.ShipDate >= hi {
			continue
		}
		rev := l.ExtPrice * (1 - l.Discount)
		out.Total += rev
		if strings.HasPrefix(db.PartIdx[l.PartKey].Type, "PROMO") {
			out.Promo += rev
		}
	}
	return out, len(db.Lineitem)
}

func (q14) Merge(coord *DB, partials []any) [][]string {
	var promo, total float64
	for _, p := range partials {
		q := p.(Q14Partial)
		promo += q.Promo
		total += q.Total
	}
	pct := 0.0
	if total > 0 {
		pct = 100 * promo / total
	}
	return [][]string{{f2(pct)}}
}

// ---------------------------------------------------------------------------
// Q15: top supplier (quarter starting 1996-01-01).

type q15 struct{}

func (q15) Num() int    { return 15 }
func (q15) Large() bool { return false }

func (q15) Fragment(db *DB) (any, int) {
	lo, hi := MkDate(1996, 1, 1), MkDate(1996, 4, 1)
	out := map[int32]float64{}
	for i := range db.Lineitem {
		l := &db.Lineitem[i]
		if l.ShipDate >= lo && l.ShipDate < hi {
			out[l.SuppKey] += l.ExtPrice * (1 - l.Discount)
		}
	}
	return out, len(db.Lineitem)
}

func (q15) Merge(coord *DB, partials []any) [][]string {
	rev := map[int32]float64{}
	for _, p := range partials {
		for sk, v := range p.(map[int32]float64) {
			rev[sk] += v
		}
	}
	maxRev := 0.0
	for _, v := range rev {
		if v > maxRev {
			maxRev = v
		}
	}
	var rows [][]string
	for _, sk := range sortedKeys(rev) {
		if rev[sk] < maxRev-1e-6 {
			continue
		}
		s := coord.SuppIdx[sk]
		rows = append(rows, []string{i32toa(sk), s.Name, s.Addr, s.Phone, f2(rev[sk])})
	}
	return rows
}

// ---------------------------------------------------------------------------
// Q16: parts/supplier relationship.

type q16 struct{}

func (q16) Num() int    { return 16 }
func (q16) Large() bool { return true }

var q16Sizes = map[int32]bool{49: true, 14: true, 23: true, 45: true, 19: true, 3: true, 36: true, 9: true}

func (q16) Fragment(db *DB) (any, int) {
	out := map[string][]int32{}
	for i := range db.PartSupp {
		ps := &db.PartSupp[i]
		pt := db.PartIdx[ps.PartKey]
		if pt.Brand == "Brand#45" || strings.HasPrefix(pt.Type, "MEDIUM POLISHED") || !q16Sizes[pt.Size] {
			continue
		}
		if strings.HasPrefix(db.SuppIdx[ps.SuppKey].Comment, "Customer Complaints") {
			continue
		}
		k := pt.Brand + "|" + pt.Type + "|" + i32toa(pt.Size)
		out[k] = append(out[k], ps.SuppKey)
	}
	return out, len(db.PartSupp)
}

func (q16) Merge(coord *DB, partials []any) [][]string {
	sets := map[string]map[int32]bool{}
	for _, p := range partials {
		for k, sks := range p.(map[string][]int32) {
			s := sets[k]
			if s == nil {
				s = map[int32]bool{}
				sets[k] = s
			}
			for _, sk := range sks {
				s[sk] = true
			}
		}
	}
	keys := sortedKeys(sets)
	sort.SliceStable(keys, func(i, j int) bool {
		if len(sets[keys[i]]) != len(sets[keys[j]]) {
			return len(sets[keys[i]]) > len(sets[keys[j]])
		}
		return keys[i] < keys[j]
	})
	var rows [][]string
	for _, k := range keys {
		parts := strings.Split(k, "|")
		rows = append(rows, []string{parts[0], parts[1], parts[2], itoa(int64(len(sets[k])))})
	}
	return rows
}

// ---------------------------------------------------------------------------
// Q17: small-quantity-order revenue (Brand#23, MED BOX).

// Q17Agg carries per-part quantity stats and qualifying line rows.
type Q17Agg struct {
	SumQty float64
	Count  int64
	Lines  []Q17Line
}

// Q17Line is one matching lineitem's (qty, price).
type Q17Line struct{ Qty, ExtPrice float64 }

type q17 struct{}

func (q17) Num() int    { return 17 }
func (q17) Large() bool { return true }

func (q17) Fragment(db *DB) (any, int) {
	out := map[int32]*Q17Agg{}
	for i := range db.Lineitem {
		l := &db.Lineitem[i]
		pt := db.PartIdx[l.PartKey]
		if pt.Brand != "Brand#23" || pt.Container != "MED BOX" {
			continue
		}
		a := out[l.PartKey]
		if a == nil {
			a = &Q17Agg{}
			out[l.PartKey] = a
		}
		a.SumQty += l.Qty
		a.Count++
		a.Lines = append(a.Lines, Q17Line{Qty: l.Qty, ExtPrice: l.ExtPrice})
	}
	return out, len(db.Lineitem)
}

func (q17) Merge(coord *DB, partials []any) [][]string {
	agg := map[int32]*Q17Agg{}
	for _, p := range partials {
		for pk, a := range p.(map[int32]*Q17Agg) {
			t := agg[pk]
			if t == nil {
				t = &Q17Agg{}
				agg[pk] = t
			}
			t.SumQty += a.SumQty
			t.Count += a.Count
			t.Lines = append(t.Lines, a.Lines...)
		}
	}
	sum := 0.0
	for _, pk := range sortedKeys(agg) {
		a := agg[pk]
		avg := a.SumQty / float64(a.Count)
		for _, ln := range a.Lines {
			if ln.Qty < 0.2*avg {
				sum += ln.ExtPrice
			}
		}
	}
	return [][]string{{f2(sum / 7)}}
}

// ---------------------------------------------------------------------------
// Q18: large volume customers (sum qty > 300).

// Q18Row is one qualifying order.
type Q18Row struct {
	CustKey int32
	OrdKey  int32
	Date    Date
	Total   float64
	SumQty  float64
}

type q18 struct{}

func (q18) Num() int    { return 18 }
func (q18) Large() bool { return true }

func (q18) Fragment(db *DB) (any, int) {
	qty := map[int32]float64{}
	for i := range db.Lineitem {
		qty[db.Lineitem[i].OrderKey] += db.Lineitem[i].Qty
	}
	var out []Q18Row
	for i := range db.Orders {
		o := &db.Orders[i]
		if qty[o.Key] > 300 {
			out = append(out, Q18Row{
				CustKey: o.CustKey, OrdKey: o.Key, Date: o.Date,
				Total: o.Total, SumQty: qty[o.Key],
			})
		}
	}
	return out, len(db.Orders) + len(db.Lineitem)
}

func (q18) Merge(coord *DB, partials []any) [][]string {
	var all []Q18Row
	for _, p := range partials {
		all = append(all, p.([]Q18Row)...)
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].Total != all[j].Total {
			return all[i].Total > all[j].Total
		}
		return all[i].Date < all[j].Date
	})
	if len(all) > 100 {
		all = all[:100]
	}
	var rows [][]string
	for _, r := range all {
		c := coord.CustIdx[r.CustKey]
		rows = append(rows, []string{
			c.Name, i32toa(r.CustKey), i32toa(r.OrdKey),
			itoa(int64(r.Date)), f2(r.Total), f2(r.SumQty),
		})
	}
	return rows
}

// ---------------------------------------------------------------------------
// Q19: discounted revenue (three OR branches).

type q19 struct{}

func (q19) Num() int    { return 19 }
func (q19) Large() bool { return false }

func (q19) Fragment(db *DB) (any, int) {
	sum := 0.0
	for i := range db.Lineitem {
		l := &db.Lineitem[i]
		if l.ShipInstr != "DELIVER IN PERSON" {
			continue
		}
		if l.ShipMode != "AIR" && l.ShipMode != "REG AIR" {
			continue
		}
		pt := db.PartIdx[l.PartKey]
		match := false
		switch {
		case pt.Brand == "Brand#12" &&
			strings.HasPrefix(pt.Container, "SM") &&
			l.Qty >= 1 && l.Qty <= 11 && pt.Size >= 1 && pt.Size <= 5:
			match = true
		case pt.Brand == "Brand#23" &&
			strings.HasPrefix(pt.Container, "MED") &&
			l.Qty >= 10 && l.Qty <= 20 && pt.Size >= 1 && pt.Size <= 10:
			match = true
		case pt.Brand == "Brand#34" &&
			strings.HasPrefix(pt.Container, "LG") &&
			l.Qty >= 20 && l.Qty <= 30 && pt.Size >= 1 && pt.Size <= 15:
			match = true
		}
		if match {
			sum += l.ExtPrice * (1 - l.Discount)
		}
	}
	return map[string]float64{"revenue": sum}, len(db.Lineitem)
}

func (q19) Merge(coord *DB, partials []any) [][]string {
	return mergeRevMapDesc(partials)
}

// ---------------------------------------------------------------------------
// Q20: potential part promotion (forest* parts, CANADA, 1994).

// Q20Partial carries shipped quantity per (pkey,skey) and the local
// availqty rows for forest parts.
type Q20Partial struct {
	Shipped map[int64]float64 // PSKey → qty shipped in 1994
	Avail   map[int64]int32   // PSKey → availqty (partsupp partition)
}

type q20 struct{}

func (q20) Num() int    { return 20 }
func (q20) Large() bool { return true }

func (q20) Fragment(db *DB) (any, int) {
	lo, hi := MkDate(1994, 1, 1), MkDate(1995, 1, 1)
	out := Q20Partial{Shipped: map[int64]float64{}, Avail: map[int64]int32{}}
	forest := func(pk int32) bool {
		return strings.HasPrefix(db.PartIdx[pk].Name, "forest")
	}
	for i := range db.Lineitem {
		l := &db.Lineitem[i]
		if l.ShipDate < lo || l.ShipDate >= hi || !forest(l.PartKey) {
			continue
		}
		out.Shipped[PSKey(l.PartKey, l.SuppKey)] += l.Qty
	}
	for i := range db.PartSupp {
		ps := &db.PartSupp[i]
		if forest(ps.PartKey) {
			out.Avail[PSKey(ps.PartKey, ps.SuppKey)] = ps.AvailQty
		}
	}
	return out, len(db.Lineitem) + len(db.PartSupp)
}

func (q20) Merge(coord *DB, partials []any) [][]string {
	const canada = 3
	shipped := map[int64]float64{}
	avail := map[int64]int32{}
	for _, p := range partials {
		q := p.(Q20Partial)
		for k, v := range q.Shipped {
			shipped[k] += v
		}
		for k, v := range q.Avail {
			avail[k] = v
		}
	}
	suppliers := map[int32]bool{}
	for _, k := range sortedKeys(avail) {
		if float64(avail[k]) > 0.5*shipped[k] && shipped[k] > 0 {
			suppliers[int32(uint32(k))] = true
		}
	}
	var rows [][]string
	for _, sk := range sortedKeys(suppliers) {
		s := coord.SuppIdx[sk]
		if s.Nation != canada {
			continue
		}
		rows = append(rows, []string{s.Name, s.Addr})
	}
	return rows
}

// ---------------------------------------------------------------------------
// Q21: suppliers who kept orders waiting (SAUDI ARABIA).

type q21 struct{}

func (q21) Num() int    { return 21 }
func (q21) Large() bool { return false }

func (q21) Fragment(db *DB) (any, int) {
	const saudi = 20
	status := map[int32]byte{}
	for i := range db.Orders {
		status[db.Orders[i].Key] = db.Orders[i].Status
	}
	// Per order: the set of suppliers, and the set of late suppliers.
	supps := map[int32]map[int32]bool{}
	late := map[int32]map[int32]bool{}
	for i := range db.Lineitem {
		l := &db.Lineitem[i]
		if status[l.OrderKey] != 'F' {
			continue
		}
		if supps[l.OrderKey] == nil {
			supps[l.OrderKey] = map[int32]bool{}
			late[l.OrderKey] = map[int32]bool{}
		}
		supps[l.OrderKey][l.SuppKey] = true
		if l.ReceiptDate > l.CommitDate {
			late[l.OrderKey][l.SuppKey] = true
		}
	}
	out := map[string]int64{}
	for ok, ls := range late {
		if len(ls) != 1 || len(supps[ok]) < 2 {
			continue
		}
		for sk := range ls {
			if db.SuppIdx[sk].Nation == saudi {
				out[db.SuppIdx[sk].Name]++
			}
		}
	}
	return out, len(db.Orders) + len(db.Lineitem)
}

func (q21) Merge(coord *DB, partials []any) [][]string {
	total := map[string]int64{}
	for _, p := range partials {
		for k, v := range p.(map[string]int64) {
			total[k] += v
		}
	}
	keys := sortedKeys(total)
	sort.SliceStable(keys, func(i, j int) bool {
		if total[keys[i]] != total[keys[j]] {
			return total[keys[i]] > total[keys[j]]
		}
		return keys[i] < keys[j]
	})
	if len(keys) > 100 {
		keys = keys[:100]
	}
	var rows [][]string
	for _, k := range keys {
		rows = append(rows, []string{k, itoa(total[k])})
	}
	return rows
}

// ---------------------------------------------------------------------------
// Q22: global sales opportunity.

type q22 struct{}

func (q22) Num() int    { return 22 }
func (q22) Large() bool { return true }

var q22Codes = map[string]bool{"13": true, "31": true, "23": true, "29": true, "30": true, "18": true, "17": true}

func (q22) Fragment(db *DB) (any, int) {
	// Ship the distinct customer keys that have orders on this partition.
	seen := map[int32]bool{}
	for i := range db.Orders {
		seen[db.Orders[i].CustKey] = true
	}
	out := make([]int32, 0, len(seen))
	for ck := range seen {
		out = append(out, ck)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out, len(db.Orders)
}

func (q22) Merge(coord *DB, partials []any) [][]string {
	hasOrders := map[int32]bool{}
	for _, p := range partials {
		for _, ck := range p.([]int32) {
			hasOrders[ck] = true
		}
	}
	// Average positive acctbal over qualifying country codes (customer is
	// replicated; the coordinator computes this locally).
	var sum float64
	var n int
	code := func(c *Customer) string { return c.Phone[:2] }
	for i := range coord.Customer {
		c := &coord.Customer[i]
		if c.Acctbal > 0 && q22Codes[code(c)] {
			sum += c.Acctbal
			n++
		}
	}
	if n == 0 {
		return nil
	}
	avg := sum / float64(n)
	type agg struct {
		n   int64
		bal float64
	}
	out := map[string]*agg{}
	for i := range coord.Customer {
		c := &coord.Customer[i]
		if !q22Codes[code(c)] || c.Acctbal <= avg || hasOrders[c.Key] {
			continue
		}
		a := out[code(c)]
		if a == nil {
			a = &agg{}
			out[code(c)] = a
		}
		a.n++
		a.bal += c.Acctbal
	}
	var rows [][]string
	for _, k := range sortedKeys(out) {
		rows = append(rows, []string{k, itoa(out[k].n), f2(out[k].bal)})
	}
	return rows
}
