// Package tpch implements the TPC-H decision-support benchmark (§5.5):
// a scaled-down dbgen for the eight tables, hand-written distributed
// plans for all 22 queries, and a runner that executes them over three
// RPC stacks — vanilla Thrift over IPoIB, HatRPC-Service, and
// HatRPC-Function — on the simulated 10-node cluster.
//
// Layout follows the usual shared-nothing pattern: the fact tables
// (orders, lineitem, partsupp) are hash-partitioned across workers
// (orders/lineitem co-located on orderkey), dimension tables are
// replicated. Workers evaluate query fragments locally and ship partial
// results to the coordinator over the benchmarked RPC stack.
package tpch

import (
	"fmt"
	"math/rand"
)

// Date is days since 1992-01-01 in a leap-free synthetic calendar (used
// consistently by the generator and the queries).
type Date int32

var monthDays = [12]int32{31, 28, 31, 30, 31, 30, 31, 31, 30, 31, 30, 31}

// MkDate builds a Date from y-m-d (y in 1992..1998).
func MkDate(y, m, d int) Date {
	days := int32(y-1992) * 365
	for i := 0; i < m-1; i++ {
		days += monthDays[i]
	}
	return Date(days + int32(d) - 1)
}

// Year returns the calendar year of d.
func (d Date) Year() int { return 1992 + int(d)/365 }

// Month returns the calendar month (1-12) of d.
func (d Date) Month() int {
	rem := int32(d) % 365
	for i, md := range monthDays {
		if rem < md {
			return i + 1
		}
		rem -= md
	}
	return 12
}

// Table row types (only the columns the 22 queries touch).

// Region is one TPC-H region row.
type Region struct {
	Key  int32
	Name string
}

// Nation is one nation row.
type Nation struct {
	Key       int32
	Name      string
	RegionKey int32
}

// Supplier is one supplier row.
type Supplier struct {
	Key     int32
	Name    string
	Nation  int32
	Acctbal float64
	Addr    string
	Phone   string
	Comment string
}

// Customer is one customer row.
type Customer struct {
	Key     int32
	Name    string
	Nation  int32
	Acctbal float64
	Segment string
	Phone   string
	Addr    string
	Comment string
}

// Part is one part row.
type Part struct {
	Key       int32
	Name      string
	Mfgr      string
	Brand     string
	Type      string
	Size      int32
	Container string
	Retail    float64
}

// PartSupp is one partsupp row.
type PartSupp struct {
	PartKey    int32
	SuppKey    int32
	AvailQty   int32
	SupplyCost float64
	Comment    string
}

// Order is one orders row.
type Order struct {
	Key       int32
	CustKey   int32
	Status    byte
	Total     float64
	Date      Date
	Priority  string
	Clerk     string
	ShipPrio  int32
	Comment   string
	LineCount int8 // generator bookkeeping
}

// Lineitem is one lineitem row.
type Lineitem struct {
	OrderKey    int32
	PartKey     int32
	SuppKey     int32
	LineNum     int8
	Qty         float64
	ExtPrice    float64
	Discount    float64
	Tax         float64
	ReturnFlag  byte
	LineStatus  byte
	ShipDate    Date
	CommitDate  Date
	ReceiptDate Date
	ShipInstr   string
	ShipMode    string
	Comment     string
}

// DB holds one partition's table slices. Dimension tables are fully
// populated on every partition (replication); fact tables hold only the
// partition's share.
type DB struct {
	Region   []Region
	Nation   []Nation
	Supplier []Supplier
	Customer []Customer
	Part     []Part
	PartSupp []PartSupp
	Orders   []Order
	Lineitem []Lineitem

	// PSCost is a replicated (pkey,skey) → supplycost index; the cost
	// column is tiny compared to the fact tables, and replicating it
	// keeps the Q9 profit join worker-local (the usual engineering
	// choice for shared-nothing TPC-H).
	PSCost map[int64]float64

	// PartIdx indexes Part by key (replicated tables only).
	PartIdx map[int32]*Part
	SuppIdx map[int32]*Supplier
	CustIdx map[int32]*Customer
	NatIdx  map[int32]*Nation
}

var regionNames = []string{"AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST"}

var nationDefs = []struct {
	name string
	reg  int32
}{
	{"ALGERIA", 0}, {"ARGENTINA", 1}, {"BRAZIL", 1}, {"CANADA", 1},
	{"EGYPT", 4}, {"ETHIOPIA", 0}, {"FRANCE", 3}, {"GERMANY", 3},
	{"INDIA", 2}, {"INDONESIA", 2}, {"IRAN", 4}, {"IRAQ", 4},
	{"JAPAN", 2}, {"JORDAN", 4}, {"KENYA", 0}, {"MOROCCO", 0},
	{"MOZAMBIQUE", 0}, {"PERU", 1}, {"CHINA", 2}, {"ROMANIA", 3},
	{"SAUDI ARABIA", 4}, {"VIETNAM", 2}, {"RUSSIA", 3}, {"UNITED KINGDOM", 3},
	{"UNITED STATES", 1},
}

var segments = []string{"AUTOMOBILE", "BUILDING", "FURNITURE", "MACHINERY", "HOUSEHOLD"}
var priorities = []string{"1-URGENT", "2-HIGH", "3-MEDIUM", "4-NOT SPECIFIED", "5-LOW"}
var shipModes = []string{"REG AIR", "AIR", "RAIL", "SHIP", "TRUCK", "MAIL", "FOB"}
var shipInstructs = []string{"DELIVER IN PERSON", "COLLECT COD", "NONE", "TAKE BACK RETURN"}
var containers = []string{"SM CASE", "SM BOX", "SM PACK", "SM PKG", "MED BAG", "MED BOX", "MED PKG", "MED PACK", "LG CASE", "LG BOX", "LG PACK", "LG PKG", "JUMBO BOX", "JUMBO PKG", "WRAP CASE"}
var typeSyl1 = []string{"STANDARD", "SMALL", "MEDIUM", "LARGE", "ECONOMY", "PROMO"}
var typeSyl2 = []string{"ANODIZED", "BURNISHED", "PLATED", "POLISHED", "BRUSHED"}
var typeSyl3 = []string{"TIN", "NICKEL", "BRASS", "STEEL", "COPPER"}
var partNameWords = []string{"almond", "antique", "aquamarine", "azure", "beige", "bisque", "black", "blanched", "blue", "blush", "brown", "burlywood", "chartreuse", "forest", "green", "ivory", "khaki", "lace", "lemon", "maroon"}

// Scale describes dbgen sizing at a scale factor.
type Scale struct {
	Suppliers int
	Customers int
	Parts     int
	Orders    int
}

// ScaleFor returns the table cardinalities at scale factor sf
// (TPC-H ratios: 10k/150k/200k/1.5M per SF).
func ScaleFor(sf float64) Scale {
	max1 := func(v float64) int {
		if v < 1 {
			return 1
		}
		return int(v)
	}
	return Scale{
		Suppliers: max1(10_000 * sf),
		Customers: max1(150_000 * sf),
		Parts:     max1(200_000 * sf),
		Orders:    max1(1_500_000 * sf),
	}
}

// Generate builds `parts` partition DBs at the given scale factor.
// Orders (with their lineitems) are assigned to partition okey%parts;
// partsupp rows to pkey%parts; dimension tables are replicated.
//
// The RNG is caller-supplied so every random draw in the simulation is
// explicitly seeded (simdet: DES-scheduled packages never mint their
// own sources). Thread sim.Env.Rand() or rand.New(rand.NewSource(seed))
// built outside the DES packages.
func Generate(sf float64, parts int, rng *rand.Rand) []*DB {
	if parts < 1 {
		parts = 1
	}
	sc := ScaleFor(sf)
	dbs := make([]*DB, parts)
	for i := range dbs {
		dbs[i] = &DB{}
	}

	// Replicated dimensions.
	var regions []Region
	for i, n := range regionNames {
		regions = append(regions, Region{Key: int32(i), Name: n})
	}
	var nations []Nation
	for i, nd := range nationDefs {
		nations = append(nations, Nation{Key: int32(i), Name: nd.name, RegionKey: nd.reg})
	}
	suppliers := make([]Supplier, sc.Suppliers)
	for i := range suppliers {
		comment := randComment(rng)
		if rng.Intn(25) == 0 { // scaled-up rate so tiny SFs keep Q16 populated
			comment = "Customer Complaints " + comment
		}
		suppliers[i] = Supplier{
			Key:     int32(i + 1),
			Name:    fmt.Sprintf("Supplier#%09d", i+1),
			Nation:  int32(rng.Intn(25)),
			Acctbal: -999.99 + rng.Float64()*10998.98,
			Addr:    randText(rng, 15),
			Phone:   randPhone(rng),
			Comment: comment,
		}
	}
	customers := make([]Customer, sc.Customers)
	for i := range customers {
		nat := int32(rng.Intn(25))
		customers[i] = Customer{
			Key:     int32(i + 1),
			Name:    fmt.Sprintf("Customer#%09d", i+1),
			Nation:  nat,
			Acctbal: -999.99 + rng.Float64()*10998.98,
			Segment: segments[rng.Intn(len(segments))],
			Phone:   fmt.Sprintf("%d%s", 10+nat, randPhone(rng)[2:]),
			Addr:    randText(rng, 15),
			Comment: randComment(rng),
		}
	}
	partsTbl := make([]Part, sc.Parts)
	for i := range partsTbl {
		w1 := partNameWords[rng.Intn(len(partNameWords))]
		w2 := partNameWords[rng.Intn(len(partNameWords))]
		m := rng.Intn(5) + 1
		b := rng.Intn(5) + 1
		partsTbl[i] = Part{
			Key:       int32(i + 1),
			Name:      w1 + " " + w2,
			Mfgr:      fmt.Sprintf("Manufacturer#%d", m),
			Brand:     fmt.Sprintf("Brand#%d%d", m, b),
			Type:      typeSyl1[rng.Intn(6)] + " " + typeSyl2[rng.Intn(5)] + " " + typeSyl3[rng.Intn(5)],
			Size:      int32(rng.Intn(50) + 1),
			Container: containers[rng.Intn(len(containers))],
			Retail:    900 + float64(i%1000)/10,
		}
	}
	for _, db := range dbs {
		db.Region = regions
		db.Nation = nations
		db.Supplier = suppliers
		db.Customer = customers
		db.Part = partsTbl
		db.buildIndexes()
	}

	// Partitioned partsupp: 4 suppliers per part. The cost index is
	// replicated everywhere.
	psCost := make(map[int64]float64, sc.Parts*4)
	for _, pt := range partsTbl {
		for j := 0; j < 4; j++ {
			ps := PartSupp{
				PartKey:    pt.Key,
				SuppKey:    int32((int(pt.Key)+j*(sc.Suppliers/4+1))%sc.Suppliers) + 1,
				AvailQty:   int32(rng.Intn(9999) + 1),
				SupplyCost: 1 + rng.Float64()*999,
				Comment:    randComment(rng),
			}
			psCost[PSKey(ps.PartKey, ps.SuppKey)] = ps.SupplyCost
			dbs[int(pt.Key)%parts].PartSupp = append(dbs[int(pt.Key)%parts].PartSupp, ps)
		}
	}
	for _, db := range dbs {
		db.PSCost = psCost
	}

	// Partitioned orders + co-located lineitems.
	endDate := MkDate(1998, 8, 2)
	for i := 0; i < sc.Orders; i++ {
		okey := int32(i + 1)
		oDate := Date(rng.Intn(int(MkDate(1998, 8, 2)) - 120))
		nLines := rng.Intn(7) + 1
		comment := randComment(rng)
		if rng.Intn(100) == 0 {
			comment = "special requests " + comment
		}
		o := Order{
			Key:       okey,
			CustKey:   int32(rng.Intn(sc.Customers) + 1),
			Total:     0,
			Date:      oDate,
			Priority:  priorities[rng.Intn(5)],
			Clerk:     fmt.Sprintf("Clerk#%09d", rng.Intn(1000)+1),
			ShipPrio:  0,
			Comment:   comment,
			LineCount: int8(nLines),
		}
		part := int(okey) % parts
		allShipped := true
		anyShipped := false
		for l := 0; l < nLines; l++ {
			pkey := int32(rng.Intn(sc.Parts) + 1)
			qty := float64(rng.Intn(50) + 1)
			price := partsTbl[pkey-1].Retail * qty / 10
			ship := oDate + Date(rng.Intn(120)+1)
			commit := oDate + Date(rng.Intn(90)+30)
			receipt := ship + Date(rng.Intn(30)+1)
			li := Lineitem{
				OrderKey:    okey,
				PartKey:     pkey,
				SuppKey:     int32((int(pkey)+(l%4)*(sc.Suppliers/4+1))%sc.Suppliers) + 1,
				LineNum:     int8(l + 1),
				Qty:         qty,
				ExtPrice:    price,
				Discount:    float64(rng.Intn(11)) / 100,
				Tax:         float64(rng.Intn(9)) / 100,
				ShipDate:    ship,
				CommitDate:  commit,
				ReceiptDate: receipt,
				ShipInstr:   shipInstructs[rng.Intn(4)],
				ShipMode:    shipModes[rng.Intn(7)],
				Comment:     randText(rng, 12),
			}
			if ship > endDate {
				li.ReturnFlag = 'N'
				li.LineStatus = 'O'
				allShipped = false
			} else {
				anyShipped = true
				li.LineStatus = 'F'
				if rng.Intn(4) == 0 {
					li.ReturnFlag = 'R'
				} else if rng.Intn(2) == 0 {
					li.ReturnFlag = 'A'
				} else {
					li.ReturnFlag = 'N'
				}
			}
			o.Total += price * (1 + li.Tax) * (1 - li.Discount)
			dbs[part].Lineitem = append(dbs[part].Lineitem, li)
		}
		switch {
		case allShipped:
			o.Status = 'F'
		case anyShipped:
			o.Status = 'P'
		default:
			o.Status = 'O'
		}
		dbs[part].Orders = append(dbs[part].Orders, o)
	}
	return dbs
}

func (db *DB) buildIndexes() {
	db.PartIdx = make(map[int32]*Part, len(db.Part))
	for i := range db.Part {
		db.PartIdx[db.Part[i].Key] = &db.Part[i]
	}
	db.SuppIdx = make(map[int32]*Supplier, len(db.Supplier))
	for i := range db.Supplier {
		db.SuppIdx[db.Supplier[i].Key] = &db.Supplier[i]
	}
	db.CustIdx = make(map[int32]*Customer, len(db.Customer))
	for i := range db.Customer {
		db.CustIdx[db.Customer[i].Key] = &db.Customer[i]
	}
	db.NatIdx = make(map[int32]*Nation, len(db.Nation))
	for i := range db.Nation {
		db.NatIdx[db.Nation[i].Key] = &db.Nation[i]
	}
}

var commentWords = []string{"carefully", "quickly", "furiously", "slyly", "blithely", "deposits", "packages", "accounts", "requests", "instructions", "theodolites", "pinto beans", "foxes", "ideas", "dependencies", "platelets"}

func randComment(rng *rand.Rand) string {
	n := rng.Intn(4) + 3
	out := ""
	for i := 0; i < n; i++ {
		if i > 0 {
			out += " "
		}
		out += commentWords[rng.Intn(len(commentWords))]
	}
	return out
}

func randText(rng *rand.Rand, n int) string {
	const alpha = "abcdefghijklmnopqrstuvwxyz0123456789 "
	b := make([]byte, n)
	for i := range b {
		b[i] = alpha[rng.Intn(len(alpha))]
	}
	return string(b)
}

func randPhone(rng *rand.Rand) string {
	return fmt.Sprintf("%02d-%03d-%03d-%04d", 10+rng.Intn(25), rng.Intn(1000), rng.Intn(1000), rng.Intn(10000))
}

// PSKey packs a (pkey, skey) pair into the PSCost index key.
func PSKey(pkey, skey int32) int64 { return int64(pkey)<<32 | int64(uint32(skey)) }
