package tpch

import (
	"encoding/gob"
	"sort"
	"strings"
)

func init() {
	gob.Register(map[string]*Q1Agg{})
	gob.Register([]Q2Cand{})
	gob.Register(map[int64]*Q3Agg{})
	gob.Register(map[string]int64{})
	gob.Register(map[int32]float64{})
	gob.Register(map[string]float64{})
	gob.Register(Q8Partial{})
	gob.Register(map[string]*Q9Agg{})
	gob.Register(Q11Partial{})
}

// ---------------------------------------------------------------------------
// Q1: pricing summary report.

// Q1Agg is the per-(returnflag,linestatus) accumulator.
type Q1Agg struct {
	Qty, Price, Disc, Charge, DiscSum float64
	Count                             int64
}

type q1 struct{}

func (q1) Num() int    { return 1 }
func (q1) Large() bool { return false }

func (q1) Fragment(db *DB) (any, int) {
	cutoff := MkDate(1998, 12, 1) - 90
	out := map[string]*Q1Agg{}
	for i := range db.Lineitem {
		l := &db.Lineitem[i]
		if l.ShipDate > cutoff {
			continue
		}
		k := string([]byte{l.ReturnFlag, l.LineStatus})
		a := out[k]
		if a == nil {
			a = &Q1Agg{}
			out[k] = a
		}
		a.Qty += l.Qty
		a.Price += l.ExtPrice
		a.Disc += l.ExtPrice * (1 - l.Discount)
		a.Charge += l.ExtPrice * (1 - l.Discount) * (1 + l.Tax)
		a.DiscSum += l.Discount
		a.Count++
	}
	return out, len(db.Lineitem)
}

func (q1) Merge(coord *DB, partials []any) [][]string {
	total := map[string]*Q1Agg{}
	for _, p := range partials {
		for k, a := range p.(map[string]*Q1Agg) {
			t := total[k]
			if t == nil {
				t = &Q1Agg{}
				total[k] = t
			}
			t.Qty += a.Qty
			t.Price += a.Price
			t.Disc += a.Disc
			t.Charge += a.Charge
			t.DiscSum += a.DiscSum
			t.Count += a.Count
		}
	}
	var rows [][]string
	for _, k := range sortedKeys(total) {
		a := total[k]
		n := float64(a.Count)
		rows = append(rows, []string{
			k[:1], k[1:], f2(a.Qty), f2(a.Price), f2(a.Disc), f2(a.Charge),
			f2(a.Qty / n), f2(a.Price / n), f4(a.DiscSum / n), itoa(a.Count),
		})
	}
	return rows
}

// ---------------------------------------------------------------------------
// Q2: minimum cost supplier (size 15, type *BRASS, region EUROPE).

// Q2Cand is one qualifying partsupp candidate row.
type Q2Cand struct {
	PartKey int32
	SuppKey int32
	Cost    float64
}

type q2 struct{}

func (q2) Num() int    { return 2 }
func (q2) Large() bool { return true }

func (q2) Fragment(db *DB) (any, int) {
	var out []Q2Cand
	for i := range db.PartSupp {
		ps := &db.PartSupp[i]
		pt := db.PartIdx[ps.PartKey]
		if pt.Size != 15 || !strings.HasSuffix(pt.Type, "BRASS") {
			continue
		}
		sup := db.SuppIdx[ps.SuppKey]
		if db.NatIdx[sup.Nation].RegionKey != 3 { // EUROPE
			continue
		}
		out = append(out, Q2Cand{PartKey: ps.PartKey, SuppKey: ps.SuppKey, Cost: ps.SupplyCost})
	}
	return out, len(db.PartSupp)
}

func (q2) Merge(coord *DB, partials []any) [][]string {
	minCost := map[int32]float64{}
	var all []Q2Cand
	for _, p := range partials {
		for _, c := range p.([]Q2Cand) {
			all = append(all, c)
			if mc, ok := minCost[c.PartKey]; !ok || c.Cost < mc {
				minCost[c.PartKey] = c.Cost
			}
		}
	}
	var rows [][]string
	for _, c := range all {
		if c.Cost != minCost[c.PartKey] {
			continue
		}
		s := coord.SuppIdx[c.SuppKey]
		pt := coord.PartIdx[c.PartKey]
		rows = append(rows, []string{
			f2(s.Acctbal), s.Name, coord.NatIdx[s.Nation].Name,
			i32toa(c.PartKey), pt.Mfgr, s.Addr, s.Phone,
		})
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i][0] != rows[j][0] {
			return rows[i][0] > rows[j][0]
		}
		if rows[i][2] != rows[j][2] {
			return rows[i][2] < rows[j][2]
		}
		if rows[i][1] != rows[j][1] {
			return rows[i][1] < rows[j][1]
		}
		return rows[i][3] < rows[j][3]
	})
	if len(rows) > 100 {
		rows = rows[:100]
	}
	return rows
}

// ---------------------------------------------------------------------------
// Q3: shipping priority (segment BUILDING, date 1995-03-15).

// Q3Agg accumulates revenue per qualifying order.
type Q3Agg struct {
	Revenue  float64
	Date     Date
	ShipPrio int32
}

type q3 struct{}

func (q3) Num() int    { return 3 }
func (q3) Large() bool { return false }

func (q3) Fragment(db *DB) (any, int) {
	pivot := MkDate(1995, 3, 15)
	// Qualifying orders on this partition (customer is replicated).
	ok := map[int32]*Q3Agg{}
	for i := range db.Orders {
		o := &db.Orders[i]
		if o.Date >= pivot {
			continue
		}
		if db.CustIdx[o.CustKey].Segment != "BUILDING" {
			continue
		}
		ok[o.Key] = &Q3Agg{Date: o.Date, ShipPrio: o.ShipPrio}
	}
	out := map[int64]*Q3Agg{}
	for i := range db.Lineitem {
		l := &db.Lineitem[i]
		a := ok[l.OrderKey]
		if a == nil || l.ShipDate <= pivot {
			continue
		}
		a.Revenue += l.ExtPrice * (1 - l.Discount)
		out[int64(l.OrderKey)] = a
	}
	return out, len(db.Orders) + len(db.Lineitem)
}

func (q3) Merge(coord *DB, partials []any) [][]string {
	type row struct {
		okey int64
		a    *Q3Agg
	}
	var all []row
	for _, p := range partials {
		for k, a := range p.(map[int64]*Q3Agg) {
			all = append(all, row{k, a})
		}
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].a.Revenue != all[j].a.Revenue {
			return all[i].a.Revenue > all[j].a.Revenue
		}
		return all[i].a.Date < all[j].a.Date
	})
	if len(all) > 10 {
		all = all[:10]
	}
	var rows [][]string
	for _, r := range all {
		rows = append(rows, []string{itoa(r.okey), f2(r.a.Revenue), itoa(int64(r.a.Date)), i32toa(r.a.ShipPrio)})
	}
	return rows
}

// ---------------------------------------------------------------------------
// Q4: order priority checking (1993-07 quarter).

type q4 struct{}

func (q4) Num() int    { return 4 }
func (q4) Large() bool { return false }

func (q4) Fragment(db *DB) (any, int) {
	lo, hi := MkDate(1993, 7, 1), MkDate(1993, 10, 1)
	late := map[int32]bool{}
	for i := range db.Lineitem {
		l := &db.Lineitem[i]
		if l.CommitDate < l.ReceiptDate {
			late[l.OrderKey] = true
		}
	}
	out := map[string]int64{}
	for i := range db.Orders {
		o := &db.Orders[i]
		if o.Date >= lo && o.Date < hi && late[o.Key] {
			out[o.Priority]++
		}
	}
	return out, len(db.Orders) + len(db.Lineitem)
}

func (q4) Merge(coord *DB, partials []any) [][]string {
	return mergeCountMap(partials)
}

// mergeCountMap merges map[string]int64 partials into sorted rows.
func mergeCountMap(partials []any) [][]string {
	total := map[string]int64{}
	for _, p := range partials {
		for k, v := range p.(map[string]int64) {
			total[k] += v
		}
	}
	var rows [][]string
	for _, k := range sortedKeys(total) {
		rows = append(rows, []string{k, itoa(total[k])})
	}
	return rows
}

// ---------------------------------------------------------------------------
// Q5: local supplier volume (region ASIA, 1994).

type q5 struct{}

func (q5) Num() int    { return 5 }
func (q5) Large() bool { return false }

func (q5) Fragment(db *DB) (any, int) {
	lo, hi := MkDate(1994, 1, 1), MkDate(1995, 1, 1)
	orderNation := map[int32]int32{} // okey → customer nation (if in ASIA and in window)
	for i := range db.Orders {
		o := &db.Orders[i]
		if o.Date < lo || o.Date >= hi {
			continue
		}
		nat := db.CustIdx[o.CustKey].Nation
		if db.NatIdx[nat].RegionKey != 2 { // ASIA
			continue
		}
		orderNation[o.Key] = nat
	}
	out := map[string]float64{}
	for i := range db.Lineitem {
		l := &db.Lineitem[i]
		cn, ok := orderNation[l.OrderKey]
		if !ok {
			continue
		}
		if db.SuppIdx[l.SuppKey].Nation != cn {
			continue
		}
		out[db.NatIdx[cn].Name] += l.ExtPrice * (1 - l.Discount)
	}
	return out, len(db.Orders) + len(db.Lineitem)
}

func (q5) Merge(coord *DB, partials []any) [][]string {
	return mergeRevMapDesc(partials)
}

// mergeRevMapDesc merges map[string]float64 partials, sorted by value
// descending.
func mergeRevMapDesc(partials []any) [][]string {
	total := map[string]float64{}
	for _, p := range partials {
		for k, v := range p.(map[string]float64) {
			total[k] += v
		}
	}
	keys := sortedKeys(total)
	sort.SliceStable(keys, func(i, j int) bool { return total[keys[i]] > total[keys[j]] })
	var rows [][]string
	for _, k := range keys {
		rows = append(rows, []string{k, f2(total[k])})
	}
	return rows
}

// ---------------------------------------------------------------------------
// Q6: forecasting revenue change.

type q6 struct{}

func (q6) Num() int    { return 6 }
func (q6) Large() bool { return false }

func (q6) Fragment(db *DB) (any, int) {
	lo, hi := MkDate(1994, 1, 1), MkDate(1995, 1, 1)
	sum := 0.0
	for i := range db.Lineitem {
		l := &db.Lineitem[i]
		if l.ShipDate >= lo && l.ShipDate < hi &&
			l.Discount >= 0.05-1e-9 && l.Discount <= 0.07+1e-9 && l.Qty < 24 {
			sum += l.ExtPrice * l.Discount
		}
	}
	return map[string]float64{"revenue": sum}, len(db.Lineitem)
}

func (q6) Merge(coord *DB, partials []any) [][]string {
	return mergeRevMapDesc(partials)
}

// ---------------------------------------------------------------------------
// Q7: volume shipping (FRANCE ↔ GERMANY, 1995–1996).

type q7 struct{}

func (q7) Num() int    { return 7 }
func (q7) Large() bool { return false }

func (q7) Fragment(db *DB) (any, int) {
	const fr, de = 6, 7
	custNat := map[int32]int32{}
	for i := range db.Orders {
		o := &db.Orders[i]
		n := db.CustIdx[o.CustKey].Nation
		if n == fr || n == de {
			custNat[o.Key] = n
		}
	}
	out := map[string]float64{}
	for i := range db.Lineitem {
		l := &db.Lineitem[i]
		cn, ok := custNat[l.OrderKey]
		if !ok {
			continue
		}
		sn := db.SuppIdx[l.SuppKey].Nation
		if !((sn == fr && cn == de) || (sn == de && cn == fr)) {
			continue
		}
		y := l.ShipDate.Year()
		if y != 1995 && y != 1996 {
			continue
		}
		k := db.NatIdx[sn].Name + "|" + db.NatIdx[cn].Name + "|" + itoa(int64(y))
		out[k] += l.ExtPrice * (1 - l.Discount)
	}
	return out, len(db.Orders) + len(db.Lineitem)
}

func (q7) Merge(coord *DB, partials []any) [][]string {
	total := map[string]float64{}
	for _, p := range partials {
		for k, v := range p.(map[string]float64) {
			total[k] += v
		}
	}
	var rows [][]string
	for _, k := range sortedKeys(total) {
		parts := strings.Split(k, "|")
		rows = append(rows, []string{parts[0], parts[1], parts[2], f2(total[k])})
	}
	return rows
}

// ---------------------------------------------------------------------------
// Q8: national market share (BRAZIL, AMERICA, ECONOMY ANODIZED STEEL).

// Q8Partial carries per-year total and BRAZIL volumes.
type Q8Partial struct {
	Total  map[int]float64
	Brazil map[int]float64
}

type q8 struct{}

func (q8) Num() int    { return 8 }
func (q8) Large() bool { return false }

func (q8) Fragment(db *DB) (any, int) {
	const brazil = 2
	inWindow := map[int32]int{} // okey → year, for AMERICA customers
	for i := range db.Orders {
		o := &db.Orders[i]
		y := o.Date.Year()
		if y != 1995 && y != 1996 {
			continue
		}
		if db.NatIdx[db.CustIdx[o.CustKey].Nation].RegionKey != 1 { // AMERICA
			continue
		}
		inWindow[o.Key] = y
	}
	out := Q8Partial{Total: map[int]float64{}, Brazil: map[int]float64{}}
	for i := range db.Lineitem {
		l := &db.Lineitem[i]
		y, ok := inWindow[l.OrderKey]
		if !ok {
			continue
		}
		if db.PartIdx[l.PartKey].Type != "ECONOMY ANODIZED STEEL" {
			continue
		}
		vol := l.ExtPrice * (1 - l.Discount)
		out.Total[y] += vol
		if db.SuppIdx[l.SuppKey].Nation == brazil {
			out.Brazil[y] += vol
		}
	}
	return out, len(db.Orders) + len(db.Lineitem)
}

func (q8) Merge(coord *DB, partials []any) [][]string {
	tot := map[int]float64{}
	br := map[int]float64{}
	for _, p := range partials {
		q := p.(Q8Partial)
		for y, v := range q.Total {
			tot[y] += v
		}
		for y, v := range q.Brazil {
			br[y] += v
		}
	}
	var rows [][]string
	for _, y := range []int{1995, 1996} {
		share := 0.0
		if tot[y] > 0 {
			share = br[y] / tot[y]
		}
		rows = append(rows, []string{itoa(int64(y)), f4(share)})
	}
	return rows
}

// ---------------------------------------------------------------------------
// Q9: product type profit measure (parts named *green*).

// Q9Agg accumulates profit per (nation, year).
type Q9Agg struct{ Profit float64 }

type q9 struct{}

func (q9) Num() int    { return 9 }
func (q9) Large() bool { return false }

func (q9) Fragment(db *DB) (any, int) {
	orderYear := map[int32]int{}
	for i := range db.Orders {
		o := &db.Orders[i]
		orderYear[o.Key] = o.Date.Year()
	}
	out := map[string]*Q9Agg{}
	for i := range db.Lineitem {
		l := &db.Lineitem[i]
		if !strings.Contains(db.PartIdx[l.PartKey].Name, "green") {
			continue
		}
		cost, ok := db.PSCost[PSKey(l.PartKey, l.SuppKey)]
		if !ok {
			continue
		}
		y := orderYear[l.OrderKey]
		k := db.NatIdx[db.SuppIdx[l.SuppKey].Nation].Name + "|" + itoa(int64(y))
		a := out[k]
		if a == nil {
			a = &Q9Agg{}
			out[k] = a
		}
		a.Profit += l.ExtPrice*(1-l.Discount) - cost*l.Qty
	}
	return out, len(db.Orders) + len(db.Lineitem)
}

func (q9) Merge(coord *DB, partials []any) [][]string {
	total := map[string]float64{}
	for _, p := range partials {
		for k, a := range p.(map[string]*Q9Agg) {
			total[k] += a.Profit
		}
	}
	keys := sortedKeys(total)
	sort.SliceStable(keys, func(i, j int) bool {
		ni, yi, _ := strings.Cut(keys[i], "|")
		nj, yj, _ := strings.Cut(keys[j], "|")
		if ni != nj {
			return ni < nj
		}
		return yi > yj
	})
	var rows [][]string
	for _, k := range keys {
		n, y, _ := strings.Cut(k, "|")
		rows = append(rows, []string{n, y, f2(total[k])})
	}
	return rows
}

// ---------------------------------------------------------------------------
// Q10: returned item reporting (1993-10 quarter, top 20 customers).

type q10 struct{}

func (q10) Num() int    { return 10 }
func (q10) Large() bool { return true }

func (q10) Fragment(db *DB) (any, int) {
	lo, hi := MkDate(1993, 10, 1), MkDate(1994, 1, 1)
	orderCust := map[int32]int32{}
	for i := range db.Orders {
		o := &db.Orders[i]
		if o.Date >= lo && o.Date < hi {
			orderCust[o.Key] = o.CustKey
		}
	}
	out := map[int32]float64{}
	for i := range db.Lineitem {
		l := &db.Lineitem[i]
		ck, ok := orderCust[l.OrderKey]
		if !ok || l.ReturnFlag != 'R' {
			continue
		}
		out[ck] += l.ExtPrice * (1 - l.Discount)
	}
	return out, len(db.Orders) + len(db.Lineitem)
}

func (q10) Merge(coord *DB, partials []any) [][]string {
	total := map[int32]float64{}
	for _, p := range partials {
		for ck, v := range p.(map[int32]float64) {
			total[ck] += v
		}
	}
	keys := sortedKeys(total)
	sort.SliceStable(keys, func(i, j int) bool { return total[keys[i]] > total[keys[j]] })
	if len(keys) > 20 {
		keys = keys[:20]
	}
	var rows [][]string
	for _, ck := range keys {
		c := coord.CustIdx[ck]
		rows = append(rows, []string{
			i32toa(ck), c.Name, f2(total[ck]), f2(c.Acctbal),
			coord.NatIdx[c.Nation].Name, c.Phone,
		})
	}
	return rows
}

// ---------------------------------------------------------------------------
// Q11: important stock identification (GERMANY).

// Q11Partial carries per-part value and the partition's total.
type Q11Partial struct {
	Values map[int32]float64
	Total  float64
}

type q11 struct{}

func (q11) Num() int    { return 11 }
func (q11) Large() bool { return true }

func (q11) Fragment(db *DB) (any, int) {
	const germany = 7
	out := Q11Partial{Values: map[int32]float64{}}
	for i := range db.PartSupp {
		ps := &db.PartSupp[i]
		if db.SuppIdx[ps.SuppKey].Nation != germany {
			continue
		}
		v := ps.SupplyCost * float64(ps.AvailQty)
		out.Values[ps.PartKey] += v
		out.Total += v
	}
	return out, len(db.PartSupp)
}

func (q11) Merge(coord *DB, partials []any) [][]string {
	total := 0.0
	vals := map[int32]float64{}
	for _, p := range partials {
		q := p.(Q11Partial)
		total += q.Total
		for k, v := range q.Values {
			vals[k] += v
		}
	}
	// The 0.0001 fraction is specified against SF1; scale by table size.
	threshold := total * 0.0001
	keys := sortedKeys(vals)
	sort.SliceStable(keys, func(i, j int) bool { return vals[keys[i]] > vals[keys[j]] })
	var rows [][]string
	for _, k := range keys {
		if vals[k] <= threshold {
			continue
		}
		rows = append(rows, []string{i32toa(k), f2(vals[k])})
	}
	return rows
}
