package ycsb

import (
	"fmt"

	"hatrpc/internal/engine"
	"hatrpc/internal/hatkv"
	kvgen "hatrpc/internal/hatkv/gen"
	"hatrpc/internal/sim"
	"hatrpc/internal/simnet"
	"hatrpc/internal/stats"
	"hatrpc/internal/trdma"
)

// SystemKind names one line of Figures 15/16.
type SystemKind int

// The six compared systems (§5.4).
const (
	SysHatService SystemKind = iota
	SysHatFunction
	SysARgRPC
	SysHERD
	SysPilaf
	SysRFP
)

func (s SystemKind) String() string {
	switch s {
	case SysHatService:
		return "HatRPC-Service"
	case SysHatFunction:
		return "HatRPC-Function"
	case SysARgRPC:
		return "AR-gRPC"
	case SysHERD:
		return "HERD"
	case SysPilaf:
		return "Pilaf"
	case SysRFP:
		return "RFP"
	}
	return fmt.Sprintf("SystemKind(%d)", int(s))
}

// AllSystems lists the comparison set in reporting order.
var AllSystems = []SystemKind{SysHatService, SysHatFunction, SysARgRPC, SysHERD, SysPilaf, SysRFP}

// policyTransport drives the generated HatKV client through a fixed
// per-system protocol policy — the paper's comparator emulation ("we only
// study their communication protocols and emulate them", all six sharing
// the same backend).
type policyTransport struct {
	conn   *engine.Conn
	fnIDs  map[string]uint32
	policy func(fn string, reqSize int) engine.CallOpts
}

func (t *policyTransport) Invoke(p *sim.Proc, fn string, request []byte, oneway bool) ([]byte, error) {
	opts := t.policy(fn, len(request))
	opts.Oneway = oneway
	return t.conn.Call(p, t.fnIDs[fn], request, opts)
}

func (t *policyTransport) Close() error { return nil }

// diagPolicy, when set, overrides comparator policies (test hook).
var diagPolicy func(fn string, reqSize int) engine.CallOpts

// comparatorPolicy returns the per-call protocol choice each emulated
// system makes.
func comparatorPolicy(kind SystemKind, thresh int) func(fn string, reqSize int) engine.CallOpts {
	if diagPolicy != nil {
		return diagPolicy
	}
	switch kind {
	case SysARgRPC:
		// AR-gRPC: eager below the switch point, Read-RNDV above, on both
		// legs; event-driven (gRPC completion queues).
		return func(fn string, reqSize int) engine.CallOpts {
			req := engine.EagerSendRecv
			if reqSize > thresh {
				req = engine.ReadRNDV
			}
			return engine.CallOpts{Proto: req, RespProto: engine.HybridEagerRead, Busy: false}
		}
	case SysHERD:
		// HERD: request WRITE into a polled slot, response via SEND;
		// clients spin on receives.
		return func(fn string, reqSize int) engine.CallOpts {
			return engine.CallOpts{Proto: engine.HERD, RespProto: engine.HERD, Busy: true}
		}
	case SysPilaf:
		// Pilaf: GETs fetched with ~3 READs; PUTs via SEND/RECV.
		return func(fn string, reqSize int) engine.CallOpts {
			switch fn {
			case "Get", "MultiGet":
				return engine.CallOpts{Proto: engine.Pilaf, RespProto: engine.Pilaf, Busy: true}
			default:
				return engine.CallOpts{Proto: engine.EagerSendRecv, RespProto: engine.EagerSendRecv, Busy: true}
			}
		}
	case SysRFP:
		// RFP: WRITE in, READ the response back, spin while fetching.
		return func(fn string, reqSize int) engine.CallOpts {
			return engine.CallOpts{Proto: engine.RFP, RespProto: engine.RFP, Busy: true}
		}
	}
	panic("ycsb: no policy for " + kind.String())
}

// OpStats is the per-operation outcome for one system.
type OpStats struct {
	Ops      int
	OpsPerS  float64
	AvgLatNs float64
	P99Ns    float64
}

// Result is one system's Figure 15/16 line.
type Result struct {
	System   SystemKind
	Workload string
	PerOp    map[Op]OpStats
	TotalOps float64 // aggregate ops/s
}

// RunConfig parameterizes a YCSB comparison run.
type RunConfig struct {
	Workload   Workload
	Systems    []SystemKind
	Clients    int // total clients (paper: 128 over 4 nodes)
	Nodes      int // cluster size incl. server (paper: 5)
	DurationNs int64
	Seed       int64
}

// DefaultRunConfig mirrors §5.4: 128 clients on 4 nodes + 1 server.
func DefaultRunConfig(w Workload) RunConfig {
	return RunConfig{
		Workload: w, Systems: AllSystems,
		Clients: 128, Nodes: 5, DurationNs: 500_000, Seed: 99,
	}
}

// Run executes the comparison, one fresh cluster per system.
func Run(cfg RunConfig) []Result {
	out := make([]Result, 0, len(cfg.Systems))
	for _, sys := range cfg.Systems {
		out = append(out, runSystem(cfg, sys))
	}
	return out
}

func runSystem(cfg RunConfig, kind SystemKind) Result {
	env := sim.NewEnv(cfg.Seed)
	ncfg := simnet.DefaultConfig()
	ncfg.Nodes = cfg.Nodes
	cl := simnet.NewCluster(env, ncfg)
	srvEng := engine.New(cl.Node(0), engine.DefaultConfig())
	clientEngs := make([]*engine.Engine, cl.Nodes()-1)
	for i := range clientEngs {
		clientEngs[i] = engine.New(cl.Node(i+1), engine.DefaultConfig())
	}

	// Backend: hint-tuned for the HatRPC variants, stock for comparators.
	var sh *trdma.ServiceHints
	switch kind {
	case SysHatService:
		sh = hatkv.ServiceOnlyHints()
	case SysHatFunction:
		sh = hatkv.FunctionHints()
	default:
		sh = hatkv.ServiceOnlyHints() // server config; clients bypass hints
	}
	var store *hatkv.Store
	var err error
	if kind == SysHatService || kind == SysHatFunction {
		store, err = hatkv.NewStore(cl.Node(0), sh, nil)
	} else {
		store, err = hatkv.NewStore(cl.Node(0), nil, nil)
	}
	if err != nil {
		panic(err)
	}
	value := make([]byte, cfg.Workload.ValueLen)
	for i := range value {
		value[i] = byte(i)
	}
	if err := store.Preload(cfg.Workload.Records, Key, value); err != nil {
		panic(err)
	}
	hatkv.Serve(srvEng, sh, store)

	zipf := NewZipfian(int64(cfg.Workload.Records), cfg.Workload.Theta)
	warmup := sim.Time(150_000)
	deadline := warmup + sim.Time(cfg.DurationNs)

	samples := map[Op]*stats.Sample{}
	counts := map[Op]int{}
	for _, op := range AllOps {
		samples[op] = &stats.Sample{}
	}

	for i := 0; i < cfg.Clients; i++ {
		i := i
		env.Spawn(fmt.Sprintf("ycsb%d", i), func(p *sim.Proc) {
			eng := clientEngs[i%len(clientEngs)]
			var tr trdma.Transport
			switch kind {
			case SysHatService, SysHatFunction:
				tr = trdma.Dial(p, eng, cl.Node(0), sh, nil)
			default:
				conn := eng.Dial(p, cl.Node(0), "hat:"+sh.ServiceName)
				tr = &policyTransport{
					conn:   conn,
					fnIDs:  kvgen.HatKVHints.FnIDs,
					policy: comparatorPolicy(kind, eng.Config().RndvThreshold),
				}
			}
			c := kvgen.NewHatKVClient(tr)
			rng := env.Rand()
			for p.Now() < deadline {
				op := cfg.Workload.ChooseOp(rng)
				start := p.Now()
				switch op {
				case OpGet:
					if _, err := c.Get(p, Key(int(zipf.NextScrambled(rng)))); err != nil {
						panic(err)
					}
				case OpPut:
					if err := c.Put(p, Key(int(zipf.NextScrambled(rng))), value); err != nil {
						panic(err)
					}
				case OpMultiGet:
					keys := make([]string, cfg.Workload.Batch)
					for j := range keys {
						keys[j] = Key(int(zipf.NextScrambled(rng)))
					}
					if _, err := c.MultiGet(p, keys); err != nil {
						panic(err)
					}
				case OpMultiPut:
					pairs := make([]*kvgen.KVPair, cfg.Workload.Batch)
					for j := range pairs {
						pairs[j] = &kvgen.KVPair{Key: Key(int(zipf.NextScrambled(rng))), Value: value}
					}
					if err := c.MultiPut(p, pairs); err != nil {
						panic(err)
					}
				}
				if p.Now() >= warmup {
					samples[op].Add(float64(p.Now() - start))
					counts[op]++
				}
			}
		})
	}
	env.Run()
	defer env.Shutdown()

	res := Result{System: kind, Workload: cfg.Workload.Name, PerOp: map[Op]OpStats{}}
	secs := float64(cfg.DurationNs) / 1e9
	for _, op := range AllOps {
		s := samples[op]
		res.PerOp[op] = OpStats{
			Ops:      counts[op],
			OpsPerS:  float64(counts[op]) / secs,
			AvgLatNs: s.Mean(),
			P99Ns:    s.Percentile(99),
		}
		res.TotalOps += float64(counts[op]) / secs
	}
	return res
}
