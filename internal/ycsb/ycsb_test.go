package ycsb

import (
	"math/rand"
	"testing"
)

func TestZipfianSkew(t *testing.T) {
	z := NewZipfian(1000, 0.99)
	rng := rand.New(rand.NewSource(1))
	counts := map[int64]int{}
	const N = 20000
	for i := 0; i < N; i++ {
		v := z.Next(rng)
		if v < 0 || v >= 1000 {
			t.Fatalf("zipfian out of range: %d", v)
		}
		counts[v]++
	}
	// Rank 0 must dominate: it should hold well over 5% of draws at
	// theta=0.99 over 1000 items.
	if float64(counts[0])/N < 0.05 {
		t.Fatalf("rank 0 frequency %.4f too low for zipfian", float64(counts[0])/N)
	}
	if counts[0] <= counts[500] {
		t.Fatal("head not hotter than tail")
	}
}

func TestZipfianScrambledRange(t *testing.T) {
	z := NewZipfian(500, 0.99)
	rng := rand.New(rand.NewSource(2))
	seen := map[int64]bool{}
	for i := 0; i < 5000; i++ {
		v := z.NextScrambled(rng)
		if v < 0 || v >= 500 {
			t.Fatalf("scrambled out of range: %d", v)
		}
		seen[v] = true
	}
	if len(seen) < 100 {
		t.Fatalf("scrambling produced only %d distinct keys", len(seen))
	}
}

func TestWorkloadMixes(t *testing.T) {
	for _, w := range []Workload{WorkloadA(100), WorkloadB(100)} {
		sum := 0.0
		for _, p := range w.Mix {
			sum += p
		}
		if sum < 0.999 || sum > 1.001 {
			t.Errorf("workload %s mix sums to %v", w.Name, sum)
		}
	}
	b := WorkloadB(100)
	if b.Mix[OpGet] != 0.475 || b.Mix[OpPut] != 0.025 {
		t.Errorf("workload B mix = %v", b.Mix)
	}
}

func TestChooseOpRespectsProportions(t *testing.T) {
	w := WorkloadB(100)
	rng := rand.New(rand.NewSource(3))
	counts := map[Op]int{}
	const N = 20000
	for i := 0; i < N; i++ {
		counts[w.ChooseOp(rng)]++
	}
	if f := float64(counts[OpGet]) / N; f < 0.44 || f > 0.51 {
		t.Errorf("Get fraction %.3f, want ~0.475", f)
	}
	if f := float64(counts[OpPut]) / N; f < 0.01 || f > 0.05 {
		t.Errorf("Put fraction %.3f, want ~0.025", f)
	}
}

func TestKeyFormat(t *testing.T) {
	k := Key(42)
	if len(k) != 24 {
		t.Fatalf("key length %d, want 24 (paper §5.4)", len(k))
	}
	if k[:4] != "user" {
		t.Fatalf("key prefix %q", k[:4])
	}
}

func TestSmallRunAllSystems(t *testing.T) {
	if testing.Short() {
		t.Skip("cluster run")
	}
	cfg := RunConfig{
		Workload:   WorkloadA(500),
		Systems:    AllSystems,
		Clients:    16,
		Nodes:      5,
		DurationNs: 150_000,
		Seed:       5,
	}
	results := Run(cfg)
	if len(results) != len(AllSystems) {
		t.Fatalf("%d results", len(results))
	}
	byName := map[SystemKind]Result{}
	for _, r := range results {
		if r.TotalOps <= 0 {
			t.Fatalf("%v made no progress", r.System)
		}
		byName[r.System] = r
	}
	// Headline shape: HatRPC-Function ≥ HatRPC-Service (within sampling
	// noise at this small scale) ≥ each comparator in aggregate
	// throughput (Fig. 15a).
	hf, hs := byName[SysHatFunction].TotalOps, byName[SysHatService].TotalOps
	if hf < hs*0.95 {
		t.Errorf("HatRPC-Function (%.0f) below HatRPC-Service (%.0f)", hf, hs)
	}
	for _, sys := range []SystemKind{SysARgRPC, SysHERD, SysPilaf, SysRFP} {
		if c := byName[sys].TotalOps; hf <= c {
			t.Errorf("HatRPC-Function (%.0f) not above %v (%.0f)", hf, sys, c)
		}
	}
}

func TestRunDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("cluster run")
	}
	cfg := RunConfig{
		Workload:   WorkloadA(200),
		Systems:    []SystemKind{SysHatFunction},
		Clients:    4,
		Nodes:      3,
		DurationNs: 100_000,
		Seed:       6,
	}
	a := Run(cfg)[0].TotalOps
	b := Run(cfg)[0].TotalOps
	if a != b {
		t.Fatalf("nondeterministic: %v vs %v", a, b)
	}
}
