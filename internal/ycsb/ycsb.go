// Package ycsb implements the extended YCSB benchmark of §5.4: the
// standard zipfian request distribution over a preloaded record space,
// workloads A and B with half the GET/PUT proportion moved to the added
// MultiGET/MultiPUT operations, and a runner that drives HatKV and the
// four emulated comparator systems (AR-gRPC, HERD, Pilaf, RFP) over the
// simulated cluster.
//
// Determinism: nothing in this package owns randomness. Every sampling
// entry point (ChooseOp, Zipfian.Next, NextScrambled) takes an explicit
// *rand.Rand threaded from the simulation environment (sim.Env.Rand) or
// a kernel-minted source (sim.NewRand) — the simdet analyzer forbids
// the global math/rand state here.
package ycsb

import (
	"fmt"
	"hash/fnv"
	"math"
	"math/rand"
)

// Op is a YCSB operation type.
type Op int

// Operation types (the paper's extended set).
const (
	OpGet Op = iota
	OpPut
	OpMultiGet
	OpMultiPut
)

func (o Op) String() string {
	switch o {
	case OpGet:
		return "Get"
	case OpPut:
		return "Put"
	case OpMultiGet:
		return "Multi-Get"
	case OpMultiPut:
		return "Multi-Put"
	}
	return fmt.Sprintf("Op(%d)", int(o))
}

// AllOps lists the operation types in reporting order.
var AllOps = []Op{OpGet, OpPut, OpMultiGet, OpMultiPut}

// Workload is a YCSB operation mix (§5.4: key 24 B, field 100 B ×10,
// batch 10).
type Workload struct {
	Name    string
	Mix     map[Op]float64 // proportions, sum to 1
	Records int
	Batch   int // MultiGET/MultiPUT batch size
	// ValueLen = field count × field length = 10 × 100.
	ValueLen int
	Theta    float64 // zipfian skew
}

// WorkloadA is update-heavy A with the GET/PUT halves split into Multi
// ops: 25/25/25/25.
func WorkloadA(records int) Workload {
	return Workload{
		Name:    "A",
		Mix:     map[Op]float64{OpGet: 0.25, OpPut: 0.25, OpMultiGet: 0.25, OpMultiPut: 0.25},
		Records: records, Batch: 10, ValueLen: 1000, Theta: 0.99,
	}
}

// WorkloadB is read-heavy B split likewise: 47.5/2.5/47.5/2.5.
func WorkloadB(records int) Workload {
	return Workload{
		Name:    "B",
		Mix:     map[Op]float64{OpGet: 0.475, OpPut: 0.025, OpMultiGet: 0.475, OpMultiPut: 0.025},
		Records: records, Batch: 10, ValueLen: 1000, Theta: 0.99,
	}
}

// Key renders record i as the fixed-24-byte YCSB key.
func Key(i int) string { return fmt.Sprintf("user%020d", i) }

// ChooseOp samples an operation from the mix.
func (w Workload) ChooseOp(rng *rand.Rand) Op {
	u := rng.Float64()
	acc := 0.0
	for _, op := range AllOps {
		acc += w.Mix[op]
		if u < acc {
			return op
		}
	}
	return OpGet
}

// ---------------------------------------------------------------------------
// Zipfian generator (the YCSB algorithm, with FNV scrambling so hot keys
// spread over the key space).

// Zipfian draws zipf-distributed items in [0, n).
type Zipfian struct {
	n     int64
	theta float64
	alpha float64
	zetan float64
	zeta2 float64
	eta   float64
}

// NewZipfian precomputes the zeta constants for n items.
func NewZipfian(n int64, theta float64) *Zipfian {
	z := &Zipfian{n: n, theta: theta}
	z.zetan = zeta(n, theta)
	z.zeta2 = zeta(2, theta)
	z.alpha = 1 / (1 - theta)
	z.eta = (1 - math.Pow(2/float64(n), 1-theta)) / (1 - z.zeta2/z.zetan)
	return z
}

func zeta(n int64, theta float64) float64 {
	sum := 0.0
	for i := int64(1); i <= n; i++ {
		sum += 1 / math.Pow(float64(i), theta)
	}
	return sum
}

// Next draws the next rank (0 = hottest before scrambling).
func (z *Zipfian) Next(rng *rand.Rand) int64 {
	u := rng.Float64()
	uz := u * z.zetan
	if uz < 1 {
		return 0
	}
	if uz < 1+math.Pow(0.5, z.theta) {
		return 1
	}
	return int64(float64(z.n) * math.Pow(z.eta*u-z.eta+1, z.alpha))
}

// NextScrambled draws a key index spread via FNV-64.
func (z *Zipfian) NextScrambled(rng *rand.Rand) int64 {
	h := fnv.New64a()
	var b [8]byte
	v := uint64(z.Next(rng))
	for i := 0; i < 8; i++ {
		b[i] = byte(v >> (8 * i))
	}
	h.Write(b[:])
	return int64(h.Sum64() % uint64(z.n))
}
