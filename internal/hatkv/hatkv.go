// Package hatkv is the key-value store co-designed with HatRPC and the
// LMDB-like backend (§4.4): the generated HatKV service (Figure 10's IDL)
// served over TRdma, with hint-driven backend tuning — the concurrency
// hint sizes the reader table, and the performance-goal hint selects the
// commit/sync strategy so LMDB interactions stay off the communication
// critical path.
package hatkv

import (
	"errors"
	"fmt"

	"hatrpc/internal/engine"
	kvgen "hatrpc/internal/hatkv/gen"
	"hatrpc/internal/hints"
	"hatrpc/internal/lmdb"
	"hatrpc/internal/sim"
	"hatrpc/internal/simnet"
	"hatrpc/internal/trdma"
)

// BackendCosts converts LMDB work into simulated CPU/IO time. The server
// keeps data and the lock file in tmpfs (§5.4), so "sync" is a page-cache
// flush, not a disk fsync.
type BackendCosts struct {
	LookupNs     int64   // B-tree descent + node binary searches
	InsertNs     int64   // leaf update + COW copies
	CopyPerByte  float64 // value copy cost (ns/B)
	CommitSyncNs int64   // commit cost with SyncFull
	CommitMetaNs int64   // commit cost with SyncMeta
	CommitNoNs   int64   // commit cost with NoSync
	BeginTxnNs   int64
}

// DefaultBackendCosts returns tmpfs-calibrated constants.
func DefaultBackendCosts() BackendCosts {
	return BackendCosts{
		LookupNs:     600,
		InsertNs:     1500,
		CopyPerByte:  0.1,
		CommitSyncNs: 4000,
		CommitMetaNs: 1500,
		CommitNoNs:   300,
		BeginTxnNs:   150,
	}
}

// Store is the HatKV server: the generated handler over an LMDB env.
type Store struct {
	node  *simnet.Node
	env   *lmdb.Env
	costs BackendCosts
	// writeMu serializes write transactions (LMDB's single writer).
	writeMu *sim.Mutex
	// Tuned records whether hint-driven backend tuning was applied.
	Tuned bool

	// Crash-recovery accounting (DESIGN.md §12): a Store is durable
	// media — it survives its node's crashes, rolling back to the last
	// fsynced root each time.
	Recoveries int64  // node crashes survived
	LostTxns   uint64 // cumulative committed transactions rolled back
}

var _ kvgen.HatKVHandler = (*Store)(nil)

// NewStore opens the backend on the given node. When sh is non-nil, the
// backend is tuned from the hint table: max readers from the concurrency
// hint, sync mode from the performance goal (throughput/res_util →
// NoSync batch-style commits; latency → meta-only sync).
func NewStore(node *simnet.Node, sh *trdma.ServiceHints, costs *BackendCosts) (*Store, error) {
	opt := lmdb.Options{Sync: lmdb.SyncFull}
	tuned := false
	if sh != nil {
		r := hints.TypeCheck(sh.Service.ForSide(hints.SideServer))
		if r.Concurrency > 0 {
			opt.MaxReaders = r.Concurrency + 2
			tuned = true
		}
		switch r.Goal {
		case hints.GoalThroughput, hints.GoalResUtil:
			opt.Sync = lmdb.NoSync
			tuned = true
		case hints.GoalLatency:
			opt.Sync = lmdb.SyncMeta
			tuned = true
		}
	}
	env, err := lmdb.Open(opt)
	if err != nil {
		return nil, err
	}
	c := DefaultBackendCosts()
	if costs != nil {
		c = *costs
	}
	s := &Store{
		node:    node,
		env:     env,
		costs:   c,
		writeMu: sim.NewMutex(node.Cluster().Env()),
		Tuned:   tuned,
	}
	// Durable media survives power loss: arm the crash hook that rolls
	// the backend to its durable root when the node dies.
	s.arm()
	return s, nil
}

// arm registers the crash hook. Crash hooks are cleared each time they
// run (per-boot state like the NIC registers fresh ones on restart);
// the store re-arms itself from inside the hook so it survives every
// subsequent life of the node.
func (s *Store) arm() { s.node.OnCrash(s.crash) }

// crash models what the storage medium experiences at power loss:
// commits beyond the last fsynced meta root vanish, in-flight
// transactions die with their processes, and the env reopens from the
// durable root per the active SyncMode.
func (s *Store) crash() {
	s.LostTxns += s.env.CrashRecover()
	s.Recoveries++
	// Killed dispatchers ran their deferred Unlocks, but recreate the
	// mutex anyway so no waiter from the previous life leaks into the
	// next boot's serialization.
	s.writeMu = sim.NewMutex(s.node.Cluster().Env())
	s.arm()
}

// Env exposes the LMDB environment (for preloading and inspection).
func (s *Store) Env() *lmdb.Env { return s.env }

func (s *Store) charge(p *sim.Proc, ns float64) {
	s.node.CPU.Compute(p, sim.Duration(ns))
}

func (s *Store) commitCharge(p *sim.Proc) {
	switch s.env.Sync() {
	case lmdb.SyncFull:
		s.charge(p, float64(s.costs.CommitSyncNs))
	case lmdb.SyncMeta:
		s.charge(p, float64(s.costs.CommitMetaNs))
	default:
		s.charge(p, float64(s.costs.CommitNoNs))
	}
}

// Get implements HatKV.Get.
func (s *Store) Get(p *sim.Proc, key string) ([]byte, error) {
	s.charge(p, float64(s.costs.BeginTxnNs))
	txn, err := s.env.BeginRead()
	if err != nil {
		return nil, &kvgen.KVError{Message: err.Error()}
	}
	defer txn.Abort()
	v, err := txn.Get([]byte(key))
	s.charge(p, float64(s.costs.LookupNs)+float64(len(v))*s.costs.CopyPerByte)
	if errors.Is(err, lmdb.ErrNotFound) {
		return nil, &kvgen.KVError{Message: fmt.Sprintf("key %q not found", key)}
	}
	if err != nil {
		return nil, &kvgen.KVError{Message: err.Error()}
	}
	return append([]byte(nil), v...), nil
}

// Put implements HatKV.Put.
func (s *Store) Put(p *sim.Proc, key string, value []byte) error {
	_, err := s.PutTxn(p, key, value)
	return err
}

// PutTxn is Put returning the id of the committing transaction, for
// callers that must correlate an acknowledgement with the store version
// containing it (the chaos soak's history checker: an acked SyncFull
// write is lost exactly when a later crash rolls back past its txn id).
func (s *Store) PutTxn(p *sim.Proc, key string, value []byte) (uint64, error) {
	s.writeMu.Lock(p)
	defer s.writeMu.Unlock()
	s.charge(p, float64(s.costs.BeginTxnNs))
	txn, err := s.env.BeginWrite()
	if err != nil {
		return 0, &kvgen.KVError{Message: err.Error()}
	}
	if err := txn.Put([]byte(key), value); err != nil {
		txn.Abort()
		return 0, &kvgen.KVError{Message: err.Error()}
	}
	s.charge(p, float64(s.costs.InsertNs)+float64(len(value))*s.costs.CopyPerByte)
	if err := txn.Commit(); err != nil {
		return 0, &kvgen.KVError{Message: err.Error()}
	}
	s.commitCharge(p)
	return txn.ID(), nil
}

// MultiGet implements HatKV.MultiGet: one snapshot for the whole batch.
func (s *Store) MultiGet(p *sim.Proc, keys []string) ([][]byte, error) {
	s.charge(p, float64(s.costs.BeginTxnNs))
	txn, err := s.env.BeginRead()
	if err != nil {
		return nil, err
	}
	defer txn.Abort()
	out := make([][]byte, 0, len(keys))
	var bytesOut int
	for _, k := range keys {
		v, err := txn.Get([]byte(k))
		if errors.Is(err, lmdb.ErrNotFound) {
			out = append(out, nil)
			continue
		}
		if err != nil {
			return nil, err
		}
		out = append(out, append([]byte(nil), v...))
		bytesOut += len(v)
	}
	s.charge(p, float64(len(keys))*float64(s.costs.LookupNs)+float64(bytesOut)*s.costs.CopyPerByte)
	return out, nil
}

// MultiPut implements HatKV.MultiPut: one write transaction for the
// batch — a single commit amortizes the sync cost (the hint-driven
// "commit strategy" of §4.4).
func (s *Store) MultiPut(p *sim.Proc, pairs []*kvgen.KVPair) error {
	s.writeMu.Lock(p)
	defer s.writeMu.Unlock()
	s.charge(p, float64(s.costs.BeginTxnNs))
	txn, err := s.env.BeginWrite()
	if err != nil {
		return err
	}
	var bytesIn int
	for _, kv := range pairs {
		if err := txn.Put([]byte(kv.Key), kv.Value); err != nil {
			txn.Abort()
			return err
		}
		bytesIn += len(kv.Value)
	}
	s.charge(p, float64(len(pairs))*float64(s.costs.InsertNs)+float64(bytesIn)*s.costs.CopyPerByte)
	if err := txn.Commit(); err != nil {
		return err
	}
	s.commitCharge(p)
	return nil
}

// Preload inserts n records directly (load phase, no RPC, no simulated
// cost — it happens before the measured run).
func (s *Store) Preload(n int, keyFn func(int) string, value []byte) error {
	txn, err := s.env.BeginWrite()
	if err != nil {
		return err
	}
	for i := 0; i < n; i++ {
		if err := txn.Put([]byte(keyFn(i)), value); err != nil {
			txn.Abort()
			return err
		}
	}
	return txn.Commit()
}

// Serve starts the HatKV service over the given engine using the hint
// table sh (HatRPC-Service and HatRPC-Function differ only in sh).
func Serve(eng *engine.Engine, sh *trdma.ServiceHints, store *Store) *trdma.TServerRdma {
	return trdma.NewServer(eng, sh, kvgen.NewHatKVProcessor(store))
}

// ServiceOnlyHints strips the function-level hints from the generated
// table, yielding the paper's "HatRPC-Service" variant.
func ServiceOnlyHints() *trdma.ServiceHints {
	full := kvgen.HatKVHints
	fns := make(map[string]*hints.Set, len(full.Functions))
	for name := range full.Functions {
		fns[name] = hints.NewSet()
	}
	return &trdma.ServiceHints{
		ServiceName: full.ServiceName,
		Service:     full.Service,
		Functions:   fns,
		FnIDs:       full.FnIDs,
		Oneway:      full.Oneway,
	}
}

// FunctionHints returns the full generated table ("HatRPC-Function").
func FunctionHints() *trdma.ServiceHints { return kvgen.HatKVHints }
