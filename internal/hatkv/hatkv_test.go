package hatkv_test

import (
	"bytes"
	"fmt"
	"testing"

	"hatrpc/internal/engine"
	"hatrpc/internal/hatkv"
	kvgen "hatrpc/internal/hatkv/gen"
	"hatrpc/internal/lmdb"
	"hatrpc/internal/sim"
	"hatrpc/internal/simnet"
	"hatrpc/internal/trdma"
)

func setup(seed int64) (*sim.Env, *simnet.Cluster) {
	env := sim.NewEnv(seed)
	cfg := simnet.DefaultConfig()
	cfg.Nodes = 3
	return env, simnet.NewCluster(env, cfg)
}

func TestStoreHintTuning(t *testing.T) {
	env, cl := setup(1)
	_ = env
	// Function hints carry concurrency=128 + throughput goal → NoSync +
	// widened reader table.
	tuned, err := hatkv.NewStore(cl.Node(0), hatkv.FunctionHints(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if !tuned.Tuned {
		t.Fatal("hinted store not tuned")
	}
	if tuned.Env().Sync() != lmdb.NoSync {
		t.Fatalf("sync mode = %d, want NoSync for throughput goal", tuned.Env().Sync())
	}
	if tuned.Env().MaxReaders() != 130 {
		t.Fatalf("max readers = %d, want 130 (concurrency hint + 2)", tuned.Env().MaxReaders())
	}
	// No hints → stock configuration.
	stock, err := hatkv.NewStore(cl.Node(0), nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if stock.Tuned || stock.Env().Sync() != lmdb.SyncFull {
		t.Fatalf("stock store tuned unexpectedly: %+v", stock.Env())
	}
}

func TestEndToEndKVOperations(t *testing.T) {
	env, cl := setup(2)
	srvEng := engine.New(cl.Node(0), engine.DefaultConfig())
	cliEng := engine.New(cl.Node(1), engine.DefaultConfig())
	sh := hatkv.FunctionHints()
	store, err := hatkv.NewStore(cl.Node(0), sh, nil)
	if err != nil {
		t.Fatal(err)
	}
	hatkv.Serve(srvEng, sh, store)

	env.Spawn("client", func(p *sim.Proc) {
		tr := trdma.Dial(p, cliEng, cl.Node(0), sh, nil)
		c := kvgen.NewHatKVClient(tr)

		if err := c.Put(p, "alpha", []byte("value-1")); err != nil {
			t.Error(err)
		}
		v, err := c.Get(p, "alpha")
		if err != nil || string(v) != "value-1" {
			t.Errorf("Get = %q, %v", v, err)
		}
		// Missing key surfaces the declared KVError exception.
		_, err = c.Get(p, "missing")
		if err == nil {
			t.Error("missing key did not error")
		} else if _, ok := err.(*kvgen.KVError); !ok {
			t.Errorf("error type %T, want *kvgen.KVError", err)
		}

		pairs := make([]*kvgen.KVPair, 10)
		keys := make([]string, 10)
		for i := range pairs {
			keys[i] = fmt.Sprintf("batch-%02d", i)
			pairs[i] = &kvgen.KVPair{Key: keys[i], Value: []byte{byte(i), byte(i * 2)}}
		}
		if err := c.MultiPut(p, pairs); err != nil {
			t.Error(err)
		}
		vals, err := c.MultiGet(p, keys)
		if err != nil || len(vals) != 10 {
			t.Fatalf("MultiGet = %d vals, %v", len(vals), err)
		}
		for i, v := range vals {
			if !bytes.Equal(v, pairs[i].Value) {
				t.Errorf("vals[%d] = %v", i, v)
			}
		}
		env.Stop()
	})
	env.Run()
	if store.Env().Stats.Commits != 2 { // one Put + one MultiPut txn
		t.Fatalf("commits = %d, want 2 (MultiPut batches into one txn)", store.Env().Stats.Commits)
	}
}

func TestConcurrentWritersSerialized(t *testing.T) {
	env, cl := setup(3)
	srvEng := engine.New(cl.Node(0), engine.DefaultConfig())
	sh := hatkv.FunctionHints()
	store, err := hatkv.NewStore(cl.Node(0), sh, nil)
	if err != nil {
		t.Fatal(err)
	}
	hatkv.Serve(srvEng, sh, store)
	engs := []*engine.Engine{
		engine.New(cl.Node(1), engine.DefaultConfig()),
		engine.New(cl.Node(2), engine.DefaultConfig()),
	}
	done := 0
	for i := 0; i < 8; i++ {
		i := i
		env.Spawn(fmt.Sprintf("w%d", i), func(p *sim.Proc) {
			tr := trdma.Dial(p, engs[i%2], cl.Node(0), sh, nil)
			c := kvgen.NewHatKVClient(tr)
			for j := 0; j < 5; j++ {
				if err := c.Put(p, fmt.Sprintf("k-%d-%d", i, j), []byte("v")); err != nil {
					t.Errorf("writer %d: %v", i, err)
					return
				}
			}
			done++
		})
	}
	env.Run()
	if done != 8 {
		t.Fatalf("%d writers finished", done)
	}
	if store.Env().Stats.Commits != 40 {
		t.Fatalf("commits = %d, want 40", store.Env().Stats.Commits)
	}
}

func TestServiceOnlyHintsStripFunctionLevel(t *testing.T) {
	svc := hatkv.ServiceOnlyHints()
	full := hatkv.FunctionHints()
	if len(svc.FnIDs) != len(full.FnIDs) {
		t.Fatal("fn ids lost")
	}
	for name, set := range svc.Functions {
		if !set.Empty() {
			t.Errorf("function %s kept hints in service-only table", name)
		}
	}
	// Service-level hints retained.
	if svc.Service.Shared["concurrency"] != "128" {
		t.Error("service-level concurrency hint lost")
	}
}

func TestPreload(t *testing.T) {
	_, cl := setup(4)
	store, err := hatkv.NewStore(cl.Node(0), nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := store.Preload(100, func(i int) string { return fmt.Sprintf("pre-%03d", i) }, []byte("seed")); err != nil {
		t.Fatal(err)
	}
	txn, err := store.Env().BeginRead()
	if err != nil {
		t.Fatal(err)
	}
	defer txn.Abort()
	v, err := txn.Get([]byte("pre-050"))
	if err != nil || string(v) != "seed" {
		t.Fatalf("preloaded Get = %q, %v", v, err)
	}
	if store.Env().Entries() != 100 {
		t.Fatalf("entries = %d", store.Env().Entries())
	}
}
