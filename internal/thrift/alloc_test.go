package thrift

import (
	"bytes"
	"testing"
)

// codecRoundTrip writes a representative eager-path message body (every
// fixed-width primitive plus a binary field) through prot/framed/mem and
// reads it back, returning an error message on mismatch. It allocates
// nothing once the transports and the arena are warm — the property
// TestEagerPathZeroAllocs gates.
func codecRoundTrip(mem *TMemoryBuffer, framed *TFramedTransport, w, r TProtocol, blob []byte) string {
	mem.Reset()
	w.WriteStructBegin("S")
	w.WriteFieldBegin("b", BOOL, 1)
	w.WriteBool(true)
	w.WriteFieldBegin("i8", BYTE, 2)
	w.WriteI8(-5)
	w.WriteFieldBegin("i16", I16, 3)
	w.WriteI16(-3000)
	w.WriteFieldBegin("i32", I32, 4)
	w.WriteI32(123456789)
	w.WriteFieldBegin("i64", I64, 5)
	w.WriteI64(-987654321012345)
	w.WriteFieldBegin("d", DOUBLE, 6)
	w.WriteDouble(3.14159)
	w.WriteFieldBegin("bin", STRING, 7)
	w.WriteBinary(blob)
	w.WriteFieldStop()
	w.WriteStructEnd()
	if err := framed.Flush(); err != nil {
		return "flush: " + err.Error()
	}

	if _, err := r.ReadStructBegin(); err != nil {
		return "struct begin: " + err.Error()
	}
	for {
		_, ft, id, err := r.ReadFieldBegin()
		if err != nil {
			return "read field: " + err.Error()
		}
		if ft == STOP {
			break
		}
		switch id {
		case 1:
			if v, _ := r.ReadBool(); !v {
				return "bool mismatch"
			}
		case 2:
			if v, _ := r.ReadI8(); v != -5 {
				return "i8 mismatch"
			}
		case 3:
			if v, _ := r.ReadI16(); v != -3000 {
				return "i16 mismatch"
			}
		case 4:
			if v, _ := r.ReadI32(); v != 123456789 {
				return "i32 mismatch"
			}
		case 5:
			if v, _ := r.ReadI64(); v != -987654321012345 {
				return "i64 mismatch"
			}
		case 6:
			if v, _ := r.ReadDouble(); v != 3.14159 {
				return "double mismatch"
			}
		case 7:
			v, err := r.ReadBinary()
			if err != nil || !bytes.Equal(v, blob) {
				return "binary mismatch"
			}
			PutBuffer(v) // recycle — the eager path's ownership contract
		}
	}
	if err := r.ReadStructEnd(); err != nil {
		return "struct end: " + err.Error()
	}
	return ""
}

// codecPair builds a framed binary or compact codec over one memory
// buffer: distinct writer/reader protocol instances (as on a real
// connection) sharing one framed transport.
func codecPair(compact bool) (*TMemoryBuffer, *TFramedTransport, TProtocol, TProtocol) {
	mem := NewTMemoryBuffer()
	framed := NewTFramedTransport(mem)
	if compact {
		return mem, framed, NewTCompactProtocol(framed), NewTCompactProtocol(framed)
	}
	return mem, framed, NewTBinaryProtocol(framed), NewTBinaryProtocol(framed)
}

// TestEagerPathZeroAllocs is the allocs/op regression gate for the
// serialization hot path (CI runs it by name): once the transports and
// the buffer arena are warm, a full write+read round trip of every
// fixed-width primitive plus a binary field performs ZERO heap
// allocations per op, for both wire protocols. String reads are excluded
// by design — Go string conversion inherently allocates; generated code
// that wants the zero-alloc path uses binary fields.
func TestEagerPathZeroAllocs(t *testing.T) {
	blob := []byte("0123456789abcdef0123456789abcdef")
	for _, tc := range []struct {
		name    string
		compact bool
	}{{"binary", false}, {"compact", true}} {
		t.Run(tc.name, func(t *testing.T) {
			mem, framed, w, r := codecPair(tc.compact)
			// Warm: grows wbuf/rbuf/sbuf once and stocks the arena class.
			for i := 0; i < 3; i++ {
				if msg := codecRoundTrip(mem, framed, w, r, blob); msg != "" {
					t.Fatal(msg)
				}
			}
			allocs := testing.AllocsPerRun(200, func() {
				if msg := codecRoundTrip(mem, framed, w, r, blob); msg != "" {
					t.Fatal(msg)
				}
			})
			if allocs != 0 {
				t.Fatalf("eager-path codec round trip allocates %.1f allocs/op, want 0", allocs)
			}
		})
	}
}

// BenchmarkCodecRoundTrip reports allocs/op for the framed codec round
// trip (the number the zero-alloc gate pins at 0).
func BenchmarkCodecRoundTrip(b *testing.B) {
	blob := []byte("0123456789abcdef0123456789abcdef")
	for _, tc := range []struct {
		name    string
		compact bool
	}{{"binary", false}, {"compact", true}} {
		b.Run(tc.name, func(b *testing.B) {
			mem, framed, w, r := codecPair(tc.compact)
			for i := 0; i < 3; i++ {
				codecRoundTrip(mem, framed, w, r, blob)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if msg := codecRoundTrip(mem, framed, w, r, blob); msg != "" {
					b.Fatal(msg)
				}
			}
		})
	}
}
