package thrift

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"
)

// Compact protocol constants.
const (
	compactProtocolID  byte = 0x82
	compactVersion     byte = 1
	compactVersionMask byte = 0x1f
	compactTypeShift        = 5
)

// compact wire type codes (distinct from TType).
const (
	ctStop      byte = 0x00
	ctBoolTrue  byte = 0x01
	ctBoolFalse byte = 0x02
	ctByte      byte = 0x03
	ctI16       byte = 0x04
	ctI32       byte = 0x05
	ctI64       byte = 0x06
	ctDouble    byte = 0x07
	ctBinary    byte = 0x08
	ctList      byte = 0x09
	ctSet       byte = 0x0A
	ctMap       byte = 0x0B
	ctStruct    byte = 0x0C
)

func toCompactType(t TType) byte {
	switch t {
	case STOP:
		return ctStop
	case BOOL:
		return ctBoolTrue
	case BYTE:
		return ctByte
	case I16:
		return ctI16
	case I32:
		return ctI32
	case I64:
		return ctI64
	case DOUBLE:
		return ctDouble
	case STRING:
		return ctBinary
	case LIST:
		return ctList
	case SET:
		return ctSet
	case MAP:
		return ctMap
	case STRUCT:
		return ctStruct
	}
	panic(fmt.Sprintf("thrift: no compact encoding for %v", t))
}

func fromCompactType(c byte) (TType, error) {
	switch c {
	case ctStop:
		return STOP, nil
	case ctBoolTrue, ctBoolFalse:
		return BOOL, nil
	case ctByte:
		return BYTE, nil
	case ctI16:
		return I16, nil
	case ctI32:
		return I32, nil
	case ctI64:
		return I64, nil
	case ctDouble:
		return DOUBLE, nil
	case ctBinary:
		return STRING, nil
	case ctList:
		return LIST, nil
	case ctSet:
		return SET, nil
	case ctMap:
		return MAP, nil
	case ctStruct:
		return STRUCT, nil
	}
	return 0, fmt.Errorf("thrift: unknown compact type 0x%02x", c)
}

// TCompactProtocol is the Thrift compact protocol: varint/zigzag integers
// and delta-encoded field ids. It produces substantially smaller payloads
// than the binary protocol for structured data.
type TCompactProtocol struct {
	trans TTransport

	// scratch/sbuf make the codec allocation-free: stack arrays escape
	// through the TTransport interface (see TBinaryProtocol).
	scratch [10]byte // varint staging (max 10 bytes) and fixed-width ints
	sbuf    []byte   // grow-once string-write staging

	lastFieldID int16
	fieldStack  []int16

	pendingBoolField bool
	pendingBoolID    int16

	pendingBoolValue bool // read side: bool value decoded from field header
	havePendingBool  bool
}

var _ TProtocol = (*TCompactProtocol)(nil)

// NewTCompactProtocol returns a compact protocol over trans.
func NewTCompactProtocol(trans TTransport) *TCompactProtocol {
	return &TCompactProtocol{trans: trans}
}

// Transport returns the underlying transport.
func (p *TCompactProtocol) Transport() TTransport { return p.trans }

// Flush flushes the underlying transport.
func (p *TCompactProtocol) Flush() error { return p.trans.Flush() }

func (p *TCompactProtocol) writeByteRaw(b byte) error {
	p.scratch[0] = b
	_, err := p.trans.Write(p.scratch[:1])
	return err
}

func (p *TCompactProtocol) writeVarint(v uint64) error {
	n := binary.PutUvarint(p.scratch[:], v)
	_, err := p.trans.Write(p.scratch[:n])
	return err
}

func (p *TCompactProtocol) readVarint() (uint64, error) {
	return binary.ReadUvarint(byteReaderOf{p})
}

type byteReaderOf struct{ p *TCompactProtocol }

func (r byteReaderOf) ReadByte() (byte, error) {
	if _, err := io.ReadFull(r.p.trans, r.p.scratch[:1]); err != nil {
		return 0, err
	}
	return r.p.scratch[0], nil
}

func zigzag32(v int32) uint64 { return uint64(uint32((v << 1) ^ (v >> 31))) }
func zigzag64(v int64) uint64 { return uint64((v << 1) ^ (v >> 63)) }
func unzig32(v uint64) int32  { u := uint32(v); return int32(u>>1) ^ -int32(u&1) }
func unzig64(v uint64) int64  { return int64(v>>1) ^ -int64(v&1) }

// WriteMessageBegin emits the compact message header.
func (p *TCompactProtocol) WriteMessageBegin(name string, typeID TMessageType, seqid int32) error {
	if err := p.writeByteRaw(compactProtocolID); err != nil {
		return err
	}
	if err := p.writeByteRaw((compactVersion & compactVersionMask) | byte(typeID)<<compactTypeShift); err != nil {
		return err
	}
	if err := p.writeVarint(uint64(uint32(seqid))); err != nil {
		return err
	}
	return p.WriteString(name)
}

// WriteMessageEnd is a no-op.
func (p *TCompactProtocol) WriteMessageEnd() error { return nil }

// WriteStructBegin pushes the field-id delta context.
func (p *TCompactProtocol) WriteStructBegin(string) error {
	p.fieldStack = append(p.fieldStack, p.lastFieldID)
	p.lastFieldID = 0
	return nil
}

// WriteStructEnd pops the field-id delta context.
func (p *TCompactProtocol) WriteStructEnd() error {
	n := len(p.fieldStack)
	if n == 0 {
		return fmt.Errorf("thrift: WriteStructEnd without begin")
	}
	p.lastFieldID = p.fieldStack[n-1]
	p.fieldStack = p.fieldStack[:n-1]
	return nil
}

func (p *TCompactProtocol) writeFieldHeader(ctype byte, id int16) error {
	delta := id - p.lastFieldID
	if delta > 0 && delta <= 15 {
		if err := p.writeByteRaw(byte(delta)<<4 | ctype); err != nil {
			return err
		}
	} else {
		if err := p.writeByteRaw(ctype); err != nil {
			return err
		}
		if err := p.writeVarint(zigzag32(int32(id))); err != nil {
			return err
		}
	}
	p.lastFieldID = id
	return nil
}

// WriteFieldBegin emits the delta-encoded field header. Bool fields defer
// emission to WriteBool, which folds the value into the type nibble.
func (p *TCompactProtocol) WriteFieldBegin(_ string, typeID TType, id int16) error {
	if typeID == BOOL {
		p.pendingBoolField = true
		p.pendingBoolID = id
		return nil
	}
	return p.writeFieldHeader(toCompactType(typeID), id)
}

// WriteFieldEnd is a no-op.
func (p *TCompactProtocol) WriteFieldEnd() error { return nil }

// WriteFieldStop emits the stop byte.
func (p *TCompactProtocol) WriteFieldStop() error { return p.writeByteRaw(ctStop) }

// WriteMapBegin emits the compact map header.
func (p *TCompactProtocol) WriteMapBegin(kt, vt TType, size int) error {
	if size == 0 {
		return p.writeByteRaw(0)
	}
	if err := p.writeVarint(uint64(size)); err != nil {
		return err
	}
	return p.writeByteRaw(toCompactType(kt)<<4 | toCompactType(vt))
}

// WriteMapEnd is a no-op.
func (p *TCompactProtocol) WriteMapEnd() error { return nil }

// WriteListBegin emits the compact list header.
func (p *TCompactProtocol) WriteListBegin(et TType, size int) error {
	if size < 15 {
		return p.writeByteRaw(byte(size)<<4 | toCompactType(et))
	}
	if err := p.writeByteRaw(0xf0 | toCompactType(et)); err != nil {
		return err
	}
	return p.writeVarint(uint64(size))
}

// WriteListEnd is a no-op.
func (p *TCompactProtocol) WriteListEnd() error { return nil }

// WriteSetBegin emits the compact set header.
func (p *TCompactProtocol) WriteSetBegin(et TType, size int) error {
	return p.WriteListBegin(et, size)
}

// WriteSetEnd is a no-op.
func (p *TCompactProtocol) WriteSetEnd() error { return nil }

// WriteBool emits a bool, folding it into a pending field header when one
// is deferred.
func (p *TCompactProtocol) WriteBool(v bool) error {
	ct := ctBoolFalse
	if v {
		ct = ctBoolTrue
	}
	if p.pendingBoolField {
		p.pendingBoolField = false
		return p.writeFieldHeader(ct, p.pendingBoolID)
	}
	return p.writeByteRaw(ct)
}

// WriteI8 emits one byte.
func (p *TCompactProtocol) WriteI8(v int8) error { return p.writeByteRaw(byte(v)) }

// WriteI16 emits a zigzag varint.
func (p *TCompactProtocol) WriteI16(v int16) error { return p.writeVarint(zigzag32(int32(v))) }

// WriteI32 emits a zigzag varint.
func (p *TCompactProtocol) WriteI32(v int32) error { return p.writeVarint(zigzag32(v)) }

// WriteI64 emits a zigzag varint.
func (p *TCompactProtocol) WriteI64(v int64) error { return p.writeVarint(zigzag64(v)) }

// WriteDouble emits a little-endian IEEE-754 double.
func (p *TCompactProtocol) WriteDouble(v float64) error {
	binary.LittleEndian.PutUint64(p.scratch[:8], math.Float64bits(v))
	_, err := p.trans.Write(p.scratch[:8])
	return err
}

// WriteString emits a varint-length-prefixed string.
func (p *TCompactProtocol) WriteString(v string) error {
	if err := p.writeVarint(uint64(len(v))); err != nil {
		return err
	}
	p.sbuf = append(p.sbuf[:0], v...)
	_, err := p.trans.Write(p.sbuf)
	return err
}

// WriteBinary emits a varint-length-prefixed byte slice.
func (p *TCompactProtocol) WriteBinary(v []byte) error {
	if err := p.writeVarint(uint64(len(v))); err != nil {
		return err
	}
	_, err := p.trans.Write(v)
	return err
}

// ReadMessageBegin parses the compact message header.
func (p *TCompactProtocol) ReadMessageBegin() (string, TMessageType, int32, error) {
	pid, err := p.readByteRaw()
	if err != nil {
		return "", 0, 0, err
	}
	if pid != compactProtocolID {
		return "", 0, 0, fmt.Errorf("thrift: bad compact protocol id 0x%02x", pid)
	}
	vt, err := p.readByteRaw()
	if err != nil {
		return "", 0, 0, err
	}
	if vt&compactVersionMask != compactVersion {
		return "", 0, 0, fmt.Errorf("thrift: bad compact version %d", vt&compactVersionMask)
	}
	typeID := TMessageType(vt >> compactTypeShift & 0x07)
	seq, err := p.readVarint()
	if err != nil {
		return "", 0, 0, err
	}
	name, err := p.ReadString()
	return name, typeID, int32(uint32(seq)), err
}

// ReadMessageEnd is a no-op.
func (p *TCompactProtocol) ReadMessageEnd() error { return nil }

func (p *TCompactProtocol) readByteRaw() (byte, error) {
	if _, err := io.ReadFull(p.trans, p.scratch[:1]); err != nil {
		return 0, err
	}
	return p.scratch[0], nil
}

// ReadStructBegin pushes the field-id delta context.
func (p *TCompactProtocol) ReadStructBegin() (string, error) {
	p.fieldStack = append(p.fieldStack, p.lastFieldID)
	p.lastFieldID = 0
	return "", nil
}

// ReadStructEnd pops the field-id delta context.
func (p *TCompactProtocol) ReadStructEnd() error {
	n := len(p.fieldStack)
	if n == 0 {
		return fmt.Errorf("thrift: ReadStructEnd without begin")
	}
	p.lastFieldID = p.fieldStack[n-1]
	p.fieldStack = p.fieldStack[:n-1]
	return nil
}

// ReadFieldBegin parses the delta-encoded field header; bool values are
// captured for the following ReadBool.
func (p *TCompactProtocol) ReadFieldBegin() (string, TType, int16, error) {
	b, err := p.readByteRaw()
	if err != nil {
		return "", 0, 0, err
	}
	if b == ctStop {
		return "", STOP, 0, nil
	}
	ctype := b & 0x0f
	delta := int16(b >> 4)
	var id int16
	if delta == 0 {
		v, err := p.readVarint()
		if err != nil {
			return "", 0, 0, err
		}
		id = int16(unzig32(v))
	} else {
		id = p.lastFieldID + delta
	}
	p.lastFieldID = id
	tt, err := fromCompactType(ctype)
	if err != nil {
		return "", 0, 0, err
	}
	if tt == BOOL {
		p.havePendingBool = true
		p.pendingBoolValue = ctype == ctBoolTrue
	}
	return "", tt, id, nil
}

// ReadFieldEnd is a no-op.
func (p *TCompactProtocol) ReadFieldEnd() error { return nil }

// ReadMapBegin parses the compact map header.
func (p *TCompactProtocol) ReadMapBegin() (TType, TType, int, error) {
	size, err := p.readVarint()
	if err != nil {
		return 0, 0, 0, err
	}
	if size > 1<<30 {
		return 0, 0, 0, fmt.Errorf("thrift: map too large: %d", size)
	}
	if size == 0 {
		return 0, 0, 0, nil
	}
	kv, err := p.readByteRaw()
	if err != nil {
		return 0, 0, 0, err
	}
	kt, err := fromCompactType(kv >> 4)
	if err != nil {
		return 0, 0, 0, err
	}
	vt, err := fromCompactType(kv & 0x0f)
	if err != nil {
		return 0, 0, 0, err
	}
	return kt, vt, int(size), nil
}

// ReadMapEnd is a no-op.
func (p *TCompactProtocol) ReadMapEnd() error { return nil }

// ReadListBegin parses the compact list header.
func (p *TCompactProtocol) ReadListBegin() (TType, int, error) {
	b, err := p.readByteRaw()
	if err != nil {
		return 0, 0, err
	}
	et, err := fromCompactType(b & 0x0f)
	if err != nil {
		return 0, 0, err
	}
	size := int(b >> 4)
	if size == 15 {
		v, err := p.readVarint()
		if err != nil {
			return 0, 0, err
		}
		if v > 1<<30 {
			return 0, 0, fmt.Errorf("thrift: list too large: %d", v)
		}
		size = int(v)
	}
	return et, size, nil
}

// ReadListEnd is a no-op.
func (p *TCompactProtocol) ReadListEnd() error { return nil }

// ReadSetBegin parses the compact set header.
func (p *TCompactProtocol) ReadSetBegin() (TType, int, error) { return p.ReadListBegin() }

// ReadSetEnd is a no-op.
func (p *TCompactProtocol) ReadSetEnd() error { return nil }

// ReadBool returns a pending field-header bool or reads a value byte.
func (p *TCompactProtocol) ReadBool() (bool, error) {
	if p.havePendingBool {
		p.havePendingBool = false
		return p.pendingBoolValue, nil
	}
	b, err := p.readByteRaw()
	return b == ctBoolTrue, err
}

// ReadI8 reads one byte.
func (p *TCompactProtocol) ReadI8() (int8, error) {
	b, err := p.readByteRaw()
	return int8(b), err
}

// ReadI16 reads a zigzag varint.
func (p *TCompactProtocol) ReadI16() (int16, error) {
	v, err := p.readVarint()
	return int16(unzig32(v)), err
}

// ReadI32 reads a zigzag varint.
func (p *TCompactProtocol) ReadI32() (int32, error) {
	v, err := p.readVarint()
	return unzig32(v), err
}

// ReadI64 reads a zigzag varint.
func (p *TCompactProtocol) ReadI64() (int64, error) {
	v, err := p.readVarint()
	return unzig64(v), err
}

// ReadDouble reads a little-endian IEEE-754 double.
func (p *TCompactProtocol) ReadDouble() (float64, error) {
	if _, err := io.ReadFull(p.trans, p.scratch[:8]); err != nil {
		return 0, err
	}
	return math.Float64frombits(binary.LittleEndian.Uint64(p.scratch[:8])), nil
}

// ReadString reads a varint-length-prefixed string. The intermediate
// byte buffer goes back to the arena — the string conversion copies.
func (p *TCompactProtocol) ReadString() (string, error) {
	b, err := p.ReadBinary()
	s := string(b)
	PutBuffer(b)
	return s, err
}

// ReadBinary reads a varint-length-prefixed byte slice.
func (p *TCompactProtocol) ReadBinary() ([]byte, error) {
	n, err := p.readVarint()
	if err != nil {
		return nil, err
	}
	if n > 1<<30 {
		return nil, fmt.Errorf("thrift: binary too large: %d", n)
	}
	return readLenPrefixed(p.trans, int(n))
}
