// Package thrift is a compact re-implementation of the Apache Thrift
// runtime library for Go, providing the pieces HatRPC's generated code
// needs: the TTransport and TProtocol abstractions, Binary and Compact
// wire protocols, framed/buffered/memory transports, application
// exceptions, and a processor-based server loop.
//
// The wire formats follow the upstream Thrift specifications, so the
// serialization behaviour (and its costs, which the simulation charges by
// byte count) is faithful to what the paper's vanilla-Thrift baseline
// pays.
package thrift

import (
	"errors"
	"fmt"
	"io"
)

// TType is a Thrift wire type identifier.
type TType byte

// Thrift wire types.
const (
	STOP   TType = 0
	VOID   TType = 1
	BOOL   TType = 2
	BYTE   TType = 3
	DOUBLE TType = 4
	I16    TType = 6
	I32    TType = 8
	I64    TType = 10
	STRING TType = 11
	STRUCT TType = 12
	MAP    TType = 13
	SET    TType = 14
	LIST   TType = 15
)

func (t TType) String() string {
	switch t {
	case STOP:
		return "STOP"
	case VOID:
		return "VOID"
	case BOOL:
		return "BOOL"
	case BYTE:
		return "BYTE"
	case DOUBLE:
		return "DOUBLE"
	case I16:
		return "I16"
	case I32:
		return "I32"
	case I64:
		return "I64"
	case STRING:
		return "STRING"
	case STRUCT:
		return "STRUCT"
	case MAP:
		return "MAP"
	case SET:
		return "SET"
	case LIST:
		return "LIST"
	}
	return fmt.Sprintf("TType(%d)", byte(t))
}

// TMessageType classifies RPC messages.
type TMessageType int32

// Message types.
const (
	CALL      TMessageType = 1
	REPLY     TMessageType = 2
	EXCEPTION TMessageType = 3
	ONEWAY    TMessageType = 4
)

// TTransport is the byte-level transport abstraction. Writers accumulate
// until Flush, which delivers one message/frame.
type TTransport interface {
	Read(p []byte) (int, error)
	Write(p []byte) (int, error)
	Flush() error
	Close() error
}

// ErrTransportClosed is returned by operations on a closed transport.
var ErrTransportClosed = errors.New("thrift: transport closed")

// TProtocol is the serialization abstraction over a TTransport.
type TProtocol interface {
	WriteMessageBegin(name string, typeID TMessageType, seqid int32) error
	WriteMessageEnd() error
	WriteStructBegin(name string) error
	WriteStructEnd() error
	WriteFieldBegin(name string, typeID TType, id int16) error
	WriteFieldEnd() error
	WriteFieldStop() error
	WriteMapBegin(keyType, valueType TType, size int) error
	WriteMapEnd() error
	WriteListBegin(elemType TType, size int) error
	WriteListEnd() error
	WriteSetBegin(elemType TType, size int) error
	WriteSetEnd() error
	WriteBool(v bool) error
	WriteI8(v int8) error
	WriteI16(v int16) error
	WriteI32(v int32) error
	WriteI64(v int64) error
	WriteDouble(v float64) error
	WriteString(v string) error
	WriteBinary(v []byte) error

	ReadMessageBegin() (name string, typeID TMessageType, seqid int32, err error)
	ReadMessageEnd() error
	ReadStructBegin() (name string, err error)
	ReadStructEnd() error
	ReadFieldBegin() (name string, typeID TType, id int16, err error)
	ReadFieldEnd() error
	ReadMapBegin() (keyType, valueType TType, size int, err error)
	ReadMapEnd() error
	ReadListBegin() (elemType TType, size int, err error)
	ReadListEnd() error
	ReadSetBegin() (elemType TType, size int, err error)
	ReadSetEnd() error
	ReadBool() (bool, error)
	ReadI8() (int8, error)
	ReadI16() (int16, error)
	ReadI32() (int32, error)
	ReadI64() (int64, error)
	ReadDouble() (float64, error)
	ReadString() (string, error)
	ReadBinary() ([]byte, error)

	Flush() error
	Transport() TTransport
}

// maxSkipDepth bounds the nesting Skip will follow. Legitimate HatRPC
// schemas nest a handful of levels; a crafted message of thousands of
// nested struct/list headers (3 bytes each on the wire) must not be
// able to exhaust the goroutine stack.
const maxSkipDepth = 64

// Skip reads and discards a value of the given type.
func Skip(p TProtocol, t TType) error {
	return skip(p, t, 0)
}

func skip(p TProtocol, t TType, depth int) error {
	if depth > maxSkipDepth {
		return fmt.Errorf("thrift: skip nesting exceeds %d levels", maxSkipDepth)
	}
	switch t {
	case BOOL:
		_, err := p.ReadBool()
		return err
	case BYTE:
		_, err := p.ReadI8()
		return err
	case I16:
		_, err := p.ReadI16()
		return err
	case I32:
		_, err := p.ReadI32()
		return err
	case I64:
		_, err := p.ReadI64()
		return err
	case DOUBLE:
		_, err := p.ReadDouble()
		return err
	case STRING:
		_, err := p.ReadBinary()
		return err
	case STRUCT:
		if _, err := p.ReadStructBegin(); err != nil {
			return err
		}
		for {
			_, ft, _, err := p.ReadFieldBegin()
			if err != nil {
				return err
			}
			if ft == STOP {
				break
			}
			if err := skip(p, ft, depth+1); err != nil {
				return err
			}
			if err := p.ReadFieldEnd(); err != nil {
				return err
			}
		}
		return p.ReadStructEnd()
	case MAP:
		kt, vt, size, err := p.ReadMapBegin()
		if err != nil {
			return err
		}
		for i := 0; i < size; i++ {
			if err := skip(p, kt, depth+1); err != nil {
				return err
			}
			if err := skip(p, vt, depth+1); err != nil {
				return err
			}
		}
		return p.ReadMapEnd()
	case SET:
		et, size, err := p.ReadSetBegin()
		if err != nil {
			return err
		}
		for i := 0; i < size; i++ {
			if err := skip(p, et, depth+1); err != nil {
				return err
			}
		}
		return p.ReadSetEnd()
	case LIST:
		et, size, err := p.ReadListBegin()
		if err != nil {
			return err
		}
		for i := 0; i < size; i++ {
			if err := skip(p, et, depth+1); err != nil {
				return err
			}
		}
		return p.ReadListEnd()
	default:
		return fmt.Errorf("thrift: cannot skip type %v", t)
	}
}

// readLenPrefixed reads exactly n bytes from r without trusting n for
// the upfront allocation: the buffer grows chunk by chunk as bytes
// actually arrive, so a corrupt multi-gigabyte length prefix fails with
// an EOF after at most one chunk instead of attempting a huge make.
func readLenPrefixed(r io.Reader, n int) ([]byte, error) {
	const chunk = 1 << 20
	if n <= chunk {
		// Arena-backed: callers that are done with the bytes may recycle
		// them with PutBuffer, making repeated binary-field reads
		// allocation-free.
		b := GetBuffer(n)
		if _, err := io.ReadFull(r, b); err != nil {
			PutBuffer(b)
			return nil, err
		}
		return b, nil
	}
	b := make([]byte, 0, chunk)
	for len(b) < n {
		c := min(n-len(b), chunk)
		off := len(b)
		b = append(b, make([]byte, c)...)
		if _, err := io.ReadFull(r, b[off:]); err != nil {
			return nil, err
		}
	}
	return b, nil
}

// TStruct is implemented by every generated struct.
type TStruct interface {
	Write(p TProtocol) error
	Read(p TProtocol) error
}

// ApplicationExceptionType classifies TApplicationException.
type ApplicationExceptionType int32

// Standard application exception codes.
const (
	ExcUnknown            ApplicationExceptionType = 0
	ExcUnknownMethod      ApplicationExceptionType = 1
	ExcInvalidMessageType ApplicationExceptionType = 2
	ExcWrongMethodName    ApplicationExceptionType = 3
	ExcBadSequenceID      ApplicationExceptionType = 4
	ExcMissingResult      ApplicationExceptionType = 5
	ExcInternalError      ApplicationExceptionType = 6
	ExcProtocolError      ApplicationExceptionType = 7
)

// TApplicationException is the standard Thrift RPC-level error.
type TApplicationException struct {
	Message string
	Type    ApplicationExceptionType
}

// NewApplicationException builds an exception value.
func NewApplicationException(t ApplicationExceptionType, msg string) *TApplicationException {
	return &TApplicationException{Message: msg, Type: t}
}

func (e *TApplicationException) Error() string {
	return fmt.Sprintf("thrift: application exception (%d): %s", e.Type, e.Message)
}

// Write serializes the exception in the standard layout.
func (e *TApplicationException) Write(p TProtocol) error {
	if err := p.WriteStructBegin("TApplicationException"); err != nil {
		return err
	}
	if e.Message != "" {
		if err := p.WriteFieldBegin("message", STRING, 1); err != nil {
			return err
		}
		if err := p.WriteString(e.Message); err != nil {
			return err
		}
		if err := p.WriteFieldEnd(); err != nil {
			return err
		}
	}
	if err := p.WriteFieldBegin("type", I32, 2); err != nil {
		return err
	}
	if err := p.WriteI32(int32(e.Type)); err != nil {
		return err
	}
	if err := p.WriteFieldEnd(); err != nil {
		return err
	}
	if err := p.WriteFieldStop(); err != nil {
		return err
	}
	return p.WriteStructEnd()
}

// Read deserializes the exception.
func (e *TApplicationException) Read(p TProtocol) error {
	if _, err := p.ReadStructBegin(); err != nil {
		return err
	}
	for {
		_, ft, id, err := p.ReadFieldBegin()
		if err != nil {
			return err
		}
		if ft == STOP {
			break
		}
		switch {
		case id == 1 && ft == STRING:
			if e.Message, err = p.ReadString(); err != nil {
				return err
			}
		case id == 2 && ft == I32:
			var v int32
			if v, err = p.ReadI32(); err != nil {
				return err
			}
			e.Type = ApplicationExceptionType(v)
		default:
			if err := Skip(p, ft); err != nil {
				return err
			}
		}
		if err := p.ReadFieldEnd(); err != nil {
			return err
		}
	}
	return p.ReadStructEnd()
}

// TProcessor dispatches one incoming call read from in, writing the
// response to out. It returns false when the transport is exhausted.
type TProcessor interface {
	Process(in, out TProtocol) (bool, error)
}
