package thrift

import "sync"

// Size-classed buffer arena for the serialization hot path. Frame
// bodies, binary-field reads and transport read buffers cycle through
// here instead of the garbage collector, so a steady-state RPC loop
// serializes with zero per-op heap allocations once the classes are
// warm.
//
// Classes are powers of two from arenaMinClass to arenaMaxClass;
// requests outside that range fall back to plain make (a request that
// large is not hot-path). The arena is process-global and
// mutex-guarded: package thrift is plain library code driven from many
// simulation harnesses (it is not a DES package), so goroutine-safety
// is on it, not its callers. Returning a buffer is always optional —
// a dropped buffer is collected normally.
const (
	arenaMinClass = 64
	arenaMaxClass = 1 << 20
	arenaClassCap = 32 // free buffers retained per class
)

var bufArena struct {
	mu   sync.Mutex
	free map[int][][]byte
}

// arenaClass rounds n up to its size class.
func arenaClass(n int) int {
	c := arenaMinClass
	for c < n {
		c <<= 1
	}
	return c
}

// GetBuffer returns a length-n byte slice, reusing an arena buffer when
// the size class has stock. Contents are unspecified: callers overwrite
// the whole slice (readers fill it, writers truncate to 0 and append).
func GetBuffer(n int) []byte {
	if n < 0 {
		n = 0
	}
	if n > arenaMaxClass {
		return make([]byte, n)
	}
	cls := arenaClass(n)
	bufArena.mu.Lock()
	if free := bufArena.free[cls]; len(free) > 0 {
		b := free[len(free)-1]
		free[len(free)-1] = nil
		bufArena.free[cls] = free[:len(free)-1]
		bufArena.mu.Unlock()
		return b[:n]
	}
	bufArena.mu.Unlock()
	return make([]byte, n, cls)
}

// PutBuffer recycles a buffer into its size class. Buffers whose
// capacity fits no class, and classes already at their retention cap,
// are dropped (GC'd as usual). The buffer must not be used after Put.
func PutBuffer(b []byte) {
	if cap(b) < arenaMinClass || cap(b) > arenaMaxClass {
		return
	}
	cls := arenaMinClass
	for cls<<1 <= cap(b) {
		cls <<= 1
	}
	bufArena.mu.Lock()
	if bufArena.free == nil {
		bufArena.free = make(map[int][][]byte)
	}
	if len(bufArena.free[cls]) < arenaClassCap {
		bufArena.free[cls] = append(bufArena.free[cls], b[:cls])
	}
	bufArena.mu.Unlock()
}
