package thrift

import (
	"testing"
)

// buildMessage serializes one RPC call through proto's write path: the
// message header plus a struct carrying a string, an i32, a nested
// struct and a map — the field shapes HatRPC's generated code emits.
func buildMessage(proto func(TTransport) TProtocol, name string, payload string) []byte {
	mb := NewTMemoryBuffer()
	p := proto(mb)
	p.WriteMessageBegin(name, CALL, 7)
	p.WriteStructBegin("args")
	p.WriteFieldBegin("payload", STRING, 1)
	p.WriteString(payload)
	p.WriteFieldEnd()
	p.WriteFieldBegin("n", I32, 2)
	p.WriteI32(42)
	p.WriteFieldEnd()
	p.WriteFieldBegin("opts", STRUCT, 3)
	p.WriteStructBegin("opts")
	p.WriteFieldBegin("flag", BOOL, 1)
	p.WriteBool(true)
	p.WriteFieldEnd()
	p.WriteFieldStop()
	p.WriteStructEnd()
	p.WriteFieldEnd()
	p.WriteFieldBegin("tags", MAP, 4)
	p.WriteMapBegin(STRING, I64, 1)
	p.WriteString("k")
	p.WriteI64(-1)
	p.WriteMapEnd()
	p.WriteFieldEnd()
	p.WriteFieldStop()
	p.WriteStructEnd()
	p.WriteMessageEnd()
	p.Flush()
	return mb.Bytes()
}

// drain mimics the server's read path on an incoming call: parse the
// message header, then skip the argument struct.
func drain(t *testing.T, p TProtocol, input []byte) {
	name, _, _, err := p.ReadMessageBegin()
	if err != nil {
		return
	}
	// A parsed name is backed by input bytes; it can never be longer
	// than the input. (Before ReadBinary was hardened, a lying length
	// prefix allocated the claimed size up front instead.)
	if len(name) > len(input) {
		t.Fatalf("parsed name of %d bytes from %d input bytes", len(name), len(input))
	}
	_ = Skip(p, STRUCT)
	_ = p.ReadMessageEnd()
}

// FuzzBinaryDecode throws arbitrary bytes at the strict binary
// protocol's message read path. The decoder must return errors — never
// panic, recurse without bound, or allocate proportionally to a corrupt
// length prefix.
func FuzzBinaryDecode(f *testing.F) {
	f.Add(buildMessage(func(tr TTransport) TProtocol { return NewTBinaryProtocol(tr) }, "echo", "hello"))
	f.Add([]byte{0x80, 0x01, 0x00, 0x01, 0xff, 0xff, 0xff, 0xff}) // huge name length
	f.Add([]byte{0x80, 0x01, 0x00, 0x01})                         // truncated after version
	f.Fuzz(func(t *testing.T, data []byte) {
		p := NewTBinaryProtocol(NewTMemoryBufferWith(data))
		drain(t, p, data)
	})
}

// FuzzCompactDecode is the compact-protocol twin of FuzzBinaryDecode:
// varint lengths and delta-encoded field ids give the fuzzer a much
// denser encoding to corrupt.
func FuzzCompactDecode(f *testing.F) {
	f.Add(buildMessage(func(tr TTransport) TProtocol { return NewTCompactProtocol(tr) }, "echo", "hello"))
	f.Add([]byte{0x82, 0x21, 0x07, 0xff, 0xff, 0xff, 0xff, 0x7f}) // huge varint name length
	f.Add([]byte{0x82, 0x21})                                     // truncated after header
	f.Fuzz(func(t *testing.T, data []byte) {
		p := NewTCompactProtocol(NewTMemoryBufferWith(data))
		drain(t, p, data)
	})
}

// FuzzSkip drives Skip directly with an attacker-chosen root type —
// the path a server takes for every unknown field id. Deep nesting must
// hit the depth limit, not the goroutine stack.
func FuzzSkip(f *testing.F) {
	// 200 nested struct openings (field type STRUCT, id delta 1) —
	// rejected by maxSkipDepth rather than recursing 200 frames.
	deep := make([]byte, 0, 400)
	for i := 0; i < 200; i++ {
		deep = append(deep, 0x1c) // compact: delta 1, type struct
	}
	f.Add(deep, byte(STRUCT), true)
	f.Add([]byte{0x00}, byte(STRUCT), false)
	f.Add([]byte{0x0b, 0x00, 0x01, 0x00, 0x00, 0x00, 0x00, 0x00}, byte(STRUCT), false)
	f.Fuzz(func(t *testing.T, data []byte, typ byte, compact bool) {
		var p TProtocol
		if compact {
			p = NewTCompactProtocol(NewTMemoryBufferWith(data))
		} else {
			p = NewTBinaryProtocol(NewTMemoryBufferWith(data))
		}
		_ = Skip(p, TType(typ&0x0f))
	})
}
