package thrift

import (
	"math"
	"testing"
	"testing/quick"
)

// protoFactories enumerates both wire protocols so every test runs under
// each.
var protoFactories = map[string]func(TTransport) TProtocol{
	"binary":  func(t TTransport) TProtocol { return NewTBinaryProtocol(t) },
	"compact": func(t TTransport) TProtocol { return NewTCompactProtocol(t) },
}

func TestPrimitiveRoundTrip(t *testing.T) {
	for name, mk := range protoFactories {
		t.Run(name, func(t *testing.T) {
			buf := NewTMemoryBuffer()
			w := mk(buf)
			check(t, w.WriteBool(true))
			check(t, w.WriteBool(false))
			check(t, w.WriteI8(-7))
			check(t, w.WriteI16(-12345))
			check(t, w.WriteI32(2_000_000_000))
			check(t, w.WriteI64(-9e15))
			check(t, w.WriteDouble(3.14159))
			check(t, w.WriteDouble(math.Inf(-1)))
			check(t, w.WriteString("héllo wörld"))
			check(t, w.WriteBinary([]byte{0, 1, 2, 255}))

			r := mk(buf)
			if v, _ := r.ReadBool(); !v {
				t.Error("bool1")
			}
			if v, _ := r.ReadBool(); v {
				t.Error("bool2")
			}
			if v, _ := r.ReadI8(); v != -7 {
				t.Errorf("byte = %d", v)
			}
			if v, _ := r.ReadI16(); v != -12345 {
				t.Errorf("i16 = %d", v)
			}
			if v, _ := r.ReadI32(); v != 2_000_000_000 {
				t.Errorf("i32 = %d", v)
			}
			if v, _ := r.ReadI64(); v != -9e15 {
				t.Errorf("i64 = %d", v)
			}
			if v, _ := r.ReadDouble(); v != 3.14159 {
				t.Errorf("double = %v", v)
			}
			if v, _ := r.ReadDouble(); !math.IsInf(v, -1) {
				t.Errorf("double inf = %v", v)
			}
			if v, _ := r.ReadString(); v != "héllo wörld" {
				t.Errorf("string = %q", v)
			}
			if v, _ := r.ReadBinary(); len(v) != 4 || v[3] != 255 {
				t.Errorf("binary = %v", v)
			}
		})
	}
}

func TestMessageHeaderRoundTrip(t *testing.T) {
	for name, mk := range protoFactories {
		t.Run(name, func(t *testing.T) {
			buf := NewTMemoryBuffer()
			w := mk(buf)
			check(t, w.WriteMessageBegin("Echo.Ping", CALL, 42))
			check(t, w.WriteMessageEnd())
			r := mk(buf)
			name2, typ, seq, err := r.ReadMessageBegin()
			check(t, err)
			if name2 != "Echo.Ping" || typ != CALL || seq != 42 {
				t.Fatalf("header = %q %v %d", name2, typ, seq)
			}
		})
	}
}

func TestStructWithFieldsRoundTrip(t *testing.T) {
	for name, mk := range protoFactories {
		t.Run(name, func(t *testing.T) {
			buf := NewTMemoryBuffer()
			w := mk(buf)
			check(t, w.WriteStructBegin("S"))
			check(t, w.WriteFieldBegin("flag", BOOL, 1))
			check(t, w.WriteBool(true))
			check(t, w.WriteFieldEnd())
			check(t, w.WriteFieldBegin("n", I32, 2))
			check(t, w.WriteI32(99))
			check(t, w.WriteFieldEnd())
			check(t, w.WriteFieldBegin("far", I64, 500)) // long-form field id
			check(t, w.WriteI64(1))
			check(t, w.WriteFieldEnd())
			check(t, w.WriteFieldStop())
			check(t, w.WriteStructEnd())

			r := mk(buf)
			_, err := r.ReadStructBegin()
			check(t, err)
			_, ft, id, err := r.ReadFieldBegin()
			check(t, err)
			if ft != BOOL || id != 1 {
				t.Fatalf("field1 = %v %d", ft, id)
			}
			if v, _ := r.ReadBool(); !v {
				t.Error("bool field value")
			}
			check(t, r.ReadFieldEnd())
			_, ft, id, err = r.ReadFieldBegin()
			check(t, err)
			if ft != I32 || id != 2 {
				t.Fatalf("field2 = %v %d", ft, id)
			}
			if v, _ := r.ReadI32(); v != 99 {
				t.Error("i32 field value")
			}
			check(t, r.ReadFieldEnd())
			_, ft, id, err = r.ReadFieldBegin()
			check(t, err)
			if ft != I64 || id != 500 {
				t.Fatalf("field3 = %v %d", ft, id)
			}
			if v, _ := r.ReadI64(); v != 1 {
				t.Error("i64 field value")
			}
			check(t, r.ReadFieldEnd())
			_, ft, _, err = r.ReadFieldBegin()
			check(t, err)
			if ft != STOP {
				t.Fatal("missing stop")
			}
			check(t, r.ReadStructEnd())
		})
	}
}

func TestContainersRoundTrip(t *testing.T) {
	for name, mk := range protoFactories {
		t.Run(name, func(t *testing.T) {
			buf := NewTMemoryBuffer()
			w := mk(buf)
			check(t, w.WriteListBegin(I32, 20)) // >14 exercises compact long form
			for i := 0; i < 20; i++ {
				check(t, w.WriteI32(int32(i)))
			}
			check(t, w.WriteListEnd())
			check(t, w.WriteMapBegin(STRING, I64, 2))
			check(t, w.WriteString("a"))
			check(t, w.WriteI64(1))
			check(t, w.WriteString("b"))
			check(t, w.WriteI64(2))
			check(t, w.WriteMapEnd())
			check(t, w.WriteMapBegin(STRING, I64, 0)) // empty map special case
			check(t, w.WriteMapEnd())
			check(t, w.WriteSetBegin(BYTE, 3))
			for i := 0; i < 3; i++ {
				check(t, w.WriteI8(int8(i)))
			}
			check(t, w.WriteSetEnd())

			r := mk(buf)
			et, n, err := r.ReadListBegin()
			check(t, err)
			if et != I32 || n != 20 {
				t.Fatalf("list = %v %d", et, n)
			}
			for i := 0; i < 20; i++ {
				if v, _ := r.ReadI32(); v != int32(i) {
					t.Fatalf("list[%d] = %d", i, v)
				}
			}
			check(t, r.ReadListEnd())
			kt, vt, n, err := r.ReadMapBegin()
			check(t, err)
			if kt != STRING || vt != I64 || n != 2 {
				t.Fatalf("map = %v %v %d", kt, vt, n)
			}
			for i := 0; i < 2; i++ {
				r.ReadString()
				r.ReadI64()
			}
			check(t, r.ReadMapEnd())
			_, _, n, err = r.ReadMapBegin()
			check(t, err)
			if n != 0 {
				t.Fatalf("empty map size = %d", n)
			}
			st, n, err := r.ReadSetBegin()
			check(t, err)
			if st != BYTE || n != 3 {
				t.Fatalf("set = %v %d", st, n)
			}
		})
	}
}

func TestSkipComplexValue(t *testing.T) {
	for name, mk := range protoFactories {
		t.Run(name, func(t *testing.T) {
			buf := NewTMemoryBuffer()
			w := mk(buf)
			// struct { 1: map<string, list<i32>>; 2: bool } followed by i32 sentinel
			check(t, w.WriteStructBegin("X"))
			check(t, w.WriteFieldBegin("m", MAP, 1))
			check(t, w.WriteMapBegin(STRING, LIST, 1))
			check(t, w.WriteString("k"))
			check(t, w.WriteListBegin(I32, 2))
			check(t, w.WriteI32(1))
			check(t, w.WriteI32(2))
			check(t, w.WriteListEnd())
			check(t, w.WriteMapEnd())
			check(t, w.WriteFieldEnd())
			check(t, w.WriteFieldBegin("b", BOOL, 2))
			check(t, w.WriteBool(true))
			check(t, w.WriteFieldEnd())
			check(t, w.WriteFieldStop())
			check(t, w.WriteStructEnd())
			check(t, w.WriteI32(777))

			r := mk(buf)
			check(t, Skip(r, STRUCT))
			v, err := r.ReadI32()
			check(t, err)
			if v != 777 {
				t.Fatalf("sentinel after skip = %d", v)
			}
		})
	}
}

func TestApplicationExceptionRoundTrip(t *testing.T) {
	for name, mk := range protoFactories {
		t.Run(name, func(t *testing.T) {
			buf := NewTMemoryBuffer()
			w := mk(buf)
			exc := NewApplicationException(ExcUnknownMethod, "no such method")
			check(t, exc.Write(w))
			r := mk(buf)
			var got TApplicationException
			check(t, got.Read(r))
			if got.Message != "no such method" || got.Type != ExcUnknownMethod {
				t.Fatalf("round-trip = %+v", got)
			}
		})
	}
}

func TestCompactSmallerThanBinary(t *testing.T) {
	write := func(p TProtocol) {
		p.WriteStructBegin("S")
		for i := int16(1); i <= 10; i++ {
			p.WriteFieldBegin("f", I32, i)
			p.WriteI32(int32(i))
			p.WriteFieldEnd()
		}
		p.WriteFieldStop()
		p.WriteStructEnd()
	}
	bb := NewTMemoryBuffer()
	write(NewTBinaryProtocol(bb))
	cb := NewTMemoryBuffer()
	write(NewTCompactProtocol(cb))
	if cb.Len() >= bb.Len() {
		t.Fatalf("compact (%d) not smaller than binary (%d)", cb.Len(), bb.Len())
	}
}

func TestFramedTransportRoundTrip(t *testing.T) {
	inner := NewTMemoryBuffer()
	f := NewTFramedTransport(inner)
	f.Write([]byte("frame-one"))
	check(t, f.Flush())
	f.Write([]byte("frame-two!"))
	check(t, f.Flush())

	r := NewTFramedTransport(inner)
	buf := make([]byte, 9)
	if _, err := r.Read(buf); err != nil || string(buf) != "frame-one" {
		t.Fatalf("frame 1 = %q err %v", buf, err)
	}
	buf = make([]byte, 10)
	if _, err := r.Read(buf); err != nil || string(buf) != "frame-two!" {
		t.Fatalf("frame 2 = %q err %v", buf, err)
	}
}

func TestBufferedTransport(t *testing.T) {
	inner := NewTMemoryBuffer()
	b := NewTBufferedTransport(inner, 8)
	b.Write([]byte("abc"))
	if inner.Len() != 0 {
		t.Fatal("small write leaked through before flush")
	}
	b.Write([]byte("defghijkl")) // exceeds buffer, spills
	check(t, b.Flush())
	r := NewTBufferedTransport(inner, 8)
	out := make([]byte, 12)
	n := 0
	for n < 12 {
		m, err := r.Read(out[n:])
		check(t, err)
		n += m
	}
	if string(out) != "abcdefghijkl" {
		t.Fatalf("buffered read = %q", out)
	}
}

func TestBinaryRejectsBadVersion(t *testing.T) {
	buf := NewTMemoryBufferWith([]byte{0x00, 0x01, 0x02, 0x03, 0, 0, 0, 0})
	r := NewTBinaryProtocol(buf)
	if _, _, _, err := r.ReadMessageBegin(); err == nil {
		t.Fatal("bad version accepted")
	}
}

func TestCompactRejectsBadProtocolID(t *testing.T) {
	buf := NewTMemoryBufferWith([]byte{0x99, 0x21})
	r := NewTCompactProtocol(buf)
	if _, _, _, err := r.ReadMessageBegin(); err == nil {
		t.Fatal("bad protocol id accepted")
	}
}

func TestMemoryBufferClose(t *testing.T) {
	m := NewTMemoryBuffer()
	m.Close()
	if _, err := m.Write([]byte("x")); err != ErrTransportClosed {
		t.Fatalf("write after close = %v", err)
	}
	if _, err := m.Read(make([]byte, 1)); err != ErrTransportClosed {
		t.Fatalf("read after close = %v", err)
	}
}

// Property: every int64 round-trips through both protocols.
func TestPropertyI64RoundTrip(t *testing.T) {
	for name, mk := range protoFactories {
		mk := mk
		t.Run(name, func(t *testing.T) {
			f := func(v int64) bool {
				buf := NewTMemoryBuffer()
				if err := mk(buf).WriteI64(v); err != nil {
					return false
				}
				got, err := mk(buf).ReadI64()
				return err == nil && got == v
			}
			if err := quick.Check(f, nil); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// Property: arbitrary byte strings round-trip as binary.
func TestPropertyBinaryRoundTrip(t *testing.T) {
	for name, mk := range protoFactories {
		mk := mk
		t.Run(name, func(t *testing.T) {
			f := func(v []byte) bool {
				buf := NewTMemoryBuffer()
				if err := mk(buf).WriteBinary(v); err != nil {
					return false
				}
				got, err := mk(buf).ReadBinary()
				if err != nil || len(got) != len(v) {
					return false
				}
				for i := range v {
					if got[i] != v[i] {
						return false
					}
				}
				return true
			}
			if err := quick.Check(f, nil); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// Property: doubles round-trip bit-exactly (including NaN payloads).
func TestPropertyDoubleRoundTrip(t *testing.T) {
	for name, mk := range protoFactories {
		mk := mk
		t.Run(name, func(t *testing.T) {
			f := func(bits uint64) bool {
				v := math.Float64frombits(bits)
				buf := NewTMemoryBuffer()
				if err := mk(buf).WriteDouble(v); err != nil {
					return false
				}
				got, err := mk(buf).ReadDouble()
				return err == nil && math.Float64bits(got) == bits
			}
			if err := quick.Check(f, nil); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// Property: field ids survive delta encoding for any positive id sequence.
func TestPropertyCompactFieldIDs(t *testing.T) {
	f := func(raw []uint16) bool {
		ids := make([]int16, 0, len(raw))
		seen := map[int16]bool{}
		for _, r := range raw {
			id := int16(r%4000) + 1
			if !seen[id] {
				seen[id] = true
				ids = append(ids, id)
			}
		}
		buf := NewTMemoryBuffer()
		w := NewTCompactProtocol(buf)
		w.WriteStructBegin("S")
		for _, id := range ids {
			w.WriteFieldBegin("f", I32, id)
			w.WriteI32(int32(id))
			w.WriteFieldEnd()
		}
		w.WriteFieldStop()
		w.WriteStructEnd()
		r := NewTCompactProtocol(buf)
		r.ReadStructBegin()
		for _, want := range ids {
			_, ft, id, err := r.ReadFieldBegin()
			if err != nil || ft != I32 || id != want {
				return false
			}
			if v, _ := r.ReadI32(); v != int32(want) {
				return false
			}
		}
		_, ft, _, err := r.ReadFieldBegin()
		return err == nil && ft == STOP
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func check(t *testing.T, err error) {
	t.Helper()
	if err != nil {
		t.Fatal(err)
	}
}
