package thrift

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"
)

// binaryVersionMask and binaryVersion1 implement the "strict" binary
// protocol header.
const (
	binaryVersionMask uint32 = 0xffff0000
	binaryVersion1    uint32 = 0x80010000
)

// TBinaryProtocol is the default Thrift wire protocol: fixed-width
// big-endian integers, length-prefixed strings.
//
// The scratch fields make the fixed-width codec allocation-free: a
// stack array passed through the TTransport interface escapes to the
// heap on every call, so the per-protocol fields absorb that cost once
// at protocol construction. Protocols are per-connection and not
// goroutine-safe, as in upstream Thrift.
type TBinaryProtocol struct {
	trans   TTransport
	scratch [8]byte // fixed-width integer staging
	sbuf    []byte  // grow-once string-write staging
}

var _ TProtocol = (*TBinaryProtocol)(nil)

// NewTBinaryProtocol returns a strict binary protocol over trans.
func NewTBinaryProtocol(trans TTransport) *TBinaryProtocol {
	return &TBinaryProtocol{trans: trans}
}

// Transport returns the underlying transport.
func (p *TBinaryProtocol) Transport() TTransport { return p.trans }

// Flush flushes the underlying transport.
func (p *TBinaryProtocol) Flush() error { return p.trans.Flush() }

func (p *TBinaryProtocol) writeAll(b []byte) error {
	_, err := p.trans.Write(b)
	return err
}

func (p *TBinaryProtocol) readFull(b []byte) error {
	_, err := io.ReadFull(p.trans, b)
	return err
}

// WriteMessageBegin emits the strict-mode message header.
func (p *TBinaryProtocol) WriteMessageBegin(name string, typeID TMessageType, seqid int32) error {
	if err := p.WriteI32(int32(binaryVersion1 | uint32(typeID))); err != nil {
		return err
	}
	if err := p.WriteString(name); err != nil {
		return err
	}
	return p.WriteI32(seqid)
}

// WriteMessageEnd is a no-op.
func (p *TBinaryProtocol) WriteMessageEnd() error { return nil }

// WriteStructBegin is a no-op in the binary protocol.
func (p *TBinaryProtocol) WriteStructBegin(string) error { return nil }

// WriteStructEnd is a no-op.
func (p *TBinaryProtocol) WriteStructEnd() error { return nil }

// WriteFieldBegin emits the field type and id.
func (p *TBinaryProtocol) WriteFieldBegin(_ string, typeID TType, id int16) error {
	if err := p.WriteI8(int8(typeID)); err != nil {
		return err
	}
	return p.WriteI16(id)
}

// WriteFieldEnd is a no-op.
func (p *TBinaryProtocol) WriteFieldEnd() error { return nil }

// WriteFieldStop emits the STOP sentinel.
func (p *TBinaryProtocol) WriteFieldStop() error { return p.WriteI8(int8(STOP)) }

// WriteMapBegin emits key type, value type and size.
func (p *TBinaryProtocol) WriteMapBegin(kt, vt TType, size int) error {
	if err := p.WriteI8(int8(kt)); err != nil {
		return err
	}
	if err := p.WriteI8(int8(vt)); err != nil {
		return err
	}
	return p.WriteI32(int32(size))
}

// WriteMapEnd is a no-op.
func (p *TBinaryProtocol) WriteMapEnd() error { return nil }

// WriteListBegin emits element type and size.
func (p *TBinaryProtocol) WriteListBegin(et TType, size int) error {
	if err := p.WriteI8(int8(et)); err != nil {
		return err
	}
	return p.WriteI32(int32(size))
}

// WriteListEnd is a no-op.
func (p *TBinaryProtocol) WriteListEnd() error { return nil }

// WriteSetBegin emits element type and size.
func (p *TBinaryProtocol) WriteSetBegin(et TType, size int) error {
	return p.WriteListBegin(et, size)
}

// WriteSetEnd is a no-op.
func (p *TBinaryProtocol) WriteSetEnd() error { return nil }

// WriteBool emits one byte.
func (p *TBinaryProtocol) WriteBool(v bool) error {
	if v {
		return p.WriteI8(1)
	}
	return p.WriteI8(0)
}

// WriteI8 emits one byte.
func (p *TBinaryProtocol) WriteI8(v int8) error {
	p.scratch[0] = byte(v)
	return p.writeAll(p.scratch[:1])
}

// WriteI16 emits a big-endian int16.
func (p *TBinaryProtocol) WriteI16(v int16) error {
	binary.BigEndian.PutUint16(p.scratch[:2], uint16(v))
	return p.writeAll(p.scratch[:2])
}

// WriteI32 emits a big-endian int32.
func (p *TBinaryProtocol) WriteI32(v int32) error {
	binary.BigEndian.PutUint32(p.scratch[:4], uint32(v))
	return p.writeAll(p.scratch[:4])
}

// WriteI64 emits a big-endian int64.
func (p *TBinaryProtocol) WriteI64(v int64) error {
	binary.BigEndian.PutUint64(p.scratch[:8], uint64(v))
	return p.writeAll(p.scratch[:8])
}

// WriteDouble emits an IEEE-754 double, big-endian.
func (p *TBinaryProtocol) WriteDouble(v float64) error {
	return p.WriteI64(int64(math.Float64bits(v)))
}

// WriteString emits a length-prefixed string. The string bytes are
// staged in the protocol's grow-once buffer instead of a per-call
// []byte(v) conversion.
func (p *TBinaryProtocol) WriteString(v string) error {
	if err := p.WriteI32(int32(len(v))); err != nil {
		return err
	}
	p.sbuf = append(p.sbuf[:0], v...)
	return p.writeAll(p.sbuf)
}

// WriteBinary emits a length-prefixed byte slice.
func (p *TBinaryProtocol) WriteBinary(v []byte) error {
	if err := p.WriteI32(int32(len(v))); err != nil {
		return err
	}
	return p.writeAll(v)
}

// ReadMessageBegin parses the strict-mode header.
func (p *TBinaryProtocol) ReadMessageBegin() (string, TMessageType, int32, error) {
	first, err := p.ReadI32()
	if err != nil {
		return "", 0, 0, err
	}
	if uint32(first)&binaryVersionMask != binaryVersion1 {
		return "", 0, 0, fmt.Errorf("thrift: bad binary protocol version 0x%08x", uint32(first))
	}
	typeID := TMessageType(uint32(first) & 0xff)
	name, err := p.ReadString()
	if err != nil {
		return "", 0, 0, err
	}
	seqid, err := p.ReadI32()
	return name, typeID, seqid, err
}

// ReadMessageEnd is a no-op.
func (p *TBinaryProtocol) ReadMessageEnd() error { return nil }

// ReadStructBegin is a no-op.
func (p *TBinaryProtocol) ReadStructBegin() (string, error) { return "", nil }

// ReadStructEnd is a no-op.
func (p *TBinaryProtocol) ReadStructEnd() error { return nil }

// ReadFieldBegin parses field type and id (id omitted for STOP).
func (p *TBinaryProtocol) ReadFieldBegin() (string, TType, int16, error) {
	t, err := p.ReadI8()
	if err != nil {
		return "", 0, 0, err
	}
	if TType(t) == STOP {
		return "", STOP, 0, nil
	}
	id, err := p.ReadI16()
	return "", TType(t), id, err
}

// ReadFieldEnd is a no-op.
func (p *TBinaryProtocol) ReadFieldEnd() error { return nil }

// ReadMapBegin parses key/value types and size.
func (p *TBinaryProtocol) ReadMapBegin() (TType, TType, int, error) {
	kt, err := p.ReadI8()
	if err != nil {
		return 0, 0, 0, err
	}
	vt, err := p.ReadI8()
	if err != nil {
		return 0, 0, 0, err
	}
	size, err := p.ReadI32()
	if size < 0 {
		return 0, 0, 0, fmt.Errorf("thrift: negative map size %d", size)
	}
	return TType(kt), TType(vt), int(size), err
}

// ReadMapEnd is a no-op.
func (p *TBinaryProtocol) ReadMapEnd() error { return nil }

// ReadListBegin parses element type and size.
func (p *TBinaryProtocol) ReadListBegin() (TType, int, error) {
	et, err := p.ReadI8()
	if err != nil {
		return 0, 0, err
	}
	size, err := p.ReadI32()
	if size < 0 {
		return 0, 0, fmt.Errorf("thrift: negative list size %d", size)
	}
	return TType(et), int(size), err
}

// ReadListEnd is a no-op.
func (p *TBinaryProtocol) ReadListEnd() error { return nil }

// ReadSetBegin parses element type and size.
func (p *TBinaryProtocol) ReadSetBegin() (TType, int, error) { return p.ReadListBegin() }

// ReadSetEnd is a no-op.
func (p *TBinaryProtocol) ReadSetEnd() error { return nil }

// ReadBool parses one byte as bool.
func (p *TBinaryProtocol) ReadBool() (bool, error) {
	b, err := p.ReadI8()
	return b != 0, err
}

// ReadI8 parses one byte.
func (p *TBinaryProtocol) ReadI8() (int8, error) {
	if err := p.readFull(p.scratch[:1]); err != nil {
		return 0, err
	}
	return int8(p.scratch[0]), nil
}

// ReadI16 parses a big-endian int16.
func (p *TBinaryProtocol) ReadI16() (int16, error) {
	if err := p.readFull(p.scratch[:2]); err != nil {
		return 0, err
	}
	return int16(binary.BigEndian.Uint16(p.scratch[:2])), nil
}

// ReadI32 parses a big-endian int32.
func (p *TBinaryProtocol) ReadI32() (int32, error) {
	if err := p.readFull(p.scratch[:4]); err != nil {
		return 0, err
	}
	return int32(binary.BigEndian.Uint32(p.scratch[:4])), nil
}

// ReadI64 parses a big-endian int64.
func (p *TBinaryProtocol) ReadI64() (int64, error) {
	if err := p.readFull(p.scratch[:8]); err != nil {
		return 0, err
	}
	return int64(binary.BigEndian.Uint64(p.scratch[:8])), nil
}

// ReadDouble parses an IEEE-754 double.
func (p *TBinaryProtocol) ReadDouble() (float64, error) {
	v, err := p.ReadI64()
	return math.Float64frombits(uint64(v)), err
}

// ReadString parses a length-prefixed string. The intermediate byte
// buffer goes back to the arena — the string conversion copies.
func (p *TBinaryProtocol) ReadString() (string, error) {
	b, err := p.ReadBinary()
	s := string(b)
	PutBuffer(b)
	return s, err
}

// ReadBinary parses a length-prefixed byte slice.
func (p *TBinaryProtocol) ReadBinary() ([]byte, error) {
	n, err := p.ReadI32()
	if err != nil {
		return nil, err
	}
	if n < 0 {
		return nil, fmt.Errorf("thrift: negative binary length %d", n)
	}
	return readLenPrefixed(p.trans, int(n))
}
