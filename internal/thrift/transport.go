package thrift

import (
	"encoding/binary"
	"fmt"
	"io"
)

// TMemoryBuffer is an in-memory transport: writes append, reads consume.
type TMemoryBuffer struct {
	buf    []byte
	rpos   int
	closed bool
}

// NewTMemoryBuffer returns an empty memory transport.
func NewTMemoryBuffer() *TMemoryBuffer { return &TMemoryBuffer{} }

// NewTMemoryBufferWith returns a memory transport pre-loaded with data for
// reading.
func NewTMemoryBufferWith(data []byte) *TMemoryBuffer {
	return &TMemoryBuffer{buf: data}
}

// Read consumes buffered bytes.
func (m *TMemoryBuffer) Read(p []byte) (int, error) {
	if m.closed {
		return 0, ErrTransportClosed
	}
	if m.rpos >= len(m.buf) {
		return 0, io.EOF
	}
	n := copy(p, m.buf[m.rpos:])
	m.rpos += n
	return n, nil
}

// Write appends to the buffer.
func (m *TMemoryBuffer) Write(p []byte) (int, error) {
	if m.closed {
		return 0, ErrTransportClosed
	}
	m.buf = append(m.buf, p...)
	return len(p), nil
}

// Flush is a no-op for memory buffers.
func (m *TMemoryBuffer) Flush() error { return nil }

// Close marks the buffer closed.
func (m *TMemoryBuffer) Close() error { m.closed = true; return nil }

// Bytes returns the unread portion of the buffer.
func (m *TMemoryBuffer) Bytes() []byte { return m.buf[m.rpos:] }

// Len returns the number of unread bytes.
func (m *TMemoryBuffer) Len() int { return len(m.buf) - m.rpos }

// Reset discards all contents.
func (m *TMemoryBuffer) Reset() { m.buf = m.buf[:0]; m.rpos = 0 }

// ---------------------------------------------------------------------------

// TFramedTransport wraps a transport with 4-byte length-prefixed frames:
// each Flush emits one frame, each read refills from one frame. Vanilla
// Thrift uses this with the non-blocking server; HatRPC's IPoIB baseline
// uses it over the simulated kernel socket.
type TFramedTransport struct {
	inner TTransport
	wbuf  []byte
	rbuf  []byte
	rpos  int
	hdr   [4]byte // persistent frame-header scratch: a stack array would
	// escape through the TTransport interface and cost one
	// allocation per frame
}

// NewTFramedTransport wraps inner in frame encoding.
func NewTFramedTransport(inner TTransport) *TFramedTransport {
	return &TFramedTransport{inner: inner}
}

// Write accumulates into the current output frame.
func (t *TFramedTransport) Write(p []byte) (int, error) {
	t.wbuf = append(t.wbuf, p...)
	return len(p), nil
}

// Flush emits the accumulated frame with its length prefix.
func (t *TFramedTransport) Flush() error {
	binary.BigEndian.PutUint32(t.hdr[:], uint32(len(t.wbuf)))
	if _, err := t.inner.Write(t.hdr[:]); err != nil {
		return err
	}
	if _, err := t.inner.Write(t.wbuf); err != nil {
		return err
	}
	t.wbuf = t.wbuf[:0]
	return t.inner.Flush()
}

func (t *TFramedTransport) refill() error {
	if _, err := io.ReadFull(readerOf(t.inner), t.hdr[:]); err != nil {
		return err
	}
	n := binary.BigEndian.Uint32(t.hdr[:])
	if n > 1<<30 {
		return fmt.Errorf("thrift: frame too large: %d", n)
	}
	// Reuse the frame buffer grow-once: a steady stream of same-shaped
	// frames reads with zero per-frame allocations instead of one make
	// per frame. The first fill (or a growth step) draws from the arena
	// so a Reset can recycle it.
	if cap(t.rbuf) < int(n) {
		PutBuffer(t.rbuf)
		t.rbuf = GetBuffer(int(n))
	} else {
		t.rbuf = t.rbuf[:n]
	}
	t.rpos = 0
	_, err := io.ReadFull(readerOf(t.inner), t.rbuf)
	return err
}

// Reset drops any buffered frame state and returns the transport's
// buffers to the arena. Use it when parking a transport (connection
// close, pool return); the transport remains usable and will re-acquire
// buffers on demand.
func (t *TFramedTransport) Reset() {
	PutBuffer(t.rbuf)
	PutBuffer(t.wbuf)
	t.rbuf, t.wbuf, t.rpos = nil, nil, 0
}

// Read consumes from the current input frame, refilling as needed.
func (t *TFramedTransport) Read(p []byte) (int, error) {
	if t.rpos >= len(t.rbuf) {
		if err := t.refill(); err != nil {
			return 0, err
		}
	}
	n := copy(p, t.rbuf[t.rpos:])
	t.rpos += n
	return n, nil
}

// Close closes the inner transport.
func (t *TFramedTransport) Close() error { return t.inner.Close() }

// readerOf adapts a TTransport to io.Reader (it already is one; this
// keeps io.ReadFull usage explicit).
func readerOf(t TTransport) io.Reader { return t }

// ---------------------------------------------------------------------------

// TBufferedTransport batches small writes and reads through fixed-size
// buffers over the inner transport.
type TBufferedTransport struct {
	inner TTransport
	wbuf  []byte
	wcap  int
	rbuf  []byte
	rpos  int
	rcap  int
}

// NewTBufferedTransport wraps inner with bufSize buffers.
func NewTBufferedTransport(inner TTransport, bufSize int) *TBufferedTransport {
	if bufSize <= 0 {
		bufSize = 4096
	}
	return &TBufferedTransport{inner: inner, wcap: bufSize, rcap: bufSize}
}

// Write buffers p, spilling to the inner transport when full.
func (t *TBufferedTransport) Write(p []byte) (int, error) {
	t.wbuf = append(t.wbuf, p...)
	if len(t.wbuf) >= t.wcap {
		if _, err := t.inner.Write(t.wbuf); err != nil {
			return 0, err
		}
		t.wbuf = t.wbuf[:0]
	}
	return len(p), nil
}

// Flush drains the write buffer and flushes the inner transport.
func (t *TBufferedTransport) Flush() error {
	if len(t.wbuf) > 0 {
		if _, err := t.inner.Write(t.wbuf); err != nil {
			return err
		}
		t.wbuf = t.wbuf[:0]
	}
	return t.inner.Flush()
}

// Read serves from the read buffer, refilling in bulk. The buffer is
// allocated once (from the arena) and refilled in place — the previous
// per-refill make was one allocation per rcap bytes of stream.
func (t *TBufferedTransport) Read(p []byte) (int, error) {
	if t.rpos >= len(t.rbuf) {
		if cap(t.rbuf) < t.rcap {
			t.rbuf = GetBuffer(t.rcap)
		}
		buf := t.rbuf[:t.rcap]
		n, err := t.inner.Read(buf)
		if n == 0 {
			t.rbuf = buf[:0]
			if err == nil {
				err = io.EOF
			}
			return 0, err
		}
		t.rbuf = buf[:n]
		t.rpos = 0
	}
	n := copy(p, t.rbuf[t.rpos:])
	t.rpos += n
	return n, nil
}

// Reset drops buffered state and returns the transport's buffers to the
// arena; the transport remains usable and re-acquires them on demand.
func (t *TBufferedTransport) Reset() {
	PutBuffer(t.rbuf)
	PutBuffer(t.wbuf)
	t.rbuf, t.wbuf, t.rpos = nil, nil, 0
}

// Close closes the inner transport.
func (t *TBufferedTransport) Close() error { return t.inner.Close() }
