// Fixture: arena payload lifecycle around Conn.Recycle / PutBuffer.
// The "reverted guard" cases below mirror real hot-path sites
// (engine.handleRecvSlot, atb.hotpath) with the lifecycle discipline
// deliberately broken.
package hotpath

import (
	"engine"
	"thrift"
)

func recv(c *engine.Conn) []byte { return nil }
func sink(b []byte)              {}

// readAfterRecycle reads a payload after handing it back.
func readAfterRecycle(c *engine.Conn, b []byte) byte {
	c.Recycle(b)
	return b[0] // want `b used after being released to the arena`
}

// recycleTwice double-releases the same payload.
func recycleTwice(c *engine.Conn, b []byte) {
	c.Recycle(b)
	c.Recycle(b) // want `b released to the arena again`
}

type holder struct{ buf []byte }

// aliasIntoField stores the slice into a field after release.
func aliasIntoField(c *engine.Conn, h *holder, b []byte) {
	c.Recycle(b)
	h.buf = b // want `b used after being released to the arena`
}

// branchRelease releases on one path and uses at the merge: a
// may-violation.
func branchRelease(c *engine.Conn, b []byte, ok bool) {
	if ok {
		c.Recycle(b)
	}
	sink(b) // want `b used after being released to the arena`
}

// loopClean rebinds the payload every iteration: use-then-release per
// iteration is the correct hot-path shape. No diagnostic.
func loopClean(c *engine.Conn, n int) {
	for i := 0; i < n; i++ {
		resp := recv(c)
		sink(resp)
		c.Recycle(resp)
	}
}

// loopCarried releases on iteration k and touches on k+1 via the back
// edge — the reverted-guard version of loopClean.
func loopCarried(c *engine.Conn, n int) {
	b := recv(c)
	for i := 0; i < n; i++ {
		sink(b)      // want `b used after being released to the arena`
		c.Recycle(b) // want `b released to the arena again`
	}
}

// rangeClean: the range value is rebound each iteration. No diagnostic.
func rangeClean(c *engine.Conn, frags [][]byte) {
	for _, frag := range frags {
		sink(frag)
		c.Recycle(frag)
	}
}

// deferClean: the deferred release runs after every ordinary use. No
// diagnostic.
func deferClean(c *engine.Conn, b []byte) byte {
	defer c.Recycle(b)
	sink(b)
	return b[0]
}

// deferDouble: an explicit release makes the deferred one — which runs
// at function exit, hence last — the double release. The diagnostic
// anchors on the deferred call.
func deferDouble(c *engine.Conn, b []byte) {
	defer c.Recycle(b) // want `b released to the arena again`
	sink(b)
	c.Recycle(b)
}

// rebindClean: the variable is rebound to a fresh payload after the
// release, clearing the taint. No diagnostic.
func rebindClean(c *engine.Conn, b []byte) byte {
	c.Recycle(b)
	b = recv(c)
	return b[0]
}

// putBufferUse: the thrift arena release is tracked the same way.
func putBufferUse(b []byte) {
	thrift.PutBuffer(b)
	sink(b) // want `b used after being released to the arena`
}

// putBufferClean releases last. No diagnostic.
func putBufferClean(n int) {
	b := thrift.GetBuffer(n)
	sink(b)
	thrift.PutBuffer(b)
}
