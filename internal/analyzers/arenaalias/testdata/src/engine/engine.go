// Fixture stub of the engine arena surface.
package engine

// Conn owns an arena of payload buffers.
type Conn struct{}

// Recycle returns a payload to the arena; the caller must not touch it
// afterwards.
func (c *Conn) Recycle(b []byte) {}

// Alloc hands out a fresh payload.
func (c *Conn) Alloc(n int) []byte { return make([]byte, n) }
