// Fixture stub of the thrift buffer arena.
package thrift

// GetBuffer borrows a buffer from the arena.
func GetBuffer(n int) []byte { return make([]byte, n) }

// PutBuffer returns a buffer to the arena.
func PutBuffer(b []byte) {}
