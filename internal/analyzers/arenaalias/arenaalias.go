// Package arenaalias machine-checks the arena payload lifecycle from
// DESIGN.md §9/§13: a slice handed back to the arena — via
// engine.Conn.Recycle or thrift.PutBuffer — is re-owned by the pool the
// moment the call returns, so reading it, writing it, storing it into a
// field, or recycling it a second time on ANY path after the release is
// a data race against the next borrower (the documented offset-subslice
// caveat from the PR 6 hot path, previously enforced only by comments).
//
// The check is intraprocedural and flow-sensitive: it runs the
// framework's must-not-follow query (TrackReleases) over the function's
// CFG, so a release inside one branch taints only the paths that pass
// through it, a `b := next()` rebinding clears the taint, range/for
// back edges are followed, and `defer Recycle(b)` is modeled at
// function exit (after every ordinary use). Only identifier arguments
// are tracked; releases of subexpressions are out of scope here and
// stay covered by the runtime arena guards.
package arenaalias

import (
	"go/ast"
	"go/types"

	"hatrpc/internal/analyzers/framework"
	"hatrpc/internal/analyzers/internal/lintutil"
)

// Analyzer is the arenaalias check.
var Analyzer = &framework.Analyzer{
	Name: "arenaalias",
	Doc: "flag any use of a payload slice on a path after it was released to the " +
		"arena (Conn.Recycle / thrift.PutBuffer), including double releases",
	Run: run,
}

func run(pass *framework.Pass) (any, error) {
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
				checkFunc(pass, fd)
			}
		}
	}
	return nil, nil
}

// releaseArg returns the released object and its argument identifier if
// call is Conn.Recycle(b) or thrift.PutBuffer(b) with an ident arg.
func releaseArg(pass *framework.Pass, call *ast.CallExpr) (types.Object, *ast.Ident) {
	fn := lintutil.CalleeFunc(pass.TypesInfo, call)
	if fn == nil || len(call.Args) != 1 {
		return nil, nil
	}
	switch {
	case fn.Name() == "Recycle" && lintutil.RecvPkgIs(fn, "engine"):
	case fn.Name() == "PutBuffer" && fn.Pkg() != nil && lintutil.IsPkg(fn.Pkg(), "thrift"):
	default:
		return nil, nil
	}
	id, ok := ast.Unparen(call.Args[0]).(*ast.Ident)
	if !ok {
		return nil, nil
	}
	obj := pass.TypesInfo.Uses[id]
	if _, isVar := obj.(*types.Var); !isVar {
		return nil, nil
	}
	return obj, id
}

func checkFunc(pass *framework.Pass, fd *ast.FuncDecl) {
	// Cheap pre-scan: functions that never release skip CFG work.
	releases := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			if obj, _ := releaseArg(pass, call); obj != nil {
				releases = true
			}
		}
		return !releases
	})
	if !releases {
		return
	}
	cfg := framework.BuildCFG(fd.Body)
	classify := func(n ast.Node) []framework.ObjEvent {
		var evs []framework.ObjEvent
		// walkUses visits a release call before its argument (pre-order),
		// so the argument ident can be attributed to the release instead
		// of double-counting as an immediate use-after-release.
		skip := map[ast.Node]bool{}
		framework.FlattenEvents(n, func(m ast.Node, isDef bool) {
			if isDef {
				if id, ok := m.(*ast.Ident); ok {
					obj := pass.TypesInfo.Defs[id]
					if obj == nil {
						obj = pass.TypesInfo.Uses[id]
					}
					if obj != nil {
						evs = append(evs, framework.ObjEvent{Obj: obj, Event: framework.EvDef, Node: m})
					}
				}
				return
			}
			if call, ok := m.(*ast.CallExpr); ok {
				if obj, arg := releaseArg(pass, call); obj != nil {
					evs = append(evs, framework.ObjEvent{Obj: obj, Event: framework.EvRelease, Node: call})
					skip[arg] = true
					return
				}
			}
			if id, ok := m.(*ast.Ident); ok && !skip[id] {
				if obj, isVar := pass.TypesInfo.Uses[id].(*types.Var); isVar && obj != nil {
					evs = append(evs, framework.ObjEvent{Obj: obj, Event: framework.EvUse, Node: id})
				}
			}
		})
		return evs
	}
	for _, v := range cfg.TrackReleases(classify) {
		relLine := pass.Fset.Position(v.Release.Pos()).Line
		if _, isCall := v.Use.(*ast.CallExpr); isCall {
			pass.Reportf(v.Use.Pos(),
				"%s released to the arena again after the release on line %d: "+
					"a double Recycle/PutBuffer hands the same payload to two borrowers",
				v.Obj.Name(), relLine)
			continue
		}
		pass.Reportf(v.Use.Pos(),
			"%s used after being released to the arena on line %d: "+
				"the pool re-owns the payload at the release, so this read/write/alias "+
				"races the next borrower",
			v.Obj.Name(), relLine)
	}
}
