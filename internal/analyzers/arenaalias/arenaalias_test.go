package arenaalias_test

import (
	"testing"

	"hatrpc/internal/analyzers/arenaalias"
	"hatrpc/internal/analyzers/framework/analysistest"
)

func TestArenaAlias(t *testing.T) {
	analysistest.Run(t, "testdata", arenaalias.Analyzer, "hotpath")
}
