// Package maporder flags iteration over Go maps whose loop body has
// order-dependent effects — exactly the bug class PR 3 fixed in
// sim.CPU, where simultaneous processor-sharing completions were
// scheduled in map-iteration order and event sequence numbers (and so
// the whole downstream simulation) depended on runtime map layout.
//
// In DES-scheduled packages, a `for … range m` over a map is reported
// when the body (or a same-package function it calls, one level deep):
//
//   - posts or schedules simulation events (any non-pure sim-package
//     call: Env.At/After/Spawn, Signal.Fire/Broadcast, Queue.Push,
//     Proc.Sleep/Yield, CPU.Compute, …),
//   - draws from a *rand.Rand (the draw-to-key assignment becomes
//     layout-dependent),
//   - appends to a slice that outlives the loop without the slice being
//     sorted immediately after the loop,
//   - mutates package-level state or emits trace events (obs.Tracer
//     records in insertion order).
//
// A loop whose escaping effects are provably order-insensitive can be
// annotated with a //hatlint:sorted comment on (or directly above) the
// `for` line; prefer the collect-then-sort shape, which the analyzer
// recognizes on its own.
package maporder

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"hatrpc/internal/analyzers/framework"
	"hatrpc/internal/analyzers/internal/lintutil"
)

// Analyzer is the maporder check.
var Analyzer = &framework.Analyzer{
	Name: "maporder",
	Doc: "flag range-over-map loops with order-dependent effects (event scheduling, " +
		"RNG draws, escaping appends, shared-state mutation) in DES-scheduled packages",
	Run: run,
}

// pureSimFuncs are sim-package calls with no scheduling effect: reads
// of the clock and of queue/lock state.
var pureSimFuncs = map[string]bool{
	"Now": true, "Len": true, "Waiting": true, "Stopped": true, "Rand": true,
	"Name": true, "Env": true, "Cores": true, "Runnable": true,
	"LoadFactor": true, "NewSignal": true, "NewQueue": true, "NewMutex": true,
}

type checker struct {
	pass   *framework.Pass
	declOf map[*types.Func]*ast.FuncDecl
	sorted map[string]map[int]bool // filename → lines carrying //hatlint:sorted
}

func run(pass *framework.Pass) (any, error) {
	if !lintutil.IsDESPackage(pass.Pkg.Path()) {
		return nil, nil
	}
	c := &checker{
		pass:   pass,
		declOf: map[*types.Func]*ast.FuncDecl{},
		sorted: map[string]map[int]bool{},
	}
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
				if fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func); ok {
					c.declOf[fn] = fd
				}
			}
		}
		for _, cg := range f.Comments {
			for _, cm := range cg.List {
				if strings.TrimSpace(cm.Text) == "//hatlint:sorted" {
					pos := pass.Fset.Position(cm.Pos())
					if c.sorted[pos.Filename] == nil {
						c.sorted[pos.Filename] = map[int]bool{}
					}
					c.sorted[pos.Filename][pos.Line] = true
				}
			}
		}
	}
	for _, f := range pass.Files {
		parents := map[ast.Node]ast.Node{}
		var stack []ast.Node
		ast.Inspect(f, func(n ast.Node) bool {
			if n == nil {
				stack = stack[:len(stack)-1]
				return true
			}
			if len(stack) > 0 {
				parents[n] = stack[len(stack)-1]
			}
			stack = append(stack, n)
			return true
		})
		ast.Inspect(f, func(n ast.Node) bool {
			if rng, ok := n.(*ast.RangeStmt); ok {
				c.checkRange(parents, rng)
			}
			return true
		})
	}
	return nil, nil
}

// stmtList returns the statement list a node directly holds, if any.
func stmtList(n ast.Node) []ast.Stmt {
	switch b := n.(type) {
	case *ast.BlockStmt:
		return b.List
	case *ast.CaseClause:
		return b.Body
	case *ast.CommClause:
		return b.Body
	}
	return nil
}

func (c *checker) checkRange(parents map[ast.Node]ast.Node, rng *ast.RangeStmt) {
	tv, ok := c.pass.TypesInfo.Types[rng.X]
	if !ok || tv.Type == nil {
		return
	}
	if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
		return
	}
	pos := c.pass.Fset.Position(rng.For)
	if lines := c.sorted[pos.Filename]; lines[pos.Line] || lines[pos.Line-1] {
		return
	}

	var reasons []string
	seen := map[string]bool{}
	add := func(r string) {
		if !seen[r] {
			seen[r] = true
			reasons = append(reasons, r)
		}
	}

	ast.Inspect(rng.Body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.CallExpr:
			c.classifyCall(st, true, add)
		case *ast.AssignStmt:
			if obj := c.escapingAppend(st, rng); obj != nil && !sortedAfter(c.pass, parents, rng, obj) {
				add(fmt.Sprintf("appends to %q which outlives the loop unsorted", obj.Name()))
			}
			if st.Tok != token.DEFINE {
				for _, lhs := range st.Lhs {
					if v := c.pkgLevelVar(lhs); v != nil {
						add(fmt.Sprintf("mutates package-level %q", v.Name()))
					}
				}
			}
		case *ast.IncDecStmt:
			if v := c.pkgLevelVar(st.X); v != nil {
				add(fmt.Sprintf("mutates package-level %q", v.Name()))
			}
		}
		return true
	})

	if len(reasons) > 0 {
		c.pass.Reportf(rng.For,
			"map iteration order is random but the loop body %s: iterate a sorted snapshot "+
				"(or sort the collected results and annotate //hatlint:sorted)",
			strings.Join(reasons, "; "))
	}
}

// pkgLevelVar returns the package-level *types.Var expr refers to, if
// it is a bare identifier naming one.
func (c *checker) pkgLevelVar(expr ast.Expr) *types.Var {
	id, ok := ast.Unparen(expr).(*ast.Ident)
	if !ok {
		return nil
	}
	obj := c.pass.TypesInfo.Uses[id]
	v, ok := obj.(*types.Var)
	if !ok || v.Pkg() != c.pass.Pkg {
		return nil
	}
	if c.pass.Pkg.Scope().Lookup(v.Name()) != v {
		return nil
	}
	return v
}

// classifyCall records order-dependent effects of one call. When
// transitive is true and the callee is a same-package function, its
// body is scanned one level deep for direct sim effects.
func (c *checker) classifyCall(call *ast.CallExpr, transitive bool, add func(string)) {
	fn := lintutil.CalleeFunc(c.pass.TypesInfo, call)
	if fn == nil {
		return
	}
	switch {
	case lintutil.IsPkg(fn.Pkg(), "sim") && !pureSimFuncs[fn.Name()] && !strings.HasPrefix(fn.Name(), "Try"):
		add(fmt.Sprintf("schedules simulation events (sim %s.%s)", recvName(fn), fn.Name()))
	case fn.Pkg() != nil && (fn.Pkg().Path() == "math/rand" || fn.Pkg().Path() == "math/rand/v2"):
		if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
			add("draws from a *rand.Rand, making draw order layout-dependent")
		}
	case lintutil.RecvPkgIs(fn, "obs") && recvName(fn) == "Tracer":
		add("emits trace events (recorded in insertion order)")
	case transitive && fn.Pkg() == c.pass.Pkg:
		if fd := c.declOf[fn]; fd != nil {
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if inner, ok := n.(*ast.CallExpr); ok {
					c.classifyCall(inner, false, func(r string) {
						add(fmt.Sprintf("calls %s which %s", fn.Name(), r))
					})
				}
				return true
			})
		}
	}
}

func recvName(fn *types.Func) string {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return fn.Pkg().Name()
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if n, ok := t.(*types.Named); ok {
		return n.Obj().Name()
	}
	return t.String()
}

// escapingAppend matches `x = append(x, …)` where x is declared outside
// the range statement, returning x's object.
func (c *checker) escapingAppend(st *ast.AssignStmt, rng *ast.RangeStmt) types.Object {
	if len(st.Lhs) != 1 || len(st.Rhs) != 1 {
		return nil
	}
	call, ok := ast.Unparen(st.Rhs[0]).(*ast.CallExpr)
	if !ok {
		return nil
	}
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); !ok || id.Name != "append" {
		return nil
	} else if _, isBuiltin := c.pass.TypesInfo.Uses[id].(*types.Builtin); !isBuiltin {
		return nil
	}
	lhs, ok := ast.Unparen(st.Lhs[0]).(*ast.Ident)
	if !ok {
		return nil
	}
	obj := c.pass.TypesInfo.Uses[lhs]
	if obj == nil {
		obj = c.pass.TypesInfo.Defs[lhs]
	}
	if obj == nil || obj.Pos() == token.NoPos {
		return nil
	}
	if obj.Pos() >= rng.Pos() && obj.Pos() <= rng.End() {
		return nil // loop-local accumulator
	}
	return obj
}

// sortedAfter reports whether a statement following the range loop — in
// its own block or any enclosing block up to the function boundary —
// sorts obj: sort.X(obj, …), slices.X(obj, …), or either wrapped one
// call deep (sort.Sort(byID(obj))). Climbing enclosing blocks accepts
// the nested collect-then-sort shape (inner loop fills a slice, the
// sort sits after the outer loop).
func sortedAfter(pass *framework.Pass, parents map[ast.Node]ast.Node, rng *ast.RangeStmt, obj types.Object) bool {
	var node ast.Node = rng
	for {
		par := parents[node]
		if par == nil {
			return false
		}
		if _, ok := par.(*ast.FuncDecl); ok {
			return false
		}
		if _, ok := par.(*ast.FuncLit); ok {
			return false
		}
		if list := stmtList(par); list != nil {
			idx := -1
			for i, st := range list {
				if ast.Node(st) == node {
					idx = i
					break
				}
			}
			if idx >= 0 && sortCallIn(pass, list[idx+1:], obj) {
				return true
			}
		}
		node = par
	}
}

// sortCallIn scans stmts for a sort call on obj.
func sortCallIn(pass *framework.Pass, stmts []ast.Stmt, obj types.Object) bool {
	for _, st := range stmts {
		found := false
		ast.Inspect(st, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if ok && isSortCall(pass, call) && len(call.Args) > 0 && mentionsObj(pass, call.Args[0], obj) {
				found = true
			}
			return !found
		})
		if found {
			return true
		}
	}
	return false
}

func isSortCall(pass *framework.Pass, call *ast.CallExpr) bool {
	fn := lintutil.CalleeFunc(pass.TypesInfo, call)
	return fn != nil && fn.Pkg() != nil &&
		(fn.Pkg().Path() == "sort" || fn.Pkg().Path() == "slices")
}

// mentionsObj reports whether expr is obj or a call/conversion whose
// first argument is obj.
func mentionsObj(pass *framework.Pass, expr ast.Expr, obj types.Object) bool {
	switch e := ast.Unparen(expr).(type) {
	case *ast.Ident:
		return pass.TypesInfo.Uses[e] == obj
	case *ast.CallExpr:
		return len(e.Args) > 0 && mentionsObj(pass, e.Args[0], obj)
	}
	return false
}
