package maporder_test

import (
	"testing"

	"hatrpc/internal/analyzers/framework/analysistest"
	"hatrpc/internal/analyzers/maporder"
)

func TestMaporder(t *testing.T) {
	analysistest.Run(t, "testdata", maporder.Analyzer, "engine", "other")
}
