// Fixture: outside the DES set — map iteration with escaping appends is
// not this analyzer's business.
package other

func keys(m map[string]int) []string {
	var ks []string
	for k := range m {
		ks = append(ks, k)
	}
	return ks
}
