// Fixture: a stub of the sim kernel's scheduling surface.
package sim

// Time is virtual time.
type Time int64

// Proc is a simulation process.
type Proc struct{}

// Sleep parks the process.
func (p *Proc) Sleep(d int64) {}

// Env is the scheduler.
type Env struct{ now Time }

// Now is pure.
func (e *Env) Now() Time { return e.now }

// At schedules a callback.
func (e *Env) At(t Time, fn func()) {}

// Spawn starts a process.
func (e *Env) Spawn(name string, fn func(*Proc)) *Proc { return nil }

// Signal is a wait queue.
type Signal struct{}

// Fire wakes one waiter.
func (s *Signal) Fire() {}

// Queue is a FIFO.
type Queue struct{}

// Push appends and wakes.
func (q *Queue) Push(v int) {}

// Len is pure.
func (q *Queue) Len() int { return 0 }
