// Fixture: DES-scheduled code iterating maps. The positive cases
// reproduce the PR 3 sim.CPU bug: simultaneous completions scheduled in
// map-iteration order, so event sequence numbers depend on runtime map
// layout.
package engine

import (
	"math/rand"
	"sort"

	"sim"
)

type task struct{ id uint64 }

type cpu struct {
	env   *sim.Env
	tasks map[*task]struct{}
}

// advanceBuggy is the exact shape PR 3 fixed: completion events posted
// while ranging over the task map.
func (c *cpu) advanceBuggy() {
	for t := range c.tasks { // want `schedules simulation events \(sim Env.At\)`
		delete(c.tasks, t)
		c.env.At(c.env.Now(), func() { _ = t })
	}
}

// advanceFixed is the PR 3 fix: collect completions out of the map,
// sort by admission order, then schedule. No diagnostic.
func (c *cpu) advanceFixed() {
	var done []*task
	for t := range c.tasks {
		delete(c.tasks, t)
		done = append(done, t)
	}
	sort.Slice(done, func(i, j int) bool { return done[i].id < done[j].id })
	for _, t := range done {
		c.env.At(c.env.Now(), func() { _ = t })
	}
}

// post schedules; callers iterating maps inherit the effect one level
// deep.
func (c *cpu) post(t *task) {
	c.env.At(0, nil)
}

func (c *cpu) transitive() {
	for t := range c.tasks { // want `calls post which schedules simulation events`
		c.post(t)
	}
}

func fireAndPush(m map[int]*sim.Signal, q *sim.Queue) {
	for k, s := range m { // want `schedules simulation events \(sim Signal.Fire\)`
		s.Fire()
		q.Push(k)
	}
}

// escape appends map-ordered entries to a slice read by the caller.
func escape(m map[string]int) []string {
	var keys []string
	for k := range m { // want `appends to "keys" which outlives the loop unsorted`
		keys = append(keys, k)
	}
	return keys
}

// escapeSorted is the sanctioned shape: sorted immediately after.
func escapeSorted(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// escapeNestedSorted collects through a nested loop and sorts after the
// outer loop — the Q3-merge shape. No diagnostic.
func escapeNestedSorted(ms []map[string]int) []string {
	var keys []string
	for _, m := range ms {
		for k := range m {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	return keys
}

// annotated is order-insensitive by construction and carries the
// suppression marker.
func annotated(m map[string]int) map[string]bool {
	set := map[string]bool{}
	var tmp []string
	//hatlint:sorted
	for k := range m {
		tmp = append(tmp, k)
		set[k] = true
	}
	_ = tmp
	return set
}

var total int

func countShared(m map[string]int) {
	for _, v := range m { // want `mutates package-level "total"`
		total += v
	}
}

func draw(m map[string]int, rng *rand.Rand) {
	for range m { // want `draws from a \*rand.Rand`
		_ = rng.Intn(4)
	}
}

// localOnly has no escaping effects. No diagnostic.
func localOnly(m map[string]int) int {
	sum := 0
	for _, v := range m {
		sum += v
	}
	return sum
}

// sliceLoop ranges a slice, not a map. No diagnostic.
func sliceLoop(s []*sim.Signal) {
	for _, sig := range s {
		sig.Fire()
	}
}
