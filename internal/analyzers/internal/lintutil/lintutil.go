// Package lintutil holds the small shared vocabulary of the hatlint
// analyzers: which packages are DES-scheduled, how to recognize the
// sim/verbs/obs packages from either their real module paths or the
// bare-tail paths used by analysistest fixtures, and how to resolve a
// call expression to its callee.
package lintutil

import (
	"go/ast"
	"go/types"
	"strings"
)

// desPackages are the package-path tails whose code runs under the DES
// scheduler (ISSUE 4): everything that executes inside sim processes or
// builds deterministic inputs for them.
var desPackages = map[string]bool{
	"sim": true, "simnet": true, "verbs": true, "engine": true,
	"ipoib": true, "trdma": true, "lmdb": true, "hatkv": true,
	"atb": true, "tpch": true, "ycsb": true, "chaos": true,
	"cluster": true, "node": true,
}

// PkgTail returns the last segment of an import path.
func PkgTail(path string) string {
	if i := strings.LastIndexByte(path, '/'); i >= 0 {
		return path[i+1:]
	}
	return path
}

// IsDESPackage reports whether the import path names a DES-scheduled
// package (by tail, so both "hatrpc/internal/sim" and a testdata "sim"
// match).
func IsDESPackage(path string) bool { return desPackages[PkgTail(path)] }

// IsPkg reports whether pkg's import path has the given tail.
func IsPkg(pkg *types.Package, tail string) bool {
	return pkg != nil && PkgTail(pkg.Path()) == tail
}

// CalleeFunc resolves a call expression to the *types.Func it invokes
// (package function or method), or nil for calls through function
// values, conversions and builtins.
func CalleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	var obj types.Object
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		obj = info.Uses[fun]
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			obj = sel.Obj()
		} else {
			obj = info.Uses[fun.Sel] // package-qualified call
		}
	}
	fn, _ := obj.(*types.Func)
	return fn
}

// RecvPkgIs reports whether fn is a method whose receiver's type is
// declared in a package with the given path tail.
func RecvPkgIs(fn *types.Func, tail string) bool {
	if fn == nil {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	return IsPkg(fn.Pkg(), tail)
}
