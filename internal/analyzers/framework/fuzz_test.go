package framework

import (
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

// FuzzParseAllow fuzzes the //hatlint:allow comment parser. Two layers:
// structural invariants on ParseAllow's output for arbitrary input, and
// a differential check that parseSuppressions — which consumes real
// *ast.Comment text — agrees with ParseAllow when the input survives a
// round-trip through the Go parser. The checked-in corpus lives in
// testdata/fuzz/FuzzParseAllow; CI's fuzz-smoke job replays it plus a
// short randomized burst.
func FuzzParseAllow(f *testing.F) {
	for _, s := range []string{
		"//hatlint:allow simdet -- bench reports wall-clock by design",
		"//hatlint:allow maporder,obsnames -- two checks, one line",
		"//hatlint:allow wrsigned",
		"//hatlint:allow epochfence --",
		"//hatlint:allow ,,",
		"//hatlint:allowsimdet -- missing space",
		"// hatlint:allow simdet -- leading space breaks the marker",
		"//hatlint:sorted",
		"//hatlint:allow simdet --  \t  ",
		"//hatlint:allow a_b_0 -- unders and digits",
		"/*hatlint:allow simdet -- block comments are not markers*/",
		"//hatlint:allow simdet -- trailing \x00 byte",
	} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, s string) {
		names, justified, ok := ParseAllow(s)

		// Determinism: same input, same answer.
		names2, justified2, ok2 := ParseAllow(s)
		if ok != ok2 || justified != justified2 || len(names) != len(names2) {
			t.Fatalf("ParseAllow not deterministic on %q", s)
		}

		if !ok {
			if names != nil || justified {
				t.Fatalf("ParseAllow(%q): !ok must zero the other results", s)
			}
			return
		}
		if len(names) == 0 {
			t.Fatalf("ParseAllow(%q): ok with no names", s)
		}
		for _, n := range names {
			if strings.ContainsAny(n, ", \t") || strings.ToLower(n) != n {
				t.Fatalf("ParseAllow(%q): malformed name %q", s, n)
			}
		}
		if justified && !strings.Contains(s, "--") {
			t.Fatalf("ParseAllow(%q): justified without a -- separator", s)
		}

		// Differential check: embed the comment in a source file and
		// make sure the runner-side parser extracts the same marker.
		// Only single-line inputs that the Go lexer keeps as one line
		// comment round-trip this way.
		trimmed := strings.TrimSpace(s)
		if strings.ContainsAny(s, "\n\r\x00") || !strings.HasPrefix(trimmed, "//") {
			return
		}
		fset := token.NewFileSet()
		file, err := parser.ParseFile(fset, "f.go", "package p\n"+trimmed+"\nvar x int\n", parser.ParseComments)
		if err != nil {
			return
		}
		list := parseSuppressions(fset, file).byLine[2]
		if len(list) != 1 {
			t.Fatalf("parseSuppressions missed marker %q", trimmed)
		}
		sup := list[0]
		if sup.justified != justified {
			t.Fatalf("justified mismatch for %q: comment parser %v, suppression parser %v",
				trimmed, justified, sup.justified)
		}
		for _, n := range names {
			if !sup.analyzers[n] {
				t.Fatalf("parseSuppressions dropped name %q from %q", n, trimmed)
			}
		}
	})
}
