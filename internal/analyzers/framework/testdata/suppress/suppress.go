// Fixture for the suppression-comment semantics test. The test runs a
// fake analyzer ("testcheck") that reports every function declaration.
package suppress

func reported() {}

//hatlint:allow testcheck -- suppressed with a written reason
func suppressedAbove() {}

func suppressedEOL() {} //hatlint:allow testcheck -- end-of-line placement

//hatlint:allow testcheck
func unjustified() {}

//hatlint:allow testcheck -- this analyzer never fires here
var stale = 1

//hatlint:allow othercheck -- no analyzer by this name is registered
var typo = 2
