package framework_test

import (
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"strings"
	"testing"

	"hatrpc/internal/analyzers/framework"
)

// buildFunc type-checks src (a complete file without imports), builds
// the CFG of the named function and returns it with the types info.
func buildFunc(t *testing.T, src, name string) (*framework.CFG, *types.Info, *ast.FuncDecl) {
	t.Helper()
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "t.go", src, 0)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	info := &types.Info{
		Defs:  map[*ast.Ident]types.Object{},
		Uses:  map[*ast.Ident]types.Object{},
		Types: map[ast.Expr]types.TypeAndValue{},
	}
	conf := types.Config{}
	if _, err := conf.Check("t", fset, []*ast.File{file}, info); err != nil {
		t.Fatalf("typecheck: %v", err)
	}
	for _, d := range file.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok && fd.Name.Name == name {
			return framework.BuildCFG(fd.Body), info, fd
		}
	}
	t.Fatalf("function %s not found", name)
	return nil, nil, nil
}

// findNode returns the first node under root satisfying pred, in
// source order.
func findNode(t *testing.T, root ast.Node, pred func(ast.Node) bool) ast.Node {
	t.Helper()
	var out ast.Node
	ast.Inspect(root, func(n ast.Node) bool {
		if out != nil || n == nil {
			return false
		}
		if pred(n) {
			out = n
			return false
		}
		return true
	})
	if out == nil {
		t.Fatalf("node not found")
	}
	return out
}

// isLenCheck matches a comparison whose left operand is len(<ident>).
func isLenCheck(n ast.Node) bool {
	be, ok := n.(*ast.BinaryExpr)
	if !ok {
		return false
	}
	call, ok := be.X.(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := call.Fun.(*ast.Ident)
	return ok && id.Name == "len"
}

// indexByLit finds the IndexExpr whose index literal equals lit.
func indexByLit(t *testing.T, root ast.Node, lit string) ast.Node {
	t.Helper()
	return findNode(t, root, func(n ast.Node) bool {
		ix, ok := n.(*ast.IndexExpr)
		if !ok {
			return false
		}
		bl, ok := ix.Index.(*ast.BasicLit)
		return ok && bl.Value == lit
	})
}

func TestShortCircuitGuardDominates(t *testing.T) {
	src := `package t
func guarded(b []byte) byte {
	if len(b) < 13 || b[0] != 5 {
		return 0
	}
	return b[12]
}`
	cfg, _, fd := buildFunc(t, src, "guarded")
	// b[12] runs only when the whole condition is false, so the len
	// check dominates it.
	if !cfg.MustPrecede(indexByLit(t, fd.Body, "12").Pos(), isLenCheck) {
		t.Errorf("len check should dominate b[12] after short-circuit guard")
	}
	// b[0] in the || right operand evaluates only when len(b) < 13 is
	// false — the len check dominates it too.
	if !cfg.MustPrecede(indexByLit(t, fd.Body, "0").Pos(), isLenCheck) {
		t.Errorf("len check should dominate b[0] in the || right operand")
	}
}

func TestShortCircuitWrongOrderDoesNotDominate(t *testing.T) {
	src := `package t
func unguarded(b []byte) byte {
	if b[0] == 5 && len(b) >= 13 {
		return b[12]
	}
	return 0
}`
	cfg, _, fd := buildFunc(t, src, "unguarded")
	// b[0] evaluates BEFORE the len check: not dominated.
	if cfg.MustPrecede(indexByLit(t, fd.Body, "0").Pos(), isLenCheck) {
		t.Errorf("b[0] evaluates before the len check; must not count as guarded")
	}
	// b[12] in the then-branch is reached only when both operands held,
	// so it IS dominated by the len check.
	if !cfg.MustPrecede(indexByLit(t, fd.Body, "12").Pos(), isLenCheck) {
		t.Errorf("b[12] inside the then-branch should be dominated by the len check")
	}
}

func TestBranchGuardDoesNotDominateMerge(t *testing.T) {
	src := `package t
func merge(b []byte, ok bool) byte {
	if ok {
		if len(b) < 1 {
			return 0
		}
	}
	return b[0]
}`
	cfg, _, fd := buildFunc(t, src, "merge")
	// The len check sits on only one path to b[0].
	if cfg.MustPrecede(indexByLit(t, fd.Body, "0").Pos(), isLenCheck) {
		t.Errorf("guard on one branch must not dominate the merge point")
	}
}

// bufClassifier builds a TrackReleases classifier for the test corpus:
// put(x) releases x, get() results are tracked by type []byte, every
// other mention of a tracked object is a use. The ident argument inside
// a release call is attributed to the release, not double-counted as a
// use (walkUses visits the call before its children, so the skip set is
// populated in time).
func bufClassifier(info *types.Info) func(ast.Node) []framework.ObjEvent {
	tracked := func(obj types.Object) bool {
		return obj != nil && obj.Type() != nil && obj.Type().String() == "[]byte"
	}
	return func(n ast.Node) []framework.ObjEvent {
		var evs []framework.ObjEvent
		skip := map[ast.Node]bool{}
		framework.FlattenEvents(n, func(m ast.Node, isDef bool) {
			if isDef {
				if id, ok := m.(*ast.Ident); ok {
					obj := info.Defs[id]
					if obj == nil {
						obj = info.Uses[id]
					}
					if tracked(obj) {
						evs = append(evs, framework.ObjEvent{Obj: obj, Event: framework.EvDef, Node: m})
					}
				}
				return
			}
			if call, ok := m.(*ast.CallExpr); ok {
				if fn, ok := call.Fun.(*ast.Ident); ok && fn.Name == "put" && len(call.Args) == 1 {
					if arg, ok := call.Args[0].(*ast.Ident); ok {
						if obj := info.Uses[arg]; tracked(obj) {
							evs = append(evs, framework.ObjEvent{Obj: obj, Event: framework.EvRelease, Node: call})
							skip[arg] = true
							return
						}
					}
				}
			}
			if id, ok := m.(*ast.Ident); ok && !skip[id] {
				if obj := info.Uses[id]; tracked(obj) {
					evs = append(evs, framework.ObjEvent{Obj: obj, Event: framework.EvUse, Node: id})
				}
			}
		})
		return evs
	}
}

const trackPrelude = `package t
func get() []byte    { return nil }
func use(b []byte)   {}
func put(b []byte)   {}
`

func TestTrackReleasesLoopRedefinitionClean(t *testing.T) {
	src := trackPrelude + `
func f(n int) {
	for i := 0; i < n; i++ {
		buf := get()
		use(buf)
		put(buf)
	}
}`
	cfg, info, _ := buildFunc(t, src, "f")
	if v := cfg.TrackReleases(bufClassifier(info)); len(v) != 0 {
		t.Errorf("per-iteration := must kill the release taint on the back edge, got %d violations", len(v))
	}
}

func TestTrackReleasesLoopCarriedUse(t *testing.T) {
	src := trackPrelude + `
func f(n int) {
	buf := get()
	for i := 0; i < n; i++ {
		use(buf)
		put(buf)
	}
}`
	cfg, info, _ := buildFunc(t, src, "f")
	v := cfg.TrackReleases(bufClassifier(info))
	if len(v) == 0 {
		t.Fatalf("use of buf on iteration 2 follows the release on iteration 1; want a violation")
	}
}

func TestTrackReleasesRangeRebindClean(t *testing.T) {
	src := trackPrelude + `
func f(l [][]byte) {
	for _, frag := range l {
		use(frag)
		put(frag)
	}
}`
	cfg, info, _ := buildFunc(t, src, "f")
	if v := cfg.TrackReleases(bufClassifier(info)); len(v) != 0 {
		t.Errorf("range rebinding must kill the release taint on the back edge, got %d violations", len(v))
	}
}

func TestTrackReleasesBranchMerge(t *testing.T) {
	src := trackPrelude + `
func f(ok bool) {
	buf := get()
	if ok {
		put(buf)
	}
	use(buf)
}`
	cfg, info, _ := buildFunc(t, src, "f")
	v := cfg.TrackReleases(bufClassifier(info))
	if len(v) != 1 {
		t.Fatalf("use after a release on ONE incoming path is a may-violation; got %d", len(v))
	}
}

func TestTrackReleasesDoubleRelease(t *testing.T) {
	src := trackPrelude + `
func f() {
	buf := get()
	put(buf)
	put(buf)
}`
	cfg, info, _ := buildFunc(t, src, "f")
	v := cfg.TrackReleases(bufClassifier(info))
	if len(v) != 1 {
		t.Fatalf("double release must report exactly once, got %d", len(v))
	}
}

func TestTrackReleasesDeferRunsAtExit(t *testing.T) {
	// defer put(buf) releases at function exit: every ordinary use
	// precedes it, so this is clean...
	src := trackPrelude + `
func f() {
	buf := get()
	defer put(buf)
	use(buf)
	use(buf)
}`
	cfg, info, _ := buildFunc(t, src, "f")
	if v := cfg.TrackReleases(bufClassifier(info)); len(v) != 0 {
		t.Errorf("defer release runs after every use; got %d violations", len(v))
	}
	// ...while an explicit put before the deferred one is a double
	// release observed in the exit block.
	src2 := trackPrelude + `
func f() {
	buf := get()
	defer put(buf)
	use(buf)
	put(buf)
}`
	cfg2, info2, _ := buildFunc(t, src2, "f")
	if v := cfg2.TrackReleases(bufClassifier(info2)); len(v) != 1 {
		t.Errorf("explicit put + deferred put is a double release; got %d violations", len(v))
	}
}

func TestMustPrecedeEarlyReturnGuard(t *testing.T) {
	// The rbuf/decodeStale shape: an early-return guard dominates the
	// whole remainder of the function.
	src := `package t
func f(b []byte) byte {
	if len(b) < 4 {
		return 0
	}
	x := b[0]
	for i := 0; i < 3; i++ {
		x += b[3]
	}
	return x
}`
	cfg, _, fd := buildFunc(t, src, "f")
	if !cfg.MustPrecede(indexByLit(t, fd.Body, "3").Pos(), isLenCheck) {
		t.Errorf("early-return len guard should dominate accesses inside the loop body")
	}
}

func TestMustPrecedeSwitchClause(t *testing.T) {
	src := `package t
func f(b []byte, k int) byte {
	switch k {
	case 1:
		if len(b) < 2 {
			return 0
		}
		return b[1]
	case 2:
		return b[7]
	}
	return 0
}`
	cfg, _, fd := buildFunc(t, src, "f")
	if !cfg.MustPrecede(indexByLit(t, fd.Body, "1").Pos(), isLenCheck) {
		t.Errorf("guard inside case 1 should dominate the access in the same clause")
	}
	if cfg.MustPrecede(indexByLit(t, fd.Body, "7").Pos(), isLenCheck) {
		t.Errorf("guard in case 1 must not cover the access in case 2")
	}
}

func TestMustPrecedeSwitchSequentialTests(t *testing.T) {
	// Expression switches evaluate case expressions in order: an early
	// `case len(b) < 1:` clause guards every later clause's test and
	// body (the cluster status-switch shape).
	src := `package t
func f(b []byte) byte {
	switch {
	case len(b) < 1:
		return 0
	case b[0] == 7:
		return b[0]
	default:
		return 1
	}
}`
	cfg, _, fd := buildFunc(t, src, "f")
	if !cfg.MustPrecede(indexByLit(t, fd.Body, "0").Pos(), isLenCheck) {
		t.Errorf("the len case test should dominate later case tests")
	}
}

func TestCFGShape(t *testing.T) {
	// Sanity: single entry, single exit, loop has a back edge.
	src := `package t
func f(n int) int {
	s := 0
	for i := 0; i < n; i++ {
		s += i
	}
	return s
}`
	cfg, _, _ := buildFunc(t, src, "f")
	if cfg.Entry == nil || cfg.Exit == nil {
		t.Fatalf("entry/exit missing")
	}
	if len(cfg.Exit.Succs) != 0 {
		t.Errorf("exit block must have no successors")
	}
	back := false
	order := map[*framework.Block]int{}
	for i, b := range cfg.Blocks {
		order[b] = i
	}
	for _, b := range cfg.Blocks {
		for _, s := range b.Succs {
			if order[s] < order[b] {
				back = true
			}
		}
	}
	if !back {
		t.Errorf("for loop should produce at least one back edge")
	}
}

func TestFlattenEventsAssignOrder(t *testing.T) {
	// b = grow(b): the RHS use must be emitted before the LHS def, so
	// a tracked object read feeds the old binding.
	src := `package t
func grow(b []byte) []byte { return b }
func f(b []byte) []byte {
	b = grow(b)
	return b
}`
	_, _, fd := buildFunc(t, src, "f")
	asg := findNode(t, fd.Body, func(n ast.Node) bool {
		_, ok := n.(*ast.AssignStmt)
		return ok
	})
	var got []string
	framework.FlattenEvents(asg, func(n ast.Node, isDef bool) {
		if id, ok := n.(*ast.Ident); ok && id.Name == "b" {
			if isDef {
				got = append(got, "def")
			} else {
				got = append(got, "use")
			}
		}
	})
	if strings.Join(got, ",") != "use,def" {
		t.Errorf("assignment flattening order = %v, want [use def]", got)
	}
}
