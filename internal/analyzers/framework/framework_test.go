package framework_test

import (
	"go/ast"
	"strings"
	"testing"

	"hatrpc/internal/analyzers/framework"
)

// testcheck reports every function declaration, giving the suppression
// machinery something deterministic to filter.
var testcheck = &framework.Analyzer{
	Name: "testcheck",
	Doc:  "report every function declaration (test analyzer)",
	Run: func(pass *framework.Pass) (any, error) {
		for _, f := range pass.Files {
			for _, d := range f.Decls {
				if fd, ok := d.(*ast.FuncDecl); ok {
					pass.Reportf(fd.Pos(), "function %s", fd.Name.Name)
				}
			}
		}
		return nil, nil
	},
}

func TestSuppressionSemantics(t *testing.T) {
	ld, err := framework.NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := ld.Load("internal/analyzers/framework/testdata/suppress")
	if err != nil {
		t.Fatal(err)
	}
	diags := framework.Run(pkgs, []*framework.Analyzer{testcheck})

	var got []string
	for _, d := range diags {
		got = append(got, "["+d.Analyzer+"] "+d.Message)
	}
	want := []string{
		// reported() has no suppression.
		"[testcheck] function reported",
		// unjustified()'s allow matches but lacks "-- reason".
		"[suppression] //hatlint:allow testcheck needs a justification (\"-- <reason>\")",
		// stale's allow names a registered analyzer but suppressed nothing.
		"[suppression] unused //hatlint:allow testcheck",
		// typo's allow names an analyzer that is not registered at all.
		"[suppression] //hatlint:allow names unregistered analyzer othercheck (see cmd/hatlint -list)",
	}
	for _, w := range want {
		found := false
		for _, g := range got {
			if g == w {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("missing diagnostic %q in %v", w, got)
		}
	}
	// suppressedAbove and suppressedEOL must NOT surface.
	for _, g := range got {
		if strings.Contains(g, "suppressedAbove") || strings.Contains(g, "suppressedEOL") {
			t.Errorf("justified suppression did not filter: %s", g)
		}
	}
	if len(got) != len(want) {
		t.Errorf("got %d diagnostics, want %d: %v", len(got), len(want), got)
	}
}
