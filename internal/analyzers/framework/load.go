package framework

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, type-checked package.
type Package struct {
	PkgPath   string
	Dir       string
	Fset      *token.FileSet
	Files     []*ast.File
	Types     *types.Package
	TypesInfo *types.Info
}

// Loader loads and type-checks packages of a single module from source.
// Standard-library imports are resolved by the stdlib "source" compiler
// importer (GOROOT source); module-internal imports are resolved to
// their directories directly, so loading needs neither a module proxy
// nor prebuilt export data.
type Loader struct {
	ModulePath string
	ModuleRoot string
	Fset       *token.FileSet

	std  types.Importer
	pkgs map[string]*Package // by import path; nil while in progress
}

// NewLoader locates the enclosing module starting at dir.
func NewLoader(dir string) (*Loader, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	root := abs
	for {
		if _, err := os.Stat(filepath.Join(root, "go.mod")); err == nil {
			break
		}
		parent := filepath.Dir(root)
		if parent == root {
			return nil, fmt.Errorf("hatlint: no go.mod found above %s", abs)
		}
		root = parent
	}
	data, err := os.ReadFile(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}
	modPath := ""
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			modPath = strings.TrimSpace(rest)
			break
		}
	}
	if modPath == "" {
		return nil, fmt.Errorf("hatlint: no module line in %s/go.mod", root)
	}
	fset := token.NewFileSet()
	return &Loader{
		ModulePath: modPath,
		ModuleRoot: root,
		Fset:       fset,
		std:        importer.ForCompiler(fset, "source", nil),
		pkgs:       map[string]*Package{},
	}, nil
}

// Load expands the given patterns ("./...", "./internal/engine", an
// import path, …) and returns the matched packages, type-checked, in
// deterministic (sorted import path) order.
func (l *Loader) Load(patterns ...string) ([]*Package, error) {
	dirs := map[string]bool{}
	for _, pat := range patterns {
		switch {
		case pat == "./..." || pat == "...":
			if err := l.walk(l.ModuleRoot, dirs); err != nil {
				return nil, err
			}
		case strings.HasSuffix(pat, "/..."):
			base := strings.TrimSuffix(pat, "/...")
			if err := l.walk(l.dirFor(base), dirs); err != nil {
				return nil, err
			}
		default:
			dirs[l.dirFor(pat)] = true
		}
	}
	var out []*Package
	for _, dir := range sortedDirs(dirs) {
		if !hasGoFiles(dir) {
			continue
		}
		pkg, err := l.loadDir(dir)
		if err != nil {
			return nil, err
		}
		out = append(out, pkg)
	}
	return out, nil
}

// dirFor maps a pattern (relative path or module-rooted import path) to
// a directory.
func (l *Loader) dirFor(pat string) string {
	if strings.HasPrefix(pat, l.ModulePath) {
		return filepath.Join(l.ModuleRoot, strings.TrimPrefix(strings.TrimPrefix(pat, l.ModulePath), "/"))
	}
	if filepath.IsAbs(pat) {
		return pat
	}
	return filepath.Join(l.ModuleRoot, pat)
}

// walk collects every package directory under root, skipping testdata,
// hidden and underscore-prefixed directories.
func (l *Loader) walk(root string, dirs map[string]bool) error {
	return filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != root && (name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		if hasGoFiles(path) {
			dirs[path] = true
		}
		return nil
	})
}

func hasGoFiles(dir string) bool {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range ents {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") && !strings.HasSuffix(e.Name(), "_test.go") {
			return true
		}
	}
	return false
}

func sortedDirs(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for d := range m {
		out = append(out, d)
	}
	sort.Strings(out)
	return out
}

// pathFor maps a module directory back to its import path.
func (l *Loader) pathFor(dir string) (string, error) {
	rel, err := filepath.Rel(l.ModuleRoot, dir)
	if err != nil {
		return "", err
	}
	if rel == "." {
		return l.ModulePath, nil
	}
	if strings.HasPrefix(rel, "..") {
		return "", fmt.Errorf("hatlint: %s is outside module %s", dir, l.ModuleRoot)
	}
	return l.ModulePath + "/" + filepath.ToSlash(rel), nil
}

// loadDir parses and type-checks the package in dir (memoized).
func (l *Loader) loadDir(dir string) (*Package, error) {
	pkgPath, err := l.pathFor(dir)
	if err != nil {
		return nil, err
	}
	if pkg, ok := l.pkgs[pkgPath]; ok {
		if pkg == nil {
			return nil, fmt.Errorf("hatlint: import cycle through %s", pkgPath)
		}
		return pkg, nil
	}
	l.pkgs[pkgPath] = nil // cycle guard

	bp, err := build.ImportDir(dir, 0)
	if err != nil {
		return nil, fmt.Errorf("hatlint: %s: %w", dir, err)
	}
	var files []*ast.File
	for _, name := range bp.GoFiles {
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	conf := types.Config{Importer: importerFunc(func(path string) (*types.Package, error) {
		return l.importPath(path)
	})}
	tpkg, err := conf.Check(pkgPath, l.Fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("hatlint: type-checking %s: %w", pkgPath, err)
	}
	pkg := &Package{
		PkgPath:   pkgPath,
		Dir:       dir,
		Fset:      l.Fset,
		Files:     files,
		Types:     tpkg,
		TypesInfo: info,
	}
	l.pkgs[pkgPath] = pkg
	return pkg, nil
}

// importPath resolves one import: module-internal paths recurse into
// loadDir, everything else goes to the GOROOT source importer.
func (l *Loader) importPath(path string) (*types.Package, error) {
	if path == l.ModulePath || strings.HasPrefix(path, l.ModulePath+"/") {
		pkg, err := l.loadDir(l.dirFor(path))
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return l.std.Import(path)
}

type importerFunc func(string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }
