// Package analysistest runs a framework.Analyzer over GOPATH-style
// testdata packages and checks its diagnostics against // want
// annotations, mirroring golang.org/x/tools/go/analysis/analysistest.
//
// Layout: <testdata>/src/<pkgpath>/*.go. Imports between testdata
// packages resolve within the testdata tree (so fixtures can stub the
// sim/verbs/obs APIs under their real tail names); all other imports
// resolve from GOROOT source.
//
// A want annotation is a trailing comment of the form
//
//	x := foo() // want `regexp` `another regexp`
//
// Each backquoted (or double-quoted) pattern must be matched, in any
// order, by exactly one diagnostic reported on that line; diagnostics
// on lines with no matching pattern are test failures, as are unmatched
// patterns.
package analysistest

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"hatrpc/internal/analyzers/framework"
)

var wantRe = regexp.MustCompile("`([^`]*)`|\"((?:[^\"\\\\]|\\\\.)*)\"")

type want struct {
	file    string
	line    int
	re      *regexp.Regexp
	matched bool
}

// Run loads each testdata package, applies the analyzer and verifies
// the reported diagnostics against // want annotations.
func Run(t *testing.T, testdata string, a *framework.Analyzer, pkgpaths ...string) {
	t.Helper()
	ld := &testLoader{
		src:  filepath.Join(testdata, "src"),
		fset: token.NewFileSet(),
		pkgs: map[string]*loaded{},
	}
	ld.std = importer.ForCompiler(ld.fset, "source", nil)
	for _, pkgpath := range pkgpaths {
		pkg, err := ld.load(pkgpath)
		if err != nil {
			t.Fatalf("loading %s: %v", pkgpath, err)
		}
		wants, err := collectWants(ld.fset, pkg.files)
		if err != nil {
			t.Fatalf("parsing wants in %s: %v", pkgpath, err)
		}
		var diags []framework.Diagnostic
		pass := &framework.Pass{
			Analyzer:  a,
			Fset:      ld.fset,
			Files:     pkg.files,
			Pkg:       pkg.types,
			TypesInfo: pkg.info,
			Report:    func(d framework.Diagnostic) { diags = append(diags, d) },
		}
		if _, err := a.Run(pass); err != nil {
			t.Fatalf("%s: analyzer failed: %v", pkgpath, err)
		}
		for _, d := range diags {
			pos := ld.fset.Position(d.Pos)
			if !claim(wants, pos.Filename, pos.Line, d.Message) {
				t.Errorf("%s:%d: unexpected diagnostic: %s", pos.Filename, pos.Line, d.Message)
			}
		}
		for _, w := range wants {
			if !w.matched {
				t.Errorf("%s:%d: expected diagnostic matching %q, got none", w.file, w.line, w.re)
			}
		}
	}
}

// claim marks the first unmatched want on (file, line) whose pattern
// matches msg.
func claim(wants []*want, file string, line int, msg string) bool {
	for _, w := range wants {
		if !w.matched && w.file == file && w.line == line && w.re.MatchString(msg) {
			w.matched = true
			return true
		}
	}
	return false
}

func collectWants(fset *token.FileSet, files []*ast.File) ([]*want, error) {
	var wants []*want
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
				rest, ok := strings.CutPrefix(text, "want ")
				if !ok {
					continue
				}
				pos := fset.Position(c.Pos())
				ms := wantRe.FindAllStringSubmatch(rest, -1)
				if len(ms) == 0 {
					return nil, fmt.Errorf("%s:%d: malformed want comment", pos.Filename, pos.Line)
				}
				for _, m := range ms {
					pat := m[1]
					if pat == "" {
						pat = m[2]
					}
					re, err := regexp.Compile(pat)
					if err != nil {
						return nil, fmt.Errorf("%s:%d: bad want pattern: %v", pos.Filename, pos.Line, err)
					}
					wants = append(wants, &want{file: pos.Filename, line: pos.Line, re: re})
				}
			}
		}
	}
	return wants, nil
}

// ---------------------------------------------------------------------------
// testdata loader

type loaded struct {
	files []*ast.File
	types *types.Package
	info  *types.Info
}

type testLoader struct {
	src  string
	fset *token.FileSet
	std  types.Importer
	pkgs map[string]*loaded
}

func (l *testLoader) load(pkgpath string) (*loaded, error) {
	if p, ok := l.pkgs[pkgpath]; ok {
		if p == nil {
			return nil, fmt.Errorf("import cycle through %s", pkgpath)
		}
		return p, nil
	}
	dir := filepath.Join(l.src, filepath.FromSlash(pkgpath))
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	l.pkgs[pkgpath] = nil
	var files []*ast.File
	for _, e := range ents {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("no Go files in %s", dir)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	conf := types.Config{Importer: importerFunc(func(path string) (*types.Package, error) {
		if _, err := os.Stat(filepath.Join(l.src, filepath.FromSlash(path))); err == nil {
			p, err := l.load(path)
			if err != nil {
				return nil, err
			}
			return p.types, nil
		}
		return l.std.Import(path)
	})}
	tpkg, err := conf.Check(pkgpath, l.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("type-checking %s: %w", pkgpath, err)
	}
	p := &loaded{files: files, types: tpkg, info: info}
	l.pkgs[pkgpath] = p
	return p, nil
}

type importerFunc func(string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }
