// Dataflow queries over a function CFG (DESIGN.md §16). Two query
// families cover the four flow-sensitive analyzers:
//
//   - must-follow (MustPrecede): "every path to this node passes
//     through a node satisfying pred first" — dominator-based, used by
//     epochfence (a fence comparison must dominate the epoch write) and
//     wirebounds (a length check must dominate the buffer access).
//
//   - must-not-follow (TrackReleases): "after a release event, no use
//     of the released object is reachable without an intervening
//     re-definition" — a forward may-analysis, used by arenaalias.
//
// Both are intraprocedural and operate on the node granularity BuildCFG
// records (statements, decision expressions, synthetic range headers).
package framework

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// ---------------------------------------------------------------------------
// Dominators

// dominators computes the immediate-dominator array with the classic
// iterative algorithm (Cooper/Harvey/Kennedy) over a reverse-postorder
// numbering. Unreachable blocks get idom -1.
func (c *CFG) dominators() []int {
	if c.idom != nil {
		return c.idom
	}
	n := len(c.Blocks)
	rpo := make([]*Block, 0, n)
	seen := make([]bool, n)
	var dfs func(b *Block)
	dfs = func(b *Block) {
		seen[b.Index] = true
		for _, s := range b.Succs {
			if !seen[s.Index] {
				dfs(s)
			}
		}
		rpo = append(rpo, b)
	}
	dfs(c.Entry)
	// rpo currently holds postorder; reverse it.
	for i, j := 0, len(rpo)-1; i < j; i, j = i+1, j-1 {
		rpo[i], rpo[j] = rpo[j], rpo[i]
	}
	order := make([]int, n) // block index → RPO position
	for i := range order {
		order[i] = -1
	}
	for pos, b := range rpo {
		order[b.Index] = pos
	}
	idom := make([]int, n)
	for i := range idom {
		idom[i] = -1
	}
	idom[c.Entry.Index] = c.Entry.Index
	intersect := func(a, b int) int {
		for a != b {
			for order[a] > order[b] {
				a = idom[a]
			}
			for order[b] > order[a] {
				b = idom[b]
			}
		}
		return a
	}
	for changed := true; changed; {
		changed = false
		for _, b := range rpo {
			if b == c.Entry {
				continue
			}
			newIdom := -1
			for _, p := range b.Preds {
				if idom[p.Index] == -1 {
					continue // unreachable or not yet processed
				}
				if newIdom == -1 {
					newIdom = p.Index
				} else {
					newIdom = intersect(newIdom, p.Index)
				}
			}
			if newIdom != -1 && idom[b.Index] != newIdom {
				idom[b.Index] = newIdom
				changed = true
			}
		}
	}
	c.idom = idom
	return idom
}

// dominates reports whether block a dominates block b (reflexive).
func (c *CFG) dominates(a, b int) bool {
	idom := c.dominators()
	if idom[b] == -1 {
		return false // b unreachable: vacuously guarded, callers skip it
	}
	for {
		if b == a {
			return true
		}
		next := idom[b]
		if next == b || next == -1 {
			return false
		}
		b = next
	}
}

// blockOf locates the recorded node whose source range encloses pos,
// returning its block index and position within the block. The smallest
// enclosing recorded node wins, so a sub-expression maps to the exact
// decision block that evaluates it. Returns (-1, -1) when pos is not
// covered (e.g. inside a function literal, which has its own CFG).
func (c *CFG) blockOf(pos token.Pos) (blk, idx int) {
	blk, idx = -1, -1
	best := token.Pos(-1)
	var bestEnd token.Pos
	for _, b := range c.Blocks {
		for i, n := range b.Nodes {
			if n.Pos() <= pos && pos < n.End() {
				if best == token.Pos(-1) || (n.End()-n.Pos() < bestEnd-best) {
					best, bestEnd = n.Pos(), n.End()
					blk, idx = b.Index, i
				}
			}
		}
	}
	return blk, idx
}

// MustPrecede reports whether every path from the function entry to the
// node at pos passes through a node satisfying pred before reaching it.
// Within the node's own block, only strictly earlier nodes count.
// Returns true for positions the CFG does not cover (nothing to check).
func (c *CFG) MustPrecede(pos token.Pos, pred func(ast.Node) bool) bool {
	blk, idx := c.blockOf(pos)
	if blk == -1 {
		return true
	}
	// Earlier in the same block?
	for i := 0; i < idx; i++ {
		if pred(c.Blocks[blk].Nodes[i]) {
			return true
		}
	}
	// Any node of any strictly dominating block?
	for _, b := range c.Blocks {
		if b.Index == blk || !c.dominates(b.Index, blk) {
			continue
		}
		for _, n := range b.Nodes {
			if pred(n) {
				return true
			}
		}
	}
	return false
}

// ---------------------------------------------------------------------------
// Must-not-follow: release tracking (forward may-analysis)

// ReleaseEvent classifies one flattened node for TrackReleases.
type ReleaseEvent int

const (
	// EvNone: the node neither releases, redefines nor uses a tracked
	// object.
	EvNone ReleaseEvent = iota
	// EvRelease: the node releases the object; any later use on any
	// path (without an intervening EvDef) is a violation.
	EvRelease
	// EvDef: the node rebinds the object; the release taint is cleared.
	EvDef
	// EvUse: the node reads/writes/aliases the object.
	EvUse
)

// Violation is one use of an object reachable after its release.
type Violation struct {
	Obj     types.Object
	Use     ast.Node // the offending use
	Release ast.Node // the release it follows
}

// releaseSite pairs an object with where it was released.
type releaseSite struct {
	obj     types.Object
	release ast.Node
}

// TrackReleases runs the must-not-follow query: classify is invoked on
// every flattened node in approximate evaluation order (assignment
// right-hand sides before left-hand sides, deferred calls at function
// exit) and returns the events the node triggers. A use reachable from
// a release of the same object, with no redefinition in between on that
// path, is reported. Violations are returned in source order, deduped
// per (object, use).
func (c *CFG) TrackReleases(classify func(ast.Node) []ObjEvent) []Violation {
	// Flatten each block's nodes into event lists once.
	events := make([][]ObjEvent, len(c.Blocks))
	for _, b := range c.Blocks {
		for _, n := range b.Nodes {
			events[b.Index] = append(events[b.Index], classify(n)...)
		}
	}
	// Forward may-analysis: in/out = set of live release sites.
	in := make([]map[releaseSite]bool, len(c.Blocks))
	seen := map[useKey]bool{}
	var out []Violation
	work := []*Block{c.Entry}
	if in[c.Entry.Index] == nil {
		in[c.Entry.Index] = map[releaseSite]bool{}
	}
	for len(work) > 0 {
		b := work[0]
		work = work[1:]
		state := map[releaseSite]bool{}
		for s := range in[b.Index] {
			state[s] = true
		}
		for _, ev := range events[b.Index] {
			switch ev.Event {
			case EvUse:
				for s := range state {
					if s.obj == ev.Obj {
						key := useKey{ev.Obj, ev.Node.Pos()}
						if !seen[key] {
							seen[key] = true
							out = append(out, Violation{Obj: ev.Obj, Use: ev.Node, Release: s.release})
						}
					}
				}
			case EvDef:
				for s := range state {
					if s.obj == ev.Obj {
						delete(state, s)
					}
				}
			case EvRelease:
				// A re-release of an already-released buffer is itself a
				// use-after-release (double recycle), then taints anew.
				for s := range state {
					if s.obj == ev.Obj {
						key := useKey{ev.Obj, ev.Node.Pos()}
						if !seen[key] {
							seen[key] = true
							out = append(out, Violation{Obj: ev.Obj, Use: ev.Node, Release: s.release})
						}
					}
				}
				state[releaseSite{obj: ev.Obj, release: ev.Node}] = true
			}
		}
		for _, s := range b.Succs {
			first := in[s.Index] == nil
			if first {
				in[s.Index] = map[releaseSite]bool{}
			}
			grew := false
			for site := range state {
				if !in[s.Index][site] {
					in[s.Index][site] = true
					grew = true
				}
			}
			if grew || first {
				work = append(work, s)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Use.Pos() < out[j].Use.Pos() })
	return out
}

// ObjEvent is one (object, event) pair a classifier attributes to a
// flattened node.
type ObjEvent struct {
	Obj   types.Object
	Event ReleaseEvent
	Node  ast.Node
}

type useKey struct {
	obj types.Object
	pos token.Pos
}

// ---------------------------------------------------------------------------
// Flattening helpers shared by the analyzers

// FlattenEvents walks one recorded CFG node and invokes emit on every
// relevant sub-node in approximate evaluation order:
//
//   - assignment RHS before LHS (so `b = f(b)` reads before rebinding);
//   - declaration initializers before the declared names;
//   - range Key/Value rebinding via the synthetic RangeHeader;
//   - function literals are NOT descended into (separate functions).
//
// kind distinguishes reads (EvUse context), definitions (EvDef) and
// plain traversal; emit decides what any node means for its analysis.
func FlattenEvents(n ast.Node, emit func(n ast.Node, isDef bool)) {
	switch n := n.(type) {
	case *RangeHeader:
		if n.Range.Tok == token.DEFINE || n.Range.Tok == token.ASSIGN {
			if id, ok := n.Range.Key.(*ast.Ident); ok && id.Name != "_" {
				emit(id, true)
			}
			if id, ok := n.Range.Value.(*ast.Ident); ok && id.Name != "_" {
				emit(id, true)
			}
		}
	case *ast.AssignStmt:
		for _, rhs := range n.Rhs {
			walkUses(rhs, emit)
		}
		for _, lhs := range n.Lhs {
			if id, ok := lhs.(*ast.Ident); ok {
				if id.Name != "_" {
					emit(id, true)
				}
				continue
			}
			// x.f = …, x[i] = …: the base is used, nothing is rebound.
			walkUses(lhs, emit)
		}
	case *ast.DeclStmt:
		if gd, ok := n.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						walkUses(v, emit)
					}
					for _, name := range vs.Names {
						if name.Name != "_" {
							emit(name, true)
						}
					}
				}
			}
		}
	case *ast.IncDecStmt:
		walkUses(n.X, emit)
		if id, ok := n.X.(*ast.Ident); ok {
			emit(id, true)
		}
	default:
		walkUses(n, emit)
	}
}

// walkUses visits every node below n in pre-order, skipping function
// literal bodies, emitting each as a non-definition.
func walkUses(n ast.Node, emit func(ast.Node, bool)) {
	ast.Inspect(n, func(m ast.Node) bool {
		if m == nil {
			return false
		}
		if _, ok := m.(*ast.FuncLit); ok {
			return false
		}
		emit(m, false)
		return true
	})
}
