// Package framework is a minimal, dependency-free reimplementation of
// the golang.org/x/tools/go/analysis vocabulary (Analyzer, Pass,
// Diagnostic) plus a module-aware package loader built entirely on the
// standard library's go/parser, go/types and go/importer. The container
// that builds this repo has no module proxy access, so the canonical
// x/tools stack is unavailable; the subset implemented here is exactly
// what the hatlint suite needs, with API names kept compatible so the
// analyzers port to the upstream framework mechanically if it ever
// becomes vendorable.
//
// Suppressions: a diagnostic is suppressed by an end-of-line or
// preceding-line comment of the form
//
//	//hatlint:allow <analyzer> -- <justification>
//
// The justification is mandatory: an allow comment without a non-empty
// "-- reason" suffix is itself reported as a diagnostic, so silencing a
// finding always leaves a written trace of why. Analyzer-specific
// markers (e.g. maporder's //hatlint:sorted) follow the same shape and
// are handled by their analyzer.
package framework

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strings"
)

// Analyzer describes one static check. The field set mirrors
// x/tools/go/analysis.Analyzer.
type Analyzer struct {
	Name string // short lower-case identifier, used in //hatlint:allow
	Doc  string // one-paragraph description of what it reports
	Run  func(*Pass) (any, error)
}

// Pass carries one analyzed package to an Analyzer's Run function.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	// Report delivers one diagnostic. The loader wires it to collect
	// into the run's diagnostic list (after suppression filtering).
	Report func(Diagnostic)
}

// Diagnostic is one finding at a source position.
type Diagnostic struct {
	Pos      token.Pos
	Message  string
	Analyzer string // filled in by the runner
}

// Reportf formats and reports a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// ---------------------------------------------------------------------------
// Suppression comments

var allowRe = regexp.MustCompile(`^//hatlint:allow\s+([a-z0-9_,]+)\s*(--\s*(.*))?$`)

// suppression is one parsed //hatlint:allow comment.
type suppression struct {
	line      int
	analyzers map[string]bool
	justified bool
	pos       token.Pos
}

// suppressions indexes a file's allow comments by the line they govern:
// the comment's own line, so both end-of-line and full-line (preceding)
// placement suppress the line the comment sits on or the line after.
type suppressions struct {
	byLine map[int][]*suppression
}

// ParseAllow parses one comment's text against the //hatlint:allow
// grammar. ok reports whether the text is an allow marker at all;
// names are the comma-separated analyzer names exactly as written
// (possibly empty segments — the runner rejects those as unregistered);
// justified reports whether a non-empty "-- <reason>" suffix follows.
// Exported so the fuzz harness and external tooling exercise the same
// parser the runner uses.
func ParseAllow(text string) (names []string, justified bool, ok bool) {
	m := allowRe.FindStringSubmatch(strings.TrimSpace(text))
	if m == nil {
		return nil, false, false
	}
	return strings.Split(m[1], ","), strings.TrimSpace(m[3]) != "", true
}

// parseSuppressions scans a file's comments for //hatlint:allow markers.
func parseSuppressions(fset *token.FileSet, f *ast.File) *suppressions {
	s := &suppressions{byLine: map[int][]*suppression{}}
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			names, justified, ok := ParseAllow(c.Text)
			if !ok {
				continue
			}
			sup := &suppression{
				line:      fset.Position(c.Pos()).Line,
				analyzers: map[string]bool{},
				justified: justified,
				pos:       c.Pos(),
			}
			for _, name := range names {
				sup.analyzers[name] = true
			}
			s.byLine[sup.line] = append(s.byLine[sup.line], sup)
		}
	}
	return s
}

// match returns the suppression covering (analyzer, line), if any. A
// comment covers its own line and the immediately following line (the
// full-line-comment-above placement).
func (s *suppressions) match(analyzer string, line int) *suppression {
	for _, l := range []int{line, line - 1} {
		for _, sup := range s.byLine[l] {
			if sup.analyzers[analyzer] {
				return sup
			}
		}
	}
	return nil
}

// ---------------------------------------------------------------------------
// Running analyzers over loaded packages

// Run executes every analyzer over every package and returns the
// surviving diagnostics sorted by position. Unjustified or unused
// suppression markers are themselves reported (as analyzer
// "suppression").
func Run(pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	var out []Diagnostic
	known := map[string]bool{"suppression": true}
	for _, a := range analyzers {
		known[a.Name] = true
	}
	for _, pkg := range pkgs {
		sups := make([]*suppressions, len(pkg.Files))
		for i, f := range pkg.Files {
			sups[i] = parseSuppressions(pkg.Fset, f)
		}
		fileFor := func(pos token.Pos) int {
			for i, f := range pkg.Files {
				if f.FileStart <= pos && pos <= f.FileEnd {
					return i
				}
			}
			return -1
		}
		used := map[*suppression]bool{}
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				TypesInfo: pkg.TypesInfo,
			}
			pass.Report = func(d Diagnostic) {
				d.Analyzer = a.Name
				if i := fileFor(d.Pos); i >= 0 {
					line := pkg.Fset.Position(d.Pos).Line
					if sup := sups[i].match(a.Name, line); sup != nil {
						used[sup] = true
						if !sup.justified {
							out = append(out, Diagnostic{
								Pos:      sup.pos,
								Analyzer: "suppression",
								Message: fmt.Sprintf(
									"//hatlint:allow %s needs a justification (\"-- <reason>\")", a.Name),
							})
						}
						return
					}
				}
				out = append(out, d)
			}
			if _, err := a.Run(pass); err != nil {
				out = append(out, Diagnostic{
					Pos:      pkg.Files[0].Pos(),
					Analyzer: a.Name,
					Message:  fmt.Sprintf("analyzer error: %v", err),
				})
			}
		}
		// An allow comment that suppressed nothing is stale — flag it so
		// suppressions cannot outlive the code they excused. A comment
		// naming an analyzer that is not registered can never suppress
		// anything (typo, or a check since renamed), so it is rejected
		// outright instead of reported as merely unused.
		for _, s := range sups {
			for _, list := range s.byLine {
				for _, sup := range list {
					var unknown []string
					for n := range sup.analyzers {
						if !known[n] {
							unknown = append(unknown, n)
						}
					}
					if len(unknown) > 0 {
						sort.Strings(unknown)
						out = append(out, Diagnostic{
							Pos:      sup.pos,
							Analyzer: "suppression",
							Message: fmt.Sprintf(
								"//hatlint:allow names unregistered analyzer %s (see cmd/hatlint -list)",
								strings.Join(unknown, ",")),
						})
						continue
					}
					if !used[sup] {
						names := make([]string, 0, len(sup.analyzers))
						for n := range sup.analyzers {
							names = append(names, n)
						}
						sort.Strings(names)
						out = append(out, Diagnostic{
							Pos:      sup.pos,
							Analyzer: "suppression",
							Message:  fmt.Sprintf("unused //hatlint:allow %s", strings.Join(names, ",")),
						})
					}
				}
			}
		}
	}
	sortDiagnostics(pkgs, out)
	return out
}

func sortDiagnostics(pkgs []*Package, ds []Diagnostic) {
	if len(pkgs) == 0 {
		return
	}
	fset := pkgs[0].Fset
	sort.SliceStable(ds, func(i, j int) bool {
		pi, pj := fset.Position(ds[i].Pos), fset.Position(ds[j].Pos)
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		if pi.Line != pj.Line {
			return pi.Line < pj.Line
		}
		return ds[i].Analyzer < ds[j].Analyzer
	})
}
