// Control-flow graph construction for the flow-sensitive analyzers
// (DESIGN.md §16). BuildCFG lowers one function body into basic blocks
// of AST nodes in approximate evaluation order, with edges for every
// structured-control construct the repo uses: if/else, for (all three
// clauses and back edge), range, switch/type-switch (fallthrough
// included), select, labeled break/continue, goto, return and panic.
//
// Two deliberate modeling choices matter to the analyzers built on top:
//
//   - Short-circuit operators split blocks: in `if a && b { … }` the
//     evaluation of b gets its own block reachable only when a is true,
//     so a length guard in a's position correctly dominates an access
//     in b's (the decodeStale shape: `len(b) != 13 || b[0] != magic`).
//
//   - defer is modeled at function exit, not at the defer statement:
//     the deferred call expression is appended to a dedicated exit
//     block that every return/panic path feeds. `defer c.Recycle(buf)`
//     therefore releases buf *after* every ordinary use, which is the
//     semantics arenaalias needs.
//
// Function literals are NOT descended into: a FuncLit body is its own
// function and gets its own CFG (callers analyze them separately, or
// skip them conservatively).
package framework

import (
	"go/ast"
	"go/token"
)

// RangeHeader is the synthetic node a range loop's header block holds:
// the per-iteration decision plus the Key/Value rebinding. It carries
// the RangeStmt without its children, so walking a block's nodes never
// visits the loop body out of place.
type RangeHeader struct {
	Range *ast.RangeStmt
}

// Pos and End delegate to the range token so diagnostics anchor sanely.
func (r *RangeHeader) Pos() token.Pos { return r.Range.For }
func (r *RangeHeader) End() token.Pos { return r.Range.X.End() }

// Block is one basic block: a maximal straight-line sequence of AST
// nodes (statements and decision expressions) with a single entry.
type Block struct {
	Index int
	// Nodes holds the block's statements and, for decision blocks, the
	// condition (sub)expression evaluated there, in evaluation order.
	Nodes []ast.Node
	Succs []*Block
	Preds []*Block
}

// CFG is the control-flow graph of one function body.
type CFG struct {
	Blocks []*Block
	Entry  *Block
	// Exit is the function's single synthetic exit block. Deferred call
	// expressions are its nodes, in LIFO (execution) order.
	Exit *Block

	idom []int // immediate dominator per block index, computed lazily
}

// builder carries the construction state.
type builder struct {
	cfg     *CFG
	cur     *Block // nil while the current point is unreachable
	defers  []ast.Node
	returns []*Block // blocks ending in return/panic, linked to exit at the end
	pending string   // label of the LabeledStmt currently being lowered

	// break/continue targets, innermost last.
	breaks    []*loopCtx
	continues []*loopCtx
	labels    map[string]*labelCtx
	gotos     []pendingGoto
}

type loopCtx struct {
	label string
	block *Block // jump target
}

type labelCtx struct {
	start *Block // target of goto
}

type pendingGoto struct {
	from  *Block
	label string
}

// BuildCFG lowers a function body to its CFG. body may be nil (an
// external declaration); the CFG then has only entry and exit.
func BuildCFG(body *ast.BlockStmt) *CFG {
	b := &builder{cfg: &CFG{}, labels: map[string]*labelCtx{}}
	b.cfg.Entry = b.newBlock()
	b.cur = b.cfg.Entry
	if body != nil {
		b.stmtList(body.List)
	}
	b.cfg.Exit = b.newBlock()
	// Fall off the end of the function: edge into exit, as does every
	// return/panic path recorded during lowering.
	b.edgeTo(b.cfg.Exit)
	for _, r := range b.returns {
		link(r, b.cfg.Exit)
	}
	// Resolve forward gotos now that every label has been seen.
	for _, g := range b.gotos {
		if l := b.labels[g.label]; l != nil {
			link(g.from, l.start)
		}
	}
	// Deferred calls run on every exit, LIFO.
	for i := len(b.defers) - 1; i >= 0; i-- {
		b.cfg.Exit.Nodes = append(b.cfg.Exit.Nodes, b.defers[i])
	}
	return b.cfg
}

func (b *builder) newBlock() *Block {
	blk := &Block{Index: len(b.cfg.Blocks)}
	b.cfg.Blocks = append(b.cfg.Blocks, blk)
	return blk
}

func link(from, to *Block) {
	if from == nil || to == nil {
		return
	}
	from.Succs = append(from.Succs, to)
	to.Preds = append(to.Preds, from)
}

// edgeTo links the current block to next (no-op when unreachable).
func (b *builder) edgeTo(next *Block) {
	if b.cur != nil {
		link(b.cur, next)
	}
}

// startBlock begins a fresh reachable block fed by the current one.
func (b *builder) startBlock() *Block {
	next := b.newBlock()
	b.edgeTo(next)
	b.cur = next
	return next
}

// add records a node in the current block (dropped while unreachable).
func (b *builder) add(n ast.Node) {
	if b.cur != nil && n != nil {
		b.cur.Nodes = append(b.cur.Nodes, n)
	}
}

func (b *builder) stmtList(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s)
	}
}

// cond lowers a decision expression, splitting short-circuit operators
// into their own blocks. On return, trueBlk/falseBlk are fresh empty
// blocks reachable exactly when the condition is true/false.
func (b *builder) cond(e ast.Expr) (trueBlk, falseBlk *Block) {
	if be, ok := ast.Unparen(e).(*ast.BinaryExpr); ok && (be.Op == token.LAND || be.Op == token.LOR) {
		lt, lf := b.cond(be.X)
		switch be.Op {
		case token.LAND: // Y evaluated only when X is true
			b.cur = lt
			rt, rf := b.cond(be.Y)
			merge := b.newBlock()
			link(lf, merge)
			link(rf, merge)
			return rt, merge
		default: // LOR: Y evaluated only when X is false
			b.cur = lf
			rt, rf := b.cond(be.Y)
			merge := b.newBlock()
			link(lt, merge)
			link(rt, merge)
			return merge, rf
		}
	}
	b.add(e)
	t, f := b.newBlock(), b.newBlock()
	b.edgeTo(t)
	b.edgeTo(f)
	b.cur = nil
	return t, f
}

func (b *builder) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		b.stmtList(s.List)

	case *ast.IfStmt:
		if s.Init != nil {
			b.stmt(s.Init)
		}
		t, f := b.cond(s.Cond)
		b.cur = t
		b.stmt(s.Body)
		afterThen := b.cur
		var afterElse *Block = f
		if s.Else != nil {
			b.cur = f
			b.stmt(s.Else)
			afterElse = b.cur
		}
		join := b.newBlock()
		link(afterThen, join)
		link(afterElse, join)
		b.cur = join

	case *ast.ForStmt:
		if s.Init != nil {
			b.stmt(s.Init)
		}
		head := b.startBlock()
		var bodyBlk, exitBlk *Block
		if s.Cond != nil {
			bodyBlk, exitBlk = b.cond(s.Cond)
		} else {
			bodyBlk = b.newBlock()
			exitBlk = b.newBlock()
			link(head, bodyBlk)
		}
		lc := &loopCtx{label: b.pendingLabel(s), block: exitBlk}
		cc := &loopCtx{label: lc.label, block: nil} // post target filled below
		post := b.newBlock()
		cc.block = post
		b.breaks = append(b.breaks, lc)
		b.continues = append(b.continues, cc)
		b.cur = bodyBlk
		b.stmt(s.Body)
		b.edgeTo(post)
		b.cur = post
		if s.Post != nil {
			b.stmt(s.Post)
		}
		b.edgeTo(head) // back edge
		b.breaks = b.breaks[:len(b.breaks)-1]
		b.continues = b.continues[:len(b.continues)-1]
		b.cur = exitBlk

	case *ast.RangeStmt:
		b.add(s.X)
		head := b.startBlock()
		// The synthetic header stands in for the per-iteration decision
		// and the Key/Value rebinding; it has no children, so flatteners
		// never see the body twice.
		head.Nodes = append(head.Nodes, &RangeHeader{Range: s})
		bodyBlk := b.newBlock()
		exitBlk := b.newBlock()
		link(head, bodyBlk)
		link(head, exitBlk)
		lc := &loopCtx{label: b.pendingLabel(s), block: exitBlk}
		cc := &loopCtx{label: lc.label, block: head}
		b.breaks = append(b.breaks, lc)
		b.continues = append(b.continues, cc)
		b.cur = bodyBlk
		b.stmt(s.Body)
		b.edgeTo(head) // back edge
		b.breaks = b.breaks[:len(b.breaks)-1]
		b.continues = b.continues[:len(b.continues)-1]
		b.cur = exitBlk

	case *ast.SwitchStmt:
		if s.Init != nil {
			b.stmt(s.Init)
		}
		if s.Tag != nil {
			b.add(s.Tag)
		}
		b.switchBody(s.Body, b.pendingLabel(s))

	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			b.stmt(s.Init)
		}
		b.add(s.Assign)
		b.switchBody(s.Body, b.pendingLabel(s))

	case *ast.SelectStmt:
		b.switchBody(s.Body, b.pendingLabel(s))

	case *ast.LabeledStmt:
		start := b.startBlock()
		b.labels[s.Label.Name] = &labelCtx{start: start}
		b.pending = s.Label.Name
		b.stmt(s.Stmt)
		b.pending = ""

	case *ast.BranchStmt:
		label := ""
		if s.Label != nil {
			label = s.Label.Name
		}
		switch s.Tok {
		case token.BREAK:
			if t := findLoop(b.breaks, label); t != nil {
				b.edgeTo(t.block)
			}
			b.cur = nil
		case token.CONTINUE:
			if t := findLoop(b.continues, label); t != nil {
				b.edgeTo(t.block)
			}
			b.cur = nil
		case token.GOTO:
			if b.cur != nil {
				if l := b.labels[label]; l != nil {
					link(b.cur, l.start) // backward goto
				} else {
					b.gotos = append(b.gotos, pendingGoto{from: b.cur, label: label})
				}
			}
			b.cur = nil
		case token.FALLTHROUGH:
			// handled structurally by switchBody
		}

	case *ast.ReturnStmt:
		b.add(s)
		b.exitEdge()

	case *ast.DeferStmt:
		// Argument expressions evaluate at the defer site; the call runs
		// at exit. Record the whole call in the exit block — for the
		// linters here the distinction that matters is WHEN the call
		// executes, and its arguments are idents either way.
		b.defers = append(b.defers, s.Call)

	case *ast.ExprStmt:
		if isPanic(s.X) {
			b.add(s)
			b.exitEdge()
			return
		}
		b.add(s)

	case *ast.GoStmt:
		b.add(s)

	default:
		// AssignStmt, DeclStmt, IncDecStmt, SendStmt, EmptyStmt, …
		b.add(s)
	}
}

// exitEdge terminates the current path at the (future) exit block. The
// exit block does not exist yet during construction, so returns are
// linked through a recorded edge applied by BuildCFG — implemented here
// by simply linking later: stash the block and clear reachability.
func (b *builder) exitEdge() {
	if b.cur != nil {
		b.returns = append(b.returns, b.cur)
	}
	b.cur = nil
}

// switchBody lowers the clause list shared by switch / type switch /
// select. Every clause is entered from the decision point; fallthrough
// chains a case body into the next one.
func (b *builder) switchBody(body *ast.BlockStmt, label string) {
	from := b.cur
	exitBlk := b.newBlock()
	b.breaks = append(b.breaks, &loopCtx{label: label, block: exitBlk})
	var clauses []*ast.CaseClause
	var comms []*ast.CommClause
	hasDefault := false
	for _, cs := range body.List {
		switch cs := cs.(type) {
		case *ast.CaseClause:
			clauses = append(clauses, cs)
			if cs.List == nil {
				hasDefault = true
			}
		case *ast.CommClause:
			comms = append(comms, cs)
			if cs.Comm == nil {
				hasDefault = true
			}
		}
	}
	// Body blocks per clause in source order, so fallthrough can target
	// clause i+1.
	entries := make([]*Block, 0, len(clauses)+len(comms))
	for range clauses {
		entries = append(entries, b.newBlock())
	}
	for range comms {
		entries = append(entries, b.newBlock())
	}
	if len(clauses) > 0 {
		// Expression/type switches evaluate case expressions sequentially
		// (default last), so chain the tests: each test block holds one
		// clause's expressions, true → that body, false → the next test.
		// An earlier `case len(b) < n:` guard therefore dominates every
		// later clause — the codec status-switch shape.
		cur := from
		defaultIdx := -1
		for i, cs := range clauses {
			if cs.List == nil {
				defaultIdx = i
				continue
			}
			test := b.newBlock()
			link(cur, test)
			for _, e := range cs.List {
				test.Nodes = append(test.Nodes, e)
			}
			link(test, entries[i])
			cur = test
		}
		if defaultIdx >= 0 {
			link(cur, entries[defaultIdx])
		} else {
			link(cur, exitBlk) // no case matches
		}
	} else {
		// select: every ready clause is a direct alternative.
		for _, e := range entries {
			link(from, e)
		}
		if !hasDefault {
			link(from, exitBlk)
		}
	}
	for i, cs := range clauses {
		b.cur = entries[i]
		ft := false
		for j, st := range cs.Body {
			if br, ok := st.(*ast.BranchStmt); ok && br.Tok == token.FALLTHROUGH && j == len(cs.Body)-1 {
				ft = true
				break
			}
			b.stmt(st)
		}
		if ft && i+1 < len(entries) {
			b.edgeTo(entries[i+1])
		} else {
			b.edgeTo(exitBlk)
		}
	}
	for i, cs := range comms {
		b.cur = entries[len(clauses)+i]
		if cs.Comm != nil {
			b.stmt(cs.Comm)
		}
		b.stmtList(cs.Body)
		b.edgeTo(exitBlk)
	}
	b.breaks = b.breaks[:len(b.breaks)-1]
	b.cur = exitBlk
}

func findLoop(stack []*loopCtx, label string) *loopCtx {
	for i := len(stack) - 1; i >= 0; i-- {
		if label == "" || stack[i].label == label {
			return stack[i]
		}
	}
	return nil
}

func isPanic(e ast.Expr) bool {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := call.Fun.(*ast.Ident)
	return ok && id.Name == "panic"
}

// pendingLabel consumes the label recorded by a LabeledStmt wrapping s.
func (b *builder) pendingLabel(ast.Stmt) string {
	l := b.pending
	b.pending = ""
	return l
}
