// Package errtaxonomy enforces the typed-error discipline from
// DESIGN.md §10 in two parts:
//
//  1. Everywhere (non-test code repo-wide): a sentinel error — a
//     package-level `var Err…`/`var err…` of type error — must be
//     matched with errors.Is, never compared with == or != (wrapping
//     with %w silently breaks identity comparison; comparisons against
//     nil are fine).
//
//  2. In internal/engine: every EXPORTED sentinel must appear in the
//     IsUnavailable membership table test (the
//     TestIsUnavailableCovers… table in unavailable_test.go pins each
//     sentinel's availability classification), so adding a sentinel
//     without deciding its class fails hatlint before it fails a human.
//     The membership scan parses the package's _test.go files (the
//     loader deliberately excludes them from the pass) and counts a
//     sentinel as covered when its name appears inside any function or
//     value whose name contains "IsUnavailable" other than the
//     classifier itself — the implementation lists only the in-class
//     sentinels and must not double as the coverage table.
//
// A sentinel that genuinely has no availability classification carries
// //hatlint:allow errtaxonomy -- <reason> on its declaration.
package errtaxonomy

import (
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"strings"

	"hatrpc/internal/analyzers/framework"
	"hatrpc/internal/analyzers/internal/lintutil"
)

// Analyzer is the errtaxonomy check.
var Analyzer = &framework.Analyzer{
	Name: "errtaxonomy",
	Doc: "require errors.Is over ==/!= for sentinel errors, and require every " +
		"exported engine sentinel to appear in the IsUnavailable membership table test",
	Run: run,
}

func run(pass *framework.Pass) (any, error) {
	checkComparisons(pass)
	if lintutil.PkgTail(pass.Pkg.Path()) == "engine" {
		checkMembership(pass)
	}
	return nil, nil
}

// ---------------------------------------------------------------------------
// Part 1: no ==/!= on sentinels

// isSentinel reports whether obj is a package-level error variable
// following the Err*/err* naming convention.
func isSentinel(obj types.Object) bool {
	v, ok := obj.(*types.Var)
	if !ok || v.Pkg() == nil || v.Parent() != v.Pkg().Scope() {
		return false
	}
	name := v.Name()
	if !strings.HasPrefix(name, "Err") && !strings.HasPrefix(name, "err") {
		return false
	}
	return types.Identical(v.Type(), types.Universe.Lookup("error").Type())
}

// sentinelOperand returns the sentinel object if e resolves to one.
func sentinelOperand(pass *framework.Pass, e ast.Expr) types.Object {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		if obj := pass.TypesInfo.Uses[e]; obj != nil && isSentinel(obj) {
			return obj
		}
	case *ast.SelectorExpr:
		if obj := pass.TypesInfo.Uses[e.Sel]; obj != nil && isSentinel(obj) {
			return obj
		}
	}
	return nil
}

func checkComparisons(pass *framework.Pass) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			be, ok := n.(*ast.BinaryExpr)
			if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
				return true
			}
			if isNil(be.X) || isNil(be.Y) {
				return true // `ErrFoo != nil` is a plain nil check
			}
			obj := sentinelOperand(pass, be.X)
			if obj == nil {
				obj = sentinelOperand(pass, be.Y)
			}
			if obj == nil {
				return true
			}
			pass.Reportf(be.OpPos,
				"sentinel %s compared with %s: wrapped errors defeat identity — use "+
					"errors.Is(err, %s)",
				obj.Name(), be.Op, obj.Name())
			return true
		})
	}
}

func isNil(e ast.Expr) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	return ok && id.Name == "nil"
}

// ---------------------------------------------------------------------------
// Part 2: IsUnavailable membership coverage (engine only)

func checkMembership(pass *framework.Pass) {
	// Exported sentinels declared in this package.
	type sentinel struct {
		name string
		pos  token.Pos
	}
	var sentinels []sentinel
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			gd, ok := d.(*ast.GenDecl)
			if !ok || gd.Tok != token.VAR {
				continue
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for _, name := range vs.Names {
					obj := pass.TypesInfo.Defs[name]
					if obj != nil && obj.Exported() && strings.HasPrefix(name.Name, "Err") && isSentinel(obj) {
						sentinels = append(sentinels, sentinel{name: name.Name, pos: name.Pos()})
					}
				}
			}
		}
	}
	if len(sentinels) == 0 {
		return
	}
	covered := map[string]bool{}
	// Membership tables in the loaded files themselves (fixture shape),
	// then in the package directory's _test.go files, which the loader
	// excludes from the pass (real shape: unavailable_test.go).
	loaded := map[string]bool{}
	for _, f := range pass.Files {
		name := pass.Fset.Position(f.Pos()).Filename
		loaded[filepath.Base(name)] = true
		collectMembership(f, covered)
	}
	dir := filepath.Dir(pass.Fset.Position(pass.Files[0].Pos()).Filename)
	if ents, err := os.ReadDir(dir); err == nil {
		for _, e := range ents {
			if e.IsDir() || !strings.HasSuffix(e.Name(), "_test.go") || loaded[e.Name()] {
				continue
			}
			// Parser-only: the table scan is purely syntactic.
			tf, err := parser.ParseFile(token.NewFileSet(), filepath.Join(dir, e.Name()), nil, 0)
			if err != nil {
				continue
			}
			collectMembership(tf, covered)
		}
	}
	for _, s := range sentinels {
		if !covered[s.name] {
			pass.Reportf(s.pos,
				"exported sentinel %s does not appear in the IsUnavailable membership "+
					"table test: add it to the availability table (true or false) so its "+
					"class is pinned",
				s.name)
		}
	}
}

// collectMembership records every identifier mentioned inside a
// declaration whose name contains "IsUnavailable" (excluding the
// classifier function itself).
func collectMembership(f *ast.File, covered map[string]bool) {
	record := func(n ast.Node) {
		ast.Inspect(n, func(m ast.Node) bool {
			if id, ok := m.(*ast.Ident); ok {
				covered[id.Name] = true
			}
			return true
		})
	}
	for _, d := range f.Decls {
		switch d := d.(type) {
		case *ast.FuncDecl:
			if name := d.Name.Name; strings.Contains(name, "IsUnavailable") && name != "IsUnavailable" && d.Body != nil {
				record(d.Body)
			}
		case *ast.GenDecl:
			for _, spec := range d.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for i, name := range vs.Names {
						if strings.Contains(name.Name, "IsUnavailable") && i < len(vs.Values) {
							record(vs.Values[i])
						}
					}
				}
			}
		}
	}
}
