package errtaxonomy_test

import (
	"testing"

	"hatrpc/internal/analyzers/errtaxonomy"
	"hatrpc/internal/analyzers/framework/analysistest"
)

func TestErrTaxonomy(t *testing.T) {
	analysistest.Run(t, "testdata", errtaxonomy.Analyzer, "engine", "client")
}
