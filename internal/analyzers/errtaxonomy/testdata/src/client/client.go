// Fixture: sentinel comparisons outside the defining package.
package client

import (
	"errors"

	"engine"
)

var errLocal = errors.New("local")

// bad compares a sentinel by identity: wrapping defeats it.
func bad(err error) bool {
	return err == engine.ErrDeadline // want `use errors.Is`
}

// badNeq: != is the same trap.
func badNeq(err error) bool {
	return err != engine.ErrDeadline // want `use errors.Is`
}

// badLocal: package-local sentinels count too.
func badLocal(err error) bool {
	return errLocal == err // want `use errors.Is`
}

// good uses errors.Is.
func good(err error) bool {
	return errors.Is(err, engine.ErrDeadline)
}

// nilChecks are plain presence tests, not identity comparisons.
func nilChecks(err error) bool {
	return err == nil || engine.ErrDeadline != nil
}

// notSentinel: comparing non-error or non-sentinel values is fine.
func notSentinel(a, b error, n int) bool {
	return a == b && n == 3
}
