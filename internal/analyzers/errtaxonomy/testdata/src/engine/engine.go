// Fixture mirror of internal/engine's sentinel taxonomy: the
// membership table covers two sentinels and misses one.
package engine

import "errors"

// Availability-class sentinels.
var (
	ErrDeadline = errors.New("deadline")
	ErrPeerDown = errors.New("peer down")
)

// ErrOrphan has no membership-table entry: its availability class was
// never pinned.
var ErrOrphan = errors.New("orphan") // want `sentinel ErrOrphan does not appear in the IsUnavailable membership`

// errInternal is unexported: membership is not required.
var errInternal = errors.New("internal")

// IsUnavailable is the classifier itself: it lists only the in-class
// sentinels and must NOT count as the coverage table.
func IsUnavailable(err error) bool {
	return errors.Is(err, ErrDeadline) || errors.Is(err, ErrPeerDown)
}

// wantIsUnavailable stands in for the membership table the real repo
// pins in unavailable_test.go: every exported sentinel appears with its
// classification, in-class or not.
var wantIsUnavailable = map[error]bool{
	ErrDeadline: true,
	ErrPeerDown: true,
}
