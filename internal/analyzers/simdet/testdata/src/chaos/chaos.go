// Fixture: the chaos soak harness is DES-scheduled — crash schedules
// and workloads must replay byte-identically from a seed, so wall
// clocks, the global rand state and private RNG minting are forbidden.
package chaos

import (
	"math/rand"
	"time"
)

func stampCrash() int64 {
	return time.Now().UnixNano() // want `time.Now`
}

func jitterRestart() {
	time.Sleep(time.Microsecond) // want `time.Sleep`
	_ = rand.Int63n(60_000)      // want `global rand.Int63n`
}

func privateSchedule(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed)) // want `rand.New` `rand.NewSource`
}

// drawing from a caller-supplied (sim.Env) RNG is the sanctioned shape.
func scheduled(rng *rand.Rand, mean float64) float64 { return rng.ExpFloat64() * mean }
