// Fixture: the sim kernel package itself. Wall-clock and environment
// reads are forbidden even here; minting RNG sources is the kernel's
// privilege.
package sim

import (
	"math/rand"
	"os"
	"time"
)

// Env mirrors the kernel: it owns the one seeded RNG.
type Env struct{ rng *rand.Rand }

// NewEnv is the kernel exemption: rand.New/rand.NewSource are legal
// only here.
func NewEnv(seed int64) *Env {
	return &Env{rng: rand.New(rand.NewSource(seed))}
}

// Rand hands out the seeded RNG.
func (e *Env) Rand() *rand.Rand { return e.rng }

func wallClock() {
	_ = time.Now()              // want `time.Now`
	time.Sleep(time.Nanosecond) // want `time.Sleep`
	_ = time.Since(time.Time{}) // want `time.Since`
	_ = time.After(1)           // want `time.After`
}

func environment() {
	_ = os.Getpid()          // want `os.Getpid`
	_, _ = os.LookupEnv("X") // want `os.LookupEnv`
}

func globalRand() {
	_ = rand.Intn(10)                  // want `global rand.Intn`
	rand.Shuffle(3, func(i, j int) {}) // want `global rand.Shuffle`
}

// duration arithmetic and formatting are pure — no diagnostics.
func pureTimeUse(d time.Duration) string { return d.String() }
