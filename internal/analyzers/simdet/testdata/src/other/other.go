// Fixture: a package outside the DES set — wall-clock use is fine.
package other

import (
	"math/rand"
	"time"
)

func free() int64 {
	rand.Seed(1)
	return time.Now().UnixNano() + int64(rand.Intn(3))
}
