// Fixture: a DES-scheduled package outside the sim kernel — RNG
// minting is forbidden, threading a caller-supplied RNG is the
// sanctioned shape.
package engine

import "math/rand"

func mint(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed)) // want `rand.New` `rand.NewSource`
}

// threaded draws from an explicitly provided RNG — no diagnostic.
func threaded(rng *rand.Rand) int { return rng.Intn(10) }
