package simdet_test

import (
	"testing"

	"hatrpc/internal/analyzers/framework/analysistest"
	"hatrpc/internal/analyzers/simdet"
)

func TestSimdet(t *testing.T) {
	analysistest.Run(t, "testdata", simdet.Analyzer, "sim", "engine", "other", "chaos")
}
