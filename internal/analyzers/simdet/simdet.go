// Package simdet enforces the DES determinism contract in
// simulation-scheduled packages: no wall-clock time, no global
// randomness, no process-environment dependence. Inside the simulation
// every timestamp must come from the virtual clock (sim.Env.Now) and
// every random draw from the environment's seeded RNG (sim.Env.Rand),
// or two runs with the same seed stop being byte-identical.
package simdet

import (
	"go/ast"
	"go/types"

	"hatrpc/internal/analyzers/framework"
	"hatrpc/internal/analyzers/internal/lintutil"
)

// Analyzer is the simdet check.
var Analyzer = &framework.Analyzer{
	Name: "simdet",
	Doc: "forbid wall-clock time, global math/rand state and process-environment " +
		"reads in DES-scheduled packages; randomness and time must flow through sim.Env",
	Run: run,
}

// timeFuncs are the wall-clock entry points of package time. Pure
// constructors and conversions (Duration arithmetic, Unix, Date) are
// fine — it is the ambient clock and timers that break determinism.
var timeFuncs = map[string]bool{
	"Now": true, "Since": true, "Until": true, "Sleep": true,
	"After": true, "AfterFunc": true, "Tick": true,
	"NewTimer": true, "NewTicker": true,
}

// randGlobalFuncs are the math/rand package-level functions backed by
// the shared global source.
var randGlobalFuncs = map[string]bool{
	"Int": true, "Intn": true, "Int31": true, "Int31n": true,
	"Int63": true, "Int63n": true, "Uint32": true, "Uint64": true,
	"Float32": true, "Float64": true, "ExpFloat64": true, "NormFloat64": true,
	"Perm": true, "Shuffle": true, "Seed": true, "Read": true,
}

// osEnvFuncs read process-environment state that varies across runs and
// hosts.
var osEnvFuncs = map[string]bool{
	"Getpid": true, "Getppid": true, "Getenv": true, "LookupEnv": true,
	"Environ": true, "Hostname": true,
}

func run(pass *framework.Pass) (any, error) {
	if !lintutil.IsDESPackage(pass.Pkg.Path()) {
		return nil, nil
	}
	isKernel := lintutil.PkgTail(pass.Pkg.Path()) == "sim"
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := lintutil.CalleeFunc(pass.TypesInfo, call)
			if fn == nil || fn.Pkg() == nil {
				return true
			}
			switch fn.Pkg().Path() {
			case "time":
				if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() == nil && timeFuncs[fn.Name()] {
					pass.Reportf(call.Pos(),
						"call to time.%s in DES-scheduled package %s: use the virtual clock (sim.Env.Now / Proc.Sleep)",
						fn.Name(), pass.Pkg.Name())
				}
			case "math/rand", "math/rand/v2":
				if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() != nil {
					return true // *rand.Rand methods on an explicitly threaded RNG are fine
				}
				switch {
				case randGlobalFuncs[fn.Name()]:
					pass.Reportf(call.Pos(),
						"call to global rand.%s in DES-scheduled package %s: draw from the seeded sim.Env RNG instead",
						fn.Name(), pass.Pkg.Name())
				case (fn.Name() == "New" || fn.Name() == "NewSource") && !isKernel:
					// Only the sim kernel may mint an RNG (NewEnv seeds the
					// one true source); everything else threads *rand.Rand.
					pass.Reportf(call.Pos(),
						"rand.%s in DES-scheduled package %s: only the sim kernel seeds RNGs; accept a *rand.Rand (sim.Env.Rand) instead",
						fn.Name(), pass.Pkg.Name())
				}
			case "os":
				if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() == nil && osEnvFuncs[fn.Name()] {
					pass.Reportf(call.Pos(),
						"call to os.%s in DES-scheduled package %s: process-environment state is not deterministic across runs",
						fn.Name(), pass.Pkg.Name())
				}
			}
			return true
		})
	}
	return nil, nil
}
