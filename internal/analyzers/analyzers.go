// Package analyzers assembles the hatlint suite: the custom static
// checks that machine-enforce the repository's DES-determinism and
// verbs-protocol invariants (DESIGN.md §11). The suite runs in CI via
// cmd/hatlint and must stay clean on the whole repo.
package analyzers

import (
	"hatrpc/internal/analyzers/arenaalias"
	"hatrpc/internal/analyzers/epochfence"
	"hatrpc/internal/analyzers/errtaxonomy"
	"hatrpc/internal/analyzers/framework"
	"hatrpc/internal/analyzers/maporder"
	"hatrpc/internal/analyzers/nogoroutine"
	"hatrpc/internal/analyzers/obsnames"
	"hatrpc/internal/analyzers/simdet"
	"hatrpc/internal/analyzers/wirebounds"
	"hatrpc/internal/analyzers/wrsigned"
)

// All returns every analyzer in the hatlint suite, in stable order.
// The first five are AST/type-based (PR 4); the last four ride the
// flow-sensitive engine (DESIGN.md §16).
func All() []*framework.Analyzer {
	return []*framework.Analyzer{
		arenaalias.Analyzer,
		epochfence.Analyzer,
		errtaxonomy.Analyzer,
		maporder.Analyzer,
		nogoroutine.Analyzer,
		obsnames.Analyzer,
		simdet.Analyzer,
		wirebounds.Analyzer,
		wrsigned.Analyzer,
	}
}
