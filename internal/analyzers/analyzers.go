// Package analyzers assembles the hatlint suite: the custom static
// checks that machine-enforce the repository's DES-determinism and
// verbs-protocol invariants (DESIGN.md §11). The suite runs in CI via
// cmd/hatlint and must stay clean on the whole repo.
package analyzers

import (
	"hatrpc/internal/analyzers/framework"
	"hatrpc/internal/analyzers/maporder"
	"hatrpc/internal/analyzers/nogoroutine"
	"hatrpc/internal/analyzers/obsnames"
	"hatrpc/internal/analyzers/simdet"
	"hatrpc/internal/analyzers/wrsigned"
)

// All returns every analyzer in the hatlint suite, in stable order.
func All() []*framework.Analyzer {
	return []*framework.Analyzer{
		maporder.Analyzer,
		nogoroutine.Analyzer,
		obsnames.Analyzer,
		simdet.Analyzer,
		wrsigned.Analyzer,
	}
}
