// Fixture: WR posting discipline around signaled completions.
package engine

import (
	"verbs"
)

// allUnsignaled posts a 2-element chain with no signaled element and
// never drains — the SQ-exhaustion shape.
func allUnsignaled(qp *verbs.QP) {
	send := &verbs.SendWR{Unsignaled: true}
	write := &verbs.SendWR{Unsignaled: true}
	write.Next = send
	qp.PostSend(0, write) // want `2-element WR chain with no signaled element`
}

// literalChain links via the composite literal's Next field.
func literalChain(qp *verbs.QP) {
	tail := &verbs.SendWR{Unsignaled: true}
	qp.PostSend(0, &verbs.SendWR{Unsignaled: true, Next: tail}) // want `2-element WR chain`
}

// signaledTail leaves the last element signaled: slots reclaimed. No
// diagnostic.
func signaledTail(qp *verbs.QP) {
	send := &verbs.SendWR{}
	write := &verbs.SendWR{Unsignaled: true}
	write.Next = send
	qp.PostSend(0, write)
}

// drainsLocally polls the CQ in the same function. No diagnostic.
func drainsLocally(qp *verbs.QP, cq *verbs.CQ) {
	send := &verbs.SendWR{Unsignaled: true}
	write := &verbs.SendWR{Unsignaled: true}
	write.Next = send
	qp.PostSend(0, write)
	for {
		if _, ok := cq.TryPoll(); !ok {
			break
		}
	}
}

// single posts one unsignaled WR — below the chain threshold. No
// diagnostic.
func single(qp *verbs.QP) {
	qp.PostSend(0, &verbs.SendWR{Unsignaled: true})
}

// unknownChain passes a WR from elsewhere; the chain is not statically
// resolvable. No diagnostic.
func unknownChain(qp *verbs.QP, wr *verbs.SendWR) {
	qp.PostSend(0, wr)
}

// dynamicChain builds the chain in a loop (the engine's doorbell-batch
// shape): every literal unsignaled, head unresolvable, no drain.
func dynamicChain(qp *verbs.QP, n int) {
	var head, tail *verbs.SendWR
	for i := 0; i < n; i++ {
		wr := &verbs.SendWR{Unsignaled: true}
		if tail == nil {
			head = wr
		} else {
			tail.Next = wr
		}
		tail = wr
	}
	qp.PostSend(0, head) // want `loop-built WR chain with no signaled element`
}

// dynamicChainSignaled builds the chain in a loop but with a signaled
// literal in the mix: slots reclaimed downstream. No diagnostic.
func dynamicChainSignaled(qp *verbs.QP, n int) {
	var head, tail *verbs.SendWR
	for i := 0; i < n; i++ {
		wr := &verbs.SendWR{}
		if tail == nil {
			head = wr
		} else {
			tail.Next = wr
		}
		tail = wr
	}
	qp.PostSend(0, head)
}

// dynamicChainDrains builds the chain in a loop and drains batched (the
// PollN drain counts). No diagnostic.
func dynamicChainDrains(qp *verbs.QP, cq *verbs.CQ, n int) {
	var head, tail *verbs.SendWR
	for i := 0; i < n; i++ {
		wr := &verbs.SendWR{Unsignaled: true}
		if tail == nil {
			head = wr
		} else {
			tail.Next = wr
		}
		tail = wr
	}
	qp.PostSend(0, head)
	var buf [4]verbs.CQE
	for cq.PollN(buf[:]) > 0 {
	}
}
