// Fixture: WR posting discipline around signaled completions.
package engine

import (
	"verbs"
)

// allUnsignaled posts a 2-element chain with no signaled element and
// never drains — the SQ-exhaustion shape.
func allUnsignaled(qp *verbs.QP) {
	send := &verbs.SendWR{Unsignaled: true}
	write := &verbs.SendWR{Unsignaled: true}
	write.Next = send
	qp.PostSend(0, write) // want `2-element WR chain with no signaled element`
}

// literalChain links via the composite literal's Next field.
func literalChain(qp *verbs.QP) {
	tail := &verbs.SendWR{Unsignaled: true}
	qp.PostSend(0, &verbs.SendWR{Unsignaled: true, Next: tail}) // want `2-element WR chain`
}

// signaledTail leaves the last element signaled: slots reclaimed. No
// diagnostic.
func signaledTail(qp *verbs.QP) {
	send := &verbs.SendWR{}
	write := &verbs.SendWR{Unsignaled: true}
	write.Next = send
	qp.PostSend(0, write)
}

// drainsLocally polls the CQ in the same function. No diagnostic.
func drainsLocally(qp *verbs.QP, cq *verbs.CQ) {
	send := &verbs.SendWR{Unsignaled: true}
	write := &verbs.SendWR{Unsignaled: true}
	write.Next = send
	qp.PostSend(0, write)
	for {
		if _, ok := cq.TryPoll(); !ok {
			break
		}
	}
}

// single posts one unsignaled WR — below the chain threshold. No
// diagnostic.
func single(qp *verbs.QP) {
	qp.PostSend(0, &verbs.SendWR{Unsignaled: true})
}

// unknownChain passes a WR from elsewhere; the chain is not statically
// resolvable. No diagnostic.
func unknownChain(qp *verbs.QP, wr *verbs.SendWR) {
	qp.PostSend(0, wr)
}
