// Fixture: a stub of the verbs work-request surface.
package verbs

// SendWR is a send work request.
type SendWR struct {
	Unsignaled bool
	Next       *SendWR
}

// CQE is a completion entry.
type CQE struct{}

// QP is a queue pair.
type QP struct{}

// PostSend posts a WR chain.
func (q *QP) PostSend(p int, wr *SendWR) {}

// CQ is a completion queue.
type CQ struct{}

// TryPoll drains one completion if available.
func (c *CQ) TryPoll() (CQE, bool) { return CQE{}, false }

// PollN drains up to len(out) completions.
func (c *CQ) PollN(out []CQE) int { return 0 }
