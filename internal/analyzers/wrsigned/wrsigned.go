// Package wrsigned guards the verbs completion-accounting discipline.
// On real hardware a send-queue slot is only reclaimed when a *later
// signaled* completion is polled; posting a multi-element WR chain in
// which every element is unsignaled, from a function that never drains
// a CQ, is the silent-SQ-exhaustion shape that PR 3's runtime
// assertNoLeaks helper catches only after the fact. This analyzer
// reports it at compile time.
//
// The check is intraprocedural and conservative. Two chain shapes are
// recognised:
//
//   - Static chains: every element is statically known (composite
//     literals linked by Next fields or `x.Next = y` assignments in the
//     same function), every element sets Unsignaled: true, and the chain
//     has at least two elements.
//   - Dynamic chains: the chain is built in a loop (`tail.Next = wr`
//     inside a for/range statement — the engine's doorbell-batching
//     shape), the posted head is not statically resolvable, and every
//     SendWR literal in the function is unsignaled.
//
// Either shape is reported only when the function contains no CQ drain
// (Poll/TryPoll/PollN/PollBusy/WaitEvent). Functions that intentionally
// rely on a downstream signaled completion document it with
// //hatlint:allow wrsigned -- <reason>.
package wrsigned

import (
	"go/ast"
	"go/types"

	"hatrpc/internal/analyzers/framework"
	"hatrpc/internal/analyzers/internal/lintutil"
)

// Analyzer is the wrsigned check.
var Analyzer = &framework.Analyzer{
	Name: "wrsigned",
	Doc: "flag posting an all-unsignaled multi-element WR chain from a function " +
		"that never drains a completion queue",
	Run: run,
}

// drainFuncs are the CQ methods that retire completions.
var drainFuncs = map[string]bool{
	"Poll": true, "TryPoll": true, "PollN": true, "PollBusy": true, "WaitEvent": true,
}

func run(pass *framework.Pass) (any, error) {
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkFunc(pass, fd)
		}
	}
	return nil, nil
}

type funcFacts struct {
	lits    map[types.Object]*ast.CompositeLit // var → its SendWR literal
	next    map[types.Object]ast.Expr          // var → expr assigned to var.Next
	allLits []*ast.CompositeLit                // every SendWR literal in the function
	dynNext bool                               // a wr.Next assignment inside a loop
	drains  bool
}

func checkFunc(pass *framework.Pass, fd *ast.FuncDecl) {
	facts := &funcFacts{
		lits: map[types.Object]*ast.CompositeLit{},
		next: map[types.Object]ast.Expr{},
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.AssignStmt:
			for i, lhs := range st.Lhs {
				if i >= len(st.Rhs) {
					break
				}
				switch l := ast.Unparen(lhs).(type) {
				case *ast.Ident: // x := &SendWR{…}
					if lit := wrLiteral(pass, st.Rhs[i]); lit != nil {
						if obj := identObj(pass, l); obj != nil {
							facts.lits[obj] = lit
						}
					}
				case *ast.SelectorExpr: // x.Next = y
					if l.Sel.Name == "Next" {
						if base, ok := ast.Unparen(l.X).(*ast.Ident); ok {
							if obj := identObj(pass, base); obj != nil && isWRType(pass, base) {
								facts.next[obj] = st.Rhs[i]
							}
						}
					}
				}
			}
		case *ast.CallExpr:
			if fn := lintutil.CalleeFunc(pass.TypesInfo, st); fn != nil &&
				lintutil.RecvPkgIs(fn, "verbs") && drainFuncs[fn.Name()] {
				facts.drains = true
			}
		case *ast.CompositeLit:
			if lit := wrLiteral(pass, st); lit != nil {
				facts.allLits = append(facts.allLits, lit)
			}
		case *ast.ForStmt:
			scanLoopNext(pass, facts, st.Body)
		case *ast.RangeStmt:
			scanLoopNext(pass, facts, st.Body)
		}
		return true
	})
	if facts.drains {
		return
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := lintutil.CalleeFunc(pass.TypesInfo, call)
		if fn == nil || fn.Name() != "PostSend" || !lintutil.RecvPkgIs(fn, "verbs") {
			return true
		}
		// The WR argument is the last one (QP.PostSend(p, wr)).
		if len(call.Args) == 0 {
			return true
		}
		chain, known := resolveChain(pass, facts, call.Args[len(call.Args)-1], 0)
		if !known {
			// Dynamic-chain shape: the head is not statically resolvable,
			// but the function links WRs in a loop (`tail.Next = wr`) and
			// every SendWR literal it builds is unsignaled — the engine's
			// doorbell-batching pattern, which exhausts the SQ just like a
			// static all-unsignaled chain would.
			if facts.dynNext && len(facts.allLits) > 0 && allUnsignaled(pass, facts.allLits) {
				pass.Reportf(call.Pos(),
					"PostSend of a loop-built WR chain with no signaled element and no CQ drain in this function: "+
						"SQ slots are only reclaimed via signaled completions (leak shape caught at runtime by assertNoLeaks)")
			}
			return true
		}
		if len(chain) < 2 {
			return true
		}
		for _, lit := range chain {
			if !unsignaled(pass, lit) {
				return true
			}
		}
		pass.Reportf(call.Pos(),
			"PostSend of a %d-element WR chain with no signaled element and no CQ drain in this function: "+
				"SQ slots are only reclaimed via signaled completions (leak shape caught at runtime by assertNoLeaks)",
			len(chain))
		return true
	})
}

// scanLoopNext records whether a loop body assigns to a SendWR's Next
// field — the dynamic chain-building shape.
func scanLoopNext(pass *framework.Pass, facts *funcFacts, body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		st, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for _, lhs := range st.Lhs {
			if sel, ok := ast.Unparen(lhs).(*ast.SelectorExpr); ok && sel.Sel.Name == "Next" {
				if base, ok := ast.Unparen(sel.X).(*ast.Ident); ok && isWRType(pass, base) {
					facts.dynNext = true
				}
			}
		}
		return true
	})
}

// allUnsignaled reports whether every literal sets Unsignaled: true.
func allUnsignaled(pass *framework.Pass, lits []*ast.CompositeLit) bool {
	for _, lit := range lits {
		if !unsignaled(pass, lit) {
			return false
		}
	}
	return true
}

// resolveChain statically follows a WR expression through Next links,
// returning the chain's literals and whether every element was
// resolvable.
func resolveChain(pass *framework.Pass, facts *funcFacts, expr ast.Expr, depth int) ([]*ast.CompositeLit, bool) {
	if depth > 32 {
		return nil, false
	}
	var lit *ast.CompositeLit
	var obj types.Object
	switch e := ast.Unparen(expr).(type) {
	case *ast.Ident:
		obj = identObj(pass, e)
		if obj != nil {
			lit = facts.lits[obj]
		}
	default:
		lit = wrLiteral(pass, expr)
	}
	if lit == nil {
		return nil, false
	}
	chain := []*ast.CompositeLit{lit}
	// Next via the literal's own field…
	var nextExpr ast.Expr
	if fv := fieldValue(lit, "Next"); fv != nil {
		nextExpr = fv
	}
	// …or via a later x.Next = y assignment (which overrides).
	if obj != nil {
		if fv, ok := facts.next[obj]; ok {
			nextExpr = fv
		}
	}
	if nextExpr == nil {
		return chain, true
	}
	if id, ok := ast.Unparen(nextExpr).(*ast.Ident); ok && id.Name == "nil" {
		return chain, true
	}
	rest, known := resolveChain(pass, facts, nextExpr, depth+1)
	if !known {
		return nil, false
	}
	return append(chain, rest...), true
}

// wrLiteral returns the composite literal if expr is (&)SendWR{…} from
// the verbs package.
func wrLiteral(pass *framework.Pass, expr ast.Expr) *ast.CompositeLit {
	e := ast.Unparen(expr)
	if u, ok := e.(*ast.UnaryExpr); ok {
		e = ast.Unparen(u.X)
	}
	lit, ok := e.(*ast.CompositeLit)
	if !ok {
		return nil
	}
	tv, ok := pass.TypesInfo.Types[lit]
	if !ok || tv.Type == nil {
		return nil
	}
	t := tv.Type
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Name() != "SendWR" || !lintutil.IsPkg(named.Obj().Pkg(), "verbs") {
		return nil
	}
	return lit
}

func isWRType(pass *framework.Pass, id *ast.Ident) bool {
	obj := identObj(pass, id)
	if obj == nil {
		return false
	}
	t := obj.Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	return ok && named.Obj().Name() == "SendWR" && lintutil.IsPkg(named.Obj().Pkg(), "verbs")
}

func identObj(pass *framework.Pass, id *ast.Ident) types.Object {
	if obj := pass.TypesInfo.Defs[id]; obj != nil {
		return obj
	}
	return pass.TypesInfo.Uses[id]
}

// fieldValue returns the value of the named field in a keyed composite
// literal.
func fieldValue(lit *ast.CompositeLit, name string) ast.Expr {
	for _, el := range lit.Elts {
		if kv, ok := el.(*ast.KeyValueExpr); ok {
			if k, ok := kv.Key.(*ast.Ident); ok && k.Name == name {
				return kv.Value
			}
		}
	}
	return nil
}

// unsignaled reports whether the literal sets Unsignaled: true.
func unsignaled(pass *framework.Pass, lit *ast.CompositeLit) bool {
	fv := fieldValue(lit, "Unsignaled")
	if fv == nil {
		return false
	}
	tv, ok := pass.TypesInfo.Types[fv]
	if !ok || tv.Value == nil {
		return false
	}
	return tv.Value.ExactString() == "true"
}
