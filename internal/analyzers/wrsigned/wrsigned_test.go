package wrsigned_test

import (
	"testing"

	"hatrpc/internal/analyzers/framework/analysistest"
	"hatrpc/internal/analyzers/wrsigned"
)

func TestWrsigned(t *testing.T) {
	analysistest.Run(t, "testdata", wrsigned.Analyzer, "engine")
}
