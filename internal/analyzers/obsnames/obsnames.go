// Package obsnames polices the observability namespace. Instrument
// names are rendered into sorted tables and traces that downstream
// tooling greps, so they must be static: a name built with fmt.Sprintf
// from request data is a cardinality bomb (unbounded registry growth)
// and breaks byte-identical output between runs. Names must be
// compile-time string constants matching [a-z0-9_.]+, and one name must
// not be registered as two different instrument kinds.
//
// Sites that append a bounded enum suffix (per-protocol counters) carry
// a //hatlint:allow obsnames comment with the justification naming the
// bounding enum.
package obsnames

import (
	"go/ast"
	"go/constant"
	"regexp"

	"hatrpc/internal/analyzers/framework"
	"hatrpc/internal/analyzers/internal/lintutil"
)

// Analyzer is the obsnames check.
var Analyzer = &framework.Analyzer{
	Name: "obsnames",
	Doc: "require obs instrument names to be constant strings matching [a-z0-9_.]+ " +
		"and consistently registered as a single metric kind",
	Run: run,
}

var nameRe = regexp.MustCompile(`^[a-z0-9_.]+$`)

// registrars are the obs.Registry methods whose first argument is an
// instrument name.
var registrars = map[string]bool{"Counter": true, "Histogram": true, "Gauge": true}

func run(pass *framework.Pass) (any, error) {
	type site struct {
		kind string
		pos  ast.Node
	}
	firstKind := map[string]site{}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := lintutil.CalleeFunc(pass.TypesInfo, call)
			if !lintutil.RecvPkgIs(fn, "obs") || !registrars[fn.Name()] || len(call.Args) < 1 {
				return true
			}
			arg := call.Args[0]
			tv, ok := pass.TypesInfo.Types[arg]
			if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
				pass.Reportf(arg.Pos(),
					"obs %s name must be a compile-time string constant (dynamic names are cardinality bombs and break deterministic rendering)",
					fn.Name())
				return true
			}
			name := constant.StringVal(tv.Value)
			if !nameRe.MatchString(name) {
				pass.Reportf(arg.Pos(),
					"obs %s name %q must match [a-z0-9_.]+", fn.Name(), name)
				return true
			}
			if prev, ok := firstKind[name]; ok && prev.kind != fn.Name() {
				pass.Reportf(arg.Pos(),
					"obs name %q already registered as a %s; one name must map to one metric kind",
					name, prev.kind)
			} else if !ok {
				firstKind[name] = site{kind: fn.Name(), pos: call}
			}
			return true
		})
	}
	return nil, nil
}
