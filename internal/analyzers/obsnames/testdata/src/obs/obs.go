// Fixture: a stub of the obs metrics registry surface.
package obs

// Counter counts.
type Counter struct{}

// Inc bumps.
func (c *Counter) Inc(n uint64) {}

// Histogram records.
type Histogram struct{}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {}

// Registry holds named instruments.
type Registry struct{}

// Counter registers or fetches a counter.
func (r *Registry) Counter(name string) *Counter { return nil }

// Histogram registers or fetches a histogram.
func (r *Registry) Histogram(name string) *Histogram { return nil }

// Gauge registers or fetches a gauge.
func (r *Registry) Gauge(name string, fn func() float64) {}
