// Fixture: instrument registration sites, static and dynamic.
package app

import (
	"fmt"

	"obs"
)

const latName = "rpc.call_latency_us"

func register(r *obs.Registry, proto string) {
	r.Counter("rpc.calls")   // literal: ok
	r.Histogram(latName)     // named constant: ok
	r.Counter("srv." + "up") // constant-folded concatenation: ok

	r.Counter(fmt.Sprintf("rpc.calls.%s", proto)) // want `must be a compile-time string constant`
	r.Counter("RPC-Calls")                        // want `must match \[a-z0-9_.\]\+`

	r.Histogram("queue.depth")
	r.Counter("queue.depth") // want `already registered as a Histogram`
}
