package obsnames_test

import (
	"testing"

	"hatrpc/internal/analyzers/framework/analysistest"
	"hatrpc/internal/analyzers/obsnames"
)

func TestObsnames(t *testing.T) {
	analysistest.Run(t, "testdata", obsnames.Analyzer, "app")
}
