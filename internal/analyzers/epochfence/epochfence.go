// Package epochfence enforces the monotone-adoption discipline from
// DESIGN.md §15: inside internal/cluster and internal/verbs, a store to
// an epoch-carrying field (any field whose name contains "epoch", or is
// exactly "seq"/"promised") through a pointer must be dominated by an
// ordered comparison against that same field. The node.go
// promise/install ladder — "compare, early-return on stale, then adopt"
// — becomes an enforced shape instead of a convention; a bare
// `st.epoch = e` with no fence on some path is exactly the
// deposed-primary resurrection bug the chaos soak exists to catch.
//
// The fence is recognised structurally: any <, >, <= or >= whose either
// operand names the assigned field (terminal identifier or selector
// name, case-insensitive) and that dominates the store in the
// function's CFG. Short-circuit conditions split blocks, so
// `if e > st.epoch && ok { st.epoch = e }` and the early-return shape
// `if seq <= st.seq { return }` both count. Whether the comparison is
// strict or the documented `>=` install-path variant is reviewed at the
// comparison site; stores that are legally unfenced (epoch-scoped seq
// reset on install, recovery from a trusted snapshot) carry
// `//hatlint:allow epochfence -- <reason>`.
//
// Stores through value-typed bases (e.g. a decoder filling a local
// request struct) are not adoption and are ignored.
package epochfence

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"hatrpc/internal/analyzers/framework"
	"hatrpc/internal/analyzers/internal/lintutil"
)

// Analyzer is the epochfence check.
var Analyzer = &framework.Analyzer{
	Name: "epochfence",
	Doc: "require stores to epoch/seq/promised fields in cluster/verbs to be " +
		"dominated by an ordered comparison against the same field",
	Run: run,
}

func run(pass *framework.Pass) (any, error) {
	tail := lintutil.PkgTail(pass.Pkg.Path())
	if tail != "cluster" && tail != "verbs" {
		return nil, nil
	}
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
				checkFunc(pass, fd)
			}
		}
	}
	return nil, nil
}

// monitoredField reports whether a store to the named field needs a
// fence.
func monitoredField(name string) bool {
	l := strings.ToLower(name)
	return strings.Contains(l, "epoch") || l == "seq" || l == "promised"
}

// monitoredStore returns the stored-to selector if lhs is base.field
// with a pointer-typed base and a monitored field name.
func monitoredStore(pass *framework.Pass, lhs ast.Expr) *ast.SelectorExpr {
	sel, ok := ast.Unparen(lhs).(*ast.SelectorExpr)
	if !ok || !monitoredField(sel.Sel.Name) {
		return nil
	}
	tv, ok := pass.TypesInfo.Types[sel.X]
	if !ok || tv.Type == nil {
		return nil
	}
	if _, isPtr := tv.Type.Underlying().(*types.Pointer); !isPtr {
		return nil
	}
	return sel
}

func checkFunc(pass *framework.Pass, fd *ast.FuncDecl) {
	// Collect monitored stores first; most functions have none and skip
	// the CFG entirely.
	type store struct {
		sel  *ast.SelectorExpr
		node ast.Node
	}
	var stores []store
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false // separate function, separate CFG
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				if sel := monitoredStore(pass, lhs); sel != nil {
					stores = append(stores, store{sel: sel, node: n})
				}
			}
		case *ast.IncDecStmt:
			if sel := monitoredStore(pass, n.X); sel != nil {
				stores = append(stores, store{sel: sel, node: n})
			}
		}
		return true
	})
	if len(stores) == 0 {
		return
	}
	cfg := framework.BuildCFG(fd.Body)
	for _, st := range stores {
		field := st.sel.Sel.Name
		fence := func(n ast.Node) bool { return containsFence(n, field) }
		if cfg.MustPrecede(st.node.Pos(), fence) {
			continue
		}
		pass.Reportf(st.node.Pos(),
			"store to %s is not dominated by an ordered comparison against %q: "+
				"epoch/seq/promised adoption must be fenced (compare, reject stale, then adopt; "+
				"DESIGN.md §16)",
			types.ExprString(st.sel), field)
	}
}

// containsFence reports whether the CFG node contains an ordered
// comparison naming the field.
func containsFence(n ast.Node, field string) bool {
	found := false
	inspectCFGNode(n, func(m ast.Node) {
		be, ok := m.(*ast.BinaryExpr)
		if !ok {
			return
		}
		switch be.Op {
		case token.LSS, token.GTR, token.LEQ, token.GEQ:
		default:
			return
		}
		if namesField(be.X, field) || namesField(be.Y, field) {
			found = true
		}
	})
	return found
}

// namesField reports whether the expression's terminal name matches the
// field, case-insensitively (so `seq <= st.seq` fences both m.Seq and
// st.seq stores).
func namesField(e ast.Expr, field string) bool {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return strings.EqualFold(e.Name, field)
	case *ast.SelectorExpr:
		return strings.EqualFold(e.Sel.Name, field)
	}
	return false
}

// inspectCFGNode visits every sub-node, tolerating the framework's
// synthetic RangeHeader (which ast.Inspect would reject) and skipping
// function literals.
func inspectCFGNode(n ast.Node, visit func(ast.Node)) {
	if rh, ok := n.(*framework.RangeHeader); ok {
		n = rh.Range.X
	}
	ast.Inspect(n, func(m ast.Node) bool {
		if m == nil {
			return false
		}
		if _, ok := m.(*ast.FuncLit); ok {
			return false
		}
		visit(m)
		return true
	})
}
