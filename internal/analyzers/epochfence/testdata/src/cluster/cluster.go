// Fixture: epoch/seq/promised adoption discipline. The flagged cases
// are the node.go promise/install ladder with its fences reverted.
package cluster

type shardState struct {
	epoch        uint64
	seq          uint64
	promised     uint64
	learnedEpoch uint64
}

type installReq struct {
	Epoch uint64
	Seq   uint64
}

// adoptGuarded fences the store with a strictly-greater comparison.
func adoptGuarded(st *shardState, e uint64) {
	if e > st.epoch {
		st.epoch = e
	}
}

// adoptEarlyReturn uses the early-return ladder shape.
func adoptEarlyReturn(st *shardState, seq uint64) {
	if seq <= st.seq {
		return
	}
	st.seq = seq
}

// adoptShortCircuit fences through a short-circuit condition.
func adoptShortCircuit(st *shardState, e uint64, ok bool) {
	if ok && e > st.promised {
		st.promised = e
	}
}

// adoptCrossName: comparing the wire field against the state field
// fences stores to both (name match is case-insensitive).
func adoptCrossName(st *shardState, q installReq) {
	if q.Epoch <= st.epoch {
		return
	}
	st.epoch = q.Epoch
}

// adoptBare stores with no fence on any path.
func adoptBare(st *shardState, e uint64) {
	st.epoch = e // want `store to st.epoch is not dominated by an ordered comparison`
}

// adoptWrongField fences seq with an epoch comparison only.
func adoptWrongField(st *shardState, e uint64) {
	if e > st.epoch {
		st.seq = e // want `store to st.seq is not dominated by an ordered comparison`
	}
}

// adoptOneBranch fences one path but not the other.
func adoptOneBranch(st *shardState, e uint64, ok bool) {
	if ok {
		if e > st.epoch {
			st.epoch = e
		}
		return
	}
	st.epoch = e // want `store to st.epoch is not dominated by an ordered comparison`
}

// bump increments without a fence: still a monotone-field store.
func bump(st *shardState) {
	st.seq++ // want `store to st.seq is not dominated by an ordered comparison`
}

// caseFence: a fence inside one switch clause covers only that clause.
func caseFence(st *shardState, e uint64, k int) {
	switch k {
	case 1:
		if e > st.learnedEpoch {
			st.learnedEpoch = e
		}
	case 2:
		st.learnedEpoch = e // want `store to st.learnedEpoch is not dominated by an ordered comparison`
	}
}

// decode fills a value-typed request struct: not adoption, not
// flagged.
func decode() installReq {
	var q installReq
	q.Epoch = 7
	q.Seq = 9
	return q
}

// otherFields are not monitored.
type counters struct{ hits uint64 }

func touch(c *counters) {
	c.hits = 3
}
