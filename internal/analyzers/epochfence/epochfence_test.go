package epochfence_test

import (
	"testing"

	"hatrpc/internal/analyzers/epochfence"
	"hatrpc/internal/analyzers/framework/analysistest"
)

func TestEpochFence(t *testing.T) {
	analysistest.Run(t, "testdata", epochfence.Analyzer, "cluster")
}
