package nogoroutine_test

import (
	"testing"

	"hatrpc/internal/analyzers/framework/analysistest"
	"hatrpc/internal/analyzers/nogoroutine"
)

func TestNogoroutine(t *testing.T) {
	analysistest.Run(t, "testdata", nogoroutine.Analyzer, "engine", "sim", "chaos")
}
