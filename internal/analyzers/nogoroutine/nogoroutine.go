// Package nogoroutine forbids real concurrency inside sim-process code.
// The DES kernel's contract is one-process-at-a-time: sim processes are
// goroutines only as an implementation detail of the kernel's
// park/resume handshake, and they never actually run concurrently.
// Spawning raw goroutines, communicating over channels or guarding
// state with sync primitives inside DES-scheduled packages reintroduces
// OS-scheduler nondeterminism that the kernel exists to exclude — use
// sim.Env.Spawn, sim.Queue, sim.Signal and sim.Mutex instead. The sim
// kernel package itself is exempt (it is the one place allowed to touch
// the real scheduler).
package nogoroutine

import (
	"go/ast"
	"go/types"

	"hatrpc/internal/analyzers/framework"
	"hatrpc/internal/analyzers/internal/lintutil"
)

// Analyzer is the nogoroutine check.
var Analyzer = &framework.Analyzer{
	Name: "nogoroutine",
	Doc: "forbid go statements, channel operations and sync primitives in " +
		"DES-scheduled packages outside the sim kernel",
	Run: run,
}

func run(pass *framework.Pass) (any, error) {
	if !lintutil.IsDESPackage(pass.Pkg.Path()) || lintutil.PkgTail(pass.Pkg.Path()) == "sim" {
		return nil, nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch st := n.(type) {
			case *ast.GoStmt:
				pass.Reportf(st.Pos(),
					"go statement in DES-scheduled package %s: raw goroutines break the one-process-at-a-time scheduler contract; use sim.Env.Spawn",
					pass.Pkg.Name())
			case *ast.SendStmt:
				pass.Reportf(st.Pos(),
					"channel send in DES-scheduled package %s: cross-process channels race the DES scheduler; use sim.Queue or sim.Signal",
					pass.Pkg.Name())
			case *ast.UnaryExpr:
				if st.Op.String() == "<-" {
					pass.Reportf(st.Pos(),
						"channel receive in DES-scheduled package %s: cross-process channels race the DES scheduler; use sim.Queue or sim.Signal",
						pass.Pkg.Name())
				}
			case *ast.SelectStmt:
				pass.Reportf(st.Pos(),
					"select statement in DES-scheduled package %s: real channel multiplexing is nondeterministic under the DES",
					pass.Pkg.Name())
			case *ast.CallExpr:
				if id, ok := ast.Unparen(st.Fun).(*ast.Ident); ok && id.Name == "make" && len(st.Args) > 0 {
					if _, isBuiltin := pass.TypesInfo.Uses[id].(*types.Builtin); isBuiltin {
						if tv, ok := pass.TypesInfo.Types[st.Args[0]]; ok && tv.Type != nil {
							if _, isChan := tv.Type.Underlying().(*types.Chan); isChan {
								pass.Reportf(st.Pos(),
									"make(chan) in DES-scheduled package %s: use sim.Queue/sim.Signal for deterministic process communication",
									pass.Pkg.Name())
							}
						}
					}
				}
			case *ast.SelectorExpr:
				if obj := pass.TypesInfo.Uses[st.Sel]; obj != nil && obj.Pkg() != nil {
					switch obj.Pkg().Path() {
					case "sync", "sync/atomic":
						pass.Reportf(st.Pos(),
							"use of %s.%s in DES-scheduled package %s: the DES serializes all processes; use sim.Mutex/sim.Signal",
							obj.Pkg().Name(), obj.Name(), pass.Pkg.Name())
					}
				}
			}
			return true
		})
	}
	return nil, nil
}
