// Fixture: the chaos soak harness drives the crash–restart lifecycle
// from inside sim processes — real concurrency primitives are just as
// forbidden there as in the engine.
package chaos

import "sync"

func soakWorkers() {
	go func() {}() // want `go statement`
}

func ackPipe() {
	acks := make(chan uint64, 8) // want `make\(chan\)`
	acks <- 1                    // want `channel send`
	<-acks                       // want `channel receive`
	select {                     // want `select statement`
	default:
	}
}

var auditMu sync.Mutex // want `use of sync.Mutex`

func audit() {
	auditMu.Lock()         // want `use of sync.Lock`
	defer auditMu.Unlock() // want `use of sync.Unlock`
}

// plain accounting is fine.
func bound(lost, rolledBack int) bool { return lost <= rolledBack }
