// Fixture: DES-scheduled process code. Real concurrency primitives
// bypass the cooperative scheduler and are forbidden.
package engine

import (
	"sync"
	"sync/atomic"
)

func spawn() {
	go func() {}() // want `go statement`
}

func channels() {
	ch := make(chan int, 1) // want `make\(chan\)`
	ch <- 1                 // want `channel send`
	<-ch                    // want `channel receive`
	select {                // want `select statement`
	default:
	}
}

var mu sync.Mutex // want `use of sync.Mutex`

func locked() {
	mu.Lock()         // want `use of sync.Lock`
	defer mu.Unlock() // want `use of sync.Unlock`
}

func counted(n *int64) {
	atomic.AddInt64(n, 1) // want `use of atomic.AddInt64`
}

// plain computation is fine.
func pure(a, b int) int { return a + b }
