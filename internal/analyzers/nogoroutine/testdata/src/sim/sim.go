// Fixture: the sim kernel itself is the one place allowed to use real
// concurrency — it implements the cooperative scheduler on top of it.
package sim

import "sync"

type Proc struct {
	mu     sync.Mutex
	resume chan struct{}
}

func (p *Proc) park() {
	p.resume = make(chan struct{})
	go func() { p.resume <- struct{}{} }()
	<-p.resume
}
