// Fixture: bounds-checked wire decoding. The flagged cases are the
// codec read shapes with their length guards reverted — the pattern
// FuzzShardMapDecode's truncated corpus entries catch dynamically.
package thrift

// decodeGuarded checks the buffer length before fixed-width reads.
func decodeGuarded(b []byte) uint16 {
	if len(b) < 2 {
		return 0
	}
	return uint16(b[0])<<8 | uint16(b[1])
}

// decodeStaleShape: the short-circuit guard dominates both the second
// operand and the body.
func decodeStaleShape(b []byte) bool {
	if len(b) != 13 || b[0] != 5 {
		return false
	}
	return b[12] == 1
}

// decodeBare reads with no dominating check.
func decodeBare(b []byte) byte {
	return b[3] // want `access to b is not dominated by a bounds check`
}

// sliceBare slices with no check.
func sliceBare(b []byte) []byte {
	return b[4:8] // want `access to b is not dominated by a bounds check`
}

// hintGuarded uses the stdlib bounds-hint idiom: the hint panics early
// and guards the rest.
func hintGuarded(b []byte) byte {
	_ = b[7]
	return b[6]
}

// rangeGuarded: the range header bounds the loop variable.
func rangeGuarded(b []byte) int {
	n := 0
	for i := range b {
		n += int(b[i])
	}
	return n
}

// loopGuarded: the loop condition mentions len(b).
func loopGuarded(b []byte) int {
	n := 0
	for i := 0; i < len(b); i++ {
		n += int(b[i])
	}
	return n
}

// wrongOrder accesses before the check runs.
func wrongOrder(b []byte) byte {
	x := b[0] // want `access to b is not dominated by a bounds check`
	if len(b) < 2 {
		return 0
	}
	return x + b[1]
}

// oneBranchGuard: the guard covers only one path to the access.
func oneBranchGuard(b []byte, ok bool) byte {
	if ok {
		if len(b) < 1 {
			return 0
		}
	}
	return b[0] // want `access to b is not dominated by a bounds check`
}

// localDerived: locally built slices are not monitored (parameters
// only).
func localDerived(n int) byte {
	buf := make([]byte, n)
	return buf[0]
}

// fullSlice reads no element. No diagnostic.
func fullSlice(b []byte) []byte {
	return b[:]
}
