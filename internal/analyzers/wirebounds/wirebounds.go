// Package wirebounds enforces strict-bounds wire decoding in the codec
// packages (internal/thrift, internal/cluster, internal/engine): an
// index or slice expression over a []byte PARAMETER must be dominated
// by a bounds guard for that buffer. Three guard shapes are recognised,
// matching the idioms the codecs actually use:
//
//   - a comparison mentioning len(b)/cap(b) (any side, any operator —
//     the early-return `if len(b) < hdrSize` and the short-circuit
//     `if len(b) != 13 || b[0] != magic` both count, because the CFG
//     splits short-circuit operands into separate blocks);
//   - a `range b` header (the loop variable is bounded by construction);
//   - the stdlib bounds-hint `_ = b[k]`, which panics early and lets
//     the compiler elide the later checks (the getHdr/putHdr shape).
//
// This is the static face of what FuzzShardMapDecode's truncated /
// overcount corpus entries probe dynamically: a fixed-width read the
// fuzzer has to get lucky to catch becomes a deterministic diagnostic.
// Only parameters are monitored — struct-field buffers (transport ring
// cursors) manage their bounds across calls and stay covered by the
// runtime checks and fuzzers.
package wirebounds

import (
	"go/ast"
	"go/types"

	"hatrpc/internal/analyzers/framework"
	"hatrpc/internal/analyzers/internal/lintutil"
)

// Analyzer is the wirebounds check.
var Analyzer = &framework.Analyzer{
	Name: "wirebounds",
	Doc: "require indexing/slicing of []byte parameters in codec packages to be " +
		"dominated by a length check on the same buffer",
	Run: run,
}

// codecTails are the package tails holding wire codecs.
var codecTails = map[string]bool{"thrift": true, "cluster": true, "engine": true}

func run(pass *framework.Pass) (any, error) {
	if !codecTails[lintutil.PkgTail(pass.Pkg.Path())] {
		return nil, nil
	}
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
				checkFunc(pass, fd)
			}
		}
	}
	return nil, nil
}

// byteSliceParams collects the function's []byte parameter objects.
func byteSliceParams(pass *framework.Pass, fd *ast.FuncDecl) map[types.Object]bool {
	params := map[types.Object]bool{}
	if fd.Type.Params == nil {
		return params
	}
	for _, field := range fd.Type.Params.List {
		for _, name := range field.Names {
			obj := pass.TypesInfo.Defs[name]
			if obj == nil {
				continue
			}
			if sl, ok := obj.Type().Underlying().(*types.Slice); ok {
				if bt, ok := sl.Elem().Underlying().(*types.Basic); ok && bt.Kind() == types.Byte {
					params[obj] = true
				}
			}
		}
	}
	return params
}

func checkFunc(pass *framework.Pass, fd *ast.FuncDecl) {
	params := byteSliceParams(pass, fd)
	if len(params) == 0 {
		return
	}
	paramOf := func(e ast.Expr) types.Object {
		id, ok := ast.Unparen(e).(*ast.Ident)
		if !ok {
			return nil
		}
		if obj := pass.TypesInfo.Uses[id]; obj != nil && params[obj] {
			return obj
		}
		return nil
	}
	// Collect the monitored accesses: b[i] and b[lo:hi] with a param
	// base. The full-slice b[:] reads no element and is skipped, as is
	// the bounds-hint statement itself (it IS the guard).
	type access struct {
		node ast.Node
		obj  types.Object
	}
	var accesses []access
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.IndexExpr:
			if obj := paramOf(n.X); obj != nil {
				accesses = append(accesses, access{node: n, obj: obj})
			}
		case *ast.SliceExpr:
			if obj := paramOf(n.X); obj != nil && (n.Low != nil || n.High != nil || n.Max != nil) {
				accesses = append(accesses, access{node: n, obj: obj})
			}
		}
		return true
	})
	if len(accesses) == 0 {
		return
	}
	cfg := framework.BuildCFG(fd.Body)
	for _, a := range accesses {
		if isHintStmt(fd, a.node) {
			continue
		}
		obj := a.obj
		guard := func(n ast.Node) bool { return guardsBuffer(pass, n, obj) }
		if cfg.MustPrecede(a.node.Pos(), guard) {
			continue
		}
		pass.Reportf(a.node.Pos(),
			"access to %s is not dominated by a bounds check: guard with a len(%s) "+
				"comparison, a range loop, or a `_ = %s[k]` bounds hint before fixed-width reads",
			obj.Name(), obj.Name(), obj.Name())
	}
}

// isHintStmt reports whether the access is the right-hand side of a
// `_ = b[k]` bounds-hint statement — that statement IS the guard, so
// its own index expression is exempt.
func isHintStmt(fd *ast.FuncDecl, target ast.Node) bool {
	hint := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if hint {
			return false
		}
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		if len(as.Lhs) == 1 && len(as.Rhs) == 1 && ast.Unparen(as.Rhs[0]) == target {
			if id, ok := as.Lhs[0].(*ast.Ident); ok && id.Name == "_" {
				hint = true
			}
			return false
		}
		return true
	})
	return hint
}

// guardsBuffer reports whether the CFG node establishes a bound for the
// buffer object.
func guardsBuffer(pass *framework.Pass, n ast.Node, obj types.Object) bool {
	if rh, ok := n.(*framework.RangeHeader); ok {
		return exprIsObj(pass, rh.Range.X, obj)
	}
	found := false
	ast.Inspect(n, func(m ast.Node) bool {
		if m == nil || found {
			return false
		}
		if _, ok := m.(*ast.FuncLit); ok {
			return false
		}
		switch m := m.(type) {
		case *ast.BinaryExpr:
			if !isComparison(m) {
				return true
			}
			if mentionsLen(pass, m.X, obj) || mentionsLen(pass, m.Y, obj) {
				found = true
				return false
			}
		case *ast.AssignStmt:
			// bounds hint: _ = b[k]
			if len(m.Lhs) == 1 && len(m.Rhs) == 1 {
				if id, ok := m.Lhs[0].(*ast.Ident); ok && id.Name == "_" {
					if ix, ok := ast.Unparen(m.Rhs[0]).(*ast.IndexExpr); ok && exprIsObj(pass, ix.X, obj) {
						found = true
						return false
					}
				}
			}
		}
		return true
	})
	return found
}

func isComparison(be *ast.BinaryExpr) bool {
	switch be.Op.String() {
	case "<", ">", "<=", ">=", "==", "!=":
		return true
	}
	return false
}

// mentionsLen reports whether the expression contains len(obj) or
// cap(obj).
func mentionsLen(pass *framework.Pass, e ast.Expr, obj types.Object) bool {
	found := false
	ast.Inspect(e, func(m ast.Node) bool {
		if found {
			return false
		}
		call, ok := m.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn, ok := ast.Unparen(call.Fun).(*ast.Ident)
		if !ok || (fn.Name != "len" && fn.Name != "cap") || len(call.Args) != 1 {
			return true
		}
		if exprIsObj(pass, call.Args[0], obj) {
			found = true
			return false
		}
		return true
	})
	return found
}

func exprIsObj(pass *framework.Pass, e ast.Expr, obj types.Object) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	return ok && pass.TypesInfo.Uses[id] == obj
}
