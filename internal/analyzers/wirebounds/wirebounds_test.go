package wirebounds_test

import (
	"testing"

	"hatrpc/internal/analyzers/framework/analysistest"
	"hatrpc/internal/analyzers/wirebounds"
)

func TestWireBounds(t *testing.T) {
	analysistest.Run(t, "testdata", wirebounds.Analyzer, "thrift")
}
