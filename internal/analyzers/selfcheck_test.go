package analyzers_test

import (
	"testing"

	"hatrpc/internal/analyzers"
	"hatrpc/internal/analyzers/framework"
)

// TestSuiteCleanOnRepo runs the full hatlint suite over the repository
// itself — the same invocation as `go run ./cmd/hatlint ./...` in CI.
// The suite being clean is a standing invariant: any finding here is
// either a real determinism/protocol bug or a site that needs a
// justified //hatlint:allow.
// TestSuiteComposition pins the analyzer roster: all nine checks, in
// stable order, each with a name (the //hatlint:allow key) and a doc
// string. A dropped registration would silently shrink CI coverage.
func TestSuiteComposition(t *testing.T) {
	want := []string{
		"arenaalias", "epochfence", "errtaxonomy", "maporder",
		"nogoroutine", "obsnames", "simdet", "wirebounds", "wrsigned",
	}
	all := analyzers.All()
	if len(all) != len(want) {
		t.Fatalf("suite has %d analyzers, want %d", len(all), len(want))
	}
	for i, a := range all {
		if a.Name != want[i] {
			t.Errorf("analyzer %d is %q, want %q", i, a.Name, want[i])
		}
		if a.Doc == "" || a.Run == nil {
			t.Errorf("analyzer %q missing doc or run function", a.Name)
		}
	}
}

func TestSuiteCleanOnRepo(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks the whole module; skipped in -short")
	}
	ld, err := framework.NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := ld.Load("./...")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) < 10 {
		t.Fatalf("loaded only %d packages; loader is missing most of the module", len(pkgs))
	}
	for _, d := range framework.Run(pkgs, analyzers.All()) {
		pos := ld.Fset.Position(d.Pos)
		t.Errorf("%s:%d: [%s] %s", pos.Filename, pos.Line, d.Analyzer, d.Message)
	}
}
