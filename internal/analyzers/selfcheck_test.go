package analyzers_test

import (
	"testing"

	"hatrpc/internal/analyzers"
	"hatrpc/internal/analyzers/framework"
)

// TestSuiteCleanOnRepo runs the full hatlint suite over the repository
// itself — the same invocation as `go run ./cmd/hatlint ./...` in CI.
// The suite being clean is a standing invariant: any finding here is
// either a real determinism/protocol bug or a site that needs a
// justified //hatlint:allow.
func TestSuiteCleanOnRepo(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks the whole module; skipped in -short")
	}
	ld, err := framework.NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := ld.Load("./...")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) < 10 {
		t.Fatalf("loaded only %d packages; loader is missing most of the module", len(pkgs))
	}
	for _, d := range framework.Run(pkgs, analyzers.All()) {
		pos := ld.Fset.Position(d.Pos)
		t.Errorf("%s:%d: [%s] %s", pos.Filename, pos.Line, d.Analyzer, d.Message)
	}
}
