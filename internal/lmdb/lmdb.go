// Package lmdb is an embedded key-value store modelled on LMDB (the
// paper's HatKV storage backend, §4.4): a copy-on-write B+tree with MVCC
// — any number of read transactions against immutable snapshots, one
// write transaction at a time — plus LMDB's operational knobs that HatKV
// tunes through hints: the max-readers limit and the commit sync mode.
//
// The store is a pure in-memory data structure: it charges no simulated
// time itself. HatKV translates its operation counts and sync mode into
// CPU/IO costs on the simulation's clock.
package lmdb

import (
	"bytes"
	"errors"
	"fmt"
)

// order is the B+tree fan-out.
const order = 32

// Errors returned by the store.
var (
	ErrReadersFull   = errors.New("lmdb: max readers reached")
	ErrWriterActive  = errors.New("lmdb: another write transaction is active")
	ErrTxnDone       = errors.New("lmdb: transaction already finished")
	ErrReadOnly      = errors.New("lmdb: write on read-only transaction")
	ErrNotFound      = errors.New("lmdb: key not found")
	ErrEnvClosed     = errors.New("lmdb: environment closed")
	ErrInvalidOption = errors.New("lmdb: invalid option")
)

// SyncMode controls commit durability (LMDB's MDB_NOSYNC family).
type SyncMode int

// Sync modes, strongest first.
const (
	// SyncFull fsyncs data and meta on every commit.
	SyncFull SyncMode = iota
	// SyncMeta fsyncs the meta page only (MDB_NOMETASYNC inverse).
	SyncMeta
	// NoSync trusts the OS page cache (MDB_NOSYNC).
	NoSync
)

// Options configures an environment.
type Options struct {
	// MaxReaders bounds concurrent read transactions (the knob HatKV
	// sets from the concurrency hint).
	MaxReaders int
	// Sync is the commit durability mode.
	Sync SyncMode
}

// Stats counts environment activity.
type Stats struct {
	Puts          int64
	Gets          int64
	Deletes       int64
	Commits       int64
	Aborts        int64
	SyncedCommits int64
	PagesCopied   int64 // COW node copies (a proxy for write amplification)
	Entries       int64
	Flushes       int64 // explicit Flush calls
	Recoveries    int64 // CrashRecover reopenings
}

// Env is a database environment.
type Env struct {
	opt     Options
	root    *node
	txnID   uint64
	readers int
	writer  bool
	closed  bool
	Stats   Stats

	// The durable meta root: what a crash rolls back to. Under SyncFull
	// every commit advances it; under SyncMeta it trails the live root
	// by one commit (the meta page is synced but the data pages of the
	// newest commit may still be in the page cache); under NoSync it
	// stays wherever the last synced commit (or Flush) left it.
	durableRoot    *node
	durableTxnID   uint64
	durableEntries int64
}

// Open creates an environment.
func Open(opt Options) (*Env, error) {
	if opt.MaxReaders <= 0 {
		opt.MaxReaders = 126 // LMDB's default
	}
	if opt.Sync < SyncFull || opt.Sync > NoSync {
		return nil, ErrInvalidOption
	}
	return &Env{opt: opt}, nil
}

// SetMaxReaders adjusts the reader limit (hint-driven retuning).
func (e *Env) SetMaxReaders(n int) error {
	if n <= 0 {
		return ErrInvalidOption
	}
	e.opt.MaxReaders = n
	return nil
}

// SetSync adjusts the commit sync mode (hint-driven retuning).
func (e *Env) SetSync(m SyncMode) error {
	if m < SyncFull || m > NoSync {
		return ErrInvalidOption
	}
	e.opt.Sync = m
	return nil
}

// Sync returns the current sync mode.
func (e *Env) Sync() SyncMode { return e.opt.Sync }

// MaxReaders returns the reader limit.
func (e *Env) MaxReaders() int { return e.opt.MaxReaders }

// Readers returns the live read-transaction count.
func (e *Env) Readers() int { return e.readers }

// Close shuts the environment.
func (e *Env) Close() { e.closed = true }

// node is a B+tree node. Leaves hold keys+values; internal nodes hold
// separator keys and children. Nodes are immutable once part of a
// committed root — writers copy on write.
type node struct {
	leaf     bool
	keys     [][]byte
	vals     [][]byte // leaf only
	children []*node  // internal only
}

func (n *node) clone() *node {
	c := &node{leaf: n.leaf}
	c.keys = append([][]byte(nil), n.keys...)
	if n.leaf {
		c.vals = append([][]byte(nil), n.vals...)
	} else {
		c.children = append([]*node(nil), n.children...)
	}
	return c
}

// search returns the index of the first key >= k.
func searchKeys(keys [][]byte, k []byte) int {
	lo, hi := 0, len(keys)
	for lo < hi {
		mid := (lo + hi) / 2
		if bytes.Compare(keys[mid], k) < 0 {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// Txn is a transaction: a snapshot root plus, for writers, COW state.
type Txn struct {
	env      *Env
	root     *node
	readOnly bool
	done     bool
	id       uint64
	size     int64 // entry-count delta
}

// BeginRead opens a read transaction against the current snapshot.
func (e *Env) BeginRead() (*Txn, error) {
	if e.closed {
		return nil, ErrEnvClosed
	}
	if e.readers >= e.opt.MaxReaders {
		return nil, ErrReadersFull
	}
	e.readers++
	return &Txn{env: e, root: e.root, readOnly: true, id: e.txnID}, nil
}

// BeginWrite opens the (single) write transaction.
func (e *Env) BeginWrite() (*Txn, error) {
	if e.closed {
		return nil, ErrEnvClosed
	}
	if e.writer {
		return nil, ErrWriterActive
	}
	e.writer = true
	return &Txn{env: e, root: e.root, id: e.txnID + 1}, nil
}

// ID returns the transaction id (snapshot version).
func (t *Txn) ID() uint64 { return t.id }

// Get returns the value for key, or ErrNotFound.
func (t *Txn) Get(key []byte) ([]byte, error) {
	if t.done {
		return nil, ErrTxnDone
	}
	t.env.Stats.Gets++
	n := t.root
	for n != nil {
		i := searchKeys(n.keys, key)
		if n.leaf {
			if i < len(n.keys) && bytes.Equal(n.keys[i], key) {
				return n.vals[i], nil
			}
			return nil, ErrNotFound
		}
		if i < len(n.keys) && bytes.Compare(key, n.keys[i]) >= 0 {
			i++
		}
		n = n.children[i]
	}
	return nil, ErrNotFound
}

// Put inserts or replaces key → value (the value is copied).
func (t *Txn) Put(key, value []byte) error {
	if t.done {
		return ErrTxnDone
	}
	if t.readOnly {
		return ErrReadOnly
	}
	t.env.Stats.Puts++
	k := append([]byte(nil), key...)
	v := append([]byte(nil), value...)
	if t.root == nil {
		t.root = &node{leaf: true, keys: [][]byte{k}, vals: [][]byte{v}}
		t.size++
		return nil
	}
	root, split, sepKey, added := t.insert(t.root, k, v)
	if added {
		t.size++
	}
	if split != nil {
		t.root = &node{
			leaf:     false,
			keys:     [][]byte{sepKey},
			children: []*node{root, split},
		}
	} else {
		t.root = root
	}
	return nil
}

// insert performs COW insertion, returning the (copied) node, an optional
// split sibling with its separator key, and whether a new entry was
// added.
func (t *Txn) insert(n *node, key, val []byte) (*node, *node, []byte, bool) {
	t.env.Stats.PagesCopied++
	c := n.clone()
	i := searchKeys(c.keys, key)
	if c.leaf {
		added := true
		if i < len(c.keys) && bytes.Equal(c.keys[i], key) {
			c.vals[i] = val
			added = false
		} else {
			c.keys = append(c.keys, nil)
			copy(c.keys[i+1:], c.keys[i:])
			c.keys[i] = key
			c.vals = append(c.vals, nil)
			copy(c.vals[i+1:], c.vals[i:])
			c.vals[i] = val
		}
		if len(c.keys) <= order {
			return c, nil, nil, added
		}
		mid := len(c.keys) / 2
		right := &node{
			leaf: true,
			keys: append([][]byte(nil), c.keys[mid:]...),
			vals: append([][]byte(nil), c.vals[mid:]...),
		}
		c.keys = c.keys[:mid]
		c.vals = c.vals[:mid]
		return c, right, right.keys[0], added
	}
	if i < len(c.keys) && bytes.Compare(key, c.keys[i]) >= 0 {
		i++
	}
	child, split, sepKey, added := t.insert(c.children[i], key, val)
	c.children[i] = child
	if split != nil {
		c.keys = append(c.keys, nil)
		copy(c.keys[i+1:], c.keys[i:])
		c.keys[i] = sepKey
		c.children = append(c.children, nil)
		copy(c.children[i+2:], c.children[i+1:])
		c.children[i+1] = split
	}
	if len(c.keys) <= order {
		return c, nil, nil, added
	}
	mid := len(c.keys) / 2
	sep := c.keys[mid]
	right := &node{
		leaf:     false,
		keys:     append([][]byte(nil), c.keys[mid+1:]...),
		children: append([]*node(nil), c.children[mid+1:]...),
	}
	c.keys = c.keys[:mid]
	c.children = c.children[:mid+1]
	return c, right, sep, added
}

// Delete removes key; it returns ErrNotFound if absent. (Rebalancing is
// not performed — deleted slots are compacted lazily, which matches the
// append-mostly YCSB usage.)
func (t *Txn) Delete(key []byte) error {
	if t.done {
		return ErrTxnDone
	}
	if t.readOnly {
		return ErrReadOnly
	}
	t.env.Stats.Deletes++
	root, found := t.remove(t.root, key)
	if !found {
		return ErrNotFound
	}
	t.root = root
	t.size--
	return nil
}

func (t *Txn) remove(n *node, key []byte) (*node, bool) {
	if n == nil {
		return nil, false
	}
	t.env.Stats.PagesCopied++
	c := n.clone()
	i := searchKeys(c.keys, key)
	if c.leaf {
		if i >= len(c.keys) || !bytes.Equal(c.keys[i], key) {
			return n, false
		}
		c.keys = append(c.keys[:i], c.keys[i+1:]...)
		c.vals = append(c.vals[:i], c.vals[i+1:]...)
		return c, true
	}
	if i < len(c.keys) && bytes.Compare(key, c.keys[i]) >= 0 {
		i++
	}
	child, found := t.remove(c.children[i], key)
	if !found {
		return n, false
	}
	c.children[i] = child
	return c, true
}

// Commit publishes the write transaction's root (no-op for readers,
// which just release their slot).
func (t *Txn) Commit() error {
	if t.done {
		return ErrTxnDone
	}
	t.done = true
	e := t.env
	if t.readOnly {
		e.readers--
		return nil
	}
	e.writer = false
	prevRoot, prevTxnID, prevEntries := e.root, e.txnID, e.Stats.Entries
	e.root = t.root
	e.txnID = t.id
	e.Stats.Commits++
	e.Stats.Entries += t.size
	switch e.opt.Sync {
	case SyncFull:
		e.Stats.SyncedCommits++
		e.durableRoot, e.durableTxnID, e.durableEntries = e.root, e.txnID, e.Stats.Entries
	case SyncMeta:
		// Meta synced, data pages possibly not: the previous commit is
		// the newest state guaranteed to survive a crash.
		e.Stats.SyncedCommits++
		if prevTxnID > e.durableTxnID {
			e.durableRoot, e.durableTxnID, e.durableEntries = prevRoot, prevTxnID, prevEntries
		}
	}
	return nil
}

// Abort discards the transaction.
func (t *Txn) Abort() {
	if t.done {
		return
	}
	t.done = true
	if t.readOnly {
		t.env.readers--
		return
	}
	t.env.writer = false
	t.env.Stats.Aborts++
}

// Entries returns the committed entry count.
func (e *Env) Entries() int64 { return e.Stats.Entries }

// TxnID returns the id of the last committed transaction.
func (e *Env) TxnID() uint64 { return e.txnID }

// DurableTxnID returns the id of the newest transaction guaranteed to
// survive a crash (the fsynced meta root).
func (e *Env) DurableTxnID() uint64 { return e.durableTxnID }

// Flush forces a full sync regardless of the sync mode (LMDB's
// mdb_env_sync): everything committed so far becomes durable.
func (e *Env) Flush() error {
	if e.closed {
		return ErrEnvClosed
	}
	e.durableRoot, e.durableTxnID, e.durableEntries = e.root, e.txnID, e.Stats.Entries
	e.Stats.Flushes++
	return nil
}

// CrashRecover models abrupt process death plus reopen: commits beyond
// the last fsynced meta root are lost (how many depends on the sync
// mode in effect when they committed), live transactions vanish with
// the process, and the environment reopens from the durable root. It
// returns the number of committed transactions rolled back. Activity
// counters in Stats are process-lifetime observability and are
// deliberately not rolled back; Entries is state and is.
func (e *Env) CrashRecover() (lostTxns uint64) {
	lostTxns = e.txnID - e.durableTxnID
	e.root = e.durableRoot
	e.txnID = e.durableTxnID
	e.Stats.Entries = e.durableEntries
	e.readers = 0
	e.writer = false
	e.closed = false
	e.Stats.Recoveries++
	return lostTxns
}

// ---------------------------------------------------------------------------
// Cursor

// Cursor iterates keys in order within a transaction's snapshot.
type Cursor struct {
	stack []cursorFrame
	valid bool
}

type cursorFrame struct {
	n   *node
	idx int
}

// Seek positions the cursor at the first key >= key.
func (t *Txn) Seek(key []byte) *Cursor {
	c := &Cursor{}
	n := t.root
	for n != nil {
		i := searchKeys(n.keys, key)
		if n.leaf {
			c.stack = append(c.stack, cursorFrame{n, i})
			c.valid = i < len(n.keys)
			if !c.valid {
				c.advanceLeaf()
			}
			return c
		}
		if i < len(n.keys) && bytes.Compare(key, n.keys[i]) >= 0 {
			i++
		}
		c.stack = append(c.stack, cursorFrame{n, i})
		n = n.children[i]
	}
	return c
}

// Valid reports whether the cursor points at an entry.
func (c *Cursor) Valid() bool { return c.valid }

// Key returns the current key.
func (c *Cursor) Key() []byte {
	f := c.stack[len(c.stack)-1]
	return f.n.keys[f.idx]
}

// Value returns the current value.
func (c *Cursor) Value() []byte {
	f := c.stack[len(c.stack)-1]
	return f.n.vals[f.idx]
}

// Next advances to the following key.
func (c *Cursor) Next() {
	if !c.valid {
		return
	}
	top := &c.stack[len(c.stack)-1]
	top.idx++
	if top.idx < len(top.n.keys) {
		return
	}
	c.advanceLeaf()
}

// advanceLeaf pops exhausted frames and descends to the next leaf.
func (c *Cursor) advanceLeaf() {
	c.stack = c.stack[:len(c.stack)-1] // drop leaf frame
	for len(c.stack) > 0 {
		top := &c.stack[len(c.stack)-1]
		top.idx++
		if top.idx < len(top.n.children) {
			n := top.n.children[top.idx]
			for !n.leaf {
				c.stack = append(c.stack, cursorFrame{n, 0})
				n = n.children[0]
			}
			c.stack = append(c.stack, cursorFrame{n, 0})
			c.valid = len(n.keys) > 0
			if !c.valid {
				continue
			}
			return
		}
		c.stack = c.stack[:len(c.stack)-1]
	}
	c.valid = false
}

// String describes the env for debugging.
func (e *Env) String() string {
	return fmt.Sprintf("lmdb.Env{txn=%d entries=%d readers=%d sync=%d}",
		e.txnID, e.Stats.Entries, e.readers, e.opt.Sync)
}
