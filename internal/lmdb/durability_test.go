package lmdb

import "testing"

func openSync(t *testing.T, m SyncMode) *Env {
	t.Helper()
	e, err := Open(Options{MaxReaders: 16, Sync: m})
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func has(t *testing.T, e *Env, k string) bool {
	t.Helper()
	r, err := e.BeginRead()
	if err != nil {
		t.Fatal(err)
	}
	defer r.Abort()
	_, err = r.Get([]byte(k))
	if err == ErrNotFound {
		return false
	}
	if err != nil {
		t.Fatal(err)
	}
	return true
}

// TestSyncFullDurableEveryCommit: under SyncFull every commit advances
// the durable root, so a crash loses nothing.
func TestSyncFullDurableEveryCommit(t *testing.T) {
	e := openSync(t, SyncFull)
	for _, k := range []string{"a", "b", "c"} {
		put(t, e, k, "v")
		if e.DurableTxnID() != e.TxnID() {
			t.Fatalf("durable %d != live %d after commit", e.DurableTxnID(), e.TxnID())
		}
	}
	if lost := e.CrashRecover(); lost != 0 {
		t.Errorf("SyncFull crash lost %d txns, want 0", lost)
	}
	for _, k := range []string{"a", "b", "c"} {
		if !has(t, e, k) {
			t.Errorf("key %q lost across SyncFull crash", k)
		}
	}
	if e.Stats.Recoveries != 1 {
		t.Errorf("Recoveries = %d, want 1", e.Stats.Recoveries)
	}
}

// TestSyncMetaTrailsByOne: under SyncMeta the durable root is the
// previous commit — the meta page is synced but the newest data pages
// may not be. A crash loses exactly the last commit.
func TestSyncMetaTrailsByOne(t *testing.T) {
	e := openSync(t, SyncMeta)
	put(t, e, "one", "v") // txn 1; durable still 0
	if e.DurableTxnID() != 0 {
		t.Fatalf("durable after first SyncMeta commit = %d, want 0", e.DurableTxnID())
	}
	put(t, e, "two", "v")   // txn 2; durable = 1
	put(t, e, "three", "v") // txn 3; durable = 2
	if e.DurableTxnID() != 2 {
		t.Fatalf("durable = %d, want 2 (trailing by one)", e.DurableTxnID())
	}
	if lost := e.CrashRecover(); lost != 1 {
		t.Errorf("SyncMeta crash lost %d txns, want 1", lost)
	}
	if !has(t, e, "two") || has(t, e, "three") {
		t.Errorf("after crash: two=%v three=%v, want true/false", has(t, e, "two"), has(t, e, "three"))
	}
	if e.TxnID() != 2 {
		t.Errorf("txnID after recovery = %d, want 2", e.TxnID())
	}
}

// TestNoSyncLossBoundedByFlush: under NoSync nothing becomes durable on
// its own; Flush pins everything committed so far, and a crash loses
// only commits after the flush.
func TestNoSyncLossBoundedByFlush(t *testing.T) {
	e := openSync(t, NoSync)
	keep := []string{"k0", "k1", "k2", "k3", "k4"}
	for _, k := range keep {
		put(t, e, k, "v")
	}
	if e.DurableTxnID() != 0 {
		t.Fatalf("NoSync commits advanced durable to %d", e.DurableTxnID())
	}
	if err := e.Flush(); err != nil {
		t.Fatal(err)
	}
	if e.DurableTxnID() != 5 || e.Stats.Flushes != 1 {
		t.Fatalf("after Flush: durable=%d flushes=%d, want 5/1", e.DurableTxnID(), e.Stats.Flushes)
	}
	lose := []string{"k5", "k6", "k7"}
	for _, k := range lose {
		put(t, e, k, "v")
	}
	if lost := e.CrashRecover(); lost != 3 {
		t.Errorf("crash lost %d txns, want 3", lost)
	}
	for _, k := range keep {
		if !has(t, e, k) {
			t.Errorf("flushed key %q lost", k)
		}
	}
	for _, k := range lose {
		if has(t, e, k) {
			t.Errorf("un-synced key %q survived the crash", k)
		}
	}
	if e.Entries() != int64(len(keep)) {
		t.Errorf("Entries = %d, want %d", e.Entries(), len(keep))
	}
}

// TestSyncMetaNeverRegressesPastFlush: the trailing-by-one rule must not
// move the durable root backwards over a stronger guarantee already
// established by Flush.
func TestSyncMetaNeverRegressesPastFlush(t *testing.T) {
	e := openSync(t, SyncMeta)
	put(t, e, "a", "v") // txn 1
	put(t, e, "b", "v") // txn 2
	put(t, e, "c", "v") // txn 3
	if err := e.Flush(); err != nil {
		t.Fatal(err)
	}
	put(t, e, "d", "v") // txn 4: prev txn 3 == durable 3, no regress
	if e.DurableTxnID() != 3 {
		t.Fatalf("durable regressed to %d after post-Flush commit", e.DurableTxnID())
	}
	put(t, e, "e", "v") // txn 5: prev txn 4 > 3, durable advances
	if e.DurableTxnID() != 4 {
		t.Fatalf("durable = %d, want 4", e.DurableTxnID())
	}
}

// TestCrashRecoverResetsSlots: live readers and the writer die with the
// process — after recovery the env accepts new transactions, even when
// it was closed at the time of the crash.
func TestCrashRecoverResetsSlots(t *testing.T) {
	e := openSync(t, SyncFull)
	put(t, e, "a", "v")
	r1, _ := e.BeginRead()
	r2, _ := e.BeginRead()
	w, _ := e.BeginWrite()
	_ = w.Put([]byte("doomed"), []byte("v"))
	_, _, _ = r1, r2, w
	e.Close()
	e.CrashRecover()
	if e.Readers() != 0 {
		t.Errorf("readers = %d after recovery, want 0", e.Readers())
	}
	w2, err := e.BeginWrite()
	if err != nil {
		t.Fatalf("BeginWrite after recovery: %v", err)
	}
	if err := w2.Put([]byte("b"), []byte("v")); err != nil {
		t.Fatal(err)
	}
	if err := w2.Commit(); err != nil {
		t.Fatal(err)
	}
	if has(t, e, "doomed") {
		t.Error("uncommitted write survived the crash")
	}
	if !has(t, e, "b") {
		t.Error("post-recovery commit missing")
	}
}

// TestSetSyncMidRunRetune: hint-driven retuning flips the sync mode on a
// live env. Commits straddling a SyncFull→NoSync transition must report
// SyncedCommits for exactly the commits made under a syncing mode, and
// the durable root must freeze where the last synced commit left it.
func TestSetSyncMidRunRetune(t *testing.T) {
	e := openSync(t, SyncFull)
	put(t, e, "s1", "v") // synced
	put(t, e, "s2", "v") // synced
	if e.Stats.SyncedCommits != 2 || e.DurableTxnID() != 2 {
		t.Fatalf("under SyncFull: synced=%d durable=%d, want 2/2", e.Stats.SyncedCommits, e.DurableTxnID())
	}
	if err := e.SetSync(NoSync); err != nil {
		t.Fatal(err)
	}
	put(t, e, "n1", "v") // not synced
	put(t, e, "n2", "v") // not synced
	if e.Stats.SyncedCommits != 2 {
		t.Errorf("SyncedCommits = %d after NoSync commits, want still 2", e.Stats.SyncedCommits)
	}
	if e.DurableTxnID() != 2 {
		t.Errorf("durable moved to %d under NoSync, want frozen at 2", e.DurableTxnID())
	}
	if e.Stats.Commits != 4 {
		t.Errorf("Commits = %d, want 4", e.Stats.Commits)
	}
	// Retune back: the first SyncFull commit makes everything before it
	// durable too (it fsyncs the whole data file, not a delta).
	if err := e.SetSync(SyncFull); err != nil {
		t.Fatal(err)
	}
	put(t, e, "s3", "v") // txn 5, synced
	if e.Stats.SyncedCommits != 3 || e.DurableTxnID() != 5 {
		t.Errorf("after retune back: synced=%d durable=%d, want 3/5", e.Stats.SyncedCommits, e.DurableTxnID())
	}
	if lost := e.CrashRecover(); lost != 0 {
		t.Errorf("crash after SyncFull commit lost %d txns, want 0", lost)
	}
	for _, k := range []string{"s1", "s2", "n1", "n2", "s3"} {
		if !has(t, e, k) {
			t.Errorf("key %q lost", k)
		}
	}
}
