package lmdb

import (
	"bytes"
	"fmt"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func open(t *testing.T) *Env {
	t.Helper()
	e, err := Open(Options{MaxReaders: 16, Sync: NoSync})
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func put(t *testing.T, e *Env, k, v string) {
	t.Helper()
	w, err := e.BeginWrite()
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Put([]byte(k), []byte(v)); err != nil {
		t.Fatal(err)
	}
	if err := w.Commit(); err != nil {
		t.Fatal(err)
	}
}

func TestPutGetRoundTrip(t *testing.T) {
	e := open(t)
	put(t, e, "alpha", "1")
	put(t, e, "beta", "2")
	r, err := e.BeginRead()
	if err != nil {
		t.Fatal(err)
	}
	defer r.Abort()
	v, err := r.Get([]byte("alpha"))
	if err != nil || string(v) != "1" {
		t.Fatalf("Get(alpha) = %q, %v", v, err)
	}
	if _, err := r.Get([]byte("gamma")); err != ErrNotFound {
		t.Fatalf("missing key error = %v", err)
	}
}

func TestOverwrite(t *testing.T) {
	e := open(t)
	put(t, e, "k", "old")
	put(t, e, "k", "new")
	r, _ := e.BeginRead()
	defer r.Abort()
	if v, _ := r.Get([]byte("k")); string(v) != "new" {
		t.Fatalf("Get = %q", v)
	}
	if e.Entries() != 1 {
		t.Fatalf("entries = %d, want 1", e.Entries())
	}
}

func TestDelete(t *testing.T) {
	e := open(t)
	put(t, e, "a", "1")
	put(t, e, "b", "2")
	w, _ := e.BeginWrite()
	if err := w.Delete([]byte("a")); err != nil {
		t.Fatal(err)
	}
	if err := w.Delete([]byte("zzz")); err != ErrNotFound {
		t.Fatalf("delete missing = %v", err)
	}
	w.Commit()
	r, _ := e.BeginRead()
	defer r.Abort()
	if _, err := r.Get([]byte("a")); err != ErrNotFound {
		t.Fatal("deleted key still present")
	}
	if v, _ := r.Get([]byte("b")); string(v) != "2" {
		t.Fatal("sibling key lost")
	}
	if e.Entries() != 1 {
		t.Fatalf("entries = %d", e.Entries())
	}
}

func TestLargeTreeSplitsAndStaysSorted(t *testing.T) {
	e := open(t)
	w, _ := e.BeginWrite()
	const N = 5000
	perm := rand.New(rand.NewSource(1)).Perm(N)
	for _, i := range perm {
		if err := w.Put([]byte(fmt.Sprintf("key-%06d", i)), []byte(fmt.Sprintf("val-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	w.Commit()
	r, _ := e.BeginRead()
	defer r.Abort()
	// Every key is readable.
	for i := 0; i < N; i += 97 {
		k := fmt.Sprintf("key-%06d", i)
		v, err := r.Get([]byte(k))
		if err != nil || string(v) != fmt.Sprintf("val-%d", i) {
			t.Fatalf("Get(%s) = %q, %v", k, v, err)
		}
	}
	// Full scan is sorted and complete.
	c := r.Seek(nil)
	count := 0
	var last []byte
	for c.Valid() {
		if last != nil && bytes.Compare(last, c.Key()) >= 0 {
			t.Fatalf("scan out of order at %q after %q", c.Key(), last)
		}
		last = append(last[:0], c.Key()...)
		count++
		c.Next()
	}
	if count != N {
		t.Fatalf("scan found %d keys, want %d", count, N)
	}
}

func TestMVCCSnapshotIsolation(t *testing.T) {
	e := open(t)
	put(t, e, "x", "v1")
	r1, _ := e.BeginRead()
	put(t, e, "x", "v2")
	put(t, e, "y", "only-after-r1")
	r2, _ := e.BeginRead()

	if v, _ := r1.Get([]byte("x")); string(v) != "v1" {
		t.Fatalf("r1 sees %q, want v1 (snapshot violated)", v)
	}
	if _, err := r1.Get([]byte("y")); err != ErrNotFound {
		t.Fatal("r1 sees future key")
	}
	if v, _ := r2.Get([]byte("x")); string(v) != "v2" {
		t.Fatalf("r2 sees %q, want v2", v)
	}
	r1.Abort()
	r2.Abort()
}

func TestSingleWriterEnforced(t *testing.T) {
	e := open(t)
	w1, err := e.BeginWrite()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.BeginWrite(); err != ErrWriterActive {
		t.Fatalf("second writer error = %v", err)
	}
	w1.Abort()
	if _, err := e.BeginWrite(); err != nil {
		t.Fatalf("writer after abort: %v", err)
	}
}

func TestMaxReadersEnforced(t *testing.T) {
	e, _ := Open(Options{MaxReaders: 2, Sync: NoSync})
	r1, err := e.BeginRead()
	if err != nil {
		t.Fatal(err)
	}
	r2, err := e.BeginRead()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.BeginRead(); err != ErrReadersFull {
		t.Fatalf("third reader error = %v", err)
	}
	r1.Abort()
	if _, err := e.BeginRead(); err != nil {
		t.Fatalf("reader after release: %v", err)
	}
	r2.Abort()
}

func TestAbortDiscardsWrites(t *testing.T) {
	e := open(t)
	put(t, e, "stable", "yes")
	w, _ := e.BeginWrite()
	w.Put([]byte("temp"), []byte("gone"))
	w.Abort()
	r, _ := e.BeginRead()
	defer r.Abort()
	if _, err := r.Get([]byte("temp")); err != ErrNotFound {
		t.Fatal("aborted write visible")
	}
	if _, err := r.Get([]byte("stable")); err != nil {
		t.Fatal("stable key lost by abort")
	}
}

func TestTxnDoneErrors(t *testing.T) {
	e := open(t)
	w, _ := e.BeginWrite()
	w.Commit()
	if err := w.Put([]byte("k"), []byte("v")); err != ErrTxnDone {
		t.Fatalf("put after commit = %v", err)
	}
	if err := w.Commit(); err != ErrTxnDone {
		t.Fatalf("double commit = %v", err)
	}
	r, _ := e.BeginRead()
	r.Abort()
	if _, err := r.Get([]byte("k")); err != ErrTxnDone {
		t.Fatalf("get after abort = %v", err)
	}
}

func TestReadOnlyRejectsWrites(t *testing.T) {
	e := open(t)
	r, _ := e.BeginRead()
	defer r.Abort()
	if err := r.Put([]byte("k"), []byte("v")); err != ErrReadOnly {
		t.Fatalf("put on reader = %v", err)
	}
	if err := r.Delete([]byte("k")); err != ErrReadOnly {
		t.Fatalf("delete on reader = %v", err)
	}
}

func TestSeekPositioning(t *testing.T) {
	e := open(t)
	w, _ := e.BeginWrite()
	for _, k := range []string{"b", "d", "f", "h"} {
		w.Put([]byte(k), []byte("v"+k))
	}
	w.Commit()
	r, _ := e.BeginRead()
	defer r.Abort()
	cases := []struct{ seek, want string }{
		{"a", "b"}, {"b", "b"}, {"c", "d"}, {"h", "h"},
	}
	for _, c := range cases {
		cur := r.Seek([]byte(c.seek))
		if !cur.Valid() || string(cur.Key()) != c.want {
			t.Errorf("Seek(%q) at %q valid=%v, want %q", c.seek, cur.Key(), cur.Valid(), c.want)
		}
	}
	if cur := r.Seek([]byte("z")); cur.Valid() {
		t.Errorf("Seek past end valid at %q", cur.Key())
	}
}

func TestCursorRangeScan(t *testing.T) {
	e := open(t)
	w, _ := e.BeginWrite()
	for i := 0; i < 100; i++ {
		w.Put([]byte(fmt.Sprintf("user%03d", i)), []byte{byte(i)})
	}
	w.Commit()
	r, _ := e.BeginRead()
	defer r.Abort()
	cur := r.Seek([]byte("user050"))
	var got []string
	for i := 0; i < 10 && cur.Valid(); i++ {
		got = append(got, string(cur.Key()))
		cur.Next()
	}
	if len(got) != 10 || got[0] != "user050" || got[9] != "user059" {
		t.Fatalf("range scan = %v", got)
	}
}

func TestSyncModeAccounting(t *testing.T) {
	e, _ := Open(Options{MaxReaders: 4, Sync: SyncFull})
	put2 := func() {
		w, _ := e.BeginWrite()
		w.Put([]byte("k"), []byte("v"))
		w.Commit()
	}
	put2()
	if e.Stats.SyncedCommits != 1 {
		t.Fatalf("synced commits = %d", e.Stats.SyncedCommits)
	}
	e.SetSync(NoSync)
	put2()
	if e.Stats.SyncedCommits != 1 {
		t.Fatalf("NoSync commit counted as synced")
	}
	if e.Stats.Commits != 2 {
		t.Fatalf("commits = %d", e.Stats.Commits)
	}
}

func TestOptionValidation(t *testing.T) {
	if _, err := Open(Options{Sync: SyncMode(9)}); err != ErrInvalidOption {
		t.Fatal("bad sync mode accepted")
	}
	e := open(t)
	if err := e.SetMaxReaders(0); err != ErrInvalidOption {
		t.Fatal("zero max readers accepted")
	}
	if err := e.SetSync(SyncMode(-1)); err != ErrInvalidOption {
		t.Fatal("bad sync accepted")
	}
}

func TestEnvClosed(t *testing.T) {
	e := open(t)
	e.Close()
	if _, err := e.BeginRead(); err != ErrEnvClosed {
		t.Fatal("read on closed env")
	}
	if _, err := e.BeginWrite(); err != ErrEnvClosed {
		t.Fatal("write on closed env")
	}
}

// Property: the store agrees with a map reference model under random
// put/delete/get sequences, and scans are always sorted.
func TestPropertyAgainstMapModel(t *testing.T) {
	f := func(ops []uint32) bool {
		e, _ := Open(Options{MaxReaders: 4, Sync: NoSync})
		model := map[string]string{}
		w, _ := e.BeginWrite()
		for _, op := range ops {
			key := fmt.Sprintf("k%03d", op%199)
			switch op % 3 {
			case 0, 1: // put
				val := fmt.Sprintf("v%d", op)
				if w.Put([]byte(key), []byte(val)) != nil {
					return false
				}
				model[key] = val
			case 2: // delete
				err := w.Delete([]byte(key))
				_, existed := model[key]
				if existed != (err == nil) {
					return false
				}
				delete(model, key)
			}
		}
		if w.Commit() != nil {
			return false
		}
		r, _ := e.BeginRead()
		defer r.Abort()
		for k, v := range model {
			got, err := r.Get([]byte(k))
			if err != nil || string(got) != v {
				return false
			}
		}
		// Scan must equal the sorted model keys.
		var want []string
		for k := range model {
			want = append(want, k)
		}
		sort.Strings(want)
		cur := r.Seek(nil)
		var got []string
		for cur.Valid() {
			got = append(got, string(cur.Key()))
			cur.Next()
		}
		if len(got) != len(want) {
			return false
		}
		for i := range got {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 50}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// Property: snapshot reads never observe writes from later transactions.
func TestPropertySnapshotStability(t *testing.T) {
	f := func(n uint8) bool {
		e, _ := Open(Options{MaxReaders: 8, Sync: NoSync})
		w, _ := e.BeginWrite()
		for i := 0; i < int(n%50)+1; i++ {
			w.Put([]byte(fmt.Sprintf("k%d", i)), []byte("v0"))
		}
		w.Commit()
		r, _ := e.BeginRead()
		defer r.Abort()
		before := e.Stats.Gets
		w2, _ := e.BeginWrite()
		for i := 0; i < int(n%50)+1; i++ {
			w2.Put([]byte(fmt.Sprintf("k%d", i)), []byte("v1"))
		}
		w2.Commit()
		_ = before
		for i := 0; i < int(n%50)+1; i++ {
			v, err := r.Get([]byte(fmt.Sprintf("k%d", i)))
			if err != nil || string(v) != "v0" {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
