package verbs

import (
	"bytes"
	"testing"

	"hatrpc/internal/sim"
	"hatrpc/internal/simnet"
)

// testPair builds a two-node cluster with connected QPs and returns both
// sides' resources.
type side struct {
	dev *Device
	pd  *PD
	cq  *CQ
	qp  *QP
}

func testPair(env *sim.Env) (a, b side) {
	cl := simnet.NewCluster(env, simnet.Config{
		Nodes: 2, Cores: 28, Sockets: 2, LinkGbps: 100, PropDelayNs: 600, NUMAPenalty: 1.25,
	})
	cm := DefaultCostModel()
	da := OpenDevice(cl.Node(0), cm)
	db := OpenDevice(cl.Node(1), cm)
	a = side{dev: da, pd: da.AllocPD()}
	b = side{dev: db, pd: db.AllocPD()}
	a.cq = da.CreateCQ()
	b.cq = db.CreateCQ()
	a.qp = da.CreateQP(a.cq, a.cq)
	b.qp = db.CreateQP(b.cq, b.cq)
	a.qp.Connect(b.qp)
	b.qp.Connect(a.qp)
	return a, b
}

func TestSendRecvDeliversPayload(t *testing.T) {
	env := sim.NewEnv(1)
	a, b := testPair(env)
	msg := []byte("hello over simulated RDMA")
	var got []byte
	env.Spawn("server", func(p *sim.Proc) {
		rmr := b.pd.RegisterMRNoCost(4096)
		b.qp.PostRecv(RecvWR{WRID: 9, SGE: SGE{MR: rmr, Off: 0, Len: 4096}})
		wc := b.cq.PollBusy(p)
		if wc.WRID != 9 || wc.Op != OpRecv {
			t.Errorf("wc = %+v, want RECV wrid 9", wc)
		}
		got = append([]byte(nil), rmr.Buf[:wc.ByteLen]...)
	})
	env.Spawn("client", func(p *sim.Proc) {
		smr := a.pd.RegisterMRNoCost(4096)
		copy(smr.Buf, msg)
		a.qp.PostSend(p, &SendWR{WRID: 1, Op: OpSend, SGE: SGE{MR: smr, Len: len(msg)}})
		wc := a.cq.PollBusy(p)
		if wc.WRID != 1 {
			t.Errorf("send completion wrid = %d, want 1", wc.WRID)
		}
	})
	env.Run()
	if !bytes.Equal(got, msg) {
		t.Fatalf("received %q, want %q", got, msg)
	}
}

func TestSendBeforeRecvIsBuffered(t *testing.T) {
	env := sim.NewEnv(1)
	a, b := testPair(env)
	var gotLen int
	env.Spawn("client", func(p *sim.Proc) {
		smr := a.pd.RegisterMRNoCost(128)
		a.qp.PostSend(p, &SendWR{WRID: 1, Op: OpSend, SGE: SGE{MR: smr, Len: 64}})
	})
	env.Spawn("server", func(p *sim.Proc) {
		p.Sleep(1_000_000) // post receive long after the send arrived
		rmr := b.pd.RegisterMRNoCost(128)
		b.qp.PostRecv(RecvWR{WRID: 2, SGE: SGE{MR: rmr, Len: 128}})
		wc := b.cq.PollBusy(p)
		gotLen = wc.ByteLen
	})
	env.Run()
	if gotLen != 64 {
		t.Fatalf("late-posted recv got %d bytes, want 64", gotLen)
	}
}

func TestWriteModifiesRemoteMemory(t *testing.T) {
	env := sim.NewEnv(1)
	a, b := testPair(env)
	rmr := b.pd.RegisterMRNoCost(1024)
	rk := rmr.RKey()
	env.Spawn("client", func(p *sim.Proc) {
		smr := a.pd.RegisterMRNoCost(1024)
		copy(smr.Buf, "one-sided write payload")
		a.qp.PostSend(p, &SendWR{
			WRID: 5, Op: OpWrite,
			SGE:    SGE{MR: smr, Len: 23},
			Remote: rk, RemoteOff: 100,
		})
		wc := a.cq.PollBusy(p)
		if wc.Op != OpWrite {
			t.Errorf("completion op = %v, want WRITE", wc.Op)
		}
	})
	env.Run()
	if string(rmr.Buf[100:123]) != "one-sided write payload" {
		t.Fatalf("remote memory = %q", rmr.Buf[100:123])
	}
}

func TestWriteImmConsumesRecvAndCarriesImm(t *testing.T) {
	env := sim.NewEnv(1)
	a, b := testPair(env)
	rmr := b.pd.RegisterMRNoCost(4096)
	rk := rmr.RKey()
	var wc WC
	env.Spawn("server", func(p *sim.Proc) {
		dummy := b.pd.RegisterMRNoCost(16)
		b.qp.PostRecv(RecvWR{WRID: 77, SGE: SGE{MR: dummy, Len: 0}})
		wc = b.cq.PollBusy(p)
	})
	env.Spawn("client", func(p *sim.Proc) {
		smr := a.pd.RegisterMRNoCost(4096)
		copy(smr.Buf, "imm data")
		a.qp.PostSend(p, &SendWR{
			WRID: 6, Op: OpWriteImm,
			SGE:    SGE{MR: smr, Len: 8},
			Remote: rk, RemoteOff: 0, Imm: 0xBEEF,
		})
	})
	env.Run()
	if !wc.HasImm || wc.Imm != 0xBEEF {
		t.Fatalf("wc = %+v, want imm 0xBEEF", wc)
	}
	if wc.WRID != 77 {
		t.Fatalf("consumed recv wrid = %d, want 77", wc.WRID)
	}
	if string(rmr.Buf[:8]) != "imm data" {
		t.Fatalf("remote buf = %q", rmr.Buf[:8])
	}
}

func TestReadFetchesRemoteMemory(t *testing.T) {
	env := sim.NewEnv(1)
	a, b := testPair(env)
	rmr := b.pd.RegisterMRNoCost(1024)
	copy(rmr.Buf[200:], "remote secret")
	rk := rmr.RKey()
	var got string
	env.Spawn("client", func(p *sim.Proc) {
		lmr := a.pd.RegisterMRNoCost(1024)
		a.qp.PostSend(p, &SendWR{
			WRID: 8, Op: OpRead,
			SGE:    SGE{MR: lmr, Off: 0, Len: 13},
			Remote: rk, RemoteOff: 200,
		})
		wc := a.cq.PollBusy(p)
		if wc.Op != OpRead || wc.ByteLen != 13 {
			t.Errorf("wc = %+v, want READ 13 bytes", wc)
		}
		got = string(lmr.Buf[:13])
	})
	env.Run()
	if got != "remote secret" {
		t.Fatalf("read %q, want %q", got, "remote secret")
	}
}

func TestChainedWRsUseSingleDoorbell(t *testing.T) {
	// Two WRITEs chained must charge exactly one doorbell: the chained
	// post must be cheaper than two separate posts by ~DoorbellNs.
	run := func(chained bool) sim.Time {
		env := sim.NewEnv(1)
		a, b := testPair(env)
		rmr := b.pd.RegisterMRNoCost(4096)
		rk := rmr.RKey()
		var postDone sim.Time
		env.Spawn("client", func(p *sim.Proc) {
			smr := a.pd.RegisterMRNoCost(4096)
			w2 := &SendWR{WRID: 2, Op: OpWrite, SGE: SGE{MR: smr, Len: 64}, Remote: rk, Unsignaled: true}
			w1 := &SendWR{WRID: 1, Op: OpWrite, SGE: SGE{MR: smr, Len: 64}, Remote: rk, Unsignaled: true}
			if chained {
				w1.Next = w2
				a.qp.PostSend(p, w1)
			} else {
				a.qp.PostSend(p, w1)
				a.qp.PostSend(p, w2)
			}
			postDone = p.Now()
		})
		env.Run()
		return postDone
	}
	sep := run(false)
	chain := run(true)
	cm := DefaultCostModel()
	saving := int64(sep - chain)
	if saving < cm.DoorbellNs-20 || saving > cm.DoorbellNs+20 {
		t.Fatalf("chaining saved %dns, want ~%dns (one doorbell)", saving, cm.DoorbellNs)
	}
}

func TestBusyPollBeatsEventPollLatency(t *testing.T) {
	run := func(busy bool) sim.Time {
		env := sim.NewEnv(1)
		a, b := testPair(env)
		var done sim.Time
		env.Spawn("server", func(p *sim.Proc) {
			rmr := b.pd.RegisterMRNoCost(256)
			b.qp.PostRecv(RecvWR{WRID: 1, SGE: SGE{MR: rmr, Len: 256}})
			b.cq.Poll(p, busy)
			done = p.Now()
		})
		env.Spawn("client", func(p *sim.Proc) {
			smr := a.pd.RegisterMRNoCost(256)
			a.qp.PostSend(p, &SendWR{WRID: 2, Op: OpSend, SGE: SGE{MR: smr, Len: 64}, Unsignaled: true})
		})
		env.Run()
		return done
	}
	busy, event := run(true), run(false)
	if busy >= event {
		t.Fatalf("busy poll (%d) not faster than event poll (%d)", busy, event)
	}
	cm := DefaultCostModel()
	if int64(event-busy) < cm.InterruptWakeNs/2 {
		t.Fatalf("event poll penalty only %dns, want >= %dns", event-busy, cm.InterruptWakeNs/2)
	}
}

func TestInlineSendSkipsDMA(t *testing.T) {
	// An inline send of a small payload should complete sooner than a
	// non-inline one (no DMA read of the payload).
	run := func(inline bool) sim.Time {
		env := sim.NewEnv(1)
		a, _ := testPair(env)
		var done sim.Time
		env.Spawn("client", func(p *sim.Proc) {
			smr := a.pd.RegisterMRNoCost(4096)
			a.qp.PostSend(p, &SendWR{WRID: 1, Op: OpSend, SGE: SGE{MR: smr, Len: 4000}, Inline: inline})
			a.cq.PollBusy(p)
			done = p.Now()
		})
		env.Run()
		return done
	}
	if run(true) >= run(false) {
		t.Fatal("inline send not cheaper than DMA send")
	}
}

func TestLargeTransferBandwidthBound(t *testing.T) {
	// A 1 MB WRITE at 100 Gbps should take at least the serialization
	// time: 1 MB / 12.5 GB/s = 80 µs (and the DMA adds more).
	env := sim.NewEnv(1)
	a, b := testPair(env)
	rmr := b.pd.RegisterMRNoCost(1 << 20)
	rk := rmr.RKey()
	var done sim.Time
	env.Spawn("client", func(p *sim.Proc) {
		smr := a.pd.RegisterMRNoCost(1 << 20)
		a.qp.PostSend(p, &SendWR{WRID: 1, Op: OpWrite, SGE: SGE{MR: smr, Len: 1 << 20}, Remote: rk})
		a.cq.PollBusy(p)
		done = p.Now()
	})
	env.Run()
	if done < 80_000 {
		t.Fatalf("1MB write completed in %dns, faster than line rate", done)
	}
	if done > 400_000 {
		t.Fatalf("1MB write took %dns, unreasonably slow", done)
	}
}

func TestRegisterMRChargesTime(t *testing.T) {
	env := sim.NewEnv(1)
	a, _ := testPair(env)
	var elapsed sim.Time
	env.Spawn("p", func(p *sim.Proc) {
		start := p.Now()
		mr := a.pd.RegisterMR(p, 1<<20)
		elapsed = p.Now() - start
		if mr.Len() != 1<<20 {
			t.Errorf("MR len = %d", mr.Len())
		}
	})
	env.Run()
	cm := DefaultCostModel()
	want := cm.RegisterTime(1 << 20)
	if int64(elapsed) != want {
		t.Fatalf("registration took %dns, want %dns", elapsed, want)
	}
}

func TestQPOrderingFIFO(t *testing.T) {
	// Messages posted on one QP must arrive in order.
	env := sim.NewEnv(1)
	a, b := testPair(env)
	var order []uint32
	env.Spawn("server", func(p *sim.Proc) {
		rmr := b.pd.RegisterMRNoCost(65536)
		for i := 0; i < 8; i++ {
			b.qp.PostRecv(RecvWR{WRID: uint64(i), SGE: SGE{MR: rmr, Off: i * 8192, Len: 8192}})
		}
		for i := 0; i < 8; i++ {
			wc := b.cq.PollBusy(p)
			order = append(order, uint32(wc.WRID))
		}
	})
	env.Spawn("client", func(p *sim.Proc) {
		smr := a.pd.RegisterMRNoCost(65536)
		for i := 0; i < 8; i++ {
			a.qp.PostSend(p, &SendWR{WRID: uint64(i), Op: OpSend, SGE: SGE{MR: smr, Len: 100 * (i + 1)}, Unsignaled: true})
		}
	})
	env.Run()
	if len(order) != 8 {
		t.Fatalf("received %d messages, want 8", len(order))
	}
	for i, w := range order {
		if w != uint32(i) {
			t.Fatalf("out-of-order delivery: %v", order)
		}
	}
}

func TestOutboundReadCostlierThanInboundServe(t *testing.T) {
	// RFP's observation: a node issuing N READs spends more NIC time than
	// a node serving N inbound READs. Compare TX busy time.
	env := sim.NewEnv(1)
	a, b := testPair(env)
	rmr := b.pd.RegisterMRNoCost(64 * 1024)
	rk := rmr.RKey()
	env.Spawn("client", func(p *sim.Proc) {
		lmr := a.pd.RegisterMRNoCost(64 * 1024)
		for i := 0; i < 32; i++ {
			a.qp.PostSend(p, &SendWR{WRID: uint64(i), Op: OpRead, SGE: SGE{MR: lmr, Len: 512}, Remote: rk})
			a.cq.PollBusy(p)
		}
	})
	env.Run()
	_ = b
	// The initiator's engine charged OutboundOneSidedExtra per READ; this
	// is observable as a latency floor per op.
	cm := DefaultCostModel()
	if cm.OutboundOneSidedExtraNs <= cm.InboundServeNs {
		t.Fatal("cost model must make outbound one-sided dearer than inbound")
	}
}

func TestOpcodeString(t *testing.T) {
	cases := map[Opcode]string{
		OpSend: "SEND", OpWrite: "WRITE", OpWriteImm: "WRITE_WITH_IMM",
		OpRead: "READ", OpRecv: "RECV", OpSendImm: "SEND_WITH_IMM",
	}
	for op, want := range cases {
		if op.String() != want {
			t.Errorf("%d.String() = %q, want %q", int(op), op.String(), want)
		}
	}
	if Opcode(99).String() != "Opcode(99)" {
		t.Errorf("unknown opcode string = %q", Opcode(99).String())
	}
}
