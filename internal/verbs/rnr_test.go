package verbs

import (
	"testing"

	"hatrpc/internal/sim"
)

// TestRNRNakDelaysUntilRecvPosted: with finite RECV depth armed, a SEND
// arriving before any RECV is posted draws RNR NAKs and is retried on
// the RNR timer until a RECV appears — delivery succeeds, later, and the
// NAKs are counted.
func TestRNRNakDelaysUntilRecvPosted(t *testing.T) {
	env := sim.NewEnv(1)
	a, b := testPair(env)
	b.qp.SetRNR(6)
	var deliveredAt sim.Time
	env.Spawn("client", func(p *sim.Proc) {
		smr := a.pd.RegisterMRNoCost(128)
		a.qp.PostSend(p, &SendWR{WRID: 1, Op: OpSend, SGE: SGE{MR: smr, Len: 64}})
	})
	env.Spawn("server", func(p *sim.Proc) {
		p.Sleep(30_000) // one RNR timer period after the send arrives
		rmr := b.pd.RegisterMRNoCost(128)
		b.qp.PostRecv(RecvWR{WRID: 2, SGE: SGE{MR: rmr, Len: 128}})
		wc := b.cq.PollBusy(p)
		if wc.WRID != 2 || wc.Status != WCSuccess || wc.ByteLen != 64 {
			t.Errorf("wc = %+v, want successful 64-byte RECV on wrid 2", wc)
		}
		deliveredAt = p.Now()
	})
	env.Run()
	if b.dev.RnrNaks() == 0 {
		t.Error("no RNR NAKs counted for a SEND into an empty armed ring")
	}
	if deliveredAt == 0 {
		t.Error("message never delivered")
	}
	// The delivery had to wait for at least one full RNR timer period.
	if deliveredAt < sim.Time(DefaultCostModel().RnrTimerNs) {
		t.Errorf("delivered at t=%d, before one RNR timer period", deliveredAt)
	}
}

// TestRNRRetryExceededFailsSender: a receiver that never posts a RECV
// exhausts the sender's rnr_retry budget. The sender must observe a
// WCRNRRetryExceeded completion — even for an unsignaled WR, errors are
// never silent — and its QP enters the error state.
func TestRNRRetryExceededFailsSender(t *testing.T) {
	env := sim.NewEnv(1)
	a, b := testPair(env)
	const retries = 3
	b.qp.SetRNR(retries)
	env.Spawn("client", func(p *sim.Proc) {
		smr := a.pd.RegisterMRNoCost(128)
		a.qp.PostSend(p, &SendWR{WRID: 7, Op: OpSend, SGE: SGE{MR: smr, Len: 64}, Unsignaled: true})
		wc := a.cq.PollBusy(p)
		if wc.WRID != 7 || wc.Status != WCRNRRetryExceeded {
			t.Errorf("wc = %+v, want WCRNRRetryExceeded on wrid 7", wc)
		}
		if !a.qp.Errored() {
			t.Error("sender QP not errored after RNR retry exhaustion")
		}
	})
	env.Run()
	// Initial attempt + `retries` retransmissions all drew NAKs.
	if got := b.dev.RnrNaks(); got != retries+1 {
		t.Errorf("RnrNaks = %d, want %d", got, retries+1)
	}
}

// TestRNRDisabledKeepsLegacyBuffering: without SetRNR the legacy
// behaviour holds — a SEND with no posted RECV parks until one appears,
// no NAKs, no errors.
func TestRNRDisabledKeepsLegacyBuffering(t *testing.T) {
	env := sim.NewEnv(1)
	a, b := testPair(env)
	env.Spawn("client", func(p *sim.Proc) {
		smr := a.pd.RegisterMRNoCost(128)
		a.qp.PostSend(p, &SendWR{WRID: 1, Op: OpSend, SGE: SGE{MR: smr, Len: 64}})
	})
	env.Spawn("server", func(p *sim.Proc) {
		p.Sleep(1_000_000)
		rmr := b.pd.RegisterMRNoCost(128)
		b.qp.PostRecv(RecvWR{WRID: 2, SGE: SGE{MR: rmr, Len: 128}})
		wc := b.cq.PollBusy(p)
		if wc.Status != WCSuccess || wc.ByteLen != 64 {
			t.Errorf("wc = %+v, want buffered delivery", wc)
		}
	})
	env.Run()
	if got := b.dev.RnrNaks(); got != 0 {
		t.Errorf("RnrNaks = %d on an unarmed QP, want 0", got)
	}
	if a.qp.Errored() {
		t.Error("sender QP errored without RNR arming")
	}
}

// TestRecoverIdempotentOnHealthyQP locks in that Recover on a
// non-errored QP is a free no-op: no virtual time is charged and the QP
// stays usable. The engine's circuit-breaker half-open probe calls this
// speculatively on every probe.
func TestRecoverIdempotentOnHealthyQP(t *testing.T) {
	env := sim.NewEnv(1)
	a, b := testPair(env)
	env.Spawn("client", func(p *sim.Proc) {
		before := p.Now()
		a.qp.Recover(p)
		a.qp.Recover(p)
		if p.Now() != before {
			t.Errorf("Recover on a healthy QP charged %d ns, want 0", p.Now()-before)
		}
		if a.qp.Errored() {
			t.Error("Recover errored a healthy QP")
		}
		// The QP still works end to end.
		smr := a.pd.RegisterMRNoCost(128)
		a.qp.PostSend(p, &SendWR{WRID: 1, Op: OpSend, SGE: SGE{MR: smr, Len: 32}})
	})
	env.Spawn("server", func(p *sim.Proc) {
		rmr := b.pd.RegisterMRNoCost(128)
		b.qp.PostRecv(RecvWR{WRID: 2, SGE: SGE{MR: rmr, Len: 128}})
		wc := b.cq.PollBusy(p)
		if wc.Status != WCSuccess || wc.ByteLen != 32 {
			t.Errorf("post-Recover delivery failed: %+v", wc)
		}
	})
	env.Run()
}

// TestRNRWriteImmAlsoNaks: WRITE_WITH_IMM consumes a RECV for its
// immediate, so it is subject to RNR NAKs on an armed QP too.
func TestRNRWriteImmAlsoNaks(t *testing.T) {
	env := sim.NewEnv(1)
	a, b := testPair(env)
	b.qp.SetRNR(2)
	rmr := b.pd.RegisterMRNoCost(4096)
	env.Spawn("client", func(p *sim.Proc) {
		smr := a.pd.RegisterMRNoCost(4096)
		copy(smr.Buf, "imm payload")
		a.qp.PostSend(p, &SendWR{
			WRID: 3, Op: OpWriteImm,
			SGE:    SGE{MR: smr, Len: 11},
			Remote: rmr.RKey(), Imm: 42,
		})
	})
	env.Spawn("server", func(p *sim.Proc) {
		p.Sleep(25_000)
		b.qp.PostRecv(RecvWR{WRID: 4, SGE: SGE{MR: rmr, Len: 0}})
		wc := b.cq.PollBusy(p)
		if wc.Status != WCSuccess || !wc.HasImm || wc.Imm != 42 {
			t.Errorf("wc = %+v, want imm 42 delivered after RNR backoff", wc)
		}
		if string(rmr.Buf[:11]) != "imm payload" {
			t.Errorf("payload = %q", rmr.Buf[:11])
		}
	})
	env.Run()
	if b.dev.RnrNaks() == 0 {
		t.Error("no RNR NAKs for WRITE_IMM into an empty armed ring")
	}
}
