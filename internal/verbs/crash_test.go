package verbs

import (
	"testing"

	"hatrpc/internal/sim"
	"hatrpc/internal/simnet"
)

// crashPair is testPair plus the cluster handle, for tests that crash
// nodes.
func crashPair(env *sim.Env) (cl *simnet.Cluster, a, b side) {
	cl = simnet.NewCluster(env, simnet.Config{
		Nodes: 2, Cores: 28, Sockets: 2, LinkGbps: 100, PropDelayNs: 600, NUMAPenalty: 1.25,
	})
	cm := DefaultCostModel()
	da := OpenDevice(cl.Node(0), cm)
	db := OpenDevice(cl.Node(1), cm)
	a = side{dev: da, pd: da.AllocPD()}
	b = side{dev: db, pd: db.AllocPD()}
	a.cq = da.CreateCQ()
	b.cq = db.CreateCQ()
	a.qp = da.CreateQP(a.cq, a.cq)
	b.qp = db.CreateQP(b.cq, b.cq)
	a.qp.Connect(b.qp)
	b.qp.Connect(a.qp)
	return cl, a, b
}

// TestCrashFailsSurvivorSend: a SEND issued while the peer node is down
// draws no ACK; the survivor's RC transport retries until the timeout
// and completes the WR with WCRetryExceeded — never silently.
func TestCrashFailsSurvivorSend(t *testing.T) {
	env := sim.NewEnv(21)
	cl, a, _ := crashPair(env)
	env.At(100, cl.Node(1).Crash)
	var wc WC
	env.Spawn("client", func(p *sim.Proc) {
		p.Sleep(1000) // after the crash
		smr := a.pd.RegisterMRNoCost(256)
		a.qp.PostSend(p, &SendWR{WRID: 7, Op: OpSend, SGE: SGE{MR: smr, Len: 64}})
		wc = a.cq.PollBusy(p)
	})
	env.Run()
	if wc.WRID != 7 || wc.Status != WCRetryExceeded {
		t.Errorf("wc = %+v, want wrid 7 WCRetryExceeded", wc)
	}
	if !a.qp.Errored() {
		t.Error("survivor QP should be in the error state")
	}
}

// TestCrashErrsLocalQPs: the crashed node's own device is dead — its
// QPs are errored and a post after reboot-less recovery attempts fails
// the WR immediately (the NIC lost its protection state with the power).
func TestCrashErrsLocalQPs(t *testing.T) {
	env := sim.NewEnv(22)
	cl, _, b := crashPair(env)
	env.At(100, cl.Node(1).Crash)
	env.Spawn("watch", func(p *sim.Proc) { p.Sleep(1000) })
	env.Run()
	if !b.dev.Dead() {
		t.Fatal("device on crashed node should be dead")
	}
	if !b.qp.Errored() {
		t.Error("QPs on crashed device should be errored")
	}
}

// TestRebootedNodeNaksOldQP: after the peer restarts, a SEND on a QP
// connected to the *previous boot's* QP fails fast with WCRemoteInvalid
// (the reborn NIC knows nothing of the old connection) instead of
// burning the whole retry timeout.
func TestRebootedNodeNaksOldQP(t *testing.T) {
	env := sim.NewEnv(23)
	cl, a, _ := crashPair(env)
	env.At(100, cl.Node(1).Crash)
	env.At(200, cl.Node(1).Restart)
	var wc WC
	var done sim.Time
	env.Spawn("client", func(p *sim.Proc) {
		p.Sleep(1000) // after the restart
		smr := a.pd.RegisterMRNoCost(256)
		a.qp.PostSend(p, &SendWR{WRID: 8, Op: OpSend, SGE: SGE{MR: smr, Len: 64}})
		wc = a.cq.PollBusy(p)
		done = p.Now()
	})
	env.Run()
	if wc.WRID != 8 || wc.Status != WCRemoteInvalid {
		t.Errorf("wc = %+v, want wrid 8 WCRemoteInvalid", wc)
	}
	// Fast NAK: well under the 20µs retry timeout.
	if done > 1000+sim.Time(DefaultCostModel().RetryTimeoutNs) {
		t.Errorf("NAK took until %d — slower than the retry-timeout path", done)
	}
}

// TestStaleRkeyAgainstRebootedDeviceFailsRemoteInvalid: an rkey minted
// by the peer's previous boot must not grant access to the reborn
// node's memory — one-sided WRITEs against it fail with
// WCRemoteInvalid even though QPs to the new device work fine.
func TestStaleRkeyAgainstRebootedDeviceFailsRemoteInvalid(t *testing.T) {
	env := sim.NewEnv(24)
	cl, a, b := crashPair(env)
	staleRK := b.pd.RegisterMRNoCost(4096).RKey() // minted in boot epoch 0

	var db2 *Device
	var wcStale, wcFresh WC
	cl.Node(1).SetRestart(func(p *sim.Proc) {
		db2 = OpenDevice(cl.Node(1), DefaultCostModel())
		pd2 := db2.AllocPD()
		cq2 := db2.CreateCQ()
		qp2 := db2.CreateQP(cq2, cq2)
		// Reconnect both sides to the new boot.
		qp2.Connect(a.qp)
		a.qp.Connect(qp2)
		a.qp.Recover(p)
		freshRK := pd2.RegisterMRNoCost(4096).RKey()
		// Stale-epoch rkey: NAKed. Posted unsignaled — the model
		// completes signaled WRITEs locally at wire time, so only an
		// unsignaled WR observes the NAK as its sole completion (the
		// engine's one-sided WRITEs are all unsignaled).
		smr := a.pd.RegisterMRNoCost(4096)
		a.qp.PostSend(p, &SendWR{WRID: 1, Op: OpWrite, SGE: SGE{MR: smr, Len: 64}, Remote: staleRK, Unsignaled: true})
		wcStale = a.cq.PollBusy(p)
		a.qp.Recover(p)
		// Fresh rkey from the new boot: works.
		a.qp.PostSend(p, &SendWR{WRID: 2, Op: OpWrite, SGE: SGE{MR: smr, Len: 64}, Remote: freshRK})
		wcFresh = a.cq.PollBusy(p)
	})
	env.At(100, cl.Node(1).Crash)
	env.At(200, cl.Node(1).Restart)
	env.Run()
	if wcStale.Status != WCRemoteInvalid {
		t.Errorf("stale-rkey WRITE: %+v, want WCRemoteInvalid", wcStale)
	}
	if wcFresh.Status != WCSuccess {
		t.Errorf("fresh-rkey WRITE: %+v, want WCSuccess", wcFresh)
	}
	if db2.Epoch() != 1 {
		t.Errorf("reborn device epoch = %d, want 1", db2.Epoch())
	}
}

// TestReadAgainstDownNodeFailsTyped: a one-sided READ issued while the
// target is down completes with WCRetryExceeded (silence), and against
// a rebooted target with WCRemoteInvalid (NAK).
func TestReadAgainstDownNodeFailsTyped(t *testing.T) {
	env := sim.NewEnv(25)
	cl, a, b := crashPair(env)
	rk := b.pd.RegisterMRNoCost(4096).RKey()
	var down, reborn WC
	env.At(100, cl.Node(1).Crash)
	env.At(400_000, cl.Node(1).Restart)
	env.Spawn("client", func(p *sim.Proc) {
		p.Sleep(1000)
		lmr := a.pd.RegisterMRNoCost(4096)
		a.qp.PostSend(p, &SendWR{WRID: 1, Op: OpRead, SGE: SGE{MR: lmr, Len: 64}, Remote: rk})
		down = a.cq.PollBusy(p)
		p.Sleep(500_000) // past the restart
		a.qp.Recover(p)
		a.qp.PostSend(p, &SendWR{WRID: 2, Op: OpRead, SGE: SGE{MR: lmr, Len: 64}, Remote: rk})
		reborn = a.cq.PollBusy(p)
	})
	env.Run()
	if down.Status != WCRetryExceeded {
		t.Errorf("READ while down: %+v, want WCRetryExceeded", down)
	}
	if reborn.Status != WCRemoteInvalid {
		t.Errorf("READ after reboot: %+v, want WCRemoteInvalid", reborn)
	}
}

// TestRKeyEpochTagging: RKey captures the minting device's boot epoch;
// WCRemoteInvalid has a distinct wire spelling.
func TestRKeyEpochTagging(t *testing.T) {
	env := sim.NewEnv(26)
	_, a, _ := crashPair(env)
	env.Spawn("noop", func(p *sim.Proc) {})
	env.Run()
	rk := a.pd.RegisterMRNoCost(64).RKey()
	if !a.dev.rkeyValid(rk) {
		t.Error("fresh rkey should be valid at its own device")
	}
	if WCRemoteInvalid.String() != "REMOTE_INVALID" {
		t.Errorf("WCRemoteInvalid.String() = %q", WCRemoteInvalid.String())
	}
}
