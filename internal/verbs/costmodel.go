package verbs

// CostModel collects the calibrated hardware constants that drive the
// simulation. The values approximate the paper's testbed (§5.1):
// ConnectX-5 IB-EDR (100 Gbps) NICs on PCIe gen3 x16, 28-core Skylake.
// Absolute values matter less than their ratios — the ratios put the
// protocol crossovers (eager vs rendezvous, busy vs event polling,
// one-sided inbound vs outbound) where the paper observed them.
type CostModel struct {
	// DoorbellNs is the CPU cost of one MMIO doorbell write (ringing the
	// NIC). Chained work requests amortize this: one doorbell posts the
	// whole chain — the Chained-Write-Send advantage (§3.1).
	DoorbellNs int64

	// WQEProcessNs is NIC occupancy to fetch and decode one WQE.
	WQEProcessNs int64

	// OutboundOneSidedExtraNs is the additional initiator-side NIC
	// occupancy for *issuing* a one-sided READ versus serving one.
	// RFP's key observation (§3.2): out-bound RDMA is much more expensive
	// than in-bound RDMA. (WRITEs pipeline like sends and do not pay it.)
	OutboundOneSidedExtraNs int64

	// EagerSlotMgmtNs is per-slot CPU work of the eager protocol beyond
	// the copy itself: ring bookkeeping, receive re-posting, and credit
	// flow control. Charged once per slot at each end.
	EagerSlotMgmtNs int64

	// InboundServeNs is target-NIC occupancy to serve an inbound READ or
	// land an inbound WRITE without CPU involvement.
	InboundServeNs int64

	// PCIeBytesPerNs is host-memory DMA bandwidth over PCIe.
	PCIeBytesPerNs float64

	// MemcpyBytesPerNs is single-core CPU copy bandwidth; eager protocols
	// pay it twice (user buffer → slot, slot → user buffer).
	MemcpyBytesPerNs float64

	// PollGranularityNs is the spin-loop iteration period: the expected
	// delay between a CQE landing and a busy poller noticing it, before
	// load scaling.
	PollGranularityNs int64

	// TimesliceNs is the OS scheduler quantum. When more busy pollers
	// than cores exist, a descheduled spinner cannot observe its CQE
	// until it is scheduled again — this is what collapses busy polling
	// under over-subscription (Fig. 5), far beyond the pure PS slowdown.
	TimesliceNs int64

	// InterruptWakeNs is the event-polling wakeup path: NIC interrupt,
	// kernel, futex wake. [51] measured ~4% CPU at the price of latency.
	InterruptWakeNs int64

	// MRRegisterBaseNs and MRRegisterPerPageNs are memory-registration
	// costs (pinning + NIC page-table update).
	MRRegisterBaseNs    int64
	MRRegisterPerPageNs int64

	// WireHeaderBytes is per-message wire overhead (LRH/GRH/BTH/ICRC).
	WireHeaderBytes int

	// CQEDmaNs is the NIC cost to DMA a completion entry to the host.
	CQEDmaNs int64

	// RetryTimeoutNs is how long the RC transport retries a lost packet
	// before giving up: the gap between a message being dropped by the
	// fabric and the requester QP raising a retry-exceeded completion and
	// entering the error state. Only exercised under fault injection.
	RetryTimeoutNs int64

	// QPRecoverNs is the CPU cost to cycle an errored QP back to RTS
	// (modify-QP through RESET→INIT→RTR→RTS).
	QPRecoverNs int64

	// RnrTimerNs is the receiver-not-ready backoff: when a SEND (or
	// WRITE_WITH_IMM) arrives at a QP with finite RECV depth enabled and
	// no posted RECV, the responder answers with an RNR NAK and the
	// requester waits this long before retransmitting. Real RC timers
	// span 10 µs – 655 ms; the simulation pins the low end so the cost is
	// painful relative to a normal operation (~5 µs) but recoverable.
	// Only exercised on QPs armed via SetRNR.
	RnrTimerNs int64
}

// DefaultCostModel returns constants calibrated for the paper's testbed.
func DefaultCostModel() *CostModel {
	return &CostModel{
		DoorbellNs:              250,
		WQEProcessNs:            80,
		OutboundOneSidedExtraNs: 350,
		EagerSlotMgmtNs:         450,
		InboundServeNs:          60,
		PCIeBytesPerNs:          14.0, // ~14 GB/s effective DMA
		MemcpyBytesPerNs:        10.0, // ~10 GB/s single-core copy
		PollGranularityNs:       40,
		TimesliceNs:             8000,
		InterruptWakeNs:         4000,
		MRRegisterBaseNs:        5000,
		MRRegisterPerPageNs:     400,
		WireHeaderBytes:         40,
		CQEDmaNs:                60,
		RetryTimeoutNs:          20000,
		QPRecoverNs:             4000,
		RnrTimerNs:              20000,
	}
}

// DMATime returns the host-DMA time for size bytes.
func (cm *CostModel) DMATime(size int) int64 {
	if size <= 0 {
		return 0
	}
	return int64(float64(size) / cm.PCIeBytesPerNs)
}

// MemcpyTime returns the CPU time to copy size bytes.
func (cm *CostModel) MemcpyTime(size int) int64 {
	if size <= 0 {
		return 0
	}
	return int64(float64(size) / cm.MemcpyBytesPerNs)
}

// BusyDetectNs returns the busy-poll completion-detection delay at the
// given CPU load factor: spin granularity scaled by load, plus scheduler
// rotation once spinners outnumber cores.
func (cm *CostModel) BusyDetectNs(loadFactor float64) float64 {
	d := float64(cm.PollGranularityNs) * loadFactor
	if loadFactor > 1 {
		d += (loadFactor - 1) * float64(cm.TimesliceNs)
	}
	return d
}

// RegisterTime returns the cost of registering an MR of size bytes.
func (cm *CostModel) RegisterTime(size int) int64 {
	pages := int64((size + 4095) / 4096)
	return cm.MRRegisterBaseNs + pages*cm.MRRegisterPerPageNs
}
