package verbs

import (
	"errors"
	"testing"

	"hatrpc/internal/sim"
	"hatrpc/internal/simnet"
)

// srqFixture builds a two-node cluster with n client QPs on node 0, each
// connected to its own server QP on node 1, where every server QP drains
// receives from one shared SRQ.
type srqFixture struct {
	cl      *simnet.Cluster
	da, db  *Device
	pda     *PD
	pdb     *PD
	srq     *SRQ
	cli     []*QP
	srv     []*QP
	cliCQ   []*CQ
	srvCQ   []*CQ
	recvMR  *MR
	slotLen int
}

func newSRQFixture(env *sim.Env, n int) *srqFixture {
	f := &srqFixture{slotLen: 1024}
	f.cl = simnet.NewCluster(env, simnet.Config{
		Nodes: 2, Cores: 28, Sockets: 2, LinkGbps: 100, PropDelayNs: 600, NUMAPenalty: 1.25,
	})
	cm := DefaultCostModel()
	f.da = OpenDevice(f.cl.Node(0), cm)
	f.db = OpenDevice(f.cl.Node(1), cm)
	f.pda, f.pdb = f.da.AllocPD(), f.db.AllocPD()
	f.srq = f.db.CreateSRQ()
	f.recvMR = f.pdb.RegisterMRNoCost(n * 8 * f.slotLen)
	for i := 0; i < n; i++ {
		ccq, scq := f.da.CreateCQ(), f.db.CreateCQ()
		cqp := f.da.CreateQP(ccq, ccq)
		sqp := f.db.CreateQPSRQ(scq, scq, f.srq)
		if err := cqp.Connect(sqp); err != nil {
			panic(err)
		}
		if err := sqp.Connect(cqp); err != nil {
			panic(err)
		}
		f.cli, f.srv = append(f.cli, cqp), append(f.srv, sqp)
		f.cliCQ, f.srvCQ = append(f.cliCQ, ccq), append(f.srvCQ, scq)
	}
	return f
}

// postSlots replenishes the shared ring with count WQEs carved from the
// fixture MR; wrids start at base.
func (f *srqFixture) postSlots(base uint64, count int) {
	for i := 0; i < count; i++ {
		off := (int(base) + i) * f.slotLen % len(f.recvMR.Buf)
		f.srq.PostRecv(RecvWR{WRID: base + uint64(i), SGE: SGE{MR: f.recvMR, Off: off, Len: f.slotLen}})
	}
}

// TestSRQFanInDelivery: sends from three clients all drain the one
// shared ring, each completing on its own QP's receive CQ, and the
// shared depth accounts for every consumed slot.
func TestSRQFanInDelivery(t *testing.T) {
	env := sim.NewEnv(31)
	f := newSRQFixture(env, 3)
	f.postSlots(0, 6)
	if f.srq.Depth() != 6 || f.srq.QPs() != 3 {
		t.Fatalf("depth=%d qps=%d, want 6/3", f.srq.Depth(), f.srq.QPs())
	}
	for i := range f.cli {
		i := i
		env.Spawn("client", func(p *sim.Proc) {
			smr := f.pda.RegisterMRNoCost(256)
			smr.Buf[0] = byte('a' + i)
			f.cli[i].PostSend(p, &SendWR{WRID: uint64(100 + i), Op: OpSend, SGE: SGE{MR: smr, Len: 64}, Unsignaled: true})
		})
	}
	got := make([]WC, 3)
	for i := range f.srv {
		i := i
		env.Spawn("server", func(p *sim.Proc) {
			got[i] = f.srvCQ[i].PollBusy(p)
		})
	}
	env.Run()
	for i, wc := range got {
		if wc.Op != OpRecv || wc.Status != WCSuccess {
			t.Fatalf("srv %d: wc = %+v, want successful RECV", i, wc)
		}
		if wc.QP != f.srv[i] {
			t.Errorf("srv %d: completion on wrong QP", i)
		}
	}
	if f.srq.Depth() != 3 {
		t.Fatalf("shared depth after 3 sends = %d, want 3", f.srq.Depth())
	}
	// Ring accounting: remaining posted + unpolled recv completions must
	// equal the posted total (all completions were polled above).
	unpolled := 0
	for _, cq := range f.srvCQ {
		unpolled += cq.QueuedRecvs()
	}
	if f.srq.Depth()+unpolled != 3 {
		t.Fatalf("ring leak: depth %d + unpolled %d != 3", f.srq.Depth(), unpolled)
	}
}

// TestSRQPendingMatchAttachOrder: with RNR disabled, packets that beat
// the buffers queue per-QP; replenishing the SRQ matches them in attach
// order, deterministically.
func TestSRQPendingMatchAttachOrder(t *testing.T) {
	env := sim.NewEnv(32)
	f := newSRQFixture(env, 2)
	env.Spawn("clients", func(p *sim.Proc) {
		smr := f.pda.RegisterMRNoCost(256)
		// Second-attached QP's packet is sent first.
		f.cli[1].PostSend(p, &SendWR{WRID: 11, Op: OpSend, SGE: SGE{MR: smr, Len: 32}, Unsignaled: true})
		f.cli[0].PostSend(p, &SendWR{WRID: 10, Op: OpSend, SGE: SGE{MR: smr, Len: 32}, Unsignaled: true})
	})
	var first, second WC
	var jumped bool
	env.Spawn("server", func(p *sim.Proc) {
		p.Sleep(1_000_000) // both packets are pending before any buffer exists
		// One buffer: it must match the first-attached QP's pending packet
		// even though the second-attached QP's packet arrived first.
		f.postSlots(0, 1)
		first = f.srvCQ[0].PollBusy(p)
		if _, ok := f.srvCQ[1].TryPoll(); ok {
			jumped = true
		}
		f.postSlots(1, 1)
		second = f.srvCQ[1].PollBusy(p)
	})
	env.Run()
	if first.Op != OpRecv || first.Status != WCSuccess {
		t.Fatalf("first buffer: wc = %+v, want RECV on first-attached QP", first)
	}
	if jumped {
		t.Fatal("second-attached QP matched before the first (arrival order, want attach order)")
	}
	if second.Op != OpRecv || second.Status != WCSuccess {
		t.Fatalf("second buffer: wc = %+v, want RECV on second-attached QP", second)
	}
}

// TestSRQRNRNakRecovers: an armed SRQ NAKs a send that finds the shared
// ring empty; replenishing within the retry budget delivers it.
func TestSRQRNRNakRecovers(t *testing.T) {
	env := sim.NewEnv(33)
	f := newSRQFixture(env, 1)
	f.srq.SetRNR(8)
	var wc WC
	env.Spawn("client", func(p *sim.Proc) {
		smr := f.pda.RegisterMRNoCost(256)
		f.cli[0].PostSend(p, &SendWR{WRID: 1, Op: OpSend, SGE: SGE{MR: smr, Len: 64}, Unsignaled: true})
	})
	env.Spawn("server", func(p *sim.Proc) {
		p.Sleep(50_000) // a few RNR timer rounds
		f.postSlots(0, 1)
		wc = f.srvCQ[0].PollBusy(p)
	})
	env.Run()
	if wc.Op != OpRecv || wc.Status != WCSuccess {
		t.Fatalf("wc = %+v, want delivered RECV after RNR backoff", wc)
	}
	if f.db.RnrNaks() == 0 {
		t.Fatal("no RNR NAKs counted on the shared ring")
	}
}

// TestSRQRNRExhaustionErrorsSender: when the shared ring stays empty for
// the whole rnr_retry budget the sender's WR fails typed and its QP
// errors — same contract as the per-QP ring.
func TestSRQRNRExhaustionErrorsSender(t *testing.T) {
	env := sim.NewEnv(34)
	f := newSRQFixture(env, 2)
	f.srq.SetRNR(3)
	var wc WC
	env.Spawn("client", func(p *sim.Proc) {
		smr := f.pda.RegisterMRNoCost(256)
		f.cli[1].PostSend(p, &SendWR{WRID: 9, Op: OpSend, SGE: SGE{MR: smr, Len: 64}, Unsignaled: true})
		wc = f.cliCQ[1].PollBusy(p) // error CQE raised even though unsignaled
	})
	env.Run()
	if wc.WRID != 9 || wc.Status != WCRNRRetryExceeded {
		t.Fatalf("wc = %+v, want wrid 9 WCRNRRetryExceeded", wc)
	}
	if !f.cli[1].Errored() {
		t.Fatal("sender QP should be errored after RNR exhaustion")
	}
	if f.cli[0].Errored() {
		t.Fatal("sibling QP sharing the SRQ must be unaffected")
	}
}

// TestSRQPostRecvOnAttachedQPPanics: the private-ring entry point is
// invalid once a QP drains an SRQ.
func TestSRQPostRecvOnAttachedQPPanics(t *testing.T) {
	env := sim.NewEnv(35)
	f := newSRQFixture(env, 1)
	env.Spawn("noop", func(p *sim.Proc) {})
	env.Run()
	defer func() {
		if recover() == nil {
			t.Fatal("PostRecv on an SRQ-attached QP should panic")
		}
	}()
	f.srv[0].PostRecv(RecvWR{WRID: 1, SGE: SGE{MR: f.recvMR, Len: 64}})
}

// TestSRQCrashClearsSharedRing: a device crash drops the shared ring
// with the rest of the NIC's protection state.
func TestSRQCrashClearsSharedRing(t *testing.T) {
	env := sim.NewEnv(36)
	f := newSRQFixture(env, 2)
	f.postSlots(0, 4)
	env.At(100, f.cl.Node(1).Crash)
	env.Spawn("watch", func(p *sim.Proc) { p.Sleep(1000) })
	env.Run()
	if f.srq.Depth() != 0 {
		t.Fatalf("shared ring depth after crash = %d, want 0", f.srq.Depth())
	}
	if !f.srv[0].Errored() || !f.srv[1].Errored() {
		t.Fatal("SRQ-attached QPs should be errored after crash")
	}
}

// TestConnectLiveQPRefused: re-targeting a connected, healthy QP is a
// typed error; re-connecting to the same peer is an idempotent no-op;
// an errored QP (or one whose peer died) may be re-pointed.
func TestConnectLiveQPRefused(t *testing.T) {
	env := sim.NewEnv(37)
	cl, a, b := crashPair(env)
	intruder := a.dev.CreateQP(a.cq, a.cq)
	if err := b.qp.Connect(intruder); !errors.Is(err, ErrQPConnected) {
		t.Fatalf("re-target of live QP: err = %v, want ErrQPConnected", err)
	}
	if b.qp.Peer() != a.qp {
		t.Fatal("refused Connect must leave the old pairing intact")
	}
	if err := b.qp.Connect(a.qp); err != nil {
		t.Fatalf("idempotent re-connect to same peer: %v", err)
	}
	// After the peer's node crashes, re-pointing is legitimate.
	env.At(100, cl.Node(0).Crash)
	env.Spawn("watch", func(p *sim.Proc) { p.Sleep(1000) })
	env.Run()
	if err := b.qp.Connect(intruder); err != nil {
		t.Fatalf("re-connect after peer crash: %v", err)
	}
}
