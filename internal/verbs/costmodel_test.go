package verbs

import (
	"testing"

	"hatrpc/internal/sim"
)

// TestPollBusyQueuedCompletionIsFree pins the PollBusy cost-model fix: a
// completion that already landed before the poller arrived is returned
// with zero detection delay. BusyDetectNs models the gap between a CQE
// landing and a *spinning* poller noticing it; when the CQE precedes the
// poll there was no spin and no gap, so charging it double-counted the
// detection cost on every back-to-back completion.
func TestPollBusyQueuedCompletionIsFree(t *testing.T) {
	env := sim.NewEnv(1)
	a, b := testPair(env)
	var elapsed sim.Time
	env.Spawn("server", func(p *sim.Proc) {
		rmr := b.pd.RegisterMRNoCost(256)
		b.qp.PostRecv(RecvWR{WRID: 1, SGE: SGE{MR: rmr, Len: 256}})
		p.Sleep(1_000_000) // CQE lands long before the poll
		if b.cq.Depth() != 1 {
			t.Errorf("CQ depth = %d before poll, want 1", b.cq.Depth())
		}
		start := p.Now()
		wc := b.cq.PollBusy(p)
		elapsed = p.Now() - start
		if wc.Op != OpRecv || wc.Status != WCSuccess {
			t.Errorf("wc = %+v, want successful RECV", wc)
		}
	})
	env.Spawn("client", func(p *sim.Proc) {
		smr := a.pd.RegisterMRNoCost(256)
		a.qp.PostSend(p, &SendWR{WRID: 2, Op: OpSend, SGE: SGE{MR: smr, Len: 64}, Unsignaled: true})
	})
	env.Run()
	if elapsed != 0 {
		t.Fatalf("PollBusy on a non-empty CQ took %dns, want 0 (no spin occurred)", elapsed)
	}
}

// TestPollBusyEmptyCQStillChargesDetect is the other half of the fix: a
// poller that really spins on an empty CQ still pays the full
// BusyDetectNs delay after the CQE lands.
func TestPollBusyEmptyCQStillChargesDetect(t *testing.T) {
	env := sim.NewEnv(1)
	a, b := testPair(env)
	const sendAt = 50_000
	var done sim.Time
	var lf float64
	env.Spawn("server", func(p *sim.Proc) {
		rmr := b.pd.RegisterMRNoCost(256)
		b.qp.PostRecv(RecvWR{WRID: 1, SGE: SGE{MR: rmr, Len: 256}})
		lf = b.dev.node.CPU.LoadFactor()
		b.cq.PollBusy(p) // CQ empty: the poller spins until the send lands
		done = p.Now()
	})
	env.Spawn("client", func(p *sim.Proc) {
		p.Sleep(sendAt)
		smr := a.pd.RegisterMRNoCost(256)
		a.qp.PostSend(p, &SendWR{WRID: 2, Op: OpSend, SGE: SGE{MR: smr, Len: 64}, Unsignaled: true})
	})
	env.Run()
	// The spinner adds itself to the load before measuring, so the charged
	// factor reflects one more runnable spinner than the idle snapshot.
	cm := DefaultCostModel()
	minDetect := sim.Time(cm.BusyDetectNs(lf))
	if done < sendAt+minDetect {
		t.Fatalf("spinning PollBusy finished at %dns, want >= %dns (send + detect)", done, sendAt+minDetect)
	}
}

// TestPollNDrainsBudget covers the batched drain: PollN moves up to
// len(out) queued completions in one call, charges no virtual time, never
// blocks, and leaves the remainder queued in FIFO order.
func TestPollNDrainsBudget(t *testing.T) {
	env := sim.NewEnv(1)
	a, b := testPair(env)
	const msgs = 5
	env.Spawn("server", func(p *sim.Proc) {
		rmr := b.pd.RegisterMRNoCost(msgs * 256)
		for i := 0; i < msgs; i++ {
			b.qp.PostRecv(RecvWR{WRID: uint64(i), SGE: SGE{MR: rmr, Off: i * 256, Len: 256}})
		}
		p.Sleep(1_000_000) // let every CQE land
		if b.cq.Depth() != msgs {
			t.Errorf("CQ depth = %d, want %d", b.cq.Depth(), msgs)
		}
		start := p.Now()
		var buf [3]WC
		n := b.cq.PollN(buf[:])
		if n != 3 {
			t.Errorf("PollN(3) = %d, want 3", n)
		}
		for i := 0; i < n; i++ {
			if buf[i].WRID != uint64(i) {
				t.Errorf("buf[%d].WRID = %d, want %d (FIFO)", i, buf[i].WRID, i)
			}
		}
		if b.cq.Depth() != msgs-3 {
			t.Errorf("depth after PollN = %d, want %d", b.cq.Depth(), msgs-3)
		}
		n = b.cq.PollN(buf[:])
		if n != msgs-3 {
			t.Errorf("second PollN = %d, want %d", n, msgs-3)
		}
		if buf[0].WRID != 3 || buf[1].WRID != 4 {
			t.Errorf("tail WRIDs = %d,%d, want 3,4", buf[0].WRID, buf[1].WRID)
		}
		if n := b.cq.PollN(buf[:]); n != 0 {
			t.Errorf("PollN on empty CQ = %d, want 0", n)
		}
		if n := b.cq.PollN(nil); n != 0 {
			t.Errorf("PollN(nil) = %d, want 0", n)
		}
		if p.Now() != start {
			t.Errorf("PollN advanced time by %dns, want 0", p.Now()-start)
		}
	})
	env.Spawn("client", func(p *sim.Proc) {
		smr := a.pd.RegisterMRNoCost(256)
		for i := 0; i < msgs; i++ {
			a.qp.PostSend(p, &SendWR{WRID: uint64(10 + i), Op: OpSend, SGE: SGE{MR: smr, Len: 64}, Unsignaled: true})
		}
	})
	env.Run()
}
