// Package verbs is a functional, virtual-time simulation of the RDMA
// verbs user-space API: protection domains, registered memory regions,
// reliable-connected queue pairs, completion queues with busy and event
// polling, two-sided SEND/RECV and one-sided WRITE / READ /
// WRITE_WITH_IMM, inline sends, and chained work requests.
//
// Data really moves: a WRITE copies bytes into the remote memory region,
// a SEND lands in the buffer named by the consumed RECV WQE. Time is
// virtual: every doorbell, WQE fetch, DMA, wire serialization, completion
// and interrupt is charged per the CostModel, so protocol comparisons
// reproduce the relative behaviour measured on real hardware while
// remaining deterministic.
package verbs

import (
	"fmt"

	"hatrpc/internal/obs"
	"hatrpc/internal/sim"
	"hatrpc/internal/simnet"
)

// Opcode identifies a work-request or completion type.
type Opcode int

// Work request opcodes.
const (
	OpSend Opcode = iota
	OpSendImm
	OpWrite
	OpWriteImm
	OpRead
	OpRecv // completion-side only
)

func (o Opcode) String() string {
	switch o {
	case OpSend:
		return "SEND"
	case OpSendImm:
		return "SEND_WITH_IMM"
	case OpWrite:
		return "WRITE"
	case OpWriteImm:
		return "WRITE_WITH_IMM"
	case OpRead:
		return "READ"
	case OpRecv:
		return "RECV"
	}
	return fmt.Sprintf("Opcode(%d)", int(o))
}

// Device is the simulated RNIC of one node. All QPs, CQs and MRs hang off
// a device; a single FIFO send engine per device models the NIC's WQE
// processing pipeline.
type Device struct {
	node *simnet.Node
	cm   *CostModel
	env  *sim.Env

	txq    *sim.Queue[*txWork]
	nextMR uint32
	nextQP uint32

	vm  *verbsMetrics // nil until SetObs
	trc *obs.Tracer   // nil unless the registry carries a tracer
}

// verbsMetrics caches the device's instrument pointers so hot paths pay
// an array index instead of a registry lookup.
type verbsMetrics struct {
	tx     [opRecvBound]*obs.Counter // WQEs processed, by opcode
	cqe    [opRecvBound]*obs.Counter // completions delivered, by opcode
	inline *obs.Counter              // inline sends (payload captured at post)
	dma    *obs.Counter              // sends paying the host-DMA fetch
}

const opRecvBound = int(OpRecv) + 1

// SetObs attaches an observability registry to the device: per-opcode
// WQE and completion counters, inline-vs-DMA accounting, and — when the
// registry carries a tracer — doorbell→completion spans for signaled
// work requests. Counters are shared by name across devices attached to
// the same registry.
func (d *Device) SetObs(r *obs.Registry) {
	if r == nil {
		d.vm, d.trc = nil, nil
		return
	}
	m := &verbsMetrics{
		inline: r.Counter("verbs.tx.inline"),
		dma:    r.Counter("verbs.tx.dma"),
	}
	for op := 0; op < opRecvBound; op++ {
		m.tx[op] = r.Counter("verbs.tx." + Opcode(op).String())
		m.cqe[op] = r.Counter("verbs.cqe." + Opcode(op).String())
	}
	d.vm = m
	d.trc = r.Tracer()
}

// OpenDevice attaches a simulated RNIC to the node and starts its
// processing engines.
func OpenDevice(node *simnet.Node, cm *CostModel) *Device {
	if cm == nil {
		cm = DefaultCostModel()
	}
	d := &Device{node: node, cm: cm, env: node.Cluster().Env()}
	d.txq = sim.NewQueue[*txWork](d.env)
	d.env.Spawn(fmt.Sprintf("nic%d-tx", node.ID()), d.txEngine)
	return d
}

// Node returns the node this device is attached to.
func (d *Device) Node() *simnet.Node { return d.node }

// CostModel returns the device's hardware constants.
func (d *Device) CostModel() *CostModel { return d.cm }

// AllocPD allocates a protection domain.
func (d *Device) AllocPD() *PD { return &PD{dev: d} }

// PD is a protection domain.
type PD struct {
	dev *Device
}

// Device returns the owning device.
func (pd *PD) Device() *Device { return pd.dev }

// MR is a registered memory region. Buf is the actual backing store:
// one-sided operations read and write it directly.
type MR struct {
	pd      *PD
	Buf     []byte
	lkey    uint32
	onWrite func()
	revoked bool
}

// SetRevoked marks the region's remote access as withdrawn (or restores
// it). While revoked, an inbound one-sided WRITE is discarded and an
// inbound READ fails with a remote-access error at the initiator — the
// behaviour of a real rkey invalidation. Buffer pools revoke regions on
// release so a stale rkey held by an in-flight transfer can never
// corrupt a recycled buffer.
func (mr *MR) SetRevoked(b bool) { mr.revoked = b }

// Revoked reports whether remote access to the region is withdrawn.
func (mr *MR) Revoked() bool { return mr.revoked }

// SetWriteNotify registers a callback invoked whenever an inbound
// one-sided WRITE lands in this region. Memory-polling protocols (HERD,
// RFP) use it as the simulation equivalent of a CPU spin loop observing
// the write: the *detection cost* is still charged by the poller.
func (mr *MR) SetWriteNotify(fn func()) { mr.onWrite = fn }

// RegisterMR pins and registers a fresh buffer of the given size,
// charging the registration cost to the calling process.
func (pd *PD) RegisterMR(p *sim.Proc, size int) *MR {
	pd.dev.nextMR++
	mr := &MR{pd: pd, Buf: make([]byte, size), lkey: pd.dev.nextMR}
	p.Sleep(sim.Duration(pd.dev.cm.RegisterTime(size)))
	return mr
}

// RegisterMRNoCost registers without charging time; for test fixtures.
func (pd *PD) RegisterMRNoCost(size int) *MR {
	pd.dev.nextMR++
	return &MR{pd: pd, Buf: make([]byte, size), lkey: pd.dev.nextMR}
}

// RKey is the remote-access handle an application exchanges out-of-band
// so peers can target this MR with one-sided operations.
type RKey struct {
	mr *MR
}

// RKey returns the remote-access handle for the region.
func (mr *MR) RKey() RKey { return RKey{mr: mr} }

// Len returns the region size.
func (mr *MR) Len() int { return len(mr.Buf) }

// WCStatus is the completion status of a work request.
type WCStatus int

const (
	// WCSuccess: the work request completed normally.
	WCSuccess WCStatus = iota
	// WCRetryExceeded: the RC transport exhausted its retries — the
	// message (or its response) was lost in the fabric. The owning QP has
	// transitioned to the error state.
	WCRetryExceeded
	// WCFlushed: the work request was posted to a QP already in the
	// error state and was flushed without touching the wire.
	WCFlushed
)

func (s WCStatus) String() string {
	switch s {
	case WCSuccess:
		return "SUCCESS"
	case WCRetryExceeded:
		return "RETRY_EXC"
	case WCFlushed:
		return "FLUSH_ERR"
	}
	return fmt.Sprintf("WCStatus(%d)", int(s))
}

// WC is a work completion. Status is WCSuccess (zero) unless the work
// request failed; on failure ByteLen/Imm are meaningless.
type WC struct {
	WRID    uint64
	Op      Opcode
	ByteLen int
	Imm     uint32
	HasImm  bool
	Status  WCStatus
	QP      *QP
}

// CQ is a completion queue supporting both polling disciplines.
type CQ struct {
	dev    *Device
	done   []WC
	sig    *sim.Signal
	notify func()
}

// SetNotify registers a callback invoked on every completion push, in
// addition to waking blocked pollers. Engines multiplexing several event
// sources (CQ + memory polling) use it to drive a combined wait signal.
func (cq *CQ) SetNotify(fn func()) { cq.notify = fn }

// CreateCQ allocates a completion queue.
func (d *Device) CreateCQ() *CQ {
	return &CQ{dev: d, sig: sim.NewSignal(d.env)}
}

func (cq *CQ) push(wc WC) {
	if m := cq.dev.vm; m != nil && int(wc.Op) < opRecvBound {
		m.cqe[wc.Op].Inc()
	}
	cq.done = append(cq.done, wc)
	cq.sig.Fire()
	if cq.notify != nil {
		cq.notify()
	}
}

// TryPoll returns one completion if immediately available.
func (cq *CQ) TryPoll() (WC, bool) {
	if len(cq.done) == 0 {
		return WC{}, false
	}
	wc := cq.done[0]
	cq.done = cq.done[1:]
	return wc, true
}

// PollBusy spin-polls for the next completion. While waiting the caller
// occupies a core (registered as persistent CPU load), and the detection
// delay after a CQE lands scales with the node's load factor — this is
// what makes busy polling collapse under over-subscription (Fig. 5).
func (cq *CQ) PollBusy(p *sim.Proc) WC {
	cpu := cq.dev.node.CPU
	cpu.AddLoad(1)
	for len(cq.done) == 0 {
		cq.sig.Wait(p)
	}
	p.Sleep(sim.Duration(cq.dev.cm.BusyDetectNs(cpu.LoadFactor())))
	cpu.RemoveLoad(1)
	wc := cq.done[0]
	cq.done = cq.done[1:]
	return wc
}

// WaitEvent blocks for the next completion using the interrupt-driven
// path: no CPU is burned while waiting, but the wakeup pays the interrupt
// cost (scaled by load when the node is saturated).
func (cq *CQ) WaitEvent(p *sim.Proc) WC {
	for len(cq.done) == 0 {
		cq.sig.Wait(p)
	}
	cpu := cq.dev.node.CPU
	p.Sleep(sim.Duration(float64(cq.dev.cm.InterruptWakeNs) * cpu.LoadFactor()))
	wc := cq.done[0]
	cq.done = cq.done[1:]
	return wc
}

// Poll retrieves one completion with the given discipline.
func (cq *CQ) Poll(p *sim.Proc, busy bool) WC {
	if busy {
		return cq.PollBusy(p)
	}
	return cq.WaitEvent(p)
}

// Depth returns the number of undelivered completions.
func (cq *CQ) Depth() int { return len(cq.done) }

// SGE is a scatter/gather element naming a slice of a registered region.
type SGE struct {
	MR  *MR
	Off int
	Len int
}

func (s SGE) bytes() []byte { return s.MR.Buf[s.Off : s.Off+s.Len] }

// SendWR is a send-queue work request. Chained requests (Next) are posted
// with a single doorbell.
type SendWR struct {
	WRID       uint64
	Op         Opcode
	SGE        SGE
	Remote     RKey // WRITE/READ/WRITE_IMM target
	RemoteOff  int
	Imm        uint32
	Inline     bool // payload copied at post time; skips DMA read
	Unsignaled bool
	Next       *SendWR
}

// RecvWR is a receive-queue work request.
type RecvWR struct {
	WRID uint64
	SGE  SGE
}

// QP is a reliable-connected queue pair.
type QP struct {
	dev     *Device
	id      uint32
	sendCQ  *CQ
	recvCQ  *CQ
	peer    *QP
	recvq   []RecvWR
	pending []*packet // arrived SEND/WRITE_IMM packets awaiting a RECV WQE
	errored bool      // retry-exceeded; posts flush until Recover
}

// CreateQP allocates a queue pair bound to the given completion queues.
func (d *Device) CreateQP(sendCQ, recvCQ *CQ) *QP {
	d.nextQP++
	return &QP{dev: d, id: d.nextQP, sendCQ: sendCQ, recvCQ: recvCQ}
}

// Connect pairs two QPs (the RC connection). Applications exchange QP
// handles out-of-band (simnet endpoints) just as real code exchanges QPNs
// and LIDs, then both sides call Connect.
func (qp *QP) Connect(peer *QP) { qp.peer = peer }

// Peer returns the connected remote QP.
func (qp *QP) Peer() *QP { return qp.peer }

// Device returns the owning device.
func (qp *QP) Device() *Device { return qp.dev }

// SendCQ returns the send completion queue.
func (qp *QP) SendCQ() *CQ { return qp.sendCQ }

// RecvCQ returns the receive completion queue.
func (qp *QP) RecvCQ() *CQ { return qp.recvCQ }

// PostRecv posts a receive WQE. If a two-sided packet is already pending
// (arrived before the buffer), it is matched immediately.
func (qp *QP) PostRecv(wr RecvWR) {
	if len(qp.pending) > 0 {
		pkt := qp.pending[0]
		qp.pending = qp.pending[1:]
		qp.completeRecv(pkt, wr)
		return
	}
	qp.recvq = append(qp.recvq, wr)
}

// Errored reports whether the QP is in the error state (a prior work
// request exhausted transport retries). Posts to an errored QP complete
// with WCFlushed until Recover is called.
func (qp *QP) Errored() bool { return qp.errored }

// Recover cycles an errored QP back to ready-to-send (the modify-QP
// RESET→INIT→RTR→RTS walk), charging the caller's CPU. A no-op on a
// healthy QP.
func (qp *QP) Recover(p *sim.Proc) {
	if !qp.errored {
		return
	}
	qp.dev.node.CPU.Compute(p, sim.Duration(qp.dev.cm.QPRecoverNs))
	qp.errored = false
}

// PostSend posts a work-request chain with one doorbell, charging the
// caller's CPU for the MMIO write. Inline payloads are captured at post
// time. On an errored QP nothing reaches the wire: each signaled request
// in the chain completes with WCFlushed.
func (qp *QP) PostSend(p *sim.Proc, wr *SendWR) {
	if qp.peer == nil {
		panic("verbs: PostSend on unconnected QP")
	}
	// One doorbell posts the entire chain (the Chained-Write-Send saving).
	qp.dev.node.CPU.Compute(p, sim.Duration(qp.dev.cm.DoorbellNs))
	if qp.errored {
		for w := wr; w != nil; w = w.Next {
			if w.Unsignaled {
				continue
			}
			id, op := w.WRID, w.Op
			qp.dev.env.After(sim.Duration(qp.dev.cm.CQEDmaNs), func() {
				qp.sendCQ.push(WC{WRID: id, Op: op, Status: WCFlushed, QP: qp})
			})
		}
		return
	}
	doorbell := int64(qp.dev.env.Now())
	for w := wr; w != nil; w = w.Next {
		work := &txWork{qp: qp, wr: *w, postTs: doorbell}
		work.wr.Next = nil
		if w.Inline || w.Op == OpSend || w.Op == OpSendImm || w.Op == OpWrite || w.Op == OpWriteImm {
			// Capture payload now; the simulated DMA cost is still charged
			// in the engine, but the bytes must be stable.
			if w.SGE.Len > 0 {
				work.payload = append([]byte(nil), w.SGE.bytes()...)
			}
		}
		qp.dev.txq.Push(work)
	}
}

// txWork is one WQE handed to the NIC send engine.
type txWork struct {
	qp      *QP
	wr      SendWR
	payload []byte
	postTs  int64 // doorbell time, for doorbell→completion tracing
}

// packet is a message in flight between two NICs.
type packet struct {
	kind       Opcode
	srcQP      *QP
	dstQP      *QP
	payload    []byte
	remote     RKey
	remoteOff  int
	imm        uint32
	wrid       uint64 // initiator's WRID (for READ responses)
	readLen    int    // READ request length
	signaled   bool
	isReadResp bool
	readDst    SGE
	postTs     int64 // initiator doorbell time (READ tracing)
}

// txEngine is the device's send-side NIC pipeline: fetch WQE, DMA the
// payload from host memory, serialize onto the wire, and hand off to the
// fabric. One-sided issue overhead is charged here.
func (d *Device) txEngine(p *sim.Proc) {
	cm := d.cm
	for {
		w := d.txq.Pop(p)
		wr := &w.wr
		p.Sleep(sim.Duration(cm.WQEProcessNs))
		if m := d.vm; m != nil && int(wr.Op) < opRecvBound {
			m.tx[wr.Op].Inc()
		}
		switch wr.Op {
		case OpSend, OpSendImm, OpWrite, OpWriteImm:
			if m := d.vm; m != nil {
				if wr.Inline {
					m.inline.Inc()
				} else {
					m.dma.Inc()
				}
			}
			if !wr.Inline {
				p.Sleep(sim.Duration(cm.DMATime(len(w.payload))))
			}
			pkt := &packet{
				kind:      wr.Op,
				srcQP:     w.qp,
				dstQP:     w.qp.peer,
				payload:   w.payload,
				remote:    wr.Remote,
				remoteOff: wr.RemoteOff,
				imm:       wr.Imm,
				wrid:      wr.WRID,
				signaled:  !wr.Unsignaled,
			}
			txDone, delivered := d.transmit(pkt, len(w.payload))
			if !wr.Unsignaled && delivered {
				// Local send completion once the message is on the wire.
				qp, id, op, n := w.qp, wr.WRID, wr.Op, len(w.payload)
				cqeAt := txDone + sim.Time(cm.CQEDmaNs)
				d.trc.Complete("verbs", "wr."+op.String(), d.node.ID(), int(qp.id),
					w.postTs, int64(cqeAt), obs.Arg{K: "wrid", V: id}, obs.Arg{K: "bytes", V: n})
				d.env.At(cqeAt, func() {
					qp.sendCQ.push(WC{WRID: id, Op: op, ByteLen: n, QP: qp})
				})
			}
		case OpRead:
			p.Sleep(sim.Duration(cm.OutboundOneSidedExtraNs))
			pkt := &packet{
				kind:      OpRead,
				srcQP:     w.qp,
				dstQP:     w.qp.peer,
				remote:    wr.Remote,
				remoteOff: wr.RemoteOff,
				wrid:      wr.WRID,
				readLen:   wr.SGE.Len,
				signaled:  !wr.Unsignaled,
				readDst:   wr.SGE,
				postTs:    w.postTs,
			}
			d.transmit(pkt, 0) // request packet is header-only
		default:
			panic("verbs: bad opcode on send queue")
		}
	}
}

// transmit reserves wire time on the local TX gate (the NIC pipelines
// serialization with subsequent WQE processing), propagates the packet,
// and schedules receive-side handling through the remote RX gate. It
// returns the virtual time the last byte leaves the local NIC, and
// whether the fabric delivered the message.
//
// When a fault plan is installed on the cluster it is consulted per
// message: a dropped message never reaches the remote NIC — instead,
// after the RC transport's retry window expires, the requester QP enters
// the error state and (for signaled requests) a WCRetryExceeded
// completion is raised. Jitter and destination-pause delays stretch the
// propagation leg. With no plan installed this path is untouched.
func (d *Device) transmit(pkt *packet, size int) (txDone sim.Time, delivered bool) {
	wire := size + d.cm.WireHeaderBytes
	txDone = d.node.TX.Reserve(d.env.Now(), wire)
	remote := pkt.dstQP.dev
	prop := d.node.Cluster().PropDelay()
	env := d.env
	if fp := d.node.Cluster().Faults(); fp != nil {
		drop, extra := fp.Outcome(d.node.ID(), remote.node.ID())
		if drop {
			d.dropInFlight(pkt, txDone)
			return txDone, false
		}
		prop += extra
	}
	env.At(txDone+sim.Time(prop), func() {
		rxDone := remote.node.RX.Reserve(env.Now(), wire)
		env.At(rxDone, func() { remote.receive(pkt) })
	})
	return txDone, true
}

// dropInFlight models the requester-side consequence of a message lost
// by the fabric: after RetryTimeoutNs of futile transport retries the
// owning QP transitions to the error state, and a signaled work request
// completes with WCRetryExceeded. For a lost READ response the "owner"
// is the initiator (its retry timer is the one that expires); for
// everything else it is the sender.
func (d *Device) dropInFlight(pkt *packet, txDone sim.Time) {
	owner := pkt.srcQP
	if pkt.isReadResp {
		owner = pkt.dstQP
	}
	id, op, signaled := pkt.wrid, pkt.kind, pkt.signaled
	d.env.At(txDone+sim.Time(d.cm.RetryTimeoutNs), func() {
		owner.errored = true
		if signaled {
			owner.sendCQ.push(WC{WRID: id, Op: op, Status: WCRetryExceeded, QP: owner})
		}
	})
}

// receive is the remote NIC's handling of an arrived packet. It runs as a
// scheduler callback (the NIC RX pipeline does not occupy host CPU).
func (d *Device) receive(pkt *packet) {
	cm := d.cm
	env := d.env
	if pkt.isReadResp {
		// READ response at the initiator: DMA into the destination SGE
		// and complete.
		copy(pkt.readDst.MR.Buf[pkt.readDst.Off:], pkt.payload)
		qp := pkt.dstQP
		if pkt.signaled {
			dly := sim.Duration(cm.DMATime(len(pkt.payload)) + cm.CQEDmaNs)
			d.trc.Complete("verbs", "wr.READ", d.node.ID(), int(qp.id),
				pkt.postTs, int64(env.Now())+int64(dly),
				obs.Arg{K: "wrid", V: pkt.wrid}, obs.Arg{K: "bytes", V: len(pkt.payload)})
			env.After(dly, func() {
				qp.sendCQ.push(WC{WRID: pkt.wrid, Op: OpRead, ByteLen: len(pkt.payload), QP: qp})
			})
		}
		return
	}
	switch pkt.kind {
	case OpSend, OpSendImm:
		qp := pkt.dstQP
		if len(qp.recvq) == 0 {
			qp.pending = append(qp.pending, pkt)
			return
		}
		wr := qp.recvq[0]
		qp.recvq = qp.recvq[1:]
		qp.completeRecv(pkt, wr)
	case OpWrite:
		dst := pkt.remote.mr
		if dst.revoked {
			return // stale rkey: access withdrawn, WRITE discarded
		}
		copy(dst.Buf[pkt.remoteOff:], pkt.payload)
		// Inbound WRITE: NIC DMA only, no CPU, no target completion.
		if dst.onWrite != nil {
			dst.onWrite()
		}
	case OpWriteImm:
		dst := pkt.remote.mr
		if dst.revoked {
			return // stale rkey: access withdrawn, WRITE discarded
		}
		copy(dst.Buf[pkt.remoteOff:], pkt.payload)
		qp := pkt.dstQP
		if len(qp.recvq) == 0 {
			qp.pending = append(qp.pending, pkt)
			return
		}
		wr := qp.recvq[0]
		qp.recvq = qp.recvq[1:]
		// WRITE_WITH_IMM consumes a RECV WQE but the data went to the
		// WRITE target, not the receive buffer.
		env.After(sim.Duration(cm.InboundServeNs+cm.CQEDmaNs), func() {
			qp.recvCQ.push(WC{WRID: wr.WRID, Op: OpRecv, ByteLen: len(pkt.payload), Imm: pkt.imm, HasImm: true, QP: qp})
		})
	case OpRead:
		// Serve the READ entirely in the NIC: fetch from host memory and
		// stream the response back.
		src := pkt.remote.mr
		if src.revoked {
			// Stale rkey: remote access error. The initiator's WR fails
			// after its retry window, like a lost response would.
			d.dropInFlight(pkt, env.Now())
			return
		}
		data := append([]byte(nil), src.Buf[pkt.remoteOff:pkt.remoteOff+pkt.readLen]...)
		resp := &packet{
			kind:       OpRead,
			isReadResp: true,
			srcQP:      pkt.dstQP,
			dstQP:      pkt.srcQP,
			payload:    data,
			wrid:       pkt.wrid,
			signaled:   pkt.signaled,
			readDst:    pkt.readDst,
			postTs:     pkt.postTs,
		}
		serve := sim.Duration(cm.InboundServeNs + cm.DMATime(pkt.readLen))
		// The response takes the same fabric path as any other message
		// (and is therefore subject to the same fault plan).
		env.After(serve, func() { d.transmit(resp, len(data)) })
	}
}

// completeRecv lands a two-sided payload in the RECV buffer and raises
// the receive completion.
func (qp *QP) completeRecv(pkt *packet, wr RecvWR) {
	cm := qp.dev.cm
	n := copy(wr.SGE.MR.Buf[wr.SGE.Off:wr.SGE.Off+wr.SGE.Len], pkt.payload)
	wc := WC{WRID: wr.WRID, Op: OpRecv, ByteLen: n, QP: qp}
	if pkt.kind == OpSendImm {
		wc.Imm, wc.HasImm = pkt.imm, true
	}
	qp.dev.env.After(sim.Duration(cm.DMATime(n)+cm.CQEDmaNs), func() {
		qp.recvCQ.push(wc)
	})
}
