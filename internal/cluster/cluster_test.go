package cluster

import (
	"bytes"
	"errors"
	"fmt"
	"testing"

	"hatrpc/internal/engine"
	"hatrpc/internal/hatkv"
	"hatrpc/internal/lmdb"
	"hatrpc/internal/sim"
	"hatrpc/internal/simnet"
)

// --- ring ---

func TestReplicasDeterministicAndDistinct(t *testing.T) {
	nodes := []int{0, 1, 2, 3, 4}
	for shard := 0; shard < 16; shard++ {
		a := Replicas(42, nodes, shard, 3)
		b := Replicas(42, nodes, shard, 3)
		if len(a) != 3 {
			t.Fatalf("shard %d: %d replicas, want 3", shard, len(a))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("shard %d: non-deterministic replicas %v vs %v", shard, a, b)
			}
		}
		seen := map[int]bool{}
		for _, r := range a {
			if seen[r] {
				t.Fatalf("shard %d: duplicate replica in %v", shard, a)
			}
			seen[r] = true
		}
	}
	// rf is clamped to the node count.
	if got := Replicas(42, []int{0, 1}, 0, 5); len(got) != 2 {
		t.Fatalf("clamped rf: %v, want 2 nodes", got)
	}
}

func TestRingSpreadsPrimaries(t *testing.T) {
	nodes := []int{0, 1, 2, 3, 4}
	m := NewShardMap(7, nodes, 64, 3)
	count := make([]int, len(nodes))
	for _, s := range m.Shards {
		count[s.Primary]++
	}
	for n, c := range count {
		if c == 0 {
			t.Errorf("node %d owns no primaries across 64 shards: %v", n, count)
		}
		if c > 32 {
			t.Errorf("node %d owns %d/64 primaries — ring badly skewed: %v", n, c, count)
		}
	}
}

// --- shard-map wire codec ---

func TestShardMapCodecRoundTrip(t *testing.T) {
	m := NewShardMap(7, []int{0, 1, 2, 3, 4}, 8, 3)
	m.Shards[3].Epoch = 9
	m.Shards[3].Primary = 4
	enc := m.Encode()
	dec, err := DecodeShardMap(enc)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if len(dec.Shards) != len(m.Shards) {
		t.Fatalf("shard count %d, want %d", len(dec.Shards), len(m.Shards))
	}
	for i := range m.Shards {
		a, b := m.Shards[i], dec.Shards[i]
		if a.Epoch != b.Epoch || a.Primary != b.Primary || len(a.Replicas) != len(b.Replicas) {
			t.Fatalf("shard %d: %+v != %+v", i, a, b)
		}
		for j := range a.Replicas {
			if a.Replicas[j] != b.Replicas[j] {
				t.Fatalf("shard %d replicas: %v != %v", i, a.Replicas, b.Replicas)
			}
		}
	}
	// Truncations at every length must fail cleanly, never panic.
	for cut := 0; cut < len(enc); cut++ {
		if _, err := DecodeShardMap(enc[:cut]); err == nil {
			t.Fatalf("truncation at %d decoded", cut)
		}
	}
	// Trailing garbage is rejected.
	if _, err := DecodeShardMap(append(append([]byte(nil), enc...), 0xFF)); err == nil {
		t.Fatal("trailing garbage decoded")
	}
}

func TestShardMapMergeHigherEpochWins(t *testing.T) {
	a := NewShardMap(7, []int{0, 1, 2}, 4, 3)
	b := NewShardMap(7, []int{0, 1, 2}, 4, 3)
	b.Shards[1].Epoch = 5
	b.Shards[1].Primary = 2
	a.Shards[2].Epoch = 3
	a.Shards[2].Primary = 1
	a.Merge(b)
	if a.Shards[1].Epoch != 5 || a.Shards[1].Primary != 2 {
		t.Errorf("shard 1 not adopted: %+v", a.Shards[1])
	}
	if a.Shards[2].Epoch != 3 || a.Shards[2].Primary != 1 {
		t.Errorf("shard 2 regressed: %+v", a.Shards[2])
	}
}

// --- live cluster harness ---

// testCluster wires nservers cluster nodes (durable store + per-boot
// engine/Node, restart hooks re-arming both) plus one client node.
type testCluster struct {
	env    *sim.Env
	cl     *simnet.Cluster
	cfg    Config
	roster []*simnet.Node
	stores []*hatkv.Store
	nodes  []*Node // current boot's service per server
	cliEng *engine.Engine
}

func newTestCluster(t *testing.T, seed int64, nservers int, cfg Config) *testCluster {
	t.Helper()
	env := sim.NewEnv(seed)
	cl := simnet.NewCluster(env, simnet.Config{
		Nodes: nservers + 1, Cores: 28, Sockets: 2, LinkGbps: 100, PropDelayNs: 600, NUMAPenalty: 1.25,
	})
	cfg.Seed = seed
	cfg.NodeIDs = make([]int, nservers)
	for i := range cfg.NodeIDs {
		cfg.NodeIDs[i] = i
	}
	cfg = cfg.withDefaults()
	tc := &testCluster{env: env, cl: cl, cfg: cfg, nodes: make([]*Node, nservers)}
	for i := 0; i < nservers; i++ {
		tc.roster = append(tc.roster, cl.Node(i))
	}
	ecfg := engine.DefaultConfig()
	for i := 0; i < nservers; i++ {
		i := i
		node := cl.Node(i)
		store, err := hatkv.NewStore(node, nil, nil)
		if err != nil {
			t.Fatalf("store %d: %v", i, err)
		}
		if err := store.Env().SetSync(lmdb.SyncFull); err != nil {
			t.Fatalf("sync %d: %v", i, err)
		}
		tc.stores = append(tc.stores, store)
		boot := func() { tc.nodes[i] = NewNode(engine.New(node, ecfg), store, tc.roster, i, cfg) }
		boot()
		node.SetRestart(func(p *sim.Proc) { boot() })
	}
	tc.cliEng = engine.New(cl.Node(nservers), ecfg)
	return tc
}

func TestClusterPutGet(t *testing.T) {
	tc := newTestCluster(t, 11, 3, Config{NShards: 8, RF: 3})
	tc.env.Spawn("client", func(p *sim.Proc) {
		c := NewClient(tc.cliEng, tc.roster, tc.cfg)
		for i := 0; i < 24; i++ {
			key := fmt.Sprintf("key-%03d", i)
			if err := c.Put(p, key, []byte("val-"+key)); err != nil {
				t.Fatalf("put %s: %v", key, err)
			}
		}
		for i := 0; i < 24; i++ {
			key := fmt.Sprintf("key-%03d", i)
			v, err := c.Get(p, key)
			if err != nil || !bytes.Equal(v, []byte("val-"+key)) {
				t.Fatalf("get %s: %q, %v", key, v, err)
			}
		}
		if _, err := c.Get(p, "no-such-key"); !errors.Is(err, ErrNotFound) {
			t.Fatalf("missing key: %v, want ErrNotFound", err)
		}
		st := c.Stats()
		if st.Puts != 24 || st.Gets != 25 || st.Failures != 0 {
			t.Errorf("client stats: %+v", st)
		}
		tc.env.Stop()
	})
	tc.env.Run()
	// Every replica of every shard holds identical content (RF=3 on 3
	// nodes: full replication, no failovers → seqs match everywhere).
	for s := 0; s < tc.cfg.NShards; s++ {
		for _, n := range tc.nodes {
			st := n.shards[s]
			if st == nil {
				t.Fatalf("node %d missing shard %d at RF=3/3 nodes", n.self, s)
			}
			if st.epoch != 1 {
				t.Errorf("node %d shard %d epoch %d, want 1", n.self, s, st.epoch)
			}
		}
	}
}

// TestClusterFailover is the tentpole lifecycle test: the primary of a
// shard crashes mid-workload; a backup detects it, runs the epoch-fenced
// candidacy and promotes; the client chases the view via refresh and
// keeps writing with zero acked-write loss; the restarted old primary is
// fenced (its stale-epoch write attempt can never ack) and rejoins as a
// backup via resync.
func TestClusterFailover(t *testing.T) {
	tc := newTestCluster(t, 13, 3, Config{NShards: 4, RF: 3})
	key := "failover-key"
	shard := ShardOf(key, tc.cfg.NShards)
	prim := int(NewShardMap(tc.cfg.Seed, tc.cfg.NodeIDs, tc.cfg.NShards, tc.cfg.RF).Shards[shard].Primary)

	var cli *Client
	tc.env.Spawn("client", func(p *sim.Proc) {
		cli = NewClient(tc.cliEng, tc.roster, tc.cfg)
		if err := cli.Put(p, key, []byte("v1")); err != nil {
			t.Fatalf("pre-crash put: %v", err)
		}
		tc.roster[prim].Crash()
		// Keep writing through the failover window; every eventual ack
		// must land in the new view.
		var lastVal string
		for i := 0; i < 10; i++ {
			lastVal = fmt.Sprintf("v%d", i+2)
			for {
				if err := cli.Put(p, key, []byte(lastVal)); err == nil {
					break
				}
			}
		}
		if got := cli.View().Shards[shard]; got.Epoch < 2 || int(got.Primary) == prim {
			t.Errorf("client view after failover: %+v (old primary %d)", got, prim)
		}
		// Old primary comes back: it must be fenced out of acking (its
		// content is one epoch behind) and the data must stay readable.
		tc.roster[prim].Restart()
		p.Sleep(2_000_000) // give resync a few monitor ticks
		v, err := cli.Get(p, key)
		if err != nil || string(v) != lastVal {
			t.Fatalf("post-restart get: %q, %v (want %q)", v, err, lastVal)
		}
		tc.env.Stop()
	})
	tc.env.Run()

	// Every shard the crashed node led fails over (not only the test
	// key's): expect exactly one promotion per led shard.
	led := int64(0)
	for _, s := range NewShardMap(tc.cfg.Seed, tc.cfg.NodeIDs, tc.cfg.NShards, tc.cfg.RF).Shards {
		if int(s.Primary) == prim {
			led++
		}
	}
	var promotions, candidacies int64
	for i, n := range tc.nodes {
		if i == prim {
			continue // current boot of the old primary: fresh zero stats
		}
		promotions += n.stats.Promotions
		candidacies += n.stats.Candidacies
	}
	// At least one promotion per led shard. Occasionally a shard is
	// promoted twice: a later successor's liveness probe times out
	// against a candidate busy holding the shard mutex for its own
	// candidacy, so it runs a sequential higher-epoch one — benign, the
	// cluster converges on the highest epoch.
	if promotions < led || promotions > 2*led {
		t.Errorf("promotions = %d, want within [%d, %d] (node %d led %d shards)",
			promotions, led, 2*led, prim, led)
	}
	if candidacies < 1 {
		t.Errorf("candidacies = %d, want ≥ 1", candidacies)
	}
	if cli.Stats().Refreshes == 0 {
		t.Errorf("client never refreshed its shard map across a failover")
	}
	// The restarted old primary rejoined via resync: its content epoch
	// caught up to the survivors'.
	newEpoch := uint64(0)
	for i, n := range tc.nodes {
		if i != prim {
			if e := n.shards[shard].epoch; e > newEpoch {
				newEpoch = e
			}
		}
	}
	if newEpoch < 2 {
		t.Fatalf("surviving replicas never advanced past epoch 1")
	}
	if e := tc.nodes[prim].shards[shard].epoch; e != newEpoch {
		t.Errorf("restarted old primary at epoch %d, survivors at %d — resync never landed", e, newEpoch)
	}
}

// TestClusterDeposedPrimaryCannotAck pins the fencing property directly:
// a client still routing at the old epoch to a restarted old primary
// gets stStale (surfaced as engine.ErrStaleShardEpoch through the retry
// loop's last error) and its write lands only via the new primary.
func TestClusterDeposedPrimaryCannotAck(t *testing.T) {
	tc := newTestCluster(t, 17, 3, Config{NShards: 4, RF: 3})
	key := "fenced-key"
	shard := ShardOf(key, tc.cfg.NShards)
	prim := int(NewShardMap(tc.cfg.Seed, tc.cfg.NodeIDs, tc.cfg.NShards, tc.cfg.RF).Shards[shard].Primary)

	tc.env.Spawn("client", func(p *sim.Proc) {
		c1 := NewClient(tc.cliEng, tc.roster, tc.cfg)
		if err := c1.Put(p, key, []byte("before")); err != nil {
			t.Fatalf("seed put: %v", err)
		}
		tc.roster[prim].Crash()
		for { // drive the failover to completion
			if err := c1.Put(p, key, []byte("during")); err == nil {
				break
			}
		}
		tc.roster[prim].Restart()
		p.Sleep(500_000) // old primary is back up, content one epoch behind
		// A fresh client starts from the static epoch-1 view: its first
		// write goes to the deposed primary, which must answer stStale and
		// never ack; the client reroutes on the reply's fresher epoch.
		c2 := NewClient(tc.cliEng, tc.roster, tc.cfg)
		if err := c2.Put(p, key, []byte("after")); err != nil {
			t.Fatalf("stale-view put: %v", err)
		}
		if c2.Stats().StaleRetries == 0 {
			t.Errorf("fresh client was never told stStale by the deposed primary")
		}
		v, err := c2.Get(p, key)
		if err != nil || string(v) != "after" {
			t.Fatalf("get: %q, %v", v, err)
		}
		tc.env.Stop()
	})
	tc.env.Run()
}
