package cluster

import (
	"errors"
	"fmt"

	"hatrpc/internal/engine"
	"hatrpc/internal/sim"
	"hatrpc/internal/simnet"
)

// ErrNotFound is returned by Client.Get for a key no replica has.
var ErrNotFound = errors.New("cluster: key not found")

// ClientStats counts a client's routing behavior (deterministic under
// one seed).
type ClientStats struct {
	Puts         int64 // acked writes
	Gets         int64 // successful reads (found or typed not-found)
	Refreshes    int64 // shard-map refresh sweeps
	StaleRetries int64 // stStale answers (failover observed; rerouted)
	Failures     int64 // operations that exhausted the attempt budget
}

// Client routes KV operations across the cluster: consistent-hash shard
// selection, a locally cached shard map bootstrapped from the static
// epoch-1 view, and the stale-epoch protocol — a replica answering
// stStale hands back the fresher (epoch, primary), the client adopts it
// and replays immediately; transport-level unavailability triggers a
// full map refresh plus backoff. One Client serves one simulated
// process's traffic (no internal locking beyond the session cache).
type Client struct {
	cfg    Config
	eng    *engine.Engine
	roster []*simnet.Node // cluster server nodes, by index

	view *ShardMap

	smu   *sim.Mutex
	sess  map[int]*engine.Session
	stats ClientStats
}

// NewClient builds a cluster client on the given (client-side) engine.
// roster must list the server nodes in cfg.NodeIDs order.
func NewClient(eng *engine.Engine, roster []*simnet.Node, cfg Config) *Client {
	cfg = cfg.withDefaults()
	return &Client{
		cfg:    cfg,
		eng:    eng,
		roster: roster,
		view:   NewShardMap(cfg.Seed, cfg.NodeIDs, cfg.NShards, cfg.RF),
		smu:    sim.NewMutex(eng.Node().Cluster().Env()),
		sess:   make(map[int]*engine.Session),
	}
}

// Stats returns the client's counters.
func (c *Client) Stats() ClientStats { return c.stats }

// View returns the client's current routing view (read-only use).
func (c *Client) View() *ShardMap { return c.view }

// call performs one idempotent RPC to a cluster node over a cached
// session.
func (c *Client) call(p *sim.Proc, peer int, fn uint32, req []byte) ([]byte, error) {
	c.smu.Lock(p)
	s := c.sess[peer]
	if s == nil {
		var err error
		s, err = c.eng.NewSession(p, c.roster[peer], Port, engine.SessionConfig{
			MaxRedials:    2,
			RedialBackoff: 50_000,
		})
		if err != nil {
			c.smu.Unlock()
			return nil, err
		}
		c.sess[peer] = s
	}
	c.smu.Unlock()
	return s.Call(p, fn, req, engine.CallOpts{
		Proto:      engine.EagerSendRecv,
		Idempotent: true,
		Deadline:   sim.Duration(c.cfg.ClientDeadlineNs),
	})
}

// adopt folds a stale-reply's fresher routing into the cached view.
func (c *Client) adopt(shard int, epoch uint64, primary int32) {
	if epoch > c.view.Shards[shard].Epoch {
		c.view.Shards[shard].Epoch = epoch
		c.view.Shards[shard].Primary = primary
	}
}

// Refresh sweeps the roster for shard maps and merges them into the
// cached view (per shard, the highest epoch wins — a shard's replicas
// always know its freshest view, so merging across nodes converges on
// truth even when most of the roster is down or partitioned away).
func (c *Client) Refresh(p *sim.Proc) {
	c.stats.Refreshes++
	for i := range c.roster {
		resp, err := c.call(p, i, FnShardMap, nil)
		if err != nil || len(resp) < 1 || resp[0] != stOK {
			continue
		}
		if m, derr := DecodeShardMap(resp[1:]); derr == nil {
			c.view.Merge(m)
		}
	}
}

// Put writes key=value through the shard's primary, retrying across
// failovers: stStale reroutes and replays immediately, unavailability
// refreshes the map and backs off, fencing/quorum-loss backs off until
// the new view lands. The final error after an exhausted budget wraps
// the last typed cause (errors.Is(err, engine.ErrStaleShardEpoch) holds
// if the budget died chasing a moving epoch).
func (c *Client) Put(p *sim.Proc, key string, value []byte) error {
	shard := ShardOf(key, c.cfg.NShards)
	var lastErr error
	for attempt := 0; attempt < c.cfg.ClientAttempts; attempt++ {
		info := c.view.Shards[shard]
		resp, err := c.call(p, int(info.Primary), FnClusterPut,
			encodePut(putReq{Shard: uint16(shard), Epoch: info.Epoch, Key: key, Value: value}))
		st, cont := c.step(p, shard, resp, err, &lastErr)
		if !cont {
			if st == stOK {
				c.stats.Puts++
				return nil
			}
			break
		}
	}
	c.stats.Failures++
	if lastErr == nil {
		lastErr = engine.ErrDeadline
	}
	return fmt.Errorf("cluster: put %q: %w", key, lastErr)
}

// Get reads key from the shard's primary with the same retry protocol
// as Put. A missing key is the typed ErrNotFound (a successful read).
func (c *Client) Get(p *sim.Proc, key string) ([]byte, error) {
	shard := ShardOf(key, c.cfg.NShards)
	var lastErr error
	for attempt := 0; attempt < c.cfg.ClientAttempts; attempt++ {
		info := c.view.Shards[shard]
		resp, err := c.call(p, int(info.Primary), FnClusterGet,
			encodeGet(getReq{Shard: uint16(shard), Epoch: info.Epoch, Key: key}))
		st, cont := c.step(p, shard, resp, err, &lastErr)
		if !cont {
			if st == stOK {
				c.stats.Gets++
				if len(resp) < 2 || resp[1] == 0 {
					return nil, fmt.Errorf("cluster: get %q: %w", key, ErrNotFound)
				}
				return resp[2:], nil
			}
			break
		}
	}
	c.stats.Failures++
	if lastErr == nil {
		lastErr = engine.ErrDeadline
	}
	return nil, fmt.Errorf("cluster: get %q: %w", key, lastErr)
}

// step classifies one attempt's outcome and applies the routing
// protocol. Returns the status byte (when a response arrived) and
// whether the caller should retry.
func (c *Client) step(p *sim.Proc, shard int, resp []byte, err error, lastErr *error) (byte, bool) {
	switch {
	case err != nil:
		// Transport-level: the primary (or the path to it) is gone. A
		// fresher view may exist anywhere in the roster — sweep for it.
		*lastErr = err
		c.Refresh(p)
		p.Sleep(sim.Duration(c.cfg.ClientBackoffNs))
		return 0, true
	case len(resp) < 1:
		*lastErr = engine.ErrDeadline
		p.Sleep(sim.Duration(c.cfg.ClientBackoffNs))
		return 0, true
	case resp[0] == stOK:
		return stOK, false
	case resp[0] == stStale:
		// The replica told us exactly where to go: adopt and replay now.
		if e, pr, ok := decodeStale(resp); ok {
			c.adopt(shard, e, pr)
		}
		c.stats.StaleRetries++
		*lastErr = engine.ErrStaleShardEpoch
		return stStale, true
	case resp[0] == stFenced || resp[0] == stNotQuorum:
		// Failover in progress (fenced) or the replica set can't reach
		// majority: wait for the view change, refreshing as we go.
		*lastErr = engine.ErrStaleShardEpoch
		p.Sleep(sim.Duration(c.cfg.ClientBackoffNs))
		c.Refresh(p)
		return resp[0], true
	default:
		*lastErr = fmt.Errorf("cluster: status %d", resp[0])
		p.Sleep(sim.Duration(c.cfg.ClientBackoffNs))
		return resp[0], true
	}
}
