// Package cluster is the sharded, replicated HatKV tier (DESIGN.md §15):
// a consistent-hash ring partitions keys across N simulated server
// nodes; each shard has a primary and RF-1 backups with primary→backup
// replication riding the engine Session layer; failover is epoch-fenced
// — a deterministic successor promotes through a durable quorum
// prepare/install protocol, bumps the shard epoch, and stale-epoch
// writes are rejected with engine.ErrStaleShardEpoch, triggering client
// shard-map refresh + replay (the verbs epoch-tagged-RKey discipline,
// one layer up).
//
// Determinism: ring placement is a pure function of (seed, node set,
// shard count); no runtime randomness is drawn anywhere in the package,
// and all shard/replica iteration is over sorted slices — the whole
// tier replays byte-identically under one sim seed.
package cluster

import "hash/fnv"

// vnodesPerNode is the virtual-point count per node on the ring. 16
// points smooth placement enough that 5 nodes × 8 shards spread within
// ±1 primary of even, while keeping ring construction trivial.
const vnodesPerNode = 16

// hashU64 folds a tuple of 64-bit parts through FNV-1a and a
// splitmix64 finalizer. The finalizer matters: FNV-1a alone barely
// avalanches on inputs differing only in a trailing counter byte
// (consecutive node/vnode ids land on consecutive hashes, collapsing
// the ring onto one node). Placement flows exclusively through this, so
// the ring is a pure function of its inputs and never touches the
// simulation RNG.
func hashU64(parts ...uint64) uint64 {
	h := fnv.New64a()
	var b [8]byte
	for _, p := range parts {
		b[0] = byte(p >> 56)
		b[1] = byte(p >> 48)
		b[2] = byte(p >> 40)
		b[3] = byte(p >> 32)
		b[4] = byte(p >> 24)
		b[5] = byte(p >> 16)
		b[6] = byte(p >> 8)
		b[7] = byte(p)
		h.Write(b[:])
	}
	z := h.Sum64()
	z ^= z >> 30
	z *= 0xBF58476D1CE4E5B9
	z ^= z >> 27
	z *= 0x94D049BB133111EB
	z ^= z >> 31
	return z
}

// ShardOf maps a key to its shard: FNV-1a of the key bytes mod the
// shard count. Clients and servers must agree on nshards (it is fixed
// cluster configuration, like the seed).
func ShardOf(key string, nshards int) int {
	h := fnv.New64a()
	h.Write([]byte(key))
	return int(h.Sum64() % uint64(nshards))
}

// ringPoint is one virtual node position on the hash ring.
type ringPoint struct {
	hash uint64
	node int
}

// buildRing returns the sorted virtual-point ring for the node set.
// Points are hashes of (seed, node, replica-index): deterministic,
// seeded placement with no runtime draws.
func buildRing(seed int64, nodes []int) []ringPoint {
	ring := make([]ringPoint, 0, len(nodes)*vnodesPerNode)
	for _, n := range nodes {
		for v := 0; v < vnodesPerNode; v++ {
			ring = append(ring, ringPoint{hash: hashU64(uint64(seed), uint64(n), uint64(v)), node: n})
		}
	}
	// Insertion sort by (hash, node): the ring is tiny and built once.
	for i := 1; i < len(ring); i++ {
		for j := i; j > 0; j-- {
			a, b := ring[j-1], ring[j]
			if a.hash < b.hash || (a.hash == b.hash && a.node <= b.node) {
				break
			}
			ring[j-1], ring[j] = b, a
		}
	}
	return ring
}

// Replicas returns shard s's configured replica set in ring order:
// starting at the shard's ring position, walk clockwise collecting the
// first rf distinct nodes. Replicas[0] is the seed primary. rf is
// clamped to the node count.
func Replicas(seed int64, nodes []int, shard, rf int) []int {
	if rf > len(nodes) {
		rf = len(nodes)
	}
	if rf < 1 {
		rf = 1
	}
	ring := buildRing(seed, nodes)
	loc := hashU64(uint64(seed), 0x5348415244, uint64(shard)) // "SHARD" tag
	start := 0
	for i, pt := range ring {
		if pt.hash >= loc {
			start = i
			break
		}
	}
	out := make([]int, 0, rf)
	for i := 0; len(out) < rf && i < len(ring); i++ {
		n := ring[(start+i)%len(ring)].node
		dup := false
		for _, m := range out {
			if m == n {
				dup = true
				break
			}
		}
		if !dup {
			out = append(out, n)
		}
	}
	return out
}

// NewShardMap builds the epoch-1 shard map for a fresh cluster: every
// shard at epoch 1 with its ring-order replica set and the first
// replica as primary. All nodes and clients derive the identical map
// from the shared (seed, nodes, nshards, rf) configuration.
func NewShardMap(seed int64, nodes []int, nshards, rf int) *ShardMap {
	m := &ShardMap{Shards: make([]ShardInfo, nshards)}
	for s := 0; s < nshards; s++ {
		reps := Replicas(seed, nodes, s, rf)
		r32 := make([]int32, len(reps))
		for i, r := range reps {
			r32[i] = int32(r)
		}
		m.Shards[s] = ShardInfo{Epoch: 1, Primary: r32[0], Replicas: r32}
	}
	return m
}

// quorum returns the majority threshold for n replicas: the prepare,
// install and replication-ack quorums all use it, so any two quorums of
// one shard's replica set intersect — the property every zero-loss
// argument in this package rests on.
func quorum(n int) int { return n/2 + 1 }
