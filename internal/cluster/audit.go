package cluster

import (
	"hatrpc/internal/hatkv"
)

// Post-run audit helpers for soaks and benches. They read the durable
// stores directly (no simulated I/O): after env.Run returns, each
// surviving store is exactly what a cold restart would recover, so the
// audit sees the cluster as the next boot would.

// ShardPosition returns the durable (content epoch, seq) of one shard
// at one store, or (0, 0) when the store never held the shard.
func ShardPosition(store *hatkv.Store, shard int) (epoch, seq uint64) {
	txn, err := store.Env().BeginRead()
	if err != nil {
		return 0, 0
	}
	defer txn.Abort()
	raw, err := txn.Get([]byte(metaKey(shard)))
	if err != nil {
		return 0, 0
	}
	m, err := decodeShardMeta(raw)
	if err != nil {
		return 0, 0
	}
	return m.Epoch, m.Seq
}

// ShardAuthority picks the audit authority for a shard: among the
// configured replicas' stores, the one whose durable content sits at
// the maximum (epoch, seq) — ties broken by the lowest replica index.
// By the quorum-intersection argument (DESIGN.md §15) every
// acknowledged SyncFull write is present there, so "key absent from the
// authority" == "acked write lost", cluster-wide. stores must be
// indexed like cfg.NodeIDs.
func ShardAuthority(cfg Config, stores []*hatkv.Store, shard int) int {
	cfg = cfg.withDefaults()
	reps := Replicas(cfg.Seed, cfg.NodeIDs, shard, cfg.RF)
	best, bestE, bestS := reps[0], uint64(0), uint64(0)
	for _, r := range reps {
		e, s := ShardPosition(stores[r], shard)
		if e > bestE || (e == bestE && s > bestS) {
			best, bestE, bestS = r, e, s
		}
	}
	return best
}

// StoreHas reports whether the store durably holds the shard's record
// for key.
func StoreHas(store *hatkv.Store, shard int, key string) bool {
	txn, err := store.Env().BeginRead()
	if err != nil {
		return false
	}
	defer txn.Abort()
	_, err = txn.Get([]byte(dataKey(shard, key)))
	return err == nil
}

// NumShards exposes the defaulted shard count for a config, so harness
// code can route audit keys the way clients do.
func NumShards(cfg Config) int { return cfg.withDefaults().NShards }
