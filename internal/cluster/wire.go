package cluster

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Wire functions of the cluster service, served on Port by every
// cluster node. Client-facing: FnShardMap (routing bootstrap/refresh),
// FnClusterPut, FnClusterGet. Node-to-node: FnReplicate (primary →
// backup log append), FnShardStatus (liveness probe; with the prepare
// flag, a durable epoch promise), FnShardPull (snapshot fetch during
// candidacy), FnInstall (epoch install / resync: wholesale snapshot +
// meta in one durable commit).
const (
	FnShardMap uint32 = 0x20 + iota
	FnClusterPut
	FnClusterGet
	FnReplicate
	FnShardStatus
	FnShardPull
	FnInstall
)

// Port is the cluster service's engine port.
const Port = "hatkv-cluster"

// Response status codes. Every handler reply starts with one status
// byte; stStale appends the responder's (learnedEpoch, learnedPrimary)
// so the caller can adopt fresher routing in the same round trip.
const (
	stOK        uint8 = iota
	stStale           // request's epoch/primary is behind the responder's view
	stNotQuorum       // primary could not assemble a replication quorum
	stNeedSync        // replica missed writes; needs a snapshot install
	stFenced          // shard is fenced by a durable candidacy promise
	stErr             // malformed request or internal failure
)

// Decode bounds. The shard map, snapshot and key/value fields are all
// length-prefixed; decoders reject anything beyond these caps before
// allocating, so a hostile or fuzzed buffer cannot balloon memory.
const (
	maxShards    = 1 << 12
	maxReplicas  = 16
	maxKeyLen    = 1 << 12
	maxValueLen  = 1 << 20
	maxSnapPairs = 1 << 20
)

// errDecode is the sentinel wrapped by every decoder failure.
var errDecode = errors.New("cluster: malformed message")

// ---------------------------------------------------------------------------
// Bounds-checked reader.

// rbuf is a cursor over a wire buffer. The first short read latches
// fail; every subsequent read returns zero values, so decoders can run
// straight-line and check fail once at the end.
type rbuf struct {
	b    []byte
	off  int
	fail bool
}

func (r *rbuf) u8() uint8 {
	if r.fail || r.off+1 > len(r.b) {
		r.fail = true
		return 0
	}
	v := r.b[r.off]
	r.off++
	return v
}

func (r *rbuf) u16() uint16 {
	if r.fail || r.off+2 > len(r.b) {
		r.fail = true
		return 0
	}
	v := binary.BigEndian.Uint16(r.b[r.off:])
	r.off += 2
	return v
}

func (r *rbuf) u32() uint32 {
	if r.fail || r.off+4 > len(r.b) {
		r.fail = true
		return 0
	}
	v := binary.BigEndian.Uint32(r.b[r.off:])
	r.off += 4
	return v
}

func (r *rbuf) u64() uint64 {
	if r.fail || r.off+8 > len(r.b) {
		r.fail = true
		return 0
	}
	v := binary.BigEndian.Uint64(r.b[r.off:])
	r.off += 8
	return v
}

func (r *rbuf) bytes(n int) []byte {
	if r.fail || n < 0 || r.off+n > len(r.b) {
		r.fail = true
		return nil
	}
	v := r.b[r.off : r.off+n]
	r.off += n
	return v
}

// done reports a clean, fully-consumed decode.
func (r *rbuf) done() bool { return !r.fail && r.off == len(r.b) }

// ---------------------------------------------------------------------------
// Appending writer.

func putU16(b []byte, v uint16) []byte {
	return append(b, byte(v>>8), byte(v))
}

func putU32(b []byte, v uint32) []byte {
	return append(b, byte(v>>24), byte(v>>16), byte(v>>8), byte(v))
}

func putU64(b []byte, v uint64) []byte {
	return append(b, byte(v>>56), byte(v>>48), byte(v>>40), byte(v>>32),
		byte(v>>24), byte(v>>16), byte(v>>8), byte(v))
}

// ---------------------------------------------------------------------------
// Shard map.

// ShardInfo is one shard's routing entry: its current epoch, the node
// serving as primary, and the configured replica set in ring order.
type ShardInfo struct {
	Epoch    uint64
	Primary  int32
	Replicas []int32
}

// ShardMap is the wire-encoded routing table served by FnShardMap.
// Clients bootstrap from it and refresh it whenever a call fails with a
// stale epoch or an unreachable primary.
type ShardMap struct {
	Shards []ShardInfo
}

// Encode renders the map: u16 shard count, then per shard u64 epoch,
// u32 primary, u8 replica count, u32 replicas.
func (m *ShardMap) Encode() []byte {
	b := putU16(nil, uint16(len(m.Shards)))
	for _, s := range m.Shards {
		b = putU64(b, s.Epoch)
		b = putU32(b, uint32(s.Primary))
		b = append(b, byte(len(s.Replicas)))
		for _, r := range s.Replicas {
			b = putU32(b, uint32(r))
		}
	}
	return b
}

// DecodeShardMap parses an encoded map, rejecting out-of-bounds counts
// and trailing garbage.
func DecodeShardMap(b []byte) (*ShardMap, error) {
	r := &rbuf{b: b}
	n := int(r.u16())
	if n > maxShards {
		return nil, fmt.Errorf("%w: %d shards (max %d)", errDecode, n, maxShards)
	}
	m := &ShardMap{Shards: make([]ShardInfo, 0, n)}
	for i := 0; i < n; i++ {
		var s ShardInfo
		s.Epoch = r.u64()
		s.Primary = int32(r.u32())
		nr := int(r.u8())
		if nr > maxReplicas {
			return nil, fmt.Errorf("%w: %d replicas (max %d)", errDecode, nr, maxReplicas)
		}
		s.Replicas = make([]int32, 0, nr)
		for j := 0; j < nr; j++ {
			s.Replicas = append(s.Replicas, int32(r.u32()))
		}
		m.Shards = append(m.Shards, s)
	}
	if !r.done() {
		return nil, fmt.Errorf("%w: shard map framing", errDecode)
	}
	return m, nil
}

// Merge folds fresher routing into the map: per shard, the higher epoch
// wins (replica sets are static configuration and never change). This
// is the client's refresh rule, so a node with a stale view can never
// roll a client's routing backwards.
func (m *ShardMap) Merge(o *ShardMap) {
	for i := range m.Shards {
		if i < len(o.Shards) && o.Shards[i].Epoch > m.Shards[i].Epoch {
			m.Shards[i].Epoch = o.Shards[i].Epoch
			m.Shards[i].Primary = o.Shards[i].Primary
		}
	}
}

// ---------------------------------------------------------------------------
// Durable per-shard meta record.
//
// One record per shard per replica, committed in the SAME transaction
// as the data it covers, so a restart recovers the exact (epoch,
// primary, seq) its surviving data corresponds to. The promise pair is
// the durable half of candidacy fencing: a replica that promised epoch
// E refuses every write below E even across its own crash–restart —
// volatile fences would forget the promise exactly when it matters.

const metaLen = 8 + 4 + 8 + 8 + 4

type shardMeta struct {
	Epoch      uint64 // content epoch: the view this replica's data belongs to
	Primary    int32  // that view's primary
	Seq        uint64 // last replication seq applied in that view
	Promised   uint64 // highest epoch durably promised to a candidate
	PromisedBy int32  // the candidate holding the promise
}

func (m shardMeta) encode() []byte {
	b := putU64(make([]byte, 0, metaLen), m.Epoch)
	b = putU32(b, uint32(m.Primary))
	b = putU64(b, m.Seq)
	b = putU64(b, m.Promised)
	b = putU32(b, uint32(m.PromisedBy))
	return b
}

func decodeShardMeta(b []byte) (shardMeta, error) {
	r := &rbuf{b: b}
	m := shardMeta{
		Epoch:   r.u64(),
		Primary: int32(r.u32()),
		Seq:     r.u64(),
	}
	m.Promised = r.u64()
	m.PromisedBy = int32(r.u32())
	if !r.done() {
		return shardMeta{}, fmt.Errorf("%w: shard meta", errDecode)
	}
	return m, nil
}

// Store key layout. User keys are namespaced per shard so a snapshot
// cursor can walk one shard's records; meta records live under a
// distinct prefix.
func dataKey(shard int, key string) string {
	return fmt.Sprintf("u:%04x:%s", shard, key)
}

func dataPrefix(shard int) string { return fmt.Sprintf("u:%04x:", shard) }

func metaKey(shard int) string { return fmt.Sprintf("m:%04x", shard) }

// ---------------------------------------------------------------------------
// Request/response bodies.

// putReq: client → primary write. The epoch is the client's routing
// belief; the primary rejects mismatches with stStale so stale clients
// refresh instead of writing into a deposed view.
type putReq struct {
	Shard uint16
	Epoch uint64
	Key   string
	Value []byte
}

func encodePut(q putReq) []byte {
	b := putU16(nil, q.Shard)
	b = putU64(b, q.Epoch)
	b = putU16(b, uint16(len(q.Key)))
	b = append(b, q.Key...)
	return append(b, q.Value...)
}

func decodePut(b []byte) (putReq, error) {
	r := &rbuf{b: b}
	var q putReq
	q.Shard = r.u16()
	q.Epoch = r.u64()
	kl := int(r.u16())
	if kl > maxKeyLen {
		return putReq{}, fmt.Errorf("%w: key length %d", errDecode, kl)
	}
	q.Key = string(r.bytes(kl))
	rest := len(r.b) - r.off
	if rest > maxValueLen {
		return putReq{}, fmt.Errorf("%w: value length %d", errDecode, rest)
	}
	q.Value = r.bytes(rest)
	if r.fail {
		return putReq{}, fmt.Errorf("%w: put framing", errDecode)
	}
	return q, nil
}

// getReq reuses the put framing without a value.
type getReq struct {
	Shard uint16
	Epoch uint64
	Key   string
}

func encodeGet(q getReq) []byte {
	b := putU16(nil, q.Shard)
	b = putU64(b, q.Epoch)
	b = putU16(b, uint16(len(q.Key)))
	return append(b, q.Key...)
}

func decodeGet(b []byte) (getReq, error) {
	p, err := decodePut(b)
	if err != nil || len(p.Value) != 0 {
		return getReq{}, fmt.Errorf("%w: get framing", errDecode)
	}
	return getReq{Shard: p.Shard, Epoch: p.Epoch, Key: p.Key}, nil
}

// replReq: primary → backup ordered log append. Seq is per-shard,
// per-epoch, contiguous; the backup accepts seq == last+1, acks
// duplicates (session replays) idempotently, and demands a snapshot
// install on any gap.
type replReq struct {
	Shard   uint16
	Epoch   uint64
	Primary int32
	Seq     uint64
	Key     string
	Value   []byte
}

func encodeRepl(q replReq) []byte {
	b := putU16(nil, q.Shard)
	b = putU64(b, q.Epoch)
	b = putU32(b, uint32(q.Primary))
	b = putU64(b, q.Seq)
	b = putU16(b, uint16(len(q.Key)))
	b = append(b, q.Key...)
	return append(b, q.Value...)
}

func decodeRepl(b []byte) (replReq, error) {
	r := &rbuf{b: b}
	var q replReq
	q.Shard = r.u16()
	q.Epoch = r.u64()
	q.Primary = int32(r.u32())
	q.Seq = r.u64()
	kl := int(r.u16())
	if kl > maxKeyLen {
		return replReq{}, fmt.Errorf("%w: key length %d", errDecode, kl)
	}
	q.Key = string(r.bytes(kl))
	rest := len(r.b) - r.off
	if rest > maxValueLen {
		return replReq{}, fmt.Errorf("%w: value length %d", errDecode, rest)
	}
	q.Value = r.bytes(rest)
	if r.fail {
		return replReq{}, fmt.Errorf("%w: replicate framing", errDecode)
	}
	return q, nil
}

// statusReq: probe (Prepare=false) or durable epoch promise
// (Prepare=true, the Paxos-prepare half of candidacy). NewEpoch and
// Candidate are meaningful only when preparing.
type statusReq struct {
	Shard     uint16
	Prepare   bool
	NewEpoch  uint64
	Candidate int32
}

func encodeStatus(q statusReq) []byte {
	b := putU16(nil, q.Shard)
	f := byte(0)
	if q.Prepare {
		f = 1
	}
	b = append(b, f)
	b = putU64(b, q.NewEpoch)
	return putU32(b, uint32(q.Candidate))
}

func decodeStatus(b []byte) (statusReq, error) {
	r := &rbuf{b: b}
	var q statusReq
	q.Shard = r.u16()
	q.Prepare = r.u8() == 1
	q.NewEpoch = r.u64()
	q.Candidate = int32(r.u32())
	if !r.done() {
		return statusReq{}, fmt.Errorf("%w: status framing", errDecode)
	}
	return q, nil
}

// statusResp reports a replica's full shard state: its durable content
// position (epoch, seq), the routing view it has learned, and its
// outstanding promise. Candidates compute the next epoch from the max
// over all three epochs of a quorum.
type statusResp struct {
	Epoch          uint64
	Seq            uint64
	LearnedEpoch   uint64
	LearnedPrimary int32
	Promised       uint64
	PromisedBy     int32
}

func encodeStatusResp(s statusResp) []byte {
	b := putU64(make([]byte, 0, 40), s.Epoch)
	b = putU64(b, s.Seq)
	b = putU64(b, s.LearnedEpoch)
	b = putU32(b, uint32(s.LearnedPrimary))
	b = putU64(b, s.Promised)
	return putU32(b, uint32(s.PromisedBy))
}

func decodeStatusResp(b []byte) (statusResp, error) {
	r := &rbuf{b: b}
	s := statusResp{
		Epoch:          r.u64(),
		Seq:            r.u64(),
		LearnedEpoch:   r.u64(),
		LearnedPrimary: int32(r.u32()),
		Promised:       r.u64(),
	}
	s.PromisedBy = int32(r.u32())
	if !r.done() {
		return statusResp{}, fmt.Errorf("%w: status resp framing", errDecode)
	}
	return s, nil
}

// snapPair is one record of a shard snapshot, carried with its full
// store key (data prefix included) so installs apply it verbatim.
type snapPair struct {
	Key   string
	Value []byte
}

// installReq: wholesale shard state push. A view-change install (epoch
// > receiver's content epoch, matching the receiver's durable promise)
// replaces the shard's records and meta in one commit; a same-epoch
// install from the current primary resynchronizes a lagging backup.
type installReq struct {
	Shard   uint16
	Epoch   uint64
	Primary int32
	Seq     uint64
	Pairs   []snapPair
}

func encodeInstall(q installReq) []byte {
	b := putU16(nil, q.Shard)
	b = putU64(b, q.Epoch)
	b = putU32(b, uint32(q.Primary))
	b = putU64(b, q.Seq)
	b = putU32(b, uint32(len(q.Pairs)))
	for _, kv := range q.Pairs {
		b = putU16(b, uint16(len(kv.Key)))
		b = append(b, kv.Key...)
		b = putU32(b, uint32(len(kv.Value)))
		b = append(b, kv.Value...)
	}
	return b
}

func decodeInstall(b []byte) (installReq, error) {
	r := &rbuf{b: b}
	var q installReq
	q.Shard = r.u16()
	q.Epoch = r.u64()
	q.Primary = int32(r.u32())
	q.Seq = r.u64()
	n := int(r.u32())
	if n > maxSnapPairs {
		return installReq{}, fmt.Errorf("%w: %d snapshot pairs", errDecode, n)
	}
	q.Pairs = make([]snapPair, 0, n)
	for i := 0; i < n; i++ {
		kl := int(r.u16())
		if kl > maxKeyLen {
			return installReq{}, fmt.Errorf("%w: key length %d", errDecode, kl)
		}
		k := string(r.bytes(kl))
		vl := int(r.u32())
		if vl > maxValueLen {
			return installReq{}, fmt.Errorf("%w: value length %d", errDecode, vl)
		}
		v := r.bytes(vl)
		if r.fail {
			break
		}
		q.Pairs = append(q.Pairs, snapPair{Key: k, Value: append([]byte(nil), v...)})
	}
	if !r.done() {
		return installReq{}, fmt.Errorf("%w: install framing", errDecode)
	}
	return q, nil
}

// pullResp: snapshot fetch answer — the responder's content position
// plus every record of the shard. Reuses the install framing.
func encodePullResp(epoch, seq uint64, pairs []snapPair) []byte {
	return encodeInstall(installReq{Epoch: epoch, Seq: seq, Pairs: pairs})
}

func decodePullResp(b []byte) (epoch, seq uint64, pairs []snapPair, err error) {
	q, err := decodeInstall(b)
	if err != nil {
		return 0, 0, nil, err
	}
	return q.Epoch, q.Seq, q.Pairs, nil
}

// Stale replies carry the responder's learned routing so one round trip
// both rejects and re-educates.
func encodeStale(epoch uint64, primary int32) []byte {
	b := []byte{stStale}
	b = putU64(b, epoch)
	return putU32(b, uint32(primary))
}

func decodeStale(b []byte) (epoch uint64, primary int32, ok bool) {
	if len(b) != 13 || b[0] != stStale {
		return 0, 0, false
	}
	return binary.BigEndian.Uint64(b[1:]), int32(binary.BigEndian.Uint32(b[9:])), true
}
