package cluster

import (
	"fmt"

	"hatrpc/internal/sim"
)

// Failover (DESIGN.md §15). Every cluster node runs one monitor
// process. Per tick, per owned shard:
//
//   - as primary: push same-epoch snapshot installs to suspect backups
//     (replicas that missed appends or were unreachable), restoring the
//     full replica set after partitions heal;
//   - as backup: probe the believed primary; after FailThreshold
//     consecutive failures, and only if every ring-earlier live replica
//     has also vanished (deterministic successor order), run a
//     candidacy.
//
// A candidacy is a two-phase, majority-fenced view change:
//
//  1. PREPARE: propose newEpoch = max(every epoch seen in a majority's
//     status) + 1. Each replica that accepts commits the promise
//     durably — from that commit on, across its own crashes, it refuses
//     every write below newEpoch. Quorum intersection then guarantees
//     the old primary can no longer acknowledge anything.
//  2. INSTALL: pull the snapshot of the freshest prepared replica (max
//     (content epoch, seq) — prefix-complete by the replication seq
//     rule, and frozen by its own promise), push it with the new epoch
//     to the prepared replicas, and promote only once a majority has
//     installed. Any acked write intersects the prepared majority in a
//     replica that accepted it BEFORE promising (afterwards it would
//     have refused), so the freshest prepared replica contains every
//     acked write — the cluster-wide zero-loss invariant.
//
// A candidacy that cannot reach quorum at any step simply aborts: the
// durable promises it left behind only inflate the next proposal's
// epoch. Minority-side candidates can therefore never promote, and
// same-epoch twin primaries cannot exist.

// startMonitor spawns the failover monitor as a node-owned process (it
// dies with the node's crash; the next boot's NewNode starts a fresh
// one). Ticks are staggered per node so symmetric candidacies on a
// freshly partitioned cluster do not collide deterministically forever.
func (n *Node) startMonitor() {
	n.eng.Node().Spawn(fmt.Sprintf("cluster-monitor-%d", n.self), func(p *sim.Proc) {
		p.Sleep(sim.Duration(n.cfg.ProbeIntervalNs + int64(n.self)*7_001))
		for {
			for _, id := range n.shardIDs {
				n.tickShard(p, n.shards[id])
			}
			p.Sleep(sim.Duration(n.cfg.ProbeIntervalNs))
		}
	})
}

// tickShard runs one monitor step for one shard.
func (n *Node) tickShard(p *sim.Proc, st *shardState) {
	st.mu.Lock(p)
	amPrimary := st.primary == n.self && st.learnedEpoch == st.epoch && st.promised <= st.epoch
	ghost := st.learnedPrimary == n.self && !amPrimary
	target := st.learnedPrimary
	st.mu.Unlock()
	switch {
	case amPrimary:
		n.resyncSuspects(p, st)
	case ghost:
		// Hearsay names us primary of a view we never finished installing
		// (an interrupted candidacy). Re-run it at a higher epoch.
		n.runCandidacy(p, st)
	case target != n.self:
		n.probePrimary(p, st, target)
	}
}

// probePrimary checks the believed primary's liveness and adopts any
// fresher routing it reports.
func (n *Node) probePrimary(p *sim.Proc, st *shardState, target int) {
	resp, err := n.callPeerDL(p, target, FnShardStatus,
		encodeStatus(statusReq{Shard: uint16(st.id)}), n.cfg.ProbeDeadlineNs)
	if err == nil && len(resp) >= 1 {
		if sr, derr := decodeStatusResp(resp[1:]); derr == nil {
			st.mu.Lock(p)
			st.probeFails = 0
			st.adoptLearned(sr.LearnedEpoch, int(sr.LearnedPrimary))
			st.mu.Unlock()
			return
		}
	}
	st.mu.Lock(p)
	st.probeFails++
	fails := st.probeFails
	st.mu.Unlock()
	if fails < n.cfg.FailThreshold {
		return
	}
	if !n.firstEligible(p, st) {
		return
	}
	n.runCandidacy(p, st)
}

// firstEligible reports whether this node is the deterministic
// successor: the first replica, in ring order with the failed primary
// skipped, that is still reachable. Later replicas defer to any
// reachable earlier one, so at most one candidacy normally runs per
// failure (races are harmless — prepares serialize them).
func (n *Node) firstEligible(p *sim.Proc, st *shardState) bool {
	st.mu.Lock(p)
	prim := st.learnedPrimary
	reps := st.replicas
	st.mu.Unlock()
	for _, r := range reps {
		if r == prim {
			continue
		}
		if r == n.self {
			return true
		}
		resp, err := n.callPeerDL(p, r, FnShardStatus,
			encodeStatus(statusReq{Shard: uint16(st.id)}), n.cfg.ProbeDeadlineNs)
		if err == nil && len(resp) >= 1 {
			return false // an earlier successor lives; it will run
		}
	}
	return false
}

// resyncSuspects pushes a same-epoch snapshot install to every backup
// marked suspect (missed appends, or unreachable during a write or the
// promotion). Runs under the shard mutex so the snapshot is exactly the
// current prefix and no append interleaves mid-resync.
func (n *Node) resyncSuspects(p *sim.Proc, st *shardState) {
	st.mu.Lock(p)
	defer st.mu.Unlock()
	if st.primary != n.self || st.promised > st.epoch {
		return
	}
	var targets []int
	for _, r := range st.replicas {
		if r != n.self && st.suspect[r] {
			targets = append(targets, r)
		}
	}
	if len(targets) == 0 {
		return
	}
	pairs, err := n.snapshotLocked(st)
	if err != nil {
		return
	}
	ir := encodeInstall(installReq{
		Shard: uint16(st.id), Epoch: st.epoch, Primary: int32(n.self),
		Seq: st.seq, Pairs: pairs,
	})
	for _, r := range targets {
		resp, err := n.callPeerDL(p, r, FnInstall, ir, n.cfg.CallDeadlineNs)
		if err != nil || len(resp) < 1 {
			continue // still unreachable; retry next tick
		}
		switch resp[0] {
		case stOK:
			delete(st.suspect, r)
			n.stats.Resyncs++
			n.resyncs.Inc()
		case stStale:
			if e, pr, ok := decodeStale(resp); ok {
				st.adoptLearned(e, int(pr)) // we were deposed; stop resyncing
			}
			return
		}
	}
}

// runCandidacy attempts an epoch-fenced promotion of this node for the
// shard. Holds the shard mutex throughout: incoming appends and
// competing prepares for this shard at this replica wait (bounded by
// the callers' deadlines) until the outcome is durable.
func (n *Node) runCandidacy(p *sim.Proc, st *shardState) {
	st.mu.Lock(p)
	defer st.mu.Unlock()
	if st.primary == n.self && st.learnedEpoch == st.epoch && st.promised <= st.epoch {
		return // already promoted (a competing path won for us)
	}
	n.stats.Candidacies++
	shard := uint16(st.id)

	// Phase 0 — status census: a majority must be reachable, and the
	// proposal must clear every epoch any of them has seen or promised.
	type peerStat struct {
		id int
		sr statusResp
	}
	maxE := st.epoch
	if st.learnedEpoch > maxE {
		maxE = st.learnedEpoch
	}
	if st.promised > maxE {
		maxE = st.promised
	}
	var census []peerStat
	adoptE, adoptP := uint64(0), 0
	for _, r := range st.replicas {
		if r == n.self {
			continue
		}
		resp, err := n.callPeerDL(p, r, FnShardStatus,
			encodeStatus(statusReq{Shard: shard}), n.cfg.ProbeDeadlineNs)
		if err != nil || len(resp) < 1 {
			continue
		}
		sr, derr := decodeStatusResp(resp[1:])
		if derr != nil {
			continue
		}
		census = append(census, peerStat{r, sr})
		for _, e := range []uint64{sr.Epoch, sr.LearnedEpoch, sr.Promised} {
			if e > maxE {
				maxE = e
			}
		}
		if sr.LearnedEpoch > adoptE {
			adoptE, adoptP = sr.LearnedEpoch, int(sr.LearnedPrimary)
		}
	}
	if len(census)+1 < quorum(len(st.replicas)) {
		return // cannot fence a majority (e.g. minority partition side)
	}
	if adoptE > st.learnedEpoch {
		// A fresher view already exists: adopt it and defer — if its
		// primary is dead too, the next tick candidacies above it.
		st.adoptLearned(adoptE, adoptP)
		return
	}
	newEpoch := maxE + 1

	// Phase 1 — prepare: durable promises, self first.
	if err := n.promise(p, st, newEpoch, n.self); err != nil {
		return
	}
	type prepped struct {
		id    int
		epoch uint64
		seq   uint64
	}
	acc := []prepped{{n.self, st.epoch, st.seq}}
	prep := encodeStatus(statusReq{Shard: shard, Prepare: true, NewEpoch: newEpoch, Candidate: int32(n.self)})
	for _, ps := range census {
		resp, err := n.callPeerDL(p, ps.id, FnShardStatus, prep, n.cfg.CallDeadlineNs)
		if err != nil || len(resp) < 1 {
			continue
		}
		sr, derr := decodeStatusResp(resp[1:])
		if derr != nil {
			continue
		}
		if resp[0] != stOK {
			// Outbid: someone holds a higher promise or view. Abort; our
			// own promise only inflates the next proposal.
			st.adoptLearned(sr.LearnedEpoch, int(sr.LearnedPrimary))
			return
		}
		acc = append(acc, prepped{ps.id, sr.Epoch, sr.Seq})
	}
	if len(acc) < quorum(len(st.replicas)) {
		return
	}

	// Phase 2 — pick the freshest prepared replica and fetch its
	// snapshot. Prefix-completeness of replicas makes (epoch, seq) a
	// total freshness order; the promise freezes it until install.
	best := acc[0]
	for _, a := range acc[1:] {
		if a.epoch > best.epoch ||
			(a.epoch == best.epoch && (a.seq > best.seq || (a.seq == best.seq && a.id < best.id))) {
			best = a
		}
	}
	var pairs []snapPair
	seq := st.seq
	if best.id != n.self {
		resp, err := n.callPeerDL(p, best.id, FnShardPull, putU16(nil, shard), n.cfg.CallDeadlineNs)
		if err != nil || len(resp) < 1 || resp[0] != stOK {
			return // freshest vanished mid-candidacy; retry next tick
		}
		_, pseq, pp, derr := decodePullResp(resp[1:])
		if derr != nil {
			return
		}
		pairs, seq = pp, pseq
	} else {
		var err error
		if pairs, err = n.snapshotLocked(st); err != nil {
			return
		}
	}

	// Phase 3 — install on the prepared peers; promote locally only
	// once a majority (self included) holds the new view durably.
	inst := installReq{Shard: shard, Epoch: newEpoch, Primary: int32(n.self), Seq: seq, Pairs: pairs}
	ir := encodeInstall(inst)
	acks := 1 // self, applied below
	okPeer := make(map[int]bool)
	for _, a := range acc {
		if a.id == n.self {
			continue
		}
		resp, err := n.callPeerDL(p, a.id, FnInstall, ir, n.cfg.CallDeadlineNs)
		if err == nil && len(resp) >= 1 && resp[0] == stOK {
			acks++
			okPeer[a.id] = true
		}
	}
	if acks < quorum(len(st.replicas)) {
		return // promises stand; the next candidacy proposes higher
	}
	if err := n.applyInstall(p, st, inst); err != nil {
		return
	}
	st.suspect = make(map[int]bool)
	for _, r := range st.replicas {
		if r != n.self && !okPeer[r] {
			st.suspect[r] = true // catch up via resync once reachable
		}
	}
	st.probeFails = 0
	n.stats.Promotions++
	n.promotions.Inc()
}
