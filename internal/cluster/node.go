package cluster

import (
	"errors"
	"fmt"
	"sort"

	"hatrpc/internal/engine"
	"hatrpc/internal/hatkv"
	kvgen "hatrpc/internal/hatkv/gen"
	"hatrpc/internal/obs"
	"hatrpc/internal/sim"
	"hatrpc/internal/simnet"
)

// Config is the shared cluster configuration. Every node and every
// client must be built from the same (Seed, NodeIDs, NShards, RF) —
// ring placement is a pure function of them. The zero value of each
// timing knob gets a default.
type Config struct {
	Seed    int64
	NodeIDs []int // simnet node ids hosting cluster nodes, ascending
	NShards int
	RF      int // replicas per shard (primary included)

	// Monitor/failover pacing, virtual ns.
	ProbeIntervalNs int64 // monitor tick spacing
	ProbeDeadlineNs int64 // one liveness/status probe
	CallDeadlineNs  int64 // replication, prepare, pull and install calls
	FailThreshold   int   // consecutive failed primary probes before candidacy

	// Client knobs.
	ClientDeadlineNs int64 // one client-facing call
	ClientAttempts   int   // retry budget per Put/Get
	ClientBackoffNs  int64 // pacing between client retries
}

func (c Config) withDefaults() Config {
	if c.NShards <= 0 {
		c.NShards = 8
	}
	if c.RF <= 0 {
		c.RF = 3
	}
	if c.ProbeIntervalNs <= 0 {
		c.ProbeIntervalNs = 150_000
	}
	if c.ProbeDeadlineNs <= 0 {
		c.ProbeDeadlineNs = 120_000
	}
	if c.CallDeadlineNs <= 0 {
		c.CallDeadlineNs = 300_000
	}
	if c.FailThreshold <= 0 {
		c.FailThreshold = 2
	}
	if c.ClientDeadlineNs <= 0 {
		c.ClientDeadlineNs = 300_000
	}
	if c.ClientAttempts <= 0 {
		c.ClientAttempts = 12
	}
	if c.ClientBackoffNs <= 0 {
		c.ClientBackoffNs = 150_000
	}
	return c
}

// shardState is one shard's in-memory state at one replica, rebuilt
// from the durable meta record on every boot. Content fields mirror
// what the local store holds; learned fields are routing hearsay
// (always ≥ content) served to clients and used to demote deposed
// primaries.
type shardState struct {
	id       int
	replicas []int // configured replica set, ring order

	epoch   uint64 // content epoch
	primary int    // content primary
	seq     uint64 // last applied replication seq in the content epoch

	learnedEpoch   uint64
	learnedPrimary int

	promised   uint64 // durable candidacy promise (mirrors meta)
	promisedBy int

	// mu serializes writes, installs and candidacy on this shard at
	// this replica. Lock order: shard mu → session mu, never reversed.
	mu *sim.Mutex

	// Primary-side replication bookkeeping.
	suspect    map[int]bool // backup → needs a resync install (direct index only)
	probeFails int          // backup-side: consecutive failed primary probes
}

// NodeStats counts a cluster node's lifecycle events (deterministic
// under one seed; the soak folds them into its report).
type NodeStats struct {
	Promotions   int64 // candidacies won (view installs reaching quorum)
	Candidacies  int64 // candidacies started
	Resyncs      int64 // same-epoch snapshot installs pushed to lagging backups
	StaleWrites  int64 // stStale replies sent
	FencedWrites int64 // writes refused under an outstanding promise
}

// Node is one cluster server: a shard-aware KV service over the node's
// durable hatkv store, plus the failover monitor that probes primaries,
// runs epoch-fenced candidacies, and resynchronizes lagging backups.
// Build one per boot with NewNode — it dies with the simnet node's
// crash, while the store underneath survives into the next boot.
type Node struct {
	cfg    Config
	self   int // index into cfg.NodeIDs == position in roster
	env    *sim.Env
	eng    *engine.Engine
	store  *hatkv.Store
	roster []*simnet.Node // cluster nodes by index

	shards   map[int]*shardState // shards where self is a configured replica
	shardIDs []int               // sorted keys of shards
	initial  *ShardMap           // static epoch-1 map for non-owned entries

	smu  *sim.Mutex              // guards sess creation
	sess map[int]*engine.Session // peer index → replication session
	srv  *engine.Server          // nil for NewUnservedNode (caller serves Handle)

	stats NodeStats

	promotions *obs.Counter
	resyncs    *obs.Counter
	staleRej   *obs.Counter
	fencedRej  *obs.Counter
}

// NewNode builds the cluster service for one boot of a simnet node:
// recovers per-shard meta from the durable store, registers the wire
// handler, and spawns the failover monitor as a node-owned process.
// self is the node's index into cfg.NodeIDs.
func NewNode(eng *engine.Engine, store *hatkv.Store, roster []*simnet.Node, self int, cfg Config) *Node {
	return newNode(eng, store, roster, self, cfg, true)
}

func newNode(eng *engine.Engine, store *hatkv.Store, roster []*simnet.Node, self int, cfg Config, serve bool) *Node {
	cfg = cfg.withDefaults()
	env := eng.Node().Cluster().Env()
	n := &Node{
		cfg:     cfg,
		self:    self,
		env:     env,
		eng:     eng,
		store:   store,
		roster:  roster,
		shards:  make(map[int]*shardState),
		initial: NewShardMap(cfg.Seed, cfg.NodeIDs, cfg.NShards, cfg.RF),
		smu:     sim.NewMutex(env),
		sess:    make(map[int]*engine.Session),
	}
	for s := 0; s < cfg.NShards; s++ {
		reps32 := n.initial.Shards[s].Replicas
		mine := false
		reps := make([]int, len(reps32))
		for i, r := range reps32 {
			reps[i] = int(r)
			if int(r) == self {
				mine = true
			}
		}
		if !mine {
			continue
		}
		st := &shardState{
			id:             s,
			replicas:       reps,
			epoch:          1,
			primary:        reps[0],
			learnedEpoch:   1,
			learnedPrimary: reps[0],
			mu:             sim.NewMutex(env),
			suspect:        make(map[int]bool),
		}
		n.recoverMeta(st)
		n.shards[s] = st
		n.shardIDs = append(n.shardIDs, s)
	}
	// shardIDs is built in ascending shard order already (the loop above).
	if serve {
		n.srv = eng.Serve(Port, n.handle)
	}
	n.startMonitor()
	return n
}

// NewUnservedNode is NewNode without registering the wire handler: the
// caller serves Handle on cluster.Port itself — the node lifecycle layer
// (internal/node) does this to multiplex its ops surface onto the same
// port and dispatcher processes, keeping the DES process set (and hence
// the event schedule) identical to an ops-free NewNode build.
func NewUnservedNode(eng *engine.Engine, store *hatkv.Store, roster []*simnet.Node, self int, cfg Config) *Node {
	return newNode(eng, store, roster, self, cfg, false)
}

// Stats returns the node's lifecycle counters.
func (n *Node) Stats() NodeStats { return n.stats }

// SetObs attaches cluster counters (cluster.promotions, cluster.resyncs,
// cluster.stale_writes, cluster.fenced_writes) to the node.
func (n *Node) SetObs(r *obs.Registry) {
	if r == nil {
		n.promotions, n.resyncs, n.staleRej, n.fencedRej = nil, nil, nil, nil
		return
	}
	n.promotions = r.Counter("cluster.promotions")
	n.resyncs = r.Counter("cluster.resyncs")
	n.staleRej = r.Counter("cluster.stale_writes")
	n.fencedRej = r.Counter("cluster.fenced_writes")
}

// recoverMeta loads the shard's durable meta record, if any: a restart
// resumes at the exact (epoch, primary, seq, promise) its surviving
// data belongs to. Reads the backing env directly — recovery happens at
// boot, outside any simulated request.
func (n *Node) recoverMeta(st *shardState) {
	txn, err := n.store.Env().BeginRead()
	if err != nil {
		return
	}
	defer txn.Abort()
	raw, err := txn.Get([]byte(metaKey(st.id)))
	if err != nil {
		return
	}
	m, err := decodeShardMeta(raw)
	if err != nil {
		return
	}
	// A durable record can only move the shard forward. At boot (the
	// only call site) st holds the epoch-1 defaults, so the fence is a
	// no-op there; it makes recoverMeta safe to call from any future
	// re-read path without resurrecting a deposed position.
	if m.Epoch < st.epoch || m.Seq < st.seq || m.Promised < st.promised {
		return
	}
	st.epoch = m.Epoch
	st.primary = int(m.Primary)
	st.seq = m.Seq
	st.promised = m.Promised
	st.promisedBy = int(m.PromisedBy)
	st.adoptLearned(m.Epoch, int(m.Primary))
}

// meta renders the shard's current durable record.
func (st *shardState) meta() shardMeta {
	return shardMeta{
		Epoch:      st.epoch,
		Primary:    int32(st.primary),
		Seq:        st.seq,
		Promised:   st.promised,
		PromisedBy: int32(st.promisedBy),
	}
}

// adoptLearned folds fresher routing hearsay into the shard (monotone
// in epoch). It never touches content state — only installs do.
func (st *shardState) adoptLearned(epoch uint64, primary int) {
	if epoch > st.learnedEpoch {
		st.learnedEpoch = epoch
		st.learnedPrimary = primary
	}
}

// staleReply answers with the freshest routing this replica knows.
func (n *Node) staleReply(st *shardState) []byte {
	n.stats.StaleWrites++
	n.staleRej.Inc()
	return encodeStale(st.learnedEpoch, int32(st.learnedPrimary))
}

// applyWrite commits one replicated record and the covering meta in a
// single store transaction, so durability of the data and of its
// (epoch, seq) position are inseparable under every sync mode.
// Fence trips. These mark a caller trying to move a shard backwards —
// impossible through the current handlers, which all pre-check — and
// surface as stErr to the peer if a future path forgets to.
var (
	errStaleSeq     = errors.New("cluster: write seq not past the shard position")
	errStaleInstall = errors.New("cluster: install below the shard epoch")
	errStalePromise = errors.New("cluster: promise not past the prepare fence")
)

func (n *Node) applyWrite(p *sim.Proc, st *shardState, key string, val []byte, seq uint64) error {
	// Content position only advances. Both callers already hand the
	// next contiguous seq (handlePut computes st.seq+1, handleReplicate
	// rejects gaps and duplicates), so the fence never trips today.
	if seq <= st.seq {
		return errStaleSeq
	}
	m := st.meta()
	m.Seq = seq
	err := n.store.MultiPut(p, []*kvgen.KVPair{
		{Key: dataKey(st.id, key), Value: val},
		{Key: metaKey(st.id), Value: m.encode()},
	})
	if err == nil {
		// Commit the in-memory position only once the store did: no
		// transient advance to roll back on failure.
		st.seq = seq
	}
	return err
}

// applyInstall replaces the shard's state wholesale: every snapshot
// record plus the new meta in one commit. Records never deleted under
// this protocol can only be overwritten, so replacement == overwrite.
func (n *Node) applyInstall(p *sim.Proc, st *shardState, q installReq) error {
	// Installs move the content view forward. Callers bounce stale
	// pushes before getting here (handleInstall's fence, the candidate's
	// own promised epoch); this local fence makes the invariant hold no
	// matter who calls.
	if q.Epoch < st.epoch {
		return errStaleInstall
	}
	prev := *st
	st.epoch = q.Epoch
	st.primary = int(q.Primary)
	// The content seq is epoch-scoped: a view-change install legally
	// resets it to the snapshot's position, lower or not.
	st.seq = q.Seq //hatlint:allow epochfence -- seq is epoch-scoped; an install adopts the snapshot position wholesale
	if q.Epoch > st.promised {
		st.promised = q.Epoch
		st.promisedBy = int(q.Primary)
	}
	st.adoptLearned(q.Epoch, int(q.Primary))
	pairs := make([]*kvgen.KVPair, 0, len(q.Pairs)+1)
	for i := range q.Pairs {
		pairs = append(pairs, &kvgen.KVPair{Key: q.Pairs[i].Key, Value: q.Pairs[i].Value})
	}
	pairs = append(pairs, &kvgen.KVPair{Key: metaKey(st.id), Value: st.meta().encode()})
	if err := n.store.MultiPut(p, pairs); err != nil {
		*st = prev
		return err
	}
	return nil
}

// promise durably records an epoch promise (the prepare half of
// candidacy): from this commit on — across crashes — the replica
// refuses writes and view-change installs below the promised epoch.
func (n *Node) promise(p *sim.Proc, st *shardState, epoch uint64, candidate int) error {
	// The prepare fence only ratchets up. handleStatus and runCandidacy
	// both check before calling; the local fence keeps promise() safe to
	// call bare.
	if epoch <= st.promised {
		return errStalePromise
	}
	prevE, prevBy := st.promised, st.promisedBy
	st.promised = epoch
	st.promisedBy = candidate
	if err := n.store.Put(p, metaKey(st.id), st.meta().encode()); err != nil {
		st.promised, st.promisedBy = prevE, prevBy
		return err
	}
	return nil
}

// snapshotLocked collects every record of the shard plus its content
// position. Caller holds st.mu, so the snapshot is a consistent prefix.
func (n *Node) snapshotLocked(st *shardState) ([]snapPair, error) {
	txn, err := n.store.Env().BeginRead()
	if err != nil {
		return nil, err
	}
	defer txn.Abort()
	prefix := dataPrefix(st.id)
	var out []snapPair
	for c := txn.Seek([]byte(prefix)); c.Valid(); c.Next() {
		k := c.Key()
		if len(k) < len(prefix) || string(k[:len(prefix)]) != prefix {
			break
		}
		out = append(out, snapPair{
			Key:   string(k),
			Value: append([]byte(nil), c.Value()...),
		})
	}
	return out, nil
}

// callPeer performs one idempotent RPC to another cluster node over a
// cached session (created on first use; the session itself survives
// peer restarts by re-dialing).
func (n *Node) callPeer(p *sim.Proc, peer int, fn uint32, req []byte) ([]byte, error) {
	return n.callPeerDL(p, peer, fn, req, n.cfg.CallDeadlineNs)
}

// callPeerDL is callPeer with an explicit deadline: liveness probes run
// tighter than replication so a dead primary is detected within a few
// monitor ticks.
func (n *Node) callPeerDL(p *sim.Proc, peer int, fn uint32, req []byte, deadlineNs int64) ([]byte, error) {
	n.smu.Lock(p)
	s := n.sess[peer]
	if s == nil {
		var err error
		s, err = n.eng.NewSession(p, n.roster[peer], Port, engine.SessionConfig{
			MaxRedials:    2,
			RedialBackoff: 50_000,
		})
		if err != nil {
			n.smu.Unlock()
			return nil, err
		}
		n.sess[peer] = s
	}
	n.smu.Unlock()
	return s.Call(p, fn, req, engine.CallOpts{
		Proto:      engine.EagerSendRecv,
		Idempotent: true,
		Deadline:   sim.Duration(deadlineNs),
	})
}

// Handle exposes the cluster wire dispatcher for callers that serve the
// port themselves (NewUnservedNode): the node lifecycle layer wraps it
// to multiplex ops functions onto cluster.Port.
func (n *Node) Handle(p *sim.Proc, fn uint32, req []byte) []byte {
	return n.handle(p, fn, req)
}

// Server returns the engine server created by NewNode (nil for
// NewUnservedNode, where the caller owns the server).
func (n *Node) Server() *engine.Server { return n.srv }

// CloseSessions closes the node's cached replication sessions in
// deterministic (sorted-peer) order — part of graceful shutdown, so the
// peers' keepalive state and this node's QPs are released before the
// engine closes.
func (n *Node) CloseSessions() {
	peers := make([]int, 0, len(n.sess))
	for peer := range n.sess {
		peers = append(peers, peer)
	}
	sort.Ints(peers)
	for _, peer := range peers {
		n.sess[peer].Close()
	}
	n.sess = make(map[int]*engine.Session)
}

// handle dispatches the cluster wire protocol.
func (n *Node) handle(p *sim.Proc, fn uint32, req []byte) []byte {
	switch fn {
	case FnShardMap:
		return n.handleShardMap()
	case FnClusterPut:
		return n.handlePut(p, req)
	case FnClusterGet:
		return n.handleGet(p, req)
	case FnReplicate:
		return n.handleReplicate(p, req)
	case FnShardStatus:
		return n.handleStatus(p, req)
	case FnShardPull:
		return n.handlePull(p, req)
	case FnInstall:
		return n.handleInstall(p, req)
	}
	return []byte{stErr}
}

// handleShardMap serves this node's routing view: its own shards'
// learned (epoch, primary), the static epoch-1 map for the rest.
// Clients merge views across nodes, so each shard's replicas — which
// always know the freshest epoch — win.
func (n *Node) handleShardMap() []byte {
	m := &ShardMap{Shards: make([]ShardInfo, len(n.initial.Shards))}
	copy(m.Shards, n.initial.Shards)
	for _, id := range n.shardIDs {
		st := n.shards[id]
		m.Shards[id].Epoch = st.learnedEpoch
		m.Shards[id].Primary = int32(st.learnedPrimary)
	}
	out := []byte{stOK}
	return append(out, m.Encode()...)
}

// handlePut executes a client write as the shard primary: fence and
// epoch checks, local durable apply, then sequential replication to the
// backups; the ack requires a majority of the replica set (self
// included). Split-brain safety lives here: a deposed or minority-side
// primary cannot assemble a quorum, so it can never acknowledge.
func (n *Node) handlePut(p *sim.Proc, req []byte) []byte {
	q, err := decodePut(req)
	if err != nil {
		return []byte{stErr}
	}
	st := n.shards[int(q.Shard)]
	if st == nil {
		// Not a replica of this shard: answer with the static view so a
		// confused client re-routes.
		e := n.initial.Shards[int(q.Shard)%len(n.initial.Shards)]
		return encodeStale(e.Epoch, e.Primary)
	}
	st.mu.Lock(p)
	defer st.mu.Unlock()
	if st.promised > st.epoch {
		// A candidacy holds our durable promise: the old view is fenced.
		n.stats.FencedWrites++
		n.fencedRej.Inc()
		return []byte{stFenced}
	}
	if st.primary != n.self || q.Epoch != st.epoch || st.learnedEpoch != st.epoch {
		return n.staleReply(st)
	}
	seq := st.seq + 1
	if err := n.applyWrite(p, st, q.Key, q.Value, seq); err != nil {
		return []byte{stErr}
	}
	acks := 1
	rr := encodeRepl(replReq{
		Shard: q.Shard, Epoch: st.epoch, Primary: int32(n.self),
		Seq: seq, Key: q.Key, Value: q.Value,
	})
	for _, b := range st.replicas {
		if b == n.self || st.suspect[b] {
			continue // suspects catch up through resync installs
		}
		resp, err := n.callPeer(p, b, FnReplicate, rr)
		if err != nil || len(resp) == 0 {
			st.suspect[b] = true
			continue
		}
		switch resp[0] {
		case stOK:
			acks++
		case stStale:
			if e, pr, ok := decodeStale(resp); ok {
				st.adoptLearned(e, int(pr))
			}
			return n.staleReply(st) // deposed mid-write; never ack
		default: // stNeedSync, stFenced, stErr
			st.suspect[b] = true
		}
	}
	if acks < quorum(len(st.replicas)) {
		return []byte{stNotQuorum}
	}
	return []byte{stOK}
}

// handleGet serves a read from the primary's local store. Reads carry
// the same epoch check as writes, so a client routing at a stale epoch
// refreshes instead of reading from a deposed primary.
func (n *Node) handleGet(p *sim.Proc, req []byte) []byte {
	q, err := decodeGet(req)
	if err != nil {
		return []byte{stErr}
	}
	st := n.shards[int(q.Shard)]
	if st == nil {
		e := n.initial.Shards[int(q.Shard)%len(n.initial.Shards)]
		return encodeStale(e.Epoch, e.Primary)
	}
	st.mu.Lock(p)
	defer st.mu.Unlock()
	if st.primary != n.self || q.Epoch != st.epoch || st.learnedEpoch != st.epoch {
		return n.staleReply(st)
	}
	v, err := n.store.Get(p, dataKey(st.id, q.Key))
	if err != nil {
		return []byte{stOK, 0} // not found (or store error): absent
	}
	out := []byte{stOK, 1}
	return append(out, v...)
}

// handleReplicate accepts one ordered log append from the shard
// primary. Acceptance demands the exact content view (epoch AND
// primary), no fresher hearsay, no outstanding higher promise, and a
// contiguous seq. Duplicates (session replays after a reconnect) ack
// idempotently; gaps demand a snapshot install — a replica's content is
// therefore always a prefix of its primary's write sequence, which is
// what lets candidacy pick "freshest replica" by (epoch, seq) alone.
func (n *Node) handleReplicate(p *sim.Proc, req []byte) []byte {
	q, err := decodeRepl(req)
	if err != nil {
		return []byte{stErr}
	}
	st := n.shards[int(q.Shard)]
	if st == nil {
		return []byte{stErr} // replicate to a non-replica: config bug
	}
	st.mu.Lock(p)
	defer st.mu.Unlock()
	if q.Epoch < st.epoch || (q.Epoch == st.epoch && int(q.Primary) != st.primary) ||
		q.Epoch < st.learnedEpoch {
		return n.staleReply(st)
	}
	if q.Epoch < st.promised {
		n.stats.FencedWrites++
		n.fencedRej.Inc()
		return []byte{stFenced}
	}
	if q.Epoch > st.epoch {
		return []byte{stNeedSync} // only installs advance content epochs
	}
	if q.Seq <= st.seq {
		return []byte{stOK} // duplicate of an already-applied append
	}
	if q.Seq != st.seq+1 {
		return []byte{stNeedSync}
	}
	if err := n.applyWrite(p, st, q.Key, q.Value, q.Seq); err != nil {
		return []byte{stErr}
	}
	return []byte{stOK}
}

// handleStatus answers a probe with the shard's full state; with the
// prepare flag it first durably promises the candidate's epoch. The
// promise is the fence: from its commit on — across this replica's own
// crashes — every write below the promised epoch is refused, so an old
// primary can never assemble an ack quorum behind a candidacy's back.
func (n *Node) handleStatus(p *sim.Proc, req []byte) []byte {
	q, err := decodeStatus(req)
	if err != nil {
		return []byte{stErr}
	}
	st := n.shards[int(q.Shard)]
	if st == nil {
		return []byte{stErr}
	}
	st.mu.Lock(p)
	defer st.mu.Unlock()
	status := stOK
	if q.Prepare {
		if q.NewEpoch > st.promised && q.NewEpoch > st.epoch {
			if err := n.promise(p, st, q.NewEpoch, int(q.Candidate)); err != nil {
				return []byte{stErr}
			}
		} else {
			status = stStale // candidate must re-propose above what we reply
		}
	}
	out := []byte{status}
	return append(out, encodeStatusResp(statusResp{
		Epoch:          st.epoch,
		Seq:            st.seq,
		LearnedEpoch:   st.learnedEpoch,
		LearnedPrimary: int32(st.learnedPrimary),
		Promised:       st.promised,
		PromisedBy:     int32(st.promisedBy),
	})...)
}

// handlePull serves a consistent snapshot of the shard to a candidate.
func (n *Node) handlePull(p *sim.Proc, req []byte) []byte {
	r := &rbuf{b: req}
	shard := int(r.u16())
	if !r.done() {
		return []byte{stErr}
	}
	st := n.shards[shard]
	if st == nil {
		return []byte{stErr}
	}
	st.mu.Lock(p)
	defer st.mu.Unlock()
	pairs, err := n.snapshotLocked(st)
	if err != nil {
		return []byte{stErr}
	}
	out := []byte{stOK}
	return append(out, encodePullResp(st.epoch, st.seq, pairs)...)
}

// handleInstall applies a wholesale shard state push. Two legal shapes:
// a view-change install, which must clear this replica's durable
// promise (an expired candidacy's install bounces off a newer one); and
// a same-epoch resync from the current primary, which fast-forwards a
// lagging backup. Both replace records and meta in one commit.
func (n *Node) handleInstall(p *sim.Proc, req []byte) []byte {
	q, err := decodeInstall(req)
	if err != nil {
		return []byte{stErr}
	}
	st := n.shards[int(q.Shard)]
	if st == nil {
		return []byte{stErr}
	}
	st.mu.Lock(p)
	defer st.mu.Unlock()
	switch {
	case q.Epoch > st.epoch:
		// View change. Installs below our outstanding promise are an
		// expired candidacy's stragglers and bounce off the fence. At or
		// above the promise they are accepted even if we never promised
		// this epoch (we were down or partitioned during the candidacy):
		// only a candidate whose prepare reached a majority ever sends
		// installs, prepare's strictly-greater promise rule makes that
		// candidate unique per epoch, and applyInstall records the epoch
		// as our new promise floor — so accepting doubles as the promise
		// we missed, and crashed-through-failover replicas can rejoin via
		// plain resync instead of waiting for the next view change.
		if q.Epoch < st.promised {
			n.stats.FencedWrites++
			n.fencedRej.Inc()
			return []byte{stFenced}
		}
		if err := n.applyInstall(p, st, q); err != nil {
			return []byte{stErr}
		}
		st.probeFails = 0
		return []byte{stOK}
	case q.Epoch == st.epoch && int(q.Primary) == st.primary:
		// Resync from the current primary. Refuse while a candidacy holds
		// a higher promise — prepare froze this replica's reported state.
		if st.promised > st.epoch {
			n.stats.FencedWrites++
			n.fencedRej.Inc()
			return []byte{stFenced}
		}
		if q.Seq <= st.seq {
			return []byte{stOK} // duplicate or no-op catch-up
		}
		if err := n.applyInstall(p, st, q); err != nil {
			return []byte{stErr}
		}
		return []byte{stOK}
	default:
		return n.staleReply(st)
	}
}

// String renders the node's shard table for debugging.
func (n *Node) String() string {
	s := fmt.Sprintf("cluster node %d:", n.self)
	for _, id := range n.shardIDs {
		st := n.shards[id]
		s += fmt.Sprintf(" [s%d e%d p%d seq%d]", id, st.epoch, st.primary, st.seq)
	}
	return s
}
