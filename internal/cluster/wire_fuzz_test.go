package cluster

import (
	"bytes"
	"testing"
)

// FuzzShardMapDecode checks the shard-map wire codec against arbitrary
// bytes: DecodeShardMap must reject malformed, truncated or oversized
// buffers without panicking or over-allocating (every count field is
// bounds-checked before any allocation), and every accepted map must
// re-encode to the exact input bytes — the codec is bijective on its
// domain, so client-side merges and server-side re-serves can never
// drift from what traveled the wire.
func FuzzShardMapDecode(f *testing.F) {
	f.Add(NewShardMap(7, []int{0, 1, 2, 3, 4}, 8, 3).Encode())
	m := NewShardMap(3, []int{0, 1}, 2, 1)
	m.Shards[1].Epoch = 1 << 40
	f.Add(m.Encode())
	f.Add([]byte{})
	f.Add([]byte{0, 1})                   // count 1, no shard body
	f.Add([]byte{0xFF, 0xFF})             // count over maxShards
	f.Add(m.Encode()[:len(m.Encode())-1]) // truncated tail
	f.Add(append(m.Encode(), 0x00))       // trailing garbage
	f.Fuzz(func(t *testing.T, data []byte) {
		dm, err := DecodeShardMap(data)
		if err != nil {
			return
		}
		if len(dm.Shards) > maxShards {
			t.Fatalf("decoded %d shards past the bound", len(dm.Shards))
		}
		for _, s := range dm.Shards {
			if len(s.Replicas) > maxReplicas {
				t.Fatalf("decoded %d replicas past the bound", len(s.Replicas))
			}
		}
		if out := dm.Encode(); !bytes.Equal(out, data) {
			t.Fatalf("decode/encode not bijective:\n in:  %x\n out: %x", data, out)
		}
	})
}
