package trdma_test

import (
	"fmt"
	"strings"
	"testing"

	hybridgen "hatrpc/examples/hybrid/gen"
	echogen "hatrpc/examples/quickstart/gen"
	"hatrpc/internal/engine"
	"hatrpc/internal/hints"
	"hatrpc/internal/sim"
	"hatrpc/internal/simnet"
	"hatrpc/internal/trdma"
)

// echoImpl implements the generated Echo handler.
type echoImpl struct{ pings, notifies int }

func (e *echoImpl) Ping(p *sim.Proc, msg string) (string, error) {
	e.pings++
	return "pong:" + msg, nil
}

func (e *echoImpl) Reverse(p *sim.Proc, msg string) (string, error) {
	b := []byte(msg)
	for i, j := 0, len(b)-1; i < j; i, j = i+1, j-1 {
		b[i], b[j] = b[j], b[i]
	}
	return string(b), nil
}

func (e *echoImpl) Notify(p *sim.Proc, event string) error {
	e.notifies++
	return nil
}

func newCluster(seed int64) (*sim.Env, *simnet.Cluster) {
	env := sim.NewEnv(seed)
	cl := simnet.NewCluster(env, simnet.DefaultConfig())
	return env, cl
}

func TestGeneratedEchoOverRdma(t *testing.T) {
	env, cl := newCluster(1)
	srvEng := engine.New(cl.Node(0), engine.DefaultConfig())
	cliEng := engine.New(cl.Node(1), engine.DefaultConfig())
	impl := &echoImpl{}
	trdma.NewServer(srvEng, echogen.EchoHints, echogen.NewEchoProcessor(impl))

	var pong, rev string
	env.Spawn("client", func(p *sim.Proc) {
		tr := trdma.Dial(p, cliEng, cl.Node(0), echogen.EchoHints, nil)
		c := echogen.NewEchoClient(tr)
		var err error
		pong, err = c.Ping(p, "hello")
		if err != nil {
			t.Error(err)
		}
		rev, err = c.Reverse(p, "drawkcab")
		if err != nil {
			t.Error(err)
		}
		if err := c.Notify(p, "fire-and-forget"); err != nil {
			t.Error(err)
		}
		p.Sleep(1_000_000) // let the oneway land
		env.Stop()
	})
	env.Run()
	if pong != "pong:hello" {
		t.Errorf("Ping = %q", pong)
	}
	if rev != "backward" {
		t.Errorf("Reverse = %q", rev)
	}
	if impl.pings != 1 || impl.notifies != 1 {
		t.Errorf("handler counts: pings=%d notifies=%d", impl.pings, impl.notifies)
	}
}

func TestGeneratedEchoOverVanillaTCP(t *testing.T) {
	env, cl := newCluster(2)
	impl := &echoImpl{}
	trdma.ServeTCP(cl.Node(0), "Echo", echogen.NewEchoProcessor(impl))
	var pong string
	env.Spawn("client", func(p *sim.Proc) {
		tr := trdma.DialTCP(p, cl.Node(1), cl.Node(0), "Echo")
		c := echogen.NewEchoClient(tr)
		var err error
		pong, err = c.Ping(p, "ipoib")
		if err != nil {
			t.Error(err)
		}
		env.Stop()
	})
	env.Run()
	if pong != "pong:ipoib" {
		t.Errorf("Ping over TCP = %q", pong)
	}
}

func TestRdmaFasterThanIPoIBBaseline(t *testing.T) {
	// The headline claim: HatRPC (hint-planned RDMA) must beat vanilla
	// Thrift over IPoIB for the same generated service.
	run := func(rdma bool) sim.Time {
		env, cl := newCluster(3)
		impl := &echoImpl{}
		var useEng *engine.Engine
		if rdma {
			srvEng := engine.New(cl.Node(0), engine.DefaultConfig())
			useEng = engine.New(cl.Node(1), engine.DefaultConfig())
			trdma.NewServer(srvEng, echogen.EchoHints, echogen.NewEchoProcessor(impl))
		} else {
			trdma.ServeTCP(cl.Node(0), "Echo", echogen.NewEchoProcessor(impl))
		}
		var elapsed sim.Time
		env.Spawn("client", func(p *sim.Proc) {
			var tr trdma.Transport
			if rdma {
				tr = trdma.Dial(p, useEng, cl.Node(0), echogen.EchoHints, nil)
			} else {
				tr = trdma.DialTCP(p, cl.Node(1), cl.Node(0), "Echo")
			}
			c := echogen.NewEchoClient(tr)
			c.Ping(p, "warm")
			start := p.Now()
			for i := 0; i < 50; i++ {
				c.Ping(p, "x")
			}
			elapsed = p.Now() - start
			env.Stop()
		})
		env.Run()
		return elapsed
	}
	rdma, tcp := run(true), run(false)
	if rdma >= tcp {
		t.Fatalf("HatRPC (%d) not faster than Thrift/IPoIB (%d)", rdma, tcp)
	}
	speedup := float64(tcp) / float64(rdma)
	if speedup < 2 {
		t.Errorf("speedup only %.2fx; expected well above 2x for small echo", speedup)
	}
	t.Logf("echo latency speedup over IPoIB: %.2fx", speedup)
}

func TestHybridTransportRouting(t *testing.T) {
	env, cl := newCluster(4)
	srvEng := engine.New(cl.Node(0), engine.DefaultConfig())
	cliEng := engine.New(cl.Node(1), engine.DefaultConfig())
	impl := &telemetryImpl{}
	trdma.NewServer(srvEng, hybridgen.TelemetryHints, hybridgen.NewTelemetryProcessor(impl))

	env.Spawn("client", func(p *sim.Proc) {
		tr := trdma.Dial(p, cliEng, cl.Node(0), hybridgen.TelemetryHints, nil)
		c := hybridgen.NewTelemetryClient(tr)
		cfg, err := c.GetConfig(p, "interval") // rides TCP
		if err != nil || cfg != "interval=10s" {
			t.Errorf("GetConfig = %q, %v", cfg, err)
		}
		if err := c.PushSamples(p, make([]byte, 32768)); err != nil { // rides RDMA
			t.Error(err)
		}
		w, err := c.PullWindow(p, 0, 100)
		if err != nil || len(w) != 65536 {
			t.Errorf("PullWindow = %d bytes, %v", len(w), err)
		}
		env.Stop()
	})
	env.Run()
	if impl.pushes != 1 {
		t.Errorf("pushes = %d", impl.pushes)
	}
}

type telemetryImpl struct{ pushes int }

func (x *telemetryImpl) GetConfig(p *sim.Proc, key string) (string, error) {
	return key + "=10s", nil
}
func (x *telemetryImpl) ReportStatus(p *sim.Proc, status string) error { return nil }
func (x *telemetryImpl) PushSamples(p *sim.Proc, samples []byte) error {
	x.pushes++
	return nil
}
func (x *telemetryImpl) PullWindow(p *sim.Proc, fromTs, toTs int64) ([]byte, error) {
	return make([]byte, 65536), nil
}

func TestUnknownMethodReturnsApplicationException(t *testing.T) {
	env, cl := newCluster(5)
	srvEng := engine.New(cl.Node(0), engine.DefaultConfig())
	cliEng := engine.New(cl.Node(1), engine.DefaultConfig())
	trdma.NewServer(srvEng, echogen.EchoHints, echogen.NewEchoProcessor(&echoImpl{}))
	env.Spawn("client", func(p *sim.Proc) {
		tr := trdma.Dial(p, cliEng, cl.Node(0), echogen.EchoHints, nil)
		if _, err := tr.Invoke(p, "NoSuchFn", []byte("junk"), false); err == nil {
			t.Error("unknown function accepted by transport")
		}
		env.Stop()
	})
	env.Run()
}

func TestHintPlansMatchFig6(t *testing.T) {
	env, cl := newCluster(6)
	srvEng := engine.New(cl.Node(0), engine.DefaultConfig())
	cliEng := engine.New(cl.Node(1), engine.DefaultConfig())
	trdma.NewServer(srvEng, echogen.EchoHints, echogen.NewEchoProcessor(&echoImpl{}))
	env.Spawn("client", func(p *sim.Proc) {
		tr := trdma.Dial(p, cliEng, cl.Node(0), echogen.EchoHints, nil)
		// Echo service hints: perf_goal=latency, concurrency=1 →
		// Direct-WriteIMM with busy polling.
		pl := tr.Plan("Ping")
		if pl.Proto != engine.DirectWriteIMM || !pl.Busy {
			t.Errorf("Ping plan = %+v, want Direct-WriteIMM busy", pl)
		}
		env.Stop()
	})
	env.Run()
}

func TestForceProtoOverride(t *testing.T) {
	env, cl := newCluster(7)
	srvEng := engine.New(cl.Node(0), engine.DefaultConfig())
	cliEng := engine.New(cl.Node(1), engine.DefaultConfig())
	trdma.NewServer(srvEng, echogen.EchoHints, echogen.NewEchoProcessor(&echoImpl{}))
	forced := engine.RFP
	env.Spawn("client", func(p *sim.Proc) {
		tr := trdma.Dial(p, cliEng, cl.Node(0), echogen.EchoHints, &trdma.DialOptions{ForceProto: &forced, ForceBusy: true})
		if pl := tr.Plan("Ping"); pl.Proto != engine.RFP {
			t.Errorf("forced plan = %+v", pl)
		}
		c := echogen.NewEchoClient(tr)
		if pong, err := c.Ping(p, "via-rfp"); err != nil || pong != "pong:via-rfp" {
			t.Errorf("forced-RFP ping = %q %v", pong, err)
		}
		env.Stop()
	})
	env.Run()
}

func TestManyClientsGeneratedService(t *testing.T) {
	env, cl := newCluster(8)
	srvEng := engine.New(cl.Node(0), engine.DefaultConfig())
	impl := &echoImpl{}
	trdma.NewServer(srvEng, echogen.EchoHints, echogen.NewEchoProcessor(impl))
	engs := make([]*engine.Engine, 4)
	for i := range engs {
		engs[i] = engine.New(cl.Node(1+i%4), engine.DefaultConfig())
	}
	const N = 12
	done := 0
	for i := 0; i < N; i++ {
		i := i
		env.Spawn(fmt.Sprintf("c%d", i), func(p *sim.Proc) {
			tr := trdma.Dial(p, engs[i%4], cl.Node(0), echogen.EchoHints, nil)
			c := echogen.NewEchoClient(tr)
			for j := 0; j < 8; j++ {
				msg := fmt.Sprintf("c%d-%d", i, j)
				got, err := c.Ping(p, msg)
				if err != nil || !strings.HasSuffix(got, msg) {
					t.Errorf("client %d: %q %v", i, got, err)
					return
				}
			}
			done++
		})
	}
	env.Run()
	if done != N {
		t.Fatalf("only %d/%d clients finished", done, N)
	}
	if impl.pings != N*8 {
		t.Fatalf("server saw %d pings, want %d", impl.pings, N*8)
	}
}

func TestHintsResolutionInGeneratedTable(t *testing.T) {
	sh := echogen.EchoHints
	r := sh.Resolve("Ping", hints.SideClient)
	if r.Goal != hints.GoalLatency || r.Concurrency != 1 {
		t.Errorf("resolved = %+v", r)
	}
	if len(sh.FnIDs) != 3 {
		t.Errorf("FnIDs = %v", sh.FnIDs)
	}
	if !sh.Oneway["Notify"] {
		t.Error("Notify should be oneway")
	}
}
