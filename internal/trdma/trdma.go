// Package trdma is the bridge layer between the Thrift runtime and the
// RDMA communication engine (§4.3, Figure 9): TRdma and TServerRdma are
// the counterparts of TSocket and TServerSocket. The programming model is
// intentionally TSocket-compatible — generated code writes a Thrift
// message and flushes; TRdma maps the flush to a hint-planned engine call
// and surfaces the response bytes for reading.
//
// Static (service-level) hints are applied when the connection is
// established; dynamic (function-level) hints are resolved once per
// function and cached, so the per-call overhead is a map lookup of a
// pre-computed plan (§4.3: "we minimize the overhead of the dynamic hints
// by only passing the pointer and caching the RPC function type").
package trdma

import (
	"fmt"

	"hatrpc/internal/engine"
	"hatrpc/internal/hints"
	"hatrpc/internal/ipoib"
	"hatrpc/internal/sim"
	"hatrpc/internal/simnet"
)

// ServiceHints is the generated hint table for one service: the
// service-level set plus per-function sets (Figure 1's hierarchy).
type ServiceHints struct {
	ServiceName string
	Service     *hints.Set
	Functions   map[string]*hints.Set
	// FnIDs maps function names to wire ids (stable, 1-based in
	// declaration order).
	FnIDs map[string]uint32
	// Oneway marks fire-and-forget functions.
	Oneway map[string]bool
}

// FnNames returns a name lookup by id.
func (sh *ServiceHints) FnNames() map[uint32]string {
	out := make(map[uint32]string, len(sh.FnIDs))
	for n, id := range sh.FnIDs {
		out[id] = n
	}
	return out
}

// Resolve flattens the hierarchy for one function and side.
func (sh *ServiceHints) Resolve(fn string, side hints.Side) hints.Resolved {
	return hints.TypeCheck(hints.Resolve(sh.Service, sh.Functions[fn], side))
}

// plan is the cached per-function execution plan.
type plan struct {
	opts   engine.CallOpts
	useTCP bool
}

// Transport is the message-level RPC channel generated clients call.
type Transport interface {
	// Invoke performs one RPC for the named function.
	Invoke(p *sim.Proc, fn string, request []byte, oneway bool) ([]byte, error)
	// Close releases the channel.
	Close() error
}

// TRdma is the client-side hint-accelerated transport over the RDMA
// engine, with optional per-function TCP (IPoIB) fallback for hybrid
// transport hints (§3.3, §5.5).
type TRdma struct {
	conn   *engine.Conn
	tcp    *ipoib.Conn
	hintsT *ServiceHints
	cores  int
	thresh int
	plans  map[string]plan
	closed bool
}

var _ Transport = (*TRdma)(nil)

// DialOptions configures connection establishment.
type DialOptions struct {
	// ForceProto pins every function to one protocol (used by the ATB
	// baseline runs); nil means hint-driven selection.
	ForceProto *engine.Protocol
	// ForceBusy pins the polling mode when ForceProto is set.
	ForceBusy bool
}

// Dial establishes a hint-accelerated connection to the service listening
// on the target node. Static hints drive the connection-time setup;
// per-function plans are derived lazily and cached.
func Dial(p *sim.Proc, eng *engine.Engine, target *simnet.Node, sh *ServiceHints, opt *DialOptions) *TRdma {
	t := &TRdma{
		hintsT: sh,
		cores:  eng.Cores(),
		thresh: eng.Config().RndvThreshold,
		plans:  make(map[string]plan),
	}
	needTCP := false
	for fn := range sh.FnIDs {
		if sh.Resolve(fn, hints.SideClient).UseTCP {
			needTCP = true
		}
	}
	svcClient := hints.TypeCheck(sh.Service.ForSide(hints.SideClient))
	allTCP := svcClient.UseTCP && !anyRdmaFunction(sh)
	if !allTCP {
		t.conn = eng.Dial(p, target, "hat:"+sh.ServiceName)
		t.conn.SetNUMABound(svcClient.NUMABind)
	}
	if needTCP || allTCP {
		t.tcp = ipoib.Dial(p, eng.Node(), target, "hat:"+sh.ServiceName, nil)
	}
	if opt != nil && opt.ForceProto != nil {
		for fn := range sh.FnIDs {
			t.plans[fn] = plan{opts: engine.CallOpts{
				Proto: *opt.ForceProto, Busy: opt.ForceBusy,
			}}
		}
	}
	return t
}

func anyRdmaFunction(sh *ServiceHints) bool {
	for fn := range sh.FnIDs {
		r := sh.Resolve(fn, hints.SideClient)
		if !r.UseTCP {
			return true
		}
	}
	return false
}

// planFor resolves (once) the client-side plan for a function.
func (t *TRdma) planFor(fn string) plan {
	if pl, ok := t.plans[fn]; ok {
		return pl
	}
	r := t.hintsT.Resolve(fn, hints.SideClient)
	var pl plan
	if r.UseTCP {
		pl.useTCP = true
	} else {
		ep := engine.SelectPlan(r, t.cores, r.PayloadSize, t.thresh)
		pl.opts = engine.CallOpts{Proto: ep.Proto, Busy: ep.Busy, Poll: ep.Poll}
		// An asymmetric response regime (server payload hint differing
		// from the client's) re-plans the response protocol.
		rs := t.hintsT.Resolve(fn, hints.SideServer)
		if rs.PayloadSize != 0 && rs.PayloadSize != r.PayloadSize {
			rp := engine.SelectPlan(r, t.cores, rs.PayloadSize, t.thresh)
			pl.opts.RespProto = rp.Proto
		}
	}
	t.plans[fn] = pl
	return pl
}

// Invoke performs one RPC using the function's cached plan.
func (t *TRdma) Invoke(p *sim.Proc, fn string, request []byte, oneway bool) ([]byte, error) {
	if t.closed {
		return nil, fmt.Errorf("trdma: transport closed")
	}
	id, ok := t.hintsT.FnIDs[fn]
	if !ok {
		return nil, fmt.Errorf("trdma: unknown function %q", fn)
	}
	pl := t.planFor(fn)
	if pl.useTCP {
		if oneway {
			t.tcp.Send(p, request)
			return nil, nil
		}
		return t.tcp.Call(p, request), nil
	}
	opts := pl.opts
	opts.Oneway = oneway
	return t.conn.Call(p, id, request, opts)
}

// Plan exposes the resolved client plan for a function (for tests and
// introspection).
func (t *TRdma) Plan(fn string) engine.CallOpts { return t.planFor(fn).opts }

// Close marks the transport closed.
func (t *TRdma) Close() error {
	t.closed = true
	return nil
}

// ---------------------------------------------------------------------------
// Server side

// Processor is the generated server-side dispatcher: it consumes a framed
// Thrift request and produces the framed response bytes (empty for
// oneway).
type Processor interface {
	ProcessBytes(p *sim.Proc, fnID uint32, request []byte) []byte
}

// TServerRdma serves a processor over the RDMA engine, with an IPoIB
// listener alongside when any function hints transport=tcp.
type TServerRdma struct {
	eng  *engine.Engine
	sh   *ServiceHints
	proc Processor
	srv  *engine.Server
}

// NewServer builds and starts the hint-configured server: the dispatcher
// polling mode derives from the server-side resolved hints (busy if any
// function's server plan wants busy polling), NUMA binding from the
// service-level hint.
func NewServer(eng *engine.Engine, sh *ServiceHints, proc Processor) *TServerRdma {
	s := &TServerRdma{eng: eng, sh: sh, proc: proc}
	busy := false
	adaptive := false
	tcpToo := false
	maxConc := 0
	for fn := range sh.FnIDs {
		r := sh.Resolve(fn, hints.SideServer)
		if r.UseTCP {
			tcpToo = true
			continue
		}
		if r.Concurrency > maxConc {
			maxConc = r.Concurrency
		}
		pl := engine.SelectPlan(r, eng.Cores(), r.PayloadSize, eng.Config().RndvThreshold)
		if pl.Busy {
			busy = true
		}
		if pl.Poll == engine.PollAdaptiveMode {
			adaptive = true
		}
	}
	// One dispatcher process serves each connection; spinning with more
	// connections than cores would starve the handlers (the Fig. 5
	// busy-polling collapse), so busy dispatch is only kept while the
	// expected concurrency fits the machine. Adaptive polling survives
	// the demotion: its spin window is bounded, so oversubscription costs
	// at most one window per wait, not a standing spin.
	if maxConc > eng.Cores() {
		busy = false
	}
	svcServer := hints.TypeCheck(sh.Service.ForSide(hints.SideServer))
	s.srv = eng.Serve("hat:"+sh.ServiceName, func(p *sim.Proc, fnID uint32, req []byte) []byte {
		return proc.ProcessBytes(p, fnID, req)
	})
	s.srv.Busy = busy
	if adaptive {
		s.srv.Poll = engine.PollAdaptiveMode
	}
	s.srv.NUMABind = svcServer.NUMABind
	if tcpToo || svcServer.UseTCP {
		s.serveTCP()
	}
	return s
}

// serveTCP starts the IPoIB side for hybrid-transport services. The fn id
// rides inside the Thrift message name, so the processor receives id 0
// and dispatches by name.
func (s *TServerRdma) serveTCP() {
	node := s.eng.Node()
	ln := ipoib.Listen(node, "hat:"+s.sh.ServiceName, nil)
	node.Spawn(fmt.Sprintf("hat-tcp-%s", s.sh.ServiceName), func(p *sim.Proc) {
		for i := 0; ; i++ {
			conn := ln.Accept(p)
			node.Spawn(fmt.Sprintf("hat-tcp-%s-%d", s.sh.ServiceName, i), func(cp *sim.Proc) {
				for {
					req := conn.Recv(cp)
					resp := s.proc.ProcessBytes(cp, 0, req)
					if len(resp) > 0 {
						conn.Send(cp, resp)
					}
				}
			})
		}
	})
}

// EngineServer exposes the underlying engine server (for stats).
func (s *TServerRdma) EngineServer() *engine.Server { return s.srv }

// ---------------------------------------------------------------------------
// Vanilla Thrift-over-IPoIB channel (the paper's baseline)

// TCPTransport runs the same generated code over plain framed IPoIB —
// vanilla Thrift. It satisfies Transport.
type TCPTransport struct {
	conn *ipoib.Conn
}

var _ Transport = (*TCPTransport)(nil)

// DialTCP connects the vanilla Thrift baseline.
func DialTCP(p *sim.Proc, from, to *simnet.Node, serviceName string) *TCPTransport {
	return &TCPTransport{conn: ipoib.Dial(p, from, to, "thrift:"+serviceName, nil)}
}

// Invoke ships the framed request over the kernel socket path.
func (t *TCPTransport) Invoke(p *sim.Proc, fn string, request []byte, oneway bool) ([]byte, error) {
	if oneway {
		t.conn.Send(p, request)
		return nil, nil
	}
	return t.conn.Call(p, request), nil
}

// Close is a no-op.
func (t *TCPTransport) Close() error { return nil }

// ServeTCP runs a processor as a vanilla Thrift-over-IPoIB server
// (goroutine-per-connection threaded server).
func ServeTCP(node *simnet.Node, serviceName string, proc Processor) {
	ln := ipoib.Listen(node, "thrift:"+serviceName, nil)
	node.Spawn(fmt.Sprintf("thrift-tcp-%s", serviceName), func(p *sim.Proc) {
		for i := 0; ; i++ {
			conn := ln.Accept(p)
			node.Spawn(fmt.Sprintf("thrift-tcp-%s-%d", serviceName, i), func(cp *sim.Proc) {
				for {
					req := conn.Recv(cp)
					resp := proc.ProcessBytes(cp, 0, req)
					if len(resp) > 0 {
						conn.Send(cp, resp)
					}
				}
			})
		}
	})
}
