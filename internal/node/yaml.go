// Package node is the production lifecycle layer (DESIGN.md §17): a
// long-running multi-service node assembled from a YAML config split
// into application and protocol sections, hosting the hatkv/cluster
// tier inside the DES with graceful drain, hint hot-reload, and a
// health/metrics ops surface.
package node

import (
	"fmt"
	"strings"
)

// The repo has a zero-dependency constraint, so the config loader
// hand-rolls the YAML subset the node config actually needs — nested
// maps by indentation, scalar values, flow ([a, b]) and block (- a)
// lists of scalars, comments — instead of pulling in a YAML module.
// Anything outside the subset is rejected with a line number: a config
// file that parses is fully understood.

type yamlKind uint8

const (
	yScalar yamlKind = iota
	yMap
	yList
)

// yamlNode is one parsed config node. Maps remember key insertion order
// (keys) so strict decoding can walk them deterministically — ranging
// over child would trip maporder and make error ordering seed-shaped.
type yamlNode struct {
	kind   yamlKind
	line   int
	scalar string
	items  []*yamlNode // yList: scalar items
	keys   []string    // yMap: insertion order
	child  map[string]*yamlNode
}

func (n *yamlNode) kindName() string {
	switch n.kind {
	case yScalar:
		return "scalar"
	case yList:
		return "list"
	default:
		return "map"
	}
}

// parseYAML parses src into a map tree. Errors carry 1-based line
// numbers.
func parseYAML(src string) (*yamlNode, error) {
	root := &yamlNode{kind: yMap, child: make(map[string]*yamlNode)}
	type frame struct {
		node        *yamlNode
		childIndent int // indentation of this container's entries; -1 until the first entry
	}
	stack := []frame{{node: root, childIndent: -1}}

	for lineNo, raw := range strings.Split(src, "\n") {
		ln := lineNo + 1
		line := stripComment(raw)
		if strings.TrimSpace(line) == "" {
			continue
		}
		if strings.Contains(line, "\t") {
			return nil, fmt.Errorf("node: yaml line %d: tabs are not allowed (indent with spaces)", ln)
		}
		indent := len(line) - len(strings.TrimLeft(line, " "))
		content := strings.TrimSpace(line)

		// Close containers whose entry indentation we have outdented past.
		for len(stack) > 1 {
			top := &stack[len(stack)-1]
			if top.childIndent == -1 || indent >= top.childIndent {
				break
			}
			stack = stack[:len(stack)-1]
		}
		top := &stack[len(stack)-1]
		if top.childIndent == -1 {
			if len(stack) > 1 && indent <= stack[len(stack)-2].childIndent {
				return nil, fmt.Errorf("node: yaml line %d: expected indented block", ln)
			}
			top.childIndent = indent
		} else if indent != top.childIndent {
			return nil, fmt.Errorf("node: yaml line %d: bad indentation %d (container uses %d)", ln, indent, top.childIndent)
		}

		if strings.HasPrefix(content, "- ") || content == "-" {
			// Block-list item under the pending key.
			if top.node.kind == yMap && len(top.node.keys) == 0 && top.node.child != nil && len(stack) > 1 {
				top.node.kind = yList
				top.node.child = nil
			}
			if top.node.kind != yList {
				return nil, fmt.Errorf("node: yaml line %d: list item in a mapping block", ln)
			}
			item := strings.TrimSpace(strings.TrimPrefix(content, "-"))
			if item == "" {
				return nil, fmt.Errorf("node: yaml line %d: empty list item", ln)
			}
			if strings.Contains(item, ": ") || strings.HasSuffix(item, ":") {
				return nil, fmt.Errorf("node: yaml line %d: list items must be scalars", ln)
			}
			top.node.items = append(top.node.items, &yamlNode{kind: yScalar, line: ln, scalar: unquote(item)})
			continue
		}

		if top.node.kind != yMap {
			return nil, fmt.Errorf("node: yaml line %d: mapping entry in a list block", ln)
		}
		key, val, ok := splitKeyValue(content)
		if !ok {
			return nil, fmt.Errorf("node: yaml line %d: expected `key:` or `key: value`", ln)
		}
		if _, dup := top.node.child[key]; dup {
			return nil, fmt.Errorf("node: yaml line %d: duplicate key %q", ln, key)
		}
		switch {
		case val == "":
			// `key:` opens a nested container (map or block list — decided
			// by its first entry).
			n := &yamlNode{kind: yMap, line: ln, child: make(map[string]*yamlNode)}
			top.node.child[key] = n
			top.node.keys = append(top.node.keys, key)
			stack = append(stack, frame{node: n, childIndent: -1})
		case strings.HasPrefix(val, "[") && strings.HasSuffix(val, "]"):
			n := &yamlNode{kind: yList, line: ln}
			inner := strings.TrimSpace(val[1 : len(val)-1])
			if inner != "" {
				for _, it := range strings.Split(inner, ",") {
					it = strings.TrimSpace(it)
					if it == "" {
						return nil, fmt.Errorf("node: yaml line %d: empty element in flow list", ln)
					}
					n.items = append(n.items, &yamlNode{kind: yScalar, line: ln, scalar: unquote(it)})
				}
			}
			top.node.child[key] = n
			top.node.keys = append(top.node.keys, key)
		default:
			top.node.child[key] = &yamlNode{kind: yScalar, line: ln, scalar: unquote(val)}
			top.node.keys = append(top.node.keys, key)
		}
	}

	// A trailing `key:` with no block is an empty map — legal (treated as
	// "section present, all defaults").
	return root, nil
}

// stripComment removes a full-line or trailing comment. A '#' only
// starts a comment at line start or after whitespace, so flag-like
// values containing '#' mid-token survive.
func stripComment(line string) string {
	for i := 0; i < len(line); i++ {
		if line[i] != '#' {
			continue
		}
		if i == 0 || line[i-1] == ' ' {
			return line[:i]
		}
	}
	return line
}

// splitKeyValue splits `key: value` / `key:` at the first colon
// terminating the key.
func splitKeyValue(content string) (key, val string, ok bool) {
	i := strings.Index(content, ":")
	if i <= 0 {
		return "", "", false
	}
	key = strings.TrimSpace(content[:i])
	val = strings.TrimSpace(content[i+1:])
	if key == "" || strings.ContainsAny(key, " []{},") {
		return "", "", false
	}
	return key, val, true
}

// unquote strips one layer of matched single or double quotes.
func unquote(s string) string {
	if len(s) >= 2 {
		if (s[0] == '"' && s[len(s)-1] == '"') || (s[0] == '\'' && s[len(s)-1] == '\'') {
			return s[1 : len(s)-1]
		}
	}
	return s
}
