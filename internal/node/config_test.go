package node

import (
	"errors"
	"strings"
	"testing"

	"hatrpc/internal/lmdb"
)

const goodConfig = `
# A full node config exercising every section.
application:
  name: test-node
  ops: true
  metrics_sink: stdout
  drain_deadline: 300us
  drain_linger: 450us
  workload:
    workers: 2
    writes: 10
    pace: 250us

protocol:
  seed: 42
  servers: 5
  shards: 8
  rf: 3
  sync_mode: full
  listeners: [hatkv-cluster]
  credits: 16
  admit_limit: 8
  admit_policy: shed-newest
  hints:
    polling: adaptive
    numa: bind
    concurrency: 24
  crash:
    mean_uptime: 2ms
    min_uptime: 200us
    restart_delay: 400us
    restart_jitter: 200us
    horizon: 8ms
`

func TestParseConfigGood(t *testing.T) {
	cfg, err := ParseConfig(goodConfig)
	if err != nil {
		t.Fatalf("ParseConfig: %v", err)
	}
	a, p := cfg.Application, cfg.Protocol
	if a.Name != "test-node" || !a.Ops || a.MetricsSink != "stdout" {
		t.Errorf("application = %+v", a)
	}
	if a.DrainDeadlineNs != 300_000 {
		t.Errorf("drain_deadline = %d, want 300000", a.DrainDeadlineNs)
	}
	if a.DrainLingerNs != 450_000 {
		t.Errorf("drain_linger = %d, want 450000", a.DrainLingerNs)
	}
	if a.Workload.Workers != 2 || a.Workload.Writes != 10 || a.Workload.PaceNs != 250_000 {
		t.Errorf("workload = %+v", a.Workload)
	}
	if p.Seed != 42 || p.Servers != 5 || p.Shards != 8 || p.RF != 3 {
		t.Errorf("topology = %+v", p)
	}
	if p.SyncMode != lmdb.SyncFull || p.Credits != 16 || p.AdmitLimit != 8 {
		t.Errorf("tuning = %+v", p)
	}
	if p.Hints["polling"] != "adaptive" || p.Hints["numa"] != "bind" || p.Hints["concurrency"] != "24" {
		t.Errorf("hints = %v", p.Hints)
	}
	if p.Crash.MeanUptimeNs != 2_000_000 || p.Crash.HorizonNs != 8_000_000 {
		t.Errorf("crash = %+v", p.Crash)
	}
}

func TestParseConfigDefaults(t *testing.T) {
	cfg, err := ParseConfig("protocol:\n  seed: 7\n")
	if err != nil {
		t.Fatalf("ParseConfig: %v", err)
	}
	def := DefaultConfig()
	if cfg.Protocol.Seed != 7 {
		t.Errorf("seed = %d", cfg.Protocol.Seed)
	}
	if cfg.Protocol.Servers != def.Protocol.Servers || cfg.Application.Name != def.Application.Name {
		t.Errorf("absent keys must keep defaults: %+v", cfg)
	}
}

// TestParseConfigRejects pins the strict-decode contract: every
// malformed config fails with the right sentinel AND names the
// offending key.
func TestParseConfigRejects(t *testing.T) {
	cases := []struct {
		name     string
		src      string
		sentinel error
		key      string
	}{
		{"unknown top-level", "nodes:\n  x: 1\n", ErrUnknownKey, "nodes"},
		{"unknown app key", "application:\n  nmae: x\n", ErrUnknownKey, "application.nmae"},
		{"unknown proto key", "protocol:\n  shardz: 4\n", ErrUnknownKey, "protocol.shardz"},
		{"unknown workload key", "application:\n  workload:\n    speed: 4\n", ErrUnknownKey, "application.workload.speed"},
		{"unknown crash key", "protocol:\n  crash:\n    uptime: 4ms\n", ErrUnknownKey, "protocol.crash.uptime"},
		{"unknown hint", "protocol:\n  hints:\n    pollling: busy\n", ErrUnknownKey, "protocol.hints.pollling"},
		{"bad hint value", "protocol:\n  hints:\n    polling: sometimes\n", ErrBadValue, "protocol.hints.polling"},
		{"bad bool", "application:\n  ops: yes\n", ErrBadValue, "application.ops"},
		{"bad int", "protocol:\n  servers: many\n", ErrBadValue, "protocol.servers"},
		{"zero servers", "protocol:\n  servers: 0\n", ErrBadValue, "protocol.servers"},
		{"huge rf", "protocol:\n  rf: 99\n", ErrBadValue, "protocol.rf"},
		{"rf over servers", "protocol:\n  servers: 2\n  rf: 3\n", ErrBadValue, "protocol.rf"},
		{"bad sync mode", "protocol:\n  sync_mode: psync\n", ErrBadValue, "protocol.sync_mode"},
		{"bad sink", "application:\n  metrics_sink: statsd\n", ErrBadValue, "application.metrics_sink"},
		{"bad duration", "application:\n  drain_deadline: soon\n", ErrBadValue, "application.drain_deadline"},
		{"negative duration", "application:\n  drain_deadline: -5us\n", ErrBadValue, "application.drain_deadline"},
		{"bad admit policy", "protocol:\n  admit_policy: fifo\n", ErrBadValue, "protocol.admit_policy"},
		{"scalar for section", "protocol: full\n", ErrBadValue, "protocol"},
		{"list for scalar", "protocol:\n  servers: [1, 2]\n", ErrBadValue, "protocol.servers"},
		{"crash without horizon", "protocol:\n  crash:\n    mean_uptime: 2ms\n", ErrBadValue, "protocol.crash.horizon"},
		{"empty listeners", "protocol:\n  listeners: []\n", ErrBadValue, "protocol.listeners"},
		{"wrong first listener", "protocol:\n  listeners: [other]\n", ErrBadValue, "protocol.listeners"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ParseConfig(tc.src)
			if err == nil {
				t.Fatalf("ParseConfig(%q) succeeded, want %v", tc.src, tc.sentinel)
			}
			if !errors.Is(err, tc.sentinel) {
				t.Errorf("error %v, want sentinel %v", err, tc.sentinel)
			}
			var ce *ConfigError
			if !errors.As(err, &ce) {
				t.Fatalf("error %T, want *ConfigError", err)
			}
			if ce.Key != tc.key {
				t.Errorf("error names key %q, want %q", ce.Key, tc.key)
			}
		})
	}
}

// TestParseConfigYAMLErrors: structurally broken YAML fails with a line
// number, not a panic or silent acceptance.
func TestParseConfigYAMLErrors(t *testing.T) {
	cases := []struct{ name, src, want string }{
		{"tabs", "protocol:\n\tseed: 1\n", "tabs"},
		{"duplicate key", "protocol:\n  seed: 1\n  seed: 2\n", "duplicate"},
		{"bad indent", "protocol:\n  seed: 1\n   shards: 2\n", "indentation"},
		{"bare word", "protocol:\n  justaword\n", "expected"},
		{"list under map entries", "protocol:\n  seed: 1\n  - x\n", "list item"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ParseConfig(tc.src)
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Errorf("err = %v, want mention of %q", err, tc.want)
			}
		})
	}
}

func TestParseDurations(t *testing.T) {
	cases := []struct {
		in   string
		want int64
	}{
		{"0", 0}, {"600", 600}, {"600ns", 600}, {"250us", 250_000},
		{"250µs", 250_000}, {"1.5ms", 1_500_000}, {"2s", 2_000_000_000},
	}
	for _, tc := range cases {
		got, err := parseDurationNs(tc.in)
		if err != nil || got != tc.want {
			t.Errorf("parseDurationNs(%q) = %d, %v; want %d", tc.in, got, err, tc.want)
		}
	}
}

func TestConfigClone(t *testing.T) {
	a := DefaultConfig()
	a.Protocol.Hints["polling"] = "busy"
	b := a.Clone()
	b.Protocol.Hints["polling"] = "event"
	b.Protocol.Listeners[0] = "other"
	if a.Protocol.Hints["polling"] != "busy" || a.Protocol.Listeners[0] == "other" {
		t.Errorf("Clone shares mutable state: %+v", a.Protocol)
	}
}
