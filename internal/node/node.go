package node

import (
	"fmt"

	"hatrpc/internal/cluster"
	"hatrpc/internal/engine"
	"hatrpc/internal/hatkv"
	"hatrpc/internal/hints"
	"hatrpc/internal/obs"
	"hatrpc/internal/sim"
	"hatrpc/internal/simnet"
)

// State is the node lifecycle state machine (DESIGN.md §17):
// starting → ready → draining → down, with down → starting on reboot.
type State uint8

const (
	StateStarting State = iota
	StateReady
	StateDraining
	StateDown
)

func (s State) String() string {
	switch s {
	case StateStarting:
		return "starting"
	case StateReady:
		return "ready"
	case StateDraining:
		return "draining"
	case StateDown:
		return "down"
	}
	return "unknown"
}

// Ops surface function ids, multiplexed onto cluster.Port above the
// cluster protocol's 0x20 range. Exempt from the drain fence: health
// and metrics must answer while draining (that is when operators look).
const (
	FnOpsHealth  uint32 = 0x30 // → health state string
	FnOpsMetrics uint32 = 0x31 // → Prometheus text exposition
	FnOpsDrain   uint32 = 0x32 // starts an async graceful drain
)

// Transition is one recorded lifecycle edge.
type Transition struct {
	To State
	At sim.Time
}

// DrainReport is the outcome of one graceful drain.
type DrainReport struct {
	Started       sim.Time
	Quiesced      sim.Time // when in-flight work hit zero (Completed only)
	ActiveAtStart int
	// Exactly one of these is set.
	Completed      bool // fence up, in-flight drained inside the deadline
	Escalated      bool // deadline expired with work still in flight
	Crashed        bool // the node crashed (CrashPlan) mid-drain
	AlreadyDrained bool // drain requested outside StateReady (idempotent no-op)
}

// ReloadReport lists what a hot-reload changed, in deterministic order.
type ReloadReport struct {
	Changed []string
}

// HatNode is one long-running production node: a simnet machine hosting
// the hatkv/cluster service behind an engine server, plus the lifecycle
// layer — boot, graceful drain, hot-reload, ops surface. The HatNode
// (and its durable store) survive crashes and restarts; the engine,
// cluster service, and server are rebuilt per boot.
type HatNode struct {
	cfg    *Config
	sn     *simnet.Node
	env    *sim.Env
	roster []*simnet.Node
	self   int
	reg    *obs.Registry
	store  *hatkv.Store

	eng *engine.Engine
	cn  *cluster.Node
	srv *engine.Server

	// Every boot's service and server, kept so lifecycle stats survive
	// the per-boot rebuild (a restarted node would otherwise forget the
	// promotions and fenced requests of its previous lives).
	boots []*cluster.Node
	srvs  []*engine.Server

	state State
	log   []Transition

	drains      *obs.Counter
	escalations *obs.Counter
	reloads     *obs.Counter
}

// New builds the lifecycle wrapper for one simnet node and boots it.
// The durable store is created once here and carried across boots; the
// crash hook (self-re-arming) marks the node down, and the restart hook
// reboots the full service stack. reg may be nil.
func New(sn *simnet.Node, roster []*simnet.Node, self int, cfg *Config, reg *obs.Registry) (*HatNode, error) {
	store, err := hatkv.NewStore(sn, nil, nil)
	if err != nil {
		return nil, fmt.Errorf("node %d: %w", self, err)
	}
	if err := store.Env().SetSync(cfg.Protocol.SyncMode); err != nil {
		return nil, fmt.Errorf("node %d: %w", self, err)
	}
	h := &HatNode{
		cfg:    cfg,
		sn:     sn,
		env:    sn.Cluster().Env(),
		roster: roster,
		self:   self,
		reg:    reg,
		store:  store,
		state:  StateDown, // pre-boot; Boot moves through starting → ready
	}
	h.drains = reg.Counter("node.drains")
	h.escalations = reg.Counter("node.drain_escalations")
	h.reloads = reg.Counter("node.reloads")
	// Registered after the store's own rollback hook, so the durable
	// state has rolled back by the time the lifecycle observes the crash.
	var onCrash func()
	onCrash = func() {
		h.setState(StateDown)
		sn.OnCrash(onCrash)
	}
	sn.OnCrash(onCrash)
	sn.SetRestart(func(p *sim.Proc) { h.Boot() })
	h.Boot()
	return h, nil
}

// Boot builds one boot's service stack: engine (protocol section's
// transport tuning), cluster service, and the port server hosting both
// the cluster wire protocol and (when enabled) the ops surface on the
// same dispatcher processes — an ops-enabled node schedules exactly the
// same DES events as a bare cluster node until an ops call arrives.
func (h *HatNode) Boot() {
	h.setState(StateStarting)
	ecfg := engine.DefaultConfig()
	ecfg.BreakerThreshold = 4
	ecfg.BreakerCooldown = 500_000
	if c := h.cfg.Protocol.Credits; c > 0 {
		ecfg.FlowCredits = c
	}
	h.eng = engine.New(h.sn, ecfg)
	h.eng.SetObs(h.reg)
	h.cn = cluster.NewUnservedNode(h.eng, h.store, h.roster, h.self, h.cfg.ClusterConfig())
	h.cn.SetObs(h.reg)
	h.srv = h.eng.Serve(cluster.Port, h.handle)
	h.srv.Exempt(FnOpsHealth, FnOpsMetrics)
	h.boots = append(h.boots, h.cn)
	h.srvs = append(h.srvs, h.srv)
	h.applyHints(h.cfg.Protocol.Hints)
	h.srv.SetAdmission(h.cfg.Protocol.AdmitLimit, h.cfg.Protocol.AdmitPolicy)
	h.setState(StateReady)
}

// handle multiplexes the ops surface onto the cluster port. With Ops
// disabled the switch is skipped entirely and the node serves the bare
// cluster protocol.
func (h *HatNode) handle(p *sim.Proc, fn uint32, req []byte) []byte {
	if h.cfg.Application.Ops {
		switch fn {
		case FnOpsHealth:
			return []byte(h.state.String())
		case FnOpsMetrics:
			return []byte(h.reg.Exposition())
		case FnOpsDrain:
			// The drain must not run on this dispatcher (it would wait for
			// itself to finish) nor on any node-owned process (the
			// escalation crash would kill its own caller): spawn an
			// env-owned ops process and acknowledge immediately.
			dl := sim.Duration(h.cfg.Application.DrainDeadlineNs)
			h.env.Spawn(fmt.Sprintf("hatnode-drain-%d", h.self), func(dp *sim.Proc) {
				h.Drain(dp, dl)
			})
			return []byte("draining")
		}
	}
	return h.cn.Handle(p, fn, req)
}

// Drain performs a graceful drain: fence new requests with the typed
// kDrain rejection (keepalive probes answer the same way — the
// announcement session probers hold off on), let in-flight calls and
// replication complete, and report how it ended. The caller escalates
// to Stop (the crash path) on Escalated; a Completed drain makes Stop a
// clean quiesce→release. Must run on an env-owned process.
func (h *HatNode) Drain(p *sim.Proc, deadline sim.Duration) DrainReport {
	rep := DrainReport{Started: p.Now()}
	if h.state != StateReady {
		rep.AlreadyDrained = true
		return rep
	}
	h.setState(StateDraining)
	rep.ActiveAtStart = h.srv.Active()
	var until sim.Time
	if deadline > 0 {
		until = p.Now() + sim.Time(deadline)
	}
	epoch0 := h.sn.Epoch()
	ok := h.srv.Drain(p, until)
	if ok && !h.sn.Down() {
		rep.Quiesced = p.Now()
		// Announce linger: hold the fence with the node still alive so
		// peer monitors see the typed rejections, run their candidacies,
		// and promote this node's shards away BEFORE Stop — the failover
		// that a hard kill can only do post-mortem.
		if linger := h.cfg.Application.DrainLingerNs; linger > 0 {
			p.Sleep(sim.Duration(linger))
		}
	}
	switch {
	case h.sn.Down() || h.sn.Epoch() != epoch0:
		// A CrashPlan crash raced the drain (possibly rebooting already);
		// the crash hook moved the state machine and rolled the store back.
		rep.Crashed = true
		rep.Quiesced = 0
	case !ok:
		rep.Escalated = true
		h.escalations.Inc()
	default:
		rep.Completed = true
		h.drains.Inc()
	}
	return rep
}

// Stats sums the cluster service's lifecycle counters across every
// boot of this node.
func (h *HatNode) Stats() cluster.NodeStats {
	var s cluster.NodeStats
	for _, n := range h.boots {
		st := n.Stats()
		s.Promotions += st.Promotions
		s.Candidacies += st.Candidacies
		s.Resyncs += st.Resyncs
		s.StaleWrites += st.StaleWrites
		s.FencedWrites += st.FencedWrites
	}
	return s
}

// Drained sums the requests fenced with the typed draining rejection
// across every boot of this node.
func (h *HatNode) Drained() int64 {
	var n int64
	for _, s := range h.srvs {
		n += s.Drained
	}
	return n
}

// Stop releases the boot's resources and takes the machine down: close
// the replication sessions (peer-sorted), release every QP/MR the
// engine pinned, and crash the simnet node (killing dispatchers and
// firing crash hooks). The three run in one synchronous no-park stretch
// — nothing can arrive between the engine closing and the NIC dying, so
// no dispatcher ever wakes on released memory. Must be called from an
// env-owned process or callback, never from a process the node owns.
func (h *HatNode) Stop() {
	if h.sn.Down() {
		return
	}
	h.cn.CloseSessions()
	h.eng.Close()
	h.sn.Crash()
}

// Reload applies a changed config without restarting: hints re-resolve
// onto the live server (polling discipline, NUMA binding, admission
// caps) with no in-flight call perturbed, and the drain deadline is
// re-read on the next drain. Topology/durability keys are immutable —
// changing one fails typed with ErrImmutableKey and applies nothing.
// A no-op reload changes nothing at all (byte-identical replay).
func (h *HatNode) Reload(next *Config) (ReloadReport, error) {
	if err := checkImmutable(h.cfg, next); err != nil {
		return ReloadReport{}, err
	}
	var rep ReloadReport
	hintsChanged := false
	for _, k := range hints.KnownKeys() {
		if h.cfg.Protocol.Hints[k] != next.Protocol.Hints[k] {
			hintsChanged = true
			rep.Changed = append(rep.Changed, "protocol.hints."+string(k))
		}
	}
	if h.cfg.Protocol.AdmitLimit != next.Protocol.AdmitLimit || h.cfg.Protocol.AdmitPolicy != next.Protocol.AdmitPolicy {
		rep.Changed = append(rep.Changed, "protocol.admit_limit")
	}
	if h.cfg.Application.DrainDeadlineNs != next.Application.DrainDeadlineNs {
		rep.Changed = append(rep.Changed, "application.drain_deadline")
	}
	if h.cfg.Application.DrainLingerNs != next.Application.DrainLingerNs {
		rep.Changed = append(rep.Changed, "application.drain_linger")
	}
	if h.cfg.Application.Ops != next.Application.Ops {
		rep.Changed = append(rep.Changed, "application.ops")
	}
	if h.cfg.Application.MetricsSink != next.Application.MetricsSink {
		rep.Changed = append(rep.Changed, "application.metrics_sink")
	}
	if len(rep.Changed) == 0 {
		return rep, nil // true no-op: no state touched
	}
	if hintsChanged {
		h.applyHints(next.Protocol.Hints)
	}
	if h.cfg.Protocol.AdmitLimit != next.Protocol.AdmitLimit || h.cfg.Protocol.AdmitPolicy != next.Protocol.AdmitPolicy {
		h.srv.SetAdmission(next.Protocol.AdmitLimit, next.Protocol.AdmitPolicy)
	}
	h.cfg = next
	h.reloads.Inc()
	return rep, nil
}

// immutableKeys are the reload-rejected keys: everything nodes must
// agree on cluster-wide or that only takes effect at store/engine
// creation.
func checkImmutable(cur, next *Config) error {
	p, q := &cur.Protocol, &next.Protocol
	switch {
	case p.Seed != q.Seed:
		return &ConfigError{Key: "protocol.seed", Err: ErrImmutableKey}
	case p.Servers != q.Servers:
		return &ConfigError{Key: "protocol.servers", Err: ErrImmutableKey}
	case p.Shards != q.Shards:
		return &ConfigError{Key: "protocol.shards", Err: ErrImmutableKey}
	case p.RF != q.RF:
		return &ConfigError{Key: "protocol.rf", Err: ErrImmutableKey}
	case p.SyncMode != q.SyncMode:
		return &ConfigError{Key: "protocol.sync_mode", Err: ErrImmutableKey}
	case p.Credits != q.Credits:
		return &ConfigError{Key: "protocol.credits", Err: ErrImmutableKey}
	case len(p.Listeners) != len(q.Listeners):
		return &ConfigError{Key: "protocol.listeners", Err: ErrImmutableKey}
	}
	for i := range cur.Protocol.Listeners {
		if cur.Protocol.Listeners[i] != next.Protocol.Listeners[i] {
			return &ConfigError{Key: "protocol.listeners", Err: ErrImmutableKey}
		}
	}
	return nil
}

// applyHints re-resolves the node hint group onto the live server:
// polling discipline, NUMA binding (existing dispatchers re-bound), and
// expected-concurrency admission sizing are all picked up by the next
// dispatch iteration without touching any connection.
func (h *HatNode) applyHints(g hints.Group) {
	r := hints.TypeCheck(g)
	switch r.Polling {
	case hints.PollBusy:
		h.srv.Poll = engine.PollBusyMode
	case hints.PollEvent:
		h.srv.Poll = engine.PollEventMode
	case hints.PollAdaptive:
		h.srv.Poll = engine.PollAdaptiveMode
	default:
		h.srv.Poll = engine.PollFromBusy
	}
	h.srv.NUMABind = r.NUMABind
	for _, c := range h.srv.Conns() {
		c.SetNUMABound(r.NUMABind)
	}
}

func (h *HatNode) setState(s State) {
	if h.state == s {
		return
	}
	h.state = s
	h.log = append(h.log, Transition{To: s, At: h.env.Now()})
}

// State returns the current lifecycle state.
func (h *HatNode) State() State { return h.state }

// Transitions returns the recorded lifecycle edges across all boots.
func (h *HatNode) Transitions() []Transition { return h.log }

// Config returns the active config.
func (h *HatNode) Config() *Config { return h.cfg }

// Engine returns the current boot's engine.
func (h *HatNode) Engine() *engine.Engine { return h.eng }

// Server returns the current boot's port server.
func (h *HatNode) Server() *engine.Server { return h.srv }

// ClusterNode returns the current boot's cluster service.
func (h *HatNode) ClusterNode() *cluster.Node { return h.cn }

// Store returns the durable store (survives boots).
func (h *HatNode) Store() *hatkv.Store { return h.store }

// Exposition renders the attached registry's metrics ("" when detached).
func (h *HatNode) Exposition() string { return h.reg.Exposition() }
