package node

import (
	"errors"
	"fmt"
	"strconv"
	"strings"

	"hatrpc/internal/cluster"
	"hatrpc/internal/engine"
	"hatrpc/internal/hints"
	"hatrpc/internal/lmdb"
)

// Typed config failures. Every rejected config names the offending key;
// match with errors.Is (the sentinels) or errors.As (*ConfigError) for
// the key and line.
var (
	// ErrUnknownKey: the config contains a key the node does not know.
	// Strict by design — a typo'd key must fail loudly, not silently
	// fall back to a default.
	ErrUnknownKey = errors.New("node: unknown config key")
	// ErrBadValue: a known key carries a malformed or out-of-range value.
	ErrBadValue = errors.New("node: bad config value")
	// ErrImmutableKey: a hot-reload changed a key that can only be set at
	// boot (seed, topology, durability mode).
	ErrImmutableKey = errors.New("node: immutable config key changed at reload")
)

// ConfigError is one rejected config key: the dotted key path, the
// source line (0 when not from a file), and the sentinel class.
type ConfigError struct {
	Key    string
	Line   int
	Err    error
	Detail string
}

func (e *ConfigError) Error() string {
	s := fmt.Sprintf("%v: %s", e.Err, e.Key)
	if e.Line > 0 {
		s += fmt.Sprintf(" (line %d)", e.Line)
	}
	if e.Detail != "" {
		s += ": " + e.Detail
	}
	return s
}

func (e *ConfigError) Unwrap() error { return e.Err }

// Config is the full node configuration, split neo-go-style into an
// application section (what this node runs: ops surface, workload,
// drain policy) and a protocol section (what every node must agree on:
// topology, durability, transport tuning, hints).
type Config struct {
	Application AppConfig
	Protocol    ProtoConfig
}

// AppConfig is the per-node application section.
type AppConfig struct {
	// Name labels the node in logs and reports.
	Name string
	// Ops enables the live-ops surface (health/metrics/drain functions
	// multiplexed onto the cluster port). Disabled, the node is
	// byte-identical to a bare cluster node.
	Ops bool
	// MetricsSink selects where the Prometheus-style exposition goes at
	// shutdown: "none" or "stdout".
	MetricsSink string
	// DrainDeadlineNs bounds a graceful drain before it escalates to the
	// crash path. Zero waits forever.
	DrainDeadlineNs int64
	// DrainLingerNs keeps the node alive (fenced) after it has quiesced,
	// so peer monitors observe the typed draining rejections and promote
	// this node's shards away while it can still serve resyncs. Sized to
	// cover FailThreshold probe intervals plus a candidacy; zero stops
	// immediately after quiesce (failover then happens post-mortem, as
	// with a hard kill).
	DrainLingerNs int64
	// Workload sizes the built-in soak workload (cmd/hatnode -rolling).
	Workload WorkloadConfig
}

// WorkloadConfig sizes the retry-until-acked soak workload.
type WorkloadConfig struct {
	Workers int
	Writes  int   // per worker
	PaceNs  int64 // inter-write pacing
}

// ProtoConfig is the cluster-wide protocol section.
type ProtoConfig struct {
	Seed     int64
	Servers  int
	Shards   int
	RF       int
	SyncMode lmdb.SyncMode
	// Listeners names the ports the node serves. The cluster port is
	// always first; extra entries are reserved for future services.
	Listeners []string
	// Credits overrides engine.Config.FlowCredits (0 = engine default).
	Credits int
	// AdmitLimit/AdmitPolicy configure server admission control
	// (0 = unlimited). Hot-reloadable.
	AdmitLimit  int
	AdmitPolicy engine.AdmitPolicy
	// Hints is the node-level hint override group (hot-reloadable).
	Hints hints.Group
	// Crash is the seeded crash-plan policy for chaos runs (all zero =
	// no crash plan).
	Crash CrashSpec
}

// CrashSpec mirrors simnet.CrashConfig's timing policy.
type CrashSpec struct {
	MeanUptimeNs    int64
	MinUptimeNs     int64
	RestartDelayNs  int64
	RestartJitterNs int64
	HorizonNs       int64
}

// DefaultConfig returns the runnable defaults: a 5-node RF-3 SyncFull
// cluster with the ops surface on and a small soak workload.
func DefaultConfig() *Config {
	return &Config{
		Application: AppConfig{
			Name:            "hatnode",
			Ops:             true,
			MetricsSink:     "none",
			DrainDeadlineNs: 300_000,
			DrainLingerNs:   600_000,
			Workload:        WorkloadConfig{Workers: 3, Writes: 40, PaceNs: 250_000},
		},
		Protocol: ProtoConfig{
			Seed:      1,
			Servers:   5,
			Shards:    8,
			RF:        3,
			SyncMode:  lmdb.SyncFull,
			Listeners: []string{cluster.Port},
			Hints:     hints.Group{},
			Crash:     CrashSpec{RestartDelayNs: 400_000, RestartJitterNs: 200_000},
		},
	}
}

// ClusterConfig derives the cluster tier's shared config.
func (c *Config) ClusterConfig() cluster.Config {
	cc := cluster.Config{Seed: c.Protocol.Seed, NShards: c.Protocol.Shards, RF: c.Protocol.RF}
	cc.NodeIDs = make([]int, c.Protocol.Servers)
	for i := range cc.NodeIDs {
		cc.NodeIDs[i] = i
	}
	return cc
}

// Clone deep-copies the config (hint groups and listener sets are
// mutable).
func (c *Config) Clone() *Config {
	out := *c
	out.Protocol.Hints = c.Protocol.Hints.Clone()
	out.Protocol.Listeners = append([]string(nil), c.Protocol.Listeners...)
	return &out
}

// ParseConfig strictly decodes a YAML node config: unknown keys,
// malformed values, and out-of-range values are rejected with a
// *ConfigError naming the key and line. Absent keys keep their
// DefaultConfig values.
func ParseConfig(src string) (*Config, error) {
	root, err := parseYAML(src)
	if err != nil {
		return nil, err
	}
	cfg := DefaultConfig()
	for _, k := range root.keys {
		n := root.child[k]
		switch k {
		case "application":
			if err := decodeApplication(&cfg.Application, n); err != nil {
				return nil, err
			}
		case "protocol":
			if err := decodeProtocol(&cfg.Protocol, n); err != nil {
				return nil, err
			}
		default:
			return nil, &ConfigError{Key: k, Line: n.line, Err: ErrUnknownKey, Detail: "want application|protocol"}
		}
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return cfg, nil
}

func decodeApplication(a *AppConfig, sec *yamlNode) error {
	if err := wantMap("application", sec); err != nil {
		return err
	}
	for _, k := range sec.keys {
		n := sec.child[k]
		key := "application." + k
		var err error
		switch k {
		case "name":
			a.Name, err = scalarString(key, n)
		case "ops":
			a.Ops, err = scalarBool(key, n)
		case "metrics_sink":
			a.MetricsSink, err = scalarEnum(key, n, "none", "stdout")
		case "drain_deadline":
			a.DrainDeadlineNs, err = scalarDuration(key, n)
		case "drain_linger":
			a.DrainLingerNs, err = scalarDuration(key, n)
		case "workload":
			err = decodeWorkload(&a.Workload, n)
		default:
			return &ConfigError{Key: key, Line: n.line, Err: ErrUnknownKey}
		}
		if err != nil {
			return err
		}
	}
	return nil
}

func decodeWorkload(w *WorkloadConfig, sec *yamlNode) error {
	if err := wantMap("application.workload", sec); err != nil {
		return err
	}
	for _, k := range sec.keys {
		n := sec.child[k]
		key := "application.workload." + k
		var err error
		switch k {
		case "workers":
			w.Workers, err = scalarInt(key, n, 1, 1024)
		case "writes":
			w.Writes, err = scalarInt(key, n, 1, 1<<20)
		case "pace":
			w.PaceNs, err = scalarDuration(key, n)
		default:
			return &ConfigError{Key: key, Line: n.line, Err: ErrUnknownKey}
		}
		if err != nil {
			return err
		}
	}
	return nil
}

func decodeProtocol(pr *ProtoConfig, sec *yamlNode) error {
	if err := wantMap("protocol", sec); err != nil {
		return err
	}
	for _, k := range sec.keys {
		n := sec.child[k]
		key := "protocol." + k
		var err error
		switch k {
		case "seed":
			var v int
			v, err = scalarInt(key, n, 0, 1<<62-1)
			pr.Seed = int64(v)
		case "servers":
			pr.Servers, err = scalarInt(key, n, 1, 256)
		case "shards":
			pr.Shards, err = scalarInt(key, n, 1, 4096)
		case "rf":
			pr.RF, err = scalarInt(key, n, 1, 16)
		case "sync_mode":
			var v string
			if v, err = scalarEnum(key, n, "full", "meta", "none"); err == nil {
				switch v {
				case "full":
					pr.SyncMode = lmdb.SyncFull
				case "meta":
					pr.SyncMode = lmdb.SyncMeta
				case "none":
					pr.SyncMode = lmdb.NoSync
				}
			}
		case "listeners":
			pr.Listeners, err = scalarList(key, n)
		case "credits":
			pr.Credits, err = scalarInt(key, n, 0, 1<<20)
		case "admit_limit":
			pr.AdmitLimit, err = scalarInt(key, n, 0, 1<<20)
		case "admit_policy":
			var v string
			if v, err = scalarString(key, n); err == nil {
				if pr.AdmitPolicy, err = engine.ParseAdmitPolicy(v); err != nil {
					err = &ConfigError{Key: key, Line: n.line, Err: ErrBadValue, Detail: err.Error()}
				}
			}
		case "hints":
			pr.Hints, err = decodeHints(key, n)
		case "crash":
			err = decodeCrash(&pr.Crash, n)
		default:
			return &ConfigError{Key: key, Line: n.line, Err: ErrUnknownKey}
		}
		if err != nil {
			return err
		}
	}
	return nil
}

func decodeHints(path string, sec *yamlNode) (hints.Group, error) {
	if err := wantMap(path, sec); err != nil {
		return nil, err
	}
	g := hints.Group{}
	for _, k := range sec.keys {
		n := sec.child[k]
		key := path + "." + k
		v, err := scalarString(key, n)
		if err != nil {
			return nil, err
		}
		if err := hints.Validate(hints.Key(k), v); err != nil {
			cls := ErrBadValue
			if !isKnownHint(k) {
				cls = ErrUnknownKey
			}
			return nil, &ConfigError{Key: key, Line: n.line, Err: cls, Detail: err.Error()}
		}
		g[hints.Key(k)] = v
	}
	return g, nil
}

func isKnownHint(k string) bool {
	for _, known := range hints.KnownKeys() {
		if string(known) == k {
			return true
		}
	}
	return false
}

func decodeCrash(cs *CrashSpec, sec *yamlNode) error {
	if err := wantMap("protocol.crash", sec); err != nil {
		return err
	}
	for _, k := range sec.keys {
		n := sec.child[k]
		key := "protocol.crash." + k
		var err error
		switch k {
		case "mean_uptime":
			cs.MeanUptimeNs, err = scalarDuration(key, n)
		case "min_uptime":
			cs.MinUptimeNs, err = scalarDuration(key, n)
		case "restart_delay":
			cs.RestartDelayNs, err = scalarDuration(key, n)
		case "restart_jitter":
			cs.RestartJitterNs, err = scalarDuration(key, n)
		case "horizon":
			cs.HorizonNs, err = scalarDuration(key, n)
		default:
			return &ConfigError{Key: key, Line: n.line, Err: ErrUnknownKey}
		}
		if err != nil {
			return err
		}
	}
	return nil
}

// Validate checks cross-field constraints that single-key decoding
// cannot see.
func (c *Config) Validate() error {
	p := &c.Protocol
	if p.RF > p.Servers {
		return &ConfigError{Key: "protocol.rf", Err: ErrBadValue,
			Detail: fmt.Sprintf("replication factor %d exceeds servers %d", p.RF, p.Servers)}
	}
	if len(p.Listeners) == 0 {
		return &ConfigError{Key: "protocol.listeners", Err: ErrBadValue, Detail: "must name at least one port"}
	}
	if p.Listeners[0] != cluster.Port {
		return &ConfigError{Key: "protocol.listeners", Err: ErrBadValue,
			Detail: fmt.Sprintf("first listener must be %q (got %q)", cluster.Port, p.Listeners[0])}
	}
	if p.Crash.MeanUptimeNs > 0 && p.Crash.HorizonNs <= 0 {
		return &ConfigError{Key: "protocol.crash.horizon", Err: ErrBadValue,
			Detail: "a crash plan needs a positive horizon"}
	}
	return nil
}

// ---------------------------------------------------------------------------
// Scalar decoding helpers

func wantMap(path string, n *yamlNode) error {
	if n.kind != yMap {
		return &ConfigError{Key: path, Line: n.line, Err: ErrBadValue,
			Detail: fmt.Sprintf("expected a mapping, got a %s", n.kindName())}
	}
	return nil
}

func scalarString(key string, n *yamlNode) (string, error) {
	if n.kind != yScalar {
		return "", &ConfigError{Key: key, Line: n.line, Err: ErrBadValue,
			Detail: fmt.Sprintf("expected a scalar, got a %s", n.kindName())}
	}
	return n.scalar, nil
}

func scalarBool(key string, n *yamlNode) (bool, error) {
	s, err := scalarString(key, n)
	if err != nil {
		return false, err
	}
	switch s {
	case "true":
		return true, nil
	case "false":
		return false, nil
	}
	return false, &ConfigError{Key: key, Line: n.line, Err: ErrBadValue,
		Detail: fmt.Sprintf("want true|false, got %q", s)}
}

func scalarInt(key string, n *yamlNode, min, max int) (int, error) {
	s, err := scalarString(key, n)
	if err != nil {
		return 0, err
	}
	v, perr := strconv.Atoi(s)
	if perr != nil {
		return 0, &ConfigError{Key: key, Line: n.line, Err: ErrBadValue,
			Detail: fmt.Sprintf("want an integer, got %q", s)}
	}
	if v < min || v > max {
		return 0, &ConfigError{Key: key, Line: n.line, Err: ErrBadValue,
			Detail: fmt.Sprintf("%d out of range [%d, %d]", v, min, max)}
	}
	return v, nil
}

func scalarEnum(key string, n *yamlNode, allowed ...string) (string, error) {
	s, err := scalarString(key, n)
	if err != nil {
		return "", err
	}
	for _, a := range allowed {
		if s == a {
			return s, nil
		}
	}
	return "", &ConfigError{Key: key, Line: n.line, Err: ErrBadValue,
		Detail: fmt.Sprintf("want %s, got %q", strings.Join(allowed, "|"), s)}
}

func scalarList(key string, n *yamlNode) ([]string, error) {
	if n.kind != yList {
		return nil, &ConfigError{Key: key, Line: n.line, Err: ErrBadValue,
			Detail: fmt.Sprintf("expected a list, got a %s", n.kindName())}
	}
	out := make([]string, len(n.items))
	for i, it := range n.items {
		out[i] = it.scalar
	}
	return out, nil
}

// scalarDuration parses a duration into virtual nanoseconds: a bare
// integer is ns; ns/us/µs/ms/s suffixes scale (decimals allowed:
// "1.5ms" = 1_500_000).
func scalarDuration(key string, n *yamlNode) (int64, error) {
	s, err := scalarString(key, n)
	if err != nil {
		return 0, err
	}
	v, perr := parseDurationNs(s)
	if perr != nil {
		return 0, &ConfigError{Key: key, Line: n.line, Err: ErrBadValue, Detail: perr.Error()}
	}
	return v, nil
}

func parseDurationNs(s string) (int64, error) {
	t := strings.TrimSpace(s)
	mult := int64(1)
	switch {
	case strings.HasSuffix(t, "ns"):
		t = strings.TrimSuffix(t, "ns")
	case strings.HasSuffix(t, "us"):
		t, mult = strings.TrimSuffix(t, "us"), 1_000
	case strings.HasSuffix(t, "µs"):
		t, mult = strings.TrimSuffix(t, "µs"), 1_000
	case strings.HasSuffix(t, "ms"):
		t, mult = strings.TrimSuffix(t, "ms"), 1_000_000
	case strings.HasSuffix(t, "s"):
		t, mult = strings.TrimSuffix(t, "s"), 1_000_000_000
	}
	f, err := strconv.ParseFloat(strings.TrimSpace(t), 64)
	if err != nil {
		return 0, fmt.Errorf("want a duration like 250us or 1.5ms, got %q", s)
	}
	if f < 0 {
		return 0, fmt.Errorf("duration must be non-negative, got %q", s)
	}
	return int64(f * float64(mult)), nil
}
