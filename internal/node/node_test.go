package node_test

import (
	"errors"
	"fmt"
	"hash/fnv"
	"strings"
	"testing"

	"hatrpc/internal/cluster"
	"hatrpc/internal/engine"
	"hatrpc/internal/node"
	"hatrpc/internal/obs"
	"hatrpc/internal/sim"
	"hatrpc/internal/simnet"
)

// rig is a booted HatNode cluster plus a spare client machine.
type rig struct {
	env    *sim.Env
	cl     *simnet.Cluster
	roster []*simnet.Node
	hats   []*node.HatNode
	reg    *obs.Registry
	cli    *engine.Engine
}

func newRig(t *testing.T, cfg *node.Config) *rig {
	t.Helper()
	env := sim.NewEnv(cfg.Protocol.Seed)
	cl := simnet.NewCluster(env, simnet.Config{
		Nodes: cfg.Protocol.Servers + 1, Cores: 28, Sockets: 2, LinkGbps: 100, PropDelayNs: 600, NUMAPenalty: 1.25,
	})
	r := &rig{env: env, cl: cl, reg: obs.NewRegistry()}
	r.roster = make([]*simnet.Node, cfg.Protocol.Servers)
	for i := range r.roster {
		r.roster[i] = cl.Node(i)
	}
	r.hats = make([]*node.HatNode, cfg.Protocol.Servers)
	for i := range r.hats {
		h, err := node.New(cl.Node(i), r.roster, i, cfg, r.reg)
		if err != nil {
			t.Fatalf("node.New(%d): %v", i, err)
		}
		r.hats[i] = h
	}
	r.cli = engine.New(cl.Node(cfg.Protocol.Servers), engine.DefaultConfig())
	return r
}

// smallConfig is the shared test topology: 3 servers so drains keep
// quorum, light defaults elsewhere.
func smallConfig() *node.Config {
	cfg := node.DefaultConfig()
	cfg.Protocol.Servers = 3
	cfg.Protocol.Shards = 4
	return cfg
}

func TestBootTransitions(t *testing.T) {
	r := newRig(t, smallConfig())
	h := r.hats[0]
	if h.State() != node.StateReady {
		t.Fatalf("state after New = %v, want ready", h.State())
	}
	tr := h.Transitions()
	if len(tr) != 2 || tr[0].To != node.StateStarting || tr[1].To != node.StateReady {
		t.Errorf("transitions = %+v, want [starting ready]", tr)
	}
}

// TestDrainIdleImmediate: with zero in-flight work and no linger a
// drain quiesces instantly, and Stop releases every pinned byte.
func TestDrainIdleImmediate(t *testing.T) {
	cfg := smallConfig()
	cfg.Application.DrainLingerNs = 0
	r := newRig(t, cfg)
	h := r.hats[0]
	var rep node.DrainReport
	r.env.Spawn("ops", func(p *sim.Proc) {
		p.Sleep(100_000)
		rep = h.Drain(p, 300_000)
		h.Stop()
		r.env.Stop()
	})
	r.env.Run()
	if !rep.Completed || rep.Escalated || rep.Crashed || rep.AlreadyDrained {
		t.Fatalf("report = %+v, want Completed", rep)
	}
	if rep.ActiveAtStart != 0 || rep.Quiesced != rep.Started {
		t.Errorf("idle drain: active=%d quiesced=%d started=%d, want instant quiesce",
			rep.ActiveAtStart, rep.Quiesced, rep.Started)
	}
	if h.State() != node.StateDown {
		t.Errorf("state after Stop = %v, want down", h.State())
	}
	if got := r.reg.Counter("node.drains").Value(); got != 1 {
		t.Errorf("node.drains = %d, want 1", got)
	}
	if pinned := h.Engine().PinnedBytes(); pinned != 0 {
		t.Errorf("%d bytes still pinned after Stop", pinned)
	}
}

// TestDrainDoubleIdempotent: a second drain on a draining (or stopped)
// node is a typed no-op, not a second escalation countdown.
func TestDrainDoubleIdempotent(t *testing.T) {
	cfg := smallConfig()
	cfg.Application.DrainLingerNs = 0
	r := newRig(t, cfg)
	h := r.hats[0]
	var first, second, third node.DrainReport
	r.env.Spawn("ops", func(p *sim.Proc) {
		p.Sleep(100_000)
		first = h.Drain(p, 300_000)
		second = h.Drain(p, 300_000)
		h.Stop()
		third = h.Drain(p, 300_000)
		r.env.Stop()
	})
	r.env.Run()
	if !first.Completed {
		t.Fatalf("first drain = %+v, want Completed", first)
	}
	if !second.AlreadyDrained || !third.AlreadyDrained {
		t.Errorf("repeat drains = %+v / %+v, want AlreadyDrained", second, third)
	}
	if got := r.reg.Counter("node.drains").Value(); got != 1 {
		t.Errorf("node.drains = %d, want 1 (idempotent)", got)
	}
}

// TestDrainDeadlineEscalation: a drain that cannot quiesce inside its
// deadline reports Escalated (the caller then stops anyway), in order:
// fence up → deadline expiry → escalation counter, never a completed
// drain.
func TestDrainDeadlineEscalation(t *testing.T) {
	cfg := smallConfig()
	cfg.Application.Workload = node.WorkloadConfig{}
	r := newRig(t, cfg)
	h := r.hats[0]
	// Hammer every shard with parallel writers so the server always has
	// work in flight or queued when the drain starts.
	for w := 0; w < 12; w++ {
		w := w
		r.env.Spawn(fmt.Sprintf("hammer-%d", w), func(p *sim.Proc) {
			c := cluster.NewClient(r.cli, r.roster, h.Config().ClusterConfig())
			for i := 0; ; i++ {
				_ = c.Put(p, fmt.Sprintf("h%02d-%04d", w, i), []byte("x")) //nolint:errcheck
			}
		})
	}
	var rep node.DrainReport
	r.env.Spawn("ops", func(p *sim.Proc) {
		for h.Server().Active() == 0 {
			p.Sleep(5_000)
		}
		rep = h.Drain(p, 1) // 1ns deadline: quiescing in time is impossible
		h.Stop()
		r.env.Stop()
	})
	r.env.Run()
	if !rep.Escalated || rep.Completed {
		t.Fatalf("report = %+v, want Escalated", rep)
	}
	if rep.ActiveAtStart == 0 {
		t.Error("escalation test raced: no in-flight work at drain start")
	}
	if got := r.reg.Counter("node.drain_escalations").Value(); got != 1 {
		t.Errorf("node.drain_escalations = %d, want 1", got)
	}
	if got := r.reg.Counter("node.drains").Value(); got != 0 {
		t.Errorf("node.drains = %d, want 0 — an escalated drain is not a completed one", got)
	}
}

// TestDrainCrashRace: a crash landing mid-linger turns the drain report
// into Crashed — no completed-drain accounting, state machine at down.
func TestDrainCrashRace(t *testing.T) {
	cfg := smallConfig()
	cfg.Application.DrainLingerNs = 600_000
	r := newRig(t, cfg)
	h := r.hats[0]
	var rep node.DrainReport
	r.env.Spawn("ops", func(p *sim.Proc) {
		p.Sleep(100_000)
		rep = h.Drain(p, 300_000) // quiesces instantly, lingers to 700us
		r.env.Stop()
	})
	r.env.At(300_000, r.cl.Node(0).Crash)
	r.env.Run()
	if !rep.Crashed || rep.Completed || rep.Escalated {
		t.Fatalf("report = %+v, want Crashed", rep)
	}
	if h.State() != node.StateDown {
		t.Errorf("state = %v, want down (crash hook ran)", h.State())
	}
	if got := r.reg.Counter("node.drains").Value(); got != 0 {
		t.Errorf("node.drains = %d, want 0", got)
	}
}

// TestOpsSurface drives the three ops functions over the wire: health
// reflects the state machine (and keeps answering through the fence),
// metrics returns the exposition, drain starts an async drain.
func TestOpsSurface(t *testing.T) {
	cfg := smallConfig()
	r := newRig(t, cfg)
	r.env.Spawn("operator", func(p *sim.Proc) {
		c := r.cli.Dial(p, r.cl.Node(0), cluster.Port)
		opts := engine.CallOpts{Proto: engine.EagerSendRecv, Busy: true}
		if resp, err := c.Call(p, node.FnOpsHealth, nil, opts); err != nil || string(resp) != "ready" {
			t.Errorf("health = %q, %v; want ready", resp, err)
		}
		if resp, err := c.Call(p, node.FnOpsMetrics, nil, opts); err != nil || !strings.Contains(string(resp), "hatrpc_") {
			t.Errorf("metrics = %.60q..., %v; want exposition text", resp, err)
		}
		if resp, err := c.Call(p, node.FnOpsDrain, nil, opts); err != nil || string(resp) != "draining" {
			t.Errorf("drain = %q, %v; want draining", resp, err)
		}
		p.Sleep(50_000) // let the spawned drain put the fence up
		if resp, err := c.Call(p, node.FnOpsHealth, nil, opts); err != nil || string(resp) != "draining" {
			t.Errorf("health while draining = %q, %v (exempt fns must answer)", resp, err)
		}
		r.env.Stop()
	})
	r.env.Run()
	if r.hats[0].State() != node.StateDraining {
		t.Errorf("state = %v, want draining", r.hats[0].State())
	}
}

func TestReloadNoop(t *testing.T) {
	r := newRig(t, smallConfig())
	h := r.hats[0]
	before := h.Config()
	rep, err := h.Reload(before.Clone())
	if err != nil || len(rep.Changed) != 0 {
		t.Fatalf("no-op reload: %+v, %v", rep, err)
	}
	if h.Config() != before {
		t.Error("no-op reload swapped the config pointer")
	}
	if got := r.reg.Counter("node.reloads").Value(); got != 0 {
		t.Errorf("node.reloads = %d, want 0", got)
	}
}

// TestReloadPollingTakesEffect: a hint change lands on the live server
// — same boot, same server object, no lifecycle transition.
func TestReloadPollingTakesEffect(t *testing.T) {
	r := newRig(t, smallConfig())
	h := r.hats[0]
	srvBefore, transBefore := h.Server(), len(h.Transitions())
	next := h.Config().Clone()
	next.Protocol.Hints["polling"] = "busy"
	rep, err := h.Reload(next)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Changed) != 1 || rep.Changed[0] != "protocol.hints.polling" {
		t.Errorf("Changed = %v, want [protocol.hints.polling]", rep.Changed)
	}
	if h.Server() != srvBefore {
		t.Error("reload rebuilt the server — that is a restart, not a hot reload")
	}
	if h.Server().Poll != engine.PollBusyMode {
		t.Errorf("server poll mode = %v, want busy", h.Server().Poll)
	}
	if len(h.Transitions()) != transBefore {
		t.Error("reload moved the lifecycle state machine")
	}
	if got := r.reg.Counter("node.reloads").Value(); got != 1 {
		t.Errorf("node.reloads = %d, want 1", got)
	}
}

func TestReloadImmutableRejected(t *testing.T) {
	r := newRig(t, smallConfig())
	h := r.hats[0]
	before := h.Config()
	next := before.Clone()
	next.Protocol.Shards++
	next.Protocol.Hints["polling"] = "busy" // must NOT be applied either
	_, err := h.Reload(next)
	if !errors.Is(err, node.ErrImmutableKey) {
		t.Fatalf("err = %v, want ErrImmutableKey", err)
	}
	var ce *node.ConfigError
	if !errors.As(err, &ce) || ce.Key != "protocol.shards" {
		t.Errorf("error names %q, want protocol.shards", ce.Key)
	}
	if h.Config() != before {
		t.Error("rejected reload still swapped the config")
	}
	if h.Server().Poll == engine.PollBusyMode {
		t.Error("rejected reload partially applied the hint change")
	}
}

// soakDigest runs a short client workload against a rig and folds every
// ack (key, virtual time) plus the final clock into a digest — the
// byte-identity probe for schedule perturbation.
func soakDigest(t *testing.T, cfg *node.Config, hook func(*rig)) string {
	t.Helper()
	r := newRig(t, cfg)
	if hook != nil {
		hook(r)
	}
	h := fnv.New64a()
	done := 0
	const workers, writes = 2, 15
	for w := 0; w < workers; w++ {
		w := w
		r.env.Spawn(fmt.Sprintf("worker-%d", w), func(p *sim.Proc) {
			c := cluster.NewClient(r.cli, r.roster, cfg.ClusterConfig())
			for i := 0; i < writes; i++ {
				key := fmt.Sprintf("w%d-%03d", w, i)
				for c.Put(p, key, []byte(key)) != nil {
					p.Sleep(250_000)
				}
				fmt.Fprintf(h, "%s|%d\n", key, p.Now())
				p.Sleep(200_000)
			}
			if done++; done == workers {
				r.env.Stop()
			}
		})
	}
	r.env.Run()
	return fmt.Sprintf("%016x@%d", h.Sum64(), r.env.Now())
}

// TestOpsDisabledByteIdentical: enabling the ops surface without using
// it must not move a single event — the ops functions multiplex onto
// the existing dispatchers (NewUnservedNode), adding zero processes.
func TestOpsDisabledByteIdentical(t *testing.T) {
	on := smallConfig()
	on.Application.Ops = true
	off := smallConfig()
	off.Application.Ops = false
	if a, b := soakDigest(t, on, nil), soakDigest(t, off, nil); a != b {
		t.Errorf("ops-enabled-unused run diverged from ops-disabled: %s vs %s", a, b)
	}
}

// TestNoopReloadByteIdentical: a reload that changes nothing must not
// perturb the schedule — compared against an identically-shaped idle
// process, the only difference is the Reload call itself.
func TestNoopReloadByteIdentical(t *testing.T) {
	cfg := smallConfig()
	withReload := soakDigest(t, cfg, func(r *rig) {
		r.env.Spawn("reloader", func(p *sim.Proc) {
			p.Sleep(2_000_000)
			rep, err := r.hats[0].Reload(r.hats[0].Config().Clone())
			if err != nil || len(rep.Changed) != 0 {
				t.Errorf("no-op reload: %+v, %v", rep, err)
			}
		})
	})
	baseline := soakDigest(t, cfg, func(r *rig) {
		r.env.Spawn("reloader", func(p *sim.Proc) {
			p.Sleep(2_000_000)
		})
	})
	if withReload != baseline {
		t.Errorf("no-op reload perturbed the schedule: %s vs %s", withReload, baseline)
	}
}

// TestLiveReloadUnderTraffic: a real hint reload mid-soak takes effect
// without failing a single in-flight or subsequent write.
func TestLiveReloadUnderTraffic(t *testing.T) {
	cfg := smallConfig()
	var reloaded *rig
	digest := soakDigest(t, cfg, func(r *rig) {
		reloaded = r
		r.env.Spawn("reloader", func(p *sim.Proc) {
			p.Sleep(2_000_000)
			next := r.hats[0].Config().Clone()
			next.Protocol.Hints["polling"] = "busy"
			if _, err := r.hats[0].Reload(next); err != nil {
				t.Errorf("live reload: %v", err)
			}
		})
	})
	if digest == "" {
		t.Fatal("soak produced no digest")
	}
	if reloaded.hats[0].Server().Poll != engine.PollBusyMode {
		t.Error("hint reload never reached the live server")
	}
	if got := reloaded.reg.Counter("node.reloads").Value(); got != 1 {
		t.Errorf("node.reloads = %d, want 1", got)
	}
}
