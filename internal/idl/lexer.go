// Package idl implements the HatRPC interface-definition language: the
// Apache Thrift IDL extended with the hierarchical hint grammar of the
// paper's Figure 7. The original Thrift compiler uses flex and Bison; this
// package plays that role with a hand-written lexer and recursive-descent
// parser producing an AST the code generator consumes.
package idl

import (
	"fmt"
	"strings"
	"unicode"
)

// TokKind classifies lexical tokens.
type TokKind int

// Token kinds.
const (
	TokEOF TokKind = iota
	TokIdent
	TokIntLit
	TokDoubleLit
	TokStringLit
	TokLBrace   // {
	TokRBrace   // }
	TokLParen   // (
	TokRParen   // )
	TokLBracket // [
	TokRBracket // ]
	TokLAngle   // <
	TokRAngle   // >
	TokComma    // ,
	TokSemi     // ;
	TokColon    // :
	TokEquals   // =
)

func (k TokKind) String() string {
	switch k {
	case TokEOF:
		return "EOF"
	case TokIdent:
		return "identifier"
	case TokIntLit:
		return "integer"
	case TokDoubleLit:
		return "double"
	case TokStringLit:
		return "string"
	case TokLBrace:
		return "'{'"
	case TokRBrace:
		return "'}'"
	case TokLParen:
		return "'('"
	case TokRParen:
		return "')'"
	case TokLBracket:
		return "'['"
	case TokRBracket:
		return "']'"
	case TokLAngle:
		return "'<'"
	case TokRAngle:
		return "'>'"
	case TokComma:
		return "','"
	case TokSemi:
		return "';'"
	case TokColon:
		return "':'"
	case TokEquals:
		return "'='"
	}
	return fmt.Sprintf("TokKind(%d)", int(k))
}

// Token is one lexical token with its source position.
type Token struct {
	Kind TokKind
	Text string
	Line int
	Col  int
}

func (t Token) String() string {
	if t.Text != "" {
		return fmt.Sprintf("%s %q", t.Kind, t.Text)
	}
	return t.Kind.String()
}

// Error is a lexing or parsing error with position.
type Error struct {
	File string
	Line int
	Col  int
	Msg  string
}

func (e *Error) Error() string {
	return fmt.Sprintf("%s:%d:%d: %s", e.File, e.Line, e.Col, e.Msg)
}

// Lexer tokenizes IDL source. Thrift comment styles are all supported:
// //, #, and /* ... */.
type Lexer struct {
	file string
	src  []rune
	pos  int
	line int
	col  int
}

// NewLexer returns a lexer over src; file names error positions.
func NewLexer(file, src string) *Lexer {
	return &Lexer{file: file, src: []rune(src), line: 1, col: 1}
}

func (l *Lexer) errf(format string, args ...any) *Error {
	return &Error{File: l.file, Line: l.line, Col: l.col, Msg: fmt.Sprintf(format, args...)}
}

func (l *Lexer) peek() rune {
	if l.pos >= len(l.src) {
		return 0
	}
	return l.src[l.pos]
}

func (l *Lexer) peek2() rune {
	if l.pos+1 >= len(l.src) {
		return 0
	}
	return l.src[l.pos+1]
}

func (l *Lexer) advance() rune {
	r := l.src[l.pos]
	l.pos++
	if r == '\n' {
		l.line++
		l.col = 1
	} else {
		l.col++
	}
	return r
}

func (l *Lexer) skipSpaceAndComments() error {
	for l.pos < len(l.src) {
		r := l.peek()
		switch {
		case unicode.IsSpace(r):
			l.advance()
		case r == '#':
			for l.pos < len(l.src) && l.peek() != '\n' {
				l.advance()
			}
		case r == '/' && l.peek2() == '/':
			for l.pos < len(l.src) && l.peek() != '\n' {
				l.advance()
			}
		case r == '/' && l.peek2() == '*':
			l.advance()
			l.advance()
			closed := false
			for l.pos < len(l.src) {
				if l.peek() == '*' && l.peek2() == '/' {
					l.advance()
					l.advance()
					closed = true
					break
				}
				l.advance()
			}
			if !closed {
				return l.errf("unterminated block comment")
			}
		default:
			return nil
		}
	}
	return nil
}

func isIdentStart(r rune) bool {
	return r == '_' || unicode.IsLetter(r)
}

func isIdentPart(r rune) bool {
	return r == '_' || r == '.' || unicode.IsLetter(r) || unicode.IsDigit(r)
}

// Next returns the next token.
func (l *Lexer) Next() (Token, error) {
	if err := l.skipSpaceAndComments(); err != nil {
		return Token{}, err
	}
	line, col := l.line, l.col
	if l.pos >= len(l.src) {
		return Token{Kind: TokEOF, Line: line, Col: col}, nil
	}
	r := l.peek()
	mk := func(k TokKind, text string) Token {
		return Token{Kind: k, Text: text, Line: line, Col: col}
	}
	switch {
	case isIdentStart(r):
		var b strings.Builder
		for l.pos < len(l.src) && isIdentPart(l.peek()) {
			b.WriteRune(l.advance())
		}
		return mk(TokIdent, b.String()), nil
	case unicode.IsDigit(r) || ((r == '-' || r == '+') && unicode.IsDigit(l.peek2())):
		var b strings.Builder
		if r == '-' || r == '+' {
			b.WriteRune(l.advance())
		}
		isDouble := false
		for l.pos < len(l.src) {
			c := l.peek()
			if unicode.IsDigit(c) {
				b.WriteRune(l.advance())
			} else if c == '.' && !isDouble {
				isDouble = true
				b.WriteRune(l.advance())
			} else {
				break
			}
		}
		if isDouble {
			return mk(TokDoubleLit, b.String()), nil
		}
		return mk(TokIntLit, b.String()), nil
	case r == '"' || r == '\'':
		quote := l.advance()
		var b strings.Builder
		for {
			if l.pos >= len(l.src) {
				return Token{}, l.errf("unterminated string literal")
			}
			c := l.advance()
			if c == quote {
				break
			}
			if c == '\\' && l.pos < len(l.src) {
				esc := l.advance()
				switch esc {
				case 'n':
					b.WriteRune('\n')
				case 't':
					b.WriteRune('\t')
				case '\\', '"', '\'':
					b.WriteRune(esc)
				default:
					return Token{}, l.errf("bad escape \\%c", esc)
				}
				continue
			}
			b.WriteRune(c)
		}
		return mk(TokStringLit, b.String()), nil
	}
	l.advance()
	switch r {
	case '{':
		return mk(TokLBrace, "{"), nil
	case '}':
		return mk(TokRBrace, "}"), nil
	case '(':
		return mk(TokLParen, "("), nil
	case ')':
		return mk(TokRParen, ")"), nil
	case '[':
		return mk(TokLBracket, "["), nil
	case ']':
		return mk(TokRBracket, "]"), nil
	case '<':
		return mk(TokLAngle, "<"), nil
	case '>':
		return mk(TokRAngle, ">"), nil
	case ',':
		return mk(TokComma, ","), nil
	case ';':
		return mk(TokSemi, ";"), nil
	case ':':
		return mk(TokColon, ":"), nil
	case '=':
		return mk(TokEquals, "="), nil
	}
	return Token{}, l.errf("unexpected character %q", r)
}

// Tokenize lexes the entire source.
func Tokenize(file, src string) ([]Token, error) {
	l := NewLexer(file, src)
	var toks []Token
	for {
		t, err := l.Next()
		if err != nil {
			return nil, err
		}
		toks = append(toks, t)
		if t.Kind == TokEOF {
			return toks, nil
		}
	}
}
