package idl

import (
	"fmt"
	"strconv"

	"hatrpc/internal/hints"
)

// Parser is a recursive-descent parser for the HatRPC IDL. Invalid hint
// key/value pairs do not fail the parse: following the paper (§4.2), they
// are filtered out and reported as warnings.
type Parser struct {
	file     string
	toks     []Token
	pos      int
	Warnings []string
}

// NewParser returns a parser over pre-lexed tokens.
func NewParser(file string, toks []Token) *Parser {
	return &Parser{file: file, toks: toks}
}

// Parse lexes and parses an IDL source file.
func Parse(file, src string) (*Document, []string, error) {
	toks, err := Tokenize(file, src)
	if err != nil {
		return nil, nil, err
	}
	p := NewParser(file, toks)
	doc, err := p.ParseDocument()
	return doc, p.Warnings, err
}

// MustParse parses src and panics on error; for tests and examples.
func MustParse(file, src string) *Document {
	doc, _, err := Parse(file, src)
	if err != nil {
		panic(err)
	}
	return doc
}

func (p *Parser) cur() Token  { return p.toks[p.pos] }
func (p *Parser) next() Token { t := p.toks[p.pos]; p.pos++; return t }

func (p *Parser) errf(t Token, format string, args ...any) error {
	return &Error{File: p.file, Line: t.Line, Col: t.Col, Msg: fmt.Sprintf(format, args...)}
}

func (p *Parser) expect(k TokKind) (Token, error) {
	t := p.cur()
	if t.Kind != k {
		return t, p.errf(t, "expected %s, got %s", k, t)
	}
	p.pos++
	return t, nil
}

func (p *Parser) expectKeyword(kw string) error {
	t := p.cur()
	if t.Kind != TokIdent || t.Text != kw {
		return p.errf(t, "expected %q, got %s", kw, t)
	}
	p.pos++
	return nil
}

func (p *Parser) atKeyword(kw string) bool {
	t := p.cur()
	return t.Kind == TokIdent && t.Text == kw
}

// skipListSep consumes an optional ',' or ';'.
func (p *Parser) skipListSep() {
	if k := p.cur().Kind; k == TokComma || k == TokSemi {
		p.pos++
	}
}

// ParseDocument parses the whole token stream.
func (p *Parser) ParseDocument() (*Document, error) {
	doc := &Document{File: p.file}
	for {
		t := p.cur()
		if t.Kind == TokEOF {
			return doc, nil
		}
		if t.Kind != TokIdent {
			return nil, p.errf(t, "expected definition, got %s", t)
		}
		switch t.Text {
		case "namespace":
			p.pos++
			scope, err := p.expect(TokIdent)
			if err != nil {
				return nil, err
			}
			name, err := p.expect(TokIdent)
			if err != nil {
				return nil, err
			}
			if scope.Text == "go" || scope.Text == "*" {
				doc.Namespace = name.Text
			}
		case "include":
			p.pos++
			if _, err := p.expect(TokStringLit); err != nil {
				return nil, err
			}
		case "typedef":
			td, err := p.parseTypedef()
			if err != nil {
				return nil, err
			}
			doc.Typedefs = append(doc.Typedefs, td)
		case "enum":
			e, err := p.parseEnum()
			if err != nil {
				return nil, err
			}
			doc.Enums = append(doc.Enums, e)
		case "struct", "exception":
			s, err := p.parseStruct(t.Text == "exception")
			if err != nil {
				return nil, err
			}
			doc.Structs = append(doc.Structs, s)
		case "const":
			c, err := p.parseConst()
			if err != nil {
				return nil, err
			}
			doc.Consts = append(doc.Consts, c)
		case "service":
			s, err := p.parseService()
			if err != nil {
				return nil, err
			}
			doc.Services = append(doc.Services, s)
		default:
			return nil, p.errf(t, "unknown definition keyword %q", t.Text)
		}
	}
}

func (p *Parser) parseTypedef() (*Typedef, error) {
	p.pos++ // typedef
	ty, err := p.parseType()
	if err != nil {
		return nil, err
	}
	name, err := p.expect(TokIdent)
	if err != nil {
		return nil, err
	}
	p.skipListSep()
	return &Typedef{Name: name.Text, Type: ty}, nil
}

func (p *Parser) parseEnum() (*Enum, error) {
	p.pos++ // enum
	name, err := p.expect(TokIdent)
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokLBrace); err != nil {
		return nil, err
	}
	e := &Enum{Name: name.Text}
	nextVal := 0
	for p.cur().Kind != TokRBrace {
		vn, err := p.expect(TokIdent)
		if err != nil {
			return nil, err
		}
		val := nextVal
		if p.cur().Kind == TokEquals {
			p.pos++
			iv, err := p.expect(TokIntLit)
			if err != nil {
				return nil, err
			}
			val, err = strconv.Atoi(iv.Text)
			if err != nil {
				return nil, p.errf(iv, "bad enum value %q", iv.Text)
			}
		}
		nextVal = val + 1
		e.Values = append(e.Values, EnumValue{Name: vn.Text, Value: val})
		p.skipListSep()
	}
	p.pos++ // }
	return e, nil
}

func (p *Parser) parseStruct(isExc bool) (*Struct, error) {
	p.pos++ // struct/exception
	name, err := p.expect(TokIdent)
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokLBrace); err != nil {
		return nil, err
	}
	s := &Struct{Name: name.Text, IsException: isExc}
	for p.cur().Kind != TokRBrace {
		f, err := p.parseField()
		if err != nil {
			return nil, err
		}
		s.Fields = append(s.Fields, f)
	}
	p.pos++ // }
	return s, nil
}

// parseField parses "ID ':' ('required'|'optional')? Type name (= default)? sep?".
func (p *Parser) parseField() (*Field, error) {
	idTok, err := p.expect(TokIntLit)
	if err != nil {
		return nil, err
	}
	id, err := strconv.Atoi(idTok.Text)
	if err != nil || id <= 0 {
		return nil, p.errf(idTok, "bad field id %q", idTok.Text)
	}
	if _, err := p.expect(TokColon); err != nil {
		return nil, err
	}
	optional := false
	if p.atKeyword("required") {
		p.pos++
	} else if p.atKeyword("optional") {
		optional = true
		p.pos++
	}
	ty, err := p.parseType()
	if err != nil {
		return nil, err
	}
	name, err := p.expect(TokIdent)
	if err != nil {
		return nil, err
	}
	if p.cur().Kind == TokEquals { // default value: parsed and discarded
		p.pos++
		switch p.cur().Kind {
		case TokIntLit, TokDoubleLit, TokStringLit, TokIdent:
			p.pos++
		default:
			return nil, p.errf(p.cur(), "bad default value %s", p.cur())
		}
	}
	p.skipListSep()
	return &Field{ID: id, Name: name.Text, Type: ty, Optional: optional}, nil
}

func (p *Parser) parseConst() (*Const, error) {
	p.pos++ // const
	ty, err := p.parseType()
	if err != nil {
		return nil, err
	}
	name, err := p.expect(TokIdent)
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokEquals); err != nil {
		return nil, err
	}
	v := p.cur()
	switch v.Kind {
	case TokIntLit, TokDoubleLit, TokStringLit, TokIdent:
		p.pos++
	default:
		return nil, p.errf(v, "bad const value %s", v)
	}
	p.skipListSep()
	return &Const{Name: name.Text, Type: ty, Value: v.Text}, nil
}

var baseTypes = map[string]TypeKind{
	"bool": TypeBool, "byte": TypeByte, "i8": TypeByte,
	"i16": TypeI16, "i32": TypeI32, "i64": TypeI64,
	"double": TypeDouble, "string": TypeString, "binary": TypeBinary,
}

func (p *Parser) parseType() (*Type, error) {
	t, err := p.expect(TokIdent)
	if err != nil {
		return nil, err
	}
	if k, ok := baseTypes[t.Text]; ok {
		return &Type{Kind: k}, nil
	}
	switch t.Text {
	case "list", "set":
		if _, err := p.expect(TokLAngle); err != nil {
			return nil, err
		}
		elem, err := p.parseType()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokRAngle); err != nil {
			return nil, err
		}
		kind := TypeList
		if t.Text == "set" {
			kind = TypeSet
		}
		return &Type{Kind: kind, Elem: elem}, nil
	case "map":
		if _, err := p.expect(TokLAngle); err != nil {
			return nil, err
		}
		key, err := p.parseType()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokComma); err != nil {
			return nil, err
		}
		val, err := p.parseType()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokRAngle); err != nil {
			return nil, err
		}
		return &Type{Kind: TypeMap, KeyTy: key, Elem: val}, nil
	case "void":
		return nil, p.errf(t, "void is only valid as a return type")
	}
	return &Type{Kind: TypeNamed, Name: t.Text}, nil
}

// atHintGroup reports whether the cursor sits on a hint/s_hint/c_hint
// group introducer.
func (p *Parser) atHintGroup() bool {
	t := p.cur()
	if t.Kind != TokIdent {
		return false
	}
	if t.Text != "hint" && t.Text != "s_hint" && t.Text != "c_hint" {
		return false
	}
	return p.toks[p.pos+1].Kind == TokColon
}

// parseHintGroup parses "('hint'|'s_hint'|'c_hint') ':' Hint (',' Hint)* ';'"
// into the given set. Invalid hints are dropped with a warning.
func (p *Parser) parseHintGroup(set *hints.Set) error {
	kw := p.next() // hint keyword
	side := hints.SideShared
	switch kw.Text {
	case "s_hint":
		side = hints.SideServer
	case "c_hint":
		side = hints.SideClient
	}
	if _, err := p.expect(TokColon); err != nil {
		return err
	}
	for {
		keyTok, err := p.expect(TokIdent)
		if err != nil {
			return err
		}
		if _, err := p.expect(TokEquals); err != nil {
			return err
		}
		valTok := p.cur()
		switch valTok.Kind {
		case TokIdent, TokIntLit, TokStringLit:
			p.pos++
		default:
			return p.errf(valTok, "bad hint value %s", valTok)
		}
		if err := set.Add(side, hints.Key(keyTok.Text), valTok.Text); err != nil {
			p.Warnings = append(p.Warnings, fmt.Sprintf(
				"%s:%d:%d: dropping invalid hint: %v", p.file, keyTok.Line, keyTok.Col, err))
		}
		if p.cur().Kind == TokComma {
			p.pos++
			continue
		}
		break
	}
	_, err := p.expect(TokSemi)
	return err
}

func (p *Parser) parseService() (*Service, error) {
	p.pos++ // service
	name, err := p.expect(TokIdent)
	if err != nil {
		return nil, err
	}
	svc := &Service{Name: name.Text, Hints: hints.NewSet()}
	if p.atKeyword("extends") {
		p.pos++
		ext, err := p.expect(TokIdent)
		if err != nil {
			return nil, err
		}
		svc.Extends = ext.Text
	}
	if _, err := p.expect(TokLBrace); err != nil {
		return nil, err
	}
	for p.cur().Kind != TokRBrace {
		if p.atHintGroup() {
			if err := p.parseHintGroup(svc.Hints); err != nil {
				return nil, err
			}
			continue
		}
		fn, err := p.parseFunction()
		if err != nil {
			return nil, err
		}
		if prev := svc.FindFunction(fn.Name); prev != fn && prev != nil {
			return nil, p.errf(p.cur(), "duplicate function %q in service %q", fn.Name, svc.Name)
		}
		svc.Functions = append(svc.Functions, fn)
	}
	p.pos++ // }
	return svc, nil
}

// parseFunction parses
// "'oneway'? FunctionType Identifier '(' Field* ')' Throws? ListSep? FunctionHint?"
// per Figure 7.
func (p *Parser) parseFunction() (*Function, error) {
	fn := &Function{Hints: hints.NewSet()}
	if p.atKeyword("oneway") {
		fn.Oneway = true
		p.pos++
	}
	if p.atKeyword("void") {
		p.pos++
	} else {
		ty, err := p.parseType()
		if err != nil {
			return nil, err
		}
		fn.Returns = ty
	}
	name, err := p.expect(TokIdent)
	if err != nil {
		return nil, err
	}
	fn.Name = name.Text
	if _, err := p.expect(TokLParen); err != nil {
		return nil, err
	}
	for p.cur().Kind != TokRParen {
		f, err := p.parseField()
		if err != nil {
			return nil, err
		}
		fn.Args = append(fn.Args, f)
	}
	p.pos++ // )
	if p.atKeyword("throws") {
		p.pos++
		if _, err := p.expect(TokLParen); err != nil {
			return nil, err
		}
		for p.cur().Kind != TokRParen {
			f, err := p.parseField()
			if err != nil {
				return nil, err
			}
			fn.Throws = append(fn.Throws, f)
		}
		p.pos++ // )
	}
	p.skipListSep()
	if p.cur().Kind == TokLBracket { // FunctionHint
		p.pos++
		for p.cur().Kind != TokRBracket {
			if !p.atHintGroup() {
				return nil, p.errf(p.cur(), "expected hint group in function hint block, got %s", p.cur())
			}
			if err := p.parseHintGroup(fn.Hints); err != nil {
				return nil, err
			}
		}
		p.pos++ // ]
		p.skipListSep()
	}
	if fn.Oneway && fn.Returns != nil {
		return nil, p.errf(name, "oneway function %q cannot have a return type", fn.Name)
	}
	return fn, nil
}
