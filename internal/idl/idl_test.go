package idl

import (
	"strings"
	"testing"
	"testing/quick"

	"hatrpc/internal/hints"
)

const kvIDL = `
// HatKV service for the YCSB benchmark (paper Figure 10).
namespace go hatkv

struct KVPair {
  1: string key,
  2: binary value,
}

exception KVError {
  1: string message,
}

service KVStore {
  hint: concurrency=128, perf_goal=throughput;

  binary Get(1: string key) throws (1: KVError err)
    [ hint: payload_size=1024; c_hint: perf_goal=latency; ]

  void Put(1: string key, 2: binary value)
    [ c_hint: payload_size=1024; s_hint: payload_size=64; ]

  list<binary> MultiGet(1: list<string> keys)
    [ hint: payload_size=10240; ]

  void MultiPut(1: list<KVPair> pairs)
    [ c_hint: payload_size=10240; s_hint: payload_size=64; ]
}
`

func TestParseKVService(t *testing.T) {
	doc, warns, err := Parse("kv.hrpc", kvIDL)
	if err != nil {
		t.Fatal(err)
	}
	if len(warns) != 0 {
		t.Fatalf("unexpected warnings: %v", warns)
	}
	if doc.Namespace != "hatkv" {
		t.Errorf("namespace = %q", doc.Namespace)
	}
	if len(doc.Structs) != 2 {
		t.Fatalf("structs = %d, want 2", len(doc.Structs))
	}
	if !doc.FindStruct("KVError").IsException {
		t.Error("KVError should be an exception")
	}
	svc := doc.FindService("KVStore")
	if svc == nil {
		t.Fatal("KVStore service not found")
	}
	if len(svc.Functions) != 4 {
		t.Fatalf("functions = %d, want 4", len(svc.Functions))
	}
	// Service-level hints.
	if got := svc.Hints.Shared[hints.KeyConcurrency]; got != "128" {
		t.Errorf("service concurrency = %q", got)
	}
	// Function-level: Get has shared payload + client perf_goal override.
	get := svc.FindFunction("Get")
	if got := get.Hints.Shared[hints.KeyPayloadSize]; got != "1024" {
		t.Errorf("Get payload_size = %q", got)
	}
	g := hints.Resolve(svc.Hints, get.Hints, hints.SideClient)
	if g[hints.KeyPerfGoal] != "latency" {
		t.Errorf("Get client perf_goal = %q, want latency", g[hints.KeyPerfGoal])
	}
	gs := hints.Resolve(svc.Hints, get.Hints, hints.SideServer)
	if gs[hints.KeyPerfGoal] != "throughput" {
		t.Errorf("Get server perf_goal = %q, want throughput (service)", gs[hints.KeyPerfGoal])
	}
	// Put: asymmetric payload sizes per side.
	put := svc.FindFunction("Put")
	if hints.Resolve(svc.Hints, put.Hints, hints.SideClient)[hints.KeyPayloadSize] != "1024" {
		t.Error("Put client payload wrong")
	}
	if hints.Resolve(svc.Hints, put.Hints, hints.SideServer)[hints.KeyPayloadSize] != "64" {
		t.Error("Put server payload wrong")
	}
	// Get throws.
	if len(get.Throws) != 1 || get.Throws[0].Type.Name != "KVError" {
		t.Errorf("Get throws = %+v", get.Throws)
	}
	// Types.
	mg := svc.FindFunction("MultiGet")
	if mg.Returns.Kind != TypeList || mg.Returns.Elem.Kind != TypeBinary {
		t.Errorf("MultiGet returns %s", mg.Returns)
	}
}

func TestParseEchoWithServiceHintsOnly(t *testing.T) {
	src := `
service Echo {
  hint: perf_goal=latency, concurrency=1;
  string Ping(1: string msg)
  oneway void Fire(1: string msg)
}
`
	doc, _, err := Parse("echo.hrpc", src)
	if err != nil {
		t.Fatal(err)
	}
	svc := doc.FindService("Echo")
	if svc.Hints.Shared[hints.KeyPerfGoal] != "latency" {
		t.Error("service hint missing")
	}
	fire := svc.FindFunction("Fire")
	if !fire.Oneway || fire.Returns != nil {
		t.Errorf("Fire = %s", fire.Signature())
	}
	if !svc.FindFunction("Ping").Hints.Empty() {
		t.Error("Ping should have no function hints")
	}
}

func TestInvalidHintDroppedWithWarning(t *testing.T) {
	src := `
service S {
  hint: perf_goal=warp_speed, concurrency=4;
  void F()
}
`
	doc, warns, err := Parse("s.hrpc", src)
	if err != nil {
		t.Fatal(err)
	}
	if len(warns) != 1 || !strings.Contains(warns[0], "perf_goal") {
		t.Fatalf("warnings = %v, want one about perf_goal", warns)
	}
	svc := doc.FindService("S")
	if _, ok := svc.Hints.Shared[hints.KeyPerfGoal]; ok {
		t.Error("invalid hint was kept")
	}
	if svc.Hints.Shared[hints.KeyConcurrency] != "4" {
		t.Error("valid hint in same group was lost")
	}
}

func TestUnknownHintKeyDropped(t *testing.T) {
	src := `service S { hint: turbo=on; void F() }`
	doc, warns, err := Parse("s.hrpc", src)
	if err != nil {
		t.Fatal(err)
	}
	if len(warns) != 1 {
		t.Fatalf("warnings = %v", warns)
	}
	if !doc.Services[0].Hints.Empty() {
		t.Error("unknown hint kept")
	}
}

func TestParseEnumAndConstAndTypedef(t *testing.T) {
	src := `
typedef i64 Timestamp
const i32 MAX_BATCH = 10
const string VERSION = "1.0"
enum Status {
  OK = 0,
  NOT_FOUND = 5,
  ERROR
}
`
	doc, _, err := Parse("misc.hrpc", src)
	if err != nil {
		t.Fatal(err)
	}
	if len(doc.Typedefs) != 1 || doc.Typedefs[0].Type.Kind != TypeI64 {
		t.Errorf("typedef = %+v", doc.Typedefs)
	}
	if len(doc.Consts) != 2 || doc.Consts[0].Value != "10" {
		t.Errorf("consts = %+v", doc.Consts)
	}
	e := doc.Enums[0]
	if len(e.Values) != 3 {
		t.Fatalf("enum values = %+v", e.Values)
	}
	if e.Values[1].Value != 5 || e.Values[2].Value != 6 {
		t.Errorf("enum auto-increment wrong: %+v", e.Values)
	}
}

func TestParseMapSetTypes(t *testing.T) {
	src := `
struct Complex {
  1: map<string, list<i32>> index,
  2: set<i64> ids,
  3: optional binary blob,
}
`
	doc, _, err := Parse("c.hrpc", src)
	if err != nil {
		t.Fatal(err)
	}
	s := doc.Structs[0]
	if s.Fields[0].Type.Kind != TypeMap || s.Fields[0].Type.Elem.Kind != TypeList {
		t.Errorf("field 0 = %s", s.Fields[0].Type)
	}
	if s.Fields[1].Type.Kind != TypeSet {
		t.Errorf("field 1 = %s", s.Fields[1].Type)
	}
	if !s.Fields[2].Optional {
		t.Error("field 3 should be optional")
	}
	if s.Fields[0].Type.String() != "map<string,list<i32>>" {
		t.Errorf("type string = %s", s.Fields[0].Type)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		name, src, wantErr string
	}{
		{"missing brace", `service S { void F()`, "expected"},
		{"bad field id", `struct X { 0: i32 a }`, "bad field id"},
		{"oneway with return", `service S { oneway i32 F() }`, "oneway"},
		{"dup function", `service S { void F() void F() }`, "duplicate"},
		{"unterminated string", `const string X = "abc`, "unterminated"},
		{"bad hint value", `service S { hint: perf_goal=[; void F() }`, "bad hint value"},
		{"unknown keyword", `frobnicate X {}`, "unknown definition"},
		{"void arg", `service S { void F(1: void x) }`, "void"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, _, err := Parse("t.hrpc", c.src)
			if err == nil {
				t.Fatalf("no error for %q", c.src)
			}
			if !strings.Contains(err.Error(), c.wantErr) {
				t.Fatalf("error %q does not contain %q", err, c.wantErr)
			}
		})
	}
}

func TestCommentStyles(t *testing.T) {
	src := `
// line comment
# hash comment
/* block
   comment */
service S { void F() }
`
	doc, _, err := Parse("c.hrpc", src)
	if err != nil {
		t.Fatal(err)
	}
	if len(doc.Services) != 1 {
		t.Fatal("service not parsed")
	}
}

func TestServiceExtends(t *testing.T) {
	src := `service Child extends Base { void F() }`
	doc, _, err := Parse("x.hrpc", src)
	if err != nil {
		t.Fatal(err)
	}
	if doc.Services[0].Extends != "Base" {
		t.Errorf("extends = %q", doc.Services[0].Extends)
	}
}

func TestErrorPosition(t *testing.T) {
	src := "service S {\n  hint: turbo=\n}"
	_, _, err := Parse("pos.hrpc", src)
	if err == nil {
		t.Fatal("expected error")
	}
	if !strings.Contains(err.Error(), "pos.hrpc:3:") {
		t.Fatalf("error lacks position: %v", err)
	}
}

func TestFunctionSignatureRendering(t *testing.T) {
	src := `service S { i32 Add(1: i32 a, 2: i32 b) }`
	doc := MustParse("s.hrpc", src)
	sig := doc.Services[0].Functions[0].Signature()
	if sig != "i32 Add(1:i32 a, 2:i32 b)" {
		t.Errorf("Signature() = %q", sig)
	}
}

func TestHintGroupMultipleGroupsMergeAtSameLevel(t *testing.T) {
	src := `
service S {
  hint: perf_goal=latency;
  hint: concurrency=8;
  s_hint: polling=event;
  void F()
}
`
	doc := MustParse("s.hrpc", src)
	h := doc.Services[0].Hints
	if h.Shared[hints.KeyPerfGoal] != "latency" || h.Shared[hints.KeyConcurrency] != "8" {
		t.Errorf("shared = %v", h.Shared)
	}
	if h.Server[hints.KeyPolling] != "event" {
		t.Errorf("server = %v", h.Server)
	}
}

func TestLexerTokenKinds(t *testing.T) {
	toks, err := Tokenize("t", `ident 42 4.5 "str" { } ( ) [ ] < > , ; : = -7`)
	if err != nil {
		t.Fatal(err)
	}
	want := []TokKind{
		TokIdent, TokIntLit, TokDoubleLit, TokStringLit,
		TokLBrace, TokRBrace, TokLParen, TokRParen,
		TokLBracket, TokRBracket, TokLAngle, TokRAngle,
		TokComma, TokSemi, TokColon, TokEquals, TokIntLit, TokEOF,
	}
	if len(toks) != len(want) {
		t.Fatalf("got %d tokens, want %d: %v", len(toks), len(want), toks)
	}
	for i, k := range want {
		if toks[i].Kind != k {
			t.Errorf("token %d = %s, want %s", i, toks[i].Kind, k)
		}
	}
}

func TestStringEscapes(t *testing.T) {
	toks, err := Tokenize("t", `"a\nb\t\"c\""`)
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Text != "a\nb\t\"c\"" {
		t.Fatalf("escaped string = %q", toks[0].Text)
	}
}

// Property: the lexer never panics and always terminates on arbitrary
// input — it either tokenizes or reports a positioned error.
func TestPropertyLexerTotal(t *testing.T) {
	f := func(src string) bool {
		toks, err := Tokenize("fuzz", src)
		if err != nil {
			return true
		}
		return len(toks) > 0 && toks[len(toks)-1].Kind == TokEOF
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// Property: the parser never panics on arbitrary input.
func TestPropertyParserTotal(t *testing.T) {
	f := func(src string) bool {
		_, _, _ = Parse("fuzz", src)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// Property: any service built from valid hint pairs parses with zero
// warnings, and every hint survives into the AST.
func TestPropertyValidHintsRoundTrip(t *testing.T) {
	keys := []string{"perf_goal", "polling", "numa", "transport", "priority"}
	vals := map[string][]string{
		"perf_goal": {"latency", "throughput", "res_util"},
		"polling":   {"auto", "busy", "event"},
		"numa":      {"bind", "none"},
		"transport": {"rdma", "tcp"},
		"priority":  {"high", "low"},
	}
	f := func(picks []uint8) bool {
		if len(picks) == 0 {
			return true
		}
		if len(picks) > 5 {
			picks = picks[:5]
		}
		seen := map[string]string{}
		var parts []string
		for i, p := range picks {
			k := keys[(int(p)+i)%len(keys)]
			v := vals[k][int(p)%len(vals[k])]
			seen[k] = v
			parts = append(parts, k+"="+v)
		}
		src := "service S {\n  hint: " + strings.Join(parts, ", ") + ";\n  void F()\n}"
		doc, warns, err := Parse("prop.hrpc", src)
		if err != nil || len(warns) != 0 {
			return false
		}
		got := doc.Services[0].Hints.Shared
		for k, v := range seen {
			if got[hints.Key(k)] != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
