package idl

import (
	"fmt"
	"strings"

	"hatrpc/internal/hints"
)

// Document is a parsed IDL file.
type Document struct {
	File      string
	Namespace string // go namespace (package name) if declared
	Typedefs  []*Typedef
	Enums     []*Enum
	Structs   []*Struct
	Consts    []*Const
	Services  []*Service
}

// Typedef aliases a type.
type Typedef struct {
	Name string
	Type *Type
}

// Enum is a named integer enumeration.
type Enum struct {
	Name   string
	Values []EnumValue
}

// EnumValue is one enum member.
type EnumValue struct {
	Name  string
	Value int
}

// Struct is a user-defined record (struct or exception).
type Struct struct {
	Name        string
	IsException bool
	Fields      []*Field
}

// Const is a named constant.
type Const struct {
	Name  string
	Type  *Type
	Value string // literal text; typed interpretation is the generator's job
}

// Field is a struct member or function argument.
type Field struct {
	ID       int
	Name     string
	Type     *Type
	Optional bool
}

// Service is an RPC service with hierarchical hints.
type Service struct {
	Name      string
	Extends   string
	Hints     *hints.Set // service-level hints (may be empty, never nil)
	Functions []*Function
}

// Function is one RPC with optional function-level hints.
type Function struct {
	Name    string
	Oneway  bool
	Returns *Type // nil for void
	Args    []*Field
	Throws  []*Field
	Hints   *hints.Set // function-level hints (may be empty, never nil)
}

// TypeKind classifies IDL types.
type TypeKind int

// Type kinds.
const (
	TypeBool TypeKind = iota
	TypeByte
	TypeI16
	TypeI32
	TypeI64
	TypeDouble
	TypeString
	TypeBinary
	TypeList
	TypeSet
	TypeMap
	TypeNamed // struct/enum/typedef reference
)

// Type is an IDL type expression.
type Type struct {
	Kind  TypeKind
	Name  string // for TypeNamed
	Elem  *Type  // list/set element, map value
	KeyTy *Type  // map key
}

// String renders the type in IDL syntax.
func (t *Type) String() string {
	switch t.Kind {
	case TypeBool:
		return "bool"
	case TypeByte:
		return "byte"
	case TypeI16:
		return "i16"
	case TypeI32:
		return "i32"
	case TypeI64:
		return "i64"
	case TypeDouble:
		return "double"
	case TypeString:
		return "string"
	case TypeBinary:
		return "binary"
	case TypeList:
		return "list<" + t.Elem.String() + ">"
	case TypeSet:
		return "set<" + t.Elem.String() + ">"
	case TypeMap:
		return "map<" + t.KeyTy.String() + "," + t.Elem.String() + ">"
	case TypeNamed:
		return t.Name
	}
	return fmt.Sprintf("Type(%d)", int(t.Kind))
}

// Signature renders a readable function signature for diagnostics.
func (f *Function) Signature() string {
	var b strings.Builder
	if f.Oneway {
		b.WriteString("oneway ")
	}
	if f.Returns == nil {
		b.WriteString("void")
	} else {
		b.WriteString(f.Returns.String())
	}
	b.WriteString(" " + f.Name + "(")
	for i, a := range f.Args {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%d:%s %s", a.ID, a.Type, a.Name)
	}
	b.WriteString(")")
	return b.String()
}

// FindService returns the named service, or nil.
func (d *Document) FindService(name string) *Service {
	for _, s := range d.Services {
		if s.Name == name {
			return s
		}
	}
	return nil
}

// FindStruct returns the named struct, or nil.
func (d *Document) FindStruct(name string) *Struct {
	for _, s := range d.Structs {
		if s.Name == name {
			return s
		}
	}
	return nil
}

// FindFunction returns the named function in the service, or nil.
func (s *Service) FindFunction(name string) *Function {
	for _, f := range s.Functions {
		if f.Name == name {
			return f
		}
	}
	return nil
}
