package chaos

import (
	"testing"

	"hatrpc/internal/lmdb"
	"hatrpc/internal/simnet"
)

// clusterSoakConfig sizes a cluster soak: 5 server nodes under a seeded
// crash schedule (mean cycle a few ms — comfortably longer than a
// failover, so promotions complete between kills) plus a periodic
// split-brain partition over the servers.
func clusterSoakConfig(seed int64, sync lmdb.SyncMode, horizonNs int64) ClusterConfig {
	return ClusterConfig{
		Seed:            seed,
		Sync:            sync,
		Servers:         5,
		NShards:         8,
		RF:              3,
		Workers:         3,
		WritesPerWorker: int(horizonNs / 400_000),
		WritePaceNs:     300_000,
		Crash: simnet.CrashConfig{
			Nodes:           []int{0, 1, 2, 3, 4},
			MeanUptimeNs:    4_000_000,
			MinUptimeNs:     2_500_000,
			RestartDelayNs:  400_000,
			RestartJitterNs: 200_000,
			HorizonNs:       horizonNs,
		},
		Faults: simnet.FaultConfig{
			PartitionPeriodNs: 6_000_000,
			PartitionForNs:    700_000,
			PartitionNodes:    []int{0, 1, 2, 3, 4},
		},
	}
}

// TestClusterSoakSyncFullZeroLoss is the tentpole acceptance gate: a
// 5-node RF-3 cluster under seeded primary kills and link partitions
// loses zero acknowledged SyncFull writes, cluster-wide. The audit
// checks every acked key against its shard's authority replica — the
// durable store with the maximum (epoch, seq).
func TestClusterSoakSyncFullZeroLoss(t *testing.T) {
	horizon := int64(40_000_000)
	minCrashes := 20
	if testing.Short() {
		horizon = 15_000_000
		minCrashes = 6
	}
	res := ClusterSoak(clusterSoakConfig(211, lmdb.SyncFull, horizon))
	if res.Incomplete != 0 {
		t.Fatalf("%d workers never finished (watchdog fired)\n%s", res.Incomplete, res.Report())
	}
	if len(res.Crashes) < minCrashes {
		t.Errorf("executed %d crashes, want >= %d", len(res.Crashes), minCrashes)
	}
	if res.Promotions == 0 {
		t.Errorf("no promotions — the soak never exercised failover")
	}
	if res.Lost != 0 {
		t.Fatalf("lost %d acked SyncFull writes\n%s", res.Lost, res.Report())
	}
	if res.GetMismatches != 0 {
		t.Errorf("%d read-backs returned wrong bytes", res.GetMismatches)
	}
	if res.Acked == 0 {
		t.Errorf("soak acked no writes at all")
	}
	// Failovers must be visible end to end: clients chased epochs.
	if res.Refreshes == 0 {
		t.Errorf("clients never refreshed the shard map across %d crashes", len(res.Crashes))
	}
}

// TestClusterSoakDeterministic: a cluster soak is a pure function of
// its seed — two same-seed runs produce byte-identical reports, crash
// log, partition schedule, failovers, write digest and all.
func TestClusterSoakDeterministic(t *testing.T) {
	cfg := clusterSoakConfig(227, lmdb.SyncFull, 12_000_000)
	a := ClusterSoak(cfg).Report()
	b := ClusterSoak(cfg).Report()
	if a != b {
		t.Fatalf("same-seed cluster soaks diverged:\n--- run 1:\n%s\n--- run 2:\n%s", a, b)
	}
	if testing.Short() {
		return
	}
	// And a different seed genuinely reshuffles the run.
	cfg2 := cfg
	cfg2.Seed = 229
	if c := ClusterSoak(cfg2).Report(); c == a {
		t.Errorf("different seeds produced identical reports")
	}
}
