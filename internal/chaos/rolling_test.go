package chaos

import (
	"testing"

	"hatrpc/internal/node"
)

// TestRollingSoakSLO is the release gate: a 5-node cluster restarted
// node by node (graceful drain → stop → reboot → rejoin → resync) under
// a retry-until-acked workload must keep availability ≥ 99%, lose zero
// acked SyncFull writes, and bring every node back to ready.
func TestRollingSoakSLO(t *testing.T) {
	res, err := RollingSoak(RollingConfig{Rounds: 2, Graceful: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Incomplete != 0 {
		t.Fatalf("%d workers never finished:\n%s", res.Incomplete, res.Report())
	}
	if res.Lost != 0 {
		t.Errorf("lost %d acked writes:\n%s", res.Lost, res.Report())
	}
	if res.GetMismatches != 0 {
		t.Errorf("%d read-backs returned wrong bytes", res.GetMismatches)
	}
	if av := res.Availability(); av < 0.99 {
		t.Errorf("availability %.4f < 0.99 (acked=%d failed=%d)", av, res.Acked, res.FailedPuts)
	}
	servers := node.DefaultConfig().Protocol.Servers
	if want := int64(2 * servers); res.Drains != want {
		t.Errorf("drains = %d, want %d (escalations=%d)", res.Drains, want, res.Escalations)
	}
	if res.Escalations != 0 {
		t.Errorf("%d drains escalated to the crash path under a light workload", res.Escalations)
	}
	if res.DrainedRequests == 0 {
		t.Error("no request was ever fenced with the typed draining reply")
	}
	if res.Promotions == 0 {
		t.Error("no shard was promoted away from a draining node")
	}
	for _, c := range res.Cycles {
		if c.ReadyAt <= c.DownAt {
			t.Errorf("node %d round %d never returned to ready (down=%d ready=%d)",
				c.Node, c.Round, c.DownAt, c.ReadyAt)
		}
	}
}

// TestRollingSoakDeterministic pins same-seed byte-identical replay of
// the full soak, cycle timings and write digest included.
func TestRollingSoakDeterministic(t *testing.T) {
	a, err := RollingSoak(RollingConfig{Rounds: 1, Graceful: true})
	if err != nil {
		t.Fatal(err)
	}
	b, err := RollingSoak(RollingConfig{Rounds: 1, Graceful: true})
	if err != nil {
		t.Fatal(err)
	}
	if a.Report() != b.Report() {
		t.Errorf("same-seed soaks diverged:\n--- a ---\n%s--- b ---\n%s", a.Report(), b.Report())
	}
}

// TestRollingGracefulBeatsHardKill is the headline contrast: draining a
// node before stopping it (failover runs while the node still answers)
// must show a measurably smaller error-visible window and faster
// post-stop recovery than hard-killing it (the PR 8 path, where
// failover can only start post-mortem).
func TestRollingGracefulBeatsHardKill(t *testing.T) {
	grace, err := RollingSoak(RollingConfig{Rounds: 1, Graceful: true})
	if err != nil {
		t.Fatal(err)
	}
	hard, err := RollingSoak(RollingConfig{Rounds: 1, Graceful: false})
	if err != nil {
		t.Fatal(err)
	}
	if hard.Drains != 0 || hard.DrainedRequests != 0 {
		t.Errorf("hard-kill ran drains: drains=%d fenced=%d", hard.Drains, hard.DrainedRequests)
	}
	if grace.ErrWindowNs >= hard.ErrWindowNs {
		t.Errorf("graceful error window %dns not smaller than hard-kill %dns",
			grace.ErrWindowNs, hard.ErrWindowNs)
	}
	maxRecov := func(r *RollingResult) int64 {
		var m int64
		for _, c := range r.Cycles {
			if c.RecoveryNs > m {
				m = c.RecoveryNs
			}
		}
		return m
	}
	if g, h := maxRecov(grace), maxRecov(hard); g >= h {
		t.Errorf("graceful worst recovery %dns not smaller than hard-kill %dns", g, h)
	}
}

// TestRollingSoakUnderCrashPlan races the rolling drains against a
// seeded crash schedule: whatever interleaving results, zero acked
// writes may be lost and every worker must finish.
func TestRollingSoakUnderCrashPlan(t *testing.T) {
	cfg := node.DefaultConfig()
	cfg.Protocol.Crash = node.CrashSpec{
		MeanUptimeNs: 2_000_000, MinUptimeNs: 200_000,
		RestartDelayNs: 400_000, RestartJitterNs: 200_000, HorizonNs: 12_000_000,
	}
	res, err := RollingSoak(RollingConfig{Node: cfg, Rounds: 1, Graceful: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Incomplete != 0 {
		t.Fatalf("%d workers never finished:\n%s", res.Incomplete, res.Report())
	}
	if res.Lost != 0 {
		t.Errorf("lost %d acked writes under crash+drain races:\n%s", res.Lost, res.Report())
	}
	if res.GetMismatches != 0 {
		t.Errorf("%d read-backs returned wrong bytes", res.GetMismatches)
	}
	if len(res.Crashes) <= len(res.Cycles) {
		t.Errorf("crash plan never fired beyond the rolling stops (crashes=%d cycles=%d)",
			len(res.Crashes), len(res.Cycles))
	}
}
