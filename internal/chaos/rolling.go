package chaos

import (
	"bytes"
	"fmt"
	"hash/fnv"
	"strings"

	"hatrpc/internal/cluster"
	"hatrpc/internal/engine"
	"hatrpc/internal/hatkv"
	"hatrpc/internal/node"
	"hatrpc/internal/obs"
	"hatrpc/internal/sim"
	"hatrpc/internal/simnet"
)

// RollingConfig parameterizes a rolling-restart soak: an N-node HatNode
// cluster (internal/node) restarts nodes one at a time — drain → stop →
// reboot → rejoin → resync — while retry-until-acked workers run.
// Rounds 0 degenerates to a plain soak with no restart operator — the
// baseline for byte-identity checks and cmd/hatnode's non-rolling run.
type RollingConfig struct {
	Node   *node.Config // nil = node.DefaultConfig()
	Rounds int          // full passes over all servers; 0 = no restarts
	// Graceful selects drain-then-stop; false hard-kills each node (the
	// PR 8 failover path) for the contrast benchmark.
	Graceful        bool
	DrainDeadlineNs int64 // 0 = Node.Application.DrainDeadlineNs
	RestartDelayNs  int64 // down time before reboot (default 400us)
	StaggerNs       int64 // settle time after each reboot (default 1.6ms)
	WarmupNs        int64 // before the first stop (default 1ms)
	Reg             *obs.Registry
}

// RestartCycle is one node's stop/reboot cycle and its client-visible
// cost.
type RestartCycle struct {
	Node, Round int
	StopAt      sim.Time // drain (or kill) initiated
	DownAt      sim.Time // machine actually down
	ReadyAt     sim.Time // next StateReady after the reboot (0 if none)
	Escalated   bool     // drain deadline expired; stop proceeded with work in flight
	Crashed     bool     // a CrashPlan crash raced the drain
	ErrWindowNs int64    // summed client stall excess for puts started in this cycle
	RecoveryNs  int64    // DownAt → first ack anywhere (0 if none)
}

// rollingStallNs is the per-put latency considered clean: only the
// excess above it counts toward a cycle's error-visible window. Healthy
// puts land in tens of microseconds; anything past this was visibly
// disturbed by the restart (deadline waits, breaker cooldowns, routing
// refreshes).
const rollingStallNs = 100_000

// RollingResult is the audited outcome: the ClusterResult loss audit
// plus the per-cycle restart economics.
type RollingResult struct {
	ClusterResult
	Cycles []RestartCycle
	// PutStarts is parallel to Writes: when each acked put was first
	// attempted, for stall accounting.
	PutStarts []sim.Time

	Graceful    bool
	StalledPuts int   // acked puts that exceeded rollingStallNs
	ErrWindowNs int64 // summed stall excess across all cycles

	// Lifecycle totals from the node layer.
	Drains          int64
	Escalations     int64
	Reloads         int64
	DrainedRequests int64 // requests fenced with the typed draining reply
}

// Availability is acked puts over all put outcomes (acked + failed).
// Each failed put already represents a full client-side retry budget
// exhausted, so this is a strict client-visible availability measure.
func (r *RollingResult) Availability() float64 {
	total := float64(r.Acked) + float64(r.FailedPuts)
	if total == 0 {
		return 1
	}
	return float64(r.Acked) / total
}

// RollingSoak runs one rolling-restart soak to completion and audits
// it: every acked write must survive at its shard's authority replica,
// and the per-cycle error-visible windows quantify what clients saw.
func RollingSoak(rc RollingConfig) (*RollingResult, error) {
	nc := rc.Node
	if nc == nil {
		nc = node.DefaultConfig()
	}
	servers := nc.Protocol.Servers
	if rc.RestartDelayNs <= 0 {
		rc.RestartDelayNs = 400_000
	}
	if rc.StaggerNs <= 0 {
		rc.StaggerNs = 1_600_000
	}
	if rc.WarmupNs <= 0 {
		rc.WarmupNs = 1_000_000
	}
	drainDL := rc.DrainDeadlineNs
	if drainDL <= 0 {
		drainDL = nc.Application.DrainDeadlineNs
	}
	reg := rc.Reg
	if reg == nil {
		reg = obs.NewRegistry()
	}

	env := sim.NewEnv(nc.Protocol.Seed)
	cl := simnet.NewCluster(env, simnet.Config{
		Nodes: servers + 1, Cores: 28, Sockets: 2, LinkGbps: 100, PropDelayNs: 600, NUMAPenalty: 1.25,
	})
	roster := make([]*simnet.Node, servers)
	for i := range roster {
		roster[i] = cl.Node(i)
	}

	res := &RollingResult{Graceful: rc.Graceful}
	hats := make([]*node.HatNode, servers)
	for i := 0; i < servers; i++ {
		i := i
		sn := cl.Node(i)
		h, err := node.New(sn, roster, i, nc, reg)
		if err != nil {
			return nil, err
		}
		hats[i] = h
		// Crash log, registered after the node so its rollback/lifecycle
		// hooks run first; re-arms itself across boots.
		var logCrash func()
		logCrash = func() {
			res.Crashes = append(res.Crashes, NodeCrash{Node: i, At: env.Now()})
			sn.OnCrash(logCrash)
		}
		sn.OnCrash(logCrash)
	}
	if cs := nc.Protocol.Crash; cs.MeanUptimeNs > 0 {
		ids := make([]int, servers)
		for i := range ids {
			ids[i] = i
		}
		cl.InstallCrashes(simnet.CrashConfig{
			Nodes: ids, MeanUptimeNs: cs.MeanUptimeNs, MinUptimeNs: cs.MinUptimeNs,
			RestartDelayNs: cs.RestartDelayNs, RestartJitterNs: cs.RestartJitterNs,
			HorizonNs: cs.HorizonNs,
		})
	}

	ecfg := engine.DefaultConfig()
	ecfg.BreakerThreshold = 4
	ecfg.BreakerCooldown = 500_000
	cliEng := engine.New(cl.Node(servers), ecfg)
	ccfg := nc.ClusterConfig()
	wl := nc.Application.Workload

	var clients []*cluster.Client
	workersDone := 0
	opsDone := rc.Rounds == 0
	maybeStop := func() {
		if opsDone && workersDone == wl.Workers {
			env.Stop()
		}
	}
	for w := 0; w < wl.Workers; w++ {
		w := w
		env.Spawn(fmt.Sprintf("rolling-worker-%d", w), func(p *sim.Proc) {
			c := cluster.NewClient(cliEng, roster, ccfg)
			clients = append(clients, c)
			for i := 0; i < wl.Writes; i++ {
				key := fmt.Sprintf("w%02d-%05d", w, i)
				start := p.Now()
				for {
					if err := c.Put(p, key, []byte(key)); err == nil {
						res.Writes = append(res.Writes, ClusterWrite{Key: key, AckAt: p.Now()})
						res.PutStarts = append(res.PutStarts, start)
						break
					}
					res.FailedPuts++
					p.Sleep(250_000) // outage in progress; back off and re-ack
				}
				if i%5 == 4 {
					res.GetChecks++
					v, err := c.Get(p, key)
					if err == nil && !bytes.Equal(v, []byte(key)) {
						res.GetMismatches++
					}
				}
				if wl.PaceNs > 0 {
					p.Sleep(sim.Duration(wl.PaceNs))
				}
			}
			workersDone++
			maybeStop()
		})
	}

	if rc.Rounds > 0 {
		env.Spawn("rolling-ops", func(p *sim.Proc) {
			p.Sleep(sim.Duration(rc.WarmupNs))
			for round := 0; round < rc.Rounds; round++ {
				for i := 0; i < servers; i++ {
					cyc := RestartCycle{Node: i, Round: round, StopAt: p.Now()}
					if rc.Graceful {
						rep := hats[i].Drain(p, sim.Duration(drainDL))
						cyc.Escalated = rep.Escalated
						cyc.Crashed = rep.Crashed
						hats[i].Stop()
					} else {
						cl.Node(i).Crash()
					}
					cyc.DownAt = p.Now()
					res.Cycles = append(res.Cycles, cyc)
					p.Sleep(sim.Duration(rc.RestartDelayNs))
					cl.Node(i).Restart()
					p.Sleep(sim.Duration(rc.StaggerNs))
				}
			}
			opsDone = true
			maybeStop()
		})
	}

	// Watchdog: the soak must terminate even if a worker wedges. Sized
	// from the workload so legitimate long runs are never cut short.
	horizon := 4 * (rc.WarmupNs +
		int64(rc.Rounds)*int64(servers)*(drainDL+rc.RestartDelayNs+rc.StaggerNs) +
		int64(wl.Writes)*(wl.PaceNs+1_000_000))
	env.At(sim.Time(horizon), env.Stop)
	env.Run()

	res.Incomplete = wl.Workers - workersDone
	for _, h := range hats {
		st := h.Stats() // summed across every boot, not just the last
		res.Promotions += st.Promotions
		res.Candidacies += st.Candidacies
		res.Resyncs += st.Resyncs
		res.StaleWrites += st.StaleWrites
		res.FencedWrites += st.FencedWrites
		res.DrainedRequests += h.Drained()
	}
	for _, c := range clients {
		st := c.Stats()
		res.Refreshes += st.Refreshes
		res.StaleRetries += st.StaleRetries
	}
	res.Drains = reg.Counter("node.drains").Value()
	res.Escalations = reg.Counter("node.drain_escalations").Value()
	res.Reloads = reg.Counter("node.reloads").Value()

	stores := make([]*hatkv.Store, len(hats))
	for i, h := range hats {
		stores[i] = h.Store()
	}
	auditCluster(&res.ClusterResult, ccfg, stores)
	fillCycleEconomics(res, hats)
	return res, nil
}

// fillCycleEconomics derives per-cycle ReadyAt, RecoveryNs, and
// ErrWindowNs from the node transition logs and the put samples.
func fillCycleEconomics(res *RollingResult, hats []*node.HatNode) {
	for ci := range res.Cycles {
		cyc := &res.Cycles[ci]
		for _, tr := range hats[cyc.Node].Transitions() {
			if tr.To == node.StateReady && tr.At > cyc.StopAt {
				cyc.ReadyAt = tr.At
				break
			}
		}
		for _, w := range res.Writes {
			if w.AckAt > cyc.DownAt {
				cyc.RecoveryNs = int64(w.AckAt - cyc.DownAt)
				break
			}
		}
		end := sim.Time(1) << 62
		if ci+1 < len(res.Cycles) {
			end = res.Cycles[ci+1].StopAt
		}
		for i, start := range res.PutStarts {
			if start < cyc.StopAt || start >= end {
				continue
			}
			if lat := int64(res.Writes[i].AckAt - start); lat > rollingStallNs {
				cyc.ErrWindowNs += lat - rollingStallNs
			}
		}
		res.ErrWindowNs += cyc.ErrWindowNs
	}
	for i, start := range res.PutStarts {
		if int64(res.Writes[i].AckAt-start) > rollingStallNs {
			res.StalledPuts++
		}
	}
}

// Report renders the audited outcome deterministically — two same-seed
// soaks must produce byte-identical reports, cycle timings and write
// digest included.
func (r *RollingResult) Report() string {
	var b strings.Builder
	mode := "hard-kill"
	if r.Graceful {
		mode = "graceful"
	}
	fmt.Fprintf(&b, "rolling soak (%s): acked=%d lost=%d incomplete=%d availability=%.4f\n",
		mode, r.Acked, r.Lost, r.Incomplete, r.Availability())
	fmt.Fprintf(&b, "gets=%d mismatches=%d failed_puts=%d stalled_puts=%d err_window=%dns\n",
		r.GetChecks, r.GetMismatches, r.FailedPuts, r.StalledPuts, r.ErrWindowNs)
	fmt.Fprintf(&b, "lifecycle: drains=%d escalations=%d reloads=%d drained_reqs=%d\n",
		r.Drains, r.Escalations, r.Reloads, r.DrainedRequests)
	fmt.Fprintf(&b, "cluster: promotions=%d candidacies=%d resyncs=%d stale=%d fenced=%d refreshes=%d\n",
		r.Promotions, r.Candidacies, r.Resyncs, r.StaleWrites, r.FencedWrites, r.Refreshes)
	fmt.Fprintf(&b, "cycles: %d (crashes seen: %d)\n", len(r.Cycles), len(r.Crashes))
	for _, c := range r.Cycles {
		fmt.Fprintf(&b, "  node=%d round=%d stop=%d down=%d ready=%d esc=%v crash=%v errw=%d recov=%d\n",
			c.Node, c.Round, c.StopAt, c.DownAt, c.ReadyAt, c.Escalated, c.Crashed, c.ErrWindowNs, c.RecoveryNs)
	}
	fmt.Fprintf(&b, "shards:")
	for s := range r.ShardEpochs {
		fmt.Fprintf(&b, " e%d/s%d", r.ShardEpochs[s], r.ShardSeqs[s])
	}
	fmt.Fprintf(&b, "\n")
	h := fnv.New64a()
	for _, w := range r.Writes {
		fmt.Fprintf(h, "%s|%d|%v\n", w.Key, w.AckAt, w.Lost)
	}
	fmt.Fprintf(&b, "writes_digest=%016x\n", h.Sum64())
	return b.String()
}
