package chaos

import (
	"bytes"
	"fmt"
	"hash/fnv"
	"strings"

	"hatrpc/internal/cluster"
	"hatrpc/internal/engine"
	"hatrpc/internal/hatkv"
	"hatrpc/internal/lmdb"
	"hatrpc/internal/sim"
	"hatrpc/internal/simnet"
)

// ClusterConfig parameterizes one cluster-wide soak: N server nodes
// running the sharded, replicated HatKV tier (internal/cluster) plus
// one client node, under a seeded crash schedule and (optionally) a
// seeded partition/fault plan covering the servers.
type ClusterConfig struct {
	Seed    int64
	Sync    lmdb.SyncMode
	Servers int // cluster node count (≥3 for real failover at RF 3)
	NShards int
	RF      int

	Workers         int
	WritesPerWorker int
	WritePaceNs     int64

	Crash  simnet.CrashConfig // node ids are server indexes 0..Servers-1
	Faults simnet.FaultConfig
}

// NodeCrash is one executed server crash.
type NodeCrash struct {
	Node int
	At   sim.Time
}

// ClusterWrite is one acknowledged cluster write. Lost is filled by the
// audit against the shard's authority replica.
type ClusterWrite struct {
	Key   string
	AckAt sim.Time
	Lost  bool
}

// ClusterResult is the audited outcome of a cluster soak.
type ClusterResult struct {
	Crashes []NodeCrash
	Writes  []ClusterWrite

	Acked int
	Lost  int // acked writes absent from their shard's authority replica

	GetChecks     int
	GetMismatches int // read-backs returning wrong bytes — always a bug
	FailedPuts    int64
	Incomplete    int

	// Cluster lifecycle, summed over every boot of every server.
	Promotions   int64
	Candidacies  int64
	Resyncs      int64
	StaleWrites  int64
	FencedWrites int64

	// Client routing, summed over the workers.
	Refreshes    int64
	StaleRetries int64

	// Per-shard final durable position at the authority replica.
	ShardEpochs []uint64
	ShardSeqs   []uint64
}

// ClusterSoak runs one cluster soak to completion and audits it: every
// worker write is retried until acked, and at the end every acked write
// must be present at its shard's authority replica — the replica with
// the maximum durable (epoch, seq). Under SyncFull and RF ≥ 2 the
// epoch-fencing argument makes any loss a protocol bug, crashes and
// partitions notwithstanding.
func ClusterSoak(cfg ClusterConfig) *ClusterResult {
	if cfg.Servers <= 0 {
		cfg.Servers = 5
	}
	if cfg.NShards <= 0 {
		cfg.NShards = 8
	}
	if cfg.RF <= 0 {
		cfg.RF = 3
	}
	if cfg.Workers <= 0 {
		cfg.Workers = 3
	}
	if cfg.WritesPerWorker <= 0 {
		cfg.WritesPerWorker = 40
	}
	env := sim.NewEnv(cfg.Seed)
	cl := simnet.NewCluster(env, simnet.Config{
		Nodes: cfg.Servers + 1, Cores: 28, Sockets: 2, LinkGbps: 100, PropDelayNs: 600, NUMAPenalty: 1.25,
	})

	ccfg := cluster.Config{Seed: cfg.Seed, NShards: cfg.NShards, RF: cfg.RF}
	ccfg.NodeIDs = make([]int, cfg.Servers)
	for i := range ccfg.NodeIDs {
		ccfg.NodeIDs[i] = i
	}
	roster := make([]*simnet.Node, cfg.Servers)
	for i := range roster {
		roster[i] = cl.Node(i)
	}

	res := &ClusterResult{}
	ecfg := engine.DefaultConfig()
	ecfg.BreakerThreshold = 4
	ecfg.BreakerCooldown = 500_000

	stores := make([]*hatkv.Store, cfg.Servers)
	var allNodes []*cluster.Node // every boot's service, for stat summing
	for i := 0; i < cfg.Servers; i++ {
		i := i
		node := cl.Node(i)
		store, err := hatkv.NewStore(node, nil, nil)
		if err != nil {
			panic("chaos: " + err.Error()) // nil hints cannot fail
		}
		if err := store.Env().SetSync(cfg.Sync); err != nil {
			panic("chaos: " + err.Error())
		}
		stores[i] = store
		// Crash log, registered after the store so the backend has rolled
		// back by the time it runs; re-arms itself across boots.
		var logCrash func()
		logCrash = func() {
			res.Crashes = append(res.Crashes, NodeCrash{Node: i, At: env.Now()})
			node.OnCrash(logCrash)
		}
		node.OnCrash(logCrash)
		boot := func() {
			allNodes = append(allNodes, cluster.NewNode(engine.New(node, ecfg), store, roster, i, ccfg))
		}
		boot()
		node.SetRestart(func(p *sim.Proc) { boot() })
	}
	cl.InstallCrashes(cfg.Crash)
	cl.InstallFaults(cfg.Faults)

	cliEng := engine.New(cl.Node(cfg.Servers), ecfg)
	var clients []*cluster.Client
	done := 0
	for w := 0; w < cfg.Workers; w++ {
		w := w
		env.Spawn(fmt.Sprintf("cluster-worker-%d", w), func(p *sim.Proc) {
			c := cluster.NewClient(cliEng, roster, ccfg)
			clients = append(clients, c)
			for i := 0; i < cfg.WritesPerWorker; i++ {
				key := fmt.Sprintf("w%02d-%05d", w, i)
				for {
					if err := c.Put(p, key, []byte(key)); err == nil {
						res.Writes = append(res.Writes, ClusterWrite{Key: key, AckAt: p.Now()})
						break
					}
					res.FailedPuts++
					p.Sleep(250_000) // outage in progress; back off and re-ack
				}
				if i%5 == 4 {
					// Read-back: an answer must be the exact bytes written
					// (acked writes never roll back under quorum replication).
					res.GetChecks++
					v, err := c.Get(p, key)
					if err == nil && !bytes.Equal(v, []byte(key)) {
						res.GetMismatches++
					}
				}
				if cfg.WritePaceNs > 0 {
					p.Sleep(sim.Duration(cfg.WritePaceNs))
				}
			}
			done++
			if done == cfg.Workers {
				env.Stop()
			}
		})
	}
	if cfg.Crash.HorizonNs > 0 {
		// Watchdog: the soak must terminate even if a worker wedges.
		env.At(sim.Time(4*cfg.Crash.HorizonNs), env.Stop)
	}
	env.Run()

	res.Incomplete = cfg.Workers - done
	for _, n := range allNodes {
		st := n.Stats()
		res.Promotions += st.Promotions
		res.Candidacies += st.Candidacies
		res.Resyncs += st.Resyncs
		res.StaleWrites += st.StaleWrites
		res.FencedWrites += st.FencedWrites
	}
	for _, c := range clients {
		st := c.Stats()
		res.Refreshes += st.Refreshes
		res.StaleRetries += st.StaleRetries
	}
	auditCluster(res, ccfg, stores)
	return res
}

// auditCluster checks every acked write against its shard's authority
// replica and records the final durable shard positions.
func auditCluster(res *ClusterResult, ccfg cluster.Config, stores []*hatkv.Store) {
	nshards := cluster.NumShards(ccfg)
	auth := make([]int, nshards)
	res.ShardEpochs = make([]uint64, nshards)
	res.ShardSeqs = make([]uint64, nshards)
	for s := 0; s < nshards; s++ {
		auth[s] = cluster.ShardAuthority(ccfg, stores, s)
		res.ShardEpochs[s], res.ShardSeqs[s] = cluster.ShardPosition(stores[auth[s]], s)
	}
	for i := range res.Writes {
		w := &res.Writes[i]
		res.Acked++
		shard := cluster.ShardOf(w.Key, nshards)
		if !cluster.StoreHas(stores[auth[shard]], shard, w.Key) {
			w.Lost = true
			res.Lost++
		}
	}
}

// Outages returns, per crash, the virtual time from the crash to the
// first subsequent acked write anywhere in the cluster — the
// client-visible recovery time. Crashes with no ack after them are
// omitted.
func (r *ClusterResult) Outages() []int64 {
	var out []int64
	for _, c := range r.Crashes {
		for _, w := range r.Writes {
			if w.AckAt > c.At {
				out = append(out, int64(w.AckAt-c.At))
				break
			}
		}
	}
	return out
}

// Report renders the audited outcome deterministically — two same-seed
// soaks must produce byte-identical reports. The write log is folded
// into an FNV-1a digest.
func (r *ClusterResult) Report() string {
	var b strings.Builder
	fmt.Fprintf(&b, "cluster soak: acked=%d lost=%d incomplete=%d\n", r.Acked, r.Lost, r.Incomplete)
	fmt.Fprintf(&b, "gets=%d mismatches=%d failed_puts=%d\n", r.GetChecks, r.GetMismatches, r.FailedPuts)
	fmt.Fprintf(&b, "lifecycle: promotions=%d candidacies=%d resyncs=%d stale=%d fenced=%d\n",
		r.Promotions, r.Candidacies, r.Resyncs, r.StaleWrites, r.FencedWrites)
	fmt.Fprintf(&b, "clients: refreshes=%d stale_retries=%d\n", r.Refreshes, r.StaleRetries)
	fmt.Fprintf(&b, "crashes: %d\n", len(r.Crashes))
	for _, c := range r.Crashes {
		fmt.Fprintf(&b, "  node=%d at=%d\n", c.Node, c.At)
	}
	fmt.Fprintf(&b, "shards:")
	for s := range r.ShardEpochs {
		fmt.Fprintf(&b, " e%d/s%d", r.ShardEpochs[s], r.ShardSeqs[s])
	}
	fmt.Fprintf(&b, "\n")
	h := fnv.New64a()
	for _, w := range r.Writes {
		fmt.Fprintf(h, "%s|%d|%v\n", w.Key, w.AckAt, w.Lost)
	}
	fmt.Fprintf(&b, "writes_digest=%016x\n", h.Sum64())
	return b.String()
}
