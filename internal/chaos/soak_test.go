package chaos

import (
	"testing"

	"hatrpc/internal/lmdb"
	"hatrpc/internal/simnet"
)

// soakConfig sizes a soak to approximately the requested number of
// crash–restart cycles: the mean cycle is ~650µs (150µs min + 350µs
// mean uptime, then a ~150µs jittered reboot), and the workload is
// paced to outlast the crash horizon so every scheduled crash executes.
func soakConfig(seed int64, sync lmdb.SyncMode, cycles int) Config {
	horizon := int64(cycles) * 700_000
	return Config{
		Seed:            seed,
		Sync:            sync,
		Workers:         3,
		WritesPerWorker: int(horizon / 200_000),
		WritePaceNs:     220_000,
		KeepaliveNs:     300_000,
		Crash: simnet.CrashConfig{
			Nodes:           []int{0},
			MeanUptimeNs:    350_000,
			MinUptimeNs:     150_000,
			RestartDelayNs:  120_000,
			RestartJitterNs: 60_000,
			HorizonNs:       horizon,
		},
	}
}

// soakCycles is the crash-cycle budget: the acceptance bar of ≥ 50
// executed cycles normally, trimmed under -short.
func soakCycles(t *testing.T) (cycles, minCrashes int) {
	if testing.Short() {
		return 12, 8
	}
	return 60, 50
}

// assertSoakInvariants checks the properties every soak must satisfy
// regardless of sync mode.
func assertSoakInvariants(t *testing.T, res *Result, minCrashes int) {
	t.Helper()
	if res.Incomplete != 0 {
		t.Fatalf("%d workers never finished (watchdog fired)", res.Incomplete)
	}
	if len(res.Crashes) < minCrashes {
		t.Errorf("executed %d crash cycles, want >= %d", len(res.Crashes), minCrashes)
	}
	if res.Unexplained != 0 {
		t.Errorf("%d lost writes have no explaining crash", res.Unexplained)
	}
	if res.BoundViolated {
		t.Errorf("lost %d acked writes but only %d committed txns were rolled back",
			res.Lost, res.StoreLostTxns)
	}
	if res.GetMismatches != 0 {
		t.Errorf("%d read-backs returned wrong bytes", res.GetMismatches)
	}
	if res.SessionResets != 0 {
		t.Errorf("%d idempotent calls were reset — replay opt-in ignored", res.SessionResets)
	}
	if res.SessionConnects <= 3 {
		t.Errorf("sessions connected %d times across %d crashes — no reconnection happened",
			res.SessionConnects, len(res.Crashes))
	}
	if int(res.StoreRecoveries) != len(res.Crashes) {
		t.Errorf("store recovered %d times across %d crashes", res.StoreRecoveries, len(res.Crashes))
	}
}

// TestSoakSyncFullNoAckedWriteLost is the acceptance soak: with every
// commit fsynced, zero acknowledged writes may be lost across the full
// randomized crash schedule, and every session must re-establish
// without manual intervention.
func TestSoakSyncFullNoAckedWriteLost(t *testing.T) {
	cycles, minCrashes := soakCycles(t)
	res := Soak(soakConfig(301, lmdb.SyncFull, cycles))
	assertSoakInvariants(t, res, minCrashes)
	if res.Lost != 0 {
		t.Errorf("SyncFull lost %d acked writes, want 0", res.Lost)
	}
	if res.StoreLostTxns != 0 {
		t.Errorf("SyncFull rolled back %d committed txns, want 0", res.StoreLostTxns)
	}
	t.Logf("crashes=%d acked=%d replays=%d connects=%d failed_calls=%d",
		len(res.Crashes), res.Acked, res.SessionReplays, res.SessionConnects, res.FailedCalls)
}

// TestSoakNoSyncLossBounded: with commits trusted to the page cache,
// acked writes may be lost — but every loss must be explained by a
// recorded crash rollback and the total is bounded by the rolled-back
// commit count.
func TestSoakNoSyncLossBounded(t *testing.T) {
	cycles, minCrashes := soakCycles(t)
	res := Soak(soakConfig(307, lmdb.NoSync, cycles))
	assertSoakInvariants(t, res, minCrashes)
	if res.StoreLostTxns == 0 {
		t.Error("NoSync soak rolled back nothing — the crash schedule missed every commit window")
	}
	t.Logf("crashes=%d acked=%d lost=%d rolled_back=%d", len(res.Crashes), res.Acked, res.Lost, res.StoreLostTxns)
}

// TestSoakSyncMetaLossBounded: the trailing-by-one durability of
// SyncMeta under the same schedule — at most the newest commit per
// crash is lost, which the generic bound and explanation checks verify.
func TestSoakSyncMetaLossBounded(t *testing.T) {
	res := Soak(soakConfig(311, lmdb.SyncMeta, 12))
	assertSoakInvariants(t, res, 8)
	t.Logf("crashes=%d acked=%d lost=%d rolled_back=%d", len(res.Crashes), res.Acked, res.Lost, res.StoreLostTxns)
}

// TestSoakSameSeedByteIdentical is the determinism acceptance: the
// soak's full audited report — crash schedule, loss accounting and the
// digest of every acked write — is a pure function of the seed.
func TestSoakSameSeedByteIdentical(t *testing.T) {
	cfg := soakConfig(313, lmdb.NoSync, 10)
	a := Soak(cfg).Report()
	b := Soak(cfg).Report()
	if a != b {
		t.Fatalf("same-seed soaks diverged:\n--- run 1\n%s\n--- run 2\n%s", a, b)
	}
	cfg2 := cfg
	cfg2.Seed = 314
	if c := Soak(cfg2).Report(); c == a {
		t.Fatal("different seeds produced identical soaks (schedule not seed-driven?)")
	}
}
