// Package chaos is the crash–restart soak harness (DESIGN.md §12): it
// drives HatKV through a randomized, seeded crash schedule and audits
// the durability contract of the active sync mode against the acked
// writes. The harness wires every lifecycle layer together — the
// simnet CrashPlan kills and reboots the server node, the verbs device
// dies and is reopened with a new epoch, the engine Session layer
// re-dials and replays idempotent calls, and the hatkv Store rolls the
// backend to its durable root — and the checker then asserts:
//
//	(a) under SyncFull no acknowledged write is ever lost;
//	(b) under NoSync every lost acked write is explained by a crash
//	    that rolled back past its commit, and the total loss is
//	    bounded by the rolled-back commit count (the un-synced window);
//	(c) a run is a pure function of its seed: two same-seed soaks
//	    produce byte-identical reports.
package chaos

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"strings"

	"hatrpc/internal/engine"
	"hatrpc/internal/hatkv"
	"hatrpc/internal/lmdb"
	"hatrpc/internal/sim"
	"hatrpc/internal/simnet"
)

// Wire functions of the soak's minimal KV service. FnPut commits
// key→value and answers with the 8-byte commit transaction id — the
// handle the checker later correlates with crash rollbacks. FnGet
// answers with the value or nothing.
const (
	FnPut uint32 = 1
	FnGet uint32 = 2
)

// Port is the soak service's engine port.
const Port = "hatkv-chaos"

// Config parameterizes one soak run. The zero value is filled with
// small defaults; Crash must be a valid simnet.CrashConfig for any
// crashing to happen.
type Config struct {
	Seed            int64
	Sync            lmdb.SyncMode
	Workers         int
	WritesPerWorker int
	// WritePaceNs idles each worker between writes so the workload spans
	// the crash schedule instead of racing ahead of it.
	WritePaceNs int64
	// KeepaliveNs enables session keepalive probing at this interval.
	KeepaliveNs int64
	Crash       simnet.CrashConfig
}

// Crash is one executed crash as the harness observed it: when it hit,
// the transaction id the store recovered to, and how many committed
// transactions that rollback destroyed.
type Crash struct {
	At           sim.Time
	RolledBackTo uint64
	LostTxns     uint64
}

// Write is one acknowledged write: the commit txn id the server
// answered with and the virtual time the ack reached the worker. Lost
// is filled by the audit.
type Write struct {
	Key   string
	Txn   uint64
	AckAt sim.Time
	Lost  bool
}

// Result is the audited outcome of a soak run.
type Result struct {
	Crashes []Crash
	Writes  []Write

	Acked       int // every write is retried until acked, so this is the write count
	Lost        int // acked writes absent from the surviving store
	Unexplained int // lost writes no crash accounts for — always a bug
	// BoundViolated: more acked writes were lost than committed
	// transactions were rolled back — always a bug.
	BoundViolated bool
	GetChecks     int
	GetMismatches int // read-backs returning wrong bytes — always a bug
	FailedCalls   int64

	SessionConnects int64
	SessionReplays  int64
	SessionResets   int64

	StoreRecoveries int64
	StoreLostTxns   uint64
	FinalTxn        uint64
	FinalEntries    int64
	Incomplete      int // workers still unfinished when the watchdog fired
}

// Soak runs one chaos soak to completion and audits it.
func Soak(cfg Config) *Result {
	if cfg.Workers <= 0 {
		cfg.Workers = 2
	}
	if cfg.WritesPerWorker <= 0 {
		cfg.WritesPerWorker = 50
	}
	env := sim.NewEnv(cfg.Seed)
	cl := simnet.NewCluster(env, simnet.Config{
		Nodes: 2, Cores: 28, Sockets: 2, LinkGbps: 100, PropDelayNs: 600, NUMAPenalty: 1.25,
	})
	server := cl.Node(0)

	store, err := hatkv.NewStore(server, nil, nil)
	if err != nil {
		panic("chaos: " + err.Error()) // nil hints cannot fail
	}
	if err := store.Env().SetSync(cfg.Sync); err != nil {
		panic("chaos: " + err.Error())
	}

	res := &Result{}
	// The crash log is durable harness state: registered after the store
	// was created, so the store's own hook has already rolled the backend
	// back by the time this one reads it; re-arms itself like the store.
	var seenLost uint64
	var logCrash func()
	logCrash = func() {
		res.Crashes = append(res.Crashes, Crash{
			At:           env.Now(),
			RolledBackTo: store.Env().TxnID(),
			LostTxns:     store.LostTxns - seenLost,
		})
		seenLost = store.LostTxns
		server.OnCrash(logCrash)
	}
	server.OnCrash(logCrash)

	ecfg := engine.DefaultConfig()
	ecfg.BreakerThreshold = 4
	ecfg.BreakerCooldown = 500_000
	handler := func(p *sim.Proc, fn uint32, req []byte) []byte {
		switch fn {
		case FnPut:
			txn, err := store.PutTxn(p, string(req), req)
			if err != nil {
				return nil
			}
			var out [8]byte
			binary.BigEndian.PutUint64(out[:], txn)
			return out[:]
		case FnGet:
			v, err := store.Get(p, string(req))
			if err != nil {
				return nil
			}
			return v
		}
		return nil
	}
	// Each boot of the server node builds a fresh engine and server over
	// the one durable store; the crashed boot's engine dies with its
	// device and processes.
	boot := func() { engine.New(server, ecfg).Serve(Port, handler) }
	boot()
	server.SetRestart(func(p *sim.Proc) { boot() })
	cl.InstallCrashes(cfg.Crash)

	cliEng := engine.New(cl.Node(1), ecfg)
	opts := engine.CallOpts{Proto: engine.EagerSendRecv, Idempotent: true}
	var sessions []*engine.Session
	done := 0
	for w := 0; w < cfg.Workers; w++ {
		w := w
		env.Spawn(fmt.Sprintf("chaos-worker-%d", w), func(p *sim.Proc) {
			var s *engine.Session
			for s == nil {
				var err error
				s, err = cliEng.NewSession(p, server, Port, engine.SessionConfig{
					KeepaliveInterval: sim.Duration(cfg.KeepaliveNs),
				})
				if err != nil {
					p.Sleep(200_000) // server down at dial time; try again
				}
			}
			sessions = append(sessions, s)
			for i := 0; i < cfg.WritesPerWorker; i++ {
				key := fmt.Sprintf("w%02d-%05d", w, i)
				for {
					resp, err := s.Call(p, FnPut, []byte(key), opts)
					if err == nil && len(resp) == 8 {
						res.Writes = append(res.Writes, Write{
							Key: key, Txn: binary.BigEndian.Uint64(resp), AckAt: p.Now(),
						})
						break
					}
					res.FailedCalls++
					p.Sleep(250_000) // outage or overload; back off and re-ack
				}
				if i%5 == 4 {
					// Read-back: a non-empty answer must be the exact bytes
					// written (a rolled-back key answering empty is legal).
					res.GetChecks++
					v, err := s.Call(p, FnGet, []byte(key), opts)
					if err == nil && len(v) > 0 && !bytes.Equal(v, []byte(key)) {
						res.GetMismatches++
					}
				}
				if cfg.WritePaceNs > 0 {
					p.Sleep(sim.Duration(cfg.WritePaceNs))
				}
			}
			done++
			if done == cfg.Workers {
				env.Stop()
			}
		})
	}
	if cfg.Crash.HorizonNs > 0 {
		// Watchdog: a soak must terminate even if a worker wedges; the
		// audit then reports the unfinished workers.
		env.At(sim.Time(4*cfg.Crash.HorizonNs), env.Stop)
	}
	env.Run()

	res.Incomplete = cfg.Workers - done
	for _, s := range sessions {
		st := s.Stats()
		res.SessionConnects += st.Connects
		res.SessionReplays += st.Replays
		res.SessionResets += st.Resets
	}
	audit(res, store)
	return res
}

// ackSlackNs absorbs ack propagation when attributing a loss to a
// crash: the commit happens strictly before the ack arrives, so a crash
// landing in that sub-window has At slightly below AckAt.
const ackSlackNs = 100_000

// audit fills the loss accounting by comparing every acked write
// against the surviving store state.
func audit(res *Result, store *hatkv.Store) {
	res.StoreRecoveries = store.Recoveries
	res.StoreLostTxns = store.LostTxns
	res.FinalTxn = store.Env().TxnID()
	res.FinalEntries = store.Env().Entries()
	r, err := store.Env().BeginRead()
	if err != nil {
		res.Unexplained = len(res.Writes)
		return
	}
	defer r.Abort()
	for i := range res.Writes {
		w := &res.Writes[i]
		res.Acked++
		if _, err := r.Get([]byte(w.Key)); err == nil {
			continue
		}
		w.Lost = true
		res.Lost++
		explained := false
		for _, c := range res.Crashes {
			if int64(c.At) >= int64(w.AckAt)-ackSlackNs && c.RolledBackTo < w.Txn {
				explained = true
				break
			}
		}
		if !explained {
			res.Unexplained++
		}
	}
	// Every lost acked write consumed one distinct rolled-back commit.
	res.BoundViolated = uint64(res.Lost) > res.StoreLostTxns
}

// Outages returns, per crash, the time from the crash to the first
// subsequent acked write — the client-visible recovery time. Crashes
// with no ack after them (end of run) are omitted.
func (r *Result) Outages() []int64 {
	var out []int64
	for _, c := range r.Crashes {
		for _, w := range r.Writes {
			if w.AckAt > c.At {
				out = append(out, int64(w.AckAt-c.At))
				break
			}
		}
	}
	return out
}

// Report renders the full audited outcome deterministically — two
// same-seed soaks must produce byte-identical reports. The (large)
// write log is folded into an FNV-1a digest.
func (r *Result) Report() string {
	var b strings.Builder
	fmt.Fprintf(&b, "chaos soak: acked=%d lost=%d unexplained=%d bound_violated=%v\n",
		r.Acked, r.Lost, r.Unexplained, r.BoundViolated)
	fmt.Fprintf(&b, "gets=%d mismatches=%d failed_calls=%d incomplete=%d\n",
		r.GetChecks, r.GetMismatches, r.FailedCalls, r.Incomplete)
	fmt.Fprintf(&b, "sessions: connects=%d replays=%d resets=%d\n",
		r.SessionConnects, r.SessionReplays, r.SessionResets)
	fmt.Fprintf(&b, "store: recoveries=%d lost_txns=%d final_txn=%d entries=%d\n",
		r.StoreRecoveries, r.StoreLostTxns, r.FinalTxn, r.FinalEntries)
	fmt.Fprintf(&b, "crashes: %d\n", len(r.Crashes))
	for _, c := range r.Crashes {
		fmt.Fprintf(&b, "  at=%d rolled_back_to=%d lost=%d\n", c.At, c.RolledBackTo, c.LostTxns)
	}
	h := fnv.New64a()
	for _, w := range r.Writes {
		fmt.Fprintf(h, "%s|%d|%d|%v\n", w.Key, w.Txn, w.AckAt, w.Lost)
	}
	fmt.Fprintf(&b, "writes_digest=%016x\n", h.Sum64())
	return b.String()
}
