package atb

import "testing"

// smallFanin is a CI-sized sweep: enough virtual clients and bulk
// aggressors for head-of-line blocking to show, small enough to run in
// seconds.
func smallFanin() FaninConfig {
	cfg := DefaultFaninConfig()
	cfg.VClients = []int{1000}
	cfg.Pools = []int{2}
	cfg.MaxPool = 8
	cfg.Workers = 16
	cfg.BigEvery = 16
	cfg.WarmupNs = 1_000_000
	cfg.DurationNs = 8_000_000
	return cfg
}

// TestFaninByteIdenticalReplay: the fan-in sweep is a deterministic
// simulation — same seed, same rendered table, byte for byte.
func TestFaninByteIdenticalReplay(t *testing.T) {
	a := FaninTable(RunFanin(smallFanin()))
	b := FaninTable(RunFanin(smallFanin()))
	if a != b {
		t.Fatalf("fanin replay diverged:\nrun 1:\n%s\nrun 2:\n%s", a, b)
	}
}

// TestFaninHintsRecoverHOL is the acceptance check for the
// virtualization tier: on an oversubscribed shared-QP pool with bulk
// aggressors, the concurrency hint (pool sizing) and priority hint
// (two-class borrow queue) must measurably recover both goodput and
// small-call tail latency versus the unhinted FIFO baseline.
func TestFaninHintsRecoverHOL(t *testing.T) {
	cfg := smallFanin()
	base := runOneFanin(cfg, cfg.VClients[0], cfg.Pools[0], false)
	hinted := runOneFanin(cfg, cfg.VClients[0], cfg.Pools[0], true)
	if hinted.EffPool <= base.EffPool {
		t.Fatalf("concurrency hint did not grow the pool (%d -> %d)", base.EffPool, hinted.EffPool)
	}
	if hinted.GoodputOps <= base.GoodputOps {
		t.Errorf("hints did not recover goodput: %.0f -> %.0f ops/s", base.GoodputOps, hinted.GoodputOps)
	}
	if hinted.P99SmallNs >= base.P99SmallNs {
		t.Errorf("hints did not recover small-call p99: %.0f -> %.0f ns", base.P99SmallNs, hinted.P99SmallNs)
	}
	if base.Waits == 0 {
		t.Error("baseline pool never queued a borrower — HOL blocking unexercised")
	}
	// The population is identical in both runs; only the transport
	// changed underneath it.
	if base.Sessions != hinted.Sessions {
		t.Errorf("session population differs: %d vs %d", base.Sessions, hinted.Sessions)
	}
}
