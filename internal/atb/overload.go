package atb

// Overload benchmark: an open-loop goodput-vs-offered-load sweep that
// exercises the receiver-driven flow control and overload protection
// stack (RNR NAKs, credits, admission control, load shedding). Unlike
// the closed-loop Fig. 5 throughput runs, clients here pace request
// *issue* times from a target aggregate rate, so offered load keeps
// rising past the server's capacity and the admission policy decides
// what happens to the excess.

import (
	"errors"
	"fmt"

	"hatrpc/internal/engine"
	"hatrpc/internal/sim"
	"hatrpc/internal/stats"
)

// OverloadConfig parameterizes one goodput-vs-offered-load sweep.
type OverloadConfig struct {
	Clients    int     // open-loop client connections
	Size       int     // request payload bytes (single-fragment eager)
	ServiceNs  int64   // per-request server CPU cost
	OfferedOps []int64 // offered aggregate loads to sweep, ops/s
	WarmupNs   int64   // excluded from measurement
	DurationNs int64   // measured window after warmup
	DeadlineNs int64   // per-call deadline (arms retry/backoff layer)

	AdmitLimit int                // concurrent-handler bound (0 = unbounded)
	ShedPolicy engine.AdmitPolicy // what to do with the excess
	Credits    bool               // receiver-driven credit flow control
	ModelRNR   bool               // finite RECV rings with RNR NAKs
	Breaker    int                // client breaker threshold (0 = off)

	EagerSlots int // per-conn RECV ring depth (small, to make overrun real)
	RnrRetry   int // sender retry budget before WCRNRRetryExceeded
	Seed       int64
}

// DefaultOverloadConfig sizes the sweep around a ~140 Kops/s capacity
// server (28 cores x 200 us/req): half, full, 1.5x, and 2x capacity.
func DefaultOverloadConfig() OverloadConfig {
	return OverloadConfig{
		Clients:    128,
		Size:       1024,
		ServiceNs:  200_000,
		OfferedOps: []int64{70_000, 140_000, 210_000, 280_000},
		WarmupNs:   2_000_000,
		DurationNs: 20_000_000,
		DeadlineNs: 5_000_000,
		AdmitLimit: 28,
		ShedPolicy: engine.AdmitShedNewest,
		Credits:    true,
		ModelRNR:   true,
		EagerSlots: 2,
		RnrRetry:   40,
		Seed:       97,
	}
}

// OverloadPoint is one offered-load measurement.
type OverloadPoint struct {
	Offered      int64   // target ops/s
	GoodputOps   float64 // successful calls per second in the measured window
	ShedOps      float64 // typed ErrOverloaded rejections per second
	DeadlineOps  float64 // ErrDeadline/ErrPeerDown failures per second
	BreakerOps   float64 // local ErrCircuitOpen rejections per second
	AvgNs        float64 // mean latency of successful calls
	P99Ns        float64
	SrvShed      int64 // server-side shed counter (should match ShedOps*window)
	RnrNaks      int64 // NAKs sent by the server NIC
	RnrFailures  int64 // client WCRNRRetryExceeded completions
	CreditStalls int64 // client sends that blocked waiting for credits
}

// RunOverload sweeps the offered loads of cfg, one fresh fabric per
// point so runs are independent and deterministic.
func RunOverload(cfg OverloadConfig) []OverloadPoint {
	out := make([]OverloadPoint, 0, len(cfg.OfferedOps))
	for _, offered := range cfg.OfferedOps {
		out = append(out, runOneOverload(cfg, offered))
	}
	return out
}

func runOneOverload(cfg OverloadConfig, offered int64) OverloadPoint {
	ecfg := engineConfigFor(cfg.Size, false)
	ecfg.EagerSlots = cfg.EagerSlots
	ecfg.CallDeadline = sim.Duration(cfg.DeadlineNs)
	ecfg.ModelRNR = cfg.ModelRNR
	if cfg.RnrRetry > 0 {
		ecfg.RnrRetry = cfg.RnrRetry
	}
	if cfg.Credits {
		ecfg.FlowCredits = cfg.EagerSlots
	}
	if cfg.Breaker > 0 {
		ecfg.BreakerThreshold = cfg.Breaker
	}
	f := NewFabricWith(cfg.Seed, 10, ecfg)
	srv := f.Server.Serve("atb", func(p *sim.Proc, fn uint32, req []byte) []byte {
		f.Server.Node().CPU.Compute(p, sim.Duration(cfg.ServiceNs))
		return req[:4]
	})
	srv.AdmitLimit = cfg.AdmitLimit
	srv.Admit = cfg.ShedPolicy

	warmup := sim.Time(cfg.WarmupNs)
	end := warmup + sim.Time(cfg.DurationNs)
	interval := sim.Duration(float64(cfg.Clients) * 1e9 / float64(offered))
	var succ, shed, dead, brk int
	var lat stats.Sample
	running := cfg.Clients
	for i := 0; i < cfg.Clients; i++ {
		i := i
		f.Env.Spawn(fmt.Sprintf("cl%d", i), func(p *sim.Proc) {
			c := f.clientEngine(i).Dial(p, f.Server.Node(), "atb")
			payload := make([]byte, cfg.Size)
			opts := engine.CallOpts{Proto: engine.EagerSendRecv, RespProto: engine.DirectWriteIMM, Busy: true}
			// Stagger start times so the open-loop arrivals interleave.
			next := sim.Time(interval) * sim.Time(i) / sim.Time(cfg.Clients)
			for next < end {
				if now := p.Now(); now < next {
					p.Sleep(sim.Duration(next - now))
				}
				issued := p.Now()
				_, err := c.Call(p, 1, payload, opts)
				if issued >= warmup {
					switch {
					case err == nil:
						succ++
						lat.Add(float64(p.Now() - issued))
					case errors.Is(err, engine.ErrOverloaded):
						shed++
					case errors.Is(err, engine.ErrCircuitOpen):
						brk++
					default:
						dead++
					}
				}
				next += sim.Time(interval)
				// Open loop with catch-up cap: a client that fell behind
				// issues immediately but does not accumulate unbounded debt.
				if now := p.Now(); next < now {
					next = now
				}
			}
			if running--; running == 0 {
				f.Env.Stop()
			}
		})
	}
	f.Env.Run()
	f.Env.Shutdown()

	secs := float64(cfg.DurationNs) / 1e9
	pt := OverloadPoint{
		Offered:     offered,
		GoodputOps:  float64(succ) / secs,
		ShedOps:     float64(shed) / secs,
		DeadlineOps: float64(dead) / secs,
		BreakerOps:  float64(brk) / secs,
		AvgNs:       lat.Mean(),
		P99Ns:       lat.Percentile(99),
		SrvShed:     srv.Shed,
		RnrNaks:     f.Server.RnrNaks(),
	}
	for _, e := range f.Clients {
		pt.RnrFailures += e.RnrFailures()
		pt.CreditStalls += e.CreditStalls()
	}
	return pt
}
