package atb

// Crash benchmark: a goodput-and-recovery-vs-crash-rate sweep over the
// chaos soak harness. Each point runs the full crash–restart lifecycle
// — seeded CrashPlan, session reconnection, HatKV crash-consistent
// recovery — at one mean uptime, and reports the acked-write goodput
// plus the distribution of client-visible recovery times (crash to
// first post-crash ack).

import (
	"hatrpc/internal/chaos"
	"hatrpc/internal/lmdb"
	"hatrpc/internal/simnet"
	"hatrpc/internal/stats"
)

// CrashBenchConfig parameterizes one crash-rate sweep.
type CrashBenchConfig struct {
	Seed           int64
	Sync           lmdb.SyncMode
	Workers        int
	HorizonNs      int64   // crash schedule horizon (≈ measured window)
	RestartDelayNs int64   // reboot time per crash
	MeanUptimes    []int64 // mean uptimes to sweep, high (rare crashes) to low
}

// DefaultCrashBenchConfig sweeps from one crash every ~4ms down to one
// every ~500µs over a 30ms window.
func DefaultCrashBenchConfig() CrashBenchConfig {
	return CrashBenchConfig{
		Seed:           131,
		Sync:           lmdb.SyncFull,
		Workers:        3,
		HorizonNs:      30_000_000,
		RestartDelayNs: 120_000,
		MeanUptimes:    []int64{4_000_000, 2_000_000, 1_000_000, 500_000},
	}
}

// CrashPoint is one crash-rate measurement.
type CrashPoint struct {
	MeanUptimeNs int64
	Crashes      int     // executed crash–restart cycles
	Acked        int     // acknowledged writes
	Lost         int     // acked writes lost (0 under SyncFull)
	GoodputOps   float64 // acked writes per second of virtual time
	RecovAvgNs   float64 // mean crash → first-subsequent-ack time
	RecovP99Ns   float64
	Replays      int64 // idempotent calls replayed across reconnects
	Connects     int64 // session (re)connects
	LostTxns     uint64
}

// RunCrash sweeps the configured mean uptimes, one independent seeded
// soak per point.
func RunCrash(cfg CrashBenchConfig) []CrashPoint {
	out := make([]CrashPoint, 0, len(cfg.MeanUptimes))
	for _, up := range cfg.MeanUptimes {
		res := chaos.Soak(chaos.Config{
			Seed:            cfg.Seed,
			Sync:            cfg.Sync,
			Workers:         cfg.Workers,
			WritesPerWorker: int(cfg.HorizonNs / 200_000),
			WritePaceNs:     220_000,
			KeepaliveNs:     300_000,
			Crash: simnet.CrashConfig{
				Nodes:           []int{0},
				MeanUptimeNs:    up,
				MinUptimeNs:     150_000,
				RestartDelayNs:  cfg.RestartDelayNs,
				RestartJitterNs: 60_000,
				HorizonNs:       cfg.HorizonNs,
			},
		})
		var dur int64
		for _, w := range res.Writes {
			if int64(w.AckAt) > dur {
				dur = int64(w.AckAt)
			}
		}
		pt := CrashPoint{
			MeanUptimeNs: up,
			Crashes:      len(res.Crashes),
			Acked:        res.Acked,
			Lost:         res.Lost,
			Replays:      res.SessionReplays,
			Connects:     res.SessionConnects,
			LostTxns:     res.StoreLostTxns,
		}
		if dur > 0 {
			pt.GoodputOps = float64(res.Acked) / (float64(dur) / 1e9)
		}
		rec := &stats.Sample{}
		for _, o := range res.Outages() {
			rec.Add(float64(o))
		}
		if rec.N() > 0 {
			pt.RecovAvgNs = rec.Mean()
			pt.RecovP99Ns = rec.Percentile(99)
		}
		out = append(out, pt)
	}
	return out
}
