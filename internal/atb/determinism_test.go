package atb

import (
	"fmt"
	"strings"
	"testing"

	"hatrpc/internal/engine"
	"hatrpc/internal/obs"
	"hatrpc/internal/simnet"
)

// sweepOutput runs a small ATB sweep (latency points across two
// protocols plus one throughput point) with full observability attached
// and returns every byte the run produces: the raw points, the rendered
// metric tables, and the chrome trace JSON. chaos additionally installs
// packet loss + jitter with the retry/deadline layer enabled — the
// configuration with the most scheduler-visible branching.
func sweepOutput(chaos bool) string {
	reg := obs.NewRegistry()
	tracer := obs.NewTracer()
	reg.SetTracer(tracer)

	savedHook, savedFaults, savedDeadline := FabricHook, FaultSpec, CallDeadlineNs
	defer func() {
		FabricHook, FaultSpec, CallDeadlineNs = savedHook, savedFaults, savedDeadline
	}()
	runIdx := 0
	FabricHook = func(f *Fabric) {
		tracer.SetPIDOffset(runIdx * 16)
		runIdx++
		for _, e := range f.Engines() {
			e.SetObs(reg)
		}
		if fp := f.Cluster.Faults(); fp != nil {
			fp.SetObs(reg)
		}
	}
	FaultSpec = nil
	CallDeadlineNs = 0
	if chaos {
		FaultSpec = &simnet.FaultConfig{DropProb: 0.02, JitterNs: 300}
		CallDeadlineNs = 2_000_000
	}

	lcfg := ProtoLatencyConfig{
		Protos: []engine.Protocol{engine.EagerSendRecv, engine.DirectWriteIMM},
		Busy:   []bool{true},
		Sizes:  []int{512},
		Iters:  6,
		Seed:   42,
	}
	lat := RunProtoLatency(lcfg)

	tcfg := ProtoThroughputConfig{
		Protos:     []engine.Protocol{engine.EagerSendRecv},
		Busy:       []bool{false},
		Sizes:      []int{512},
		Clients:    []int{4},
		DurationNs: 2_000_000,
		Seed:       42,
	}
	tput := RunProtoThroughput(tcfg)

	var b strings.Builder
	fmt.Fprintf(&b, "latency: %+v\n", lat)
	fmt.Fprintf(&b, "throughput: %+v\n", tput)
	b.WriteString(reg.Render())
	if err := tracer.WriteJSON(&b); err != nil {
		fmt.Fprintf(&b, "trace error: %v", err)
	}
	return b.String()
}

// TestByteIdenticalReplay is the repo-wide determinism regression test:
// the same seed must reproduce the complete observable output of a
// sweep — metrics tables and trace JSON byte for byte — both fault-free
// and under chaos (loss + jitter + retries). Any map-order or
// wall-clock leak anywhere in the stack shows up here as a diff.
func TestByteIdenticalReplay(t *testing.T) {
	if testing.Short() {
		t.Skip("runs four full simulation sweeps")
	}
	for _, tc := range []struct {
		name  string
		chaos bool
	}{
		{"clean", false},
		{"chaos", true},
	} {
		t.Run(tc.name, func(t *testing.T) {
			a := sweepOutput(tc.chaos)
			b := sweepOutput(tc.chaos)
			if len(a) < 1000 || !strings.Contains(a, "traceEvents") {
				t.Fatalf("sweep produced implausibly small output (%d bytes)", len(a))
			}
			if a != b {
				t.Fatalf("replay diverged:\n%s", firstDiff(a, b))
			}
		})
	}
}

// TestHotpathByteIdenticalReplay extends the determinism guarantee to
// the hotpath sweep: each side (legacy and all-knobs-on) reproduces its
// points exactly across runs, and — the knob-neutrality contract — the
// single-client call workload's virtual timings are IDENTICAL between
// the two sides. PollBudget, DoorbellBatch and ArenaPayloads are
// host-memory/doorbell optimisations; only the burst workload, whose
// doorbells actually coalesce, may differ.
func TestHotpathByteIdenticalReplay(t *testing.T) {
	cfg := HotpathConfig{
		Protos:    []engine.Protocol{engine.EagerSendRecv, engine.RFP},
		Sizes:     []int{512, 131072},
		Burst:     8,
		BurstSize: 64,
		Iters:     20,
		Seed:      42,
	}
	var sides [][]HotpathPoint
	for _, hot := range []bool{false, true} {
		a := RunHotpath(cfg, hot)
		b := RunHotpath(cfg, hot)
		sa, sb := fmt.Sprintf("%+v", a), fmt.Sprintf("%+v", b)
		if sa != sb {
			t.Fatalf("hot=%v replay diverged:\n%s", hot, firstDiff(sa, sb))
		}
		sides = append(sides, a)
	}
	for i, bp := range sides[0] {
		hp := sides[1][i]
		if strings.HasPrefix(bp.Workload, "call/") && (bp.AvgNs != hp.AvgNs || bp.P99Ns != hp.P99Ns) {
			t.Errorf("%s size=%d: hot knobs changed single-client call timing: base avg=%v hot avg=%v",
				bp.Workload, bp.Size, bp.AvgNs, hp.AvgNs)
		}
	}
}

// firstDiff renders the first line where two outputs diverge.
func firstDiff(a, b string) string {
	al, bl := strings.Split(a, "\n"), strings.Split(b, "\n")
	for i := 0; i < len(al) && i < len(bl); i++ {
		if al[i] != bl[i] {
			return fmt.Sprintf("line %d:\n  run1: %s\n  run2: %s", i+1, al[i], bl[i])
		}
	}
	return fmt.Sprintf("lengths differ: %d vs %d lines", len(al), len(bl))
}
