package atb

import (
	"fmt"

	"hatrpc/internal/engine"
	"hatrpc/internal/sim"
	"hatrpc/internal/stats"
)

// Hot-path smoke benchmark: the same workloads run twice — once on the
// legacy engine configuration and once with every hot-path knob enabled
// (batched CQ polling, doorbell-batched oneway bursts, payload arena) —
// so cmd/atb can report the simulated-time improvement, and (by timing
// the two sweeps on the host clock, outside this DES-scoped package)
// the real wall-clock improvement from the allocation sweep.
//
// Two workload shapes:
//   - call/<proto>: single-client round-trip latency (the Fig. 4 shape).
//     The knobs are host-memory optimisations here, so simulated time
//     must NOT change — the sweep doubles as a no-regression guard.
//   - burst/<n>: a train of n small oneway eagers plus a closing sync
//     call. DoorbellBatch collapses the train's doorbells into one, so
//     simulated time improves.

// HotpathPoint is one (workload, size) measurement of one side of the
// comparison.
type HotpathPoint struct {
	Workload string
	Size     int
	AvgNs    float64
	P99Ns    float64
}

// HotpathConfig parameterizes the hotpath sweep. Both sides run the
// same workloads, sizes, iteration count and seed, so any simulated
// delta is attributable to the knobs alone.
type HotpathConfig struct {
	Protos    []engine.Protocol
	Sizes     []int
	Burst     int // oneways per burst (0 skips the burst workload)
	BurstSize int // payload bytes per burst message
	Iters     int
	Seed      int64
}

// DefaultHotpathConfig covers the send disciplines the knobs touch:
// eager, WRITE-with-IMM (the fastest small-message path), rendezvous
// (arena-copied large results) and the one-sided fetch protocols (paced
// result polling), plus a 16-message oneway burst.
func DefaultHotpathConfig() HotpathConfig {
	return HotpathConfig{
		Protos: []engine.Protocol{
			engine.EagerSendRecv, engine.DirectWriteIMM,
			engine.WriteRNDV, engine.RFP, engine.HERD,
		},
		Sizes:     []int{64, 512, 4096, 131072},
		Burst:     16,
		BurstSize: 64,
		Iters:     400,
		Seed:      42,
	}
}

// HotEngineConfig is the benchmark's hot-path engine sizing: the legacy
// sizing for the payload regime plus every hot-path knob.
func HotEngineConfig(size int, fetch bool) engine.Config {
	ecfg := engineConfigFor(size, fetch)
	ecfg.PollBudget = 16
	ecfg.DoorbellBatch = true
	ecfg.ArenaPayloads = true
	return ecfg
}

// RunHotpath measures one side of the comparison: hot=false is the
// legacy configuration (the baseline), hot=true enables the knobs.
// Both sides use busy polling so the delta isolates the knobs from the
// polling discipline.
func RunHotpath(cfg HotpathConfig, hot bool) []HotpathPoint {
	var out []HotpathPoint
	for _, proto := range cfg.Protos {
		for _, size := range cfg.Sizes {
			out = append(out, runOneHotpath(cfg.Seed, proto, size, cfg.Iters, hot))
		}
	}
	if cfg.Burst > 0 {
		out = append(out, runOneHotpathBurst(cfg.Seed, cfg.Burst, cfg.BurstSize, cfg.Iters, hot))
	}
	return out
}

func hotpathConfigFor(size int, fetch, hot bool) engine.Config {
	if hot {
		return HotEngineConfig(size, fetch)
	}
	return engineConfigFor(size, fetch)
}

func runOneHotpath(seed int64, proto engine.Protocol, size, iters int, hot bool) HotpathPoint {
	f := NewFabricWith(seed, 2, hotpathConfigFor(size, needsFetch(proto), hot))
	srv := f.Server.Serve("atb", func(p *sim.Proc, fn uint32, req []byte) []byte {
		return req
	})
	srv.Busy = true
	srv.NUMABind = true
	var s stats.Sample
	f.Env.Spawn("client", func(p *sim.Proc) {
		c := f.Clients[0].Dial(p, f.Server.Node(), "atb")
		c.SetNUMABound(true)
		payload := make([]byte, size)
		opts := engine.CallOpts{Proto: proto, Busy: true}
		for i := 0; i < 3; i++ { // warmup (stocks the payload arena)
			if resp, err := c.Call(p, 1, payload, opts); err == nil {
				c.Recycle(resp)
			}
		}
		for i := 0; i < iters; i++ {
			start := p.Now()
			resp, err := c.Call(p, 1, payload, opts)
			if err != nil {
				panic(err)
			}
			s.Add(float64(p.Now() - start))
			c.Recycle(resp)
		}
		f.Env.Stop()
	})
	f.Env.Run()
	f.Env.Shutdown()
	return HotpathPoint{Workload: "call/" + proto.String(), Size: size,
		AvgNs: s.Mean(), P99Ns: s.Percentile(99)}
}

// runOneHotpathBurst drives a sustained stream of oneway bursts (the
// multi-call burst shape doorbell batching targets) and reports
// per-message time. The stream must be sustained: in a one-shot burst
// the chain defers all NIC work behind the full staging train and
// batching loses, but back-to-back bursts overlap chain N's staging
// with chain N-1's NIC processing, so the saved doorbells (client CPU)
// and the batched CQ drain (server CPU, Config.PollBudget) both surface
// as shorter per-message time. Flow credits run on both sides so the
// stream self-paces instead of overrunning the RECV ring.
func runOneHotpathBurst(seed int64, n, size, iters int, hot bool) HotpathPoint {
	ecfg := hotpathConfigFor(size, false, hot)
	ecfg.FlowCredits = 12
	f := NewFabricWith(seed, 2, ecfg)
	srv := f.Server.Serve("atb", func(p *sim.Proc, fn uint32, req []byte) []byte {
		return req
	})
	srv.Busy = true
	srv.NUMABind = true
	var s stats.Sample
	f.Env.Spawn("client", func(p *sim.Proc) {
		c := f.Clients[0].Dial(p, f.Server.Node(), "atb")
		c.SetNUMABound(true)
		payloads := make([][]byte, n)
		for i := range payloads {
			payloads[i] = make([]byte, size)
		}
		opts := engine.CallOpts{Proto: engine.EagerSendRecv, Busy: true}
		// Warmup: one burst plus sync settles connection state.
		if err := c.OnewayBurst(p, 1, payloads, opts); err != nil {
			panic(err)
		}
		if resp, err := c.Call(p, 2, make([]byte, size), opts); err == nil {
			c.Recycle(resp)
		}
		start := p.Now()
		for i := 0; i < iters; i++ {
			if err := c.OnewayBurst(p, 1, payloads, opts); err != nil {
				panic(err)
			}
		}
		// The closing sync bounds the measurement at the server having
		// consumed the whole stream.
		resp, err := c.Call(p, 2, make([]byte, size), opts)
		if err != nil {
			panic(err)
		}
		c.Recycle(resp)
		s.Add(float64(p.Now()-start) / float64(iters*n))
		f.Env.Stop()
	})
	f.Env.Run()
	f.Env.Shutdown()
	return HotpathPoint{Workload: fmt.Sprintf("burst/%d-oneways", n), Size: size,
		AvgNs: s.Mean(), P99Ns: s.Percentile(99)}
}
