package atb

// Cluster benchmark: an availability-and-recovery sweep over the
// sharded, replicated HatKV tier (DESIGN.md §15). Each point runs one
// seeded cluster soak — N server nodes, consistent-hash sharding,
// primary→backup replication, epoch-fenced failover — at one
// (replication factor, mean uptime) pair and reports acked-write
// goodput, put-attempt availability, zero-loss audit results, and the
// crash→first-ack recovery-time distribution. RF 1 is the baseline
// where every crash loses the shard until the node reboots; RF 2–3
// show quorum failover masking the same crash schedule.

import (
	"hatrpc/internal/chaos"
	"hatrpc/internal/lmdb"
	"hatrpc/internal/simnet"
	"hatrpc/internal/stats"
)

// ClusterBenchConfig parameterizes one RF × crash-rate sweep.
type ClusterBenchConfig struct {
	Seed      int64
	Sync      lmdb.SyncMode
	Servers   int
	NShards   int
	Workers   int
	HorizonNs int64 // crash/partition schedule horizon per point

	RFs         []int   // replication factors to sweep
	MeanUptimes []int64 // mean server uptimes, high (rare crashes) to low
	Partitions  bool    // overlay the periodic split-brain partition plan
}

// DefaultClusterBenchConfig sweeps RF 1–3 against two crash rates on a
// 5-node cluster with the periodic partition plan on.
func DefaultClusterBenchConfig() ClusterBenchConfig {
	return ClusterBenchConfig{
		Seed:        211,
		Sync:        lmdb.SyncFull,
		Servers:     5,
		NShards:     8,
		Workers:     3,
		HorizonNs:   16_000_000,
		RFs:         []int{1, 2, 3},
		MeanUptimes: []int64{4_000_000, 1_500_000},
		Partitions:  true,
	}
}

// ClusterPoint is one (RF, crash-rate) measurement.
type ClusterPoint struct {
	RF           int
	MeanUptimeNs int64
	Crashes      int
	Acked        int
	Lost         int     // acked writes absent from the shard authority
	Availability float64 // acked / (acked + failed put attempts)
	GoodputOps   float64 // acked writes per second of virtual time
	Promotions   int64   // epoch-fenced failovers executed
	StaleRetries int64   // client writes redirected by ErrStaleShardEpoch
	RecovAvgNs   float64 // mean crash → first-subsequent-ack time
	RecovP99Ns   float64
}

// RunClusterBench sweeps the configured replication factors and mean
// uptimes, one independent seeded cluster soak per point. Every point
// reuses the same seed, so the crash and partition schedules are
// identical across RFs — the sweep isolates what replication buys.
func RunClusterBench(cfg ClusterBenchConfig) []ClusterPoint {
	out := make([]ClusterPoint, 0, len(cfg.RFs)*len(cfg.MeanUptimes))
	for _, rf := range cfg.RFs {
		for _, up := range cfg.MeanUptimes {
			ccfg := chaos.ClusterConfig{
				Seed:            cfg.Seed,
				Sync:            cfg.Sync,
				Servers:         cfg.Servers,
				NShards:         cfg.NShards,
				RF:              rf,
				Workers:         cfg.Workers,
				WritesPerWorker: int(cfg.HorizonNs / 400_000),
				WritePaceNs:     300_000,
				Crash: simnet.CrashConfig{
					Nodes:           serverIDs(cfg.Servers),
					MeanUptimeNs:    up,
					MinUptimeNs:     up / 2,
					RestartDelayNs:  400_000,
					RestartJitterNs: 200_000,
					HorizonNs:       cfg.HorizonNs,
				},
			}
			if cfg.Partitions {
				ccfg.Faults = simnet.FaultConfig{
					PartitionPeriodNs: 6_000_000,
					PartitionForNs:    700_000,
					PartitionNodes:    serverIDs(cfg.Servers),
				}
			}
			res := chaos.ClusterSoak(ccfg)
			var dur int64
			for _, w := range res.Writes {
				if int64(w.AckAt) > dur {
					dur = int64(w.AckAt)
				}
			}
			pt := ClusterPoint{
				RF:           rf,
				MeanUptimeNs: up,
				Crashes:      len(res.Crashes),
				Acked:        res.Acked,
				Lost:         res.Lost,
				Promotions:   res.Promotions,
				StaleRetries: res.StaleRetries,
			}
			if attempts := float64(res.Acked) + float64(res.FailedPuts); attempts > 0 {
				pt.Availability = float64(res.Acked) / attempts
			}
			if dur > 0 {
				pt.GoodputOps = float64(res.Acked) / (float64(dur) / 1e9)
			}
			rec := &stats.Sample{}
			for _, o := range res.Outages() {
				rec.Add(float64(o))
			}
			if rec.N() > 0 {
				pt.RecovAvgNs = rec.Mean()
				pt.RecovP99Ns = rec.Percentile(99)
			}
			out = append(out, pt)
		}
	}
	return out
}

// serverIDs returns the cluster's server node ids, 0..n-1.
func serverIDs(n int) []int {
	ids := make([]int, n)
	for i := range ids {
		ids[i] = i
	}
	return ids
}
