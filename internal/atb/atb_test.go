package atb

import (
	"testing"

	"hatrpc/internal/engine"
)

// fastLatencyCfg keeps unit-test runtime small.
func fastLatencyCfg() ProtoLatencyConfig {
	return ProtoLatencyConfig{
		Protos: []engine.Protocol{engine.EagerSendRecv, engine.DirectWriteIMM, engine.RFP, engine.WriteRNDV},
		Busy:   []bool{true, false},
		Sizes:  []int{64, 131072},
		Iters:  8,
		Seed:   1,
	}
}

func TestProtoLatencyShapes(t *testing.T) {
	pts := RunProtoLatency(fastLatencyCfg())
	get := func(proto engine.Protocol, busy bool, size int) LatencyPoint {
		for _, p := range pts {
			if p.Proto == proto && p.Busy == busy && p.Size == size {
				return p
			}
		}
		t.Fatalf("missing point %v busy=%v size=%d", proto, busy, size)
		return LatencyPoint{}
	}
	// Busy polling beats event polling for every protocol/size (Fig. 4).
	for _, proto := range []engine.Protocol{engine.EagerSendRecv, engine.DirectWriteIMM, engine.RFP} {
		for _, size := range []int{64, 131072} {
			b, e := get(proto, true, size), get(proto, false, size)
			if b.AvgNs >= e.AvgNs {
				t.Errorf("%v size %d: busy %.0f >= event %.0f", proto, size, b.AvgNs, e.AvgNs)
			}
		}
	}
	// Direct-WriteIMM is the best busy-polled small-message protocol.
	imm := get(engine.DirectWriteIMM, true, 64)
	for _, proto := range []engine.Protocol{engine.EagerSendRecv, engine.RFP, engine.WriteRNDV} {
		if o := get(proto, true, 64); imm.AvgNs >= o.AvgNs {
			t.Errorf("WriteIMM (%.0f) not fastest vs %v (%.0f) at 64B", imm.AvgNs, proto, o.AvgNs)
		}
	}
	// Latency grows with size.
	if get(engine.DirectWriteIMM, true, 131072).AvgNs <= imm.AvgNs {
		t.Error("128KB not slower than 64B")
	}
}

func TestProtoThroughputOverSubscription(t *testing.T) {
	cfg := ProtoThroughputConfig{
		Protos:     []engine.Protocol{engine.DirectWriteIMM},
		Busy:       []bool{true, false},
		Sizes:      []int{512},
		Clients:    []int{4, 128},
		DurationNs: 150_000,
		Seed:       2,
	}
	pts := RunProtoThroughput(cfg)
	get := func(busy bool, clients int) ThroughputPoint {
		for _, p := range pts {
			if p.Busy == busy && p.Clients == clients {
				return p
			}
		}
		t.Fatal("missing point")
		return ThroughputPoint{}
	}
	// Fig. 5: under-subscription busy wins; over-subscription busy
	// polling degrades below event polling.
	if b, e := get(true, 4), get(false, 4); b.OpsPerS <= e.OpsPerS {
		t.Errorf("under-sub: busy %.0f <= event %.0f", b.OpsPerS, e.OpsPerS)
	}
	if b, e := get(true, 128), get(false, 128); b.OpsPerS >= e.OpsPerS {
		t.Errorf("over-sub: busy %.0f >= event %.0f (no collapse)", b.OpsPerS, e.OpsPerS)
	}
	// More clients must raise aggregate throughput under event polling.
	if get(false, 128).OpsPerS <= get(false, 4).OpsPerS {
		t.Error("event polling did not scale with clients")
	}
}

func TestHintLatencyHatRPCWins(t *testing.T) {
	cfg := HintLatencyConfig{
		Systems: DefaultSystems(),
		Sizes:   []int{512, 131072},
		Iters:   10,
		Seed:    3,
	}
	pts := RunHintLatency(cfg)
	bySystem := map[string]map[int]float64{}
	for _, p := range pts {
		if bySystem[p.System] == nil {
			bySystem[p.System] = map[int]float64{}
		}
		bySystem[p.System][p.Size] = p.AvgNs
	}
	for _, size := range []int{512, 131072} {
		hat := bySystem["HatRPC"][size]
		if hat == 0 {
			t.Fatal("no HatRPC measurement")
		}
		// HatRPC must beat Hybrid-EagerRNDV and RFP (Fig. 11), and be
		// within noise of (or beat) Direct-WriteIMM since that is what the
		// hints select.
		if hyb := bySystem["Hybrid-EagerRNDV"][size]; hat >= hyb {
			t.Errorf("size %d: HatRPC %.0f >= Hybrid %.0f", size, hat, hyb)
		}
		if rfp := bySystem["RFP"][size]; hat >= rfp {
			t.Errorf("size %d: HatRPC %.0f >= RFP %.0f", size, hat, rfp)
		}
		imm := bySystem["Direct-WriteIMM"][size]
		if diff := (hat - imm) / imm; diff > 0.05 {
			t.Errorf("size %d: HatRPC %.0f more than 5%% above WriteIMM %.0f", size, hat, imm)
		}
	}
}

func TestMixBenchmarkRuns(t *testing.T) {
	cfg := MixConfig{
		Systems:    []System{{Name: "HatRPC", Force: engine.ProtoAuto}, {Name: "Hybrid-EagerRNDV", Force: engine.HybridEagerRNDV}},
		Size:       512,
		Clients:    []int{8},
		DurationNs: 150_000,
		Seed:       4,
	}
	pts := RunMix(cfg)
	if len(pts) != 2 {
		t.Fatalf("%d points", len(pts))
	}
	var hat, hyb MixPoint
	for _, p := range pts {
		if p.System == "HatRPC" {
			hat = p
		} else {
			hyb = p
		}
	}
	if hat.LatAvgNs == 0 || hat.TputOpsS == 0 {
		t.Fatalf("empty mix measurement: %+v", hat)
	}
	if hat.LatAvgNs >= hyb.LatAvgNs {
		t.Errorf("mix: HatRPC latency %.0f >= Hybrid %.0f", hat.LatAvgNs, hyb.LatAvgNs)
	}
	if hat.TputOpsS <= hyb.TputOpsS {
		t.Errorf("mix: HatRPC throughput %.0f <= Hybrid %.0f", hat.TputOpsS, hyb.TputOpsS)
	}
}

func TestDeterministicBenchRuns(t *testing.T) {
	cfg := fastLatencyCfg()
	cfg.Protos = []engine.Protocol{engine.DirectWriteIMM}
	cfg.Sizes = []int{512}
	a := RunProtoLatency(cfg)
	b := RunProtoLatency(cfg)
	if a[0].AvgNs != b[0].AvgNs {
		t.Fatalf("nondeterministic: %v vs %v", a[0].AvgNs, b[0].AvgNs)
	}
}
