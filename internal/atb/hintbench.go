package atb

import (
	"fmt"
	"strconv"

	atbgen "hatrpc/internal/atb/gen"
	"hatrpc/internal/engine"
	"hatrpc/internal/hints"
	"hatrpc/internal/sim"
	"hatrpc/internal/stats"
	"hatrpc/internal/trdma"
)

// System names one line of Figures 11–14: HatRPC (hint-driven) or a
// fixed-protocol baseline.
type System struct {
	Name  string
	Force engine.Protocol // ProtoAuto = hint-driven HatRPC
}

// DefaultSystems are the comparison set of §5.2–§5.3.
func DefaultSystems() []System {
	return []System{
		{Name: "HatRPC", Force: engine.ProtoAuto},
		{Name: "Hybrid-EagerRNDV", Force: engine.HybridEagerRNDV},
		{Name: "Direct-Write-Send", Force: engine.DirectWriteSend},
		{Name: "Direct-WriteIMM", Force: engine.DirectWriteIMM},
		{Name: "RFP", Force: engine.RFP},
	}
}

// hintTable builds the ATB service hint table for one benchmark
// configuration: the service-level hints carry the run's performance
// goal, expected concurrency and payload size (as the paper's IDL files
// do per experiment), and the mix functions keep their goal overrides.
func hintTable(goal hints.PerfGoal, conc, payload int, numaBind bool) *trdma.ServiceHints {
	shared := map[hints.Key]string{
		hints.KeyPerfGoal:    string(goal),
		hints.KeyConcurrency: strconv.Itoa(conc),
	}
	if payload > 0 {
		shared[hints.KeyPayloadSize] = strconv.Itoa(payload)
	}
	var server map[hints.Key]string
	if numaBind {
		server = map[hints.Key]string{hints.KeyNUMA: "bind"}
	}
	return &trdma.ServiceHints{
		ServiceName: "ATBench",
		Service:     hints.MakeSet(shared, server, nil),
		Functions: map[string]*hints.Set{
			"Echo":     hints.NewSet(),
			"LatCall":  hints.MakeSet(map[hints.Key]string{hints.KeyPerfGoal: "latency"}, nil, nil),
			"TputCall": hints.MakeSet(map[hints.Key]string{hints.KeyPerfGoal: "throughput"}, nil, nil),
		},
		FnIDs:  atbgen.ATBenchHints.FnIDs,
		Oneway: atbgen.ATBenchHints.Oneway,
	}
}

// baselineBusy is the polling discipline given to fixed-protocol
// baselines: spin while the connection count fits the cores, interrupt
// beyond (a generous baseline configuration — pinning them to busy
// polling at 512 connections would collapse them unfairly).
func baselineBusy(clients, cores int) bool { return clients <= cores }

// startService boots the generated ATB service over the fabric and
// returns a dial function for clients.
func startService(f *Fabric, sh *trdma.ServiceHints, forceBusyServer *bool) {
	h := &checksumHandler{node: f.Server.Node()}
	srv := trdma.NewServer(f.Server, sh, atbgen.NewATBenchProcessor(h))
	if forceBusyServer != nil {
		srv.EngineServer().Busy = *forceBusyServer
	}
}

// HintLatencyPoint is one Figure 11 measurement.
type HintLatencyPoint struct {
	System string
	Size   int
	AvgNs  float64
	P99Ns  float64
}

// HintLatencyConfig parameterizes Figure 11.
type HintLatencyConfig struct {
	Systems []System
	Sizes   []int
	Iters   int
	Seed    int64
}

// DefaultHintLatencyConfig mirrors the paper: payloads 4 B – 512 KB,
// service hints "perf_goal=latency, concurrency=1".
func DefaultHintLatencyConfig() HintLatencyConfig {
	return HintLatencyConfig{
		Systems: DefaultSystems(),
		Sizes:   []int{4, 64, 512, 4096, 16384, 65536, 131072, 524288},
		Iters:   30,
		Seed:    11,
	}
}

// RunHintLatency measures service-level-hint latency (Fig. 11).
func RunHintLatency(cfg HintLatencyConfig) []HintLatencyPoint {
	var out []HintLatencyPoint
	for _, sys := range cfg.Systems {
		for _, size := range cfg.Sizes {
			out = append(out, runOneHintLatency(cfg.Seed, sys, size, cfg.Iters))
		}
	}
	return out
}

func runOneHintLatency(seed int64, sys System, size, iters int) HintLatencyPoint {
	f := NewFabricWith(seed, 2, engineConfigFor(size, needsFetch(sys.Force)))
	sh := hintTable(hints.GoalLatency, 1, size, true)
	var dialOpt *trdma.DialOptions
	if sys.Force != engine.ProtoAuto {
		force := sys.Force
		dialOpt = &trdma.DialOptions{ForceProto: &force, ForceBusy: true}
		busy := true
		startService(f, sh, &busy)
	} else {
		startService(f, sh, nil)
	}
	var s stats.Sample
	f.Env.Spawn("client", func(p *sim.Proc) {
		tr := trdma.Dial(p, f.Clients[0], f.Server.Node(), sh, dialOpt)
		c := atbgen.NewATBenchClient(tr)
		payload := make([]byte, size)
		for i := 0; i < 3; i++ {
			if _, err := c.Echo(p, payload); err != nil {
				panic(err)
			}
		}
		for i := 0; i < iters; i++ {
			start := p.Now()
			if _, err := c.Echo(p, payload); err != nil {
				panic(err)
			}
			s.Add(float64(p.Now() - start))
		}
		f.Env.Stop()
	})
	f.Env.Run()
	f.Env.Shutdown()
	return HintLatencyPoint{System: sys.Name, Size: size, AvgNs: s.Mean(), P99Ns: s.Percentile(99)}
}

// HintThroughputPoint is one Figure 12 measurement.
type HintThroughputPoint struct {
	System  string
	Size    int
	Clients int
	OpsPerS float64
	MBps    float64
}

// HintThroughputConfig parameterizes Figure 12.
type HintThroughputConfig struct {
	Systems    []System
	Sizes      []int
	Clients    []int
	DurationNs int64
	Seed       int64
}

// DefaultHintThroughputConfig mirrors the paper: 512 B and 128 KB, 1–512
// clients.
func DefaultHintThroughputConfig() HintThroughputConfig {
	return HintThroughputConfig{
		Systems:    DefaultSystems(),
		Sizes:      []int{512, 131072},
		Clients:    []int{1, 4, 16, 28, 64, 128, 256, 512},
		DurationNs: 400_000,
		Seed:       12,
	}
}

// RunHintThroughput measures service-level-hint throughput (Fig. 12).
func RunHintThroughput(cfg HintThroughputConfig) []HintThroughputPoint {
	var out []HintThroughputPoint
	for _, sys := range cfg.Systems {
		for _, size := range cfg.Sizes {
			for _, nc := range cfg.Clients {
				out = append(out, runOneHintThroughput(cfg.Seed, sys, size, nc, cfg.DurationNs))
			}
		}
	}
	return out
}

func runOneHintThroughput(seed int64, sys System, size, nClients int, durNs int64) HintThroughputPoint {
	f := NewFabricWith(seed, 10, engineConfigFor(size, needsFetch(sys.Force)))
	cores := f.Server.Cores()
	numaBind := nClients <= f.Server.Node().LocalCores()
	sh := hintTable(hints.GoalThroughput, nClients, size, numaBind)
	var dialOpt *trdma.DialOptions
	if sys.Force != engine.ProtoAuto {
		force := sys.Force
		busy := baselineBusy(nClients, cores)
		dialOpt = &trdma.DialOptions{ForceProto: &force, ForceBusy: busy}
		startService(f, sh, &busy)
	} else {
		startService(f, sh, nil)
	}

	warmup := sim.Time(200_000)
	deadline := warmup + sim.Time(durNs)
	totalOps := 0
	for i := 0; i < nClients; i++ {
		i := i
		f.Env.Spawn(fmt.Sprintf("cl%d", i), func(p *sim.Proc) {
			tr := trdma.Dial(p, f.clientEngine(i), f.Server.Node(), sh, dialOpt)
			c := atbgen.NewATBenchClient(tr)
			payload := make([]byte, size)
			for p.Now() < warmup {
				if _, err := c.Echo(p, payload); err != nil {
					panic(err)
				}
			}
			for p.Now() < deadline {
				if _, err := c.Echo(p, payload); err != nil {
					panic(err)
				}
				totalOps++
			}
		})
	}
	f.Env.Run()
	f.Env.Shutdown()
	ops := float64(totalOps) / (float64(durNs) / 1e9)
	return HintThroughputPoint{
		System: sys.Name, Size: size, Clients: nClients,
		OpsPerS: ops, MBps: ops * float64(size) / 1e6,
	}
}

// MixPoint is one Figure 13/14 measurement: latency of the
// latency-hinted RPC and throughput of the throughput-hinted RPC, under a
// 50/50 mixed workload.
type MixPoint struct {
	System   string
	Size     int
	Clients  int
	LatAvgNs float64
	TputOpsS float64
}

// MixConfig parameterizes Figures 13 and 14.
type MixConfig struct {
	Systems    []System
	Size       int
	Clients    []int
	DurationNs int64
	Seed       int64
}

// DefaultMixConfig512 is the Figure 13 setup (512 B payloads).
func DefaultMixConfig512() MixConfig {
	return MixConfig{
		Systems: DefaultSystems(), Size: 512,
		Clients:    []int{1, 4, 16, 28, 64, 128, 256, 512},
		DurationNs: 400_000, Seed: 13,
	}
}

// DefaultMixConfig128K is the Figure 14 setup (128 KB payloads).
func DefaultMixConfig128K() MixConfig {
	c := DefaultMixConfig512()
	c.Size = 131072
	c.Seed = 14
	return c
}

// RunMix measures the mixed-workload benchmark (Figs. 13–14): each client
// flips a fair coin per call between the latency-hinted and the
// throughput-hinted RPC.
func RunMix(cfg MixConfig) []MixPoint {
	var out []MixPoint
	for _, sys := range cfg.Systems {
		for _, nc := range cfg.Clients {
			out = append(out, runOneMix(cfg.Seed, sys, cfg.Size, nc, cfg.DurationNs))
		}
	}
	return out
}

func runOneMix(seed int64, sys System, size, nClients int, durNs int64) MixPoint {
	f := NewFabricWith(seed, 10, engineConfigFor(size, needsFetch(sys.Force)))
	cores := f.Server.Cores()
	numaBind := nClients <= f.Server.Node().LocalCores()
	sh := hintTable(hints.GoalThroughput, nClients, size, numaBind)
	var dialOpt *trdma.DialOptions
	if sys.Force != engine.ProtoAuto {
		force := sys.Force
		busy := baselineBusy(nClients, cores)
		dialOpt = &trdma.DialOptions{ForceProto: &force, ForceBusy: busy}
		startService(f, sh, &busy)
	} else {
		startService(f, sh, nil)
	}

	warmup := sim.Time(200_000)
	deadline := warmup + sim.Time(durNs)
	var lat stats.Sample
	tputOps := 0
	for i := 0; i < nClients; i++ {
		i := i
		f.Env.Spawn(fmt.Sprintf("cl%d", i), func(p *sim.Proc) {
			tr := trdma.Dial(p, f.clientEngine(i), f.Server.Node(), sh, dialOpt)
			c := atbgen.NewATBenchClient(tr)
			payload := make([]byte, size)
			rng := p.Env().Rand()
			for p.Now() < deadline {
				latCall := rng.Intn(2) == 0
				start := p.Now()
				var err error
				if latCall {
					_, err = c.LatCall(p, payload)
				} else {
					_, err = c.TputCall(p, payload)
				}
				if err != nil {
					panic(err)
				}
				if p.Now() < warmup {
					continue
				}
				if latCall {
					lat.Add(float64(p.Now() - start))
				} else {
					tputOps++
				}
			}
		})
	}
	f.Env.Run()
	f.Env.Shutdown()
	return MixPoint{
		System: sys.Name, Size: size, Clients: nClients,
		LatAvgNs: lat.Mean(),
		TputOpsS: float64(tputOps) / (float64(durNs) / 1e9),
	}
}
