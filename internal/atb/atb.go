// Package atb implements the Apache Thrift Benchmarks (ATB) of §5.1: a
// latency benchmark, a multi-threaded throughput benchmark, and a mix
// communication benchmark issuing two differently-hinted RPCs. The
// benchmarks drive both the raw engine protocols (Figures 4 and 5) and
// the full generated-code HatRPC stack (Figures 11–14).
package atb

import (
	"fmt"

	"hatrpc/internal/engine"
	"hatrpc/internal/sim"
	"hatrpc/internal/simnet"
	"hatrpc/internal/stats"
)

// Fabric is a freshly-built simulated cluster with one server node and
// engines on every node.
type Fabric struct {
	Env     *sim.Env
	Cluster *simnet.Cluster
	Server  *engine.Engine   // node 0
	Clients []*engine.Engine // nodes 1..n-1
}

// NewFabric builds the paper's 10-node testbed (or nodes if >0).
func NewFabric(seed int64, nodes int) *Fabric {
	return NewFabricWith(seed, nodes, engine.DefaultConfig())
}

// FabricHook, when non-nil, runs on every freshly built Fabric before
// any benchmark traffic. cmd/atb uses it to attach an obs.Registry (and
// tracer) to all engines of every run in a sweep.
var FabricHook func(*Fabric)

// FaultSpec, when non-nil, is installed on every freshly built Cluster
// (cmd/atb and cmd/figures set it from the -faults/-loss/-jitter flags).
// Nil keeps the fabric fault-free and byte-identical to earlier builds.
var FaultSpec *simnet.FaultConfig

// CallDeadlineNs, when >0, becomes engine.Config.CallDeadline on every
// fabric — enabling the retry/backoff layer so benchmarks complete under
// injected loss instead of hanging on a dropped packet.
var CallDeadlineNs int64

// NewFabricWith builds the testbed with an explicit engine sizing —
// benchmarks shrink MaxMsgSize to the run's payload regime so hundreds
// of connections fit in host memory.
func NewFabricWith(seed int64, nodes int, ecfg engine.Config) *Fabric {
	cfg := simnet.DefaultConfig()
	if nodes > 0 {
		cfg.Nodes = nodes
	}
	env := sim.NewEnv(seed)
	cl := simnet.NewCluster(env, cfg)
	if FaultSpec != nil {
		cl.InstallFaults(*FaultSpec)
	}
	if CallDeadlineNs > 0 {
		ecfg.CallDeadline = sim.Duration(CallDeadlineNs)
	}
	f := &Fabric{Env: env, Cluster: cl}
	f.Server = engine.New(cl.Node(0), ecfg)
	for i := 1; i < cl.Nodes(); i++ {
		f.Clients = append(f.Clients, engine.New(cl.Node(i), ecfg))
	}
	if FabricHook != nil {
		FabricHook(f)
	}
	return f
}

// Engines returns every engine of the fabric (server first).
func (f *Fabric) Engines() []*engine.Engine {
	return append([]*engine.Engine{f.Server}, f.Clients...)
}

// engineConfigFor sizes per-connection buffers to the benchmark's
// payload regime. fetch keeps the server-side one-sided regions needed
// by Pilaf/FaRM/RFP/HERD.
func engineConfigFor(size int, fetch bool) engine.Config {
	ecfg := engine.DefaultConfig()
	maxMsg := 4 * size
	if maxMsg < 16384 {
		maxMsg = 16384
	}
	ecfg.MaxMsgSize = maxMsg
	ecfg.EagerSlots = 16
	ecfg.NoFetchBufs = !fetch
	return ecfg
}

// needsFetch reports whether a protocol uses the server-published
// one-sided regions.
func needsFetch(proto engine.Protocol) bool {
	switch proto {
	case engine.Pilaf, engine.FaRM, engine.RFP, engine.HERD, engine.ProtoAuto:
		return true
	}
	return false
}

// clientEngine spreads client i round-robin across the client nodes.
func (f *Fabric) clientEngine(i int) *engine.Engine {
	return f.Clients[i%len(f.Clients)]
}

// checksumHandler emulates the paper's mix-benchmark server work: a
// checksum whose cost grows with payload size.
type checksumHandler struct {
	node *simnet.Node
}

func (h *checksumHandler) work(p *sim.Proc, n int) {
	// ~1 byte/cycle checksum: at 2.6 GHz that is ~0.38 ns/byte.
	h.node.CPU.Compute(p, sim.Duration(float64(n)*0.38))
}

func (h *checksumHandler) Echo(p *sim.Proc, payload []byte) ([]byte, error) {
	h.work(p, len(payload))
	return payload, nil
}

func (h *checksumHandler) LatCall(p *sim.Proc, payload []byte) ([]byte, error) {
	h.work(p, len(payload))
	return payload, nil
}

func (h *checksumHandler) TputCall(p *sim.Proc, payload []byte) ([]byte, error) {
	h.work(p, len(payload))
	return payload, nil
}

// ---------------------------------------------------------------------------
// Figure 4: protocol latency (raw engine, single client)

// LatencyPoint is one (protocol, polling, size) latency measurement.
type LatencyPoint struct {
	Proto engine.Protocol
	Busy  bool
	Size  int
	AvgNs float64
	P99Ns float64
}

// ProtoLatencyConfig parameterizes the Fig. 4 sweep.
type ProtoLatencyConfig struct {
	Protos []engine.Protocol
	Busy   []bool
	Sizes  []int
	Iters  int
	Seed   int64
}

// DefaultProtoLatencyConfig mirrors the paper's Fig. 4 axes.
func DefaultProtoLatencyConfig() ProtoLatencyConfig {
	return ProtoLatencyConfig{
		Protos: []engine.Protocol{
			engine.EagerSendRecv, engine.DirectWriteSend, engine.ChainedWriteSend,
			engine.WriteRNDV, engine.ReadRNDV, engine.DirectWriteIMM,
			engine.Pilaf, engine.FaRM, engine.RFP,
		},
		Busy:  []bool{true, false},
		Sizes: []int{4, 64, 512, 4096, 16384, 65536, 131072, 524288},
		Iters: 30,
		Seed:  42,
	}
}

// RunProtoLatency measures RPC-like round-trip latency for each
// configuration on a fresh two-node fabric.
func RunProtoLatency(cfg ProtoLatencyConfig) []LatencyPoint {
	var out []LatencyPoint
	for _, proto := range cfg.Protos {
		for _, busy := range cfg.Busy {
			for _, size := range cfg.Sizes {
				out = append(out, runOneLatency(cfg.Seed, proto, busy, size, cfg.Iters))
			}
		}
	}
	return out
}

func runOneLatency(seed int64, proto engine.Protocol, busy bool, size, iters int) LatencyPoint {
	f := NewFabricWith(seed, 2, engineConfigFor(size, needsFetch(proto)))
	srv := f.Server.Serve("atb", func(p *sim.Proc, fn uint32, req []byte) []byte {
		return req
	})
	srv.Busy = busy
	srv.NUMABind = true
	var s stats.Sample
	f.Env.Spawn("client", func(p *sim.Proc) {
		c := f.Clients[0].Dial(p, f.Server.Node(), "atb")
		c.SetNUMABound(true)
		payload := make([]byte, size)
		opts := engine.CallOpts{Proto: proto, Busy: busy}
		for i := 0; i < 3; i++ { // warmup
			c.Call(p, 1, payload, opts)
		}
		for i := 0; i < iters; i++ {
			start := p.Now()
			if _, err := c.Call(p, 1, payload, opts); err != nil {
				panic(err)
			}
			s.Add(float64(p.Now() - start))
		}
		f.Env.Stop()
	})
	f.Env.Run()
	f.Env.Shutdown()
	return LatencyPoint{Proto: proto, Busy: busy, Size: size, AvgNs: s.Mean(), P99Ns: s.Percentile(99)}
}

// ---------------------------------------------------------------------------
// Figure 5: protocol throughput (raw engine, many clients)

// ThroughputPoint is one (protocol, polling, size, clients) measurement.
type ThroughputPoint struct {
	Proto   engine.Protocol
	Busy    bool
	Size    int
	Clients int
	OpsPerS float64
	MBps    float64
	// AvgLatNs is the mean per-op latency observed during the run.
	AvgLatNs float64
}

// ProtoThroughputConfig parameterizes the Fig. 5 sweep.
type ProtoThroughputConfig struct {
	Protos     []engine.Protocol
	Busy       []bool
	Sizes      []int
	Clients    []int
	DurationNs int64
	Seed       int64
}

// DefaultProtoThroughputConfig mirrors Fig. 5: 512 B and 128 KB messages,
// client counts spanning under/full/over subscription of the 28-core
// server.
func DefaultProtoThroughputConfig() ProtoThroughputConfig {
	return ProtoThroughputConfig{
		Protos: []engine.Protocol{
			engine.EagerSendRecv, engine.DirectWriteSend, engine.ChainedWriteSend,
			engine.WriteRNDV, engine.ReadRNDV, engine.DirectWriteIMM,
			engine.Pilaf, engine.FaRM, engine.RFP,
		},
		Busy:       []bool{true, false},
		Sizes:      []int{512, 131072},
		Clients:    []int{1, 4, 16, 28, 64, 128, 256, 512},
		DurationNs: 400_000,
		Seed:       7,
	}
}

// RunProtoThroughput measures aggregate throughput per configuration.
func RunProtoThroughput(cfg ProtoThroughputConfig) []ThroughputPoint {
	var out []ThroughputPoint
	for _, proto := range cfg.Protos {
		for _, busy := range cfg.Busy {
			for _, size := range cfg.Sizes {
				for _, nc := range cfg.Clients {
					out = append(out, runOneThroughput(cfg.Seed, proto, busy, size, nc, cfg.DurationNs))
				}
			}
		}
	}
	return out
}

func runOneThroughput(seed int64, proto engine.Protocol, busy bool, size, nClients int, durNs int64) ThroughputPoint {
	f := NewFabricWith(seed, 10, engineConfigFor(size, needsFetch(proto)))
	srv := f.Server.Serve("atb", func(p *sim.Proc, fn uint32, req []byte) []byte {
		return req
	})
	srv.Busy = busy
	// The paper binds NUMA when the client count fits the NIC-local
	// socket (under-subscription).
	numaBind := nClients <= f.Server.Node().LocalCores()
	srv.NUMABind = numaBind

	warmup := sim.Time(200_000)
	deadline := warmup + sim.Time(durNs)
	totalOps := 0
	var lat stats.Sample
	for i := 0; i < nClients; i++ {
		i := i
		f.Env.Spawn(fmt.Sprintf("cl%d", i), func(p *sim.Proc) {
			c := f.clientEngine(i).Dial(p, f.Server.Node(), "atb")
			c.SetNUMABound(numaBind)
			payload := make([]byte, size)
			opts := engine.CallOpts{Proto: proto, Busy: busy}
			for p.Now() < warmup {
				if _, err := c.Call(p, 1, payload, opts); err != nil {
					panic(err)
				}
			}
			for p.Now() < deadline {
				start := p.Now()
				if _, err := c.Call(p, 1, payload, opts); err != nil {
					panic(err)
				}
				lat.Add(float64(p.Now() - start))
				totalOps++
			}
		})
	}
	f.Env.Run()
	f.Env.Shutdown()
	secs := float64(durNs) / 1e9
	ops := float64(totalOps) / secs
	return ThroughputPoint{
		Proto: proto, Busy: busy, Size: size, Clients: nClients,
		OpsPerS:  ops,
		MBps:     ops * float64(size) / 1e6,
		AvgLatNs: lat.Mean(),
	}
}
