package atb

// Fan-in benchmark: goodput and tail latency versus *connected virtual
// client* count (10^4 → 10^6) over the connection-virtualization tier
// (DESIGN.md §14). Physical transport is a bounded shared-QP pool
// backed by a server-side SRQ; virtual clients are plain VConn structs
// multiplexed over it, so NIC state (QPs, receive rings, pinned memory)
// stays constant while the session population grows two orders of
// magnitude.
//
// The sweep makes shared-QP head-of-line blocking visible: a small
// fraction of virtual clients are bulk senders (large payload, long
// handler), and with a small pool and one FIFO borrow queue every
// latency-sensitive call behind them eats their occupancy. The hinted
// variant of each point shows the recovery path the paper's hint system
// prescribes: a "concurrency" hint sizes the physical pool to the real
// borrower concurrency (goodput), and a "priority" hint splits the
// borrow queue into classes so small calls overtake bulk ones (p99).

import (
	"errors"
	"fmt"
	"strconv"

	"hatrpc/internal/engine"
	"hatrpc/internal/hints"
	"hatrpc/internal/sim"
	"hatrpc/internal/stats"
)

// FaninConfig parameterizes one fan-in sweep.
type FaninConfig struct {
	VClients []int // connected virtual-connection counts to sweep
	Pools    []int // physical shared-QP pool sizes (the unhinted baseline)
	// MaxPool caps hint-driven pool growth — the stand-in for NIC
	// QP-cache reach, past which more QPs stop helping.
	MaxPool int
	// Tenants spreads the small virtual clients over admission
	// partitions 1..Tenants-1; tenant 0 is reserved for bulk clients.
	Tenants int
	// Workers is the number of borrower procs driving the virtual-client
	// population — the actual concurrency the pool sees. Virtual clients
	// are structs, not procs: each worker walks the population in
	// stride, issuing one call per visit, so 10^6 connected clients cost
	// memory but never 10^6 goroutines.
	Workers int
	// TenantLimit, when >0, is the server-side per-tenant concurrent
	// handler cap (sheds typed past it).
	TenantLimit int

	Size         int   // latency-sensitive payload bytes
	BigSize      int   // bulk payload bytes — the HOL aggressor
	BigEvery     int   // every Nth virtual client is a bulk client (0 = none)
	ServiceNs    int64 // handler CPU per small request
	BigServiceNs int64 // handler CPU per bulk request

	SRQSlots   int // shared server receive ring depth
	WarmupNs   int64
	DurationNs int64
	Seed       int64
}

// DefaultFaninConfig sweeps 10k → 1M connected virtual clients over
// shared pools of 4 and 16 QPs, with one bulk client per 64 and 64
// concurrent borrowers (so the unhinted pool of 4 is heavily
// oversubscribed).
func DefaultFaninConfig() FaninConfig {
	return FaninConfig{
		VClients:     []int{10_000, 100_000, 1_000_000},
		Pools:        []int{4, 16},
		MaxPool:      16,
		Tenants:      8,
		Workers:      64,
		TenantLimit:  0,
		Size:         512,
		BigSize:      131072,
		BigEvery:     64,
		ServiceNs:    2_000,
		BigServiceNs: 500_000,
		SRQSlots:     64,
		WarmupNs:     2_000_000,
		DurationNs:   20_000_000,
		Seed:         131,
	}
}

// FaninPoint is one (vclients, pool, hinted) measurement.
type FaninPoint struct {
	VClients int
	Pool     int  // configured (unhinted) pool size
	EffPool  int  // pool actually used (concurrency hint may grow it)
	Hinted   bool // concurrency + priority hints applied

	GoodputOps float64 // successful calls/s, small + bulk
	AvgSmallNs float64 // mean latency of small calls
	P99SmallNs float64 // tail of small calls — where HOL blocking shows
	P99BulkNs  float64

	Waits       int64 // pool borrows that parked on the queue
	TenantSheds int64 // server per-tenant partition rejections
	Sessions    int64 // virtual connections opened
	PinnedKB    int64 // server pinned memory — flat as sessions grow
	RnrNaks     int64 // shared-ring RNR NAKs on the server NIC
}

// isBulkClient fixes each virtual client's class by its index, so the
// population is identical across hinted and unhinted runs.
func (cfg *FaninConfig) isBulkClient(i int) bool {
	return cfg.BigEvery > 0 && i%cfg.BigEvery == 0
}

// tenantOf spreads small clients over tenants 1..Tenants-1 and pins
// bulk clients to tenant 0, the partition an operator would cap.
func (cfg *FaninConfig) tenantOf(i int) uint32 {
	if cfg.isBulkClient(i) || cfg.Tenants <= 1 {
		return 0
	}
	return uint32(1 + i%(cfg.Tenants-1))
}

// RunFanin sweeps virtual-client counts × pool sizes, each point run
// hinted and unhinted on a fresh fabric.
func RunFanin(cfg FaninConfig) []FaninPoint {
	var out []FaninPoint
	for _, v := range cfg.VClients {
		for _, pool := range cfg.Pools {
			out = append(out, runOneFanin(cfg, v, pool, false))
			out = append(out, runOneFanin(cfg, v, pool, true))
		}
	}
	return out
}

func runOneFanin(cfg FaninConfig, vclients, pool int, hinted bool) FaninPoint {
	size := cfg.Size
	if cfg.BigSize > size {
		size = cfg.BigSize
	}
	ecfg := engineConfigFor(size, false)
	ecfg.SRQSlots = cfg.SRQSlots
	ecfg.ModelRNR = true
	ecfg.RnrRetry = 40
	f := NewFabricWith(cfg.Seed, 2, ecfg)
	srv := f.Server.Serve("atb", func(p *sim.Proc, fn uint32, req []byte) []byte {
		cost := cfg.ServiceNs
		if fn == 2 {
			cost = cfg.BigServiceNs
		}
		f.Server.Node().CPU.Compute(p, sim.Duration(cost))
		return req[:4]
	})
	srv.TenantLimit = cfg.TenantLimit

	// The hints are the recovery levers: "concurrency" states the real
	// borrower concurrency so the transport sizes the physical pool to
	// it (clamped at QP-cache reach), and "priority" opens the two-class
	// borrow queue. Unhinted runs take the configured pool as-is, FIFO.
	eff := pool
	pcfg := engine.VPoolConfig{Size: pool}
	var bulkHints, smallHints hints.Resolved
	if hinted {
		shared := hints.TypeCheck(hints.Group{hints.KeyConcurrency: strconv.Itoa(cfg.Workers)})
		eff = engine.HintedPoolSize(shared, pool, cfg.MaxPool)
		pcfg = engine.VPoolConfig{Size: eff, Priority: true}
		bulkHints = hints.TypeCheck(hints.Group{hints.KeyPriority: "low"})
		smallHints = hints.TypeCheck(hints.Group{hints.KeyPriority: "high"})
	}

	warmup := sim.Time(cfg.WarmupNs)
	end := warmup + sim.Time(cfg.DurationNs)
	var succ, shed int
	var latSmall, latBulk stats.Sample
	var pl *engine.VPool
	f.Env.Spawn("fanin", func(p *sim.Proc) {
		pl = f.Clients[0].DialPool(p, f.Server.Node(), "atb", pcfg)
		// The connected population: every virtual client exists for the
		// whole run. Opening one is pure bookkeeping — this loop is the
		// proof that 10^6 of them need no NIC state.
		vcs := make([]*engine.VConn, vclients)
		for i := range vcs {
			h := smallHints
			if cfg.isBulkClient(i) {
				h = bulkHints
			}
			vcs[i] = pl.Open(cfg.tenantOf(i), h)
		}
		small := make([]byte, cfg.Size)
		big := make([]byte, cfg.BigSize)
		// Small calls ride the eager path; bulk goes rendezvous, whose
		// RTS header also exercises sid-keyed dedup on the server.
		smallOpts := engine.CallOpts{Proto: engine.EagerSendRecv, RespProto: engine.DirectWriteIMM, Busy: true}
		bulkOpts := engine.CallOpts{Proto: engine.WriteRNDV, RespProto: engine.DirectWriteIMM, Busy: true}
		running := cfg.Workers
		for w := 0; w < cfg.Workers; w++ {
			w := w
			f.Env.Spawn(fmt.Sprintf("wk%d", w), func(wp *sim.Proc) {
				cursor := w
				for wp.Now() < end {
					i := cursor % vclients
					cursor += cfg.Workers
					vc := vcs[i]
					fn, payload, opts := uint32(1), small, smallOpts
					if cfg.isBulkClient(i) {
						fn, payload, opts = 2, big, bulkOpts
					}
					issued := wp.Now()
					_, err := vc.Call(wp, fn, payload, opts)
					if issued < warmup {
						continue
					}
					switch {
					case err == nil:
						succ++
						if fn == 2 {
							latBulk.Add(float64(wp.Now() - issued))
						} else {
							latSmall.Add(float64(wp.Now() - issued))
						}
					case errors.Is(err, engine.ErrOverloaded):
						shed++
					default:
						panic(err)
					}
				}
				if running--; running == 0 {
					f.Env.Stop()
				}
			})
		}
	})
	f.Env.Run()
	f.Env.Shutdown()

	secs := float64(cfg.DurationNs) / 1e9
	return FaninPoint{
		VClients:    vclients,
		Pool:        pool,
		EffPool:     eff,
		Hinted:      hinted,
		GoodputOps:  float64(succ) / secs,
		AvgSmallNs:  latSmall.Mean(),
		P99SmallNs:  latSmall.Percentile(99),
		P99BulkNs:   latBulk.Percentile(99),
		Waits:       pl.Waits,
		TenantSheds: srv.TenantShed,
		Sessions:    pl.Sessions,
		PinnedKB:    f.Server.PinnedBytes() / 1024,
		RnrNaks:     f.Server.RnrNaks(),
	}
}

// FaninTable renders the sweep the way cmd/atb prints it; the
// determinism tests replay exactly this string.
func FaninTable(pts []FaninPoint) string {
	tb := stats.NewTable("vclients", "pool", "eff", "hints", "goodput Kops",
		"small avg", "small p99", "bulk p99", "waits", "tenant-shed", "pinned KB", "rnr")
	for _, pt := range pts {
		hv := "off"
		if pt.Hinted {
			hv = "on"
		}
		tb.Row(pt.VClients, pt.Pool, pt.EffPool, hv,
			fmt.Sprintf("%.1f", pt.GoodputOps/1e3),
			fmt.Sprintf("%.0f", pt.AvgSmallNs),
			fmt.Sprintf("%.0f", pt.P99SmallNs),
			fmt.Sprintf("%.0f", pt.P99BulkNs),
			pt.Waits, pt.TenantSheds, pt.PinnedKB, pt.RnrNaks)
	}
	return tb.String()
}
