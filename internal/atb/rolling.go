package atb

// Rolling-restart benchmark: the operational cost of taking a node out
// of a HatKV cluster on purpose (DESIGN.md §17). Each point runs one
// seeded rolling soak — every node restarted in turn under a
// retry-until-acked workload — and reports availability, the
// error-visible window (summed put-latency excess during restart
// cycles), and post-stop recovery times. The sweep crosses drain
// deadline × restart stagger for graceful drains, with one hard-kill
// row per stagger as the PR 8 failover baseline the drain must beat.

import (
	"hatrpc/internal/chaos"
	"hatrpc/internal/node"
	"hatrpc/internal/stats"
)

// RollingBenchConfig parameterizes one drain-deadline × stagger sweep.
type RollingBenchConfig struct {
	Seed    int64
	Servers int
	Shards  int
	RF      int
	Rounds  int

	DrainDeadlines []int64 // graceful drain escalation deadlines to sweep
	Staggers       []int64 // settle time between consecutive node restarts
}

// DefaultRollingBenchConfig sweeps two drain deadlines against two
// staggers on the default 5-node topology, one rolling round each.
func DefaultRollingBenchConfig() RollingBenchConfig {
	return RollingBenchConfig{
		Seed:           311,
		Servers:        5,
		Shards:         8,
		RF:             3,
		Rounds:         1,
		DrainDeadlines: []int64{150_000, 600_000},
		Staggers:       []int64{800_000, 1_600_000},
	}
}

// RollingPoint is one (mode, drain deadline, stagger) measurement.
type RollingPoint struct {
	Graceful        bool
	DrainDeadlineNs int64 // 0 on hard-kill rows
	StaggerNs       int64
	Acked           int
	Lost            int
	Availability    float64
	Escalations     int64
	DrainedReqs     int64
	Promotions      int64
	ErrWindowNs     int64 // summed error-visible window across cycles
	RecovAvgNs      float64
	RecovMaxNs      int64
	ReadyAvgNs      float64 // mean stop → back-to-ready per cycle
}

// RunRollingBench runs the sweep: per stagger, one hard-kill baseline
// plus one graceful run per drain deadline, all from the same seed so
// the workload schedule is held constant while the stop discipline
// varies.
func RunRollingBench(cfg RollingBenchConfig) []RollingPoint {
	out := make([]RollingPoint, 0, len(cfg.Staggers)*(1+len(cfg.DrainDeadlines)))
	for _, stagger := range cfg.Staggers {
		out = append(out, runRollingPoint(cfg, false, 0, stagger))
		for _, dl := range cfg.DrainDeadlines {
			out = append(out, runRollingPoint(cfg, true, dl, stagger))
		}
	}
	return out
}

func runRollingPoint(cfg RollingBenchConfig, graceful bool, drainDL, stagger int64) RollingPoint {
	nc := node.DefaultConfig()
	nc.Protocol.Seed = cfg.Seed
	nc.Protocol.Servers = cfg.Servers
	nc.Protocol.Shards = cfg.Shards
	nc.Protocol.RF = cfg.RF
	res, err := chaos.RollingSoak(chaos.RollingConfig{
		Node:            nc,
		Rounds:          cfg.Rounds,
		Graceful:        graceful,
		DrainDeadlineNs: drainDL,
		StaggerNs:       stagger,
	})
	if err != nil {
		panic("atb: rolling soak: " + err.Error()) // static config cannot fail
	}
	pt := RollingPoint{
		Graceful:     graceful,
		StaggerNs:    stagger,
		Acked:        res.Acked,
		Lost:         res.Lost,
		Availability: res.Availability(),
		Escalations:  res.Escalations,
		DrainedReqs:  res.DrainedRequests,
		Promotions:   res.Promotions,
		ErrWindowNs:  res.ErrWindowNs,
	}
	if graceful {
		pt.DrainDeadlineNs = drainDL
	}
	recov := &stats.Sample{}
	ready := &stats.Sample{}
	for _, c := range res.Cycles {
		if c.RecoveryNs > 0 {
			recov.Add(float64(c.RecoveryNs))
			if c.RecoveryNs > pt.RecovMaxNs {
				pt.RecovMaxNs = c.RecoveryNs
			}
		}
		if c.ReadyAt > c.StopAt {
			ready.Add(float64(c.ReadyAt - c.StopAt))
		}
	}
	if recov.N() > 0 {
		pt.RecovAvgNs = recov.Mean()
	}
	if ready.N() > 0 {
		pt.ReadyAvgNs = ready.Mean()
	}
	return pt
}
