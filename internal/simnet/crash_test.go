package simnet

import (
	"fmt"
	"testing"

	"hatrpc/internal/sim"
)

// TestCrashKillsNodeOwnedProcs: a crash kills exactly the node's
// processes (their defers run) and leaves other nodes' processes alive.
func TestCrashKillsNodeOwnedProcs(t *testing.T) {
	env, cl := cluster(11)
	n0, n1 := cl.Node(0), cl.Node(1)
	var died, survived bool
	n0.Spawn("victim", func(p *sim.Proc) {
		defer func() { died = true }()
		p.Sleep(1_000_000)
	})
	n1.Spawn("bystander", func(p *sim.Proc) {
		p.Sleep(500)
		survived = true
	})
	env.At(1000, n0.Crash)
	env.Run()
	if !died {
		t.Error("node-owned process's defer did not run at crash")
	}
	if !survived {
		t.Error("other node's process was killed")
	}
	if !n0.Down() || n0.Epoch() != 1 {
		t.Errorf("after crash: down=%v epoch=%d, want true/1", n0.Down(), n0.Epoch())
	}
}

// TestCrashRunsHooksAndAllowsRearm: crash hooks run in registration
// order, are cleared, and a hook may re-register itself (durable media
// surviving multiple crashes).
func TestCrashRunsHooksAndAllowsRearm(t *testing.T) {
	env, cl := cluster(12)
	n := cl.Node(0)
	var order []string
	n.OnCrash(func() { order = append(order, "nic") })
	var rearm func()
	rearm = func() {
		order = append(order, "store")
		n.OnCrash(rearm)
	}
	n.OnCrash(rearm)
	env.At(100, n.Crash)
	env.At(200, n.Restart)
	env.At(300, n.Crash)
	env.Run()
	want := fmt.Sprintf("%v", []string{"nic", "store", "store"})
	if got := fmt.Sprintf("%v", order); got != want {
		t.Errorf("hook order = %v, want %v", got, want)
	}
}

// TestCrashDropsInFlightOOBMessages: a message sent before the crash
// must not be delivered to the next boot of the node.
func TestCrashDropsInFlightOOBMessages(t *testing.T) {
	env, cl := cluster(13)
	n0, n1 := cl.Node(0), cl.Node(1)
	var got []any
	n0.Spawn("server", func(p *sim.Proc) {
		ln := n0.Listen("svc")
		ep := ln.Accept(p)
		for {
			got = append(got, ep.Recv(p))
		}
	})
	env.Spawn("client", func(p *sim.Proc) {
		ep := n1.Connect(p, n0, "svc") // ~90µs handshake
		ep.Send(p, "before", 64)       // delivered ~15µs later
		p.Sleep(200_000)
		ep.Send(p, "in-flight", 64) // crash lands while this is in the fabric
	})
	env.At(295_000, n0.Crash)
	env.Run()
	if len(got) != 1 || got[0] != "before" {
		t.Errorf("delivered %v, want only [before]", got)
	}
}

// TestTryConnectDownNode: connecting to a crashed node fails typed
// (after paying the connect delay); after restart with a listener it
// succeeds again.
func TestTryConnectDownNode(t *testing.T) {
	env, cl := cluster(14)
	n0, n1 := cl.Node(0), cl.Node(1)
	n0.Listen("svc")
	n0.SetRestart(func(p *sim.Proc) {
		ln := n0.Listen("svc")
		ln.Accept(p)
	})
	env.At(50, n0.Crash)
	env.At(200_000, n0.Restart)
	var downErr, upErr error
	env.Spawn("client", func(p *sim.Proc) {
		p.Sleep(100)
		_, downErr = n1.TryConnect(p, n0, "svc") // ~90µs later: still down
		p.Sleep(200_000)
		_, upErr = n1.TryConnect(p, n0, "svc") // well past the restart
		env.Stop()
	})
	env.Run()
	if downErr != ErrNodeDown {
		t.Errorf("connect to down node: %v, want ErrNodeDown", downErr)
	}
	if upErr != nil {
		t.Errorf("connect after restart: %v, want success", upErr)
	}
}

// TestCrashPlanDeterministic: two same-seed clusters draw byte-identical
// crash schedules, and the counters report every armed event executed.
func TestCrashPlanDeterministic(t *testing.T) {
	draw := func(seed int64) ([]CrashEvent, int) {
		env := sim.NewEnv(seed)
		cl := NewCluster(env, DefaultConfig())
		plan := cl.InstallCrashes(CrashConfig{
			Nodes:           []int{0, 2, 4},
			MeanUptimeNs:    2_000_000,
			MinUptimeNs:     200_000,
			RestartDelayNs:  300_000,
			RestartJitterNs: 100_000,
			HorizonNs:       20_000_000,
		})
		env.Spawn("horizon", func(p *sim.Proc) {
			p.Sleep(25_000_000)
			env.Stop()
		})
		env.Run()
		return plan.Events(), len(plan.Events())
	}
	a, na := draw(99)
	b, nb := draw(99)
	if na == 0 {
		t.Fatal("schedule drew no events")
	}
	if na != nb {
		t.Fatalf("same seed drew %d vs %d events", na, nb)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("event %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
	for _, ev := range a {
		if ev.At >= sim.Time(20_000_000) {
			t.Errorf("crash at %d beyond horizon", ev.At)
		}
		if ev.BackUp <= ev.At {
			t.Errorf("restart %d not after crash %d", ev.BackUp, ev.At)
		}
	}
}

// TestCrashPlanDisabledDrawsNothing: a zero config must not consume
// randomness (it would perturb every seeded run that merely links the
// feature).
func TestCrashPlanDisabledDrawsNothing(t *testing.T) {
	env := sim.NewEnv(7)
	cl := NewCluster(env, DefaultConfig())
	before := env.Rand().Int63()
	env2 := sim.NewEnv(7)
	cl2 := NewCluster(env2, DefaultConfig())
	plan := cl2.InstallCrashes(CrashConfig{})
	if len(plan.Events()) != 0 {
		t.Fatalf("disabled config drew %d events", len(plan.Events()))
	}
	after := env2.Rand().Int63()
	if before != after {
		t.Error("disabled InstallCrashes consumed randomness")
	}
	_ = cl
}

// TestRestartSpawnsHookAndClearsDown: Restart leaves the node usable
// and runs the restart hook as a node-owned process (killed by the
// next crash).
func TestRestartSpawnsHookAndClearsDown(t *testing.T) {
	env, cl := cluster(15)
	n := cl.Node(0)
	boots := 0
	n.SetRestart(func(p *sim.Proc) {
		boots++
		p.Sleep(1_000_000) // still running at the next crash
	})
	env.At(100, n.Crash)
	env.At(200, n.Restart)
	env.At(300, n.Crash)
	env.At(400, n.Restart)
	env.Run()
	if boots != 2 {
		t.Errorf("restart hook ran %d times, want 2", boots)
	}
	if n.Down() || n.Epoch() != 2 {
		t.Errorf("after two cycles: down=%v epoch=%d, want false/2", n.Down(), n.Epoch())
	}
}
