// Package simnet models the cluster fabric the paper evaluated on: a set
// of nodes, each with a processor-sharing CPU and a NIC attached to a
// full-bisection switch, plus an out-of-band (ethernet/TCP-like) control
// channel used for connection establishment and handshakes.
//
// The fabric is intentionally message-granular: a transfer occupies the
// sender's TX engine for bytes/bandwidth, propagates for a fixed delay,
// and occupies the receiver's RX engine for bytes/bandwidth. Contention on
// either side queues FIFO, which is what makes a many-clients-one-server
// incast saturate at link rate, exactly as on the real cluster.
package simnet

import (
	"fmt"

	"hatrpc/internal/sim"
)

// Config describes the simulated cluster hardware. The defaults mirror
// the paper's testbed (§5.1): 10 nodes, 28-core Skylake, ConnectX-5
// EDR 100 Gbps.
type Config struct {
	Nodes       int
	Cores       int     // cores per node
	Sockets     int     // NUMA sockets per node
	LinkGbps    float64 // NIC line rate
	PropDelayNs int64   // one-way switch propagation
	NUMAPenalty float64 // multiplier on CPU work for NUMA-remote tasks
}

// DefaultConfig returns the paper-testbed configuration.
func DefaultConfig() Config {
	return Config{
		Nodes:       10,
		Cores:       28,
		Sockets:     2,
		LinkGbps:    100,
		PropDelayNs: 600,
		NUMAPenalty: 1.25,
	}
}

// Cluster is a simulated cluster.
type Cluster struct {
	env    *sim.Env
	cfg    Config
	nodes  []*Node
	faults *FaultPlan // nil when fault injection is off
}

// NewCluster builds the nodes described by cfg inside env.
func NewCluster(env *sim.Env, cfg Config) *Cluster {
	if cfg.Nodes < 1 {
		panic("simnet: need at least one node")
	}
	if cfg.Sockets < 1 {
		cfg.Sockets = 1
	}
	c := &Cluster{env: env, cfg: cfg}
	bytesPerNs := cfg.LinkGbps / 8.0 // Gbps → bytes per ns
	for i := 0; i < cfg.Nodes; i++ {
		n := &Node{
			id:        i,
			cluster:   c,
			CPU:       sim.NewCPU(env, cfg.Cores),
			TX:        NewBandwidthGate(env, bytesPerNs),
			RX:        NewBandwidthGate(env, bytesPerNs),
			listeners: make(map[string]*sim.Queue[*Endpoint]),
		}
		c.nodes = append(c.nodes, n)
	}
	return c
}

// Env returns the simulation environment.
func (c *Cluster) Env() *sim.Env { return c.env }

// Config returns the cluster hardware description.
func (c *Cluster) Config() Config { return c.cfg }

// Node returns node i.
func (c *Cluster) Node(i int) *Node { return c.nodes[i] }

// Nodes returns the node count.
func (c *Cluster) Nodes() int { return len(c.nodes) }

// PropDelay returns the one-way fabric propagation delay.
func (c *Cluster) PropDelay() sim.Duration {
	return sim.Duration(c.cfg.PropDelayNs)
}

// Node is one simulated machine.
type Node struct {
	id      int
	cluster *Cluster
	CPU     *sim.CPU
	TX      *BandwidthGate // NIC transmit serialization
	RX      *BandwidthGate // NIC receive serialization

	listeners map[string]*sim.Queue[*Endpoint]
}

// ID returns the node index.
func (n *Node) ID() int { return n.id }

// Cluster returns the owning cluster.
func (n *Node) Cluster() *Cluster { return n.cluster }

// NUMAWork scales a CPU work amount for NUMA placement: bound tasks run
// at 1×, unbound tasks on a multi-socket node pay the remote-socket
// penalty.
func (n *Node) NUMAWork(work sim.Duration, bound bool) sim.Duration {
	if bound || n.cluster.cfg.Sockets <= 1 {
		return work
	}
	return sim.Duration(float64(work) * n.cluster.cfg.NUMAPenalty)
}

// LocalCores returns the cores of one NUMA socket (the NIC-local one).
func (n *Node) LocalCores() int {
	return n.cluster.cfg.Cores / n.cluster.cfg.Sockets
}

// ---------------------------------------------------------------------------
// BandwidthGate: FIFO serialization resource.

// BandwidthGate serializes transfers at a fixed byte rate. Acquisitions
// queue FIFO in arrival order; each occupies the gate for size/rate.
type BandwidthGate struct {
	env        *sim.Env
	bytesPerNs float64
	nextFree   sim.Time
	busyNs     int64 // accumulated occupancy, for utilization accounting
}

// NewBandwidthGate returns a gate with the given rate in bytes/ns.
func NewBandwidthGate(env *sim.Env, bytesPerNs float64) *BandwidthGate {
	if bytesPerNs <= 0 {
		panic("simnet: gate rate must be positive")
	}
	return &BandwidthGate{env: env, bytesPerNs: bytesPerNs}
}

// SerializationTime returns the unloaded time to push size bytes through.
func (g *BandwidthGate) SerializationTime(size int) sim.Duration {
	return sim.Duration(float64(size) / g.bytesPerNs)
}

// Transmit blocks p until size bytes have been serialized through the
// gate, including any FIFO queueing behind earlier transmissions.
func (g *BandwidthGate) Transmit(p *sim.Proc, size int) {
	if size <= 0 {
		return
	}
	now := p.Now()
	start := now
	if g.nextFree > start {
		start = g.nextFree
	}
	ser := g.SerializationTime(size)
	g.nextFree = start + sim.Time(ser)
	g.busyNs += int64(ser)
	p.Sleep(sim.Duration(g.nextFree - now))
}

// Reserve accounts a transmission without blocking the caller; it returns
// the virtual time at which the transfer completes. Used by NIC engines
// that pipeline DMA with transmit.
func (g *BandwidthGate) Reserve(now sim.Time, size int) sim.Time {
	if size <= 0 {
		return now
	}
	start := now
	if g.nextFree > start {
		start = g.nextFree
	}
	ser := g.SerializationTime(size)
	g.nextFree = start + sim.Time(ser)
	g.busyNs += int64(ser)
	return g.nextFree
}

// BusyNs returns total accumulated occupancy in nanoseconds, including
// reservations that extend into the future (the raw value; see
// ReservedAheadNs).
func (g *BandwidthGate) BusyNs() int64 { return g.busyNs }

// ReservedAheadNs returns the portion of accumulated occupancy that has
// been reserved but not yet elapsed at time now. Reservations are FIFO,
// so the not-yet-elapsed part is exactly the contiguous tail ending at
// nextFree.
func (g *BandwidthGate) ReservedAheadNs(now sim.Time) int64 {
	if g.nextFree > now {
		return int64(g.nextFree - now)
	}
	return 0
}

// CompletedBusyNs returns occupancy that has actually elapsed by now —
// busyNs minus the reserved-ahead tail — so it never exceeds elapsed
// virtual time.
func (g *BandwidthGate) CompletedBusyNs(now sim.Time) int64 {
	return g.busyNs - g.ReservedAheadNs(now)
}

// Utilization returns completed occupancy as a fraction of elapsed
// virtual time, always in [0, 1]. Reserve accounts transfers that extend
// into the future; that in-flight tail is excluded here (it previously
// made the gauge read >1 early in a run) and remains available via
// BusyNs/ReservedAheadNs for the pipeline-depth trace.
func (g *BandwidthGate) Utilization(now sim.Time) float64 {
	if now <= 0 {
		return 0
	}
	return float64(g.CompletedBusyNs(now)) / float64(now)
}

// ---------------------------------------------------------------------------
// Out-of-band control channel (ethernet/TCP analog).

const (
	oobBaseDelayNs  = 15000 // ~15µs per OOB message, kernel TCP path
	oobBytesPerNs   = 1.25  // 10 Gbps management network
	oobConnectDelay = 90000 // ~3-way handshake + accept wakeup
)

// Endpoint is one side of an established out-of-band connection. It
// carries arbitrary control payloads with TCP-like cost; it is used for
// RDMA connection handshakes (QP/buffer exchange) and by the IPoIB
// transport.
type Endpoint struct {
	local, remote *Node
	in            *sim.Queue[oobMsg]
	peer          *Endpoint
	closed        bool
}

type oobMsg struct {
	payload any
	size    int
}

// Listen registers (or returns) the accept queue for a named port on the
// node. Accept blocks a server process until a client connects.
func (n *Node) Listen(port string) *Listener {
	q, ok := n.listeners[port]
	if !ok {
		q = sim.NewQueue[*Endpoint](n.cluster.env)
		n.listeners[port] = q
	}
	return &Listener{node: n, port: port, q: q}
}

// Listener accepts OOB connections on a node port.
type Listener struct {
	node *Node
	port string
	q    *sim.Queue[*Endpoint]
}

// Accept blocks until a client connects, returning the server-side
// endpoint.
func (l *Listener) Accept(p *sim.Proc) *Endpoint { return l.q.Pop(p) }

// Connect establishes an OOB connection from node n to the named port on
// the target node, blocking p for the handshake latency. It panics if the
// port has no listener registered (a configuration error in tests).
func (n *Node) Connect(p *sim.Proc, target *Node, port string) *Endpoint {
	q, ok := target.listeners[port]
	if !ok {
		panic(fmt.Sprintf("simnet: connect to node %d port %q: no listener", target.id, port))
	}
	client := &Endpoint{local: n, remote: target, in: sim.NewQueue[oobMsg](n.cluster.env)}
	server := &Endpoint{local: target, remote: n, in: sim.NewQueue[oobMsg](n.cluster.env)}
	client.peer, server.peer = server, client
	p.Sleep(oobConnectDelay)
	q.Push(server)
	return client
}

// LocalNode returns the node this endpoint lives on.
func (ep *Endpoint) LocalNode() *Node { return ep.local }

// RemoteNode returns the node on the other side.
func (ep *Endpoint) RemoteNode() *Node { return ep.remote }

// Send ships payload (accounted as size bytes) to the peer, blocking the
// sender for the local kernel-path cost; delivery is asynchronous after
// the wire delay.
func (ep *Endpoint) Send(p *sim.Proc, payload any, size int) {
	if ep.closed {
		panic("simnet: send on closed endpoint")
	}
	env := ep.local.cluster.env
	wire := sim.Duration(oobBaseDelayNs + float64(size)/oobBytesPerNs)
	peer := ep.peer
	msg := oobMsg{payload: payload, size: size}
	p.Sleep(2000) // sender syscall + copy
	env.After(wire, func() { peer.in.Push(msg) })
}

// Recv blocks until a payload arrives and returns it.
func (ep *Endpoint) Recv(p *sim.Proc) any {
	m := ep.in.Pop(p)
	return m.payload
}

// TryRecv returns a payload if one is queued.
func (ep *Endpoint) TryRecv() (any, bool) {
	m, ok := ep.in.TryPop()
	if !ok {
		return nil, false
	}
	return m.payload, true
}

// Close marks the endpoint closed (sends panic afterwards).
func (ep *Endpoint) Close() { ep.closed = true }
