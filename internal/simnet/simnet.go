// Package simnet models the cluster fabric the paper evaluated on: a set
// of nodes, each with a processor-sharing CPU and a NIC attached to a
// full-bisection switch, plus an out-of-band (ethernet/TCP-like) control
// channel used for connection establishment and handshakes.
//
// The fabric is intentionally message-granular: a transfer occupies the
// sender's TX engine for bytes/bandwidth, propagates for a fixed delay,
// and occupies the receiver's RX engine for bytes/bandwidth. Contention on
// either side queues FIFO, which is what makes a many-clients-one-server
// incast saturate at link rate, exactly as on the real cluster.
package simnet

import (
	"errors"
	"fmt"

	"hatrpc/internal/sim"
)

// ErrNodeDown reports a connection attempt to a node that is currently
// crashed (or whose listener vanished with a crash).
var ErrNodeDown = errors.New("simnet: node is down")

// ErrNoListener reports a connection attempt to a port nobody listens
// on. On a healthy static cluster this is a configuration error (Connect
// panics); during crash–restart churn it is an expected transient state
// (TryConnect returns it).
var ErrNoListener = errors.New("simnet: no listener on port")

// Config describes the simulated cluster hardware. The defaults mirror
// the paper's testbed (§5.1): 10 nodes, 28-core Skylake, ConnectX-5
// EDR 100 Gbps.
type Config struct {
	Nodes       int
	Cores       int     // cores per node
	Sockets     int     // NUMA sockets per node
	LinkGbps    float64 // NIC line rate
	PropDelayNs int64   // one-way switch propagation
	NUMAPenalty float64 // multiplier on CPU work for NUMA-remote tasks
}

// DefaultConfig returns the paper-testbed configuration.
func DefaultConfig() Config {
	return Config{
		Nodes:       10,
		Cores:       28,
		Sockets:     2,
		LinkGbps:    100,
		PropDelayNs: 600,
		NUMAPenalty: 1.25,
	}
}

// Cluster is a simulated cluster.
type Cluster struct {
	env    *sim.Env
	cfg    Config
	nodes  []*Node
	faults *FaultPlan // nil when fault injection is off
}

// NewCluster builds the nodes described by cfg inside env.
func NewCluster(env *sim.Env, cfg Config) *Cluster {
	if cfg.Nodes < 1 {
		panic("simnet: need at least one node")
	}
	if cfg.Sockets < 1 {
		cfg.Sockets = 1
	}
	c := &Cluster{env: env, cfg: cfg}
	bytesPerNs := cfg.LinkGbps / 8.0 // Gbps → bytes per ns
	for i := 0; i < cfg.Nodes; i++ {
		n := &Node{
			id:        i,
			cluster:   c,
			CPU:       sim.NewCPU(env, cfg.Cores),
			TX:        NewBandwidthGate(env, bytesPerNs),
			RX:        NewBandwidthGate(env, bytesPerNs),
			listeners: make(map[string]*sim.Queue[*Endpoint]),
		}
		c.nodes = append(c.nodes, n)
	}
	return c
}

// Env returns the simulation environment.
func (c *Cluster) Env() *sim.Env { return c.env }

// Config returns the cluster hardware description.
func (c *Cluster) Config() Config { return c.cfg }

// Node returns node i.
func (c *Cluster) Node(i int) *Node { return c.nodes[i] }

// Nodes returns the node count.
func (c *Cluster) Nodes() int { return len(c.nodes) }

// PropDelay returns the one-way fabric propagation delay.
func (c *Cluster) PropDelay() sim.Duration {
	return sim.Duration(c.cfg.PropDelayNs)
}

// Node is one simulated machine.
type Node struct {
	id      int
	cluster *Cluster
	CPU     *sim.CPU
	TX      *BandwidthGate // NIC transmit serialization
	RX      *BandwidthGate // NIC receive serialization

	listeners map[string]*sim.Queue[*Endpoint]

	// Crash–restart lifecycle (DESIGN.md §12). epoch counts boots: it
	// increments on every crash, so messages and rkeys minted in an
	// earlier life of the node can be recognized as stale.
	down    bool
	epoch   uint64
	procs   []*sim.Proc       // live processes owned by this node
	onCrash []func()          // device/store teardown hooks, run in registration order
	restart func(p *sim.Proc) // re-provisioning hook, run after the restart delay
}

// ID returns the node index.
func (n *Node) ID() int { return n.id }

// Cluster returns the owning cluster.
func (n *Node) Cluster() *Cluster { return n.cluster }

// Down reports whether the node is currently crashed.
func (n *Node) Down() bool { return n.down }

// Epoch returns the node's boot epoch (0 for the first life, incremented
// by every crash).
func (n *Node) Epoch() uint64 { return n.epoch }

// Spawn starts fn as a simulation process owned by this node: when the
// node crashes, the process is killed (its defers run). All processes
// that model software running on a node must be spawned through this —
// a bare env.Spawn survives the machine losing power, which no software
// does.
func (n *Node) Spawn(name string, fn func(p *sim.Proc)) *sim.Proc {
	pr := n.cluster.env.Spawn(name, fn)
	n.procs = append(n.procs, pr)
	return pr
}

// OnCrash registers a teardown hook run when the node crashes, after its
// processes have been killed. Hooks model hardware/state consequences of
// power loss: the NIC invalidating its protection state, the store
// rolling volatile pages back to the durable root.
func (n *Node) OnCrash(fn func()) { n.onCrash = append(n.onCrash, fn) }

// SetRestart installs the re-provisioning hook: it runs as a fresh
// process once the restart delay elapses, and is expected to rebuild the
// node's software stack (device, engine, server) from scratch.
func (n *Node) SetRestart(fn func(p *sim.Proc)) { n.restart = fn }

// Crash models an abrupt power loss: every node-owned process is killed
// (deferred cleanup runs), crash hooks fire, and the node's listeners
// vanish so in-flight and future connection attempts fail. Messages
// already in the fabric addressed to (or sent by) this boot epoch are
// dropped on delivery. Idempotent while down. Must not be called from a
// process owned by this node (a process cannot kill itself).
func (n *Node) Crash() {
	if n.down {
		return
	}
	n.down = true
	n.epoch++
	env := n.cluster.env
	for _, pr := range n.procs {
		env.Kill(pr)
	}
	n.procs = nil
	// Snapshot-and-clear before running: hooks for per-boot state (the
	// NIC) die with the boot, while durable media (a store) re-register
	// themselves from inside their hook to survive into the next life.
	hooks := n.onCrash
	n.onCrash = nil
	for _, fn := range hooks {
		fn()
	}
	n.listeners = make(map[string]*sim.Queue[*Endpoint])
}

// Restart brings a crashed node back up and runs its restart hook (if
// any) as a new node-owned process. A no-op if the node is not down.
func (n *Node) Restart() {
	if !n.down {
		return
	}
	n.down = false
	if n.restart != nil {
		fn := n.restart
		n.Spawn(fmt.Sprintf("restart-%d", n.id), fn)
	}
}

// NUMAWork scales a CPU work amount for NUMA placement: bound tasks run
// at 1×, unbound tasks on a multi-socket node pay the remote-socket
// penalty.
func (n *Node) NUMAWork(work sim.Duration, bound bool) sim.Duration {
	if bound || n.cluster.cfg.Sockets <= 1 {
		return work
	}
	return sim.Duration(float64(work) * n.cluster.cfg.NUMAPenalty)
}

// LocalCores returns the cores of one NUMA socket (the NIC-local one).
func (n *Node) LocalCores() int {
	return n.cluster.cfg.Cores / n.cluster.cfg.Sockets
}

// ---------------------------------------------------------------------------
// BandwidthGate: FIFO serialization resource.

// BandwidthGate serializes transfers at a fixed byte rate. Acquisitions
// queue FIFO in arrival order; each occupies the gate for size/rate.
type BandwidthGate struct {
	env        *sim.Env
	bytesPerNs float64
	nextFree   sim.Time
	busyNs     int64 // accumulated occupancy, for utilization accounting
}

// NewBandwidthGate returns a gate with the given rate in bytes/ns.
func NewBandwidthGate(env *sim.Env, bytesPerNs float64) *BandwidthGate {
	if bytesPerNs <= 0 {
		panic("simnet: gate rate must be positive")
	}
	return &BandwidthGate{env: env, bytesPerNs: bytesPerNs}
}

// SerializationTime returns the unloaded time to push size bytes through.
func (g *BandwidthGate) SerializationTime(size int) sim.Duration {
	return sim.Duration(float64(size) / g.bytesPerNs)
}

// Transmit blocks p until size bytes have been serialized through the
// gate, including any FIFO queueing behind earlier transmissions.
func (g *BandwidthGate) Transmit(p *sim.Proc, size int) {
	if size <= 0 {
		return
	}
	now := p.Now()
	start := now
	if g.nextFree > start {
		start = g.nextFree
	}
	ser := g.SerializationTime(size)
	g.nextFree = start + sim.Time(ser)
	g.busyNs += int64(ser)
	p.Sleep(sim.Duration(g.nextFree - now))
}

// Reserve accounts a transmission without blocking the caller; it returns
// the virtual time at which the transfer completes. Used by NIC engines
// that pipeline DMA with transmit.
func (g *BandwidthGate) Reserve(now sim.Time, size int) sim.Time {
	if size <= 0 {
		return now
	}
	start := now
	if g.nextFree > start {
		start = g.nextFree
	}
	ser := g.SerializationTime(size)
	g.nextFree = start + sim.Time(ser)
	g.busyNs += int64(ser)
	return g.nextFree
}

// BusyNs returns total accumulated occupancy in nanoseconds, including
// reservations that extend into the future (the raw value; see
// ReservedAheadNs).
func (g *BandwidthGate) BusyNs() int64 { return g.busyNs }

// ReservedAheadNs returns the portion of accumulated occupancy that has
// been reserved but not yet elapsed at time now. Reservations are FIFO,
// so the not-yet-elapsed part is exactly the contiguous tail ending at
// nextFree.
func (g *BandwidthGate) ReservedAheadNs(now sim.Time) int64 {
	if g.nextFree > now {
		return int64(g.nextFree - now)
	}
	return 0
}

// CompletedBusyNs returns occupancy that has actually elapsed by now —
// busyNs minus the reserved-ahead tail — so it never exceeds elapsed
// virtual time.
func (g *BandwidthGate) CompletedBusyNs(now sim.Time) int64 {
	return g.busyNs - g.ReservedAheadNs(now)
}

// Utilization returns completed occupancy as a fraction of elapsed
// virtual time, always in [0, 1]. Reserve accounts transfers that extend
// into the future; that in-flight tail is excluded here (it previously
// made the gauge read >1 early in a run) and remains available via
// BusyNs/ReservedAheadNs for the pipeline-depth trace.
func (g *BandwidthGate) Utilization(now sim.Time) float64 {
	if now <= 0 {
		return 0
	}
	return float64(g.CompletedBusyNs(now)) / float64(now)
}

// ---------------------------------------------------------------------------
// Out-of-band control channel (ethernet/TCP analog).

const (
	oobBaseDelayNs  = 15000 // ~15µs per OOB message, kernel TCP path
	oobBytesPerNs   = 1.25  // 10 Gbps management network
	oobConnectDelay = 90000 // ~3-way handshake + accept wakeup
)

// Endpoint is one side of an established out-of-band connection. It
// carries arbitrary control payloads with TCP-like cost; it is used for
// RDMA connection handshakes (QP/buffer exchange) and by the IPoIB
// transport.
type Endpoint struct {
	local, remote *Node
	in            *sim.Queue[oobMsg]
	peer          *Endpoint
	closed        bool
}

type oobMsg struct {
	payload any
	size    int
}

// Listen registers (or returns) the accept queue for a named port on the
// node. Accept blocks a server process until a client connects.
func (n *Node) Listen(port string) *Listener {
	q, ok := n.listeners[port]
	if !ok {
		q = sim.NewQueue[*Endpoint](n.cluster.env)
		n.listeners[port] = q
	}
	return &Listener{node: n, port: port, q: q}
}

// Listener accepts OOB connections on a node port.
type Listener struct {
	node *Node
	port string
	q    *sim.Queue[*Endpoint]
}

// Accept blocks until a client connects, returning the server-side
// endpoint.
func (l *Listener) Accept(p *sim.Proc) *Endpoint { return l.q.Pop(p) }

// Connect establishes an OOB connection from node n to the named port on
// the target node, blocking p for the handshake latency. It panics if the
// target is down or the port has no listener registered (a configuration
// error on a static cluster; crash-aware callers use TryConnect).
func (n *Node) Connect(p *sim.Proc, target *Node, port string) *Endpoint {
	ep, err := n.TryConnect(p, target, port)
	if err != nil {
		panic(fmt.Sprintf("simnet: connect to node %d port %q: %v", target.id, port, err))
	}
	return ep
}

// TryConnect is Connect for a fabric where the target may be crashed: it
// returns ErrNodeDown or ErrNoListener instead of panicking. The
// handshake latency is paid before the outcome is known (SYN goes out
// either way), and a target that crashes mid-handshake orphans the
// half-open connection — the pushed accept endpoint lands in a listener
// queue that died with the node.
func (n *Node) TryConnect(p *sim.Proc, target *Node, port string) (*Endpoint, error) {
	p.Sleep(oobConnectDelay)
	if target.down {
		return nil, ErrNodeDown
	}
	// A severed link (partition or scripted one-way cut) kills the
	// handshake in either direction: the SYN or the SYN-ACK is lost, and
	// to the caller that is indistinguishable from a dead node. Drops and
	// flaps deliberately do NOT apply here — the OOB channel models a
	// retrying kernel TCP path that rides out transient loss.
	if f := n.cluster.faults; f != nil {
		now := n.cluster.env.Now()
		if f.Severed(n.id, target.id, now) || f.Severed(target.id, n.id, now) {
			return nil, ErrNodeDown
		}
	}
	q, ok := target.listeners[port]
	if !ok {
		return nil, ErrNoListener
	}
	client := &Endpoint{local: n, remote: target, in: sim.NewQueue[oobMsg](n.cluster.env)}
	server := &Endpoint{local: target, remote: n, in: sim.NewQueue[oobMsg](n.cluster.env)}
	client.peer, server.peer = server, client
	q.Push(server)
	return client, nil
}

// LocalNode returns the node this endpoint lives on.
func (ep *Endpoint) LocalNode() *Node { return ep.local }

// RemoteNode returns the node on the other side.
func (ep *Endpoint) RemoteNode() *Node { return ep.remote }

// Send ships payload (accounted as size bytes) to the peer, blocking the
// sender for the local kernel-path cost; delivery is asynchronous after
// the wire delay.
func (ep *Endpoint) Send(p *sim.Proc, payload any, size int) {
	if ep.closed {
		panic("simnet: send on closed endpoint")
	}
	env := ep.local.cluster.env
	wire := sim.Duration(oobBaseDelayNs + float64(size)/oobBytesPerNs)
	peer := ep.peer
	msg := oobMsg{payload: payload, size: size}
	// A crash of either end while the message is in flight drops it: the
	// receiver's sockets died with its boot epoch, and a sender reboot
	// orphans connections from its previous life.
	src, dst := ep.local, peer.local
	srcEpoch, dstEpoch := src.epoch, dst.epoch
	p.Sleep(2000) // sender syscall + copy
	// Partition cuts sever the control channel too (kernel TCP retries
	// cannot cross a cut link); random drops and flaps do not.
	if f := src.cluster.faults; f != nil && f.Severed(src.id, dst.id, env.Now()) {
		return
	}
	env.After(wire, func() {
		if src.epoch != srcEpoch || dst.epoch != dstEpoch || dst.down {
			return
		}
		peer.in.Push(msg)
	})
}

// Recv blocks until a payload arrives and returns it.
func (ep *Endpoint) Recv(p *sim.Proc) any {
	m := ep.in.Pop(p)
	return m.payload
}

// RecvUntil blocks until a payload arrives or virtual time reaches the
// absolute deadline until. ok is false on timeout. Handshakes with a
// peer that may crash mid-exchange must use this instead of Recv, which
// would park forever on a connection whose other end died.
func (ep *Endpoint) RecvUntil(p *sim.Proc, until sim.Time) (any, bool) {
	m, ok := ep.in.PopUntil(p, until)
	if !ok {
		return nil, false
	}
	return m.payload, true
}

// TryRecv returns a payload if one is queued.
func (ep *Endpoint) TryRecv() (any, bool) {
	m, ok := ep.in.TryPop()
	if !ok {
		return nil, false
	}
	return m.payload, true
}

// Close marks the endpoint closed (sends panic afterwards).
func (ep *Endpoint) Close() { ep.closed = true }
