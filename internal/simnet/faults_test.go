package simnet

import (
	"testing"

	"hatrpc/internal/sim"
)

func faultCluster(seed int64) (*sim.Env, *Cluster) {
	env := sim.NewEnv(seed)
	cl := NewCluster(env, Config{
		Nodes: 3, Cores: 28, Sockets: 2, LinkGbps: 100, PropDelayNs: 600, NUMAPenalty: 1.25,
	})
	return env, cl
}

func TestInstallFaultsZeroConfigStaysOff(t *testing.T) {
	_, cl := faultCluster(1)
	if cl.InstallFaults(FaultConfig{}); cl.Faults() != nil {
		t.Fatal("zero-valued config installed an active fault plan")
	}
	if cl.InstallFaults(FaultConfig{DropProb: 0.1}); cl.Faults() == nil {
		t.Fatal("non-zero config did not install")
	}
	// Re-installing a disabled config turns faults back off.
	if cl.InstallFaults(FaultConfig{}); cl.Faults() != nil {
		t.Fatal("re-install with zero config did not clear the plan")
	}
}

func TestFaultOutcomeDropRate(t *testing.T) {
	_, cl := faultCluster(2)
	fp := cl.InstallFaults(FaultConfig{DropProb: 0.1})
	drops := 0
	const n = 10_000
	for i := 0; i < n; i++ {
		if drop, extra := fp.Outcome(0, 1); drop {
			drops++
		} else if extra != 0 {
			t.Fatalf("jitter disabled but extra = %d", extra)
		}
	}
	if drops < n/20 || drops > n/5 {
		t.Fatalf("drop rate %d/%d far from configured 10%%", drops, n)
	}
}

func TestFaultOutcomeJitterBounded(t *testing.T) {
	_, cl := faultCluster(3)
	fp := cl.InstallFaults(FaultConfig{JitterNs: 500})
	seen := false
	for i := 0; i < 1000; i++ {
		drop, extra := fp.Outcome(0, 1)
		if drop {
			t.Fatal("drop with DropProb 0")
		}
		if extra < 0 || extra >= 500 {
			t.Fatalf("jitter %d outside [0,500)", extra)
		}
		if extra > 0 {
			seen = true
		}
	}
	if !seen {
		t.Fatal("jitter never non-zero over 1000 draws")
	}
}

func TestFaultLinkFlapWindows(t *testing.T) {
	env, cl := faultCluster(4)
	fp := cl.InstallFaults(FaultConfig{FlapPeriodNs: 10_000, FlapDownNs: 2_000})
	// Sample the directed link over several periods: ~20% of evenly spaced
	// instants must fall in a down window, and down instants must recur
	// with the configured period.
	down := 0
	const samples = 1000
	for i := 0; i < samples; i++ {
		if fp.linkDown(0, 1, sim.Time(i*100)) {
			down++
		}
	}
	if down < samples/10 || down > samples/3 {
		t.Fatalf("link down %d/%d samples, configured 20%%", down, samples)
	}
	for tm := sim.Time(0); tm < 10_000; tm++ {
		if fp.linkDown(0, 1, tm) != fp.linkDown(0, 1, tm+10_000) {
			t.Fatalf("flap window not periodic at t=%d", tm)
		}
	}
	_ = env
}

func TestFaultPauseDelaysDestination(t *testing.T) {
	_, cl := faultCluster(5)
	fp := cl.InstallFaults(FaultConfig{
		PausePeriodNs: 10_000, PauseForNs: 3_000, PausedNodes: []int{1},
	})
	// Node 2 is not in PausedNodes: never paused.
	for tm := sim.Time(0); tm < 20_000; tm += 100 {
		if fp.pauseRemaining(2, tm) != 0 {
			t.Fatal("unlisted node reported paused")
		}
	}
	// Node 1 must be paused ~30% of the time, and the remaining pause must
	// count down to the window edge.
	paused := 0
	for tm := sim.Time(0); tm < 100_000; tm++ {
		if r := fp.pauseRemaining(1, tm); r > 0 {
			paused++
			if r > 3_000 {
				t.Fatalf("pauseRemaining %d exceeds window", r)
			}
		}
	}
	if paused < 25_000 || paused > 35_000 {
		t.Fatalf("node paused %d/100000 ns, configured 30%%", paused)
	}
}

func TestFaultPhasesSeedDeterministic(t *testing.T) {
	plan := func(seed int64) *FaultPlan {
		_, cl := faultCluster(seed)
		return cl.InstallFaults(FaultConfig{
			FlapPeriodNs: 10_000, FlapDownNs: 2_000,
			PausePeriodNs: 10_000, PauseForNs: 1_000, PausedNodes: []int{0, 1, 2},
		})
	}
	a, b := plan(7), plan(7)
	for link, ph := range a.flapPhase {
		if b.flapPhase[link] != ph {
			t.Fatalf("same seed, different flap phase for link %v", link)
		}
	}
	for node, ph := range a.pausePhase {
		if b.pausePhase[node] != ph {
			t.Fatalf("same seed, different pause phase for node %d", node)
		}
	}
	c := plan(8)
	same := true
	for link, ph := range a.flapPhase {
		if c.flapPhase[link] != ph {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds drew identical flap phases")
	}
}

// TestGateUtilizationNeverExceedsOne is the regression for the
// reserved-vs-completed split: Reserve may book occupancy far beyond now
// (pipelined transfers), and the old busyNs/now ratio reported >1.
func TestGateUtilizationNeverExceedsOne(t *testing.T) {
	_, cl := faultCluster(9)
	g := cl.Node(0).RX
	// Book 10 back-to-back 1µs transfers at t=0: busyNs = 10_000 while
	// only the first slice has elapsed by t=1000.
	for i := 0; i < 10; i++ {
		g.Reserve(0, 12500)
	}
	if got := g.BusyNs(); got != 10_000 {
		t.Fatalf("BusyNs = %d, want 10000 (raw occupancy keeps reserved-ahead)", got)
	}
	for _, now := range []sim.Time{1, 500, 1000, 5000, 9999, 10_000, 20_000} {
		u := g.Utilization(now)
		if u < 0 || u > 1 {
			t.Fatalf("Utilization(%d) = %f, want within [0,1]", now, u)
		}
	}
	// Fully elapsed: the gate was busy 10µs out of 10µs.
	if u := g.Utilization(10_000); u != 1 {
		t.Fatalf("Utilization at completion = %f, want 1", u)
	}
	// Half elapsed: exactly half the occupancy has completed.
	if u := g.Utilization(5_000); u != 1 {
		t.Fatalf("Utilization mid-stream = %f, want 1 (gate saturated)", u)
	}
	if r := g.ReservedAheadNs(5_000); r != 5_000 {
		t.Fatalf("ReservedAheadNs(5000) = %d, want 5000", r)
	}
	if c := g.CompletedBusyNs(5_000); c != 5_000 {
		t.Fatalf("CompletedBusyNs(5000) = %d, want 5000", c)
	}
}

func TestPartitionDisabledConfigsStayOff(t *testing.T) {
	_, cl := faultCluster(11)
	// Partition needs period, duration AND at least two listed nodes:
	// anything less must not enable the plan (or, combined with other
	// faults, must never sever), so pre-partition configs replay
	// byte-identically after this feature.
	for _, cfg := range []FaultConfig{
		{PartitionPeriodNs: 10_000},
		{PartitionForNs: 2_000},
		{PartitionPeriodNs: 10_000, PartitionForNs: 2_000, PartitionNodes: []int{0}},
	} {
		if cl.InstallFaults(cfg); cl.Faults() != nil {
			t.Fatalf("partial partition config %+v installed a plan", cfg)
		}
	}
	fp := cl.InstallFaults(FaultConfig{DropProb: 0.1})
	for tm := sim.Time(0); tm < 100_000; tm += 500 {
		if fp.Severed(0, 1, tm) {
			t.Fatal("Severed fired with partitioning disabled")
		}
	}
}

func TestPartitionSeversBothDirections(t *testing.T) {
	env, cl := faultCluster(12)
	fp := cl.InstallFaults(FaultConfig{
		PartitionPeriodNs: 10_000, PartitionForNs: 3_000, PartitionNodes: []int{0, 1},
	})
	severed := 0
	const samples = 10_000
	for i := 0; i < samples; i++ {
		tm := sim.Time(i * 37)
		a, b := fp.Severed(0, 1, tm), fp.Severed(1, 0, tm)
		if a != b {
			t.Fatalf("partition asymmetric at t=%d: %v vs %v", tm, a, b)
		}
		if a {
			severed++
		}
		// Node 2 is outside PartitionNodes: never cut.
		if fp.Severed(0, 2, tm) || fp.Severed(2, 1, tm) {
			t.Fatalf("unlisted node severed at t=%d", tm)
		}
	}
	// Two nodes land on opposite sides in ~half the windows, and windows
	// are open 30% of the time: expect ~15% severed samples.
	if severed < samples/20 || severed > samples/3 {
		t.Fatalf("severed %d/%d samples, expected ~15%%", severed, samples)
	}
	// A severed instant must also drop on the fabric path: schedule the
	// Outcome check inside a severed window and run the sim to it.
	var windowAt sim.Time
	for i := 0; i < samples; i++ {
		if tm := sim.Time(i * 37); fp.Severed(0, 1, tm) {
			windowAt = tm
			break
		}
	}
	if windowAt == 0 {
		t.Fatal("no severed window sampled")
	}
	checked := false
	env.At(windowAt, func() {
		checked = true
		if drop, _ := fp.Outcome(0, 1); !drop {
			t.Errorf("Outcome did not drop during a severed window at t=%d", windowAt)
		}
		env.Stop()
	})
	env.Run()
	if !checked {
		t.Fatal("scheduled Outcome check never ran")
	}
}

func TestOneWayCutsAreDirectional(t *testing.T) {
	_, cl := faultCluster(13)
	fp := cl.InstallFaults(FaultConfig{
		OneWayCuts: []LinkCut{{From: 0, To: 1, StartNs: 5_000, EndNs: 8_000}},
	})
	for tm := sim.Time(0); tm < 12_000; tm += 100 {
		fwd := fp.Severed(0, 1, tm)
		rev := fp.Severed(1, 0, tm)
		want := tm >= 5_000 && tm < 8_000
		if fwd != want {
			t.Fatalf("forward cut at t=%d: got %v want %v", tm, fwd, want)
		}
		if rev {
			t.Fatalf("reverse direction cut at t=%d — one-way cut leaked", tm)
		}
	}
}

func TestPartitionSeedDeterministic(t *testing.T) {
	plan := func(seed int64) *FaultPlan {
		_, cl := faultCluster(seed)
		return cl.InstallFaults(FaultConfig{
			PartitionPeriodNs: 10_000, PartitionForNs: 3_000, PartitionNodes: []int{0, 1, 2},
		})
	}
	a, b := plan(7), plan(7)
	if a.partPhase != b.partPhase {
		t.Fatalf("same seed, different partition phase: %d vs %d", a.partPhase, b.partPhase)
	}
	for n, s := range a.partSide {
		if b.partSide[n] != s {
			t.Fatalf("same seed, different side draw for node %d", n)
		}
	}
	c := plan(8)
	if c.partPhase == a.partPhase {
		t.Error("different seeds drew identical partition phases")
	}
}
