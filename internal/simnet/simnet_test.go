package simnet

import (
	"testing"

	"hatrpc/internal/sim"
)

func cluster(seed int64) (*sim.Env, *Cluster) {
	env := sim.NewEnv(seed)
	return env, NewCluster(env, DefaultConfig())
}

func TestDefaultConfigMatchesPaperTestbed(t *testing.T) {
	cfg := DefaultConfig()
	if cfg.Nodes != 10 || cfg.Cores != 28 || cfg.LinkGbps != 100 || cfg.Sockets != 2 {
		t.Fatalf("default config %+v does not match §5.1", cfg)
	}
}

func TestBandwidthGateSerialization(t *testing.T) {
	env, cl := cluster(1)
	n := cl.Node(0)
	// 12.5 KB at 12.5 B/ns = 1000ns.
	var done sim.Time
	env.Spawn("tx", func(p *sim.Proc) {
		n.TX.Transmit(p, 12500)
		done = p.Now()
	})
	env.Run()
	if done != 1000 {
		t.Fatalf("transmit took %d, want 1000", done)
	}
}

func TestBandwidthGateFIFOQueueing(t *testing.T) {
	env, cl := cluster(2)
	n := cl.Node(0)
	var first, second sim.Time
	env.Spawn("a", func(p *sim.Proc) {
		n.TX.Transmit(p, 12500)
		first = p.Now()
	})
	env.Spawn("b", func(p *sim.Proc) {
		n.TX.Transmit(p, 12500)
		second = p.Now()
	})
	env.Run()
	if first != 1000 || second != 2000 {
		t.Fatalf("FIFO gate: first %d second %d, want 1000/2000", first, second)
	}
}

func TestBandwidthGateReserve(t *testing.T) {
	env, cl := cluster(3)
	g := cl.Node(0).RX
	t1 := g.Reserve(0, 12500)
	t2 := g.Reserve(0, 12500)
	if t1 != 1000 || t2 != 2000 {
		t.Fatalf("Reserve = %d, %d", t1, t2)
	}
	if g.BusyNs() != 2000 {
		t.Fatalf("BusyNs = %d", g.BusyNs())
	}
	_ = env
}

func TestOOBConnectAndExchange(t *testing.T) {
	env, cl := cluster(4)
	var got string
	env.Spawn("server", func(p *sim.Proc) {
		ln := cl.Node(0).Listen("ctrl")
		ep := ln.Accept(p)
		got = ep.Recv(p).(string)
		ep.Send(p, "ack:"+got, 16)
	})
	var reply string
	env.Spawn("client", func(p *sim.Proc) {
		ep := cl.Node(1).Connect(p, cl.Node(0), "ctrl")
		ep.Send(p, "hello", 5)
		reply = ep.Recv(p).(string)
	})
	env.Run()
	if got != "hello" || reply != "ack:hello" {
		t.Fatalf("exchange: got %q reply %q", got, reply)
	}
	// OOB must be slow (kernel TCP path): tens of microseconds.
	if env.Now() < 50_000 {
		t.Fatalf("OOB exchange completed in %dns; too fast for the control path", env.Now())
	}
}

func TestConnectUnknownPortPanics(t *testing.T) {
	env, cl := cluster(5)
	env.Spawn("client", func(p *sim.Proc) {
		defer func() {
			if recover() == nil {
				t.Error("connect to missing listener did not panic")
			}
			env.Stop()
		}()
		cl.Node(1).Connect(p, cl.Node(0), "nope")
	})
	env.Run()
}

func TestNUMAWorkPenalty(t *testing.T) {
	_, cl := cluster(6)
	n := cl.Node(0)
	if n.NUMAWork(1000, true) != 1000 {
		t.Fatal("bound work must be unscaled")
	}
	if n.NUMAWork(1000, false) != 1250 {
		t.Fatalf("unbound work = %d, want 1250 (1.25x)", n.NUMAWork(1000, false))
	}
	if n.LocalCores() != 14 {
		t.Fatalf("LocalCores = %d, want 14 (28 cores / 2 sockets)", n.LocalCores())
	}
}

func TestSingleSocketNoPenalty(t *testing.T) {
	env := sim.NewEnv(7)
	cfg := DefaultConfig()
	cfg.Sockets = 1
	cl := NewCluster(env, cfg)
	if cl.Node(0).NUMAWork(1000, false) != 1000 {
		t.Fatal("single-socket node must not pay NUMA penalty")
	}
}

func TestClusterAccessors(t *testing.T) {
	env, cl := cluster(8)
	if cl.Nodes() != 10 || cl.Node(3).ID() != 3 {
		t.Fatal("node accessors")
	}
	if cl.Env() != env {
		t.Fatal("env accessor")
	}
	if cl.PropDelay() != 600 {
		t.Fatalf("prop delay = %d", cl.PropDelay())
	}
	if cl.Node(2).Cluster() != cl {
		t.Fatal("cluster backref")
	}
}
