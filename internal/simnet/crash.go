// Crash scheduling for the simulated cluster. A CrashPlan is a
// deterministic, seeded crash–restart schedule installed on a Cluster:
// each eligible node alternates exponentially-distributed uptime windows
// with a (jittered) restart delay. At a crash time the node's processes
// are killed, its in-flight messages dropped and its crash hooks run
// (Node.Crash); after the restart delay its restart hook re-provisions
// it (Node.Restart).
//
// Determinism: the whole schedule is drawn eagerly at InstallCrashes
// from sim.Env.Rand() in node-ID order, so one seed yields one
// reproducible sequence of CrashEvents and two same-seed runs are
// byte-identical. A config that enables nothing draws nothing.
package simnet

import (
	"math"

	"hatrpc/internal/obs"
	"hatrpc/internal/sim"
)

// CrashConfig describes the crash–restart schedule. The zero value
// schedules nothing (and draws no randomness).
type CrashConfig struct {
	// Nodes lists the node IDs subject to crashes (empty = none).
	Nodes []int
	// MeanUptimeNs is the mean of the exponential uptime between a
	// (re)boot and the next crash. Zero disables crashing.
	MeanUptimeNs int64
	// MinUptimeNs is added to every drawn uptime so a node always gets a
	// minimum window to come back and make progress.
	MinUptimeNs int64
	// RestartDelayNs is the fixed reboot time; RestartJitterNs adds a
	// uniform extra in [0, RestartJitterNs).
	RestartDelayNs  int64
	RestartJitterNs int64
	// HorizonNs bounds the schedule: no crash is scheduled at or beyond
	// this virtual time (restarts may land past it so no node stays dead
	// forever). Required when crashing is enabled.
	HorizonNs int64
}

// enabled reports whether the config schedules any crash at all.
func (cfg CrashConfig) enabled() bool {
	return cfg.MeanUptimeNs > 0 && cfg.HorizonNs > 0 && len(cfg.Nodes) > 0
}

// CrashEvent is one scheduled crash–restart cycle.
type CrashEvent struct {
	Node   int
	At     sim.Time // crash instant
	BackUp sim.Time // restart instant (At + delay + jitter)
}

// CrashPlan is an installed crash schedule. Obtain one with
// Cluster.InstallCrashes; inspect the drawn schedule with Events.
type CrashPlan struct {
	env    *sim.Env
	cfg    CrashConfig
	events []CrashEvent

	// Counters are nil-safe; SetObs attaches them.
	crashes  *obs.Counter // crash events executed
	restarts *obs.Counter // restart events executed
}

// InstallCrashes draws the full crash–restart schedule from the
// environment's seeded RNG (per node, in the order given by cfg.Nodes)
// and arms it on the scheduler. The returned plan reports the schedule
// and execution counters; a disabled config returns an empty plan and
// arms nothing.
func (c *Cluster) InstallCrashes(cfg CrashConfig) *CrashPlan {
	cp := &CrashPlan{env: c.env, cfg: cfg}
	if !cfg.enabled() {
		return cp
	}
	rng := c.env.Rand()
	for _, id := range cfg.Nodes {
		node := c.nodes[id]
		t := int64(c.env.Now())
		for {
			up := cfg.MinUptimeNs + int64(rng.ExpFloat64()*float64(cfg.MeanUptimeNs))
			if up < 1 || up > math.MaxInt64-t {
				up = cfg.MeanUptimeNs + cfg.MinUptimeNs
			}
			t += up
			if t >= cfg.HorizonNs {
				break
			}
			delay := cfg.RestartDelayNs
			if cfg.RestartJitterNs > 0 {
				delay += rng.Int63n(cfg.RestartJitterNs)
			}
			ev := CrashEvent{Node: id, At: sim.Time(t), BackUp: sim.Time(t + delay)}
			cp.events = append(cp.events, ev)
			cp.arm(node, ev)
			t += delay
		}
	}
	return cp
}

// arm schedules one crash–restart cycle on the event loop.
func (cp *CrashPlan) arm(node *Node, ev CrashEvent) {
	cp.env.At(ev.At, func() {
		node.Crash()
		cp.crashes.Inc()
	})
	cp.env.At(ev.BackUp, func() {
		node.Restart()
		cp.restarts.Inc()
	})
}

// Events returns the drawn schedule in arming order (per node, then
// chronological within a node).
func (cp *CrashPlan) Events() []CrashEvent { return cp.events }

// SetObs attaches crash/restart counters (simnet.crashes,
// simnet.restarts) to the plan. Pass nil to detach.
func (cp *CrashPlan) SetObs(r *obs.Registry) {
	if r == nil {
		cp.crashes, cp.restarts = nil, nil
		return
	}
	cp.crashes = r.Counter("simnet.crashes")
	cp.restarts = r.Counter("simnet.restarts")
}
