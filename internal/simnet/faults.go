// Fault injection for the simulated fabric. A FaultPlan is a
// deterministic, seeded fault model installed on a Cluster: per-message
// drop probability, latency jitter, periodic link flaps (a directed link
// goes dark for a window) and node pauses (a node stops receiving for a
// window, as under a GC stall, kernel hiccup or failover). Transports
// (verbs NICs, ipoib) consult the plan on every message hop.
//
// Determinism: all randomness flows through sim.Env.Rand(), the single
// seeded RNG of the simulation, and the per-link flap phases and
// per-node pause phases are drawn eagerly at InstallFaults — so one seed
// yields one reproducible fault schedule, and two runs with the same
// seed and plan are byte-identical. A nil plan (the default) draws
// nothing and schedules nothing: fault injection off is exactly the
// no-fault build.
package simnet

import (
	"hatrpc/internal/obs"
	"hatrpc/internal/sim"
)

// FaultConfig describes the injected fault model. The zero value injects
// nothing (and draws no randomness), so a zero-config plan behaves
// identically to no plan at all.
type FaultConfig struct {
	// DropProb is the per-message probability that a fabric hop silently
	// loses the message (0..1).
	DropProb float64
	// JitterNs adds a uniform extra one-way delay in [0, JitterNs) to
	// every delivered message.
	JitterNs int64
	// FlapPeriodNs/FlapDownNs: every FlapPeriodNs of virtual time each
	// directed link goes down for FlapDownNs (messages sent during the
	// window are dropped). Each link's window phase is drawn from the
	// seeded RNG so flaps do not align across links.
	FlapPeriodNs int64
	FlapDownNs   int64
	// PausePeriodNs/PauseForNs: every PausePeriodNs each node in
	// PausedNodes stalls for PauseForNs; messages arriving at a paused
	// node are delayed until the pause window ends. Phases are drawn per
	// node from the seeded RNG.
	PausePeriodNs int64
	PauseForNs    int64
	// PausedNodes lists the node IDs subject to pauses (empty = none).
	PausedNodes []int
	// PartitionPeriodNs/PartitionForNs: every PartitionPeriodNs the nodes
	// in PartitionNodes split into two sides for PartitionForNs, and every
	// message crossing the cut — in either direction, on the fabric AND on
	// the out-of-band control channel — is dropped. Side membership is
	// redrawn per window from per-node values drawn eagerly at install, so
	// successive partitions cut different minorities; a window where every
	// node lands on one side is simply a quiet window. This is the
	// split-brain fault: unlike a flap (one directed link) it isolates a
	// node group completely, which is what epoch-fenced failover must
	// survive.
	PartitionPeriodNs int64
	PartitionForNs    int64
	// PartitionNodes lists the node IDs subject to partitions (empty =
	// none; links with an endpoint outside the set are never cut).
	PartitionNodes []int
	// OneWayCuts scripts asymmetric directed-link outages: messages
	// from→to inside [StartNs, EndNs) are dropped while the reverse
	// direction stays healthy. Unlike the seeded periodic faults these are
	// explicit test scripts (no RNG draws), used to pin down behavior
	// under asymmetric partitions — e.g. a keepalive prober whose probes
	// vanish while the peer's responses would still flow.
	OneWayCuts []LinkCut
}

// LinkCut is one scripted directed-link outage (see
// FaultConfig.OneWayCuts).
type LinkCut struct {
	From, To int
	StartNs  int64
	EndNs    int64
}

// FaultPlan is an installed fault model. Obtain one with
// Cluster.InstallFaults; transports fetch it with Cluster.Faults (nil
// when fault injection is off).
type FaultPlan struct {
	env *sim.Env
	cfg FaultConfig

	flapPhase  map[[2]int]int64 // directed link → flap window phase
	pausePhase map[int]int64    // node → pause window phase
	partPhase  int64            // partition window phase (one global clock)
	partSide   map[int]uint64   // node → per-node side-draw value

	// Counters are nil-safe; SetObs attaches them.
	drops          *obs.Counter // messages lost (random + flap + partition)
	flapDrops      *obs.Counter // of which lost to a down link
	partitionDrops *obs.Counter // of which lost crossing a partition cut
	delays         *obs.Counter // messages delayed by jitter or a paused node
}

// InstallFaults attaches a fault plan to the cluster and returns it. The
// per-link flap phases and per-node pause phases are drawn immediately
// from the environment's seeded RNG (in node-ID order, so the schedule
// depends only on the seed and the config).
func (c *Cluster) InstallFaults(cfg FaultConfig) *FaultPlan {
	fp := &FaultPlan{
		env:        c.env,
		cfg:        cfg,
		flapPhase:  make(map[[2]int]int64),
		pausePhase: make(map[int]int64),
	}
	rng := c.env.Rand()
	if cfg.FlapPeriodNs > 0 && cfg.FlapDownNs > 0 {
		for from := 0; from < len(c.nodes); from++ {
			for to := 0; to < len(c.nodes); to++ {
				if from != to {
					fp.flapPhase[[2]int{from, to}] = rng.Int63n(cfg.FlapPeriodNs)
				}
			}
		}
	}
	if cfg.PausePeriodNs > 0 && cfg.PauseForNs > 0 {
		for _, n := range cfg.PausedNodes {
			fp.pausePhase[n] = rng.Int63n(cfg.PausePeriodNs)
		}
	}
	if cfg.partitionOn() {
		fp.partPhase = rng.Int63n(cfg.PartitionPeriodNs)
		fp.partSide = make(map[int]uint64)
		for _, n := range cfg.PartitionNodes {
			fp.partSide[n] = uint64(rng.Int63())
		}
	}
	// A config with nothing enabled leaves the cluster fault-free: Faults()
	// stays nil, so transports and the engine's reliability heuristics take
	// the exact no-fault code path (byte-identical traces).
	if cfg.enabled() {
		c.faults = fp
	} else {
		c.faults = nil
	}
	return fp
}

// enabled reports whether any fault feature is actually configured.
func (cfg FaultConfig) enabled() bool {
	return cfg.DropProb > 0 || cfg.JitterNs > 0 ||
		(cfg.FlapPeriodNs > 0 && cfg.FlapDownNs > 0) ||
		(cfg.PausePeriodNs > 0 && cfg.PauseForNs > 0 && len(cfg.PausedNodes) > 0) ||
		cfg.partitionOn() || len(cfg.OneWayCuts) > 0
}

// partitionOn reports whether the periodic partition fault is configured.
func (cfg FaultConfig) partitionOn() bool {
	return cfg.PartitionPeriodNs > 0 && cfg.PartitionForNs > 0 && len(cfg.PartitionNodes) >= 2
}

// Faults returns the installed fault plan, or nil when fault injection
// is off.
func (c *Cluster) Faults() *FaultPlan { return c.faults }

// SetObs attaches drop/delay counters (simnet.drops, simnet.flap_drops,
// simnet.delayed) to the plan. Counters are shared by name when several
// plans attach to one registry. Pass nil to detach.
func (fp *FaultPlan) SetObs(r *obs.Registry) {
	if r == nil {
		fp.drops, fp.flapDrops, fp.delays = nil, nil, nil
		return
	}
	fp.drops = r.Counter("simnet.drops")
	fp.flapDrops = r.Counter("simnet.flap_drops")
	fp.partitionDrops = r.Counter("simnet.partition_drops")
	fp.delays = r.Counter("simnet.delayed")
}

// partMix derives node side's for partition window w from its eagerly
// drawn per-node value: a splitmix64-style finalizer over (side, w) so
// consecutive windows redraw membership without touching the RNG at
// runtime (runtime draws would make fault timing depend on message
// timing and break byte-identical replay).
func partMix(side, w uint64) uint64 {
	z := side ^ (w * 0x9E3779B97F4A7C15)
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// Severed reports whether the directed link from→to is cut at time t —
// by the periodic partition (both endpoints in PartitionNodes, on
// opposite sides of the current window) or by a scripted one-way cut.
// Unlike drops and flaps, severed links also kill the out-of-band
// control channel: a partitioned node cannot re-handshake across the
// cut, which is what makes split-brain scenarios real.
func (fp *FaultPlan) Severed(from, to int, t sim.Time) bool {
	if fp == nil {
		return false
	}
	if fp.cfg.partitionOn() {
		into := (int64(t) + fp.partPhase) % fp.cfg.PartitionPeriodNs
		if into < fp.cfg.PartitionForNs {
			sf, okf := fp.partSide[from]
			st, okt := fp.partSide[to]
			if okf && okt {
				w := uint64((int64(t) + fp.partPhase) / fp.cfg.PartitionPeriodNs)
				if partMix(sf, w)&1 != partMix(st, w)&1 {
					return true
				}
			}
		}
	}
	for _, cut := range fp.cfg.OneWayCuts {
		if cut.From == from && cut.To == to &&
			int64(t) >= cut.StartNs && int64(t) < cut.EndNs {
			return true
		}
	}
	return false
}

// linkDown reports whether the directed link from→to is inside a flap
// window at time t.
func (fp *FaultPlan) linkDown(from, to int, t sim.Time) bool {
	if fp.cfg.FlapPeriodNs <= 0 || fp.cfg.FlapDownNs <= 0 {
		return false
	}
	phase, ok := fp.flapPhase[[2]int{from, to}]
	if !ok {
		return false
	}
	return (int64(t)+phase)%fp.cfg.FlapPeriodNs < fp.cfg.FlapDownNs
}

// pauseRemaining returns how long node is still paused at time t (zero
// when the node is running).
func (fp *FaultPlan) pauseRemaining(node int, t sim.Time) sim.Duration {
	if fp.cfg.PausePeriodNs <= 0 || fp.cfg.PauseForNs <= 0 {
		return 0
	}
	phase, ok := fp.pausePhase[node]
	if !ok {
		return 0
	}
	into := (int64(t) + phase) % fp.cfg.PausePeriodNs
	if into < fp.cfg.PauseForNs {
		return sim.Duration(fp.cfg.PauseForNs - into)
	}
	return 0
}

// Outcome draws the fate of one message on the directed link from→to at
// the current virtual time: dropped (lost forever at this hop), or
// delivered with extra one-way delay (jitter plus any destination pause
// window). RNG draws happen only for the features the config enables, so
// a zero config perturbs nothing.
func (fp *FaultPlan) Outcome(from, to int) (drop bool, extra sim.Duration) {
	now := fp.env.Now()
	if fp.linkDown(from, to, now) {
		fp.drops.Inc()
		fp.flapDrops.Inc()
		return true, 0
	}
	if fp.Severed(from, to, now) {
		fp.drops.Inc()
		fp.partitionDrops.Inc()
		return true, 0
	}
	if fp.cfg.DropProb > 0 && fp.env.Rand().Float64() < fp.cfg.DropProb {
		fp.drops.Inc()
		return true, 0
	}
	if fp.cfg.JitterNs > 0 {
		extra += sim.Duration(fp.env.Rand().Int63n(fp.cfg.JitterNs))
	}
	if pause := fp.pauseRemaining(to, now); pause > 0 {
		extra += pause
	}
	if extra > 0 {
		fp.delays.Inc()
	}
	return false, extra
}
