package sim

import (
	"testing"
	"time"
)

func TestSleepAdvancesClock(t *testing.T) {
	env := NewEnv(1)
	var woke Time
	env.Spawn("sleeper", func(p *Proc) {
		p.Sleep(100 * time.Nanosecond)
		woke = p.Now()
	})
	env.Run()
	if woke != 100 {
		t.Fatalf("woke at %d, want 100", woke)
	}
}

func TestZeroAndNegativeSleep(t *testing.T) {
	env := NewEnv(1)
	ran := false
	env.Spawn("p", func(p *Proc) {
		p.Sleep(0)
		p.Sleep(-5)
		ran = true
	})
	env.Run()
	if !ran {
		t.Fatal("process did not complete")
	}
	if env.Now() != 0 {
		t.Fatalf("clock moved to %d, want 0", env.Now())
	}
}

func TestEventOrderingDeterministic(t *testing.T) {
	run := func() []int {
		env := NewEnv(7)
		var order []int
		for i := 0; i < 10; i++ {
			i := i
			env.Spawn("p", func(p *Proc) {
				p.Sleep(Duration(10-i) * time.Nanosecond)
				order = append(order, i)
			})
		}
		env.Run()
		return order
	}
	a, b := run(), run()
	if len(a) != 10 || len(b) != 10 {
		t.Fatalf("lengths %d,%d want 10", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("nondeterministic order at %d: %v vs %v", i, a, b)
		}
	}
	// Longest sleep (i=0) wakes last.
	if a[len(a)-1] != 0 {
		t.Fatalf("expected proc 0 last, got %v", a)
	}
}

func TestSameTimestampFIFO(t *testing.T) {
	env := NewEnv(1)
	var order []int
	for i := 0; i < 5; i++ {
		i := i
		env.Spawn("p", func(p *Proc) {
			p.Sleep(50)
			order = append(order, i)
		})
	}
	env.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("same-timestamp events not FIFO: %v", order)
		}
	}
}

func TestAfterCallback(t *testing.T) {
	env := NewEnv(1)
	var at Time = -1
	env.After(42*time.Nanosecond, func() { at = env.Now() })
	env.Run()
	if at != 42 {
		t.Fatalf("callback at %d, want 42", at)
	}
}

func TestRunUntilStopsAtLimit(t *testing.T) {
	env := NewEnv(1)
	fired := 0
	env.After(10, func() { fired++ })
	env.After(100, func() { fired++ })
	got := env.RunUntil(50)
	if fired != 1 {
		t.Fatalf("fired %d events, want 1", fired)
	}
	if got != 50 {
		t.Fatalf("RunUntil returned %d, want 50", got)
	}
	env.Run()
	if fired != 2 {
		t.Fatalf("fired %d events after Run, want 2", fired)
	}
}

func TestStopHaltsScheduler(t *testing.T) {
	env := NewEnv(1)
	count := 0
	env.Spawn("p", func(p *Proc) {
		for i := 0; i < 100; i++ {
			p.Sleep(1)
			count++
			if count == 3 {
				env.Stop()
			}
		}
	})
	env.Run()
	if count != 3 {
		t.Fatalf("ran %d iterations, want 3", count)
	}
}

func TestSignalFireWakesFIFO(t *testing.T) {
	env := NewEnv(1)
	sig := NewSignal(env)
	var order []int
	for i := 0; i < 3; i++ {
		i := i
		env.Spawn("w", func(p *Proc) {
			sig.Wait(p)
			order = append(order, i)
		})
	}
	env.Spawn("firer", func(p *Proc) {
		p.Sleep(10)
		sig.Fire()
		p.Sleep(10)
		sig.Fire()
		sig.Fire()
	})
	env.Run()
	if len(order) != 3 || order[0] != 0 || order[1] != 1 || order[2] != 2 {
		t.Fatalf("wake order %v, want [0 1 2]", order)
	}
}

func TestSignalPendingFire(t *testing.T) {
	env := NewEnv(1)
	sig := NewSignal(env)
	var woke Time = -1
	env.Spawn("firer", func(p *Proc) { sig.Fire() })
	env.Spawn("w", func(p *Proc) {
		p.Sleep(100)
		sig.Wait(p) // pending fire: returns without blocking
		woke = p.Now()
	})
	env.Run()
	if woke != 100 {
		t.Fatalf("woke at %d, want 100 (pending fire consumed)", woke)
	}
}

func TestSignalBroadcast(t *testing.T) {
	env := NewEnv(1)
	sig := NewSignal(env)
	woken := 0
	for i := 0; i < 4; i++ {
		env.Spawn("w", func(p *Proc) {
			sig.Wait(p)
			woken++
		})
	}
	env.Spawn("b", func(p *Proc) {
		p.Sleep(5)
		sig.Broadcast()
	})
	env.Run()
	if woken != 4 {
		t.Fatalf("broadcast woke %d, want 4", woken)
	}
	if sig.Waiting() != 0 {
		t.Fatalf("%d waiters left", sig.Waiting())
	}
}

func TestQueueBlockingPop(t *testing.T) {
	env := NewEnv(1)
	q := NewQueue[int](env)
	var got []int
	env.Spawn("consumer", func(p *Proc) {
		for i := 0; i < 3; i++ {
			got = append(got, q.Pop(p))
		}
	})
	env.Spawn("producer", func(p *Proc) {
		for i := 0; i < 3; i++ {
			p.Sleep(10)
			q.Push(i)
		}
	})
	env.Run()
	if len(got) != 3 || got[0] != 0 || got[2] != 2 {
		t.Fatalf("got %v, want [0 1 2]", got)
	}
}

func TestQueueTryPop(t *testing.T) {
	env := NewEnv(1)
	q := NewQueue[string](env)
	if _, ok := q.TryPop(); ok {
		t.Fatal("TryPop on empty queue returned ok")
	}
	q.Push("a")
	q.Push("b")
	if v, ok := q.TryPop(); !ok || v != "a" {
		t.Fatalf("TryPop = %q,%v want a,true", v, ok)
	}
	if q.Len() != 1 {
		t.Fatalf("Len = %d want 1", q.Len())
	}
}

func TestCPUSingleTaskExactDuration(t *testing.T) {
	env := NewEnv(1)
	cpu := NewCPU(env, 4)
	var done Time
	env.Spawn("t", func(p *Proc) {
		cpu.Compute(p, 1000)
		done = p.Now()
	})
	env.Run()
	if done != 1000 {
		t.Fatalf("single task finished at %d, want 1000", done)
	}
}

func TestCPUUnderSubscriptionNoSlowdown(t *testing.T) {
	env := NewEnv(1)
	cpu := NewCPU(env, 4)
	var finish []Time
	for i := 0; i < 4; i++ {
		env.Spawn("t", func(p *Proc) {
			cpu.Compute(p, 1000)
			finish = append(finish, p.Now())
		})
	}
	env.Run()
	for _, f := range finish {
		if f != 1000 {
			t.Fatalf("under-subscribed task finished at %d, want 1000", f)
		}
	}
}

func TestCPUOverSubscriptionStretches(t *testing.T) {
	env := NewEnv(1)
	cpu := NewCPU(env, 2)
	var finish []Time
	for i := 0; i < 4; i++ {
		env.Spawn("t", func(p *Proc) {
			cpu.Compute(p, 1000)
			finish = append(finish, p.Now())
		})
	}
	env.Run()
	// 4 tasks on 2 cores, PS: all progress at rate 1/2 → finish ~2000.
	for _, f := range finish {
		if f < 1990 || f > 2010 {
			t.Fatalf("over-subscribed task finished at %d, want ~2000", f)
		}
	}
}

func TestCPUPersistentLoadSlowsTasks(t *testing.T) {
	env := NewEnv(1)
	cpu := NewCPU(env, 2)
	cpu.AddLoad(2) // two busy pollers saturate both cores
	var done Time
	env.Spawn("t", func(p *Proc) {
		cpu.Compute(p, 1000)
		done = p.Now()
	})
	env.Run()
	// 3 runnable on 2 cores → rate 2/3 → 1500ns.
	if done < 1490 || done > 1510 {
		t.Fatalf("task with polling load finished at %d, want ~1500", done)
	}
	cpu.RemoveLoad(2)
	if cpu.Runnable() != 0 {
		t.Fatalf("runnable %d after RemoveLoad, want 0", cpu.Runnable())
	}
}

func TestCPULoadFactor(t *testing.T) {
	env := NewEnv(1)
	cpu := NewCPU(env, 4)
	if lf := cpu.LoadFactor(); lf != 1 {
		t.Fatalf("idle load factor %v, want 1", lf)
	}
	cpu.AddLoad(8)
	if lf := cpu.LoadFactor(); lf != 2 {
		t.Fatalf("load factor %v, want 2", lf)
	}
	cpu.AddLoad(4)
	if lf := cpu.LoadFactor(); lf != 3 {
		t.Fatalf("load factor %v, want 3", lf)
	}
}

func TestCPUDynamicArrival(t *testing.T) {
	env := NewEnv(1)
	cpu := NewCPU(env, 1)
	var aDone, bDone Time
	env.Spawn("a", func(p *Proc) {
		cpu.Compute(p, 1000)
		aDone = p.Now()
	})
	env.Spawn("b", func(p *Proc) {
		p.Sleep(500)
		cpu.Compute(p, 250)
		bDone = p.Now()
	})
	env.Run()
	// a runs alone 0-500 (500 done), then shares: both at rate 1/2.
	// b needs 250 work → 500 wall → done at 1000. a has 500 left,
	// does 250 by t=1000, then alone → done at 1250.
	if bDone < 995 || bDone > 1005 {
		t.Fatalf("b finished at %d, want ~1000", bDone)
	}
	if aDone < 1245 || aDone > 1255 {
		t.Fatalf("a finished at %d, want ~1250", aDone)
	}
}

func TestProcYield(t *testing.T) {
	env := NewEnv(1)
	var order []string
	env.Spawn("a", func(p *Proc) {
		order = append(order, "a1")
		p.Yield()
		order = append(order, "a2")
	})
	env.Spawn("b", func(p *Proc) {
		order = append(order, "b1")
	})
	env.Run()
	want := []string{"a1", "b1", "a2"}
	for i := range want {
		if i >= len(order) || order[i] != want[i] {
			t.Fatalf("order %v, want %v", order, want)
		}
	}
}

func TestSpawnFromProcess(t *testing.T) {
	env := NewEnv(1)
	var childAt Time = -1
	env.Spawn("parent", func(p *Proc) {
		p.Sleep(10)
		env.Spawn("child", func(c *Proc) {
			c.Sleep(5)
			childAt = c.Now()
		})
		p.Sleep(100)
	})
	env.Run()
	if childAt != 15 {
		t.Fatalf("child woke at %d, want 15", childAt)
	}
}

func TestRandDeterminism(t *testing.T) {
	a := NewEnv(42).Rand().Int63()
	b := NewEnv(42).Rand().Int63()
	if a != b {
		t.Fatalf("seeded RNG nondeterministic: %d vs %d", a, b)
	}
}

func TestMutexMutualExclusion(t *testing.T) {
	env := NewEnv(1)
	mu := NewMutex(env)
	inside := 0
	maxInside := 0
	for i := 0; i < 5; i++ {
		env.Spawn("w", func(p *Proc) {
			mu.Lock(p)
			inside++
			if inside > maxInside {
				maxInside = inside
			}
			p.Sleep(100)
			inside--
			mu.Unlock()
		})
	}
	env.Run()
	if maxInside != 1 {
		t.Fatalf("mutex admitted %d processes", maxInside)
	}
	if !mu.TryLock() {
		t.Fatal("TryLock on free mutex failed")
	}
	if mu.TryLock() {
		t.Fatal("TryLock on held mutex succeeded")
	}
}

// TestCPUSimultaneousCompletionOrder: tasks that finish at the same
// instant under processor sharing must wake in admission order, not in
// task-map iteration order — otherwise the event sequence numbers they
// draw (and every downstream tie-break) vary between process runs.
func TestCPUSimultaneousCompletionOrder(t *testing.T) {
	const procs = 30
	env := NewEnv(1)
	cpu := NewCPU(env, 4) // heavily oversubscribed: all finish together
	var order []int
	for i := 0; i < procs; i++ {
		i := i
		env.Spawn("w", func(p *Proc) {
			cpu.Compute(p, 10_000)
			order = append(order, i)
		})
	}
	env.Run()
	if len(order) != procs {
		t.Fatalf("only %d of %d tasks completed", len(order), procs)
	}
	for i, got := range order {
		if got != i {
			t.Fatalf("wake order %v: position %d woke task %d, want %d", order, i, got, i)
		}
	}
}
