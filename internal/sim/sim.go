// Package sim implements a deterministic discrete-event simulation (DES)
// kernel in the style of SimPy: simulation processes are goroutines that
// execute strictly one at a time under a cooperative scheduler driven by a
// virtual clock. All blocking operations (Sleep, Wait, resource
// acquisition) park the calling process and hand control back to the
// scheduler, which advances virtual time to the next pending event.
//
// Determinism: events are ordered by (time, sequence number), processes
// never run concurrently, and all randomness flows through the
// environment's seeded RNG — so a given seed always produces an identical
// event order and identical virtual-time results.
package sim

import (
	"container/heap"
	"fmt"
	"math/rand"
	"runtime"
	"time"
)

// Time is virtual time in nanoseconds since simulation start.
type Time int64

// Duration is a span of virtual time in nanoseconds.
type Duration = time.Duration

// event is a scheduled wakeup for a parked process or a deferred callback.
type event struct {
	at   Time
	seq  uint64
	proc *Proc  // non-nil: resume this process
	fn   func() // non-nil: run this callback inside the scheduler
	idx  int    // heap index
	dead bool   // cancelled
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].idx, h[j].idx = i, j
}
func (h *eventHeap) Push(x any) {
	e := x.(*event)
	e.idx = len(*h)
	*h = append(*h, e)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}

// Env is a simulation environment: a virtual clock plus the scheduler
// state. An Env must be driven from a single OS goroutine via Run or
// RunUntil.
type Env struct {
	now    Time
	seq    uint64
	events eventHeap
	rng    *rand.Rand

	// resume/yield handshake with the currently running process.
	sched   chan struct{} // signals the scheduler that the process parked
	current *Proc

	nprocs  int // live (not yet finished) processes
	stopped bool
	procs   []*Proc // every spawned process, in spawn order (for Shutdown)
	shut    bool    // Shutdown has run
}

// NewEnv returns a fresh environment whose RNG is seeded with seed.
func NewEnv(seed int64) *Env {
	return &Env{
		rng:   rand.New(rand.NewSource(seed)),
		sched: make(chan struct{}),
	}
}

// Now returns the current virtual time.
func (e *Env) Now() Time { return e.now }

// NewRand returns a deterministic RNG seeded with seed, independent of
// any Env (for input generators that run before a simulation exists).
// The sim kernel is the single place allowed to mint RNG sources — the
// simdet analyzer forbids rand.New elsewhere in DES-scheduled packages
// — so all randomness is either this or Env.Rand, both explicitly
// seeded.
func NewRand(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

// Rand returns the environment's deterministic RNG. It must only be used
// from simulation processes (never concurrently).
func (e *Env) Rand() *rand.Rand { return e.rng }

// Proc is a simulation process. A Proc's body runs on its own goroutine
// but is mutually exclusive with every other process in the Env.
type Proc struct {
	env    *Env
	resume chan struct{}
	kill   chan struct{} // closed by Shutdown to terminate this process
	exited chan struct{} // closed once the goroutine has fully unwound
	name   string
	done   bool
	wake   *event // pending timer if parked in Sleep; nil otherwise
}

// Env returns the environment this process belongs to.
func (p *Proc) Env() *Env { return p.env }

// Name returns the debug name given at spawn time.
func (p *Proc) Name() string { return p.name }

// Now returns the current virtual time.
func (p *Proc) Now() Time { return p.env.now }

func (e *Env) schedule(at Time, proc *Proc, fn func()) *event {
	if at < e.now {
		panic(fmt.Sprintf("sim: scheduling event in the past: %d < %d", at, e.now))
	}
	e.seq++
	ev := &event{at: at, seq: e.seq, proc: proc, fn: fn}
	heap.Push(&e.events, ev)
	return ev
}

func (e *Env) cancel(ev *event) {
	if ev != nil && !ev.dead {
		ev.dead = true
	}
}

// Spawn starts fn as a new simulation process. It may be called from
// outside the simulation (before Run) or from inside another process.
func (e *Env) Spawn(name string, fn func(p *Proc)) *Proc {
	p := &Proc{
		env:    e,
		resume: make(chan struct{}),
		kill:   make(chan struct{}),
		exited: make(chan struct{}),
		name:   name,
	}
	e.nprocs++
	e.procs = append(e.procs, p)
	// The process first runs when the scheduler reaches its start event.
	e.schedule(e.now, p, nil)
	go func() {
		defer close(p.exited)
		select {
		case <-p.resume: // wait for first dispatch
		case <-p.kill:
			return
		}
		fn(p)
		p.done = true
		e.nprocs--
		e.sched <- struct{}{} // return control to scheduler
	}()
	return p
}

// At schedules fn to run inside the scheduler loop at absolute time at.
// fn must not block; it is intended for timer-style callbacks.
func (e *Env) At(at Time, fn func()) { e.schedule(at, nil, fn) }

// After schedules fn to run d from now.
func (e *Env) After(d Duration, fn func()) { e.At(e.now+Time(d), fn) }

// park hands control from the running process back to the scheduler and
// blocks until the scheduler resumes this process. If the environment is
// shut down while parked, the goroutine exits (running its defers) so
// finished simulations release their memory.
func (p *Proc) park() {
	e := p.env
	select {
	case <-p.kill:
		// Tearing down: a defer running under Goexit re-parked (nobody is
		// receiving on sched anymore). Keep unwinding.
		runtime.Goexit()
	default:
	}
	e.sched <- struct{}{}
	select {
	case <-p.resume:
	case <-p.kill:
		runtime.Goexit()
	}
}

// Sleep suspends the process for d of virtual time.
func (p *Proc) Sleep(d Duration) {
	if d < 0 {
		d = 0
	}
	e := p.env
	p.wake = e.schedule(e.now+Time(d), p, nil)
	p.park()
	p.wake = nil
}

// Yield reschedules the process at the current time behind already-queued
// events, letting same-timestamp work interleave deterministically.
func (p *Proc) Yield() {
	e := p.env
	e.schedule(e.now, p, nil)
	p.park()
}

// dispatch resumes process pr and waits until it parks or finishes.
func (e *Env) dispatch(pr *Proc) {
	e.current = pr
	pr.resume <- struct{}{}
	<-e.sched
	e.current = nil
}

// Run executes events until the event queue is exhausted or the
// environment is stopped. It returns the final virtual time.
func (e *Env) Run() Time { return e.RunUntil(Time(1<<62 - 1)) }

// RunUntil executes events with timestamps <= limit. It returns the
// virtual time of the last executed event (or limit if the queue emptied
// beyond it).
func (e *Env) RunUntil(limit Time) Time {
	for len(e.events) > 0 && !e.stopped {
		ev := heap.Pop(&e.events).(*event)
		if ev.dead {
			continue
		}
		if ev.at > limit {
			heap.Push(&e.events, ev)
			e.now = limit
			return e.now
		}
		e.now = ev.at
		switch {
		case ev.fn != nil:
			ev.fn()
		case ev.proc != nil && !ev.proc.done:
			e.dispatch(ev.proc)
		}
	}
	return e.now
}

// Stop halts the scheduler after the current event completes.
func (e *Env) Stop() { e.stopped = true }

// Kill terminates process p immediately: its goroutine unwinds under
// Goexit (running its defers) and any pending timer wakeup is
// cancelled. The caller — a scheduler callback or another process —
// blocks until p has fully unwound, so the one-process-at-a-time
// invariant holds through the teardown (this is the same join Shutdown
// performs, for a single process mid-run). Killing an already-finished
// process is a no-op; a process cannot kill itself.
func (e *Env) Kill(p *Proc) {
	if p == nil || p.done || e.shut {
		return
	}
	if p == e.current {
		panic("sim: process cannot Kill itself")
	}
	p.done = true
	e.nprocs--
	e.cancel(p.wake)
	p.wake = nil
	close(p.kill)
	<-p.exited
}

// Shutdown terminates every goroutine still parked in the environment so
// the simulation's memory can be reclaimed. Processes are torn down one
// at a time: each goroutine is released, runs its deferred cleanup under
// Goexit, and is joined before the next wakes — preserving the kernel's
// one-process-at-a-time invariant through teardown (deferred cleanup
// touches shared scheduler state such as CPU load tracking). Call it
// after the final Run; the environment must not be used afterwards.
func (e *Env) Shutdown() {
	if e.shut {
		return
	}
	e.shut = true
	for _, p := range e.procs {
		if p.done {
			continue
		}
		close(p.kill)
		<-p.exited
	}
	e.procs = nil
}

// Stopped reports whether Stop has been called.
func (e *Env) Stopped() bool { return e.stopped }

// ---------------------------------------------------------------------------
// Signals: single-wakeup condition variables for process synchronization.

// Signal is a deterministic FIFO wait queue. Processes call Wait; other
// processes (or scheduler callbacks) call Fire to wake exactly one waiter,
// or Broadcast to wake all current waiters.
type Signal struct {
	env     *Env
	waiters []*Proc
	pending int // fires delivered with no waiter present
}

// NewSignal returns a Signal bound to env.
func NewSignal(env *Env) *Signal { return &Signal{env: env} }

// Wait parks the process until a Fire is delivered to it. If a Fire
// arrived earlier with no waiter, Wait consumes it and returns without
// blocking (semaphore semantics), after a deterministic yield.
func (s *Signal) Wait(p *Proc) {
	if s.pending > 0 {
		s.pending--
		p.Yield()
		return
	}
	s.waiters = append(s.waiters, p)
	p.park()
}

// TryConsume consumes a pending fire without blocking. It reports whether
// one was available.
func (s *Signal) TryConsume() bool {
	if s.pending > 0 {
		s.pending--
		return true
	}
	return false
}

// WaitUntil parks the process until a Fire is delivered or virtual time
// reaches the absolute deadline until, whichever comes first. It reports
// whether a fire was consumed (false means timeout). Fire cancels the
// waiter's deadline timer before waking it, so exactly one of the two
// wakeup paths ever resumes the process.
func (s *Signal) WaitUntil(p *Proc, until Time) bool {
	if s.pending > 0 {
		s.pending--
		p.Yield()
		return true
	}
	if s.env.now >= until {
		return false
	}
	s.waiters = append(s.waiters, p)
	p.wake = s.env.schedule(until, p, nil)
	p.park()
	if p.wake == nil {
		return true // Fire consumed the timer and woke us
	}
	p.wake = nil
	for i, w := range s.waiters {
		if w == p {
			s.waiters = append(s.waiters[:i], s.waiters[i+1:]...)
			break
		}
	}
	return false
}

// Fire wakes the oldest live waiter, or records a pending fire if none
// waits. It may be called from a process or from a scheduler callback.
// Waiters killed while parked are skipped so a fire is never lost to a
// dead process.
func (s *Signal) Fire() {
	for len(s.waiters) > 0 {
		w := s.waiters[0]
		s.waiters = s.waiters[1:]
		if w.done {
			continue
		}
		if w.wake != nil { // timed waiter: disarm its deadline
			s.env.cancel(w.wake)
			w.wake = nil
		}
		s.env.schedule(s.env.now, w, nil)
		return
	}
	s.pending++
}

// Broadcast wakes every currently-waiting live process (it does not add
// pending fires).
func (s *Signal) Broadcast() {
	ws := s.waiters
	s.waiters = nil
	for _, w := range ws {
		if w.done {
			continue
		}
		if w.wake != nil {
			s.env.cancel(w.wake)
			w.wake = nil
		}
		s.env.schedule(s.env.now, w, nil)
	}
}

// Waiting returns the number of parked waiters.
func (s *Signal) Waiting() int { return len(s.waiters) }

// ---------------------------------------------------------------------------
// Queue: an unbounded deterministic FIFO channel between processes.

// Queue is a FIFO of arbitrary items with blocking Pop.
type Queue[T any] struct {
	items []T
	sig   *Signal
}

// NewQueue returns an empty queue bound to env.
func NewQueue[T any](env *Env) *Queue[T] {
	return &Queue[T]{sig: NewSignal(env)}
}

// Push appends an item and wakes one waiting consumer.
func (q *Queue[T]) Push(v T) {
	q.items = append(q.items, v)
	q.sig.Fire()
}

// Pop removes and returns the oldest item, blocking the process while the
// queue is empty.
func (q *Queue[T]) Pop(p *Proc) T {
	for len(q.items) == 0 {
		q.sig.Wait(p)
	}
	v := q.items[0]
	q.items = q.items[1:]
	return v
}

// PopUntil is Pop with a virtual-time bound: it removes and returns the
// oldest item, or reports ok=false if the queue is still empty when the
// clock reaches the absolute deadline until.
func (q *Queue[T]) PopUntil(p *Proc, until Time) (T, bool) {
	var zero T
	for len(q.items) == 0 {
		if !q.sig.WaitUntil(p, until) {
			return zero, false
		}
	}
	v := q.items[0]
	q.items = q.items[1:]
	return v, true
}

// TryPop removes the oldest item without blocking.
func (q *Queue[T]) TryPop() (T, bool) {
	var zero T
	if len(q.items) == 0 {
		return zero, false
	}
	v := q.items[0]
	q.items = q.items[1:]
	return v, true
}

// Len returns the number of queued items.
func (q *Queue[T]) Len() int { return len(q.items) }

// ---------------------------------------------------------------------------
// Mutex: a FIFO mutual-exclusion lock for simulation processes.

// Mutex serializes processes around a critical section (e.g. a
// single-writer store). Waiters wake FIFO.
type Mutex struct {
	locked bool
	sig    *Signal
}

// NewMutex returns an unlocked mutex.
func NewMutex(env *Env) *Mutex { return &Mutex{sig: NewSignal(env)} }

// Lock blocks p until the mutex is acquired.
func (m *Mutex) Lock(p *Proc) {
	for m.locked {
		m.sig.Wait(p)
	}
	m.locked = true
}

// Unlock releases the mutex and wakes one waiter.
func (m *Mutex) Unlock() {
	if !m.locked {
		panic("sim: unlock of unlocked mutex")
	}
	m.locked = false
	m.sig.Fire()
}

// TryLock acquires the mutex if free.
func (m *Mutex) TryLock() bool {
	if m.locked {
		return false
	}
	m.locked = true
	return true
}
