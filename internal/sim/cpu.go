package sim

import (
	"math"
	"sort"
)

// CPU models a node's processor complex as a processor-sharing (PS)
// server with a fixed number of cores. Compute tasks carry a work amount
// expressed as nanoseconds of dedicated-core time; while R tasks are
// runnable on C cores every task progresses at rate min(1, C/R). Busy-poll
// loops register as persistent load (AddLoad/RemoveLoad) — they consume
// core share without ever completing, which is exactly how spin-polling
// degrades co-located work under over-subscription.
//
// The PS abstraction reproduces the first-order behaviour the paper's
// Figure 5 depends on: with clients ≤ cores (under-subscription) busy
// polling is free, and beyond that every added poller stretches everyone's
// service time linearly.
type CPU struct {
	env   *Env
	cores int
	load  int // persistent runnable load (busy pollers)

	tasks      map[*cpuTask]struct{}
	nextID     uint64 // admission order, for deterministic completion ties
	lastUpdate Time
	rate       float64 // current per-task progress rate in (0,1]
	completion *event  // pending earliest-completion callback
}

type cpuTask struct {
	id        uint64  // admission order
	remaining float64 // ns of dedicated-core work left
	proc      *Proc
}

// NewCPU returns a PS CPU with the given core count.
func NewCPU(env *Env, cores int) *CPU {
	if cores < 1 {
		panic("sim: CPU needs at least one core")
	}
	return &CPU{
		env:   env,
		cores: cores,
		tasks: make(map[*cpuTask]struct{}),
		rate:  1,
	}
}

// Cores returns the core count.
func (c *CPU) Cores() int { return c.cores }

// Runnable returns the current number of runnable entities
// (active compute tasks plus persistent load).
func (c *CPU) Runnable() int { return len(c.tasks) + c.load }

// LoadFactor returns runnable/cores, floored at 1. It is the slowdown
// factor experienced by any single runnable entity.
func (c *CPU) LoadFactor() float64 {
	r := c.Runnable()
	if r <= c.cores {
		return 1
	}
	return float64(r) / float64(c.cores)
}

// AddLoad registers n persistent runnable entities (e.g. busy pollers).
func (c *CPU) AddLoad(n int) {
	c.advance()
	c.load += n
	c.reschedule()
}

// RemoveLoad deregisters n persistent runnable entities.
func (c *CPU) RemoveLoad(n int) {
	c.advance()
	c.load -= n
	if c.load < 0 {
		panic("sim: CPU load underflow")
	}
	c.reschedule()
}

// Compute blocks the process for work nanoseconds of dedicated-core time,
// stretched by processor sharing while the CPU is over-committed.
func (c *CPU) Compute(p *Proc, work Duration) {
	if work <= 0 {
		return
	}
	c.advance()
	t := &cpuTask{id: c.nextID, remaining: float64(work), proc: p}
	c.nextID++
	c.tasks[t] = struct{}{}
	c.reschedule()
	p.park()
}

// advance applies progress to all running tasks for the time elapsed since
// the last state change and completes any finished tasks.
func (c *CPU) advance() {
	now := c.env.now
	elapsed := float64(now - c.lastUpdate)
	c.lastUpdate = now
	if elapsed <= 0 || len(c.tasks) == 0 {
		return
	}
	progress := elapsed * c.rate
	// Tasks completing at the same instant must wake in a deterministic
	// order: collect them out of the (randomly iterated) map and schedule
	// in admission order, so the event sequence numbers they receive do
	// not depend on map layout.
	var done []*cpuTask
	for t := range c.tasks {
		t.remaining -= progress
		if t.remaining <= 1e-6 {
			delete(c.tasks, t)
			done = append(done, t)
		}
	}
	sort.Slice(done, func(i, j int) bool { return done[i].id < done[j].id })
	for _, t := range done {
		c.env.schedule(now, t.proc, nil)
	}
}

// reschedule recomputes the PS rate and re-arms the earliest-completion
// callback.
func (c *CPU) reschedule() {
	r := c.Runnable()
	if r <= c.cores {
		c.rate = 1
	} else {
		c.rate = float64(c.cores) / float64(r)
	}
	c.env.cancel(c.completion)
	c.completion = nil
	if len(c.tasks) == 0 {
		return
	}
	minRem := math.Inf(1)
	for t := range c.tasks {
		if t.remaining < minRem {
			minRem = t.remaining
		}
	}
	eta := Time(math.Ceil(minRem / c.rate))
	if eta < 1 {
		eta = 1
	}
	c.completion = c.env.schedule(c.env.now+eta, nil, func() {
		c.completion = nil
		c.advance()
		c.reschedule()
	})
}
