package engine

import (
	"errors"
	"testing"

	"hatrpc/internal/obs"
	"hatrpc/internal/sim"
	"hatrpc/internal/simnet"
)

// sessionCluster builds a 2-node cluster whose server node re-creates
// its engine and service from a restart hook — the full crash–restart
// lifecycle a Session is built to survive. The returned getter yields
// the server engine of the current boot.
func sessionCluster(seed int64) (*sim.Env, *simnet.Cluster, *Engine, func() *Engine) {
	env := sim.NewEnv(seed)
	cl := simnet.NewCluster(env, simnet.Config{
		Nodes: 2, Cores: 28, Sockets: 2, LinkGbps: 100, PropDelayNs: 600, NUMAPenalty: 1.25,
	})
	srvEng := New(cl.Node(0), DefaultConfig())
	srvEng.Serve("svc", echoHandler)
	cur := srvEng
	cl.Node(0).SetRestart(func(p *sim.Proc) {
		cur = New(cl.Node(0), DefaultConfig())
		cur.Serve("svc", echoHandler)
	})
	cliEng := New(cl.Node(1), DefaultConfig())
	return env, cl, cliEng, func() *Engine { return cur }
}

// TestSessionIdempotentReplayAcrossRestart is the lifecycle tentpole
// test: a call interrupted by the server crashing is replayed on a
// fresh connection to the server's next boot, invisibly to the caller.
func TestSessionIdempotentReplayAcrossRestart(t *testing.T) {
	env, cl, cliEng, _ := sessionCluster(101)
	env.At(500_000, cl.Node(0).Crash)
	env.At(700_000, cl.Node(0).Restart)
	var s *Session
	env.Spawn("client", func(p *sim.Proc) {
		var err error
		s, err = cliEng.NewSession(p, cl.Node(0).Cluster().Node(0), "svc", SessionConfig{})
		if err != nil {
			t.Fatalf("NewSession: %v", err)
		}
		resp, err := s.Call(p, 1, []byte("before"), CallOpts{Proto: EagerSendRecv, Busy: true, Idempotent: true})
		if err != nil || string(resp) != "ECHObefore" {
			t.Fatalf("pre-crash call: %q, %v", resp, err)
		}
		p.Sleep(800_000) // past the crash and the restart
		resp, err = s.Call(p, 2, []byte("after"), CallOpts{Proto: EagerSendRecv, Busy: true, Idempotent: true})
		if err != nil || string(resp) != "ECHOafter" {
			t.Fatalf("post-restart call: %q, %v", resp, err)
		}
		env.Stop()
	})
	env.Run()
	if s.Epoch() != 2 {
		t.Errorf("session epoch = %d, want 2 (one reconnect)", s.Epoch())
	}
	st := s.Stats()
	if st.Connects != 2 || st.Replays == 0 || st.Resets != 0 {
		t.Errorf("stats = %+v, want 2 connects, >0 replays, 0 resets", st)
	}
}

// TestSessionNonIdempotentFailsReset: without the Idempotent opt-in a
// reconnect-interrupted call must fail typed with ErrSessionReset — the
// session does not know whether the old server executed it.
func TestSessionNonIdempotentFailsReset(t *testing.T) {
	env, cl, cliEng, _ := sessionCluster(103)
	env.At(500_000, cl.Node(0).Crash)
	env.At(700_000, cl.Node(0).Restart)
	var s *Session
	env.Spawn("client", func(p *sim.Proc) {
		var err error
		s, err = cliEng.NewSession(p, cl.Node(0), "svc", SessionConfig{})
		if err != nil {
			t.Fatalf("NewSession: %v", err)
		}
		p.Sleep(800_000)
		_, err = s.Call(p, 1, []byte("transfer"), CallOpts{Proto: EagerSendRecv, Busy: true})
		if !errors.Is(err, ErrSessionReset) {
			t.Fatalf("err = %v, want ErrSessionReset", err)
		}
		// The session itself recovered: the next call runs on the fresh
		// connection.
		resp, err := s.Call(p, 2, []byte("again"), CallOpts{Proto: EagerSendRecv, Busy: true})
		if err != nil || string(resp) != "ECHOagain" {
			t.Fatalf("post-reset call: %q, %v", resp, err)
		}
		env.Stop()
	})
	env.Run()
	if st := s.Stats(); st.Resets != 1 || st.Replays != 0 {
		t.Errorf("stats = %+v, want 1 reset, 0 replays", st)
	}
}

// TestSessionKeepaliveReestablishesIdle: with probing enabled an idle
// session detects the peer's crash and reconnects on its own — the
// first call after a long idle period finds a live connection and
// needs no replay.
func TestSessionKeepaliveReestablishesIdle(t *testing.T) {
	env, cl, cliEng, _ := sessionCluster(107)
	env.At(1_000_000, cl.Node(0).Crash)
	env.At(1_100_000, cl.Node(0).Restart)
	var s *Session
	env.Spawn("client", func(p *sim.Proc) {
		var err error
		s, err = cliEng.NewSession(p, cl.Node(0), "svc", SessionConfig{KeepaliveInterval: 200_000})
		if err != nil {
			t.Fatalf("NewSession: %v", err)
		}
		p.Sleep(4_000_000) // idle across the crash; the prober does the work
		if s.Epoch() != 2 {
			t.Errorf("epoch after idle recovery = %d, want 2", s.Epoch())
		}
		resp, err := s.Call(p, 1, []byte("hello"), CallOpts{Proto: EagerSendRecv, Busy: true})
		if err != nil || string(resp) != "ECHOhello" {
			t.Fatalf("post-recovery call: %q, %v", resp, err)
		}
		s.Close()
		env.Stop()
	})
	env.Run()
	st := s.Stats()
	if st.Probes == 0 {
		t.Error("keepalive prober never probed")
	}
	if st.Replays != 0 || st.Resets != 0 {
		t.Errorf("idle recovery replayed/reset calls: %+v", st)
	}
	if st.Connects != 2 {
		t.Errorf("connects = %d, want 2", st.Connects)
	}
}

// TestSessionDialDownNodeFailsTyped: dialing a down node burns the
// bounded redial budget and fails with ErrPeerDown instead of blocking
// forever.
func TestSessionDialDownNodeFailsTyped(t *testing.T) {
	env, cl, cliEng, _ := sessionCluster(109)
	env.At(100, cl.Node(0).Crash)
	env.Spawn("client", func(p *sim.Proc) {
		p.Sleep(1000)
		s, err := cliEng.NewSession(p, cl.Node(0), "svc", SessionConfig{MaxRedials: 3})
		if !errors.Is(err, ErrPeerDown) {
			t.Errorf("NewSession to down node: %v, want ErrPeerDown", err)
		}
		if s != nil {
			t.Error("NewSession returned a session despite failing")
		}
		env.Stop()
	})
	env.Run()
}

// TestSessionKeepaliveProbeServed: the reserved-function probe is
// answered by any engine server without touching its dedup state or the
// application handler.
func TestSessionKeepaliveProbeServed(t *testing.T) {
	env, cl, cliEng, srv := sessionCluster(113)
	var s *Session
	env.Spawn("client", func(p *sim.Proc) {
		var err error
		s, err = cliEng.NewSession(p, cl.Node(0), "svc", SessionConfig{KeepaliveInterval: 150_000})
		if err != nil {
			t.Fatalf("NewSession: %v", err)
		}
		p.Sleep(1_000_000) // several probe ticks against a healthy server
		resp, err := s.Call(p, 5, []byte("real"), CallOpts{Proto: EagerSendRecv, Busy: true})
		if err != nil || string(resp) != "ECHOreal" {
			t.Fatalf("call after probes: %q, %v", resp, err)
		}
		s.Close()
		env.Stop()
	})
	env.Run()
	if st := s.Stats(); st.Probes < 3 {
		t.Errorf("probes = %d, want several over 1ms at 150µs interval", st.Probes)
	}
	if s.Epoch() != 1 {
		t.Errorf("probing a healthy server changed the epoch to %d", s.Epoch())
	}
	_ = srv
}

// TestBreakerHalfOpenProbeTimeout is the regression test for the
// half-open → QP-recover path: when the breaker's half-open probe
// itself times out, the gate must still have recovered the errored QP
// before the attempt (so the probe really touched the wire), and the
// failed probe must re-open the breaker with a doubled cooldown.
func TestBreakerHalfOpenProbeTimeout(t *testing.T) {
	env := sim.NewEnv(127)
	cl := simnet.NewCluster(env, simnet.Config{
		Nodes: 2, Cores: 28, Sockets: 2, LinkGbps: 100, PropDelayNs: 600, NUMAPenalty: 1.25,
	})
	cl.InstallFaults(simnet.FaultConfig{DropProb: 1.0}) // nothing gets through, ever
	cfg := DefaultConfig()
	cfg.CallDeadline = 300_000
	cfg.BreakerThreshold = 2
	cfg.BreakerCooldown = 1_000_000
	srvEng := New(cl.Node(0), cfg)
	cliEng := New(cl.Node(1), cfg)
	reg := obs.NewRegistry()
	cliEng.SetObs(reg)
	srvEng.Serve("svc", echoHandler)
	env.Spawn("client", func(p *sim.Proc) {
		c := cliEng.Dial(p, srvEng.Node(), "svc")
		// Two availability-class failures trip the threshold-2 breaker.
		for i := 0; i < 2; i++ {
			if _, err := c.Call(p, uint32(i), []byte("x"), CallOpts{Proto: EagerSendRecv, Busy: true}); !IsUnavailable(err) {
				t.Fatalf("call %d: %v, want unavailable", i, err)
			}
		}
		if c.brk.state != brkOpen {
			t.Fatalf("breaker state = %d, want open", c.brk.state)
		}
		if _, err := c.Call(p, 2, []byte("x"), CallOpts{Proto: EagerSendRecv, Busy: true}); !errors.Is(err, ErrCircuitOpen) {
			t.Fatalf("open-state err = %v, want ErrCircuitOpen", err)
		}
		recovBefore := reg.Counter("engine.qp_recoveries").Value()
		errored := c.qp.Errored()
		p.Sleep(1_200_000) // past the cooldown: next call is the probe
		_, err := c.Call(p, 3, []byte("probe"), CallOpts{Proto: EagerSendRecv, Busy: true})
		if !IsUnavailable(err) {
			t.Fatalf("probe err = %v, want unavailable (it was admitted, and it timed out)", err)
		}
		if errored && reg.Counter("engine.qp_recoveries").Value() <= recovBefore {
			t.Error("half-open gate did not recover the errored QP before the probe")
		}
		// Failed probe: back to open with the cooldown doubled.
		if c.brk.state != brkOpen {
			t.Errorf("post-probe breaker state = %d, want open", c.brk.state)
		}
		if c.brk.cooldown != 2*c.brk.base {
			t.Errorf("post-probe cooldown = %d, want doubled base %d", c.brk.cooldown, 2*c.brk.base)
		}
		if _, err := c.Call(p, 4, []byte("x"), CallOpts{Proto: EagerSendRecv, Busy: true}); !errors.Is(err, ErrCircuitOpen) {
			t.Errorf("after failed probe: %v, want ErrCircuitOpen", err)
		}
		env.Stop()
	})
	env.Run()
	if got := cliEng.BreakerOpens(); got != 2 {
		t.Errorf("BreakerOpens = %d, want 2 (trip + failed probe)", got)
	}
}
