package engine

import (
	"errors"
	"fmt"

	"hatrpc/internal/obs"
	"hatrpc/internal/sim"
	"hatrpc/internal/verbs"
)

// Typed call failures. A deadline-bounded call always returns one of
// these (or succeeds); it never blocks forever. The reliability layer
// wraps these sentinels with per-call context, so callers must match
// them with errors.Is (or IsUnavailable) — never with ==.
var (
	// ErrDeadline: the call's deadline expired before a response arrived.
	// The transport looked healthy at expiry — the request or response
	// was lost (or the server is slow) and retries ran out of time.
	ErrDeadline = errors.New("engine: call deadline exceeded")
	// ErrPeerDown: the deadline expired with the connection's QP in the
	// error state — the transport to the peer was failing at expiry
	// (link flap, partition, peer crash), not merely slow.
	ErrPeerDown = errors.New("engine: peer unreachable")
	// ErrStaleShardEpoch: the request carried a shard epoch older than
	// the replica's current one — the shard failed over and this client
	// (or a deposed primary) is routing on a stale shard map. Minted by
	// cluster tiers layered above the engine (internal/cluster), defined
	// here so it joins the engine's unavailability class: the remedy —
	// refresh routing state and replay — is the session playbook, one
	// layer up. Mirrors the verbs epoch-tagged-RKey discipline
	// (WCRemoteInvalid on stale rkeys) at the shard level.
	ErrStaleShardEpoch = errors.New("engine: stale shard epoch")
	// ErrDraining: the server is in graceful drain — it answered the
	// request with a typed header-only rejection instead of executing it.
	// Unlike ErrOverloaded (a transient shed under admission pressure),
	// draining announces the node is going away on purpose: clients
	// should re-route to another replica rather than retry the same peer.
	ErrDraining = errors.New("engine: server draining (session fenced)")
)

// IsUnavailable reports whether err is an availability-class failure,
// wrapped or bare. These are the errors that say "the peer, or the path
// to it, or the routing state naming it, is unhealthy right now": the
// session layer and cluster clients react to them with
// reconnect/refresh + replay; validation and typed application errors
// are not in the class. The full set is pinned by a table test:
//
//	ErrDeadline        — response never arrived in time
//	ErrPeerDown        — transport failing at expiry
//	ErrOverloaded      — server shed the request under admission control
//	ErrDraining        — server fenced the request during graceful drain
//	ErrSessionReset    — reconnect interrupted a non-idempotent call
//	ErrCircuitOpen     — breaker is open; peer recently unhealthy
//	ErrStaleShardEpoch — shard failed over; routing state is stale
//
// Of these only the first four feed the circuit breaker: breakerObserve
// runs on transport call outcomes, where the last three are never
// produced (ErrCircuitOpen is minted by the breaker gate before the
// call, ErrSessionReset and ErrStaleShardEpoch by layers above Conn).
// A draining peer tripping the breaker is intended: it steers new calls
// away from the node faster than per-call rejections would.
func IsUnavailable(err error) bool {
	return errors.Is(err, ErrDeadline) || errors.Is(err, ErrPeerDown) ||
		errors.Is(err, ErrOverloaded) || errors.Is(err, ErrSessionReset) ||
		errors.Is(err, ErrCircuitOpen) || errors.Is(err, ErrStaleShardEpoch) ||
		errors.Is(err, ErrDraining)
}

// rejectErr maps a typed header-only rejection kind to its sentinel.
func rejectErr(kind byte) error {
	if kind == kDrain {
		return ErrDraining
	}
	return ErrOverloaded
}

// Retry pacing. The backoff starts comfortably above the RC retry
// timeout (so a dropped message has erred its QP before the first
// retransmission probes it) and doubles up to the cap.
const (
	retryBackoffBaseNs = 50_000  // first retransmission wait
	retryBackoffCapNs  = 400_000 // backoff ceiling
	// serverCTSTimeoutNs bounds a server dispatcher's rendezvous-CTS
	// wait when fault injection is active, so a client that aborted
	// mid-handshake cannot wedge the dispatcher. The client's
	// retransmission (dedup) restarts the response from scratch.
	serverCTSTimeoutNs = 200_000
)

// faultsActive reports whether the cluster has a fault plan installed.
// All reliability-only costs (bounded server waits, QP recovery) hide
// behind it or behind an explicit deadline, keeping the lossless-fabric
// path byte-identical to builds without this layer.
func (c *Conn) faultsActive() bool {
	return c.eng.node.Cluster().Faults() != nil
}

// recoverQP cycles the connection's QP out of the error state (if a
// prior loss erred it) before the next attempt touches the wire.
func (c *Conn) recoverQP(p *sim.Proc) {
	if !c.qp.Errored() {
		return
	}
	c.qp.Recover(p)
	if m := c.eng.em; m != nil {
		m.qpRecoveries.Inc()
	}
}

// armWake schedules a signal fire at the given virtual time so a bounded
// wait loop gets a chance to observe its timeout. Spurious fires (the
// wait already returned) are absorbed by the signal's condition loops.
func (c *Conn) armWake(until sim.Time) {
	if until > c.eng.env.Now() {
		c.eng.env.At(until, c.sig.Fire)
	}
}

// callReliable runs the deadline/retransmit state machine around one
// request/response call: send the request (seq-tagged), wait up to the
// current backoff for the response, and retransmit with doubled backoff
// until the response arrives or the deadline expires. The server
// deduplicates by seq, so a retransmitted request is executed at most
// once; stale duplicate responses are discarded by seq filtering.
func (c *Conn) callReliable(p *sim.Proc, h hdr, req []byte, respProto Protocol, poll PollMode, until sim.Time) ([]byte, error) {
	eng := c.eng
	backoff := sim.Duration(retryBackoffBaseNs)
	for attempt := 0; ; attempt++ {
		if attempt > 0 {
			if m := eng.em; m != nil {
				m.retries.Inc()
			}
			eng.trc.Instant("rpc", "retry", eng.node.ID(), c.id, int64(p.Now()),
				obs.Arg{K: "seq", V: h.seq}, obs.Arg{K: "attempt", V: attempt})
		}
		c.recoverQP(p)
		attemptUntil := p.Now() + sim.Time(backoff)
		if attemptUntil > until {
			attemptUntil = until
		}
		if c.sendMessageUntil(p, h, req, poll, attemptUntil) {
			var out []byte
			var ok bool
			var err error
			switch respProto {
			case RFP:
				out, ok, err = c.fetchRFPUntil(p, poll, attemptUntil)
			case Pilaf:
				out, ok, err = c.fetchKVUntil(p, 2, poll, attemptUntil)
			case FaRM:
				out, ok, err = c.fetchKVUntil(p, 1, poll, attemptUntil)
			default:
				out, ok, err = c.awaitResponse(p, h.seq, poll, attemptUntil)
			}
			if err != nil {
				// Typed server rejection (shed): terminal — retrying into
				// an overloaded server immediately only feeds the overload.
				c.abortCall(h.seq)
				return nil, err
			}
			if ok {
				return out, nil
			}
		} else if out, ok, err := c.pollResponse(p, h.seq, poll); ok || err != nil {
			// The handshake timed out because the server already served
			// this request (its dedup path answers a retransmitted RTS
			// with the response, never a CTS) — and the response was
			// pumped into respQueue by the failed handshake wait itself.
			// Without this check the retry loop would spin on RTS → dup
			// response → CTS timeout until the deadline.
			if err != nil {
				c.abortCall(h.seq)
				return nil, err
			}
			return out, nil
		}
		if p.Now() >= until {
			return nil, c.failCall(h.seq)
		}
		backoff *= 2
		if backoff > retryBackoffCapNs {
			backoff = retryBackoffCapNs
		}
	}
}

// sendOnewayReliable is the oneway variant: there is no response to
// confirm delivery, but protocols with a handshake (Write-RNDV's
// RTS/CTS) still need bounded waits and retransmission to get the
// payload off the node.
func (c *Conn) sendOnewayReliable(p *sim.Proc, h hdr, req []byte, poll PollMode, until sim.Time) error {
	eng := c.eng
	backoff := sim.Duration(retryBackoffBaseNs)
	for attempt := 0; ; attempt++ {
		if attempt > 0 {
			if m := eng.em; m != nil {
				m.retries.Inc()
			}
		}
		c.recoverQP(p)
		attemptUntil := p.Now() + sim.Time(backoff)
		if attemptUntil > until {
			attemptUntil = until
		}
		if c.sendMessageUntil(p, h, req, poll, attemptUntil) {
			return nil
		}
		if p.Now() >= until {
			return c.failCall(h.seq)
		}
		backoff *= 2
		if backoff > retryBackoffCapNs {
			backoff = retryBackoffCapNs
		}
	}
}

// failCall records a deadline expiry, reclaims the call's per-seq
// control state, and maps the failure to its typed error.
func (c *Conn) failCall(seq uint32) error {
	c.abortCall(seq)
	if m := c.eng.em; m != nil {
		m.deadlineExceeded.Inc()
	}
	if c.qp.Errored() {
		return fmt.Errorf("engine: seq %d: %w", seq, ErrPeerDown)
	}
	return fmt.Errorf("engine: seq %d: %w", seq, ErrDeadline)
}

// abortCall reclaims the per-seq control state of a call that died
// mid-flight, so deadline-exceeded calls leak neither map entries nor
// pinned bytes. Rendezvous buffers that a peer-side one-sided transfer
// may still target cannot be returned to the pool immediately (the DMA
// would land in a recycled buffer); they move to the orphan tables and
// are released by the late completion (WRITE_IMM, READ, FIN) or by
// Close, whichever comes first.
func (c *Conn) abortCall(seq uint32) {
	delete(c.ctsReady, seq)
	delete(c.frags, seq)
	if buf, ok := c.rndvIn[seq]; ok {
		delete(c.rndvIn, seq)
		// Withdraw the grant so the peer's late rkey lookup fails cleanly
		// instead of writing into a buffer we are about to recycle.
		delete(c.shared.rndv, rndvKey(seq, !c.server))
		c.orphanIn[seq] = buf
	}
	if buf, ok := c.rndvOut[seq]; ok {
		delete(c.rndvOut, seq)
		// The shared entry stays: a peer READ may be in flight against
		// it. The FIN (or Close) removes both.
		c.orphanOut[seq] = buf
	}
}

// awaitResponse pumps completions until the response for seq arrives or
// the bound expires. Responses for other seqs are stale duplicates from
// earlier attempts (or earlier calls) and are discarded — the dedup
// guarantee means their payloads equal what the original call already
// returned. A kErr/kDrain arrival for seq is the server's typed
// rejection and returns ErrOverloaded / ErrDraining.
func (c *Conn) awaitResponse(p *sim.Proc, seq uint32, poll PollMode, until sim.Time) ([]byte, bool, error) {
	c.enterWait(poll)
	defer c.exitWait()
	c.armWake(until)
	for {
		for len(c.respQueue) > 0 {
			a := c.respQueue[0]
			c.respQueue = c.respQueue[1:]
			if a.Seq != seq {
				continue
			}
			if a.Kind == kResp {
				c.chargeDetect(p, poll)
				c.stats.BytesRecvd += int64(len(a.Payload))
				return a.Payload, true, nil
			}
			if a.Kind == kErr || a.Kind == kDrain {
				c.chargeDetect(p, poll)
				return nil, false, rejectErr(a.Kind)
			}
		}
		if p.Now() >= until {
			return nil, false, nil
		}
		if c.pumpCompletions(p) > 0 {
			continue
		}
		c.pumpWait(p, poll)
	}
}

// pollResponse scans the queued arrivals for the response (or shed
// rejection) to seq without blocking, consuming it when present.
// Non-matching entries are left for awaitResponse's drain to discard.
func (c *Conn) pollResponse(p *sim.Proc, seq uint32, poll PollMode) ([]byte, bool, error) {
	for i, a := range c.respQueue {
		if a.Seq != seq || (a.Kind != kResp && a.Kind != kErr && a.Kind != kDrain) {
			continue
		}
		c.respQueue = append(c.respQueue[:i], c.respQueue[i+1:]...)
		c.chargeDetect(p, poll)
		if a.Kind == kErr || a.Kind == kDrain {
			return nil, false, rejectErr(a.Kind)
		}
		c.stats.BytesRecvd += int64(len(a.Payload))
		return a.Payload, true, nil
	}
	return nil, false, nil
}

// releaseOrphan returns an orphaned rendezvous buffer (the late
// completion for an aborted call finally arrived).
func (c *Conn) releaseOrphan(m map[uint32]*verbs.MR, seq uint32) {
	if buf, ok := m[seq]; ok {
		delete(m, seq)
		c.eng.releaseRndv(buf)
	}
}
