package engine

import (
	"errors"
	"fmt"
	"testing"

	"hatrpc/internal/sim"
	"hatrpc/internal/simnet"
)

// TestIsUnavailableCoversTypedUnavailability pins the availability
// class: every typed unavailability error — bare or wrapped — is in it,
// and validation/flow errors are not. Adding a typed unavailability
// error without extending IsUnavailable (or vice versa) fails here.
func TestIsUnavailableCoversTypedUnavailability(t *testing.T) {
	cases := []struct {
		err  error
		want bool
	}{
		{ErrDeadline, true},
		{ErrPeerDown, true},
		{ErrOverloaded, true},
		{ErrSessionReset, true},
		{ErrCircuitOpen, true},
		{ErrStaleShardEpoch, true},
		{ErrDraining, true},
		{ErrNoCredits, false},
		{errors.New("engine: some validation failure"), false},
	}
	for _, tc := range cases {
		if got := IsUnavailable(tc.err); got != tc.want {
			t.Errorf("IsUnavailable(%v) = %v, want %v", tc.err, got, tc.want)
		}
		wrapped := fmt.Errorf("seq 42: %w", tc.err)
		if got := IsUnavailable(wrapped); got != tc.want {
			t.Errorf("IsUnavailable(wrapped %v) = %v, want %v", tc.err, got, tc.want)
		}
	}
	if IsUnavailable(nil) {
		t.Error("IsUnavailable(nil) = true")
	}
}

// TestSessionKeepaliveAsymmetricPartition: only the server→client
// direction of the link is cut, so the client's keepalive probes reach
// the server but the replies vanish. The prober must time out, tear the
// connection down and re-dial — blocked (typed, not hanging) while the
// cut also blocks the dial handshake, succeeding as soon as it heals.
func TestSessionKeepaliveAsymmetricPartition(t *testing.T) {
	env, cl, cliEng, _ := sessionCluster(131)
	cl.InstallFaults(simnet.FaultConfig{
		OneWayCuts: []simnet.LinkCut{{From: 0, To: 1, StartNs: 1_000_000, EndNs: 3_000_000}},
	})
	finished := false
	var s *Session
	env.Spawn("client", func(p *sim.Proc) {
		var err error
		s, err = cliEng.NewSession(p, cl.Node(0), "svc", SessionConfig{KeepaliveInterval: 200_000})
		if err != nil {
			t.Fatalf("NewSession: %v", err)
		}
		resp, err := s.Call(p, 1, []byte("pre"), CallOpts{Proto: EagerSendRecv, Busy: true, Idempotent: true})
		if err != nil || string(resp) != "ECHOpre" {
			t.Fatalf("pre-cut call: %q, %v", resp, err)
		}
		for p.Now() < 1_200_000 {
			p.Sleep(50_000) // into the cut window
		}
		// A fresh dial during the cut fails typed: the handshake needs the
		// severed direction.
		if _, err := cliEng.NewSession(p, cl.Node(0), "svc", SessionConfig{
			MaxRedials: 2, RedialBackoff: 100_000,
		}); !IsUnavailable(err) {
			t.Errorf("dial during asymmetric cut: %v, want typed unavailability", err)
		}
		// Idle across the heal: the established session's prober detects
		// the silent link and re-dials on its own once the cut lifts.
		for p.Now() < 3_600_000 {
			p.Sleep(200_000)
		}
		if s.Epoch() < 2 {
			t.Errorf("session epoch = %d, want ≥ 2 (prober never re-dialed)", s.Epoch())
		}
		resp, err = s.Call(p, 2, []byte("post"), CallOpts{Proto: EagerSendRecv, Busy: true, Idempotent: true})
		if err != nil || string(resp) != "ECHOpost" {
			t.Fatalf("post-heal call: %q, %v", resp, err)
		}
		finished = true
		env.Stop()
	})
	env.At(30_000_000, env.Stop) // watchdog: a hang is a failure, not a deadlock
	env.Run()
	if !finished {
		t.Fatal("client never finished — session hung under the asymmetric partition")
	}
	if st := s.Stats(); st.Connects < 2 {
		t.Errorf("connects = %d, want ≥ 2", st.Connects)
	}
}

// TestBreakerHalfOpenRespectsHeal: the breaker trips while the
// response direction is cut, rejects locally while open, and the
// half-open probe after the heal closes it — exactly one open over the
// whole episode.
func TestBreakerHalfOpenRespectsHeal(t *testing.T) {
	env := sim.NewEnv(137)
	cl := simnet.NewCluster(env, simnet.Config{
		Nodes: 2, Cores: 28, Sockets: 2, LinkGbps: 100, PropDelayNs: 600, NUMAPenalty: 1.25,
	})
	// The cut opens well after the blocking dial handshake (~100µs of
	// OOB round trips) completes.
	cl.InstallFaults(simnet.FaultConfig{
		OneWayCuts: []simnet.LinkCut{{From: 0, To: 1, StartNs: 600_000, EndNs: 2_000_000}},
	})
	cfg := DefaultConfig()
	cfg.CallDeadline = 300_000
	cfg.BreakerThreshold = 2
	cfg.BreakerCooldown = 1_000_000
	srvEng := New(cl.Node(0), cfg)
	cliEng := New(cl.Node(1), cfg)
	srvEng.Serve("svc", echoHandler)
	env.Spawn("client", func(p *sim.Proc) {
		c := cliEng.Dial(p, srvEng.Node(), "svc") // dialed before the cut
		for p.Now() < 700_000 {
			p.Sleep(50_000) // cut active: requests arrive, replies vanish
		}
		for i := 0; i < 2; i++ {
			if _, err := c.Call(p, uint32(i), []byte("x"), CallOpts{Proto: EagerSendRecv, Busy: true}); !IsUnavailable(err) {
				t.Fatalf("call %d under cut: %v, want unavailable", i, err)
			}
		}
		if _, err := c.Call(p, 2, []byte("x"), CallOpts{Proto: EagerSendRecv, Busy: true}); !errors.Is(err, ErrCircuitOpen) {
			t.Fatalf("open-state err = %v, want ErrCircuitOpen", err)
		}
		// Past the heal AND the cooldown: the half-open probe must see the
		// healed link and close the breaker.
		for p.Now() < 2_500_000 {
			p.Sleep(100_000)
		}
		resp, err := c.Call(p, 3, []byte("probe"), CallOpts{Proto: EagerSendRecv, Busy: true})
		if err != nil || string(resp) != "ECHOprobe" {
			t.Fatalf("half-open probe after heal: %q, %v", resp, err)
		}
		if _, err := c.Call(p, 4, []byte("after"), CallOpts{Proto: EagerSendRecv, Busy: true}); err != nil {
			t.Fatalf("post-close call: %v", err)
		}
		env.Stop()
	})
	env.Run()
	if got := cliEng.BreakerOpens(); got != 1 {
		t.Errorf("BreakerOpens = %d, want 1 (trip, then close on healed probe)", got)
	}
}
