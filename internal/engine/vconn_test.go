package engine

import (
	"bytes"
	"errors"
	"fmt"
	"testing"

	"hatrpc/internal/hints"
	"hatrpc/internal/obs"
	"hatrpc/internal/sim"
	"hatrpc/internal/simnet"
)

// TestDedupPerSessionInterleave is the regression for the single-slot
// dedup cache: two virtual sessions interleave on one physical conn,
// then session 1's request is retransmitted. The sid-keyed cache must
// answer it from the cached response without re-running the handler —
// the old single-slot cache was evicted by session 2's call in between
// and would execute the request a second time.
func TestDedupPerSessionInterleave(t *testing.T) {
	env, srvEng, cliEng := testCluster(51)
	runs := 0
	srvEng.Serve("svc", func(p *sim.Proc, fn uint32, req []byte) []byte {
		runs++
		return append([]byte("R"), req...)
	})
	env.Spawn("client", func(p *sim.Proc) {
		c := cliEng.Dial(p, srvEng.Node(), "svc")
		opts := CallOpts{Proto: EagerSendRecv, RespProto: EagerSendRecv, Busy: true}
		o1, o2 := opts, opts
		o1.SID, o2.SID = 101, 202
		r1, err := c.Call(p, 1, []byte("a"), o1)
		if err != nil || string(r1) != "Ra" {
			t.Errorf("session 1 call: %q, %v", r1, err)
		}
		seq1 := c.seq // the wire seq session 1's request carried
		if _, err := c.Call(p, 1, []byte("b"), o2); err != nil {
			t.Errorf("session 2 call: %v", err)
		}
		if runs != 2 {
			t.Fatalf("handler ran %d times before the retransmit, want 2", runs)
		}
		// Forge the retransmission of session 1's request: same header
		// (sid, seq) as the original.
		h := hdr{kind: kReq, proto: EagerSendRecv, respProto: EagerSendRecv,
			fn: 1, length: 1, seq: seq1, sid: 101}
		c.sendMessage(p, h, []byte("a"), PollBusyMode)
		a := c.nextArrival(p, PollBusyMode)
		if a.Kind != kResp || a.Seq != seq1 || string(a.Payload) != "Ra" {
			t.Errorf("retransmit answer: kind %d seq %d payload %q, want cached kResp seq %d %q",
				a.Kind, a.Seq, a.Payload, seq1, "Ra")
		}
		if runs != 2 {
			t.Errorf("handler ran %d times after the retransmit, want 2 (dedup miss re-executed)", runs)
		}
		if m := a.SID; m != 101 {
			t.Errorf("cached response sid = %d, want 101", m)
		}
		env.Stop()
	})
	env.Run()
}

// TestDedupEvictionBounded: the dedup table holds DedupSessions entries
// with FIFO insertion-order eviction, so an evicted session's
// retransmission re-executes (at-most-once degrades gracefully to
// at-least-once past the bound) while retained sessions still hit.
func TestDedupEvictionBounded(t *testing.T) {
	env := sim.NewEnv(52)
	cl := simnet.NewCluster(env, simnet.Config{
		Nodes: 2, Cores: 28, Sockets: 2, LinkGbps: 100, PropDelayNs: 600, NUMAPenalty: 1.25,
	})
	cfg := DefaultConfig()
	cfg.DedupSessions = 2
	srvEng := New(cl.Node(0), cfg)
	cliEng := New(cl.Node(1), cfg)
	runs := 0
	srvEng.Serve("svc", func(p *sim.Proc, fn uint32, req []byte) []byte {
		runs++
		return []byte("ok")
	})
	env.Spawn("client", func(p *sim.Proc) {
		c := cliEng.Dial(p, srvEng.Node(), "svc")
		opts := CallOpts{Proto: EagerSendRecv, RespProto: EagerSendRecv, Busy: true}
		seqs := map[uint32]uint32{}
		for _, sid := range []uint32{1, 2, 3} { // sid 1 evicted at sid 3
			o := opts
			o.SID = sid
			if _, err := c.Call(p, 1, []byte("x"), o); err != nil {
				t.Errorf("sid %d: %v", sid, err)
			}
			seqs[sid] = c.seq
		}
		replay := func(sid uint32) {
			h := hdr{kind: kReq, proto: EagerSendRecv, respProto: EagerSendRecv,
				fn: 1, length: 1, seq: seqs[sid], sid: sid}
			c.sendMessage(p, h, []byte("x"), PollBusyMode)
			c.nextArrival(p, PollBusyMode)
		}
		replay(3) // retained: cache hit
		if runs != 3 {
			t.Errorf("retained session replay re-executed (runs %d, want 3)", runs)
		}
		replay(1) // evicted: re-executes
		if runs != 4 {
			t.Errorf("evicted session replay answered from a stale cache (runs %d, want 4)", runs)
		}
		env.Stop()
	})
	env.Run()
}

// vpoolCluster spawns a fabric and a server whose handler busy-spins for
// the duration encoded in the request's first 4 bytes — letting each
// call pick its own occupancy.
func vpoolCluster(seed int64) (*sim.Env, *Engine, *Engine) {
	env, srvEng, cliEng := testCluster(seed)
	srvEng.Serve("svc", func(p *sim.Proc, fn uint32, req []byte) []byte {
		ns := int64(req[0])<<16 | int64(req[1])<<8 | int64(req[2])
		srvEng.Node().CPU.Compute(p, sim.Duration(ns*1000))
		return req[:1]
	})
	return env, srvEng, cliEng
}

func durReq(us int) []byte {
	return []byte{byte(us >> 16), byte(us >> 8), byte(us), 0}
}

// TestVPoolPriorityClasses: on a 1-conn pool held by a bulk call, a
// high-priority waiter that queued *after* a low-priority one borrows
// first — the priority hint's HOL escape hatch.
func TestVPoolPriorityClasses(t *testing.T) {
	env, srvEng, cliEng := vpoolCluster(53)
	var order []string
	opts := CallOpts{Proto: EagerSendRecv, RespProto: DirectWriteIMM, Busy: true}
	env.Spawn("pool", func(p *sim.Proc) {
		pl := cliEng.DialPool(p, srvEng.Node(), "svc", VPoolConfig{Size: 1, Priority: true})
		low := hints.TypeCheck(hints.Group{hints.KeyPriority: "low"})
		high := hints.TypeCheck(hints.Group{hints.KeyPriority: "high"})
		holder, lo, hi := pl.Open(0, low), pl.Open(0, low), pl.Open(1, high)
		call := func(name string, vc *VConn, us, startNs int64) {
			env.Spawn(name, func(wp *sim.Proc) {
				wp.Sleep(sim.Duration(startNs))
				if _, err := vc.Call(wp, 1, durReq(int(us)), opts); err != nil {
					t.Errorf("%s: %v", name, err)
				}
				order = append(order, name)
			})
		}
		call("holder", holder, 1000, 0) // occupies the only conn ~1ms
		call("low", lo, 1, 10_000)      // queues first...
		call("high", hi, 1, 20_000)     // ...but the high class drains first
	})
	env.Run()
	want := []string{"holder", "high", "low"}
	if fmt.Sprint(order) != fmt.Sprint(want) {
		t.Fatalf("completion order %v, want %v", order, want)
	}
}

// TestVPoolTenantCap: a tenant at its borrow cap parks even while the
// pool has free conns, and other tenants keep borrowing past it.
func TestVPoolTenantCap(t *testing.T) {
	env, srvEng, cliEng := vpoolCluster(54)
	var order []string
	opts := CallOpts{Proto: EagerSendRecv, RespProto: DirectWriteIMM, Busy: true}
	var pool *VPool
	env.Spawn("pool", func(p *sim.Proc) {
		pl := cliEng.DialPool(p, srvEng.Node(), "svc", VPoolConfig{Size: 2, TenantCap: 1})
		pool = pl
		r := hints.DefaultResolved()
		t0a, t0b, t1 := pl.Open(0, r), pl.Open(0, r), pl.Open(1, r)
		call := func(name string, vc *VConn, us, startNs int64) {
			env.Spawn(name, func(wp *sim.Proc) {
				wp.Sleep(sim.Duration(startNs))
				if _, err := vc.Call(wp, 1, durReq(int(us)), opts); err != nil {
					t.Errorf("%s: %v", name, err)
				}
				order = append(order, name)
			})
		}
		call("t0-hold", t0a, 1000, 0)   // tenant 0 at cap for ~1ms
		call("t0-wait", t0b, 1, 10_000) // parks on the partition, conn free
		call("t1-go", t1, 1, 20_000)    // other tenant sails past
	})
	env.Run()
	want := []string{"t1-go", "t0-hold", "t0-wait"}
	if fmt.Sprint(order) != fmt.Sprint(want) {
		t.Fatalf("completion order %v, want %v", order, want)
	}
	if pool.TenantWaits == 0 {
		t.Error("no tenant-cap park counted despite a free conn")
	}
}

// TestVConnSIDs: session ids are nonzero, unique, and carry the tenant
// recoverably — the demux key contract.
func TestVConnSIDs(t *testing.T) {
	env, srvEng, cliEng := testCluster(55)
	srvEng.Serve("svc", echoHandler)
	env.Spawn("pool", func(p *sim.Proc) {
		pl := cliEng.DialPool(p, srvEng.Node(), "svc", VPoolConfig{Size: 1})
		seen := map[uint32]bool{}
		for _, tenant := range []uint32{0, 1, 7, 4095} {
			for i := 0; i < 3; i++ {
				vc := pl.Open(tenant, hints.DefaultResolved())
				if vc.SID() == 0 {
					t.Error("sid 0 assigned to a virtual connection (reserved for legacy)")
				}
				if seen[vc.SID()] {
					t.Errorf("duplicate sid %d", vc.SID())
				}
				seen[vc.SID()] = true
				if got := SIDTenant(vc.SID()); got != tenant {
					t.Errorf("SIDTenant(%#x) = %d, want %d", vc.SID(), got, tenant)
				}
			}
		}
		env.Stop()
	})
	env.Run()
}

// TestServerTenantLimitSheds: the server-side per-tenant partition sheds
// typed once a tenant holds its handler quota, while another tenant's
// traffic is untouched — and sid-0 (legacy) traffic is never partitioned.
func TestServerTenantLimitSheds(t *testing.T) {
	cfg := DefaultConfig()
	cfg.CallDeadline = 50_000_000
	env, srvEng, cliEng := flowCluster(56, cfg)
	srv := srvEng.Serve("svc", slowEchoHandler(srvEng.Node(), 500_000))
	srv.TenantLimit = 1
	opts := CallOpts{Proto: EagerSendRecv, RespProto: DirectWriteIMM, Busy: true}
	var t0Shed, legacyShed int
	done := 0
	// Three clients of tenant 0 on separate conns hammer concurrently;
	// with a 1-handler tenant quota at least one call sheds typed.
	for i := 0; i < 3; i++ {
		i := i
		env.Spawn(fmt.Sprintf("t0-%d", i), func(p *sim.Proc) {
			c := cliEng.Dial(p, srvEng.Node(), "svc")
			o := opts
			o.SID = makeSID(0, uint32(i+1))
			if _, err := c.Call(p, 1, []byte("x"), o); err != nil {
				if !errors.Is(err, ErrOverloaded) {
					t.Errorf("t0-%d: %v", i, err)
				}
				t0Shed++
			}
			if done++; done == 4 {
				env.Stop()
			}
		})
	}
	env.Spawn("legacy", func(p *sim.Proc) {
		c := cliEng.Dial(p, srvEng.Node(), "svc")
		for j := 0; j < 2; j++ { // sequential sid-0 calls: never partitioned
			if _, err := c.Call(p, 1, []byte("y"), opts); err != nil {
				legacyShed++
				t.Errorf("legacy call %d: %v", j, err)
			}
		}
		if done++; done == 4 {
			env.Stop()
		}
	})
	env.Run()
	if t0Shed == 0 || srv.TenantShed == 0 {
		t.Errorf("tenant 0 never shed (client %d, server %d), want >0", t0Shed, srv.TenantShed)
	}
	if int64(t0Shed) != srv.TenantShed {
		t.Errorf("client saw %d sheds, server counted %d", t0Shed, srv.TenantShed)
	}
	if legacyShed != 0 {
		t.Errorf("sid-0 traffic hit the tenant partition %d times", legacyShed)
	}
}

// TestSRQCreditOvercommitRNR is the shared-ring exhaustion interaction:
// each server conn grants FlowCredits against its own nominal ring, so
// two conns' credit budgets overcommit a shared ring half their sum.
// While the dispatchers are wedged in a slow handler the flood draws
// RNR NAKs on the shared ring, yet — with a generous retry budget —
// every oneway eventually lands and the engine stays live. At quiesce
// the shared ring accounts for every slot, and Close unpins the shared
// MR.
func TestSRQCreditOvercommitRNR(t *testing.T) {
	cfg := DefaultConfig()
	cfg.EagerSlots = 4
	cfg.SRQSlots = 4 // two conns × 4 credits each overcommit this
	cfg.FlowCredits = 4
	cfg.ModelRNR = true
	cfg.RnrRetry = 100
	env, srvEng, cliEng := flowCluster(57, cfg)
	srvEng.Serve("svc", slowEchoHandler(srvEng.Node(), 100_000))
	done := 0
	for i := 0; i < 2; i++ {
		i := i
		env.Spawn(fmt.Sprintf("cl%d", i), func(p *sim.Proc) {
			c := cliEng.Dial(p, srvEng.Node(), "svc")
			for j := 0; j < 8; j++ {
				if _, err := c.Call(p, 1, []byte("flood"), CallOpts{Proto: EagerSendRecv, Oneway: true, Busy: true}); err != nil {
					t.Errorf("cl%d oneway %d: %v", i, j, err)
				}
			}
			p.Sleep(5_000_000) // drain the backlog
			resp, err := c.Call(p, 2, []byte("after"), CallOpts{Proto: EagerSendRecv, Busy: true})
			if err != nil || string(resp) != "ECHOafter" {
				t.Errorf("cl%d post-flood: %q, %v", i, resp, err)
			}
			if done++; done == 2 {
				env.Stop()
			}
		})
	}
	env.Run()
	if srvEng.RnrNaks() == 0 {
		t.Error("credit overcommit on the shared ring drew no RNR NAKs")
	}
	// Shared-ring leak accounting: posted depth + unpolled completions
	// across every attached conn must equal the ring size at quiesce.
	unpolled := 0
	for _, c := range srvEng.Conns() {
		unpolled += c.UnpolledRecvs()
		if got := c.PostedRecvs(); got != 0 {
			t.Errorf("conn %d: private ring depth %d on an SRQ conn, want 0", c.ID(), got)
		}
	}
	if got := srvEng.SRQDepth() + unpolled; got != cfg.SRQSlots {
		t.Errorf("shared ring accounts for %d slots (%d posted + %d unpolled), want %d",
			got, srvEng.SRQDepth(), unpolled, cfg.SRQSlots)
	}
	srvEng.Close()
	if got := srvEng.PinnedBytes(); got != 0 {
		t.Errorf("server pinned bytes after Close = %d, want 0 (shared ring leak)", got)
	}
}

// virtTrace runs a fixed multi-protocol workload and serializes its
// trace + metrics. armed=true configures every virtualization knob that
// is supposed to be pay-for-use (dedup bound, tenant partition) without
// sending a single sid — the traffic itself stays legacy.
func virtTrace(t *testing.T, seed int64, armed bool) []byte {
	t.Helper()
	env := sim.NewEnv(seed)
	cl := simnet.NewCluster(env, simnet.Config{
		Nodes: 2, Cores: 28, Sockets: 2, LinkGbps: 100, PropDelayNs: 600, NUMAPenalty: 1.25,
	})
	cfg := DefaultConfig()
	if armed {
		cfg.DedupSessions = 8
	}
	srvEng := New(cl.Node(0), cfg)
	cliEng := New(cl.Node(1), cfg)
	reg := obs.NewRegistry()
	tr := obs.NewTracer()
	reg.SetTracer(tr)
	srvEng.SetObs(reg)
	cliEng.SetObs(reg)
	srv := srvEng.Serve("svc", echoHandler)
	if armed {
		srv.TenantLimit = 2
	}
	env.Spawn("client", func(p *sim.Proc) {
		c := cliEng.Dial(p, srvEng.Node(), "svc")
		for i, proto := range []Protocol{EagerSendRecv, DirectWriteIMM, WriteRNDV, ReadRNDV, RFP, Pilaf} {
			if _, err := c.Call(p, uint32(i), make([]byte, 2048), CallOpts{Proto: proto, Busy: true}); err != nil {
				t.Errorf("%s: %v", proto, err)
			}
		}
		env.Stop()
	})
	env.Run()
	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	buf.WriteString(reg.Render())
	return buf.Bytes()
}

// TestVirtualizationOffZeroPerturbation: with virtualization knobs
// armed but no session ids on the wire, the run is byte-identical to a
// default-config run — the tier costs exactly nothing until a sid
// flows, which also means legacy traffic (sid 0, SRQSlots 0) behaves
// identically to pre-virtualization builds.
func TestVirtualizationOffZeroPerturbation(t *testing.T) {
	off := virtTrace(t, 58, false)
	armed := virtTrace(t, 58, true)
	if !bytes.Equal(off, armed) {
		t.Fatal("armed-but-unused virtualization tier perturbed the trace")
	}
}
