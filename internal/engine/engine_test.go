package engine

import (
	"bytes"
	"fmt"
	"testing"

	"hatrpc/internal/hints"
	"hatrpc/internal/sim"
	"hatrpc/internal/simnet"
)

// testCluster builds a 2-node cluster with a server engine on node 0
// (echo handler that reverses nothing, appends a marker) and a client
// engine on node 1.
func testCluster(seed int64) (*sim.Env, *Engine, *Engine) {
	env := sim.NewEnv(seed)
	cl := simnet.NewCluster(env, simnet.Config{
		Nodes: 2, Cores: 28, Sockets: 2, LinkGbps: 100, PropDelayNs: 600, NUMAPenalty: 1.25,
	})
	srv := New(cl.Node(0), DefaultConfig())
	cli := New(cl.Node(1), DefaultConfig())
	return env, srv, cli
}

// echoHandler returns the request payload with a 4-byte prefix.
func echoHandler(p *sim.Proc, fn uint32, req []byte) []byte {
	out := make([]byte, 4+len(req))
	copy(out, "ECHO")
	copy(out[4:], req)
	return out
}

// dataProtocols are all protocols exercised by the round-trip matrix.
var dataProtocols = []Protocol{
	EagerSendRecv, DirectWriteSend, ChainedWriteSend, WriteRNDV, ReadRNDV,
	DirectWriteIMM, Pilaf, FaRM, RFP, HERD, HybridEagerRNDV,
}

func TestEveryProtocolRoundTripsEveryPolling(t *testing.T) {
	sizes := []int{0, 1, 64, 4096, 4097, 131072}
	for _, proto := range dataProtocols {
		for _, busy := range []bool{true, false} {
			for _, size := range sizes {
				name := fmt.Sprintf("%s/busy=%v/size=%d", proto, busy, size)
				t.Run(name, func(t *testing.T) {
					env, srvEng, cliEng := testCluster(1)
					srv := srvEng.Serve("svc", echoHandler)
					srv.Busy = busy
					req := make([]byte, size)
					for i := range req {
						req[i] = byte(i * 7)
					}
					var resp []byte
					var err error
					env.Spawn("client", func(p *sim.Proc) {
						c := cliEng.Dial(p, srvEng.Node(), "svc")
						resp, err = c.Call(p, 3, req, CallOpts{Proto: proto, Busy: busy})
						env.Stop()
					})
					env.Run()
					if err != nil {
						t.Fatal(err)
					}
					want := echoHandler(nil, 3, req)
					if !bytes.Equal(resp, want) {
						t.Fatalf("response mismatch: got %d bytes, want %d", len(resp), len(want))
					}
				})
			}
		}
	}
}

func TestSequentialCallsOnOneConn(t *testing.T) {
	env, srvEng, cliEng := testCluster(2)
	srvEng.Serve("svc", echoHandler)
	var got []string
	env.Spawn("client", func(p *sim.Proc) {
		c := cliEng.Dial(p, srvEng.Node(), "svc")
		for i := 0; i < 20; i++ {
			req := []byte(fmt.Sprintf("msg-%02d", i))
			proto := dataProtocols[i%len(dataProtocols)]
			resp, err := c.Call(p, uint32(i), req, CallOpts{Proto: proto, Busy: true})
			if err != nil {
				t.Errorf("call %d (%s): %v", i, proto, err)
				break
			}
			got = append(got, string(resp))
		}
		env.Stop()
	})
	env.Run()
	if len(got) != 20 {
		t.Fatalf("completed %d calls, want 20", len(got))
	}
	for i, g := range got {
		want := fmt.Sprintf("ECHOmsg-%02d", i)
		if g != want {
			t.Fatalf("call %d = %q, want %q", i, g, want)
		}
	}
}

func TestMultipleClientsConcurrently(t *testing.T) {
	env, srvEng, cliEng := testCluster(3)
	srvEng.Serve("svc", echoHandler)
	done := 0
	const N = 16
	for i := 0; i < N; i++ {
		i := i
		env.Spawn(fmt.Sprintf("client%d", i), func(p *sim.Proc) {
			c := cliEng.Dial(p, srvEng.Node(), "svc")
			for j := 0; j < 5; j++ {
				req := []byte(fmt.Sprintf("c%d-m%d", i, j))
				resp, err := c.Call(p, 1, req, CallOpts{Proto: DirectWriteIMM, Busy: false})
				if err != nil || string(resp) != "ECHO"+string(req) {
					t.Errorf("client %d call %d: %q %v", i, j, resp, err)
					return
				}
			}
			done++
		})
	}
	env.Run()
	if done != N {
		t.Fatalf("%d clients finished, want %d", done, N)
	}
}

func TestAsymmetricRequestResponseProtocols(t *testing.T) {
	// Large request via Write-RNDV, small response via Direct-WriteIMM —
	// the HatKV PUT pattern (§4.4).
	env, srvEng, cliEng := testCluster(4)
	srvEng.Serve("svc", func(p *sim.Proc, fn uint32, req []byte) []byte {
		return []byte("OK")
	})
	var resp []byte
	env.Spawn("client", func(p *sim.Proc) {
		c := cliEng.Dial(p, srvEng.Node(), "svc")
		req := make([]byte, 100_000)
		var err error
		resp, err = c.Call(p, 9, req, CallOpts{Proto: WriteRNDV, RespProto: DirectWriteIMM, Busy: true})
		if err != nil {
			t.Error(err)
		}
		env.Stop()
	})
	env.Run()
	if string(resp) != "OK" {
		t.Fatalf("resp = %q", resp)
	}
}

func TestChainedSavesLatencyOverUnchained(t *testing.T) {
	lat := func(proto Protocol) sim.Time {
		env, srvEng, cliEng := testCluster(5)
		srv := srvEng.Serve("svc", echoHandler)
		srv.Busy = true
		var total sim.Time
		env.Spawn("client", func(p *sim.Proc) {
			c := cliEng.Dial(p, srvEng.Node(), "svc")
			c.Call(p, 1, make([]byte, 512), CallOpts{Proto: proto, Busy: true}) // warm
			start := p.Now()
			for i := 0; i < 10; i++ {
				c.Call(p, 1, make([]byte, 512), CallOpts{Proto: proto, Busy: true})
			}
			total = p.Now() - start
			env.Stop()
		})
		env.Run()
		return total
	}
	unchained := lat(DirectWriteSend)
	chained := lat(ChainedWriteSend)
	if chained >= unchained {
		t.Fatalf("chained (%d) not faster than unchained (%d)", chained, unchained)
	}
}

func TestWriteImmFastestSmallMessageLatency(t *testing.T) {
	// Fig. 4 headline: with busy polling, Direct-WriteIMM beats eager,
	// rendezvous and the fetch protocols for small messages.
	lat := func(proto Protocol) sim.Time {
		env, srvEng, cliEng := testCluster(6)
		srv := srvEng.Serve("svc", echoHandler)
		srv.Busy = true
		var total sim.Time
		env.Spawn("client", func(p *sim.Proc) {
			c := cliEng.Dial(p, srvEng.Node(), "svc")
			c.Call(p, 1, make([]byte, 64), CallOpts{Proto: proto, Busy: true})
			start := p.Now()
			for i := 0; i < 20; i++ {
				c.Call(p, 1, make([]byte, 64), CallOpts{Proto: proto, Busy: true})
			}
			total = p.Now() - start
			env.Stop()
		})
		env.Run()
		return total
	}
	imm := lat(DirectWriteIMM)
	for _, other := range []Protocol{EagerSendRecv, WriteRNDV, ReadRNDV, Pilaf, FaRM, RFP} {
		if o := lat(other); imm >= o {
			t.Errorf("Direct-WriteIMM (%d) not faster than %s (%d) for 64B", imm, other, o)
		}
	}
}

func TestRndvCheaperThanEagerForLargeMessages(t *testing.T) {
	// Above the threshold the eager double-copy dominates; rendezvous
	// must win for, say, 512 KB.
	lat := func(proto Protocol) sim.Time {
		env, srvEng, cliEng := testCluster(7)
		srv := srvEng.Serve("svc", func(p *sim.Proc, fn uint32, req []byte) []byte { return []byte("ok") })
		srv.Busy = true
		var total sim.Time
		env.Spawn("client", func(p *sim.Proc) {
			c := cliEng.Dial(p, srvEng.Node(), "svc")
			c.Call(p, 1, make([]byte, 512<<10), CallOpts{Proto: proto, RespProto: DirectWriteIMM, Busy: true})
			start := p.Now()
			for i := 0; i < 5; i++ {
				c.Call(p, 1, make([]byte, 512<<10), CallOpts{Proto: proto, RespProto: DirectWriteIMM, Busy: true})
			}
			total = p.Now() - start
			env.Stop()
		})
		env.Run()
		return total
	}
	if e, w := lat(EagerSendRecv), lat(WriteRNDV); w >= e {
		t.Fatalf("Write-RNDV (%d) not cheaper than eager (%d) at 512KB", w, e)
	}
}

func TestRndvPoolReuse(t *testing.T) {
	env, srvEng, cliEng := testCluster(8)
	srvEng.Serve("svc", echoHandler)
	env.Spawn("client", func(p *sim.Proc) {
		c := cliEng.Dial(p, srvEng.Node(), "svc")
		for i := 0; i < 10; i++ {
			c.Call(p, 1, make([]byte, 100_000), CallOpts{Proto: WriteRNDV, RespProto: DirectWriteIMM, Busy: true})
		}
		env.Stop()
	})
	env.Run()
	// All ten transfers are the same size class: the pool must allocate
	// once and reuse afterwards.
	if srvEng.RndvAllocs() > 2 {
		t.Fatalf("rendezvous pool allocated %d buffers for 10 same-size calls", srvEng.RndvAllocs())
	}
}

func TestRFPRetriesWhenServerSlow(t *testing.T) {
	env, srvEng, cliEng := testCluster(9)
	srvEng.Serve("svc", func(p *sim.Proc, fn uint32, req []byte) []byte {
		p.Sleep(50_000) // 50µs server-side work
		return []byte("slow")
	})
	env.Spawn("client", func(p *sim.Proc) {
		c := cliEng.Dial(p, srvEng.Node(), "svc")
		resp, err := c.Call(p, 1, []byte("q"), CallOpts{Proto: RFP, Busy: true})
		if err != nil || string(resp) != "slow" {
			t.Errorf("resp=%q err=%v", resp, err)
		}
		env.Stop()
	})
	env.Run()
	if cliEng.ReadRetries() == 0 {
		t.Fatal("RFP fetch never retried despite slow server")
	}
}

func TestRFPLargeResponseSecondRead(t *testing.T) {
	env, srvEng, cliEng := testCluster(10)
	big := make([]byte, 20_000)
	for i := range big {
		big[i] = byte(i)
	}
	srvEng.Serve("svc", func(p *sim.Proc, fn uint32, req []byte) []byte { return big })
	var resp []byte
	env.Spawn("client", func(p *sim.Proc) {
		c := cliEng.Dial(p, srvEng.Node(), "svc")
		resp, _ = c.Call(p, 1, []byte("q"), CallOpts{Proto: RFP, Busy: true})
		env.Stop()
	})
	env.Run()
	if !bytes.Equal(resp, big) {
		t.Fatalf("large RFP response corrupted: %d bytes", len(resp))
	}
}

func TestCallTooLargeRejected(t *testing.T) {
	env, srvEng, cliEng := testCluster(11)
	srvEng.Serve("svc", echoHandler)
	env.Spawn("client", func(p *sim.Proc) {
		c := cliEng.Dial(p, srvEng.Node(), "svc")
		_, err := c.Call(p, 1, make([]byte, DefaultConfig().MaxMsgSize+1), CallOpts{Proto: EagerSendRecv})
		if err == nil {
			t.Error("oversized call accepted")
		}
		env.Stop()
	})
	env.Run()
}

func TestCallOnServerConnRejected(t *testing.T) {
	env, srvEng, cliEng := testCluster(12)
	srv := srvEng.Serve("svc", echoHandler)
	env.Spawn("client", func(p *sim.Proc) {
		c := cliEng.Dial(p, srvEng.Node(), "svc")
		c.Call(p, 1, []byte("x"), CallOpts{Proto: DirectWriteIMM, Busy: true})
		if _, err := srv.Conns()[0].Call(p, 1, nil, CallOpts{}); err == nil {
			t.Error("Call on server conn accepted")
		}
		env.Stop()
	})
	env.Run()
}

func TestDeterministicAcrossRuns(t *testing.T) {
	run := func() sim.Time {
		env, srvEng, cliEng := testCluster(99)
		srvEng.Serve("svc", echoHandler)
		var done sim.Time
		env.Spawn("client", func(p *sim.Proc) {
			c := cliEng.Dial(p, srvEng.Node(), "svc")
			for i := 0; i < 10; i++ {
				c.Call(p, 1, make([]byte, 1024), CallOpts{Proto: DirectWriteIMM, Busy: true})
			}
			done = p.Now()
			env.Stop()
		})
		env.Run()
		return done
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("nondeterministic: %d vs %d", a, b)
	}
}

// --- Fig. 6 selection mapping ---

func TestFig06Mapping(t *testing.T) {
	cores := 28
	cases := []struct {
		goal  hints.PerfGoal
		conc  int
		size  int
		proto Protocol
		busy  bool
	}{
		{hints.GoalLatency, 1, 64, DirectWriteIMM, true},
		{hints.GoalLatency, 1, 131072, DirectWriteIMM, true},
		{hints.GoalLatency, 512, 64, DirectWriteIMM, true},
		{hints.GoalThroughput, 8, 512, DirectWriteIMM, true},
		{hints.GoalThroughput, 8, 131072, DirectWriteIMM, true},
		{hints.GoalThroughput, 28, 512, DirectWriteIMM, false},
		{hints.GoalThroughput, 512, 512, DirectWriteIMM, false},
		{hints.GoalThroughput, 512, 131072, RFP, false},
		{hints.GoalResUtil, 8, 512, DirectWriteIMM, false},
		{hints.GoalResUtil, 8, 131072, WriteRNDV, false},
		{hints.GoalResUtil, 512, 512, EagerSendRecv, false},
		{hints.GoalResUtil, 512, 131072, WriteRNDV, false},
	}
	for _, c := range cases {
		r := hints.Resolved{Goal: c.goal, Concurrency: c.conc, Polling: hints.PollAuto}
		plan := SelectPlan(r, cores, c.size, DefaultRndvThreshold)
		if plan.Proto != c.proto || plan.Busy != c.busy {
			t.Errorf("SelectPlan(%s, conc=%d, size=%d) = {%s busy=%v}, want {%s busy=%v}",
				c.goal, c.conc, c.size, plan.Proto, plan.Busy, c.proto, c.busy)
		}
	}
}

func TestSelectPlanPollingOverride(t *testing.T) {
	r := hints.Resolved{Goal: hints.GoalLatency, Concurrency: 1, Polling: hints.PollEvent}
	if plan := SelectPlan(r, 28, 64, 0); plan.Busy {
		t.Fatal("explicit event polling hint not honoured")
	}
	r = hints.Resolved{Goal: hints.GoalResUtil, Concurrency: 512, Polling: hints.PollBusy}
	if plan := SelectPlan(r, 28, 64, 0); !plan.Busy {
		t.Fatal("explicit busy polling hint not honoured")
	}
}

func TestSelectPlanDefaults(t *testing.T) {
	// No hints at all (unknown payload): the engine cannot pre-commit
	// size-specialized buffers, so it stays on the adaptive hybrid.
	plan := SelectPlan(hints.DefaultResolved(), 28, 0, 0)
	if plan.Proto != HybridEagerRNDV || plan.Busy {
		t.Fatalf("default plan = %+v", plan)
	}
	// A payload hint upgrades the plan — the information hints buy.
	r := hints.DefaultResolved()
	r.PayloadSize = 512
	if plan := SelectPlan(r, 28, 0, 0); plan.Proto != DirectWriteIMM {
		t.Fatalf("hinted plan = %+v", plan)
	}
}

func TestProtocolStrings(t *testing.T) {
	for _, pr := range AllProtocols {
		if pr.String() == "" || pr.String()[0] == 'P' && pr != Pilaf {
			t.Errorf("protocol %d has suspicious String %q", pr, pr.String())
		}
	}
	if ProtoAuto.String() != "auto" {
		t.Error("ProtoAuto string")
	}
}
