package engine

import (
	"errors"

	"hatrpc/internal/obs"
	"hatrpc/internal/sim"
)

// ErrCircuitOpen is returned by Call while the connection's circuit
// breaker is open: recent calls failed with overload or deadline errors
// and the cooldown has not yet elapsed, so the call is rejected locally
// without touching the wire. Retrying into a saturated server only adds
// to the overload; the breaker converts that retry pressure into cheap
// local failures.
var ErrCircuitOpen = errors.New("engine: circuit breaker open")

// Breaker states.
const (
	brkClosed int8 = iota // normal operation
	brkOpen               // rejecting calls until openUntil
	brkHalf               // cooldown elapsed; one probe call in flight
)

// breaker is the per-connection client-side circuit breaker
// (Config.BreakerThreshold > 0). Consecutive overload-class failures
// (ErrOverloaded, ErrDeadline, ErrPeerDown) open it; while open every
// call fails immediately with ErrCircuitOpen. After the cooldown the
// next call is admitted as a half-open probe: success closes the
// breaker, failure re-opens it with the cooldown doubled (capped at
// 16× the base), the classic exponential-backoff half-open machine.
type breaker struct {
	threshold int          // consecutive failures that trip it
	base      sim.Duration // initial cooldown
	cooldown  sim.Duration // current cooldown (doubles on failed probes)
	max       sim.Duration // cooldown ceiling (16× base)
	fails     int          // consecutive overload-class failures
	state     int8
	openUntil sim.Time
}

func newBreaker(threshold int, cooldown sim.Duration) *breaker {
	if cooldown <= 0 {
		cooldown = DefaultBreakerCooldown
	}
	return &breaker{
		threshold: threshold,
		base:      cooldown,
		cooldown:  cooldown,
		max:       16 * cooldown,
	}
}

// breakerGate runs at call entry. It either rejects the call
// (ErrCircuitOpen), admits it as a half-open probe (speculatively
// recovering the QP, which a link fault may have left errored — a no-op
// on a healthy QP), or passes it through.
func (c *Conn) breakerGate(p *sim.Proc) error {
	b := c.brk
	if b == nil || b.state == brkClosed {
		return nil
	}
	if b.state == brkOpen {
		if p.Now() < b.openUntil {
			return ErrCircuitOpen
		}
		b.state = brkHalf
		c.eng.trc.Instant("engine", "breaker_half_open", c.eng.node.ID(), c.id, int64(p.Now()))
		c.recoverQP(p)
	}
	// brkHalf: admit the probe. (One outstanding call per connection, so
	// there is never more than one probe in flight.)
	return nil
}

// breakerObserve runs after every gated call with its outcome. Only
// overload-class failures count toward the trip threshold; other errors
// (validation, typed application errors) say nothing about server
// health and leave the breaker alone.
func (c *Conn) breakerObserve(p *sim.Proc, err error) {
	b := c.brk
	if b == nil {
		return
	}
	if err == nil {
		if b.state != brkClosed || b.fails > 0 {
			if b.state != brkClosed {
				c.eng.trc.Instant("engine", "breaker_close", c.eng.node.ID(), c.id, int64(p.Now()))
			}
			b.state = brkClosed
			b.fails = 0
			b.cooldown = b.base
		}
		return
	}
	if !IsUnavailable(err) {
		return
	}
	b.fails++
	if b.state == brkHalf {
		// Failed probe: back off harder.
		b.cooldown *= 2
		if b.cooldown > b.max {
			b.cooldown = b.max
		}
	} else if b.fails < b.threshold {
		return
	}
	b.state = brkOpen
	b.openUntil = p.Now() + sim.Time(b.cooldown)
	b.fails = 0
	c.eng.breakerOpens++
	if m := c.eng.em; m != nil {
		m.breakerOpen.Inc()
	}
	c.eng.trc.Instant("engine", "breaker_open", c.eng.node.ID(), c.id, int64(p.Now()),
		obs.Arg{K: "cooldown_ns", V: int64(b.cooldown)})
}
