package engine

import (
	"fmt"

	"hatrpc/internal/hints"
	"hatrpc/internal/sim"
	"hatrpc/internal/simnet"
)

// Connection virtualization: the RDMA-as-a-service multiplexing tier.
//
// A physical QP pins NIC context (QP state, receive ring, CQ slots);
// fanning one physical connection out per client stops scaling around
// 10^4 clients — the NIC's QP cache thrashes and per-conn receive
// rings pin unbounded memory. The tier here keeps a small bounded pool
// of physical Conns per node and multiplexes an arbitrary number of
// virtual connections (VConn) over them. Each VConn owns a session id
// (sid) stamped into the wire header; the server demuxes dedup state
// and tenant admission partitions on it, while the physical transport
// below — seq numbering, credits, retransmit — is untouched.
//
// A VConn borrows a physical conn for exactly the duration of one call,
// preserving the engine's one-outstanding-call-per-Conn invariant: wire
// seq matching stays sufficient for response routing, and the sid rides
// along purely as dedup/partition metadata. sid 0 is reserved for
// "no virtualization" — legacy traffic never carries one.

// sidIndexBits splits the 32-bit session id into tenant (high 12 bits)
// and per-tenant connection index (low 20 bits, ~1M virtual conns per
// tenant — the paper's fan-in target).
const sidIndexBits = 20

// SIDTenant extracts the tenant from a session id.
func SIDTenant(sid uint32) uint32 { return sid >> sidIndexBits }

// makeSID packs tenant and per-tenant index. Index 0 never occurs
// (counters start at 1), so sid 0 — virtualization off — is unambiguous.
func makeSID(tenant, index uint32) uint32 {
	if tenant >= 1<<(32-sidIndexBits) || index >= 1<<sidIndexBits || index == 0 {
		panic(fmt.Sprintf("engine: session id out of range (tenant %d, index %d)", tenant, index))
	}
	return tenant<<sidIndexBits | index
}

// VPoolConfig shapes a virtual-connection pool.
type VPoolConfig struct {
	// Size is the number of physical connections the pool multiplexes
	// over — the knob the fan-in sweep turns.
	Size int
	// TenantCap bounds how many physical conns one tenant may hold
	// concurrently; 0 = uncapped. With a cap, a bursting tenant parks on
	// its own partition while other tenants keep borrowing — the client
	// side of the server's TenantLimit.
	TenantCap int
	// Priority enables two borrow classes: waiters from VConns opened
	// with a low-priority hint queue behind all high-priority waiters.
	// Off, every waiter shares one FIFO — the head-of-line blocking the
	// fanin bench measures.
	Priority bool
}

// HintedPoolSize derives the physical pool size from a resolved hint
// group: a concurrency hint asks for that many physical QPs (clamped to
// max — NIC QP-cache reach); without one the default holds. This is the
// "concurrency" hint's job in the virtualization tier: the application
// states expected concurrent callers once, the transport sizes hardware
// fan-in to match.
func HintedPoolSize(r hints.Resolved, def, max int) int {
	if r.Concurrency <= 0 {
		return def
	}
	if r.Concurrency > max {
		return max
	}
	return r.Concurrency
}

// vwaiter parks one borrower until dispatch hands it a conn.
type vwaiter struct {
	sig    *sim.Signal
	tenant uint32
	conn   *Conn
}

// VPool multiplexes virtual connections over a bounded set of physical
// engine connections. All state mutation happens on simulation procs
// (cooperative scheduling — no locks needed), and every queue drain is
// slice-ordered, so pool behaviour is deterministic for a given seed.
type VPool struct {
	env *sim.Env
	cfg VPoolConfig

	free     []*Conn
	waitHigh []*vwaiter
	waitLow  []*vwaiter
	// tenantUse counts conns currently borrowed per tenant. Indexed
	// only, never iterated — map order cannot leak into the simulation.
	tenantUse map[uint32]int
	nextIndex map[uint32]uint32 // per-tenant sid index counter

	// Borrows counts completed borrow operations; Waits counts the
	// subset that parked (pool empty or tenant at cap); TenantWaits
	// counts parks caused by the tenant cap while free conns existed.
	Borrows     int64
	Waits       int64
	TenantWaits int64
	// Sessions counts VConns opened.
	Sessions int64
}

// DialPool dials cfg.Size physical connections to target and wraps them
// in a virtual-connection pool.
func (e *Engine) DialPool(p *sim.Proc, target *simnet.Node, port string, cfg VPoolConfig) *VPool {
	if cfg.Size <= 0 {
		panic("engine: VPoolConfig.Size must be positive")
	}
	pl := &VPool{
		env:       e.env,
		cfg:       cfg,
		tenantUse: make(map[uint32]int),
		nextIndex: make(map[uint32]uint32),
	}
	for i := 0; i < cfg.Size; i++ {
		pl.free = append(pl.free, e.Dial(p, target, port))
	}
	return pl
}

// Size returns the physical pool size.
func (pl *VPool) Size() int { return pl.cfg.Size }

// Open creates a virtual connection for a tenant. The resolved hint set
// classifies it: a low-priority hint demotes its borrows behind every
// high-priority waiter (when the pool runs priority classes). Open is
// pure bookkeeping — no handshake, no pinned memory — which is exactly
// why the tier scales to 10^6 of them.
func (pl *VPool) Open(tenant uint32, r hints.Resolved) *VConn {
	pl.nextIndex[tenant]++
	pl.Sessions++
	return &VConn{
		pool:   pl,
		sid:    makeSID(tenant, pl.nextIndex[tenant]),
		tenant: tenant,
		low:    r.LowPriority,
	}
}

// borrow claims a physical conn, parking FIFO (within its class) until
// one is free and the tenant is under its cap.
func (pl *VPool) borrow(p *sim.Proc, tenant uint32, low bool) *Conn {
	pl.Borrows++
	capped := pl.cfg.TenantCap > 0 && pl.tenantUse[tenant] >= pl.cfg.TenantCap
	if !capped && len(pl.free) > 0 {
		c := pl.free[0]
		pl.free = pl.free[1:]
		pl.tenantUse[tenant]++
		return c
	}
	pl.Waits++
	if capped && len(pl.free) > 0 {
		pl.TenantWaits++
	}
	w := &vwaiter{sig: sim.NewSignal(pl.env), tenant: tenant}
	if pl.cfg.Priority && !low {
		pl.waitHigh = append(pl.waitHigh, w)
	} else {
		pl.waitLow = append(pl.waitLow, w)
	}
	for w.conn == nil {
		w.sig.Wait(p)
	}
	return w.conn
}

// release returns a borrowed conn and re-runs dispatch: the freed conn
// (and any tenant-cap headroom the decrement opened) goes to the
// longest-waiting eligible borrower, high class first.
func (pl *VPool) release(c *Conn, tenant uint32) {
	pl.tenantUse[tenant]--
	pl.free = append(pl.free, c)
	pl.dispatch()
}

// dispatch matches free conns to eligible waiters. High-priority
// waiters drain strictly before low; within a class, FIFO order with
// tenant-capped waiters skipped in place (they stay queued, keeping
// their position for when their tenant's partition opens).
func (pl *VPool) dispatch() {
	for len(pl.free) > 0 {
		w := pl.takeEligible(&pl.waitHigh)
		if w == nil {
			w = pl.takeEligible(&pl.waitLow)
		}
		if w == nil {
			return
		}
		w.conn = pl.free[0]
		pl.free = pl.free[1:]
		pl.tenantUse[w.tenant]++
		w.sig.Fire()
	}
}

// takeEligible removes and returns the first waiter in q whose tenant
// is under cap, or nil.
func (pl *VPool) takeEligible(q *[]*vwaiter) *vwaiter {
	for i, w := range *q {
		if pl.cfg.TenantCap > 0 && pl.tenantUse[w.tenant] >= pl.cfg.TenantCap {
			continue
		}
		*q = append((*q)[:i], (*q)[i+1:]...)
		return w
	}
	return nil
}

// Waiting returns the current parked-borrower count (both classes).
func (pl *VPool) Waiting() int { return len(pl.waitHigh) + len(pl.waitLow) }

// VConn is a virtual connection: a session id plus a reference to the
// pool it borrows physical transport from. It is a plain struct — no
// proc, no pinned memory, no NIC state — so a node can hold millions.
type VConn struct {
	pool   *VPool
	sid    uint32
	tenant uint32
	low    bool
}

// SID returns the wire session id this virtual connection stamps.
func (vc *VConn) SID() uint32 { return vc.sid }

// Tenant returns the admission-partition key.
func (vc *VConn) Tenant() uint32 { return vc.tenant }

// Call borrows a physical connection, issues the RPC with this virtual
// connection's session id stamped in the header, and returns the conn
// to the pool. Errors release too: the physical conn's own recovery
// machinery (session reconnect, QP reset) owns transport health — the
// pool just hands out whatever the engine dialed.
func (vc *VConn) Call(p *sim.Proc, fn uint32, req []byte, opts CallOpts) ([]byte, error) {
	c := vc.pool.borrow(p, vc.tenant, vc.low)
	opts.SID = vc.sid
	resp, err := c.Call(p, fn, req, opts)
	vc.pool.release(c, vc.tenant)
	return resp, err
}
