package engine

import (
	"errors"
	"fmt"
	"testing"

	"hatrpc/internal/sim"
)

// TestDrainFenceTypedAcrossProtocols: once the fence is up, every
// response protocol rejects new calls with the typed ErrDraining —
// header-kind kDrain on the send paths, the kvDrainLen meta sentinel on
// the client-read (Pilaf/FaRM) paths — never a deadline wait.
func TestDrainFenceTypedAcrossProtocols(t *testing.T) {
	for _, proto := range dataProtocols {
		t.Run(proto.String(), func(t *testing.T) {
			env, srvEng, cliEng := testCluster(1)
			srv := srvEng.Serve("svc", echoHandler)
			var before, after error
			var rejectedAt, sentAt sim.Time
			env.Spawn("client", func(p *sim.Proc) {
				c := cliEng.Dial(p, srvEng.Node(), "svc")
				_, before = c.Call(p, 3, []byte("ok"), CallOpts{Proto: proto, Busy: true})
				srv.SetDraining(true)
				sentAt = p.Now()
				_, after = c.Call(p, 4, []byte("no"), CallOpts{Proto: proto, Busy: true})
				rejectedAt = p.Now()
				env.Stop()
			})
			env.Run()
			if before != nil {
				t.Fatalf("pre-drain call: %v", before)
			}
			if !errors.Is(after, ErrDraining) {
				t.Fatalf("post-drain call err = %v, want ErrDraining", after)
			}
			if !IsUnavailable(after) {
				t.Error("ErrDraining must be in the IsUnavailable class")
			}
			// Typed rejection, not a timeout: the answer must come back in
			// round-trip time, far under any deadline.
			if lat := rejectedAt - sentAt; lat > 100_000 {
				t.Errorf("rejection took %dns — that is a timeout, not a typed reply", lat)
			}
			if srv.Drained != 1 {
				t.Errorf("Drained = %d, want 1", srv.Drained)
			}
		})
	}
}

// TestDrainExemptFnStillServed: exempt function ids (the node ops
// surface) keep answering through the fence.
func TestDrainExemptFnStillServed(t *testing.T) {
	env, srvEng, cliEng := testCluster(2)
	srv := srvEng.Serve("svc", echoHandler)
	srv.Exempt(9)
	srv.SetDraining(true)
	env.Spawn("client", func(p *sim.Proc) {
		c := cliEng.Dial(p, srvEng.Node(), "svc")
		resp, err := c.Call(p, 9, []byte("health"), CallOpts{Proto: EagerSendRecv, Busy: true})
		if err != nil || string(resp) != "ECHOhealth" {
			t.Errorf("exempt fn: %q, %v", resp, err)
		}
		if _, err := c.Call(p, 3, nil, CallOpts{Proto: EagerSendRecv, Busy: true}); !errors.Is(err, ErrDraining) {
			t.Errorf("non-exempt fn err = %v, want ErrDraining", err)
		}
		env.Stop()
	})
	env.Run()
}

// TestDrainWaitsForInFlight: Drain lets a handler that started before
// the fence run to completion, returns true once in-flight work is
// gone, and requests arriving during the drain are fenced.
func TestDrainWaitsForInFlight(t *testing.T) {
	env, srvEng, cliEng := testCluster(3)
	started := false
	srv := srvEng.Serve("svc", func(p *sim.Proc, fn uint32, req []byte) []byte {
		started = true
		p.Sleep(200_000) // slow handler: in flight across the drain start
		return []byte("done")
	})
	var slowErr, fencedErr error
	var drainOK bool
	var quiescedAt, slowDoneAt sim.Time
	env.Spawn("slow-client", func(p *sim.Proc) {
		c := cliEng.Dial(p, srvEng.Node(), "svc")
		_, slowErr = c.Call(p, 1, nil, CallOpts{Proto: EagerSendRecv, Busy: true})
		slowDoneAt = p.Now()
	})
	env.Spawn("ops", func(p *sim.Proc) {
		for !started {
			p.Sleep(10_000) // wait until the slow call is mid-handler
		}
		// A request arriving while the drain runs must be fenced.
		env.Spawn("late-client", func(lp *sim.Proc) {
			c := cliEng.Dial(lp, srvEng.Node(), "svc")
			_, fencedErr = c.Call(lp, 2, nil, CallOpts{Proto: EagerSendRecv, Busy: true})
		})
		drainOK = srv.Drain(p, 0)
		quiescedAt = p.Now()
		p.Sleep(300_000)
		env.Stop()
	})
	env.Run()
	if slowErr != nil {
		t.Errorf("in-flight call must complete through a drain: %v", slowErr)
	}
	if !errors.Is(fencedErr, ErrDraining) {
		t.Errorf("late call err = %v, want ErrDraining", fencedErr)
	}
	if !drainOK {
		t.Error("Drain without deadline returned false")
	}
	if quiescedAt < slowDoneAt {
		t.Errorf("Drain returned at %d before the in-flight handler finished at %d", quiescedAt, slowDoneAt)
	}
}

// TestDrainDeadlineEscalates: a handler outlasting the drain deadline
// makes Drain return false — the caller's signal to escalate to the
// crash path.
func TestDrainDeadlineEscalates(t *testing.T) {
	env, srvEng, cliEng := testCluster(4)
	started := false
	srv := srvEng.Serve("svc", func(p *sim.Proc, fn uint32, req []byte) []byte {
		started = true
		p.Sleep(2_000_000)
		return nil
	})
	var drainOK bool
	var drainStart, returned sim.Time
	env.Spawn("client", func(p *sim.Proc) {
		c := cliEng.Dial(p, srvEng.Node(), "svc")
		_, _ = c.Call(p, 1, nil, CallOpts{Proto: EagerSendRecv, Busy: true, Deadline: 3_000_000})
	})
	env.Spawn("ops", func(p *sim.Proc) {
		for !started {
			p.Sleep(10_000)
		}
		drainStart = p.Now()
		drainOK = srv.Drain(p, p.Now()+100_000)
		returned = p.Now()
		env.Stop()
	})
	env.Run()
	if drainOK {
		t.Error("Drain returned true with a handler still in flight")
	}
	if d := returned - drainStart; d < 100_000 || d > 150_000 {
		t.Errorf("Drain returned %dns after start, want ~its 100000ns deadline", d)
	}
}

// TestKeepaliveDrainHold pins the prober fix: a probe answered with the
// typed draining announcement silences probing AND eager redialing for
// DrainHold — no session_redials storm against a restarting peer.
func TestKeepaliveDrainHold(t *testing.T) {
	env, srvEng, cliEng := testCluster(5)
	srv := srvEng.Serve("svc", echoHandler)
	var s *Session
	env.Spawn("client", func(p *sim.Proc) {
		var err error
		s, err = cliEng.NewSession(p, srvEng.Node(), "svc", SessionConfig{
			KeepaliveInterval: 100_000,
			DrainHold:         1_000_000,
		})
		if err != nil {
			t.Fatalf("NewSession: %v", err)
		}
	})
	env.At(250_000, func() { srv.SetDraining(true) })
	env.At(2_050_000, env.Stop)
	env.Run()

	st := s.Stats()
	if st.DrainHolds == 0 {
		t.Fatalf("stats = %+v, want ≥1 drain hold", st)
	}
	if st.Connects != 1 {
		t.Errorf("connects = %d, want 1 — the prober redialed a draining peer", st.Connects)
	}
	// Timeline: probes at 100k and 200k succeed; the 300k probe is fenced
	// and starts a 1ms hold; probes resume at 1.4m, are fenced again, and
	// hold once more. Without the hold the prober would have issued ~20.
	if st.Probes > 6 {
		t.Errorf("probes = %d, want ≤6 — probing continued through the hold", st.Probes)
	}
}

// TestDrainHoldDefaultsFromInterval: with DrainHold unset the hold
// spans DefaultDrainHoldProbes intervals.
func TestDrainHoldDefaultsFromInterval(t *testing.T) {
	env, srvEng, cliEng := testCluster(6)
	srv := srvEng.Serve("svc", echoHandler)
	var s *Session
	env.Spawn("client", func(p *sim.Proc) {
		var err error
		s, err = cliEng.NewSession(p, srvEng.Node(), "svc", SessionConfig{KeepaliveInterval: 100_000})
		if err != nil {
			t.Fatalf("NewSession: %v", err)
		}
	})
	env.At(150_000, func() { srv.SetDraining(true) })
	// One fenced probe at 200k, hold until 1m; stop before it expires.
	env.At(950_000, env.Stop)
	env.Run()
	st := s.Stats()
	// One probe is fenced shortly after 150k and opens an 8-interval
	// (800k) hold that outlasts the run — no probe fires after it.
	if st.DrainHolds != 1 || st.Probes > 2 {
		t.Errorf("stats = %+v, want exactly 1 hold and ≤2 probes", st)
	}
}

// TestDrainFenceLiftsCleanly: dropping the fence restores normal
// service on the same connections.
func TestDrainFenceLiftsCleanly(t *testing.T) {
	env, srvEng, cliEng := testCluster(7)
	srv := srvEng.Serve("svc", echoHandler)
	env.Spawn("client", func(p *sim.Proc) {
		c := cliEng.Dial(p, srvEng.Node(), "svc")
		srv.SetDraining(true)
		if _, err := c.Call(p, 1, nil, CallOpts{Proto: EagerSendRecv, Busy: true}); !errors.Is(err, ErrDraining) {
			t.Errorf("fenced call err = %v, want ErrDraining", err)
		}
		srv.SetDraining(false)
		resp, err := c.Call(p, 2, []byte("back"), CallOpts{Proto: EagerSendRecv, Busy: true})
		if err != nil || string(resp) != "ECHOback" {
			t.Errorf("post-lift call: %q, %v", resp, err)
		}
		env.Stop()
	})
	env.Run()
}

// TestDrainActiveCountsQueuedWork: Active must include admission-queued
// waiters, not just running handlers — draining with a backlog must not
// report quiescence early.
func TestDrainActiveCountsQueuedWork(t *testing.T) {
	env, srvEng, cliEng := testCluster(8)
	srv := srvEng.Serve("svc", func(p *sim.Proc, fn uint32, req []byte) []byte {
		p.Sleep(100_000)
		return nil
	})
	srv.SetAdmission(1, AdmitBlock)
	results := make([]error, 4)
	for i := 0; i < 4; i++ {
		i := i
		env.Spawn(fmt.Sprintf("client-%d", i), func(p *sim.Proc) {
			c := cliEng.Dial(p, srvEng.Node(), "svc")
			_, results[i] = c.Call(p, uint32(i), nil, CallOpts{Proto: EagerSendRecv, Busy: true, Deadline: 2_000_000})
		})
	}
	var drainOK bool
	var drainStart, quiescedAt sim.Time
	env.Spawn("ops", func(p *sim.Proc) {
		for srv.Active() < 4 {
			p.Sleep(5_000) // wait for one running + three queued waiters
		}
		drainStart = p.Now()
		drainOK = srv.Drain(p, 0)
		quiescedAt = p.Now()
		p.Sleep(500_000)
		env.Stop()
	})
	env.Run()
	if !drainOK {
		t.Fatal("Drain returned false without a deadline")
	}
	for i, err := range results {
		if err != nil {
			t.Errorf("queued call %d failed across the drain: %v", i, err)
		}
	}
	// Four serial 100us handlers were pending when the drain started;
	// quiescence cannot arrive before the last one finishes.
	if quiescedAt < drainStart+300_000 {
		t.Errorf("Drain returned at %d (started %d) with queued work still pending", quiescedAt, drainStart)
	}
}
