package engine

import (
	"bytes"
	"errors"
	"fmt"
	"testing"

	"hatrpc/internal/obs"
	"hatrpc/internal/sim"
	"hatrpc/internal/simnet"
)

// chaosCluster builds a 2-node cluster with a fault plan installed and
// the reliability layer armed via Config.CallDeadline.
func chaosCluster(seed int64, fc simnet.FaultConfig, deadline sim.Duration) (*sim.Env, *Engine, *Engine) {
	env := sim.NewEnv(seed)
	cl := simnet.NewCluster(env, simnet.Config{
		Nodes: 2, Cores: 28, Sockets: 2, LinkGbps: 100, PropDelayNs: 600, NUMAPenalty: 1.25,
	})
	cl.InstallFaults(fc)
	cfg := DefaultConfig()
	cfg.CallDeadline = deadline
	srv := New(cl.Node(0), cfg)
	cli := New(cl.Node(1), cfg)
	return env, srv, cli
}

// TestChaosEveryProtocolCompletesUnderLoss is the tentpole acceptance
// test: with 1–5% per-hop packet loss, every request/response protocol
// still completes every call via the deadline/retry/dedup layer.
func TestChaosEveryProtocolCompletesUnderLoss(t *testing.T) {
	const calls = 8
	for _, loss := range []float64{0.01, 0.05} {
		for _, proto := range dataProtocols {
			for _, busy := range []bool{true, false} {
				name := fmt.Sprintf("loss=%v/%s/busy=%v", loss, proto, busy)
				t.Run(name, func(t *testing.T) {
					env, srvEng, cliEng := chaosCluster(31, simnet.FaultConfig{DropProb: loss}, 20_000_000)
					srv := srvEng.Serve("svc", echoHandler)
					srv.Busy = busy
					env.Spawn("client", func(p *sim.Proc) {
						c := cliEng.Dial(p, srvEng.Node(), "svc")
						for i := 0; i < calls; i++ {
							req := []byte(fmt.Sprintf("req-%02d-%s", i, proto))
							resp, err := c.Call(p, uint32(i), req, CallOpts{Proto: proto, Busy: busy})
							if err != nil {
								t.Errorf("call %d: %v", i, err)
								break
							}
							if want := "ECHO" + string(req); string(resp) != want {
								t.Errorf("call %d: got %q, want %q", i, resp, want)
								break
							}
						}
						env.Stop()
					})
					env.Run()
				})
			}
		}
	}
}

// TestChaosLargePayloadsUnderLoss exercises the rendezvous machinery
// (CTS grants, pool buffers, FINs) across the loss/retransmit path with
// multi-fragment payloads.
func TestChaosLargePayloadsUnderLoss(t *testing.T) {
	for _, proto := range []Protocol{EagerSendRecv, WriteRNDV, ReadRNDV, HybridEagerRNDV} {
		t.Run(proto.String(), func(t *testing.T) {
			env, srvEng, cliEng := chaosCluster(47, simnet.FaultConfig{DropProb: 0.03}, 50_000_000)
			srvEng.Serve("svc", echoHandler)
			env.Spawn("client", func(p *sim.Proc) {
				c := cliEng.Dial(p, srvEng.Node(), "svc")
				req := make([]byte, 100_000)
				for i := range req {
					req[i] = byte(i * 13)
				}
				for i := 0; i < 4; i++ {
					resp, err := c.Call(p, 1, req, CallOpts{Proto: proto, RespProto: DirectWriteIMM, Busy: true})
					if err != nil {
						t.Errorf("call %d: %v", i, err)
						break
					}
					want := echoHandler(nil, 1, req)
					if !bytes.Equal(resp, want) {
						t.Errorf("call %d: corrupted response (%d bytes, want %d)", i, len(resp), len(want))
						break
					}
				}
				env.Stop()
			})
			env.Run()
		})
	}
}

// TestChaosOnewayCompletes covers the fire-and-forget path under loss:
// sendOnewayReliable must return without error and without leaking
// rendezvous state.
func TestChaosOnewayCompletes(t *testing.T) {
	env, srvEng, cliEng := chaosCluster(53, simnet.FaultConfig{DropProb: 0.03}, 20_000_000)
	srvEng.Serve("svc", echoHandler)
	var cli *Conn
	env.Spawn("client", func(p *sim.Proc) {
		cli = cliEng.Dial(p, srvEng.Node(), "svc")
		for i := 0; i < 6; i++ {
			if _, err := cli.Call(p, 1, []byte("oneway"), CallOpts{Proto: DirectWriteIMM, Oneway: true, Busy: true}); err != nil {
				t.Errorf("oneway %d: %v", i, err)
			}
		}
		// A request/response call after the oneways proves the connection
		// state survived.
		if resp, err := cli.Call(p, 2, []byte("after"), CallOpts{Proto: EagerSendRecv, Busy: true}); err != nil || string(resp) != "ECHOafter" {
			t.Errorf("follow-up call: %q %v", resp, err)
		}
		env.Stop()
	})
	env.Run()
}

// TestChaosLinkFlapsAndPauses drives the remaining fault features: every
// directed link flaps dark 10% of the time and the server node pauses
// periodically; all calls must still complete within the deadline.
func TestChaosLinkFlapsAndPauses(t *testing.T) {
	env, srvEng, cliEng := chaosCluster(67, simnet.FaultConfig{
		FlapPeriodNs: 500_000, FlapDownNs: 50_000,
		PausePeriodNs: 400_000, PauseForNs: 30_000, PausedNodes: []int{0},
	}, 50_000_000)
	srvEng.Serve("svc", echoHandler)
	env.Spawn("client", func(p *sim.Proc) {
		c := cliEng.Dial(p, srvEng.Node(), "svc")
		for i := 0; i < 12; i++ {
			req := []byte(fmt.Sprintf("flap-%02d", i))
			resp, err := c.Call(p, 1, req, CallOpts{Proto: EagerSendRecv, Busy: false})
			if err != nil {
				t.Errorf("call %d: %v", i, err)
				break
			}
			if want := "ECHO" + string(req); string(resp) != want {
				t.Errorf("call %d: got %q", i, resp)
				break
			}
		}
		env.Stop()
	})
	env.Run()
}

// TestChaosDeadlineExceededTyped drives a link with 100% loss: the call
// cannot complete, must return a typed error promptly, and the abort
// path must reclaim per-seq state so Close releases every pinned byte.
func TestChaosDeadlineExceededTyped(t *testing.T) {
	for _, proto := range []Protocol{EagerSendRecv, DirectWriteIMM, WriteRNDV, ReadRNDV, Pilaf, RFP} {
		t.Run(proto.String(), func(t *testing.T) {
			env, srvEng, cliEng := chaosCluster(61, simnet.FaultConfig{DropProb: 1.0}, 300_000)
			srvEng.Serve("svc", echoHandler)
			env.Spawn("client", func(p *sim.Proc) {
				c := cliEng.Dial(p, srvEng.Node(), "svc")
				_, err := c.Call(p, 1, make([]byte, 64), CallOpts{Proto: proto, Busy: true})
				// Typed errors arrive wrapped with per-call context; only
				// errors.Is (here via IsUnavailable) matches them.
				if !IsUnavailable(err) {
					t.Errorf("err = %v, want ErrDeadline or ErrPeerDown", err)
				}
				if p.Now() < 300_000 {
					t.Errorf("returned before the deadline at t=%d", p.Now())
				}
				c.Close()
				env.Stop()
			})
			env.Run()
			// Conn.Close returns in-flight rendezvous buffers to the engine
			// pool (still pinned); Engine.Close drains the pool itself.
			cliEng.Close()
			if got := cliEng.PinnedBytes(); got != 0 {
				t.Errorf("client pinned bytes after failed call + Close = %d, want 0", got)
			}
		})
	}
}

// TestChaosDeadlineWithoutFaultsStillBounds checks the deadline fires
// even when the transport is healthy but the peer never answers.
func TestChaosDeadlineNoServer(t *testing.T) {
	env := sim.NewEnv(71)
	cl := simnet.NewCluster(env, simnet.Config{
		Nodes: 2, Cores: 28, Sockets: 2, LinkGbps: 100, PropDelayNs: 600, NUMAPenalty: 1.25,
	})
	srvEng := New(cl.Node(0), DefaultConfig())
	cliEng := New(cl.Node(1), DefaultConfig())
	// Listener accepts but nobody dispatches: requests vanish into the
	// arrival queue.
	srvEng.Listen("svc")
	env.Spawn("client", func(p *sim.Proc) {
		c := cliEng.Dial(p, srvEng.Node(), "svc")
		_, err := c.Call(p, 1, []byte("hello?"), CallOpts{Proto: EagerSendRecv, Busy: true, Deadline: 500_000})
		if !errors.Is(err, ErrDeadline) {
			t.Errorf("err = %v, want ErrDeadline", err)
		}
		env.Stop()
	})
	env.Run()
}

// TestChaosLossPlusOverload is the combined robustness test (satellite
// of the flow-control PR): packet loss AND a 3x-oversubscribed server
// with shed-newest admission, credits, RNR arming, and the circuit
// breaker all at once. Every call must either succeed with a correct
// echo or fail with a *typed* overload/deadline error — never a
// corrupted response, never an untyped failure — and quiescing must
// leave zero pinned bytes and a fully accounted RECV ring.
func TestChaosLossPlusOverload(t *testing.T) {
	const (
		nClients = 6
		nCalls   = 8
	)
	env, srvEng, cliEng := chaosCluster(83, simnet.FaultConfig{DropProb: 0.02}, 20_000_000)
	// Arm the whole overload stack on both engines' future conns.
	for _, e := range []*Engine{srvEng, cliEng} {
		e.cfg.FlowCredits = e.cfg.EagerSlots
		e.cfg.ModelRNR = true
		e.cfg.BreakerThreshold = 5
		e.cfg.BreakerCooldown = 1_000_000
	}
	srv := srvEng.Serve("svc", slowEchoHandler(srvEng.Node(), 200_000))
	srv.AdmitLimit = 2
	srv.Admit = AdmitShedNewest
	protos := []Protocol{EagerSendRecv, DirectWriteIMM, WriteRNDV}
	var succ, shed, brk, dead int
	done := 0
	for ci := 0; ci < nClients; ci++ {
		ci := ci
		env.Spawn(fmt.Sprintf("client-%d", ci), func(p *sim.Proc) {
			c := cliEng.Dial(p, srvEng.Node(), "svc")
			for i := 0; i < nCalls; i++ {
				req := []byte(fmt.Sprintf("c%d-call%d", ci, i))
				resp, err := c.Call(p, uint32(i), req, CallOpts{
					Proto: protos[(ci+i)%len(protos)], RespProto: DirectWriteIMM, Busy: true,
				})
				switch {
				case err == nil:
					if want := "ECHO" + string(req); string(resp) != want {
						t.Errorf("client %d call %d: corrupted response %q", ci, i, resp)
					}
					succ++
				case errors.Is(err, ErrOverloaded):
					shed++
					p.Sleep(300_000) // back off before retrying the next call
				case errors.Is(err, ErrCircuitOpen):
					brk++
					p.Sleep(1_200_000) // sit out the cooldown
				case errors.Is(err, ErrDeadline), errors.Is(err, ErrPeerDown):
					dead++
				default:
					t.Errorf("client %d call %d: untyped error %v", ci, i, err)
				}
			}
			if done++; done == nClients {
				env.Stop()
			}
		})
	}
	env.Run()
	if succ == 0 {
		t.Error("no call ever succeeded under overload — shedding starved everyone")
	}
	if shed == 0 {
		t.Error("3x oversubscription shed nothing — admission control unexercised")
	}
	if srv.Shed == 0 {
		t.Error("server-side shed counter is zero")
	}
	t.Logf("succ=%d shed=%d breaker=%d deadline=%d srv.Shed=%d rnrNaks=%d",
		succ, shed, brk, dead, srv.Shed, srvEng.RnrNaks())
	assertNoLeaks(t, srvEng, cliEng)
}

// chaosTrace runs a fixed workload with tracing attached and returns the
// serialized trace. plan==nil runs without InstallFaults.
func chaosTrace(t *testing.T, seed int64, plan *simnet.FaultConfig, deadline sim.Duration) []byte {
	t.Helper()
	env := sim.NewEnv(seed)
	cl := simnet.NewCluster(env, simnet.Config{
		Nodes: 2, Cores: 28, Sockets: 2, LinkGbps: 100, PropDelayNs: 600, NUMAPenalty: 1.25,
	})
	if plan != nil {
		cl.InstallFaults(*plan)
	}
	cfg := DefaultConfig()
	cfg.CallDeadline = deadline
	srvEng := New(cl.Node(0), cfg)
	cliEng := New(cl.Node(1), cfg)
	reg := obs.NewRegistry()
	tr := obs.NewTracer()
	reg.SetTracer(tr)
	srvEng.SetObs(reg)
	cliEng.SetObs(reg)
	if fp := cl.Faults(); fp != nil {
		fp.SetObs(reg)
	}
	srvEng.Serve("svc", echoHandler)
	env.Spawn("client", func(p *sim.Proc) {
		c := cliEng.Dial(p, srvEng.Node(), "svc")
		for i, proto := range []Protocol{EagerSendRecv, DirectWriteIMM, WriteRNDV, RFP} {
			if _, err := c.Call(p, uint32(i), make([]byte, 2048), CallOpts{Proto: proto, Busy: true}); err != nil {
				t.Errorf("%s: %v", proto, err)
			}
		}
		env.Stop()
	})
	env.Run()
	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	buf.WriteString(reg.Render())
	return buf.Bytes()
}

// TestChaosDeterministicTraces: the same seed and fault plan yield a
// byte-identical trace; a different seed yields a different one.
func TestChaosDeterministicTraces(t *testing.T) {
	plan := &simnet.FaultConfig{DropProb: 0.05, JitterNs: 300}
	a := chaosTrace(t, 5, plan, 20_000_000)
	b := chaosTrace(t, 5, plan, 20_000_000)
	if !bytes.Equal(a, b) {
		t.Fatal("same seed + same fault plan produced different traces")
	}
	c := chaosTrace(t, 6, plan, 20_000_000)
	if bytes.Equal(a, c) {
		t.Fatal("different seeds produced identical traces (faults not seed-driven?)")
	}
}

// TestFaultsDisabledZeroCost: an installed all-zero fault plan must not
// perturb the simulation at all — its trace is byte-identical to a run
// with no plan installed. This is the "zero-cost opt-in" guarantee.
func TestFaultsDisabledZeroCost(t *testing.T) {
	off := chaosTrace(t, 9, nil, 0)
	zero := chaosTrace(t, 9, &simnet.FaultConfig{}, 0)
	if !bytes.Equal(off, zero) {
		t.Fatal("zero-valued fault plan perturbed the trace")
	}
}
