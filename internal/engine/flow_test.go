package engine

import (
	"bytes"
	"errors"
	"fmt"
	"testing"

	"hatrpc/internal/obs"
	"hatrpc/internal/sim"
	"hatrpc/internal/simnet"
)

// flowCluster builds a 2-node cluster with the given engine config on
// both ends.
func flowCluster(seed int64, cfg Config) (*sim.Env, *Engine, *Engine) {
	env := sim.NewEnv(seed)
	cl := simnet.NewCluster(env, simnet.Config{
		Nodes: 2, Cores: 28, Sockets: 2, LinkGbps: 100, PropDelayNs: 600, NUMAPenalty: 1.25,
	})
	srv := New(cl.Node(0), cfg)
	cli := New(cl.Node(1), cfg)
	return env, srv, cli
}

// assertNoLeaks is the leak-assertion helper the satellite asks for: at
// quiescence every consumed RECV has been reposted (ring back at full
// depth) and, after Close, no pinned bytes remain on either engine. The
// chaos tests reuse it.
func assertNoLeaks(t *testing.T, engines ...*Engine) {
	t.Helper()
	for _, e := range engines {
		slots := e.Config().EagerSlots
		for _, c := range e.Conns() {
			if got := c.PostedRecvs() + c.UnpolledRecvs(); got != slots {
				t.Errorf("node %d conn %d: %d accounted RECVs at quiesce (%d posted + %d unpolled), want %d (repost leak)",
					e.Node().ID(), c.ID(), got, c.PostedRecvs(), c.UnpolledRecvs(), slots)
			}
		}
		e.Close()
		if got := e.PinnedBytes(); got != 0 {
			t.Errorf("node %d: %d pinned bytes after Close, want 0", e.Node().ID(), got)
		}
	}
}

// overrunWorkload floods a 4-slot ring with back-to-back oneways while
// the dispatcher is stuck in a slow handler (the only window in which
// the ring can overrun — the pump otherwise drains in ~zero virtual
// time), then validates liveness with a normal call.
func overrunWorkload(t *testing.T, cfg Config) (srvEng, cliEng *Engine) {
	t.Helper()
	cfg.EagerSlots = 4
	cfg.ModelRNR = true
	env, srvEng, cliEng := flowCluster(11, cfg)
	srvEng.Serve("svc", slowEchoHandler(srvEng.Node(), 100_000))
	env.Spawn("client", func(p *sim.Proc) {
		c := cliEng.Dial(p, srvEng.Node(), "svc")
		for i := 0; i < 12; i++ {
			if _, err := c.Call(p, 1, []byte("flood"), CallOpts{Proto: EagerSendRecv, Oneway: true, Busy: true}); err != nil {
				t.Fatalf("oneway %d: %v", i, err)
			}
		}
		p.Sleep(3_000_000) // let the dispatcher drain the backlog
		resp, err := c.Call(p, 2, []byte("after"), CallOpts{Proto: EagerSendRecv, Busy: true})
		if err != nil || string(resp) != "ECHOafter" {
			t.Errorf("post-flood call: %q, %v", resp, err)
		}
		env.Stop()
	})
	env.Run()
	return srvEng, cliEng
}

// TestCreditsPreventRNR: the overrun flood with flow control on. Credits
// make the client block instead of overrunning, so the flood completes
// with zero RNR NAKs — the tentpole guarantee that a credit-respecting
// client never triggers RNR.
func TestCreditsPreventRNR(t *testing.T) {
	cfg := DefaultConfig()
	cfg.FlowCredits = 4
	srvEng, cliEng := overrunWorkload(t, cfg)
	if naks := srvEng.RnrNaks() + cliEng.RnrNaks(); naks != 0 {
		t.Errorf("credit-respecting client drew %d RNR NAKs, want 0", naks)
	}
	if cliEng.RnrFailures() != 0 {
		t.Errorf("RnrFailures = %d, want 0", cliEng.RnrFailures())
	}
	if cliEng.CreditStalls() == 0 {
		t.Error("no credit stalls recorded — the flood never waited, so the test exercised nothing")
	}
	assertNoLeaks(t, srvEng, cliEng)
}

// TestNoCreditsDrawsRNR is the control experiment: the same flood with
// flow control off drives SENDs into the exhausted ring and draws RNR
// NAKs (recovered by the RNR-timer retransmissions, given a generous
// retry budget).
func TestNoCreditsDrawsRNR(t *testing.T) {
	cfg := DefaultConfig()
	cfg.RnrRetry = 100 // generous: NAKs delay, never kill
	srvEng, cliEng := overrunWorkload(t, cfg)
	if srvEng.RnrNaks() == 0 {
		t.Error("ring overrun without credits drew no RNR NAKs — the control proves nothing")
	}
	if cliEng.RnrFailures() != 0 {
		t.Errorf("RnrFailures = %d with a generous retry budget, want 0", cliEng.RnrFailures())
	}
}

// TestCreditsFragmentedEagerCompletes: a 60 KB eager payload through a
// 4-slot ring is ~15 fragments — far more than the credit budget. The
// per-fragment credit acquisition must neither deadlock nor corrupt the
// reassembly.
func TestCreditsFragmentedEagerCompletes(t *testing.T) {
	cfg := DefaultConfig()
	cfg.EagerSlots = 4
	cfg.FlowCredits = 4
	cfg.ModelRNR = true
	env, srvEng, cliEng := flowCluster(19, cfg)
	srvEng.Serve("svc", echoHandler)
	env.Spawn("client", func(p *sim.Proc) {
		c := cliEng.Dial(p, srvEng.Node(), "svc")
		req := make([]byte, 60_000)
		for i := range req {
			req[i] = byte(i)
		}
		for i := 0; i < 3; i++ {
			resp, err := c.Call(p, 1, req, CallOpts{Proto: EagerSendRecv, RespProto: DirectWriteIMM, Busy: true})
			if err != nil {
				t.Fatalf("call %d: %v", i, err)
			}
			if want := echoHandler(nil, 1, req); !bytes.Equal(resp, want) {
				t.Fatalf("call %d: corrupted response", i)
			}
		}
		env.Stop()
	})
	env.Run()
	if naks := srvEng.RnrNaks() + cliEng.RnrNaks(); naks != 0 {
		t.Errorf("fragmented eager with credits drew %d RNR NAKs, want 0", naks)
	}
	assertNoLeaks(t, srvEng, cliEng)
}

// TestNoWaitFailsFast: CallOpts.NoWait converts a credit stall into an
// immediate ErrNoCredits instead of blocking.
func TestNoWaitFailsFast(t *testing.T) {
	cfg := DefaultConfig()
	cfg.EagerSlots = 4
	cfg.FlowCredits = 4
	env, srvEng, cliEng := flowCluster(13, cfg)
	srvEng.Serve("svc", echoHandler)
	env.Spawn("client", func(p *sim.Proc) {
		c := cliEng.Dial(p, srvEng.Node(), "svc")
		// Oneway floods never wait for responses, so spent credits are
		// only replenished by the server's async kCredit updates — spam
		// faster than they return and NoWait must trip.
		sawNoCredits := false
		for i := 0; i < 50; i++ {
			_, err := c.Call(p, 1, []byte("x"), CallOpts{Proto: EagerSendRecv, Oneway: true, NoWait: true, Busy: true})
			if errors.Is(err, ErrNoCredits) {
				sawNoCredits = true
				break
			}
			if err != nil {
				t.Fatalf("oneway %d: unexpected error %v", i, err)
			}
		}
		if !sawNoCredits {
			t.Error("50 back-to-back oneways through a 4-credit budget never returned ErrNoCredits")
		}
		env.Stop()
	})
	env.Run()
}

// TestCreditUpdateKeepsOnewayFlowAlive: a one-directional flow (oneways
// only — no responses to piggyback grants on) must be kept live by the
// async kCredit updates. Blocking sends through a tiny budget would
// deadlock without them.
func TestCreditUpdateKeepsOnewayFlowAlive(t *testing.T) {
	cfg := DefaultConfig()
	cfg.EagerSlots = 4
	cfg.FlowCredits = 4
	env, srvEng, cliEng := flowCluster(17, cfg)
	reg := obs.NewRegistry()
	srvEng.SetObs(reg)
	cliEng.SetObs(reg)
	srvEng.Serve("svc", func(p *sim.Proc, fn uint32, req []byte) []byte { return nil })
	done := false
	env.Spawn("client", func(p *sim.Proc) {
		c := cliEng.Dial(p, srvEng.Node(), "svc")
		for i := 0; i < 40; i++ { // 40 sends through 4 credits: ~10 refill cycles
			if _, err := c.Call(p, 1, []byte("oneway"), CallOpts{Proto: EagerSendRecv, Oneway: true, Busy: true}); err != nil {
				t.Fatalf("oneway %d: %v", i, err)
			}
		}
		done = true
		env.Stop()
	})
	env.Run()
	if !done {
		t.Fatal("oneway flood deadlocked (credit updates never arrived)")
	}
	if got := reg.Counter("engine.credit_updates").Value(); got == 0 {
		t.Error("oneway flood completed without any kCredit updates — what replenished the budget?")
	}
}

// slowEchoHandler returns an echo handler that charges busyNs of CPU per
// request on the given node.
func slowEchoHandler(node *simnet.Node, busyNs int64) Handler {
	return func(p *sim.Proc, fn uint32, req []byte) []byte {
		node.CPU.Compute(p, sim.Duration(busyNs))
		return echoHandler(p, fn, req)
	}
}

// overloadDuel runs nConns clients hammering a 1-slot server with the
// given admission policy and returns (successes, overloaded, other
// errors).
func overloadDuel(t *testing.T, policy AdmitPolicy, nConns, callsPer int) (succ, shed, other int, srvShed int64) {
	t.Helper()
	cfg := DefaultConfig()
	cfg.CallDeadline = 50_000_000
	env, srvEng, cliEng := flowCluster(23, cfg)
	srv := srvEng.Serve("svc", slowEchoHandler(srvEng.Node(), 100_000))
	srv.AdmitLimit = 1
	srv.Admit = policy
	results := make(chan error, nConns*callsPer)
	for i := 0; i < nConns; i++ {
		env.Spawn(fmt.Sprintf("client-%d", i), func(p *sim.Proc) {
			c := cliEng.Dial(p, srvEng.Node(), "svc")
			for j := 0; j < callsPer; j++ {
				_, err := c.Call(p, 1, []byte("duel"), CallOpts{Proto: EagerSendRecv, Busy: false})
				results <- err
			}
		})
	}
	env.Spawn("stopper", func(p *sim.Proc) {
		for len(results) < nConns*callsPer {
			p.Sleep(1_000_000)
		}
		env.Stop()
	})
	env.Run()
	close(results)
	for err := range results {
		switch {
		case err == nil:
			succ++
		case errors.Is(err, ErrOverloaded):
			shed++
		default:
			other++
		}
	}
	return succ, shed, other, srv.Shed
}

// TestAdmitBlockServesEverything: the block policy sheds nothing; every
// call queues and completes.
func TestAdmitBlockServesEverything(t *testing.T) {
	succ, shed, other, srvShed := overloadDuel(t, AdmitBlock, 6, 4)
	if shed != 0 || other != 0 || srvShed != 0 {
		t.Errorf("block policy shed %d / errored %d (server shed %d), want 0", shed, other, srvShed)
	}
	if succ != 24 {
		t.Errorf("successes = %d, want 24", succ)
	}
}

// TestAdmitShedNewestRejectsTyped: shed-newest rejects over-limit
// arrivals with ErrOverloaded, serves the rest, and every rejection is
// typed (no untyped failures).
func TestAdmitShedNewestRejectsTyped(t *testing.T) {
	succ, shed, other, srvShed := overloadDuel(t, AdmitShedNewest, 6, 4)
	if other != 0 {
		t.Errorf("%d untyped failures under shed-newest", other)
	}
	if shed == 0 {
		t.Error("6 clients into a 1-slot server shed nothing — admission control inert")
	}
	if int64(shed) != srvShed {
		t.Errorf("client-observed sheds %d != server Shed %d", shed, srvShed)
	}
	if succ == 0 {
		t.Error("no successes at all")
	}
}

// TestAdmitShedOldestBoundsQueue: shed-oldest keeps a bounded queue and
// shed calls are typed.
func TestAdmitShedOldestBoundsQueue(t *testing.T) {
	succ, shed, other, srvShed := overloadDuel(t, AdmitShedOldest, 6, 4)
	if other != 0 {
		t.Errorf("%d untyped failures under shed-oldest", other)
	}
	if shed == 0 {
		t.Error("6 clients into a 1-slot server (queue bound 1) shed nothing")
	}
	if int64(shed) != srvShed {
		t.Errorf("client-observed sheds %d != server Shed %d", shed, srvShed)
	}
	if succ == 0 {
		t.Error("no successes at all")
	}
}

// TestShedTypedOnEveryResponseProtocol: the kErr/shed marker must reach
// the client on every response channel — two-sided ring, HERD, RFP
// polling, and the Pilaf/FaRM metadata record.
func TestShedTypedOnEveryResponseProtocol(t *testing.T) {
	for _, respProto := range []Protocol{EagerSendRecv, DirectWriteIMM, HERD, RFP, Pilaf, FaRM} {
		t.Run(respProto.String(), func(t *testing.T) {
			cfg := DefaultConfig()
			cfg.CallDeadline = 50_000_000
			env, srvEng, cliEng := flowCluster(29, cfg)
			srv := srvEng.Serve("svc", slowEchoHandler(srvEng.Node(), 2_000_000))
			srv.AdmitLimit = 1
			srv.Admit = AdmitShedNewest
			env.Spawn("hog", func(p *sim.Proc) {
				c := cliEng.Dial(p, srvEng.Node(), "svc")
				if _, err := c.Call(p, 1, []byte("hog"), CallOpts{Proto: EagerSendRecv, Busy: false}); err != nil {
					t.Errorf("hog: %v", err)
				}
			})
			env.Spawn("victim", func(p *sim.Proc) {
				c := cliEng.Dial(p, srvEng.Node(), "svc")
				p.Sleep(200_000) // let the hog occupy the only slot
				_, err := c.Call(p, 2, []byte("victim"), CallOpts{Proto: EagerSendRecv, RespProto: respProto, Busy: true})
				if !errors.Is(err, ErrOverloaded) {
					t.Errorf("victim err = %v, want ErrOverloaded", err)
				}
				// After the hog drains, the same connection must serve a
				// normal call (shed left no stuck per-seq state).
				p.Sleep(3_000_000)
				resp, err := c.Call(p, 3, []byte("again"), CallOpts{Proto: EagerSendRecv, RespProto: respProto, Busy: true})
				if err != nil || string(resp) != "ECHOagain" {
					t.Errorf("post-shed call: %q, %v", resp, err)
				}
				env.Stop()
			})
			env.Run()
			if srv.Shed == 0 {
				t.Error("server shed nothing")
			}
			assertNoLeaks(t, srvEng, cliEng)
		})
	}
}

// TestBreakerTripsAndRecovers drives the full breaker state machine:
// consecutive ErrOverloaded trips it, open rejects locally with
// ErrCircuitOpen, and a half-open probe after the cooldown closes it.
func TestBreakerTripsAndRecovers(t *testing.T) {
	cfg := DefaultConfig()
	cfg.CallDeadline = 50_000_000
	cfg.BreakerThreshold = 2
	cfg.BreakerCooldown = 2_000_000
	env, srvEng, cliEng := flowCluster(31, cfg)
	srv := srvEng.Serve("svc", slowEchoHandler(srvEng.Node(), 3_000_000))
	srv.AdmitLimit = 1
	srv.Admit = AdmitShedNewest
	env.Spawn("hog", func(p *sim.Proc) {
		c := cliEng.Dial(p, srvEng.Node(), "svc")
		if _, err := c.Call(p, 1, []byte("hog"), CallOpts{Proto: EagerSendRecv, Busy: false}); err != nil {
			t.Errorf("hog: %v", err)
		}
	})
	env.Spawn("victim", func(p *sim.Proc) {
		c := cliEng.Dial(p, srvEng.Node(), "svc")
		p.Sleep(200_000)
		// Two consecutive sheds trip the threshold-2 breaker.
		for i := 0; i < 2; i++ {
			if _, err := c.Call(p, 2, []byte("v"), CallOpts{Proto: EagerSendRecv, Busy: true}); !errors.Is(err, ErrOverloaded) {
				t.Fatalf("call %d err = %v, want ErrOverloaded", i, err)
			}
		}
		// Open: rejected locally, instantly, without touching the wire.
		before := p.Now()
		if _, err := c.Call(p, 2, []byte("v"), CallOpts{Proto: EagerSendRecv, Busy: true}); !errors.Is(err, ErrCircuitOpen) {
			t.Fatalf("open-state err = %v, want ErrCircuitOpen", err)
		}
		if p.Now() != before {
			t.Errorf("open-state rejection charged %d ns, want 0 (local fail)", p.Now()-before)
		}
		// After the cooldown (and the hog draining) the half-open probe
		// goes through and closes the breaker.
		p.Sleep(4_000_000)
		resp, err := c.Call(p, 3, []byte("probe"), CallOpts{Proto: EagerSendRecv, Busy: true})
		if err != nil || string(resp) != "ECHOprobe" {
			t.Fatalf("half-open probe: %q, %v", resp, err)
		}
		// Closed again: normal service.
		if _, err := c.Call(p, 4, []byte("after"), CallOpts{Proto: EagerSendRecv, Busy: true}); err != nil {
			t.Fatalf("post-close call: %v", err)
		}
		env.Stop()
	})
	env.Run()
	if got := cliEng.BreakerOpens(); got != 1 {
		t.Errorf("BreakerOpens = %d, want 1", got)
	}
}

// flowTrace mirrors chaosTrace but parameterizes the overload knobs: it
// runs a light well-behaved workload (single outstanding call, payloads
// far under the ring depth) and returns the serialized trace + metrics.
func flowTrace(t *testing.T, seed int64, arm bool) []byte {
	t.Helper()
	env := sim.NewEnv(seed)
	cl := simnet.NewCluster(env, simnet.Config{
		Nodes: 2, Cores: 28, Sockets: 2, LinkGbps: 100, PropDelayNs: 600, NUMAPenalty: 1.25,
	})
	cfg := DefaultConfig()
	if arm {
		cfg.FlowCredits = cfg.EagerSlots
		cfg.ModelRNR = true
		cfg.BreakerThreshold = 3
	}
	srvEng := New(cl.Node(0), cfg)
	cliEng := New(cl.Node(1), cfg)
	reg := obs.NewRegistry()
	tr := obs.NewTracer()
	reg.SetTracer(tr)
	srvEng.SetObs(reg)
	cliEng.SetObs(reg)
	srvEng.Serve("svc", echoHandler)
	env.Spawn("client", func(p *sim.Proc) {
		c := cliEng.Dial(p, srvEng.Node(), "svc")
		for i, proto := range []Protocol{EagerSendRecv, DirectWriteIMM, WriteRNDV, ReadRNDV, RFP, Pilaf} {
			if _, err := c.Call(p, uint32(i), make([]byte, 2048), CallOpts{Proto: proto, Busy: true}); err != nil {
				t.Errorf("%s: %v", proto, err)
			}
		}
		env.Stop()
	})
	env.Run()
	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	buf.WriteString(reg.Render())
	return buf.Bytes()
}

// TestOverloadLayerUnexercisedZeroPerturbation is the zero-cost
// acceptance check from the other side: with the WHOLE overload layer
// armed (RNR model, full credit budget, breaker) but a well-behaved
// workload that never stalls, NAKs, sheds, or trips, the trace is
// byte-identical to a run with everything disabled. The layer costs
// exactly nothing until it fires — which also implies the disabled
// default path is byte-identical to pre-layer builds.
func TestOverloadLayerUnexercisedZeroPerturbation(t *testing.T) {
	off := flowTrace(t, 41, false)
	armed := flowTrace(t, 41, true)
	if !bytes.Equal(off, armed) {
		t.Fatal("armed-but-unexercised overload layer perturbed the trace")
	}
}
