package engine

import (
	"fmt"

	"hatrpc/internal/obs"
	"hatrpc/internal/sim"
)

// Handler processes one request payload and returns the response payload.
// It runs on the per-connection dispatcher process; CPU work must be
// charged explicitly via the process (e.g. node.CPU.Compute).
type Handler func(p *sim.Proc, fn uint32, req []byte) []byte

// Server accepts engine connections on a port and runs one dispatcher
// process per connection — the threaded-server model the paper's
// evaluation uses.
type Server struct {
	eng     *Engine
	ln      *Listener
	handler Handler

	// Busy selects busy polling for dispatcher waits. With many
	// connections and busy polling, dispatchers oversubscribe the node's
	// cores — the Figure 5 collapse.
	Busy bool
	// NUMABind pins dispatchers NIC-locally (no remote-socket penalty on
	// copies/compute).
	NUMABind bool

	// Served counts completed requests.
	Served int64

	conns []*Conn
}

// Serve starts accepting connections for the named port, dispatching each
// on its own simulation process.
func (e *Engine) Serve(port string, h Handler) *Server {
	s := &Server{eng: e, ln: e.Listen(port), handler: h}
	e.env.Spawn(fmt.Sprintf("engsrv-%d-%s", e.node.ID(), port), s.acceptLoop)
	return s
}

func (s *Server) acceptLoop(p *sim.Proc) {
	for i := 0; ; i++ {
		c := s.ln.Accept(p)
		c.SetNUMABound(s.NUMABind)
		s.conns = append(s.conns, c)
		s.eng.env.Spawn(fmt.Sprintf("%s-disp%d", p.Name(), i), func(dp *sim.Proc) {
			s.dispatch(dp, c)
		})
	}
}

func (s *Server) dispatch(p *sim.Proc, c *Conn) {
	eng := s.eng
	for {
		a := c.NextArrival(p, s.Busy)
		if a.Kind != kReq {
			continue
		}
		if c.dedupValid && a.Seq == c.dedupSeq {
			// Retransmitted request: the response (or the tail of the
			// original delivery) was lost. Resend the cached response
			// without re-executing the handler — at-most-once execution,
			// idempotent from the application's point of view.
			if m := eng.em; m != nil {
				m.dupRequests.Inc()
			}
			if c.dedupArr.RespProto != ProtoAuto {
				c.SendResponse(p, c.dedupArr, c.dedupResp, s.Busy)
			}
			continue
		}
		start := int64(p.Now())
		resp := s.handler(p, a.Fn, a.Payload)
		if a.RespProto != ProtoAuto { // ProtoAuto marks a oneway request
			c.SendResponse(p, a, resp, s.Busy)
		}
		c.dedupValid, c.dedupSeq, c.dedupResp = true, a.Seq, resp
		c.dedupArr = a
		c.dedupArr.Payload = nil // the request body is not needed for resends
		s.Served++
		if m := eng.em; m != nil && int(a.Proto) < nProtocols {
			m.served[a.Proto].Inc()
		}
		eng.trc.Complete("rpc", "serve."+a.Proto.String(), eng.node.ID(), c.id,
			start, int64(p.Now()),
			obs.Arg{K: "fn", V: a.Fn}, obs.Arg{K: "size", V: len(a.Payload)})
	}
}

// Conns returns the accepted server-side connections (for inspection).
func (s *Server) Conns() []*Conn { return s.conns }
