package engine

import (
	"errors"
	"fmt"

	"hatrpc/internal/obs"
	"hatrpc/internal/sim"
)

// Handler processes one request payload and returns the response payload.
// It runs on the per-connection dispatcher process; CPU work must be
// charged explicitly via the process (e.g. node.CPU.Compute).
type Handler func(p *sim.Proc, fn uint32, req []byte) []byte

// FnKeepalive is the reserved function id session keepalive probes use.
// Servers answer it header-only, bypassing dedup, admission control and
// the application handler; applications must not use it.
const FnKeepalive uint32 = 0xFFFFFFFF

// ErrOverloaded is the typed failure a client receives when the server's
// admission control shed its request. The rejection is header-only and
// costs the server ~no CPU — the point of load shedding is that saying
// "no" must be far cheaper than saying "yes".
var ErrOverloaded = errors.New("engine: server overloaded (request shed)")

// AdmitPolicy selects what a server does with a request that arrives
// while AdmitLimit handlers are already executing.
type AdmitPolicy uint8

const (
	// AdmitBlock queues the dispatcher FIFO until a handler slot frees.
	// Nothing is shed; queueing delay is unbounded under sustained
	// overload (the client's deadline is the only backstop).
	AdmitBlock AdmitPolicy = iota
	// AdmitShedNewest rejects the arriving request immediately when all
	// slots are busy. Requests already queued keep their accumulated
	// waiting investment — the classic tail-drop policy.
	AdmitShedNewest
	// AdmitShedOldest queues the arriving request and, when the queue
	// exceeds AdmitLimit waiters, sheds the longest-waiting one instead.
	// Under uniform per-call deadlines the oldest waiter is the one with
	// the least remaining deadline budget — shedding it first spends
	// server capacity on requests that still have time to be useful.
	AdmitShedOldest
)

func (ap AdmitPolicy) String() string {
	switch ap {
	case AdmitBlock:
		return "block"
	case AdmitShedNewest:
		return "shed-newest"
	case AdmitShedOldest:
		return "shed-oldest"
	}
	return "unknown"
}

// ParseAdmitPolicy maps the cmd-line spellings to a policy.
func ParseAdmitPolicy(s string) (AdmitPolicy, error) {
	switch s {
	case "block":
		return AdmitBlock, nil
	case "newest", "shed-newest":
		return AdmitShedNewest, nil
	case "oldest", "shed-oldest":
		return AdmitShedOldest, nil
	}
	return 0, fmt.Errorf("unknown admission policy %q (want block|newest|oldest)", s)
}

// admitQueue bounds the number of concurrently executing handlers
// server-wide. Dispatchers call acquire before running the handler and
// release after the response is sent; waiters park on per-ticket signals
// so a release wakes exactly one of them, FIFO.
type admitQueue struct {
	env     *sim.Env
	limit   int
	policy  AdmitPolicy
	running int
	waiting []*admitTicket
}

type admitTicket struct {
	sig     *sim.Signal
	arrival sim.Time
	state   int8 // 0 waiting, 1 admitted, -1 shed
}

func newAdmitQueue(env *sim.Env, limit int, policy AdmitPolicy) *admitQueue {
	return &admitQueue{env: env, limit: limit, policy: policy}
}

// acquire claims a handler slot, waiting per the policy. False means the
// request was shed and must be answered with ErrOverloaded.
func (q *admitQueue) acquire(p *sim.Proc) bool {
	if q.running < q.limit {
		q.running++
		return true
	}
	if q.policy == AdmitShedNewest {
		return false
	}
	t := &admitTicket{sig: sim.NewSignal(q.env), arrival: p.Now()}
	q.waiting = append(q.waiting, t)
	if q.policy == AdmitShedOldest && len(q.waiting) > q.limit {
		old := q.waiting[0]
		q.waiting = q.waiting[1:]
		old.state = -1
		old.sig.Fire()
	}
	for t.state == 0 {
		t.sig.Wait(p)
	}
	return t.state == 1
}

// release frees a handler slot and promotes the longest-waiting ticket.
func (q *admitQueue) release() {
	q.running--
	q.promote()
}

// promote admits waiting tickets while slots are free, FIFO.
func (q *admitQueue) promote() {
	for q.running < q.limit && len(q.waiting) > 0 {
		t := q.waiting[0]
		q.waiting = q.waiting[1:]
		q.running++
		t.state = 1
		t.sig.Fire()
	}
}

// setLimit rewires the concurrency bound live (hint hot-reload). Raising
// it promotes queued waiters immediately; limit <= 0 means unbounded —
// every waiter is promoted and future requests bypass the queue.
func (q *admitQueue) setLimit(limit int) {
	if limit <= 0 {
		limit = int(^uint(0) >> 1)
	}
	q.limit = limit
	q.promote()
}

// Server accepts engine connections on a port and runs one dispatcher
// process per connection — the threaded-server model the paper's
// evaluation uses.
type Server struct {
	eng     *Engine
	ln      *Listener
	handler Handler

	// Busy selects busy polling for dispatcher waits. With many
	// connections and busy polling, dispatchers oversubscribe the node's
	// cores — the Figure 5 collapse.
	Busy bool
	// Poll selects the dispatcher polling discipline explicitly (event,
	// busy, or adaptive spin-then-sleep). The zero value defers to Busy,
	// keeping existing configurations identical.
	Poll PollMode
	// NUMABind pins dispatchers NIC-locally (no remote-socket penalty on
	// copies/compute).
	NUMABind bool

	// AdmitLimit bounds concurrently executing handlers server-wide.
	// Zero — the default — disables admission control entirely (the
	// pre-admission behaviour: every dispatcher runs its handler as soon
	// as the request arrives). Set it before the first request arrives.
	AdmitLimit int
	// Admit selects the over-limit policy (default AdmitBlock).
	Admit AdmitPolicy
	// TenantLimit partitions handler capacity between tenants of the
	// virtualization tier: at most this many handlers run concurrently
	// for any one tenant (derived from the arrival's session id via
	// SIDTenant). Over-limit requests are shed with the typed
	// ErrOverloaded rejection, so one tenant's fan-in burst cannot
	// monopolize slots the global AdmitLimit would otherwise hand out
	// first-come-first-served. Zero disables the partition; requests
	// without a session id (sid 0 — virtualization off) are never
	// subject to it.
	TenantLimit int

	// Served counts completed requests.
	Served int64
	// Shed counts requests rejected by admission control.
	Shed int64
	// TenantShed counts requests rejected by the per-tenant partition.
	TenantShed int64
	// Drained counts requests fenced by the graceful-drain gate.
	Drained int64

	conns     []*Conn
	adm       *admitQueue
	tenantRun map[uint32]int // tenant → concurrently executing handlers

	// draining fences new requests with the typed kDrain rejection while
	// in-flight handlers run to completion (graceful drain, DESIGN.md §17).
	draining bool
	// exempt lists function ids the drain fence lets through (the node
	// ops surface: health and metrics must answer while draining).
	exempt map[uint32]bool
	// active counts dispatchers currently executing a handler (admitted,
	// not merely queued — queued waiters are counted via adm.waiting).
	active int
}

// Serve starts accepting connections for the named port, dispatching each
// on its own simulation process. The accept loop and dispatchers are
// node-owned processes: they die (running their deferred cleanup) when
// the node crashes, like any software on a machine losing power.
func (e *Engine) Serve(port string, h Handler) *Server {
	s := &Server{eng: e, ln: e.Listen(port), handler: h}
	e.node.Spawn(fmt.Sprintf("engsrv-%d-%s", e.node.ID(), port), s.acceptLoop)
	return s
}

func (s *Server) acceptLoop(p *sim.Proc) {
	for i := 0; ; i++ {
		c := s.ln.Accept(p)
		c.SetNUMABound(s.NUMABind)
		s.conns = append(s.conns, c)
		s.eng.node.Spawn(fmt.Sprintf("%s-disp%d", p.Name(), i), func(dp *sim.Proc) {
			s.dispatch(dp, c)
		})
	}
}

func (s *Server) dispatch(p *sim.Proc, c *Conn) {
	eng := s.eng
	for {
		// Resolved per iteration (not hoisted) so a hint hot-reload that
		// flips Poll/Busy takes effect on the next request without
		// restarting dispatchers.
		poll := resolvePoll(s.Poll, s.Busy)
		a := c.nextArrival(p, poll)
		if a.Kind != kReq {
			continue
		}
		if a.Fn == FnKeepalive {
			// Session keepalive probe: answered header-only before dedup
			// and admission — a probe must never be shed, and must not
			// disturb the cached response of the last real request. The
			// handler never sees it. While draining, the probe answer IS
			// the drain announcement: the prober's typed ErrDraining
			// suppresses further probes and redials (session.go).
			if a.RespProto != ProtoAuto {
				if s.draining {
					c.sendReject(p, a, kDrain)
				} else {
					c.sendResponse(p, a, nil, poll)
				}
			}
			continue
		}
		if e, ok := c.dedupLookup(a.SID, a.Seq); ok {
			// Retransmitted request: the response (or the tail of the
			// original delivery) was lost. Resend the cached response
			// without re-executing the handler — at-most-once execution,
			// idempotent from the application's point of view. The cache
			// is keyed by session id, so interleaved virtual connections
			// on this physical conn cannot evict each other's entry.
			if m := eng.em; m != nil {
				m.dupRequests.Inc()
			}
			if e.arr.RespProto != ProtoAuto {
				c.sendResponse(p, e.arr, e.resp, poll)
			}
			continue
		}
		if s.draining && !s.exempt[a.Fn] {
			// Graceful-drain fence: new work is rejected typed and
			// immediately (after dedup, so retransmissions of already
			// served requests still get their cached responses). No dedup
			// entry is recorded — the handler never ran, and a client that
			// re-routes and later retries here post-restart deserves a
			// fresh execution.
			s.Drained++
			eng.trc.Instant("rpc", "drained", eng.node.ID(), c.id,
				int64(p.Now()), obs.Arg{K: "fn", V: a.Fn}, obs.Arg{K: "seq", V: a.Seq})
			if a.RespProto != ProtoAuto {
				c.sendReject(p, a, kDrain)
			}
			continue
		}
		var tenant uint32
		tenantHeld := false
		if s.TenantLimit > 0 && a.SID != 0 {
			tenant = SIDTenant(a.SID)
			if s.tenantRun == nil {
				s.tenantRun = make(map[uint32]int)
			}
			if s.tenantRun[tenant] >= s.TenantLimit {
				// This tenant's partition is full: shed typed, leaving the
				// global admission slots for other tenants. No dedup entry
				// is recorded (the handler never ran).
				s.TenantShed++
				eng.trc.Instant("rpc", "tenant_shed", eng.node.ID(), c.id,
					int64(p.Now()), obs.Arg{K: "tenant", V: tenant}, obs.Arg{K: "seq", V: a.Seq})
				if a.RespProto != ProtoAuto {
					c.sendReject(p, a, kErr)
				}
				continue
			}
			s.tenantRun[tenant]++
			tenantHeld = true
		}
		acquired := false
		if s.AdmitLimit > 0 {
			if s.adm == nil {
				s.adm = newAdmitQueue(eng.env, s.AdmitLimit, s.Admit)
			}
			if !s.adm.acquire(p) {
				// Shed. The RECV this request consumed was already reposted
				// by the pump (before the message was interpreted), so no
				// repost bookkeeping happens here — and no dedup entry is
				// recorded: the handler never ran, and a retransmission of
				// this seq deserves a fresh admission attempt.
				if tenantHeld {
					s.tenantRun[tenant]--
				}
				s.Shed++
				if m := eng.em; m != nil && int(a.Proto) < nProtocols {
					m.shed[a.Proto].Inc()
				}
				eng.trc.Instant("rpc", "shed."+a.Proto.String(), eng.node.ID(), c.id,
					int64(p.Now()), obs.Arg{K: "seq", V: a.Seq})
				if a.RespProto != ProtoAuto {
					c.sendReject(p, a, kErr)
				}
				continue
			}
			acquired = true
		}
		s.active++
		start := int64(p.Now())
		resp := s.handler(p, a.Fn, a.Payload)
		if a.RespProto != ProtoAuto { // ProtoAuto marks a oneway request
			c.sendResponse(p, a, resp, poll)
		}
		s.active--
		if acquired {
			s.adm.release()
		}
		if tenantHeld {
			s.tenantRun[tenant]--
		}
		c.dedupRecord(a, resp)
		if eng.cfg.ArenaPayloads && len(a.Payload) > 0 && (len(resp) == 0 || &resp[0] != &a.Payload[0]) {
			// The request body has been copied onto the wire (or dropped);
			// recycle it into the payload arena. The alias check covers
			// echo handlers that return the request slice itself — only a
			// response sharing the payload's backing array (same first
			// element) keeps the buffer alive. Handlers returning an
			// *offset* subslice of the request must copy; the dispatcher
			// cannot see that aliasing.
			c.Recycle(a.Payload)
		}
		s.Served++
		if m := eng.em; m != nil && int(a.Proto) < nProtocols {
			m.served[a.Proto].Inc()
		}
		eng.trc.Complete("rpc", "serve."+a.Proto.String(), eng.node.ID(), c.id,
			start, int64(p.Now()),
			obs.Arg{K: "fn", V: a.Fn}, obs.Arg{K: "size", V: len(a.Payload)})
	}
}

// Conns returns the accepted server-side connections (for inspection).
func (s *Server) Conns() []*Conn { return s.conns }

// ---------------------------------------------------------------------------
// Graceful drain + live reconfiguration (DESIGN.md §17)

// drainPollNs paces the Drain quiesce wait. Coarse enough to stay off
// the hot path, fine enough that quiescence is observed well inside any
// realistic drain deadline.
const drainPollNs = 10_000

// SetDraining flips the drain fence. While set, new requests (except
// Exempt function ids) are rejected with the typed kDrain marker and
// keepalive probes answer kDrain — the announcement the session prober
// keys its probe suppression on. In-flight handlers are unaffected.
func (s *Server) SetDraining(v bool) { s.draining = v }

// Draining reports whether the drain fence is up.
func (s *Server) Draining() bool { return s.draining }

// Exempt marks function ids the drain fence lets through — the node ops
// surface (health, metrics) must keep answering while draining.
func (s *Server) Exempt(fns ...uint32) {
	if s.exempt == nil {
		s.exempt = make(map[uint32]bool)
	}
	for _, fn := range fns {
		s.exempt[fn] = true
	}
}

// Active returns the number of requests currently in flight: handlers
// executing plus requests queued in admission control.
func (s *Server) Active() int {
	n := s.active
	if s.adm != nil {
		n += len(s.adm.waiting)
	}
	return n
}

// Drain raises the drain fence and waits until every in-flight request
// (executing or admission-queued) has completed. Returns true when the
// server quiesced, false when the deadline expired first or the node
// went down mid-wait (the caller escalates to the crash path). Must run
// on a process that survives the node crashing — an env-owned ops
// process, not a node-owned dispatcher.
func (s *Server) Drain(p *sim.Proc, deadline sim.Time) bool {
	s.SetDraining(true)
	for {
		if s.eng.node.Down() {
			return false
		}
		if s.Active() == 0 {
			return true
		}
		if deadline > 0 && p.Now() >= deadline {
			return false
		}
		p.Sleep(drainPollNs)
	}
}

// SetAdmission rewires the admission bound and policy live (hint
// hot-reload): queued waiters are promoted immediately when the limit
// rises, and limit 0 disables admission for future requests while
// promoting everything still queued.
func (s *Server) SetAdmission(limit int, policy AdmitPolicy) {
	s.AdmitLimit = limit
	s.Admit = policy
	if s.adm != nil {
		s.adm.policy = policy
		s.adm.setLimit(limit)
	}
}
