package engine

import (
	"testing"

	"hatrpc/internal/sim"
)

// TestHybridSwitchBoundary pins the rendezvous switchover boundary for
// both hybrid protocols: payloads up to AND INCLUDING the threshold
// travel eagerly, strictly larger ones go rendezvous (DESIGN.md's 4 KB
// Hybrid-EagerRNDV threshold).
func TestHybridSwitchBoundary(t *testing.T) {
	const th = DefaultRndvThreshold
	cases := []struct {
		proto Protocol
		size  int
		want  Protocol
	}{
		{HybridEagerRNDV, 0, EagerSendRecv},
		{HybridEagerRNDV, th - 1, EagerSendRecv},
		{HybridEagerRNDV, th, EagerSendRecv},
		{HybridEagerRNDV, th + 1, WriteRNDV},
		{HybridEagerRead, th, EagerSendRecv},
		{HybridEagerRead, th + 1, ReadRNDV},
		// Non-hybrids pass through untouched regardless of size.
		{WriteRNDV, 1, WriteRNDV},
		{EagerSendRecv, th + 1, EagerSendRecv},
	}
	for _, c := range cases {
		if got := hybridSwitch(c.proto, c.size, th); got != c.want {
			t.Errorf("hybridSwitch(%s, %d) = %s, want %s", c.proto, c.size, got, c.want)
		}
	}
}

// TestResolveBoundaryMatchesBehavior checks the boundary end-to-end on
// both directions: a threshold-sized payload through a hybrid touches no
// rendezvous pool buffer (eager path), threshold+1 does.
func TestResolveBoundaryMatchesBehavior(t *testing.T) {
	const th = DefaultRndvThreshold
	allocs := func(reqSize, respSize int) (srvAllocs, cliAllocs int64) {
		env, srvEng, cliEng := testCluster(21)
		srvEng.Serve("svc", func(p *sim.Proc, fn uint32, req []byte) []byte {
			return make([]byte, respSize)
		})
		env.Spawn("client", func(p *sim.Proc) {
			c := cliEng.Dial(p, srvEng.Node(), "svc")
			if _, err := c.Call(p, 1, make([]byte, reqSize),
				CallOpts{Proto: HybridEagerRNDV, RespProto: HybridEagerRNDV, Busy: true}); err != nil {
				t.Error(err)
			}
			env.Stop()
		})
		env.Run()
		// Request rendezvous allocates at the server (grant), response
		// rendezvous at the client.
		return srvEng.RndvAllocs(), cliEng.RndvAllocs()
	}
	if s, c := allocs(th, th); s != 0 || c != 0 {
		t.Errorf("threshold-sized req/resp used rendezvous (srv=%d cli=%d allocs), want eager", s, c)
	}
	if s, _ := allocs(th+1, th); s == 0 {
		t.Error("threshold+1 request did not use rendezvous")
	}
	if _, c := allocs(th, th+1); c == 0 {
		t.Error("threshold+1 response did not use rendezvous")
	}
}
