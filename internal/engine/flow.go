package engine

import (
	"errors"

	"hatrpc/internal/obs"
	"hatrpc/internal/sim"
)

// ErrNoCredits is returned by Call when CallOpts.NoWait is set and the
// connection has no send credits available: the peer's RECV ring is (as
// far as this endpoint knows) full, and the caller asked to fail fast
// rather than queue behind it.
var ErrNoCredits = errors.New("engine: no send credits (peer receive ring full)")

// flowState is the per-connection credit accounting for receiver-driven
// flow control (Config.FlowCredits > 0). The invariant it maintains is
// that the number of un-granted messages in flight toward the peer never
// exceeds the peer's RECV ring depth, so a credit-respecting sender can
// never draw an RNR NAK.
//
// Grants are ABSOLUTE cumulative repost counts, not deltas: every
// outbound header carries the total number of RECV reposts this endpoint
// has performed since connection setup (grantTotal), and the receiver
// advances avail by the wrap-safe difference from the last total it saw
// (peerGrant). Duplicated or reordered grants are therefore idempotent,
// and a grant lost with its carrier message is recovered by the next
// header that makes it through — which matters because responses (and
// kCredit updates) can be dropped by fault injection.
//
// A small reserve is carved out of the configured credit budget for
// header-only control messages (CTS, FIN, kCredit, kErr): those are
// issued from pump context where blocking would deadlock, so they spend
// without waiting and may drive avail negative into the reserve. The
// overdraft is bounded — the engine runs one outstanding call per
// connection, and each call issues at most a couple of control messages
// before the data path next blocks on waitCredit.
type flowState struct {
	avail      int    // spendable credits; may dip below 0 into the reserve
	grantTotal uint32 // cumulative RECV reposts performed locally
	sentGrant  uint32 // grantTotal as of the last header we stamped
	peerGrant  uint32 // last cumulative total received from the peer
	lowWater   int    // un-piggybacked grants that force an async kCredit
}

// newFlowState sizes the credit budget for a connection whose peer posts
// `slots` RECVs. The budget is clamped to the ring depth (more credits
// than slots would defeat the point), a quarter (max 4) is reserved for
// control traffic, and the async-update low-water mark is half the
// spendable budget but never below 2 — at 1, every kCredit would itself
// trigger the peer's next kCredit and the connection would ping-pong
// credit updates forever.
func newFlowState(flowCredits, slots int) *flowState {
	credits := flowCredits
	if credits > slots {
		credits = slots
	}
	reserve := credits / 4
	if reserve > 4 {
		reserve = 4
	}
	avail := credits - reserve
	if avail < 1 {
		avail = 1
	}
	lowWater := avail / 2
	if lowWater < 2 {
		lowWater = 2
	}
	return &flowState{avail: avail, lowWater: lowWater}
}

// putHdrC stamps the header with the current cumulative grant and writes
// it. Every outbound header is a grant carrier; with flow control off it
// degrades to putHdr with a zero credits field — byte-identical to the
// pre-credit wire format.
func (c *Conn) putHdrC(b []byte, h hdr) {
	if fc := c.fc; fc != nil {
		h.credits = fc.grantTotal
		fc.sentGrant = fc.grantTotal
	}
	putHdr(b, h)
}

// noteCredits consumes the piggybacked grant of an inbound header.
func (c *Conn) noteCredits(h hdr) {
	fc := c.fc
	if fc == nil {
		return
	}
	if d := int32(h.credits - fc.peerGrant); d > 0 {
		fc.peerGrant = h.credits
		fc.avail += int(d)
		// No wakeup needed: grants are only discovered inside this conn's
		// own pump loops (waitCredit included), which re-check avail on
		// the next iteration.
	}
}

// noteRepost records that one RECV was reposted to the ring (one more
// message the peer may now send). If the grant backlog that has not yet
// ridden an outbound header reaches the low-water mark, an async kCredit
// update carries it — this keeps one-directional flows (oneway floods,
// long request bursts with no response traffic) from starving the peer.
func (c *Conn) noteRepost(p *sim.Proc) {
	fc := c.fc
	if fc == nil {
		return
	}
	fc.grantTotal++
	if int32(fc.grantTotal-fc.sentGrant) >= int32(fc.lowWater) {
		if m := c.eng.em; m != nil {
			m.creditUpdates.Inc()
		}
		c.postSmall(p, hdr{kind: kCredit})
	}
}

// spend consumes one credit without blocking (control-message path).
func (c *Conn) spend() {
	if fc := c.fc; fc != nil {
		fc.avail--
	}
}

// waitCredit blocks until at least one credit is spendable, pumping the
// CQ so inbound grants (and unrelated arrivals, which are queued) can
// land. A non-zero until bounds the wait; false means the deadline
// passed with the peer's ring still full. The caller spends separately —
// keeping acquisition and spending distinct lets fragmented sends
// acquire per fragment instead of needing the whole burst upfront
// (which could exceed the ring and deadlock).
func (c *Conn) waitCredit(p *sim.Proc, proto Protocol, poll PollMode, until sim.Time) bool {
	fc := c.fc
	if fc == nil || fc.avail > 0 {
		return true
	}
	eng := c.eng
	eng.creditStalls++
	if m := eng.em; m != nil {
		m.creditStalls[proto].Inc()
	}
	eng.trc.Instant("engine", "credit_stall."+proto.String(), eng.node.ID(), c.id,
		int64(p.Now()), obs.Arg{K: "avail", V: int64(fc.avail)})
	c.enterWait(poll)
	defer c.exitWait()
	if until > 0 {
		c.armWake(until)
	}
	for fc.avail <= 0 {
		if until > 0 && p.Now() >= until {
			return false
		}
		if c.pumpCompletions(p) > 0 {
			continue
		}
		c.pumpWait(p, poll)
	}
	c.chargeDetect(p, poll)
	return true
}
