package engine

import (
	"encoding/binary"
	"fmt"
	"sort"

	"hatrpc/internal/obs"
	"hatrpc/internal/sim"
	"hatrpc/internal/simnet"
	"hatrpc/internal/verbs"
)

// Config sizes the engine's per-connection resources.
type Config struct {
	// MaxMsgSize bounds a single RPC payload; direct buffers are sized to
	// hold it.
	MaxMsgSize int
	// EagerSlotSize is the payload capacity of one circular-buffer slot.
	EagerSlotSize int
	// EagerSlots is the ring depth (pre-posted receives per connection).
	EagerSlots int
	// RndvThreshold is the Hybrid-EagerRNDV switchover point.
	RndvThreshold int
	// RFPChunk is the default first-READ size when fetching an RFP
	// response of unknown length.
	RFPChunk int
	// NoFetchBufs skips the server-side published regions (RFP/HERD
	// request slot, Pilaf/FaRM meta+payload). Benchmarks that pin a
	// two-sided protocol set this to keep per-connection memory small.
	NoFetchBufs bool
	// RndvPoolCap bounds the free list of each rendezvous size class.
	// Buffers released beyond the cap are deregistered (unpinned) so a
	// mixed-size workload's pinned memory plateaus instead of growing
	// with every size class it ever touched. Zero means
	// DefaultRndvPoolCap.
	RndvPoolCap int
	// CallDeadline is the default per-call deadline applied when
	// CallOpts.Deadline is zero. Zero (the default) disables deadlines:
	// a call on a lossy fabric may block forever, and the call path is
	// byte-identical to builds without the reliability layer.
	CallDeadline sim.Duration

	// FlowCredits enables receiver-driven credit flow control when
	// positive: it is the number of peer RECV-ring slots one endpoint may
	// have outstanding (clamped to EagerSlots; a small reserve is carved
	// out for control messages). Grants piggyback on every outbound
	// header and a low-water async credit update keeps one-directional
	// flows live. Both endpoints of a connection must agree on the value
	// (they already must agree on EagerSlotSize/EagerSlots). Zero — the
	// default — disables flow control entirely: senders post unboundedly,
	// exactly the pre-credit behaviour.
	FlowCredits int
	// ModelRNR arms finite RECV depth on every connection QP: a SEND or
	// WRITE_WITH_IMM arriving with no posted RECV draws an RNR NAK (with
	// the modelled RNR-timer backoff) instead of being buffered, and
	// RnrRetry exhausted retransmissions fail the work request with
	// WCRNRRetryExceeded. False keeps the legacy infinite buffering.
	ModelRNR bool
	// RnrRetry is the RNR retransmission budget when ModelRNR is set.
	// Zero means DefaultRnrRetry.
	RnrRetry int
	// BreakerThreshold arms the client-side circuit breaker: this many
	// consecutive overload/deadline failures on a connection open it.
	// Zero (the default) disables the breaker.
	BreakerThreshold int
	// BreakerCooldown is how long an open breaker rejects calls before
	// half-open probing (doubling after each failed probe, capped at 16×).
	// Zero means DefaultBreakerCooldown.
	BreakerCooldown sim.Duration

	// PollBudget batches CQ draining in the pump loops: one wakeup polls
	// up to this many completions (CQ.PollN) and pays one detection
	// charge for the whole batch. Zero or one keeps the legacy
	// one-completion-per-poll behaviour, byte-identical to earlier
	// builds.
	PollBudget int
	// DoorbellBatch coalesces multi-call oneway bursts (OnewayBurst)
	// into a single chained PostSend — one doorbell per chain instead of
	// one per message. Segmented single messages deliberately stay on
	// the per-fragment path: chaining a whole fragment train would defer
	// every fragment's NIC work until the last one is staged, losing the
	// staging/transmit overlap that dominates large-message latency (a
	// measured regression, not a saving). False keeps one doorbell per
	// work request everywhere, byte-identical to earlier builds.
	DoorbellBatch bool
	// ArenaPayloads recycles delivered-payload buffers through a
	// size-classed arena instead of allocating per message. It is pure
	// host-memory reuse: no simulated cost changes, so virtual-time
	// behaviour is identical with it on or off. Payload ownership
	// tightens: a handler's request bytes are recycled after its
	// response is sent, and callers may hand responses back via
	// Conn.Recycle.
	ArenaPayloads bool
	// AdaptiveSpin is the PollAdaptiveMode spin window per wait entry.
	// Zero means DefaultAdaptiveSpinNs.
	AdaptiveSpin sim.Duration

	// SRQSlots moves server-side connections onto one engine-wide shared
	// receive queue: accepted connections' QPs drain a single ring of
	// this many slots instead of each pre-posting EagerSlots private
	// receives, so server receive memory scales with the aggregate
	// arrival rate rather than the connection count. Per-connection flow
	// credits still grant against EagerSlots, so many busy connections
	// can overcommit the shared ring — arm ModelRNR to surface that as
	// RNR NAK backoff instead of silent infinite buffering. Zero (the
	// default) keeps private per-connection rings, byte-identical to
	// earlier builds. Client-side (dialed) connections are unaffected.
	SRQSlots int
	// DedupSessions bounds the server-side dedup table: the number of
	// distinct virtual-connection session ids whose last response a
	// connection retains for retransmission absorption. Insertion-order
	// eviction keeps the bound deterministic. Zero means
	// DefaultDedupSessions. Legacy (sid-0) traffic uses exactly one
	// entry regardless of the bound.
	DedupSessions int
}

// DefaultRnrRetry is the RNR retransmission budget applied when
// Config.RnrRetry is zero (matches the common 7-retry RNIC default,
// minus the initial attempt).
const DefaultRnrRetry = 6

// DefaultBreakerCooldown is the initial open-state cooldown applied when
// Config.BreakerCooldown is zero: 1 ms of virtual time.
const DefaultBreakerCooldown = sim.Duration(1_000_000)

// DefaultRndvPoolCap is the per-size-class free-list bound applied when
// Config.RndvPoolCap is zero.
const DefaultRndvPoolCap = 8

// DefaultDedupSessions is the dedup-table bound applied when
// Config.DedupSessions is zero: enough for every virtual connection
// that can plausibly have a retransmission in flight on one physical
// connection, small enough that a server with thousands of connections
// stays bounded.
const DefaultDedupSessions = 64

// DefaultConfig returns the sizing used throughout the evaluation.
func DefaultConfig() Config {
	return Config{
		MaxMsgSize:    1 << 20,
		EagerSlotSize: DefaultRndvThreshold,
		EagerSlots:    64,
		RndvThreshold: DefaultRndvThreshold,
		RFPChunk:      4096,
	}
}

// ConnStats is the always-on per-connection accounting (cheap scalar
// adds on the hot path). Engine-wide per-protocol counters, phase
// histograms and trace spans live in the optional obs layer; attach a
// registry with Engine.SetObs to enable them.
type ConnStats struct {
	Calls       int64 // RPCs issued on this connection (client side)
	Oneways     int64 // of which fire-and-forget
	BytesSent   int64 // request/response payload bytes shipped
	BytesRecvd  int64 // payload bytes delivered to the application
	ReadRetries int64 // one-sided fetch polls that found stale data
}

// Engine is the per-node RDMA communication engine.
type Engine struct {
	node *simnet.Node
	dev  *verbs.Device
	pd   *verbs.PD
	cfg  Config
	env  *sim.Env

	rndvFree    map[int][]*verbs.MR // size-class → free registered buffers
	payloadFree map[int][][]byte    // size-class → recycled payload buffers (ArenaPayloads)

	// Always-on resource accounting.
	pinnedBytes int64
	rndvAllocs  int64
	readRetries int64

	// Always-on overload-protection accounting (only move when the
	// corresponding knob is enabled).
	creditStalls int64 // sends that blocked on zero credits
	rnrFailures  int64 // work requests failed with WCRNRRetryExceeded
	breakerOpens int64 // closed/half-open → open breaker transitions

	conns      []*Conn
	nextConnID int
	closed     bool

	// Shared server receive ring (Config.SRQSlots > 0): one SRQ + slot
	// region drained by every accepted connection's QP, created lazily
	// on the first accept.
	srq   *verbs.SRQ
	srqMR *verbs.MR

	obs *obs.Registry  // nil unless SetObs attached one
	trc *obs.Tracer    // cached from obs; nil = tracing off
	em  *engineMetrics // cached instruments; nil when obs is nil
}

// New creates an engine on the node (opening a simulated RNIC).
func New(node *simnet.Node, cfg Config) *Engine {
	if cfg.MaxMsgSize <= 0 {
		cfg = DefaultConfig()
	}
	if cfg.RndvPoolCap <= 0 {
		cfg.RndvPoolCap = DefaultRndvPoolCap
	}
	dev := verbs.OpenDevice(node, nil)
	return &Engine{
		node:        node,
		dev:         dev,
		pd:          dev.AllocPD(),
		cfg:         cfg,
		env:         node.Cluster().Env(),
		rndvFree:    make(map[int][]*verbs.MR),
		payloadFree: make(map[int][][]byte),
	}
}

// PinnedBytes returns the bytes of registered (pinned) memory the engine
// currently holds across connections and the rendezvous pool.
func (e *Engine) PinnedBytes() int64 { return e.pinnedBytes }

// RndvAllocs returns how many rendezvous buffers were registered because
// the pool was dry (pool misses).
func (e *Engine) RndvAllocs() int64 { return e.rndvAllocs }

// ReadRetries returns the total one-sided fetch retries across all
// connections.
func (e *Engine) ReadRetries() int64 { return e.readRetries }

// CreditStalls returns how many sends blocked on exhausted flow-control
// credits across all connections.
func (e *Engine) CreditStalls() int64 { return e.creditStalls }

// RnrNaks returns the RNR NAKs this node's NIC generated as a receiver
// (non-zero only with Config.ModelRNR and an overdriven RECV ring).
func (e *Engine) RnrNaks() int64 { return e.dev.RnrNaks() }

// RnrFailures returns work requests on this engine's connections that
// failed with WCRNRRetryExceeded (RNR retry budget exhausted).
func (e *Engine) RnrFailures() int64 { return e.rnrFailures }

// BreakerOpens returns circuit-breaker open transitions across this
// engine's connections.
func (e *Engine) BreakerOpens() int64 { return e.breakerOpens }

// nProtocols sizes per-protocol instrument arrays (ProtoAuto included so
// Protocol values index directly).
const nProtocols = int(HybridEagerRead) + 1

// engineMetrics caches the engine's obs instruments so the hot path is a
// single nil check plus an array index, never a map lookup.
type engineMetrics struct {
	calls     [nProtocols]*obs.Counter
	served    [nProtocols]*obs.Counter
	bytesSent [nProtocols]*obs.Counter
	callLat   [nProtocols]*obs.Histogram

	oneways     *obs.Counter
	readRetries *obs.Counter
	eagerFrags  *obs.Counter
	poolHit     *obs.Counter
	poolMiss    *obs.Counter
	poolDrop    *obs.Counter
	ctsWait     *obs.Histogram
	rndvReg     *obs.Histogram

	// Reliability-layer instruments (only move under fault injection
	// or explicit deadlines).
	retries          *obs.Counter
	deadlineExceeded *obs.Counter
	dupRequests      *obs.Counter
	qpRecoveries     *obs.Counter

	// Overload-protection instruments (only move when flow control,
	// admission control, RNR modelling or the breaker is enabled).
	shed          [nProtocols]*obs.Counter // requests rejected by admission
	creditStalls  [nProtocols]*obs.Counter // sends blocked on zero credits
	rnrNaks       *obs.Counter             // WCRNRRetryExceeded completions
	breakerOpen   *obs.Counter             // breaker open transitions
	creditUpdates *obs.Counter             // async kCredit messages sent

	// Session-lifecycle instruments (only move when Sessions are used).
	sessionRedials   *obs.Counter // dial attempts while re-establishing
	sessionFailovers *obs.Counter // successful reconnects (epoch ≥ 2)
	sessionReplays   *obs.Counter // idempotent calls replayed across a reconnect
}

func newEngineMetrics(r *obs.Registry) *engineMetrics {
	m := &engineMetrics{
		oneways:     r.Counter("engine.oneways"),
		readRetries: r.Counter("engine.read_retries"),
		eagerFrags:  r.Counter("engine.eager_frags"),
		poolHit:     r.Counter("engine.rndv_pool.hit"),
		poolMiss:    r.Counter("engine.rndv_pool.miss"),
		poolDrop:    r.Counter("engine.rndv_pool.drop"),
		ctsWait:     r.Histogram("engine.cts_wait_ns"),
		rndvReg:     r.Histogram("engine.rndv_register_ns"),

		retries:          r.Counter("engine.retries"),
		deadlineExceeded: r.Counter("engine.deadline_exceeded"),
		dupRequests:      r.Counter("engine.dup_requests"),
		qpRecoveries:     r.Counter("engine.qp_recoveries"),

		rnrNaks:       r.Counter("engine.rnr_naks"),
		breakerOpen:   r.Counter("engine.breaker_open"),
		creditUpdates: r.Counter("engine.credit_updates"),

		sessionRedials:   r.Counter("engine.session_redials"),
		sessionFailovers: r.Counter("engine.session_failovers"),
		sessionReplays:   r.Counter("engine.replays"),
	}
	for i := 0; i < nProtocols; i++ {
		name := Protocol(i).String()
		m.calls[i] = r.Counter("engine.calls." + name)                //hatlint:allow obsnames -- suffix bounded by the Protocol enum
		m.served[i] = r.Counter("engine.served." + name)              //hatlint:allow obsnames -- suffix bounded by the Protocol enum
		m.bytesSent[i] = r.Counter("engine.bytes_sent." + name)       //hatlint:allow obsnames -- suffix bounded by the Protocol enum
		m.callLat[i] = r.Histogram("engine.call_lat_ns." + name)      //hatlint:allow obsnames -- suffix bounded by the Protocol enum
		m.shed[i] = r.Counter("engine.shed." + name)                  //hatlint:allow obsnames -- suffix bounded by the Protocol enum
		m.creditStalls[i] = r.Counter("engine.credit_stalls." + name) //hatlint:allow obsnames -- suffix bounded by the Protocol enum
	}
	return m
}

// SetObs attaches an observability registry to the engine and its NIC:
// per-protocol call/serve counters and latency histograms, rendezvous
// pool and control-phase instruments, plus gauges sampling CPU load and
// NIC gate utilization. When the registry carries a tracer, the engine
// also emits deterministic sim-time event spans. Pass nil to detach.
// With no registry attached the hot-path instrumentation reduces to a
// nil test.
func (e *Engine) SetObs(r *obs.Registry) {
	e.obs = r
	e.trc = r.Tracer()
	e.dev.SetObs(r)
	if r == nil {
		e.em = nil
		return
	}
	e.em = newEngineMetrics(r)
	node, env := e.node, e.env
	pfx := fmt.Sprintf("node%d.", node.ID())
	r.Gauge(pfx+"cpu.load_factor", func() float64 { return node.CPU.LoadFactor() })      //hatlint:allow obsnames -- node prefix bounded by cluster size
	r.Gauge(pfx+"nic.tx.util", func() float64 { return node.TX.Utilization(env.Now()) }) //hatlint:allow obsnames -- node prefix bounded by cluster size
	r.Gauge(pfx+"nic.rx.util", func() float64 { return node.RX.Utilization(env.Now()) }) //hatlint:allow obsnames -- node prefix bounded by cluster size
	r.Gauge(pfx+"engine.pinned_bytes", func() float64 { return float64(e.pinnedBytes) }) //hatlint:allow obsnames -- node prefix bounded by cluster size
}

// Node returns the node this engine runs on.
func (e *Engine) Node() *simnet.Node { return e.node }

// Conns returns every connection this engine created, both dialed and
// accepted (for inspection — e.g. leak assertions over PostedRecvs).
func (e *Engine) Conns() []*Conn { return e.conns }

// Config returns the engine sizing.
func (e *Engine) Config() Config { return e.cfg }

// Cores returns the node's core count (for subscription classification).
func (e *Engine) Cores() int { return e.node.CPU.Cores() }

// sizeClass rounds a buffer size up to a power of two for pooling.
func sizeClass(n int) int {
	c := 4096
	for c < n {
		c <<= 1
	}
	return c
}

// acquireRndv takes a registered buffer from the rendezvous pool,
// registering a new one (expensive) only when the pool is dry (§4.3:
// "HatRPC pre-allocates and registers a buffer pool which makes
// requesting memories fast during the communication").
func (e *Engine) acquireRndv(p *sim.Proc, size int) *verbs.MR {
	cls := sizeClass(size)
	free := e.rndvFree[cls]
	if n := len(free); n > 0 {
		mr := free[n-1]
		free[n-1] = nil
		e.rndvFree[cls] = free[:n-1]
		mr.SetRevoked(false) // remote access restored for the new transfer
		e.em.poolHitInc()
		p.Sleep(200) // pool pop + bookkeeping
		return mr
	}
	e.rndvAllocs++
	e.pinnedBytes += int64(cls)
	start := int64(p.Now())
	mr := e.pd.RegisterMR(p, cls)
	if m := e.em; m != nil {
		m.poolMiss.Inc()
		m.rndvReg.Observe(float64(int64(p.Now()) - start))
	}
	e.trc.Complete("rndv", "register", e.node.ID(), 0, start, int64(p.Now()),
		obs.Arg{K: "bytes", V: cls})
	return mr
}

// poolHitInc is split out so acquireRndv's fast path stays branch-cheap.
func (m *engineMetrics) poolHitInc() {
	if m != nil {
		m.poolHit.Inc()
	}
}

// releaseRndv returns a pool buffer. Each size class keeps at most
// Config.RndvPoolCap free buffers; overflow is dropped and its pinned
// bytes returned, bounding pool growth under mixed-size workloads.
func (e *Engine) releaseRndv(mr *verbs.MR) {
	// Withdraw remote access first: an in-flight one-sided transfer still
	// holding this rkey (a retransmission race) must not touch the buffer
	// once it can be recycled.
	mr.SetRevoked(true)
	cls := sizeClass(mr.Len())
	free := e.rndvFree[cls]
	if len(free) >= e.cfg.RndvPoolCap {
		e.pinnedBytes -= int64(cls)
		if m := e.em; m != nil {
			m.poolDrop.Inc()
		}
		return
	}
	e.rndvFree[cls] = append(free, mr)
}

// ---------------------------------------------------------------------------
// Wire header

const hdrSize = 28

// Message kinds.
const (
	kReq    byte = 1
	kResp   byte = 2
	kRTS    byte = 3
	kCTS    byte = 4
	kNotify byte = 5
	kFin    byte = 6
	kCredit byte = 7 // async credit-grant update (header-only)
	kErr    byte = 8 // typed overload rejection (header-only)
	kDrain  byte = 9 // typed draining rejection (header-only)
)

const immDirect uint32 = 0xFFFFFFFF

type hdr struct {
	kind      byte
	proto     Protocol
	respProto Protocol
	fn        uint32
	length    uint32 // total payload length of the message
	seq       uint32
	off       uint32 // fragment offset (eager segmentation)
	credits   uint32 // cumulative RECV-repost grant (flow control; 0 when off)
	sid       uint32 // virtual-connection session id (0 = no virtualization)
}

func putHdr(b []byte, h hdr) {
	_ = b[hdrSize-1] // bounds hint: callers hand fixed-size registered MRs
	b[0] = h.kind
	b[1] = byte(h.proto)
	b[2] = byte(h.respProto)
	b[3] = 0
	binary.LittleEndian.PutUint32(b[4:], h.fn)
	binary.LittleEndian.PutUint32(b[8:], h.length)
	binary.LittleEndian.PutUint32(b[12:], h.seq)
	binary.LittleEndian.PutUint32(b[16:], h.off)
	binary.LittleEndian.PutUint32(b[20:], h.credits)
	binary.LittleEndian.PutUint32(b[24:], h.sid)
}

// decodeHdr is the bounds-checked variant of getHdr for buffers whose
// length is not structurally guaranteed (getHdr's callers all read from
// fixed-size registered MRs, which are always >= hdrSize). The reserved
// byte b[3] must be zero — a nonzero value means the bytes are not a
// header this engine version produced.
func decodeHdr(b []byte) (hdr, bool) {
	if len(b) < hdrSize || b[3] != 0 {
		return hdr{}, false
	}
	return getHdr(b), true
}

func getHdr(b []byte) hdr {
	_ = b[hdrSize-1] // bounds hint: callers hand fixed-size registered MRs
	return hdr{
		kind:      b[0],
		proto:     Protocol(b[1]),
		respProto: Protocol(b[2]),
		fn:        binary.LittleEndian.Uint32(b[4:]),
		length:    binary.LittleEndian.Uint32(b[8:]),
		seq:       binary.LittleEndian.Uint32(b[12:]),
		off:       binary.LittleEndian.Uint32(b[16:]),
		credits:   binary.LittleEndian.Uint32(b[20:]),
		sid:       binary.LittleEndian.Uint32(b[24:]),
	}
}

// rndvKey namespaces the shared rendezvous table by transfer direction so
// a request and its response (same seq) never collide.
func rndvKey(seq uint32, fromServer bool) uint64 {
	k := uint64(seq) << 1
	if fromServer {
		k |= 1
	}
	return k
}

// Arrival is a delivered request (at the server) or response (at the
// client).
type Arrival struct {
	Kind      byte
	Proto     Protocol
	RespProto Protocol
	Fn        uint32
	Seq       uint32
	SID       uint32 // originating virtual connection (0 = none)
	Payload   []byte
}

// connShared is the per-connection control blackboard both endpoints
// reference. In a real deployment rendezvous RKeys travel inside CTS/RTS
// packets; in the simulation the key bytes are represented by entries in
// this shared table, while the data payloads still traverse the simulated
// fabric.
type connShared struct {
	rndv map[uint64]verbs.RKey // rndvKey → exposed buffer for WRITE/READ
}

// hello is the out-of-band connection handshake payload (QPN/LID/rkey
// exchange in a real system).
type hello struct {
	qp     *verbs.QP
	direct verbs.RKey
	rfpIn  verbs.RKey
	rfpOut verbs.RKey
	kvMeta verbs.RKey
	kvPay  verbs.RKey
	shared *connShared
}

// Conn is one endpoint of an engine connection. A Conn carries one
// outstanding call at a time (Thrift connection semantics); concurrency
// comes from many connections.
type Conn struct {
	eng    *Engine
	server bool
	id     int // engine-local index; trace tid

	qp  *verbs.QP
	cq  *verbs.CQ
	sig *sim.Signal

	// Shared-ring backing (server side, Config.SRQSlots > 0): the QP
	// drains the engine's SRQ and slot WRIDs index srqMR instead of a
	// private eager ring. Both nil on legacy connections.
	srq   *verbs.SRQ
	srqMR *verbs.MR

	eagerMR  *verbs.MR // receive ring (nil when the shared ring is used)
	slotSize int
	slots    int
	stageMR  *verbs.MR // outbound staging
	directMR *verbs.MR // inbound direct-write target

	// Server-side published regions (client reads them one-sided).
	rfpInMR  *verbs.MR
	rfpOutMR *verbs.MR
	kvMetaMR *verbs.MR
	kvPayMR  *verbs.MR

	// Peer rkeys.
	peerDirect verbs.RKey
	peerRfpIn  verbs.RKey
	peerRfpOut verbs.RKey
	peerKvMeta verbs.RKey
	peerKvPay  verbs.RKey

	shared *connShared

	// seq numbers this connection's calls. It is uint32 and wraps after
	// 2^32 calls; that is safe because a Conn carries one outstanding
	// call at a time, so at most one seq's control state (rndv maps,
	// shared-table keys, CTS flags, frag reassembly) is live when a new
	// seq is issued — an old entry can never alias a wrapped value.
	seq      uint32
	nextWRID uint64

	// Per-seq control state. Every normal completion path deletes its
	// entry (handleWriteImm, handleRecvSlot kFin, handleWC OpRead,
	// waitCTS); abnormal paths — a peer that vanished mid-rendezvous, a
	// Read-RNDV oneway whose FIN is never pumped — leave residue that
	// Close drains.
	rfpPending   bool                 // server: un-consumed RFP/HERD request in rfpInMR
	rndvIn       map[uint32]*verbs.MR // receiver: buffers awaiting WRITE_IMM or READ, by seq
	rndvOut      map[uint32]*verbs.MR // sender: exposed buffers awaiting FIN, by seq
	pendingReads map[uint64]hdr       // READ wrid → header context (Read-RNDV pull)

	// Orphaned rendezvous buffers from aborted (deadline-exceeded)
	// calls: a peer-side one-sided transfer may still target them, so
	// they cannot rejoin the pool until the late completion (WRITE_IMM,
	// READ, FIN) arrives — or Close drains them.
	orphanIn  map[uint32]*verbs.MR
	orphanOut map[uint32]*verbs.MR

	// Server-side idempotent dedup, keyed by virtual-connection session
	// id: for each sid (0 when virtualization is off) the seq of the
	// last executed request and its cached response. A retransmitted
	// request (same sid, same seq) resends the cached response without
	// re-running the handler. One entry per sid suffices because each
	// virtual connection carries one outstanding call; the table is
	// bounded (Config.DedupSessions) with deterministic insertion-order
	// eviction. Legacy traffic only ever populates sid 0, reproducing
	// the historical single-slot behaviour exactly.
	dedup      map[uint32]*dedupEntry
	dedupOrder []uint32 // sid insertion order, oldest first

	ctsReady  map[uint32]bool       // CTS seen for seq
	frags     map[uint32]*fragState // eager reassembly by seq
	respQueue []Arrival             // completed arrivals not yet consumed

	// Overload-protection state (nil when the knob is disabled).
	fc  *flowState // receiver-driven credit flow control
	brk *breaker   // client-side circuit breaker

	stats  ConnStats
	pinned int64 // registered bytes attributed to this conn
	closed bool

	busyLoaded bool
	numaBound  bool

	// Adaptive-poller state: the virtual time until which the current
	// wait may keep spinning before demoting to the event path.
	spinUntil sim.Time
	// Batched-poll scratch (Config.PollBudget > 1); nil keeps the legacy
	// one-completion-per-poll pumps.
	wcBuf []verbs.WC
}

// dedupEntry caches the outcome of the last request a virtual
// connection executed on this physical connection.
type dedupEntry struct {
	seq  uint32
	resp []byte
	arr  Arrival // response context, Payload stripped
}

// dedupLookup returns the cached entry for sid when it matches seq — a
// retransmission of the request just served on that virtual connection.
func (c *Conn) dedupLookup(sid, seq uint32) (*dedupEntry, bool) {
	e, ok := c.dedup[sid]
	if !ok || e.seq != seq {
		return nil, false
	}
	return e, true
}

// dedupRecord caches a served request's response for its sid,
// overwriting the sid's previous entry in place. A new sid beyond the
// table bound evicts the oldest-inserted sid — deterministic, and safe
// because an evicted virtual connection's retransmission merely
// re-executes (the pre-virtualization behaviour for every conn).
func (c *Conn) dedupRecord(a Arrival, resp []byte) {
	a.Payload = nil
	if e, ok := c.dedup[a.SID]; ok {
		e.seq, e.resp, e.arr = a.Seq, resp, a
		return
	}
	limit := c.eng.cfg.DedupSessions
	if limit <= 0 {
		limit = DefaultDedupSessions
	}
	if len(c.dedupOrder) >= limit {
		oldest := c.dedupOrder[0]
		c.dedupOrder = c.dedupOrder[1:]
		delete(c.dedup, oldest)
	}
	c.dedup[a.SID] = &dedupEntry{seq: a.Seq, resp: resp, arr: a}
	c.dedupOrder = append(c.dedupOrder, a.SID)
}

// Stats returns the connection's always-on counters.
func (c *Conn) Stats() ConnStats { return c.stats }

// ID returns the engine-local connection index (used as the trace tid).
func (c *Conn) ID() int { return c.id }

// PostedRecvs reports the RECVs currently posted to the connection's QP.
// At quiescence (no message in flight) every consumed slot has been
// reposted, so this equals the configured ring depth — the invariant the
// leak-assertion test helper checks.
func (c *Conn) PostedRecvs() int { return c.qp.RecvDepth() }

// UnpolledRecvs reports RECV completions delivered to the CQ but not yet
// polled by a pump loop (e.g. stale duplicate responses that arrived
// after their call completed). Their ring slots are consumed but will be
// reposted the next time the connection pumps, so leak accounting treats
// PostedRecvs + UnpolledRecvs as the ring's true depth.
func (c *Conn) UnpolledRecvs() int { return c.cq.QueuedRecvs() }

func (e *Engine) newConn(server bool, shared *connShared) *Conn {
	c := &Conn{
		eng:          e,
		server:       server,
		id:           e.nextConnID,
		cq:           e.dev.CreateCQ(),
		sig:          sim.NewSignal(e.env),
		slotSize:     e.cfg.EagerSlotSize + hdrSize,
		slots:        e.cfg.EagerSlots,
		shared:       shared,
		rndvIn:       make(map[uint32]*verbs.MR),
		rndvOut:      make(map[uint32]*verbs.MR),
		pendingReads: make(map[uint64]hdr),
		orphanIn:     make(map[uint32]*verbs.MR),
		orphanOut:    make(map[uint32]*verbs.MR),
		ctsReady:     make(map[uint32]bool),
		frags:        make(map[uint32]*fragState),
		dedup:        make(map[uint32]*dedupEntry),
		wcBuf:        wcBufFor(e.cfg),
	}
	e.nextConnID++
	if server && e.cfg.SRQSlots > 0 {
		c.srq = e.serverSRQ()
		c.srqMR = e.srqMR
		c.qp = e.dev.CreateQPSRQ(c.cq, c.cq, c.srq)
	} else {
		c.qp = e.dev.CreateQP(c.cq, c.cq)
	}
	c.cq.SetNotify(c.sig.Fire)
	if e.cfg.ModelRNR && c.srq == nil {
		// SRQ-backed QPs inherit the RNR discipline armed on the shared
		// ring itself (serverSRQ).
		retry := e.cfg.RnrRetry
		if retry <= 0 {
			retry = DefaultRnrRetry
		}
		c.qp.SetRNR(retry)
	}
	if e.cfg.FlowCredits > 0 {
		c.fc = newFlowState(e.cfg.FlowCredits, e.cfg.EagerSlots)
	}
	if !server && e.cfg.BreakerThreshold > 0 {
		c.brk = newBreaker(e.cfg.BreakerThreshold, e.cfg.BreakerCooldown)
	}
	if c.srq == nil {
		c.eagerMR = e.pd.RegisterMRNoCost(c.slots * c.slotSize)
	}
	// Staging holds [hdr|payload] plus a dedicated tail region for notify
	// headers so Direct-Write-Send chains never overlap the payload. With
	// doorbell batching every fragment of a chained eager train needs its
	// own staged header, so the region grows by one header per possible
	// fragment; without batching the sizing is exactly the legacy one.
	stageLen := e.cfg.MaxMsgSize + 2*hdrSize
	if e.cfg.DoorbellBatch {
		slotCap := c.slotSize - hdrSize
		maxFrags := (e.cfg.MaxMsgSize + slotCap - 1) / slotCap
		if maxFrags < 1 {
			maxFrags = 1
		}
		stageLen = e.cfg.MaxMsgSize + (maxFrags+1)*hdrSize
	}
	c.stageMR = e.pd.RegisterMRNoCost(stageLen)
	c.directMR = e.pd.RegisterMRNoCost(e.cfg.MaxMsgSize + hdrSize)
	if server && !e.cfg.NoFetchBufs {
		c.rfpInMR = e.pd.RegisterMRNoCost(e.cfg.MaxMsgSize + hdrSize)
		c.rfpOutMR = e.pd.RegisterMRNoCost(e.cfg.MaxMsgSize + hdrSize)
		c.kvMetaMR = e.pd.RegisterMRNoCost(32)
		c.kvPayMR = e.pd.RegisterMRNoCost(e.cfg.MaxMsgSize + hdrSize)
		c.rfpInMR.SetWriteNotify(func() {
			c.rfpPending = true
			c.sig.Fire()
		})
	}
	// Pin accounting from the actual MR lengths so Close can return the
	// exact amount.
	for _, mr := range []*verbs.MR{c.eagerMR, c.stageMR, c.directMR, c.rfpInMR, c.rfpOutMR, c.kvMetaMR, c.kvPayMR} {
		if mr != nil {
			c.pinned += int64(mr.Len())
		}
	}
	e.pinnedBytes += c.pinned
	e.conns = append(e.conns, c)
	if c.srq == nil {
		for i := 0; i < c.slots; i++ {
			c.qp.PostRecv(verbs.RecvWR{
				WRID: uint64(i),
				SGE:  verbs.SGE{MR: c.eagerMR, Off: i * c.slotSize, Len: c.slotSize},
			})
		}
	}
	return c
}

// serverSRQ lazily creates the engine's shared server receive ring: one
// SRQ whose Config.SRQSlots slots (sized like eager ring slots) are
// posted once and thereafter recycled by whichever connection consumes
// them. ModelRNR arms finite depth on the shared ring itself, so
// overcommit by per-connection credit grants surfaces as RNR NAKs.
func (e *Engine) serverSRQ() *verbs.SRQ {
	if e.srq != nil {
		return e.srq
	}
	slotSize := e.cfg.EagerSlotSize + hdrSize
	e.srq = e.dev.CreateSRQ()
	e.srqMR = e.pd.RegisterMRNoCost(e.cfg.SRQSlots * slotSize)
	e.pinnedBytes += int64(e.srqMR.Len())
	if e.cfg.ModelRNR {
		retry := e.cfg.RnrRetry
		if retry <= 0 {
			retry = DefaultRnrRetry
		}
		e.srq.SetRNR(retry)
	}
	for i := 0; i < e.cfg.SRQSlots; i++ {
		e.srq.PostRecv(verbs.RecvWR{
			WRID: uint64(i),
			SGE:  verbs.SGE{MR: e.srqMR, Off: i * slotSize, Len: slotSize},
		})
	}
	return e.srq
}

// SRQDepth returns the posted-but-unconsumed slots in the shared server
// receive ring, or -1 when no shared ring exists. Leak accounting over
// SRQ-backed connections sums this with every accepted connection's
// UnpolledRecvs and compares against Config.SRQSlots.
func (e *Engine) SRQDepth() int {
	if e.srq == nil {
		return -1
	}
	return e.srq.Depth()
}

// sortedSeqs returns m's keys ascending, so map drains never depend on
// Go's randomized iteration order (the simulation must stay
// deterministic even during teardown).
func sortedSeqs(m map[uint32]*verbs.MR) []uint32 {
	ks := make([]uint32, 0, len(m))
	for k := range m {
		ks = append(ks, k)
	}
	sort.Slice(ks, func(i, j int) bool { return ks[i] < ks[j] })
	return ks
}

// Close releases the connection's pinned resources: the eager ring,
// staging and direct buffers, the server-side published regions, and any
// rendezvous pool buffers still held by in-flight transfers (returned to
// the engine pool, which unpins overflow beyond the cap). Shared-table
// entries for those transfers are dropped. Close is idempotent; the
// pool's own free buffers are unpinned by Engine.Close.
func (c *Conn) Close() {
	if c.closed {
		return
	}
	c.closed = true
	for _, seq := range sortedSeqs(c.rndvIn) {
		c.eng.releaseRndv(c.rndvIn[seq])
		delete(c.shared.rndv, rndvKey(seq, !c.server))
	}
	for _, seq := range sortedSeqs(c.rndvOut) {
		c.eng.releaseRndv(c.rndvOut[seq])
		delete(c.shared.rndv, rndvKey(seq, c.server))
	}
	for _, seq := range sortedSeqs(c.orphanIn) {
		c.eng.releaseRndv(c.orphanIn[seq])
	}
	for _, seq := range sortedSeqs(c.orphanOut) {
		c.eng.releaseRndv(c.orphanOut[seq])
		delete(c.shared.rndv, rndvKey(seq, c.server))
	}
	c.rndvIn, c.rndvOut = nil, nil
	c.orphanIn, c.orphanOut = nil, nil
	c.pendingReads, c.ctsReady, c.frags = nil, nil, nil
	c.respQueue = nil
	c.dedup, c.dedupOrder = nil, nil
	c.exitWait()
	c.eng.pinnedBytes -= c.pinned
	c.pinned = 0
	c.eagerMR, c.stageMR, c.directMR = nil, nil, nil
	c.rfpInMR, c.rfpOutMR, c.kvMetaMR, c.kvPayMR = nil, nil, nil, nil
}

// Close tears down the engine: every connection it created is closed and
// the rendezvous pool is drained, unpinning all registered buffers.
// After Close, PinnedBytes reports zero — the pre-connection baseline —
// which the obs pinned-bytes gauge makes visible to teardown tests.
func (e *Engine) Close() {
	if e.closed {
		return
	}
	e.closed = true
	for _, c := range e.conns {
		c.Close()
	}
	e.conns = nil
	classes := make([]int, 0, len(e.rndvFree))
	for cls := range e.rndvFree {
		classes = append(classes, cls)
	}
	sort.Ints(classes)
	for _, cls := range classes {
		e.pinnedBytes -= int64(cls) * int64(len(e.rndvFree[cls]))
	}
	e.rndvFree = make(map[int][]*verbs.MR)
	if e.srqMR != nil {
		e.pinnedBytes -= int64(e.srqMR.Len())
		e.srqMR, e.srq = nil, nil
	}
}

func (c *Conn) helloFor() *hello {
	h := &hello{qp: c.qp, direct: c.directMR.RKey(), shared: c.shared}
	if c.server {
		h.rfpIn = c.rfpInMR.RKey()
		h.rfpOut = c.rfpOutMR.RKey()
		h.kvMeta = c.kvMetaMR.RKey()
		h.kvPay = c.kvPayMR.RKey()
	}
	return h
}

func (c *Conn) applyHello(h *hello) {
	// A handshake always runs on a freshly created QP, so re-target
	// refusal here means engine wiring is broken, not a runtime fault.
	if err := c.qp.Connect(h.qp); err != nil {
		panic("engine: handshake on a connected QP: " + err.Error())
	}
	c.peerDirect = h.direct
	c.peerRfpIn = h.rfpIn
	c.peerRfpOut = h.rfpOut
	c.peerKvMeta = h.kvMeta
	c.peerKvPay = h.kvPay
	c.shared = h.shared
}

// SetNUMABound marks the connection's processing as NUMA-local (§3.3,
// §5.5): CPU work on this connection is not penalized for remote-socket
// access.
func (c *Conn) SetNUMABound(b bool) { c.numaBound = b }

func (c *Conn) wrid() uint64 {
	c.nextWRID++
	return c.nextWRID
}

// memcpyCharge charges CPU copy time, scaled by NUMA placement.
func (c *Conn) memcpyCharge(p *sim.Proc, n int) {
	if n <= 0 {
		return
	}
	w := sim.Duration(c.eng.dev.CostModel().MemcpyTime(n))
	c.eng.node.CPU.Compute(p, c.eng.node.NUMAWork(w, c.numaBound))
}

// ---------------------------------------------------------------------------
// Dialing and accepting

// Listener accepts engine connections for a named service.
type Listener struct {
	eng *Engine
	l   *simnet.Listener
}

// Listen registers a service port on the engine's node.
func (e *Engine) Listen(port string) *Listener {
	return &Listener{eng: e, l: e.node.Listen(port)}
}

// Accept blocks until a client dials, completing the QP/buffer handshake
// and returning the server-side connection.
func (ln *Listener) Accept(p *sim.Proc) *Conn {
	ep := ln.l.Accept(p)
	ch := ep.Recv(p).(*hello)
	c := ln.eng.newConn(true, ch.shared)
	c.applyHello(ch)
	ep.Send(p, c.helloFor(), 256)
	return c
}

// Dial connects to a service port on a remote node, performing the
// out-of-band handshake (QP numbers, rkeys) and returning the client-side
// connection.
func (e *Engine) Dial(p *sim.Proc, target *simnet.Node, port string) *Conn {
	ep := e.node.Connect(p, target, port)
	c := e.newConn(false, &connShared{rndv: make(map[uint64]verbs.RKey)})
	ep.Send(p, c.helloFor(), 256)
	sh := ep.Recv(p).(*hello)
	c.applyHello(sh)
	return c
}

// TryDial is Dial with a bounded handshake: connecting to a down (or
// just-rebooting) node fails with a wrapped ErrPeerDown instead of
// blocking forever. until bounds the whole handshake in virtual time.
// A fresh dial registers fresh MRs and exchanges fresh rkeys, so
// re-dialing after a peer crash naturally re-registers everything the
// old epoch invalidated. The half-built connection is closed on
// failure so nothing leaks.
func (e *Engine) TryDial(p *sim.Proc, target *simnet.Node, port string, until sim.Time) (*Conn, error) {
	ep, err := e.node.TryConnect(p, target, port)
	if err != nil {
		return nil, fmt.Errorf("engine: dial node %d: %v: %w", target.ID(), err, ErrPeerDown)
	}
	c := e.newConn(false, &connShared{rndv: make(map[uint64]verbs.RKey)})
	ep.Send(p, c.helloFor(), 256)
	raw, ok := ep.RecvUntil(p, until)
	if !ok {
		// The server crashed (or the hello was addressed to a previous
		// boot) before answering.
		c.Close()
		return nil, fmt.Errorf("engine: dial node %d: handshake timeout: %w", target.ID(), ErrPeerDown)
	}
	c.applyHello(raw.(*hello))
	return c, nil
}

// ---------------------------------------------------------------------------
// Event pump

// chargeDetect applies the completion-detection cost for the polling
// discipline. Adaptive waits still inside their spin window pay the
// busy-poll detection cost; past the window (demoted to the event path)
// they pay the interrupt wake.
func (c *Conn) chargeDetect(p *sim.Proc, poll PollMode) {
	cm := c.eng.dev.CostModel()
	cpu := c.eng.node.CPU
	busy := poll == PollBusyMode || (poll == PollAdaptiveMode && p.Now() < c.spinUntil)
	if busy {
		p.Sleep(sim.Duration(cm.BusyDetectNs(cpu.LoadFactor())))
	} else {
		p.Sleep(sim.Duration(float64(cm.InterruptWakeNs) * cpu.LoadFactor()))
	}
}

// enterWait registers the busy-poll CPU load for the duration of a wait.
// An adaptive wait spins like a busy poller for its spin window — the
// load is registered and a demotion wake is armed at the window's end so
// pumpWait can observe the expiry even with no completion traffic.
func (c *Conn) enterWait(poll PollMode) {
	switch poll {
	case PollBusyMode:
		if !c.busyLoaded {
			c.eng.node.CPU.AddLoad(1)
			c.busyLoaded = true
		}
	case PollAdaptiveMode:
		c.spinUntil = c.eng.env.Now() + sim.Time(c.spinWindow())
		if !c.busyLoaded {
			c.eng.node.CPU.AddLoad(1)
			c.busyLoaded = true
		}
		c.eng.env.At(c.spinUntil, c.sig.Fire)
	}
}

func (c *Conn) exitWait() {
	if c.busyLoaded {
		c.eng.node.CPU.RemoveLoad(1)
		c.busyLoaded = false
	}
}

// NextArrival blocks until a request (server) or response (client)
// arrives, processing protocol-internal control traffic (RTS/CTS/FIN)
// along the way.
func (c *Conn) NextArrival(p *sim.Proc, busy bool) Arrival {
	return c.nextArrival(p, boolMode(busy))
}

func (c *Conn) nextArrival(p *sim.Proc, poll PollMode) Arrival {
	c.enterWait(poll)
	defer c.exitWait()
	for {
		if n := len(c.respQueue); n > 0 {
			a := c.respQueue[0]
			c.respQueue = c.respQueue[1:]
			c.stats.BytesRecvd += int64(len(a.Payload))
			return a
		}
		if len(c.wcBuf) > 0 {
			// Batched drain: handle up to the poll budget in one pass,
			// return the first finished arrival and queue the rest. One
			// detection charge covers the whole batch.
			if n := c.cq.PollN(c.wcBuf); n > 0 {
				var first Arrival
				have := false
				for i := 0; i < n; i++ {
					if a, done := c.handleWC(p, c.wcBuf[i]); done {
						if !have {
							first, have = a, true
						} else {
							c.respQueue = append(c.respQueue, a)
						}
					}
				}
				if have {
					c.chargeDetect(p, poll)
					c.stats.BytesRecvd += int64(len(first.Payload))
					return first
				}
				continue
			}
		} else if wc, ok := c.cq.TryPoll(); ok {
			if a, done := c.handleWC(p, wc); done {
				c.chargeDetect(p, poll)
				c.stats.BytesRecvd += int64(len(a.Payload))
				return a
			}
			continue
		}
		if c.rfpPending {
			c.rfpPending = false
			h := getHdr(c.rfpInMR.Buf)
			c.noteCredits(h)
			payload := c.copyPayload(c.rfpInMR.Buf[hdrSize : hdrSize+int(h.length)])
			c.chargeDetect(p, poll)
			c.stats.BytesRecvd += int64(len(payload))
			return Arrival{Kind: h.kind, Proto: h.proto, RespProto: h.respProto, Fn: h.fn, Seq: h.seq, SID: h.sid, Payload: payload}
		}
		c.pumpWait(p, poll)
	}
}

// waitCTSUntil pumps until the CTS for seq arrives, queueing any
// unrelated arrivals. A non-zero until bounds the wait (virtual time);
// it returns false on timeout with the seq's CTS flag left unset so a
// late CTS can still be consumed by a retry.
func (c *Conn) waitCTSUntil(p *sim.Proc, seq uint32, poll PollMode, until sim.Time) bool {
	c.enterWait(poll)
	defer c.exitWait()
	if until > 0 {
		c.armWake(until)
	}
	for !c.ctsReady[seq] {
		if until > 0 && p.Now() >= until {
			return false
		}
		if c.pumpCompletions(p) > 0 {
			continue
		}
		c.pumpWait(p, poll)
	}
	delete(c.ctsReady, seq)
	c.chargeDetect(p, poll)
	return true
}

// waitRead pumps until the READ with the given wrid completes, returning
// whether it succeeded. (A READ always completes: success, retry
// exhaustion after a drop, or a flush on an errored QP — so this wait
// needs no deadline of its own.) The wait inspects completions one at a
// time even under a poll budget: it returns on its own READ, so batching
// ahead of it would only reorder the charge.
func (c *Conn) waitRead(p *sim.Proc, wrid uint64, poll PollMode) bool {
	c.enterWait(poll)
	defer c.exitWait()
	for {
		if wc, ok := c.cq.TryPoll(); ok {
			if wc.Op == verbs.OpRead && wc.WRID == wrid {
				c.chargeDetect(p, poll)
				return wc.Status == verbs.WCSuccess
			}
			if a, done := c.handleWC(p, wc); done {
				c.respQueue = append(c.respQueue, a)
			}
			continue
		}
		c.pumpWait(p, poll)
	}
}

// handleWC interprets one completion. It returns (arrival, true) when the
// completion finishes an application-level message.
func (c *Conn) handleWC(p *sim.Proc, wc verbs.WC) (Arrival, bool) {
	if wc.Status != verbs.WCSuccess {
		if wc.Status == verbs.WCRNRRetryExceeded {
			// The peer's RECV ring stayed exhausted through the whole RNR
			// retry budget. A credit-respecting sender never sees this.
			c.eng.rnrFailures++
			if m := c.eng.em; m != nil {
				m.rnrNaks.Inc()
			}
			c.eng.trc.Instant("engine", "rnr_retry_exceeded", c.eng.node.ID(), c.id,
				int64(p.Now()), obs.Arg{K: "wrid", V: wc.WRID})
		}
		// Failed work request (retry-exceeded or flushed on an errored
		// QP). If it was a Read-RNDV pull, reclaim its control state: no
		// data arrived, so the destination buffer can rejoin the pool.
		if wc.Op == verbs.OpRead {
			if rts, ok := c.pendingReads[wc.WRID]; ok {
				delete(c.pendingReads, wc.WRID)
				if buf, ok := c.rndvIn[rts.seq]; ok {
					delete(c.rndvIn, rts.seq)
					c.eng.releaseRndv(buf)
				} else {
					c.releaseOrphan(c.orphanIn, rts.seq)
				}
			}
		}
		return Arrival{}, false
	}
	switch wc.Op {
	case verbs.OpRecv:
		if wc.HasImm {
			return c.handleWriteImm(p, wc)
		}
		return c.handleRecvSlot(p, wc)
	case verbs.OpRead:
		if rts, ok := c.pendingReads[wc.WRID]; ok {
			delete(c.pendingReads, wc.WRID)
			buf, live := c.rndvIn[rts.seq]
			if !live {
				// The call was aborted while this pull was in flight; the
				// data arrived too late to matter. Release the orphaned
				// buffer and still FIN so the peer frees its exposed one.
				if obuf, ok := c.orphanIn[rts.seq]; ok {
					delete(c.orphanIn, rts.seq)
					c.eng.releaseRndv(obuf)
					c.postSmall(p, hdr{kind: kFin, proto: rts.proto, seq: rts.seq})
				}
				return Arrival{}, false
			}
			// Read-RNDV pull completed: the pulled buffer carries the
			// original [hdr|payload] (the RTS only announced it).
			delete(c.rndvIn, rts.seq)
			h := getHdr(buf.Buf)
			c.noteCredits(h)
			payload := c.copyPayload(buf.Buf[hdrSize : hdrSize+int(h.length)])
			c.eng.releaseRndv(buf)
			c.postSmall(p, hdr{kind: kFin, proto: h.proto, seq: h.seq})
			return Arrival{Kind: h.kind, Proto: h.proto, RespProto: h.respProto, Fn: h.fn, Seq: h.seq, SID: h.sid, Payload: payload}, true
		}
		return Arrival{}, false
	default:
		// Send-side completions carry no application event.
		return Arrival{}, false
	}
}

// fragState accumulates a segmented eager message. seen dedups fragment
// offsets so a retransmitted fragment (same seq, same off) can neither
// double-count got nor mask a hole.
type fragState struct {
	h    hdr
	buf  []byte
	got  int
	seen map[uint32]bool
}

// ringSlot returns the receive-ring buffer for a slot WRID: a window of
// the engine's shared SRQ region when this connection drains the shared
// ring, the private eager ring otherwise.
func (c *Conn) ringSlot(slot int) []byte {
	base := slot * c.slotSize
	if c.srqMR != nil {
		return c.srqMR.Buf[base : base+c.slotSize]
	}
	return c.eagerMR.Buf[base : base+c.slotSize]
}

// repostSlot recycles a consumed ring slot: back to the shared SRQ for
// SRQ-backed connections, to the private QP ring otherwise.
func (c *Conn) repostSlot(p *sim.Proc, wrid uint64) {
	base := int(wrid) * c.slotSize
	if c.srq != nil {
		c.srq.PostRecv(verbs.RecvWR{
			WRID: wrid,
			SGE:  verbs.SGE{MR: c.srqMR, Off: base, Len: c.slotSize},
		})
	} else {
		c.qp.PostRecv(verbs.RecvWR{
			WRID: wrid,
			SGE:  verbs.SGE{MR: c.eagerMR, Off: base, Len: c.slotSize},
		})
	}
	c.noteRepost(p)
}

// handleRecvSlot processes a two-sided SEND landing in an eager ring slot.
func (c *Conn) handleRecvSlot(p *sim.Proc, wc verbs.WC) (Arrival, bool) {
	buf := c.ringSlot(int(wc.WRID))
	h := getHdr(buf)
	c.noteCredits(h)
	// Recycle the ring slot after extracting the fragment. This is the
	// ONLY repost for this slot regardless of what the message turns out
	// to be (data, control, duplicate, or a request later shed by
	// admission control) — the repost happens before the message is
	// interpreted, so shedding can neither skip nor double it.
	frag := c.copyPayload(buf[hdrSize:wc.ByteLen])
	c.repostSlot(p, wc.WRID)
	switch h.kind {
	case kReq, kResp:
		// Eager delivery: per-slot management cost plus the copy out of
		// the ring slot.
		cm := c.eng.dev.CostModel()
		c.eng.node.CPU.Compute(p, c.eng.node.NUMAWork(sim.Duration(cm.EagerSlotMgmtNs), c.numaBound))
		c.memcpyCharge(p, len(frag))
		if _, dup := c.dedupLookup(h.sid, h.seq); dup && h.kind == kReq {
			// Retransmission of the request this virtual connection just
			// had served (its response was lost). Drop any partial
			// re-assembly and surface one dup arrival (on the first
			// fragment only) so the dispatcher's dedup path resends the
			// cached response.
			delete(c.frags, h.seq)
			c.Recycle(frag)
			if h.off == 0 {
				return Arrival{Kind: kReq, Proto: h.proto, RespProto: h.respProto, Fn: h.fn, Seq: h.seq, SID: h.sid}, true
			}
			return Arrival{}, false
		}
		if int(h.length) == len(frag) && h.off == 0 {
			return Arrival{Kind: h.kind, Proto: h.proto, RespProto: h.respProto, Fn: h.fn, Seq: h.seq, SID: h.sid, Payload: frag}, true
		}
		// Segmented message: accumulate until complete.
		st, ok := c.frags[h.seq]
		if !ok {
			st = &fragState{h: h, buf: c.allocPayload(int(h.length)), seen: make(map[uint32]bool)}
			c.frags[h.seq] = st
		}
		if st.seen[h.off] {
			c.Recycle(frag)
			return Arrival{}, false // duplicate fragment from a retransmission
		}
		st.seen[h.off] = true
		copy(st.buf[h.off:], frag)
		st.got += len(frag)
		c.Recycle(frag)
		if st.got < int(h.length) {
			return Arrival{}, false
		}
		delete(c.frags, h.seq)
		return Arrival{Kind: h.kind, Proto: h.proto, RespProto: h.respProto, Fn: h.fn, Seq: h.seq, SID: h.sid, Payload: st.buf}, true
	case kNotify:
		// Direct-Write-Send: payload already written into directMR.
		dh := getHdr(c.directMR.Buf)
		c.noteCredits(dh)
		payload := c.copyPayload(c.directMR.Buf[hdrSize : hdrSize+int(dh.length)])
		return Arrival{Kind: dh.kind, Proto: dh.proto, RespProto: dh.respProto, Fn: dh.fn, Seq: dh.seq, SID: dh.sid, Payload: payload}, true
	case kRTS:
		return c.handleRTS(p, h)
	case kCTS:
		c.ctsReady[h.seq] = true
		return Arrival{}, false
	case kCredit:
		// Async credit grant: the piggybacked total was consumed by
		// noteCredits above; nothing else to do.
		return Arrival{}, false
	case kErr, kDrain:
		// Typed rejection (header-only): surface it so the caller's
		// response wait maps it to ErrOverloaded / ErrDraining.
		return Arrival{Kind: h.kind, Proto: h.proto, RespProto: h.respProto, Fn: h.fn, Seq: h.seq, SID: h.sid}, true
	case kFin:
		if buf, ok := c.rndvOut[h.seq]; ok {
			delete(c.rndvOut, h.seq)
			delete(c.shared.rndv, rndvKey(h.seq, c.server))
			c.eng.releaseRndv(buf)
		} else if buf, ok := c.orphanOut[h.seq]; ok {
			// FIN for a call aborted mid-rendezvous: the peer's pull
			// finally finished, so the orphaned exposure can be freed.
			delete(c.orphanOut, h.seq)
			delete(c.shared.rndv, rndvKey(h.seq, c.server))
			c.eng.releaseRndv(buf)
		}
		return Arrival{}, false
	}
	return Arrival{}, false
}

// handleRTS reacts to a rendezvous request-to-send. Retransmitted RTSes
// (the reliability layer resends with the same seq) are idempotent: an
// existing grant is re-announced rather than re-allocated, an in-flight
// pull is left alone, and an RTS for an already-served request surfaces
// a dup arrival so the dispatcher resends the cached response.
func (c *Conn) handleRTS(p *sim.Proc, h hdr) (Arrival, bool) {
	// A prior loss may have erred this QP (a dropped CTS or READ errors
	// its owner); cycle it back before posting the grant or the pull, or
	// every response below would flush and the handshake could never make
	// progress. No-op on a healthy QP.
	c.recoverQP(p)
	if _, dup := c.dedupLookup(h.sid, h.seq); dup && c.server {
		return Arrival{Kind: kReq, Proto: h.proto, RespProto: h.respProto, Fn: h.fn, Seq: h.seq, SID: h.sid}, true
	}
	switch h.proto {
	case WriteRNDV, HybridEagerRNDV:
		if _, ok := c.rndvIn[h.seq]; ok {
			// Duplicate RTS: the CTS was lost. The buffer is already
			// granted — just re-announce it.
			c.postSmall(p, hdr{kind: kCTS, proto: h.proto, seq: h.seq})
			return Arrival{}, false
		}
		// Expose a pool buffer and grant. The entry is keyed by the
		// *sender's* side (our peer).
		buf := c.eng.acquireRndv(p, int(h.length)+hdrSize)
		c.rndvIn[h.seq] = buf
		c.shared.rndv[rndvKey(h.seq, !c.server)] = buf.RKey()
		c.postSmall(p, hdr{kind: kCTS, proto: h.proto, seq: h.seq})
		return Arrival{}, false
	case ReadRNDV:
		if _, ok := c.rndvIn[h.seq]; ok {
			return Arrival{}, false // duplicate RTS: the pull is in flight
		}
		// Pull the payload from the buffer exposed by the sender (peer).
		rk, ok := c.shared.rndv[rndvKey(h.seq, !c.server)]
		if !ok {
			// Stale RTS: the sender aborted and withdrew the exposure.
			return Arrival{}, false
		}
		buf := c.eng.acquireRndv(p, int(h.length)+hdrSize)
		c.rndvIn[h.seq] = buf
		id := c.wrid()
		c.pendingReads[id] = h
		c.qp.PostSend(p, &verbs.SendWR{
			WRID: id, Op: verbs.OpRead,
			SGE:    verbs.SGE{MR: buf, Off: 0, Len: int(h.length) + hdrSize},
			Remote: rk,
		})
		return Arrival{}, false
	}
	return Arrival{}, false
}

// handleWriteImm processes a WRITE_WITH_IMM completion: either a direct
// message in directMR or a rendezvous payload landing in a granted
// buffer.
func (c *Conn) handleWriteImm(p *sim.Proc, wc verbs.WC) (Arrival, bool) {
	// The consumed zero-length recv slot is recycled.
	c.repostSlot(p, wc.WRID)
	if wc.Imm == immDirect {
		h := getHdr(c.directMR.Buf)
		c.noteCredits(h)
		payload := c.copyPayload(c.directMR.Buf[hdrSize : hdrSize+int(h.length)])
		return Arrival{Kind: h.kind, Proto: h.proto, RespProto: h.respProto, Fn: h.fn, Seq: h.seq, SID: h.sid, Payload: payload}, true
	}
	seq := wc.Imm
	buf, ok := c.rndvIn[seq]
	if !ok {
		// Late WRITE_IMM for an aborted call: free the orphaned grant.
		// (A duplicate for an already-completed seq lands here too — the
		// data went to a revoked buffer and was discarded by the NIC.)
		c.releaseOrphan(c.orphanIn, seq)
		return Arrival{}, false
	}
	delete(c.rndvIn, seq)
	h := getHdr(buf.Buf)
	c.noteCredits(h)
	payload := c.copyPayload(buf.Buf[hdrSize : hdrSize+int(h.length)])
	delete(c.shared.rndv, rndvKey(seq, !c.server))
	c.eng.releaseRndv(buf)
	return Arrival{Kind: h.kind, Proto: h.proto, RespProto: h.respProto, Fn: h.fn, Seq: h.seq, SID: h.sid, Payload: payload}, true
}

// postSmall sends a header-only control message through the eager ring.
// Control traffic spends a credit without blocking: it is issued from
// pump context where blocking would deadlock, and the per-connection
// reserve (see flowState) absorbs the overdraft.
func (c *Conn) postSmall(p *sim.Proc, h hdr) {
	c.spend()
	c.putHdrC(c.stageMR.Buf, h)
	c.qp.PostSend(p, &verbs.SendWR{
		WRID: c.wrid(), Op: verbs.OpSend,
		SGE:        verbs.SGE{MR: c.stageMR, Off: 0, Len: hdrSize},
		Inline:     true,
		Unsignaled: true,
	})
}
