package engine

import (
	"bytes"
	"testing"
)

// FuzzHdrCodec checks the wire-header codec against arbitrary bytes:
// decodeHdr must reject short or malformed buffers without panicking,
// and every accepted header must re-encode to the exact input bytes
// (the codec is bijective on its 28-byte domain — any lossy field would
// corrupt retransmitted or forwarded headers).
func FuzzHdrCodec(f *testing.F) {
	valid := make([]byte, hdrSize)
	putHdr(valid, hdr{kind: kReq, proto: DirectWriteIMM, respProto: EagerSendRecv,
		fn: 3, length: 512, seq: 99, off: 0, credits: 16, sid: 0x00100007})
	f.Add(valid)
	f.Add([]byte{})
	f.Add(make([]byte, hdrSize-1))
	f.Fuzz(func(t *testing.T, data []byte) {
		h, ok := decodeHdr(data)
		if !ok {
			if len(data) >= hdrSize && data[3] == 0 {
				t.Fatalf("rejected a well-formed %d-byte header", len(data))
			}
			return
		}
		out := make([]byte, hdrSize)
		putHdr(out, h)
		if !bytes.Equal(out, data[:hdrSize]) {
			t.Fatalf("decode/encode not bijective:\n in:  %x\n out: %x", data[:hdrSize], out)
		}
	})
}
