// Package engine implements HatRPC's hint-aware RDMA communication
// engine (§4.3): the nine RDMA protocols analysed in §3 (Figure 3), the
// hint→protocol selection algorithm distilled from the design-space study
// (Figure 6), per-connection buffer management (eager circular rings,
// pre-known direct buffers, a rendezvous buffer pool), and the fixed-
// policy comparator engines (AR-gRPC, HERD, Pilaf, RFP) used by the
// paper's YCSB evaluation.
package engine

import (
	"fmt"

	"hatrpc/internal/hints"
)

// Protocol identifies one of the RDMA communication protocols of Fig. 3.
type Protocol uint8

// The protocols of Figure 3, plus the Hybrid-EagerRNDV baseline used
// throughout the paper's evaluation.
const (
	// ProtoAuto defers the choice: as a CallOpts.RespProto it means "same
	// as the request protocol"; in a plan it means "let hints decide".
	ProtoAuto Protocol = iota
	// EagerSendRecv copies the payload into a pre-posted circular-buffer
	// slot and SENDs it (Fig. 3a).
	EagerSendRecv
	// DirectWriteSend WRITEs into a pre-known remote buffer and SENDs a
	// separate notification (Fig. 3b): two doorbells.
	DirectWriteSend
	// ChainedWriteSend chains the WRITE and SEND into one work-request
	// chain (Fig. 3c): one doorbell, less MMIO.
	ChainedWriteSend
	// WriteRNDV is the RDMA-WRITE-based rendezvous protocol (Fig. 3d):
	// RTS → CTS(buffer) → WRITE_WITH_IMM.
	WriteRNDV
	// ReadRNDV is the RDMA-READ-based rendezvous protocol (Fig. 3e):
	// RTS(rkey) → target READs payload.
	ReadRNDV
	// DirectWriteIMM replaces Chained-Write-Send's pair with a single
	// WRITE_WITH_IMM (Fig. 3f).
	DirectWriteIMM
	// Pilaf emulates Pilaf's server-bypass GETs: ~3 READs per request
	// (two metadata, one payload) (Fig. 3g).
	Pilaf
	// FaRM emulates FaRM's ≥2 READs per GET (index + value) (Fig. 3h).
	FaRM
	// RFP is the remote-fetching paradigm (Fig. 3i): WRITE the request
	// into the server, server CPU polls memory, client READs the
	// response back.
	RFP
	// HERD emulates HERD's hybrid: request via WRITE into a polled
	// server slot, response via SEND. Used by the YCSB comparison.
	HERD
	// HybridEagerRNDV is the vanilla adaptive baseline: Eager-SendRecv at
	// or below the threshold (4 KB), Write-RNDV above it.
	HybridEagerRNDV
	// HybridEagerRead emulates AR-gRPC's adaptive pair: Eager-SendRecv at
	// or below the threshold, Read-RNDV above it.
	HybridEagerRead
)

func (pr Protocol) String() string {
	switch pr {
	case ProtoAuto:
		return "auto"
	case EagerSendRecv:
		return "Eager-SendRecv"
	case DirectWriteSend:
		return "Direct-Write-Send"
	case ChainedWriteSend:
		return "Chained-Write-Send"
	case WriteRNDV:
		return "Write-RNDV"
	case ReadRNDV:
		return "Read-RNDV"
	case DirectWriteIMM:
		return "Direct-WriteIMM"
	case Pilaf:
		return "Pilaf"
	case FaRM:
		return "FaRM"
	case RFP:
		return "RFP"
	case HERD:
		return "HERD"
	case HybridEagerRNDV:
		return "Hybrid-EagerRNDV"
	case HybridEagerRead:
		return "Hybrid-EagerRead(AR-gRPC)"
	}
	return fmt.Sprintf("Protocol(%d)", uint8(pr))
}

// AllProtocols lists every protocol the engine implements, in Fig. 3
// order.
var AllProtocols = []Protocol{
	EagerSendRecv, DirectWriteSend, ChainedWriteSend, WriteRNDV, ReadRNDV,
	DirectWriteIMM, Pilaf, FaRM, RFP, HERD, HybridEagerRNDV,
}

// Plan is the engine-level execution plan derived from a resolved hint
// set: which protocol to use for a payload regime and how to poll.
type Plan struct {
	Proto Protocol
	Busy  bool     // busy polling (vs event-driven)
	Poll  PollMode // explicit discipline; zero defers to Busy
}

// DefaultRndvThreshold is the Hybrid-EagerRNDV switchover (§4.3): 4 KB.
const DefaultRndvThreshold = 4096

// RFPMinSize is the payload size above which the planner prefers RFP for
// over-subscribed throughput workloads.
const RFPMinSize = 65536

// SelectPlan maps a resolved hint set to a protocol and polling mode for
// a payload of the given size, per the Figure 6 design space:
//
//	goal        subscription  small(≤4K)        large(>4K)       polling
//	latency     any           Direct-WriteIMM   Direct-WriteIMM  busy
//	throughput  under         Direct-WriteIMM   Direct-WriteIMM  busy
//	throughput  full          Direct-WriteIMM   Direct-WriteIMM  event
//	throughput  over          Direct-WriteIMM   RFP              event
//	res_util    under         Direct-WriteIMM   Write-RNDV       event
//	res_util    full/over     Eager-SendRecv    Write/Read-RNDV  event
//
// An explicit polling hint overrides the derived mode. size==0 falls back
// to the payload_size hint; when both are unknown the engine cannot
// pre-commit size-specialized buffers, so it falls back to the adaptive
// Hybrid-EagerRNDV profile — this is precisely the information a payload
// hint buys (§4.4).
func SelectPlan(r hints.Resolved, cores int, size int, threshold int) Plan {
	if threshold <= 0 {
		threshold = DefaultRndvThreshold
	}
	if size <= 0 {
		size = r.PayloadSize
	}
	sub := r.Subscription(cores)
	if size <= 0 && r.Goal != hints.GoalLatency {
		// Without payload knowledge the engine cannot size the pre-known
		// direct buffers, so it stays on the adaptive hybrid. (The latency
		// goal still pins Direct-WriteIMM: latency-hinted functions accept
		// the max-size buffer reservation.)
		plan := Plan{Proto: HybridEagerRNDV, Busy: sub == hints.UnderSubscribed}
		switch r.Polling {
		case hints.PollBusy:
			plan.Busy = true
		case hints.PollEvent:
			plan.Busy = false
		case hints.PollAdaptive:
			// Hybrid spin-then-sleep: no standing busy load, but imminent
			// completions are still caught at busy-poll latency.
			plan.Busy = false
			plan.Poll = PollAdaptiveMode
		}
		return plan
	}
	small := size <= threshold

	var plan Plan
	switch r.Goal {
	case hints.GoalLatency:
		plan = Plan{Proto: DirectWriteIMM, Busy: true}
	case hints.GoalResUtil:
		switch {
		case sub == hints.UnderSubscribed && small:
			plan = Plan{Proto: DirectWriteIMM, Busy: false}
		case sub == hints.UnderSubscribed:
			plan = Plan{Proto: WriteRNDV, Busy: false}
		case small:
			plan = Plan{Proto: EagerSendRecv, Busy: false}
		default:
			plan = Plan{Proto: WriteRNDV, Busy: false}
		}
	default: // throughput (and unknown goals default here)
		switch {
		case sub == hints.UnderSubscribed:
			plan = Plan{Proto: DirectWriteIMM, Busy: true}
		case sub == hints.OverSubscribed && size >= RFPMinSize:
			// RFP's server-bypass only beats Direct-WriteIMM once messages
			// are big enough that relieving the server's send path matters
			// (our Fig. 5 reproduction puts the crossover near 128 KB).
			plan = Plan{Proto: RFP, Busy: false}
		default:
			plan = Plan{Proto: DirectWriteIMM, Busy: false}
		}
	}
	switch r.Polling {
	case hints.PollBusy:
		plan.Busy = true
	case hints.PollEvent:
		plan.Busy = false
	case hints.PollAdaptive:
		plan.Busy = false
		plan.Poll = PollAdaptiveMode
	}
	return plan
}
