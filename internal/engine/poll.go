package engine

import (
	"hatrpc/internal/sim"
	"hatrpc/internal/verbs"
)

// PollMode is the completion-detection discipline a wait loop uses. The
// zero value defers to the legacy Busy bool, so existing CallOpts/Server
// configurations behave exactly as before the adaptive poller existed.
type PollMode uint8

const (
	// PollFromBusy (the zero value) derives the mode from the legacy
	// Busy flag: busy → PollBusyMode, otherwise PollEventMode.
	PollFromBusy PollMode = iota
	// PollEventMode arms the CQ and sleeps until a completion interrupt.
	PollEventMode
	// PollBusyMode spins on the CQ for the whole wait.
	PollBusyMode
	// PollAdaptiveMode is the hybrid discipline (hint polling=adaptive):
	// spin for a bounded window after entering a wait — catching
	// back-to-back completions at busy-poll latency — then drop the CPU
	// load and fall back to the interrupt path.
	PollAdaptiveMode
)

func (m PollMode) String() string {
	switch m {
	case PollEventMode:
		return "event"
	case PollBusyMode:
		return "busy"
	case PollAdaptiveMode:
		return "adaptive"
	}
	return "from-busy"
}

// resolvePoll collapses the (PollMode, legacy Busy bool) pair into a
// concrete discipline.
func resolvePoll(mode PollMode, busy bool) PollMode {
	if mode != PollFromBusy {
		return mode
	}
	if busy {
		return PollBusyMode
	}
	return PollEventMode
}

// boolMode is resolvePoll for call sites that only carry the legacy flag.
func boolMode(busy bool) PollMode { return resolvePoll(PollFromBusy, busy) }

// DefaultAdaptiveSpinNs is the adaptive poller's spin window applied when
// Config.AdaptiveSpin is zero: comfortably above BusyDetectNs at low load
// (so an imminent completion is caught spinning) and close to the
// InterruptWakeNs it avoids paying.
const DefaultAdaptiveSpinNs = 5000

// spinWindow is the connection's adaptive spin budget per wait entry.
func (c *Conn) spinWindow() sim.Duration {
	if d := c.eng.cfg.AdaptiveSpin; d > 0 {
		return d
	}
	return DefaultAdaptiveSpinNs
}

// pumpWait parks a pump loop until the connection signal fires. In
// adaptive mode a waiter whose spin window has expired first demotes
// itself to the event path (dropping the busy CPU load it registered on
// wait entry); busy and event modes park exactly as before.
func (c *Conn) pumpWait(p *sim.Proc, poll PollMode) {
	if poll == PollAdaptiveMode && c.busyLoaded && p.Now() >= c.spinUntil {
		c.exitWait()
	}
	c.sig.Wait(p)
}

// pumpCompletions drains immediately-available completions into the pump,
// queueing any finished arrivals on respQueue, and returns how many
// completions were consumed. With Config.PollBudget ≤ 1 (wcBuf nil) it is
// exactly the legacy one-completion TryPoll step; with a budget it drains
// up to budget completions per call so one wakeup (and one detection
// charge, paid by the caller) covers a whole burst.
func (c *Conn) pumpCompletions(p *sim.Proc) int {
	if len(c.wcBuf) == 0 {
		if wc, ok := c.cq.TryPoll(); ok {
			if a, done := c.handleWC(p, wc); done {
				c.respQueue = append(c.respQueue, a)
			}
			return 1
		}
		return 0
	}
	n := c.cq.PollN(c.wcBuf)
	for i := 0; i < n; i++ {
		if a, done := c.handleWC(p, c.wcBuf[i]); done {
			c.respQueue = append(c.respQueue, a)
		}
	}
	return n
}

// fetchSpinPaceMult paces one-sided result polls while spinning:
// 15×PollGranularityNs reproduces the 600 ns pace the fetch loops
// previously hardcoded.
const fetchSpinPaceMult = 15

// fetchPace derives the delay before the next one-sided result poll from
// the call's polling discipline and how long the fetch has already spun.
// Busy fetches keep the tight pace up to the RC retry timeout (a result
// that late means loss, not latency); adaptive fetches spin only for the
// connection's spin window; event fetches never spin — they pace at the
// interrupt-wake granularity from the first retry.
func (c *Conn) fetchPace(poll PollMode, spun sim.Duration) sim.Duration {
	cm := c.eng.dev.CostModel()
	spin := sim.Duration(fetchSpinPaceMult * cm.PollGranularityNs)
	slow := sim.Duration(cm.InterruptWakeNs)
	var budget sim.Duration
	switch poll {
	case PollBusyMode:
		budget = sim.Duration(cm.RetryTimeoutNs)
	case PollAdaptiveMode:
		budget = c.spinWindow()
	default:
		return slow
	}
	if spun < budget {
		return spin
	}
	return slow
}

// ---------------------------------------------------------------------------
// Payload arena (Config.ArenaPayloads)

// Size-classed free lists for delivered-payload buffers. Classes are
// powers of two; oversize payloads bypass the arena. The arena is pure
// memory reuse — no simulated cost attaches to it — so enabling it never
// changes virtual-time behaviour, only host allocation rates.
const (
	payloadMinClass = 64
	payloadMaxClass = 1 << 20
	payloadClassCap = 64 // free buffers retained per class
)

func payloadClass(n int) int {
	c := payloadMinClass
	for c < n {
		c <<= 1
	}
	return c
}

// payloadGet returns a length-n buffer, reusing a recycled one when the
// class has stock. Contents beyond what the caller writes are stale.
func (e *Engine) payloadGet(n int) []byte {
	if n <= 0 {
		return nil
	}
	if n > payloadMaxClass {
		return make([]byte, n)
	}
	cls := payloadClass(n)
	if free := e.payloadFree[cls]; len(free) > 0 {
		b := free[len(free)-1]
		free[len(free)-1] = nil
		e.payloadFree[cls] = free[:len(free)-1]
		return b[:n]
	}
	return make([]byte, n, cls)
}

// payloadPut recycles a buffer into its size class (dropping it when the
// class is full or the capacity fits no class).
func (e *Engine) payloadPut(b []byte) {
	if cap(b) < payloadMinClass || cap(b) > payloadMaxClass {
		return
	}
	cls := payloadMinClass
	for cls<<1 <= cap(b) {
		cls <<= 1
	}
	if len(e.payloadFree[cls]) >= payloadClassCap {
		return
	}
	e.payloadFree[cls] = append(e.payloadFree[cls], b[:cls])
}

// copyPayload copies delivered bytes out of a registered region into a
// caller-owned buffer — pooled when the arena is enabled, a fresh
// allocation otherwise (the legacy behaviour, byte-for-byte).
func (c *Conn) copyPayload(src []byte) []byte {
	if !c.eng.cfg.ArenaPayloads {
		return append([]byte(nil), src...)
	}
	if len(src) == 0 {
		return nil
	}
	b := c.eng.payloadGet(len(src))
	copy(b, src)
	return b
}

// allocPayload returns an uninitialized length-n payload buffer (pooled
// when the arena is enabled). Callers fully overwrite it before it can
// surface to the application.
func (c *Conn) allocPayload(n int) []byte {
	if c.eng.cfg.ArenaPayloads {
		return c.eng.payloadGet(n)
	}
	return make([]byte, n)
}

// Recycle returns a payload buffer previously delivered by this
// connection (a Call result or a handler's request) to the engine's
// arena. With Config.ArenaPayloads off it is a no-op, so callers can
// recycle unconditionally. After Recycle the buffer must not be touched:
// a later delivery may reuse it.
func (c *Conn) Recycle(b []byte) {
	if c.eng.cfg.ArenaPayloads {
		c.eng.payloadPut(b)
	}
}

// wcBufFor sizes a connection's batched-poll buffer from the config.
func wcBufFor(cfg Config) []verbs.WC {
	if cfg.PollBudget > 1 {
		return make([]verbs.WC, cfg.PollBudget)
	}
	return nil
}
