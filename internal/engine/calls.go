package engine

import (
	"encoding/binary"
	"fmt"

	"hatrpc/internal/obs"
	"hatrpc/internal/sim"
	"hatrpc/internal/verbs"
)

// CallOpts selects the protocol and polling discipline for one RPC.
type CallOpts struct {
	// Proto carries the request payload.
	Proto Protocol
	// RespProto tells the server how this client wants the response
	// delivered (client-side hints drive the fetch path). Zero value
	// means "same as Proto".
	RespProto Protocol
	// Busy selects busy polling on the client side.
	Busy bool
	// Poll selects the completion-detection discipline explicitly
	// (event, busy, or the adaptive spin-then-sleep hybrid). The zero
	// value defers to Busy, keeping existing configurations identical.
	Poll PollMode
	// Oneway sends the request without waiting for any response.
	Oneway bool
	// Deadline bounds the whole call — including retransmissions — in
	// virtual time from its start. Zero falls back to
	// Config.CallDeadline; if both are zero the call may block forever
	// on a lossy fabric (the lossless-fabric fast path, byte-identical
	// to builds without the reliability layer).
	Deadline sim.Duration
	// NoWait fails the call immediately with ErrNoCredits instead of
	// blocking when flow control (Config.FlowCredits) has no send
	// credits — the peer's RECV ring is full as far as this endpoint
	// knows. No-op when flow control is off.
	NoWait bool
	// Idempotent marks the call safe to replay on a fresh connection
	// after a session reconnect (Session.Call). The engine already
	// executes at-most-once per connection via seq dedup; replaying
	// across connections re-executes, and only the application knows
	// whether that is safe. Non-idempotent calls interrupted by a
	// reconnect fail with ErrSessionReset instead.
	Idempotent bool
	// SID stamps the call with a virtual-connection session id (the wire
	// header's sid field). The server keys retransmission dedup and
	// per-tenant partitions on it, so interleaved virtual connections
	// multiplexed onto one physical connection cannot evict each other's
	// dedup state. Zero — the default — means no virtualization, and
	// every header byte is identical to pre-virtualization builds.
	// VConn.Call sets it; hand-rolled callers normally leave it zero.
	SID uint32
}

// hybridSwitch resolves a hybrid protocol against the rendezvous
// threshold. The boundary follows DESIGN.md's hint table ("small/large
// regime vs the 4 KB rendezvous threshold"): payloads up to AND
// INCLUDING the threshold travel eagerly; strictly larger ones go
// rendezvous. Both hybrids and both directions (request resolution and
// SendResponse) share this single definition so they can never diverge.
func hybridSwitch(proto Protocol, size, threshold int) Protocol {
	switch proto {
	case HybridEagerRNDV:
		if size > threshold {
			return WriteRNDV
		}
		return EagerSendRecv
	case HybridEagerRead:
		if size > threshold {
			return ReadRNDV
		}
		return EagerSendRecv
	}
	return proto
}

// resolve applies the hybrid size switch and the RespProto default
// (ProtoAuto → same as request).
func (o CallOpts) resolve(size, threshold int) (req, resp Protocol) {
	resp = o.RespProto
	if resp == ProtoAuto {
		resp = o.Proto
	}
	return hybridSwitch(o.Proto, size, threshold), resp
}

// Call performs one RPC: ships req to the server with the requested
// protocol, waits for the response per RespProto, and returns the
// response payload.
func (c *Conn) Call(p *sim.Proc, fn uint32, req []byte, opts CallOpts) ([]byte, error) {
	if c.server {
		return nil, fmt.Errorf("engine: Call on server-side connection")
	}
	if len(req) > c.eng.cfg.MaxMsgSize {
		return nil, fmt.Errorf("engine: request of %d bytes exceeds MaxMsgSize %d", len(req), c.eng.cfg.MaxMsgSize)
	}
	if err := c.breakerGate(p); err != nil {
		return nil, err
	}
	if opts.NoWait {
		if fc := c.fc; fc != nil && fc.avail <= 0 {
			// Local fast-fail; says nothing about server health, so it is
			// not a breaker observation.
			return nil, ErrNoCredits
		}
	}
	out, err := c.doCall(p, fn, req, opts)
	c.breakerObserve(p, err)
	return out, err
}

func (c *Conn) doCall(p *sim.Proc, fn uint32, req []byte, opts CallOpts) ([]byte, error) {
	eng := c.eng
	poll := resolvePoll(opts.Poll, opts.Busy)
	c.stats.Calls++
	c.stats.BytesSent += int64(len(req))
	c.seq++
	reqProto, respProto := opts.resolve(len(req), eng.cfg.RndvThreshold)
	if m := eng.em; m != nil {
		m.calls[reqProto].Inc()
		m.bytesSent[reqProto].Add(int64(len(req)))
	}
	start := int64(p.Now())
	h := hdr{
		kind: kReq, proto: reqProto, respProto: respProto,
		fn: fn, length: uint32(len(req)), seq: c.seq, sid: opts.SID,
	}
	dl := opts.Deadline
	if dl == 0 {
		dl = eng.cfg.CallDeadline
	}
	if opts.Oneway {
		c.stats.Oneways++
		if m := eng.em; m != nil {
			m.oneways.Inc()
		}
		h.respProto = ProtoAuto // marks "no response expected"
		if dl > 0 {
			if err := c.sendOnewayReliable(p, h, req, poll, p.Now()+sim.Time(dl)); err != nil {
				return nil, err
			}
		} else {
			c.sendMessage(p, h, req, poll)
		}
		eng.trc.Complete("rpc", "oneway."+reqProto.String(), eng.node.ID(), c.id,
			start, int64(p.Now()),
			obs.Arg{K: "fn", V: fn}, obs.Arg{K: "size", V: len(req)})
		return nil, nil
	}
	var out []byte
	if dl > 0 {
		// Deadline-bounded path: seq-tagged retransmission with capped
		// exponential backoff; see reliability.go.
		var err error
		out, err = c.callReliable(p, h, req, respProto, poll, p.Now()+sim.Time(dl))
		if err != nil {
			eng.trc.Instant("rpc", "call_failed."+reqProto.String(), eng.node.ID(), c.id,
				int64(p.Now()), obs.Arg{K: "fn", V: fn}, obs.Arg{K: "seq", V: h.seq})
			return nil, err
		}
	} else {
		c.sendMessage(p, h, req, poll)

		// Fetch-style responses are client-driven: the fetch loops poll
		// their READ completions, pacing the polls per the call's polling
		// discipline (fetchPace) — busy calls keep the tight one-sided
		// spin these designs are known for, event calls back off to the
		// interrupt-wake granularity.
		var err error
		switch respProto {
		case RFP:
			out, _, err = c.fetchRFPUntil(p, poll, 0)
		case Pilaf:
			out, _, err = c.fetchKVUntil(p, 2, poll, 0)
		case FaRM:
			out, _, err = c.fetchKVUntil(p, 1, poll, 0)
		default:
			a := c.nextArrival(p, poll)
			switch a.Kind {
			case kResp:
				out = a.Payload
			case kErr, kDrain:
				err = rejectErr(a.Kind)
			default:
				return nil, fmt.Errorf("engine: expected response, got kind %d", a.Kind)
			}
		}
		if err != nil {
			eng.trc.Instant("rpc", "call_failed."+reqProto.String(), eng.node.ID(), c.id,
				int64(p.Now()), obs.Arg{K: "fn", V: fn}, obs.Arg{K: "seq", V: h.seq})
			return nil, err
		}
	}
	if m := eng.em; m != nil {
		m.callLat[reqProto].Observe(float64(int64(p.Now()) - start))
	}
	eng.trc.Complete("rpc", "call."+reqProto.String(), eng.node.ID(), c.id,
		start, int64(p.Now()),
		obs.Arg{K: "fn", V: fn}, obs.Arg{K: "size", V: len(req)},
		obs.Arg{K: "resp", V: respProto.String()})
	return out, nil
}

// sendMessage ships [hdr|payload] using the wire protocol in h.proto.
// It is used for requests (client) and two-sided responses (server).
func (c *Conn) sendMessage(p *sim.Proc, h hdr, payload []byte, poll PollMode) {
	c.sendMessageUntil(p, h, payload, poll, 0)
}

// sendMessageUntil is sendMessage with a bound on protocol-internal
// waits (Write-RNDV's CTS, flow-control credit stalls). It reports
// whether the payload was handed to the fabric; false means a wait
// timed out or the grant was withdrawn, and the caller's retry loop
// should try again. until zero waits forever (the lossless fast path).
func (c *Conn) sendMessageUntil(p *sim.Proc, h hdr, payload []byte, poll PollMode, until sim.Time) bool {
	switch h.proto {
	case EagerSendRecv:
		return c.sendEager(p, h, payload, poll, until)
	case DirectWriteSend:
		return c.sendDirectWrite(p, h, payload, false, poll, until)
	case ChainedWriteSend:
		return c.sendDirectWrite(p, h, payload, true, poll, until)
	case DirectWriteIMM:
		return c.sendWriteImm(p, h, payload, poll, until)
	case WriteRNDV:
		return c.sendWriteRNDV(p, h, payload, poll, until)
	case ReadRNDV:
		return c.sendReadRNDV(p, h, payload, poll, until)
	case RFP, HERD:
		// Pure WRITE into the server's polled region: consumes no peer
		// RECV, so no credit is needed.
		c.sendRfpWrite(p, h, payload)
		return true
	case Pilaf, FaRM:
		// Pilaf/FaRM requests travel eagerly (SEND); only the response
		// path is server-bypass.
		return c.sendEager(p, h, payload, poll, until)
	default:
		panic("engine: sendMessage: unresolved protocol " + h.proto.String())
	}
}

// sendEager copies the payload into staging slots and SENDs it,
// segmenting messages larger than one ring slot. The defining costs of
// the eager protocol are the copy and the per-slot management work.
// Credits are acquired per fragment — acquiring a whole burst upfront
// could exceed the peer's ring depth and deadlock. A credit timeout
// mid-message abandons the remainder; the retry's full resend completes
// reassembly (the receiver dedups fragments by offset).
func (c *Conn) sendEager(p *sim.Proc, h hdr, payload []byte, poll PollMode, until sim.Time) bool {
	slotCap := c.slotSize - hdrSize
	cm := c.eng.dev.CostModel()
	segmented := len(payload) > slotCap
	off := 0
	for {
		n := len(payload) - off
		if n > slotCap {
			n = slotCap
		}
		if !c.waitCredit(p, h.proto, poll, until) {
			return false
		}
		c.spend()
		fh := h
		fh.off = uint32(off)
		c.eng.node.CPU.Compute(p, c.eng.node.NUMAWork(sim.Duration(cm.EagerSlotMgmtNs), c.numaBound))
		c.memcpyCharge(p, n)
		c.putHdrC(c.stageMR.Buf, fh)
		copy(c.stageMR.Buf[hdrSize:], payload[off:off+n])
		c.qp.PostSend(p, &verbs.SendWR{
			WRID: c.wrid(), Op: verbs.OpSend,
			SGE:        verbs.SGE{MR: c.stageMR, Off: 0, Len: hdrSize + n},
			Inline:     hdrSize+n <= 256,
			Unsignaled: true,
		})
		if segmented {
			if m := c.eng.em; m != nil {
				m.eagerFrags.Inc()
			}
			c.eng.trc.Instant("eager", "frag", c.eng.node.ID(), c.id, int64(p.Now()),
				obs.Arg{K: "seq", V: fh.seq}, obs.Arg{K: "off", V: fh.off})
		}
		off += n
		if off >= len(payload) {
			return true
		}
	}
}

// sendDirectWrite WRITEs [hdr|payload] into the peer's pre-known direct
// buffer, then SENDs a notification. chained=false posts two work
// requests (two doorbells, Fig. 3b); chained=true posts them as one
// chain (one doorbell, Fig. 3c).
func (c *Conn) sendDirectWrite(p *sim.Proc, h hdr, payload []byte, chained bool, poll PollMode, until sim.Time) bool {
	// The WRITE is one-sided; only the notify SEND consumes a peer RECV.
	if !c.waitCredit(p, h.proto, poll, until) {
		return false
	}
	c.spend()
	c.putHdrC(c.stageMR.Buf, h)
	copy(c.stageMR.Buf[hdrSize:], payload)
	nh := hdr{kind: kNotify, proto: h.proto, seq: h.seq}
	c.putHdrC(c.stageMR.Buf[c.stageNotifyOff():], nh)
	write := &verbs.SendWR{
		WRID: c.wrid(), Op: verbs.OpWrite,
		SGE:        verbs.SGE{MR: c.stageMR, Off: 0, Len: hdrSize + len(payload)},
		Remote:     c.peerDirect,
		Unsignaled: true,
	}
	send := &verbs.SendWR{
		WRID: c.wrid(), Op: verbs.OpSend,
		SGE:        verbs.SGE{MR: c.stageMR, Off: c.stageNotifyOff(), Len: hdrSize},
		Inline:     true,
		Unsignaled: true,
	}
	if chained {
		write.Next = send
		//hatlint:allow wrsigned -- delivery is confirmed by the RPC response; the cost model emits no CQE for unsignaled WRs, so there is nothing to drain
		c.qp.PostSend(p, write)
	} else {
		//hatlint:allow wrsigned -- unchained branch: the statically-visible write.Next link only exists on the chained path
		c.qp.PostSend(p, write)
		c.qp.PostSend(p, send)
	}
	return true
}

// stageNotifyOff is the staging offset reserved for notify headers — the
// last hdrSize bytes of the staging region. It doubles as the limit of
// the fragment-staging area used by the doorbell-batched paths; with the
// legacy staging size it evaluates to exactly MaxMsgSize+hdrSize.
func (c *Conn) stageNotifyOff() int { return c.stageMR.Len() - hdrSize }

// sendWriteImm WRITEs [hdr|payload] into the peer's direct buffer with an
// immediate, completing delivery in a single work request (Fig. 3f).
// The immediate consumes a zero-length peer RECV, so it costs a credit.
func (c *Conn) sendWriteImm(p *sim.Proc, h hdr, payload []byte, poll PollMode, until sim.Time) bool {
	if !c.waitCredit(p, h.proto, poll, until) {
		return false
	}
	c.spend()
	c.putHdrC(c.stageMR.Buf, h)
	copy(c.stageMR.Buf[hdrSize:], payload)
	c.qp.PostSend(p, &verbs.SendWR{
		WRID: c.wrid(), Op: verbs.OpWriteImm,
		SGE:        verbs.SGE{MR: c.stageMR, Off: 0, Len: hdrSize + len(payload)},
		Remote:     c.peerDirect,
		Imm:        immDirect,
		Inline:     hdrSize+len(payload) <= 256,
		Unsignaled: true,
	})
	return true
}

// sendWriteRNDV runs the WRITE-based rendezvous: RTS, wait for the CTS
// grant, then WRITE_WITH_IMM into the granted pool buffer. It reports
// whether the payload was written; false means the CTS wait timed out
// (bounded by until) or the peer withdrew the grant mid-handshake — the
// caller's retry (or the client's retransmission + server dedup)
// recovers.
func (c *Conn) sendWriteRNDV(p *sim.Proc, h hdr, payload []byte, poll PollMode, until sim.Time) bool {
	// One credit for the RTS (spent inside postSmall) and one for the
	// final WRITE_IMM's zero-length RECV, acquired separately — holding
	// both across the CTS wait would starve the peer's control traffic.
	if !c.waitCredit(p, h.proto, poll, until) {
		return false
	}
	rts := hdr{kind: kRTS, proto: WriteRNDV, respProto: h.respProto, fn: h.fn, length: h.length, seq: h.seq, sid: h.sid}
	c.postSmall(p, rts)
	ctsStart := int64(p.Now())
	if !c.waitCTSUntil(p, h.seq, poll, until) {
		return false
	}
	if m := c.eng.em; m != nil {
		m.ctsWait.Observe(float64(int64(p.Now()) - ctsStart))
	}
	c.eng.trc.Complete("rndv", "cts_wait", c.eng.node.ID(), c.id,
		ctsStart, int64(p.Now()), obs.Arg{K: "seq", V: h.seq})
	rk, ok := c.shared.rndv[rndvKey(h.seq, c.server)]
	if !ok {
		// The granter aborted after sending CTS and withdrew the buffer.
		return false
	}
	if !c.waitCredit(p, h.proto, poll, until) {
		return false
	}
	c.spend()
	// Zero-copy: the payload was serialized straight into registered
	// staging (rendezvous avoids the eager copy; that is its point).
	c.putHdrC(c.stageMR.Buf, h)
	copy(c.stageMR.Buf[hdrSize:], payload)
	c.qp.PostSend(p, &verbs.SendWR{
		WRID: c.wrid(), Op: verbs.OpWriteImm,
		SGE:        verbs.SGE{MR: c.stageMR, Off: 0, Len: hdrSize + len(payload)},
		Remote:     rk,
		Imm:        h.seq,
		Unsignaled: true,
	})
	return true
}

// sendReadRNDV exposes the payload in a pool buffer and sends an RTS; the
// peer READs it and FINs (Fig. 3e). A retransmission (same seq, buffer
// still exposed because no FIN arrived) reuses the existing exposure and
// just resends the RTS.
func (c *Conn) sendReadRNDV(p *sim.Proc, h hdr, payload []byte, poll PollMode, until sim.Time) bool {
	// Only the RTS consumes a peer RECV (the peer READs the payload
	// one-sided and its FIN spends from the peer's own budget).
	if !c.waitCredit(p, h.proto, poll, until) {
		return false
	}
	rts := hdr{kind: kRTS, proto: ReadRNDV, respProto: h.respProto, fn: h.fn, length: h.length, seq: h.seq, sid: h.sid}
	if _, ok := c.rndvOut[h.seq]; ok {
		c.postSmall(p, rts)
		return true
	}
	// Zero-copy exposure: serialized straight into the pool buffer.
	buf := c.eng.acquireRndv(p, len(payload)+hdrSize)
	putHdr(buf.Buf, h)
	copy(buf.Buf[hdrSize:], payload)
	c.rndvOut[h.seq] = buf
	c.shared.rndv[rndvKey(h.seq, c.server)] = buf.RKey()
	c.postSmall(p, rts)
	return true
}

// sendRfpWrite WRITEs [hdr|payload] into the server's polled request
// region (RFP and HERD request path).
func (c *Conn) sendRfpWrite(p *sim.Proc, h hdr, payload []byte) {
	putHdr(c.stageMR.Buf, h)
	copy(c.stageMR.Buf[hdrSize:], payload)
	c.qp.PostSend(p, &verbs.SendWR{
		WRID: c.wrid(), Op: verbs.OpWrite,
		SGE:        verbs.SGE{MR: c.stageMR, Off: 0, Len: hdrSize + len(payload)},
		Remote:     c.peerRfpIn,
		Unsignaled: true,
	})
}

// readRemote issues one READ and blocks until it completes. ok=false
// means the READ failed (lost in the fabric or flushed on an errored
// QP); the returned bytes are then meaningless.
func (c *Conn) readRemote(p *sim.Proc, rk verbs.RKey, off, n int, poll PollMode) ([]byte, bool) {
	id := c.wrid()
	c.qp.PostSend(p, &verbs.SendWR{
		WRID: id, Op: verbs.OpRead,
		SGE:    verbs.SGE{MR: c.directMR, Off: 0, Len: n},
		Remote: rk, RemoteOff: off,
	})
	if !c.waitRead(p, id, poll) {
		return nil, false
	}
	return c.directMR.Buf[:n], true
}

// fetchRFPUntil is the client half of RFP's remote fetching: READ the
// server's response region until the sequence stamp matches, fetching
// the tail with a second READ when the response exceeds the first
// chunk. A non-zero until bounds the polling (zero = forever); a failed
// READ (loss) recovers the QP and keeps polling until the bound. A
// kErr/kDrain stamp for the current seq is the server's typed rejection
// and surfaces as a terminal error. Poll pacing follows the call's polling
// discipline (fetchPace): busy calls keep the tight spin, event calls
// back off to the interrupt-wake granularity, adaptive calls spin for
// the connection's window and then back off.
func (c *Conn) fetchRFPUntil(p *sim.Proc, poll PollMode, until sim.Time) ([]byte, bool, error) {
	chunk := c.eng.cfg.RFPChunk
	var spun sim.Duration
	pace := func() {
		d := c.fetchPace(poll, spun)
		spun += d
		p.Sleep(d)
	}
	for {
		if until > 0 && p.Now() >= until {
			return nil, false, nil
		}
		b, ok := c.readRemote(p, c.peerRfpOut, 0, chunk, poll)
		if !ok {
			c.recoverQP(p)
			pace()
			continue
		}
		h := getHdr(b)
		if h.seq == c.seq && (h.kind == kErr || h.kind == kDrain) {
			c.noteCredits(h)
			return nil, false, rejectErr(h.kind)
		}
		if h.seq != c.seq || h.kind != kResp {
			c.noteReadRetry(p)
			pace()
			continue
		}
		c.noteCredits(h)
		n := int(h.length)
		got := chunk - hdrSize
		if n <= got {
			c.stats.BytesRecvd += int64(n)
			return c.copyPayload(b[hdrSize : hdrSize+n]), true, nil
		}
		// Tail fetch for large responses.
		out := c.allocPayload(n)
		copy(out, b[hdrSize:])
		rest, ok := c.readRemote(p, c.peerRfpOut, chunk, n-got, poll)
		if !ok {
			c.recoverQP(p)
			pace()
			continue
		}
		copy(out[got:], rest)
		c.stats.BytesRecvd += int64(n)
		return out, true, nil
	}
}

// noteReadRetry records one stale one-sided poll on every accounting
// surface: the per-conn counter, the engine total, and (when attached)
// the obs counter and trace timeline.
func (c *Conn) noteReadRetry(p *sim.Proc) {
	c.stats.ReadRetries++
	c.eng.readRetries++
	if m := c.eng.em; m != nil {
		m.readRetries.Inc()
	}
	c.eng.trc.Instant("fetch", "retry", c.eng.node.ID(), c.id, int64(p.Now()),
		obs.Arg{K: "seq", V: c.seq})
}

// kvShedLen / kvDrainLen are the length markers a rejected Pilaf/FaRM
// request's metadata record carries in place of a real response length:
// shed under admission control vs fenced during graceful drain. They
// cannot collide with a genuine response: lengths are bounded by
// MaxMsgSize.
const (
	kvShedLen  = ^uint32(0)
	kvDrainLen = ^uint32(0) - 1
)

// fetchKVUntil is the Pilaf/FaRM client fetch: metaReads metadata READs
// (two for Pilaf, one for FaRM) followed by one payload READ of the
// published length. A non-zero until bounds the polling (zero =
// forever); a failed READ (loss) recovers the QP and keeps polling
// until the bound. The kvShedLen/kvDrainLen length markers are the
// server's typed rejections and surface as terminal errors.
func (c *Conn) fetchKVUntil(p *sim.Proc, metaReads int, poll PollMode, until sim.Time) ([]byte, bool, error) {
	var spun sim.Duration
	pace := func() {
		d := c.fetchPace(poll, spun)
		spun += d
		p.Sleep(d)
	}
	for {
		if until > 0 && p.Now() >= until {
			return nil, false, nil
		}
		meta, ok := c.readRemote(p, c.peerKvMeta, 0, 16, poll)
		if !ok {
			c.recoverQP(p)
			pace()
			continue
		}
		seq := binary.LittleEndian.Uint32(meta[0:])
		rawLen := binary.LittleEndian.Uint32(meta[4:])
		if seq != c.seq {
			c.noteReadRetry(p)
			pace()
			continue
		}
		if rawLen == kvShedLen {
			return nil, false, ErrOverloaded
		}
		if rawLen == kvDrainLen {
			return nil, false, ErrDraining
		}
		n := int(rawLen)
		for i := 1; i < metaReads; i++ {
			c.readRemote(p, c.peerKvMeta, 0, 16, poll)
		}
		b, ok := c.readRemote(p, c.peerKvPay, 0, n, poll)
		if !ok {
			c.recoverQP(p)
			pace()
			continue
		}
		c.stats.BytesRecvd += int64(n)
		return c.copyPayload(b[:n]), true, nil
	}
}

// OnewayBurst ships a burst of oneway eager requests as chained WR
// trains: each message is staged at its own offset and linked into a WR
// chain, and the chain is flushed with a single PostSend — one doorbell
// for the whole burst (Config.DoorbellBatch). It exists for the
// multi-call burst shape doorbell batching targets: N small notifications
// from one client in one scheduling quantum. Without DoorbellBatch (or
// for non-eager protocols, or when a deadline/reliability bound is set)
// it degrades to a loop of ordinary oneway Calls, so callers can use it
// unconditionally.
func (c *Conn) OnewayBurst(p *sim.Proc, fn uint32, payloads [][]byte, opts CallOpts) error {
	if c.server {
		return fmt.Errorf("engine: OnewayBurst on server-side connection")
	}
	eng := c.eng
	proto := opts.Proto
	if proto == ProtoAuto {
		proto = EagerSendRecv
	}
	dl := opts.Deadline
	if dl == 0 {
		dl = eng.cfg.CallDeadline
	}
	slotCap := c.slotSize - hdrSize
	batchable := eng.cfg.DoorbellBatch && proto == EagerSendRecv && dl == 0
	if batchable {
		for _, pl := range payloads {
			if len(pl) > slotCap {
				// A multi-fragment message breaks the one-WR-per-message
				// chain shape; sendEager handles it on the ordinary path.
				batchable = false
				break
			}
		}
	}
	if !batchable {
		o := opts
		o.Oneway = true
		for _, pl := range payloads {
			if _, err := c.Call(p, fn, pl, o); err != nil {
				return err
			}
		}
		return nil
	}
	if err := c.breakerGate(p); err != nil {
		return err
	}
	poll := resolvePoll(opts.Poll, opts.Busy)
	cm := eng.dev.CostModel()
	var head, tail *verbs.SendWR
	stageOff := 0
	flush := func() {
		if head == nil {
			return
		}
		//hatlint:allow wrsigned -- oneway eager SENDs are unsignaled by design; the cost model emits no CQE for unsignaled WRs, so there is nothing to drain
		c.qp.PostSend(p, head)
		head, tail = nil, nil
		stageOff = 0
	}
	for _, pl := range payloads {
		c.stats.Calls++
		c.stats.Oneways++
		c.stats.BytesSent += int64(len(pl))
		c.seq++
		if m := eng.em; m != nil {
			m.calls[EagerSendRecv].Inc()
			m.oneways.Inc()
			m.bytesSent[EagerSendRecv].Add(int64(len(pl)))
		}
		if fc := c.fc; fc != nil && fc.avail <= 0 {
			// Post what is staged first: delivering it is what lets the
			// peer repost RECVs and grant the credits we are about to wait
			// for.
			flush()
			if !c.waitCredit(p, EagerSendRecv, poll, 0) {
				return ErrNoCredits
			}
		}
		c.spend()
		h := hdr{
			kind: kReq, proto: EagerSendRecv, respProto: ProtoAuto,
			fn: fn, length: uint32(len(pl)), seq: c.seq, sid: opts.SID,
		}
		eng.node.CPU.Compute(p, eng.node.NUMAWork(sim.Duration(cm.EagerSlotMgmtNs), c.numaBound))
		c.memcpyCharge(p, len(pl))
		if stageOff+hdrSize+len(pl) > c.stageNotifyOff() {
			flush()
		}
		base := stageOff
		c.putHdrC(c.stageMR.Buf[base:], h)
		copy(c.stageMR.Buf[base+hdrSize:], pl)
		wr := &verbs.SendWR{
			WRID: c.wrid(), Op: verbs.OpSend,
			SGE:        verbs.SGE{MR: c.stageMR, Off: base, Len: hdrSize + len(pl)},
			Inline:     hdrSize+len(pl) <= 256,
			Unsignaled: true,
		}
		if tail == nil {
			head = wr
		} else {
			tail.Next = wr
		}
		tail = wr
		stageOff = base + hdrSize + len(pl)
	}
	flush()
	return nil
}

// ---------------------------------------------------------------------------
// Server response paths

// SendResponse delivers resp for the request described by a, honouring
// the client's requested response protocol.
func (c *Conn) SendResponse(p *sim.Proc, a Arrival, resp []byte, busy bool) {
	c.sendResponse(p, a, resp, boolMode(busy))
}

// sendResponse is SendResponse with an explicit polling discipline (the
// Server dispatcher resolves Server.Poll/Busy once and passes it down).
func (c *Conn) sendResponse(p *sim.Proc, a Arrival, resp []byte, poll PollMode) {
	if !c.server {
		panic("engine: SendResponse on client connection")
	}
	// A prior loss may have erred the QP; cycle it back before posting
	// (no-op on a healthy QP, so free on a lossless fabric).
	c.recoverQP(p)
	c.stats.BytesSent += int64(len(resp))
	// Same switch as the request path (hybridSwitch), applied to the
	// *response* size.
	respProto := hybridSwitch(a.RespProto, len(resp), c.eng.cfg.RndvThreshold)
	h := hdr{kind: kResp, proto: respProto, respProto: respProto, fn: a.Fn, length: uint32(len(resp)), seq: a.Seq, sid: a.SID}
	// Under fault injection the protocol-internal waits (rendezvous CTS,
	// credit stalls) are bounded so an aborted client cannot wedge this
	// dispatcher; an abandoned response is recovered by the client's
	// retransmission (dedup).
	var until sim.Time
	if c.faultsActive() {
		until = p.Now() + serverCTSTimeoutNs
	}
	switch respProto {
	case RFP:
		c.publish(p, c.rfpOutMR, h, resp)
	case Pilaf, FaRM:
		c.publishKV(p, h, resp)
	case HERD:
		// HERD responds two-sided.
		eh := h
		eh.proto = HERD
		c.sendEager(p, eh, resp, poll, until)
	default:
		c.sendMessageUntil(p, h, resp, poll, until)
	}
}

// publish copies [hdr|payload] into a locally-registered region that the
// client fetches one-sided. Only local memory work; no network operation.
func (c *Conn) publish(p *sim.Proc, mr *verbs.MR, h hdr, payload []byte) {
	c.memcpyCharge(p, len(payload)+hdrSize)
	copy(mr.Buf[hdrSize:], payload)
	c.putHdrC(mr.Buf, h) // header (with seq stamp) written last
}

// sendReject answers a rejected request with a typed header-only marker
// (kErr for admission sheds, kDrain for the graceful-drain fence) on
// whatever response channel the client is watching. Header-only on
// every path — the whole point of rejecting is that it costs the server
// ~nothing.
func (c *Conn) sendReject(p *sim.Proc, a Arrival, kind byte) {
	c.recoverQP(p)
	respProto := hybridSwitch(a.RespProto, 0, c.eng.cfg.RndvThreshold)
	h := hdr{kind: kind, proto: respProto, respProto: respProto, fn: a.Fn, seq: a.Seq, sid: a.SID}
	switch respProto {
	case RFP:
		c.putHdrC(c.rfpOutMR.Buf, h) // client's poll sees the marker at its seq
	case Pilaf, FaRM:
		mark := kvShedLen
		if kind == kDrain {
			mark = kvDrainLen
		}
		binary.LittleEndian.PutUint32(c.kvMetaMR.Buf[4:], mark)
		binary.LittleEndian.PutUint32(c.kvMetaMR.Buf[8:], 0xABCD)
		binary.LittleEndian.PutUint32(c.kvMetaMR.Buf[0:], a.Seq) // seq last
	default:
		// Two-sided and HERD clients wait on the eager ring.
		c.postSmall(p, h)
	}
}

// publishKV publishes payload + metadata for Pilaf/FaRM-style fetching:
// value first, then the metadata record carrying (seq, length).
func (c *Conn) publishKV(p *sim.Proc, h hdr, payload []byte) {
	c.memcpyCharge(p, len(payload)+16)
	copy(c.kvPayMR.Buf, payload)
	binary.LittleEndian.PutUint32(c.kvMetaMR.Buf[4:], h.length)
	binary.LittleEndian.PutUint32(c.kvMetaMR.Buf[8:], 0xABCD)
	binary.LittleEndian.PutUint32(c.kvMetaMR.Buf[0:], h.seq) // seq last
}
